(* Regenerates every table and figure of the paper's evaluation
   (Section 5) plus the ablations indexed in DESIGN.md, then runs
   Bechamel microbenchmarks of the runtime's core primitives.

   Usage: dune exec bench/main.exe [-- --full | -- --json]
   --full runs the racey determinism experiment 1000 times per
   configuration, as in the paper (default: 50).
   --json skips the paper tables and runs only the host-performance
   benchmark set, writing BENCH_CORE.json (same as `rfdet bench
   --json`). *)

module Experiments = Rfdet_harness.Experiments
module Runner = Rfdet_harness.Runner
module Registry = Rfdet_workloads.Registry

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s took %.1fs]\n" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core primitives                     *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  let vclock_join =
    Test.make ~name:"vclock join (64 components)"
      (Staged.stage
         (let a = Rfdet_util.Vclock.create 64 in
          let b = Rfdet_util.Vclock.create 64 in
          for i = 0 to 63 do
            Rfdet_util.Vclock.set b i (i * 7)
          done;
          fun () -> Rfdet_util.Vclock.join a b))
  in
  let vclock_compare =
    Test.make ~name:"vclock compare_partial"
      (Staged.stage
         (let a = Rfdet_util.Vclock.of_list (List.init 64 (fun i -> i)) in
          let b = Rfdet_util.Vclock.of_list (List.init 64 (fun i -> 64 - i)) in
          fun () -> ignore (Rfdet_util.Vclock.compare_partial a b)))
  in
  (* The word-level diff against its byte-at-a-time oracle, in both the
     sparse (typical slice) and dense (barrier merge) regimes. *)
  let dirty_1pct () =
    let snapshot = Bytes.make Rfdet_mem.Page.size 'a' in
    let current = Bytes.copy snapshot in
    for i = 0 to 40 do
      Bytes.set current (i * 97) 'b'
    done;
    (snapshot, current)
  in
  let dirty_50pct () =
    let snapshot = Bytes.make Rfdet_mem.Page.size 'a' in
    let current = Bytes.copy snapshot in
    let i = ref 0 in
    while !i < Rfdet_mem.Page.size do
      Bytes.fill current !i 64 'b';
      i := !i + 128
    done;
    (snapshot, current)
  in
  let page_diff =
    Test.make ~name:"page diff (4 KiB, 1% dirty)"
      (Staged.stage
         (let snapshot, current = dirty_1pct () in
          fun () ->
            ignore
              (Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current)))
  in
  let page_diff_bytewise =
    Test.make ~name:"page diff bytewise (4 KiB, 1% dirty)"
      (Staged.stage
         (let snapshot, current = dirty_1pct () in
          fun () ->
            ignore
              (Rfdet_mem.Diff.diff_page_bytewise ~page_id:0 ~snapshot ~current)))
  in
  let page_diff_50 =
    Test.make ~name:"page diff (4 KiB, 50% dirty)"
      (Staged.stage
         (let snapshot, current = dirty_50pct () in
          fun () ->
            ignore
              (Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current)))
  in
  let page_diff_bytewise_50 =
    Test.make ~name:"page diff bytewise (4 KiB, 50% dirty)"
      (Staged.stage
         (let snapshot, current = dirty_50pct () in
          fun () ->
            ignore
              (Rfdet_mem.Diff.diff_page_bytewise ~page_id:0 ~snapshot ~current)))
  in
  let diff_apply =
    Test.make ~name:"diff apply (41 runs)"
      (Staged.stage
         (let snapshot = Bytes.make Rfdet_mem.Page.size 'a' in
          let current = Bytes.copy snapshot in
          for i = 0 to 40 do
            Bytes.set current (i * 97) 'b'
          done;
          let d = Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current in
          let space = Rfdet_mem.Space.create () in
          fun () -> Rfdet_mem.Diff.apply space d))
  in
  (* The retired per-byte application loop, kept as the baseline the
     blit-based [Diff.apply] is judged against. *)
  let apply_per_byte space (d : Rfdet_mem.Diff.t) =
    List.iter
      (fun (r : Rfdet_mem.Diff.run) ->
        String.iteri
          (fun i c ->
            Rfdet_mem.Space.store_byte space (r.addr + i) (Char.code c))
          r.data)
      d
  in
  let diff_apply_per_byte =
    Test.make ~name:"diff apply per-byte (41 runs, 41 B)"
      (Staged.stage
         (let snapshot, current = dirty_1pct () in
          let d = Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current in
          let space = Rfdet_mem.Space.create () in
          fun () -> apply_per_byte space d))
  in
  let diff_apply_bulk_large =
    Test.make ~name:"diff apply bulk (32 runs, 2 KiB)"
      (Staged.stage
         (let snapshot, current = dirty_50pct () in
          let d = Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current in
          let space = Rfdet_mem.Space.create () in
          fun () -> Rfdet_mem.Diff.apply space d))
  in
  let diff_apply_per_byte_large =
    Test.make ~name:"diff apply per-byte (32 runs, 2 KiB)"
      (Staged.stage
         (let snapshot, current = dirty_50pct () in
          let d = Rfdet_mem.Diff.diff_page ~page_id:0 ~snapshot ~current in
          let space = Rfdet_mem.Space.create () in
          fun () -> apply_per_byte space d))
  in
  let allocator =
    Test.make ~name:"malloc+free (64 B)"
      (Staged.stage
         (let a = Rfdet_mem.Allocator.create () in
          fun () ->
            let p = Rfdet_mem.Allocator.malloc a 64 in
            Rfdet_mem.Allocator.free a p))
  in
  let engine_roundtrip =
    Test.make ~name:"full racey run under rfdet-ci (48k ops)"
      (Staged.stage (fun () ->
           ignore (Runner.run Runner.rfdet_ci (Registry.find "racey"))))
  in
  let tests =
    [
      vclock_join;
      vclock_compare;
      page_diff;
      page_diff_bytewise;
      page_diff_50;
      page_diff_bytewise_50;
      diff_apply;
      diff_apply_per_byte;
      diff_apply_bulk_large;
      diff_apply_per_byte_large;
      allocator;
    ]
  in
  let benchmark test =
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
    in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  section "Microbenchmarks (Bechamel; host nanoseconds per call)";
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %10.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests;
  (* the heavyweight one, measured directly *)
  let t0 = Unix.gettimeofday () in
  let iters = 3 in
  for _ = 1 to iters do
    ignore (Runner.run Runner.rfdet_ci (Registry.find "racey"))
  done;
  Printf.printf "%-40s %10.1f ms/run\n"
    (match engine_roundtrip with _ -> "full racey run under rfdet-ci")
    ((Unix.gettimeofday () -. t0) *. 1000. /. float_of_int iters)

(* ------------------------------------------------------------------ *)

let () =
  (* --json: run only the host-perf benchmark set and write
     BENCH_CORE.json (same output as `rfdet bench --json`). *)
  if Array.exists (( = ) "--json") Sys.argv then begin
    let b = Rfdet_harness.Bench_core.run () in
    print_string (Rfdet_harness.Bench_core.render b);
    Rfdet_harness.Bench_core.write_json ~path:"BENCH_CORE.json" b;
    print_endline "\nWrote BENCH_CORE.json";
    exit 0
  end;
  let full = Array.exists (( = ) "--full") Sys.argv in
  let racey_runs = if full then 1000 else 50 in

  section "RFDet reproduction bench — all tables & figures (PPoPP'14)";
  Printf.printf
    "Times are simulated cycles from the deterministic machine model;\n\
     shapes (who wins, by what factor) are the reproduction target.\n";

  section
    (Printf.sprintf "E1 / Section 5.1 — racey determinism (%d runs/config%s)"
       racey_runs
       (if full then "" else "; pass --full for the paper's 1000"));
  let e1 =
    timed "E1" (fun () ->
        Experiments.racey_determinism ~runs_per_config:racey_runs ())
  in
  print_string (Experiments.render_e1 e1);

  section "E2 / Figure 7 — normalized execution time, 4 threads";
  let f7 = timed "Figure 7" (fun () -> Experiments.figure7 ()) in
  print_string (Experiments.render_figure7 f7);
  print_newline ();
  print_string (Experiments.chart_figure7 f7);
  let d, ci, pf = Experiments.figure7_summary f7 in
  Printf.printf
    "\nPaper: RFDet-ci ~1.35x, RFDet-pf ~1.73x, DThreads ~2.5x (worst 10x).\n\
     Here:  RFDet-ci %.2fx, RFDet-pf %.2fx, DThreads %.2fx.\n\
     RFDet-ci speedup over DThreads: %.2fx (paper: ~2x).\n"
    ci pf d (d /. ci);

  section "E3 / Table 1 — profiling data, 4 threads";
  let t1 = timed "Table 1" (fun () -> Experiments.table1 ()) in
  print_string (Experiments.render_table1 t1);

  section "E4 / Figure 8 — scalability (2/4/8 threads)";
  let f8 = timed "Figure 8" (fun () -> Experiments.figure8 ()) in
  print_string (Experiments.render_figure8 f8);

  section "E5 / Figure 9 — prelock & lazy-writes optimizations (SPLASH-2)";
  let f9 = timed "Figure 9" (fun () -> Experiments.figure9 ()) in
  print_string (Experiments.render_figure9 f9);

  section "E6 / ablation — global barriers vs DLRC (Figure 1 scenario)";
  let e6 = timed "E6" (fun () -> Experiments.ablation_barriers ()) in
  print_string (Experiments.render_e6 e6);

  section "E7 / ablation — GC count vs metadata capacity (Section 5.4)";
  let e7 = timed "E7" (fun () -> Experiments.ablation_gc ()) in
  print_string (Experiments.render_e7 e7);

  section "E8 / ablation — cost-model sensitivity";
  let e8 = timed "E8" (fun () -> Experiments.ablation_sensitivity ()) in
  print_string (Experiments.render_e8 e8);

  microbenches ();

  print_newline ()
