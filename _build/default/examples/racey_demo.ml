(* The racey stress test (Section 5.1 of the paper), interactively.

   racey is engineered so that ANY difference in thread interleaving or
   race resolution changes its final signature.  The paper runs it 1000
   times at 2, 4 and 8 threads and observes a single output under RFDet.
   This demo runs it under four runtimes with many scheduler seeds and
   prints the distinct signatures each one produced.

     dune exec examples/racey_demo.exe *)

module Runner = Rfdet_harness.Runner
module Registry = Rfdet_workloads.Registry

let () =
  let racey = Registry.find "racey" in
  let runs = 25 in
  Printf.printf
    "racey under scheduler noise — %d runs each, distinct signatures:\n\n"
    runs;
  List.iter
    (fun (label, runtime) ->
      let signatures =
        List.init runs (fun i ->
            (Runner.run ~threads:4 ~jitter:12.
               ~sched_seed:(Int64.of_int (i + 1))
               runtime racey)
              .Runner.signature)
      in
      let distinct = List.sort_uniq compare signatures in
      Printf.printf "%-10s %d distinct signature(s)%s\n" label
        (List.length distinct)
        (if List.length distinct = 1 then "  <- deterministic" else "");
      List.iteri
        (fun i s ->
          if i < 4 then Printf.printf "             %s\n" s
          else if i = 4 then Printf.printf "             ...\n")
        distinct)
    [
      ("pthreads", Runner.Pthreads);
      ("kendo", Runner.Kendo);
      ("dthreads", Runner.Dthreads);
      ("rfdet-ci", Runner.rfdet_ci);
    ];
  print_endline
    "\npthreads varies (races resolved by timing); kendo serializes\n\
     synchronization deterministically but racey has no synchronization,\n\
     so it may still vary; the strong-DMT runtimes give one signature."
