(* A Phoenix-style map-reduce application on the public API: count word
   frequencies over a generated corpus and print the most frequent
   words, comparing wall-clock-model cost across runtimes.

     dune exec examples/wordcount_app.exe *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let vocab =
  [|
    "the"; "of"; "and"; "determinism"; "memory"; "thread"; "lock"; "race";
    "slice"; "clock"; "barrier"; "kendo"; "release"; "consistency"; "page";
    "diff";
  |]

let words = 30_000

let workers = 4

let app () =
  (* generate the corpus as word ids in shared memory *)
  let text = Api.malloc (8 * words) in
  let rng = Det_rng.create 7L in
  for i = 0 to words - 1 do
    (* skewed distribution so the "top words" are interesting *)
    let r = Det_rng.int rng 100 in
    let w =
      if r < 40 then Det_rng.int rng 3
      else Det_rng.int rng (Array.length vocab)
    in
    Api.store (text + (8 * i)) w
  done;
  (* map: per-worker counts in private rows *)
  let v = Array.length vocab in
  let counts = Api.malloc (8 * v * workers) in
  let chunk = (words + workers - 1) / workers in
  let mapper k () =
    let local = Array.make v 0 in
    let lo = k * chunk and hi = min words ((k + 1) * chunk) in
    for i = lo to hi - 1 do
      let w = Api.load (text + (8 * i)) in
      local.(w) <- local.(w) + 1;
      Api.tick 2
    done;
    for w = 0 to v - 1 do
      Api.store (counts + (8 * ((k * v) + w))) local.(w)
    done
  in
  let tids = List.init workers (fun k -> Api.spawn (mapper k)) in
  List.iter Api.join tids;
  (* reduce on the main thread; emit (word, count) pairs *)
  for w = 0 to v - 1 do
    let total = ref 0 in
    for k = 0 to workers - 1 do
      total := !total + Api.load (counts + (8 * ((k * v) + w)))
    done;
    Api.output_int !total
  done

let () =
  let run policy = Engine.run policy ~main:app in
  let rfdet =
    run (Rfdet_core.Rfdet_runtime.make ~opts:Rfdet_core.Options.ci)
  in
  let pthreads = run Rfdet_baselines.Pthreads_runtime.make in
  (* decode the outputs into the word-frequency table *)
  let freqs =
    List.mapi (fun w (_, c) -> (vocab.(w), Int64.to_int c)) rfdet.Engine.outputs
  in
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) freqs |> fun l ->
    List.filteri (fun i _ -> i < 5) l
  in
  Printf.printf "Top words over a %d-word corpus (%d workers):\n" words workers;
  List.iter (fun (w, c) -> Printf.printf "  %-14s %d\n" w c) top;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 freqs in
  Printf.printf "\nTotal counted: %d (corpus: %d) — %s\n" total words
    (if total = words then "exact" else "MISMATCH");
  Printf.printf
    "Same result under pthreads: %b\n"
    (pthreads.Engine.outputs = rfdet.Engine.outputs);
  Printf.printf
    "Deterministic overhead: %.0f%% more simulated cycles than pthreads\n"
    ((float_of_int rfdet.Engine.sim_time
      /. float_of_int pthreads.Engine.sim_time
     -. 1.)
    *. 100.)
