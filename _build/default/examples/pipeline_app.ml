(* A dedup-style pipeline on the public API: producer -> workers ->
   consumer over bounded queues, demonstrating that pipeline programs —
   the worst case for global-barrier DMT — run efficiently under RFDet.

     dune exec examples/pipeline_app.exe *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Pipeline = Rfdet_workloads.Pipeline

let items = 400

let app () =
  let q_in = Pipeline.create ~capacity:8 in
  let q_out = Pipeline.create ~capacity:8 in
  let stage_workers = 2 in
  let producer () =
    for i = 1 to items do
      Pipeline.push q_in i;
      Api.tick 300
    done;
    for _ = 1 to stage_workers do
      Pipeline.push q_in (-1)
    done
  in
  let worker () =
    let running = ref true in
    while !running do
      let item = Pipeline.pop q_in in
      if item = -1 then begin
        running := false;
        Pipeline.push q_out (-1)
      end
      else begin
        (* "hash" the item *)
        Api.tick 900;
        Pipeline.push q_out ((item * 2654435761) land 0xFFFFF)
      end
    done
  in
  let consumer () =
    let finished = ref 0 in
    let acc = Api.malloc 8 in
    while !finished < stage_workers do
      let item = Pipeline.pop q_out in
      if item = -1 then incr finished
      else begin
        Api.store acc (Api.load acc + item);
        Api.tick 150
      end
    done;
    Api.output_int (Api.load acc)
  in
  let tids =
    Api.spawn producer :: Api.spawn consumer
    :: List.init stage_workers (fun _ -> Api.spawn worker)
  in
  List.iter Api.join tids

let () =
  Printf.printf
    "Bounded-queue pipeline, %d items through producer -> 2 workers -> \
     consumer:\n\n"
    items;
  let base = ref 0 in
  List.iter
    (fun (label, policy) ->
      let r = Engine.run policy ~main:app in
      if !base = 0 then base := r.Engine.sim_time;
      let v =
        match r.Engine.outputs with (_, v) :: _ -> Int64.to_int v | [] -> -1
      in
      Printf.printf "%-10s checksum=%-8d cycles=%-9d (%.2fx pthreads)\n" label
        v r.Engine.sim_time
        (float_of_int r.Engine.sim_time /. float_of_int !base))
    [
      ("pthreads", Rfdet_baselines.Pthreads_runtime.make);
      ("rfdet-ci",
       Rfdet_core.Rfdet_runtime.make ~opts:Rfdet_core.Options.ci);
      ("dthreads", Rfdet_baselines.Dthreads_runtime.make);
      ("coredet", Rfdet_baselines.Coredet_runtime.make ?quantum:None);
    ];
  print_endline
    "\nQueue hand-offs are pure release/acquire pairs: RFDet propagates\n\
     just the producer's slices to the consumer, while the global-barrier\n\
     designs stop every thread at every queue operation."
