(* Quickstart: the 60-second tour.

   A deliberately racy program — two threads increment a shared counter
   WITHOUT a lock — is run under conventional pthreads and under RFDet,
   each with several different OS-scheduling seeds.

   Under pthreads the lost-update race makes the result vary from run to
   run.  Under RFDet (strong determinism via deterministic lazy release
   consistency) the program still has a race — but it resolves the same
   way every single time, no matter how the scheduler behaves.

     dune exec examples/quickstart.exe *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api

(* The program under test: written once, runs under every runtime. *)
let racy_counter () =
  let counter = Api.malloc 8 in
  let body () =
    for _ = 1 to 2000 do
      (* unprotected read-modify-write: a classic data race *)
      Api.store counter (Api.load counter + 1);
      Api.tick 3
    done
  in
  let t1 = Api.spawn body in
  let t2 = Api.spawn body in
  Api.join t1;
  Api.join t2;
  Api.output_int (Api.load counter)

let final_count policy seed =
  let config =
    { Engine.default_config with seed; jitter_mean = 10. (* OS noise *) }
  in
  match (Engine.run ~config policy ~main:racy_counter).Engine.outputs with
  | [ (_, v) ] -> Int64.to_int v
  | _ -> assert false

let () =
  let seeds = [ 1L; 2L; 3L; 4L; 5L ] in
  print_endline "Two threads, 2000 unlocked increments each (expected 4000):\n";
  print_endline "pthreads (conventional, nondeterministic):";
  List.iter
    (fun s ->
      Printf.printf "  seed %Ld -> final counter = %d\n" s
        (final_count Rfdet_baselines.Pthreads_runtime.make s))
    seeds;
  print_endline "\nRFDet (deterministic lazy release consistency):";
  List.iter
    (fun s ->
      Printf.printf "  seed %Ld -> final counter = %d\n" s
        (final_count (Rfdet_core.Rfdet_runtime.make ~opts:Rfdet_core.Options.ci) s))
    seeds;
  print_endline
    "\nThe race is still there under RFDet — but it resolves identically\n\
     on every run: same input, same output, whatever the scheduler does."
