(* Deterministic lock-free programming with the low-level atomics
   interface (the paper's Sections 4.6/6 extension).

   Workers pull items from an atomic ticket dispenser, aggregate a sum
   with fetch-and-add, and maintain a global maximum with a CAS loop —
   three classic lock-free idioms.  Under RFDet they are deterministic:
   the CAS winners, the ticket assignment, everything is reproducible
   under arbitrary scheduler noise.

     dune exec examples/atomics_app.exe *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let items = 600

let workers = 4

let app () =
  let data = Api.malloc (8 * items) in
  let rng = Det_rng.create 11L in
  for i = 0 to items - 1 do
    Api.store (data + (8 * i)) (Det_rng.int rng 1_000_000)
  done;
  let tickets = Api.malloc 8 in
  let sum = Api.malloc 8 in
  let maxv = Api.malloc 8 in
  let claims = Api.malloc (8 * workers) in
  let worker k () =
    let claimed = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      (* lock-free work claim *)
      let i = Api.atomic_fetch_add tickets 1 in
      if i >= items then continue_ := false
      else begin
        incr claimed;
        let v = Api.load (data + (8 * i)) in
        (* lock-free aggregation *)
        ignore (Api.atomic_fetch_add sum v);
        (* CAS loop for the maximum *)
        let rec bump () =
          let cur = Api.atomic_load maxv in
          if v > cur && Api.atomic_cas maxv ~expect:cur ~desired:v <> cur then
            bump ()
        in
        bump ();
        Api.tick 120
      end
    done;
    Api.store (claims + (8 * k)) !claimed
  in
  let tids = List.init workers (fun k -> Api.spawn (worker k)) in
  List.iter Api.join tids;
  Api.output_int (Api.atomic_load sum);
  Api.output_int (Api.atomic_load maxv);
  for k = 0 to workers - 1 do
    Api.output_int (Api.load (claims + (8 * k)))
  done

let () =
  let run policy seed =
    let config =
      { Engine.default_config with seed; jitter_mean = 12. }
    in
    Engine.run ~config policy ~main:app
  in
  Printf.printf
    "Lock-free aggregation over %d items, %d workers (ticket dispenser, \
     fetch-add sum, CAS max):\n\n"
    items workers;
  List.iter
    (fun (label, policy) ->
      let results = List.init 5 (fun i -> run policy (Int64.of_int (i + 1))) in
      let decode r =
        match r.Engine.outputs with
        | (_, sum) :: (_, maxv) :: claims ->
          (sum, maxv, List.map snd claims)
        | _ -> assert false
      in
      let sum, maxv, claims = decode (List.hd results) in
      let sigs =
        List.sort_uniq compare (List.map Engine.output_signature results)
      in
      Printf.printf
        "%-10s sum=%Ld max=%Ld per-worker claims=[%s]\n\
        \           distinct results over 5 noisy runs: %d%s\n"
        label sum maxv
        (String.concat "; " (List.map Int64.to_string claims))
        (List.length sigs)
        (if List.length sigs = 1 then "  <- deterministic" else "")
      )
    [
      ("pthreads", Rfdet_baselines.Pthreads_runtime.make);
      ("rfdet-ci", Rfdet_core.Rfdet_runtime.make ~opts:Rfdet_core.Options.ci);
    ];
  print_endline
    "\nThe sum and max agree everywhere (atomics are never lost), but the\n\
     per-worker work assignment — who claimed how many tickets — is only\n\
     reproducible under RFDet.  That is what the paper's 'interface for\n\
     lock-free synchronization' future work buys: deterministic lock-free\n\
     programs."
