examples/atomics_app.mli:
