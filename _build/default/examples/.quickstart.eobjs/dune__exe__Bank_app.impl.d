examples/bank_app.ml: Array Int64 List Printf Rfdet_baselines Rfdet_core Rfdet_sim Rfdet_util
