examples/racey_demo.mli:
