examples/wordcount_app.mli:
