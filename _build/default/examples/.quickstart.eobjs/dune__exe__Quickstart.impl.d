examples/quickstart.ml: Int64 List Printf Rfdet_baselines Rfdet_core Rfdet_sim
