examples/pipeline_app.mli:
