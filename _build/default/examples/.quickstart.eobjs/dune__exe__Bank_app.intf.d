examples/bank_app.mli:
