examples/racey_demo.ml: Int64 List Printf Rfdet_harness Rfdet_workloads
