examples/quickstart.mli:
