(* A lock-heavy "bank": concurrent transfers between accounts with
   per-account mutexes, an invariant check, and a deterministic audit.

   Demonstrates on a realistic lock-ordering workload that:
   - RFDet preserves the semantics of a race-free pthreads program
     (money is conserved under every runtime), and
   - the *audit log order* — which depends on lock-acquisition order and
     is legitimately nondeterministic under pthreads — is reproducible
     under RFDet, run after run.

     dune exec examples/bank_app.exe *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let accounts = 16

let initial_balance = 60

let transfers_per_teller = 150

let bank ~tellers () =
  let balances = Api.malloc (8 * accounts) in
  for i = 0 to accounts - 1 do
    Api.store (balances + (8 * i)) initial_balance
  done;
  let locks = Array.init accounts (fun _ -> Api.mutex_create ()) in
  (* audit log: count + entries, protected by its own lock *)
  let log_lock = Api.mutex_create () in
  let log_len = Api.malloc 8 in
  let teller k () =
    let rng = Det_rng.create (Int64.of_int (1000 + k)) in
    for _ = 1 to transfers_per_teller do
      let src = Det_rng.int rng accounts in
      let dst = (src + 1 + Det_rng.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Det_rng.int rng 55 in
      (* classic deadlock-free ordering: lock the lower index first *)
      let a = min src dst and b = max src dst in
      Api.lock locks.(a);
      Api.lock locks.(b);
      let sb = Api.load (balances + (8 * src)) in
      if sb >= amount then begin
        Api.store (balances + (8 * src)) (sb - amount);
        Api.store (balances + (8 * dst))
          (Api.load (balances + (8 * dst)) + amount);
        Api.with_lock log_lock (fun () ->
            Api.store log_len (Api.load log_len + 1))
      end;
      Api.unlock locks.(b);
      Api.unlock locks.(a);
      Api.tick 120
    done
  in
  let tids = List.init tellers (fun k -> Api.spawn (teller k)) in
  List.iter Api.join tids;
  (* invariant: total money conserved *)
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + Api.load (balances + (8 * i))
  done;
  Api.output_int !total;
  Api.output_int (Api.load log_len);
  (* the full balance vector is the deterministic "audit" *)
  for i = 0 to accounts - 1 do
    Api.output_int (Api.load (balances + (8 * i)))
  done

let run policy seed =
  let config = { Engine.default_config with seed; jitter_mean = 15. } in
  Engine.run ~config policy ~main:(bank ~tellers:4)

let () =
  let check label policy =
    let results = List.init 6 (fun i -> run policy (Int64.of_int (i + 1))) in
    let totals =
      List.map
        (fun r ->
          match r.Engine.outputs with (_, t) :: _ -> Int64.to_int t | [] -> -1)
        results
    in
    let sigs =
      List.sort_uniq compare (List.map Engine.output_signature results)
    in
    Printf.printf
      "%-10s money conserved: %b   distinct audits over 6 noisy runs: %d%s\n"
      label
      (List.for_all (fun t -> t = accounts * initial_balance) totals)
      (List.length sigs)
      (if List.length sigs = 1 then "  <- reproducible" else "");
  in
  Printf.printf "4 tellers x %d transfers over %d accounts (total = %d):\n\n"
    transfers_per_teller accounts (accounts * initial_balance);
  check "pthreads" Rfdet_baselines.Pthreads_runtime.make;
  check "dthreads" Rfdet_baselines.Dthreads_runtime.make;
  check "rfdet-ci"
    (Rfdet_core.Rfdet_runtime.make ~opts:Rfdet_core.Options.ci);
  print_endline
    "\nEvery runtime conserves money (the program is race-free), but only\n\
     the deterministic runtimes reproduce the same audit trail under\n\
     scheduler noise — which is what makes a failure debuggable."
