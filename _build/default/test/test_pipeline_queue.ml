(* The bounded producer/consumer queue that dedup and ferret build on:
   FIFO per producer, no loss, no duplication, blocking at both ends —
   under every runtime. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Pipeline = Rfdet_workloads.Pipeline
module Options = Rfdet_core.Options

let base = Layout.globals_base

let policies () =
  [
    ("pthreads", Rfdet_baselines.Pthreads_runtime.make);
    ("kendo", Rfdet_baselines.Kendo_runtime.make);
    ("dthreads", Rfdet_baselines.Dthreads_runtime.make);
    ("coredet", Rfdet_baselines.Coredet_runtime.make ?quantum:None);
    ("rfdet-ci", Rfdet_core.Rfdet_runtime.make ~opts:Options.ci);
  ]

let test_fifo_single_producer () =
  (* one producer, one consumer: strict FIFO through a tiny queue *)
  let items = 50 in
  let main () =
    let q = Pipeline.create ~capacity:3 in
    let producer =
      Api.spawn (fun () ->
          for i = 1 to items do
            Pipeline.push q (i * 7)
          done)
    in
    let consumer =
      Api.spawn (fun () ->
          let in_order = ref 1 in
          for i = 1 to items do
            let v = Pipeline.pop q in
            if v <> i * 7 then in_order := 0
          done;
          Api.output_int !in_order)
    in
    Api.join producer;
    Api.join consumer
  in
  List.iter
    (fun (label, policy) ->
      let r = Engine.run policy ~main in
      Alcotest.(check bool) (label ^ ": FIFO preserved") true
        (List.mem (2, 1L) r.Engine.outputs))
    (policies ())

let test_no_loss_no_dup_multi () =
  (* 2 producers, 2 consumers: the multiset of items is preserved *)
  let per_producer = 40 in
  let main () =
    let q = Pipeline.create ~capacity:4 in
    let producer k () =
      for i = 1 to per_producer do
        Pipeline.push q ((k * 1000) + i)
      done;
      Pipeline.push q (-1)
    in
    let consumer idx () =
      let sum = ref 0 and count = ref 0 and finished = ref 0 in
      while !finished < 1 do
        let v = Pipeline.pop q in
        if v = -1 then incr finished
        else begin
          sum := !sum + v;
          incr count
        end
      done;
      Api.store (base + (8 * idx)) !sum;
      Api.store (base + 64 + (8 * idx)) !count
    in
    let tids =
      [
        Api.spawn (producer 1);
        Api.spawn (producer 2);
        Api.spawn (consumer 0);
        Api.spawn (consumer 1);
      ]
    in
    List.iter Api.join tids;
    Api.output_int (Api.load base + Api.load (base + 8));
    Api.output_int (Api.load (base + 64) + Api.load (base + 72))
  in
  let expected_sum =
    List.fold_left ( + ) 0
      (List.concat_map
         (fun k -> List.init per_producer (fun i -> (k * 1000) + i + 1))
         [ 1; 2 ])
  in
  List.iter
    (fun (label, policy) ->
      let r = Engine.run policy ~main in
      let get tid_ordered = List.map snd r.Engine.outputs |> fun l -> List.nth l tid_ordered in
      Alcotest.(check int64) (label ^ ": sum preserved")
        (Int64.of_int expected_sum) (get 0);
      Alcotest.(check int64)
        (label ^ ": count preserved")
        (Int64.of_int (2 * per_producer))
        (get 1))
    (policies ())

let test_capacity_blocks_producer () =
  (* a producer into a full queue must wait for the consumer: the
     producer's completion time includes the consumer's slow drains *)
  let main () =
    let q = Pipeline.create ~capacity:2 in
    let producer =
      Api.spawn (fun () ->
          for i = 1 to 10 do
            Pipeline.push q i
          done;
          Api.output_int 1)
    in
    let consumer =
      Api.spawn (fun () ->
          for _ = 1 to 10 do
            Api.tick 20_000;
            ignore (Pipeline.pop q)
          done)
    in
    Api.join producer;
    Api.join consumer
  in
  let r = Engine.run Rfdet_baselines.Pthreads_runtime.make ~main in
  (* 10 drains x 20k ticks ≈ 200k cycles: the producer cannot finish
     much before that despite queue pushes being cheap *)
  Alcotest.(check bool) "backpressure applied" true (r.Engine.sim_time > 150_000)

let test_deterministic_consumer_assignment () =
  (* which consumer gets which item is schedule-dependent under
     pthreads, pinned under rfdet *)
  let main () =
    let q = Pipeline.create ~capacity:4 in
    let producer =
      Api.spawn (fun () ->
          for i = 1 to 30 do
            Pipeline.push q i
          done;
          Pipeline.push q (-1);
          Pipeline.push q (-1))
    in
    let consumer idx () =
      let sum = ref 0 in
      let running = ref true in
      while !running do
        let v = Pipeline.pop q in
        if v = -1 then running := false
        else begin
          sum := !sum + v;
          Api.tick 500
        end
      done;
      Api.store (base + (8 * idx)) !sum
    in
    let tids =
      [ producer; Api.spawn (consumer 0); Api.spawn (consumer 1) ]
    in
    List.iter Api.join tids;
    Api.output_int (Api.load base);
    Api.output_int (Api.load (base + 8))
  in
  let sig_of policy seed =
    Engine.output_signature
      (Engine.run
         ~config:{ Engine.default_config with seed; jitter_mean = 120. }
         policy ~main)
  in
  let rfdet = Rfdet_core.Rfdet_runtime.make ~opts:Options.ci in
  let sigs =
    List.init 5 (fun i -> sig_of rfdet (Int64.of_int (i + 1)))
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "rfdet: one assignment" 1 (List.length sigs);
  let psigs =
    List.init 8 (fun i ->
        sig_of Rfdet_baselines.Pthreads_runtime.make (Int64.of_int (i + 1)))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "pthreads: several assignments" true
    (List.length psigs > 1)

let suites =
  [
    ( "pipeline-queue",
      [
        Alcotest.test_case "FIFO single producer" `Quick
          test_fifo_single_producer;
        Alcotest.test_case "no loss / no dup (2x2)" `Quick
          test_no_loss_no_dup_multi;
        Alcotest.test_case "backpressure" `Quick test_capacity_blocks_producer;
        Alcotest.test_case "deterministic consumer assignment" `Quick
          test_deterministic_consumer_assignment;
      ] );
  ]
