module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Coredet = Rfdet_baselines.Coredet_runtime

let run ?(quantum = 10_000) ?config main =
  Engine.run ?config (Coredet.make ~quantum) ~main

let base = Layout.globals_base

let test_basic_counter () =
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let body () =
          for _ = 1 to 15 do
            Api.with_lock m (fun () -> Api.store base (Api.load base + 1))
          done
        in
        let c1 = Api.spawn body and c2 = Api.spawn body in
        Api.join c1;
        Api.join c2;
        Api.output_int (Api.load base))
  in
  Alcotest.(check bool) "counter" true (r.Engine.outputs = [ (0, 30L) ])

let test_quantum_preempts_compute () =
  (* A pure-compute thread must be stopped at quantum boundaries: the
     number of global barriers grows with its work / quantum. *)
  let work = 200_000 in
  let r =
    run ~quantum:10_000 (fun () ->
        let c =
          Api.spawn (fun () ->
              for _ = 1 to 20 do
                Api.tick (work / 20)
              done)
        in
        let l =
          Api.spawn (fun () ->
              let m = Api.mutex_create () in
              Api.with_lock m (fun () -> Api.store base 1))
        in
        Api.join c;
        Api.join l)
  in
  Alcotest.(check bool) "many quantum barriers" true
    (r.Engine.profile.Rfdet_sim.Profile.barrier_stalls > 10)

let test_deterministic_across_seeds () =
  let racy () =
    let body k () =
      for i = 1 to 300 do
        let slot = base + (8 * ((i * (k + 2)) mod 5)) in
        Api.store slot ((Api.load slot * 5) + i);
        Api.tick 17
      done
    in
    let ts = List.init 3 (fun k -> Api.spawn (body k)) in
    List.iter Api.join ts;
    let s = ref 0 in
    for i = 0 to 4 do
      s := (!s * 131) lxor Api.load (base + (8 * i))
    done;
    Api.output_int !s
  in
  let sig_of seed =
    let config =
      { Engine.default_config with seed; jitter_mean = 10. }
    in
    Engine.output_signature (run ~config racy)
  in
  let s1 = sig_of 1L in
  List.iter
    (fun s -> Alcotest.(check string) "deterministic" s1 (sig_of s))
    [ 2L; 3L; 4L ]

let test_isolation_within_quantum () =
  (* within a quantum, stores are buffered: invisible to other threads *)
  let r =
    run ~quantum:1_000_000 (fun () ->
        let c = Api.spawn (fun () -> Api.store base 9) in
        Api.tick 50_000;
        Api.output_int (Api.load base);
        Api.join c)
  in
  Alcotest.(check bool) "buffered store invisible" true
    (List.mem (0, 0L) r.Engine.outputs)

let test_commit_at_quantum_boundary () =
  (* after both threads cross a quantum barrier, buffered stores are
     visible (strong determinism with quanta, unlike DThreads which
     would wait for a sync op) *)
  let r =
    run ~quantum:5_000 (fun () ->
        let c =
          Api.spawn (fun () ->
              Api.store base 7;
              Api.tick 20_000)
        in
        (* cross several quantum barriers worth of compute *)
        Api.tick 20_000;
        Api.output_int (Api.load base);
        Api.join c)
  in
  Alcotest.(check bool) "store visible after quantum commits" true
    (List.mem (0, 7L) r.Engine.outputs)

let suites =
  [
    ( "coredet",
      [
        Alcotest.test_case "lock counter" `Quick test_basic_counter;
        Alcotest.test_case "quantum preempts compute" `Quick
          test_quantum_preempts_compute;
        Alcotest.test_case "deterministic across seeds" `Quick
          test_deterministic_across_seeds;
        Alcotest.test_case "isolation within quantum" `Quick
          test_isolation_within_quantum;
        Alcotest.test_case "commit at quantum boundary" `Quick
          test_commit_at_quantum_boundary;
      ] );
  ]
