open Rfdet_util

let test_basic () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 3;
  Pqueue.push q 1;
  Pqueue.push q 2;
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q)

let test_pop_exn () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty" Not_found (fun () ->
      ignore (Pqueue.pop_exn q));
  Pqueue.push q 42;
  Alcotest.(check int) "pop_exn" 42 (Pqueue.pop_exn q)

let test_clear_fold () =
  let q = Pqueue.create ~cmp:compare in
  List.iter (Pqueue.push q) [ 5; 1; 4 ];
  Alcotest.(check int) "fold sum" 10 (Pqueue.fold q ~init:0 ~f:( + ));
  Alcotest.(check bool) "exists" true (Pqueue.exists q ~f:(fun x -> x = 4));
  Alcotest.(check bool) "not exists" false (Pqueue.exists q ~f:(fun x -> x = 9));
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_ties_deterministic () =
  (* Entries comparing equal must pop in a stable, deterministic order
     given the same pushes — the scheduler depends on total orders, but
     the heap itself must at least be reproducible. *)
  let run () =
    let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
    List.iter (Pqueue.push q) [ (1, "a"); (1, "b"); (0, "c"); (1, "d") ];
    let rec drain acc =
      match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

let prop_sorted_drain =
  QCheck2.Test.make ~name:"pqueue: drains in sorted order" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let q = Pqueue.create ~cmp:compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_interleaved =
  QCheck2.Test.make ~name:"pqueue: interleaved push/pop preserves min"
    ~count:200
    QCheck2.Gen.(list (pair bool small_int))
    (fun ops ->
      let q = Pqueue.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Pqueue.push q v;
            model := List.sort compare (v :: !model);
            true
          end
          else
            match Pqueue.pop q, !model with
            | None, [] -> true
            | Some x, m :: rest ->
              model := rest;
              x = m
            | Some _, [] | None, _ :: _ -> false)
        ops)

let suites =
  [
    ( "pqueue",
      [
        Alcotest.test_case "basic order" `Quick test_basic;
        Alcotest.test_case "pop_exn" `Quick test_pop_exn;
        Alcotest.test_case "clear/fold/exists" `Quick test_clear_fold;
        Alcotest.test_case "deterministic ties" `Quick test_ties_deterministic;
        QCheck_alcotest.to_alcotest prop_sorted_drain;
        QCheck_alcotest.to_alcotest prop_interleaved;
      ] );
  ]
