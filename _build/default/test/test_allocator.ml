open Rfdet_mem

let test_basic () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 100 in
  Alcotest.(check bool) "in heap" true
    (p >= Layout.heap_base && p < Layout.heap_limit);
  Alcotest.(check int) "rounded to class" 128 (Allocator.size_of a p);
  Alcotest.(check int) "one allocation" 1 (Allocator.allocations a)

let test_no_overlap () =
  let a = Allocator.create () in
  let ranges = ref [] in
  for i = 1 to 200 do
    let n = 1 + (i * 7 mod 300) in
    let p = Allocator.malloc a n in
    let size = Allocator.size_of a p in
    List.iter
      (fun (q, qs) ->
        if p < q + qs && q < p + size then
          Alcotest.failf "overlap: (%d,%d) vs (%d,%d)" p size q qs)
      !ranges;
    ranges := (p, size) :: !ranges
  done

let test_free_reuse () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 64 in
  Allocator.free a p;
  let q = Allocator.malloc a 64 in
  Alcotest.(check int) "small blocks are recycled" p q

let test_double_free () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 8 in
  Allocator.free a p;
  Alcotest.check_raises "double free"
    (Invalid_argument "Allocator.free: not a live allocation") (fun () ->
      Allocator.free a p)

let test_large_alloc () =
  let a = Allocator.create () in
  let p = Allocator.malloc a (3 * Page.size + 1) in
  Alcotest.(check int) "page aligned" 0 (p mod Page.size);
  Alcotest.(check int) "page rounded" (4 * Page.size) (Allocator.size_of a p)

let test_live_peak () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 16 in
  let q = Allocator.malloc a 16 in
  Alcotest.(check int) "live" 32 (Allocator.live_bytes a);
  Allocator.free a p;
  Allocator.free a q;
  Alcotest.(check int) "live after free" 0 (Allocator.live_bytes a);
  Alcotest.(check int) "peak sticky" 32 (Allocator.peak_bytes a)

let test_zero_and_negative () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 0 in
  Alcotest.(check int) "zero-size gets a slot" 16 (Allocator.size_of a p);
  Alcotest.check_raises "negative"
    (Invalid_argument "Allocator.malloc: negative size") (fun () ->
      ignore (Allocator.malloc a (-1)))

let test_determinism () =
  (* Two allocators fed the same request sequence hand out the same
     addresses — the property RFDet's shared allocator must provide. *)
  let script = List.init 100 (fun i -> 1 + (i * 13 mod 500)) in
  let run () =
    let a = Allocator.create () in
    List.map (Allocator.malloc a) script
  in
  Alcotest.(check (list int)) "same addresses" (run ()) (run ())

let prop_no_overlap_random =
  QCheck2.Test.make ~name:"allocator: live allocations never overlap"
    ~count:100
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 5000))
    (fun sizes ->
      let a = Allocator.create () in
      let live = List.map (fun n -> Allocator.malloc a n) sizes in
      let ranges = List.map (fun p -> (p, Allocator.size_of a p)) live in
      let rec pairwise = function
        | [] -> true
        | (p, ps) :: rest ->
          List.for_all (fun (q, qs) -> p + ps <= q || q + qs <= p) rest
          && pairwise rest
      in
      pairwise ranges)

let suites =
  [
    ( "allocator",
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "no overlap" `Quick test_no_overlap;
        Alcotest.test_case "free + reuse" `Quick test_free_reuse;
        Alcotest.test_case "double free" `Quick test_double_free;
        Alcotest.test_case "large alloc" `Quick test_large_alloc;
        Alcotest.test_case "live/peak accounting" `Quick test_live_peak;
        Alcotest.test_case "zero/negative size" `Quick test_zero_and_negative;
        Alcotest.test_case "deterministic addresses" `Quick test_determinism;
        QCheck_alcotest.to_alcotest prop_no_overlap_random;
      ] );
  ]
