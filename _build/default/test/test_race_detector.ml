module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Detector = Rfdet_detect.Race_detector
module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload

let base = Layout.globals_base

let test_clean_locked_program () =
  let report =
    Detector.check ~main:(fun () ->
        let m = Api.mutex_create () in
        let body () =
          for _ = 1 to 20 do
            Api.with_lock m (fun () -> Api.store base (Api.load base + 1))
          done
        in
        let t1 = Api.spawn body and t2 = Api.spawn body in
        Api.join t1;
        Api.join t2;
        Api.output_int (Api.load base))
  in
  Alcotest.(check int) "no races" 0 (List.length report.Detector.races);
  Alcotest.(check bool) "accesses checked" true
    (report.Detector.accesses_checked > 0)

let test_write_write_race () =
  let report =
    Detector.check ~main:(fun () ->
        let t1 = Api.spawn (fun () -> Api.store base 1) in
        let t2 = Api.spawn (fun () -> Api.store base 2) in
        Api.join t1;
        Api.join t2)
  in
  Alcotest.(check bool) "ww race found" true
    (List.exists
       (fun r -> r.Detector.kind = Detector.Write_write && r.Detector.addr = base)
       report.Detector.races)

let test_write_read_race () =
  let report =
    Detector.check ~main:(fun () ->
        let writer = Api.spawn (fun () -> Api.store base 1) in
        let reader =
          Api.spawn (fun () ->
              Api.tick 10_000;
              Api.output_int (Api.load base))
        in
        Api.join writer;
        Api.join reader)
  in
  Alcotest.(check bool) "wr race found" true
    (List.exists (fun r -> r.Detector.addr = base) report.Detector.races)

let test_read_write_race () =
  let report =
    Detector.check ~main:(fun () ->
        let reader = Api.spawn (fun () -> Api.output_int (Api.load base)) in
        let writer =
          Api.spawn (fun () ->
              Api.tick 10_000;
              Api.store base 1)
        in
        Api.join reader;
        Api.join writer)
  in
  Alcotest.(check bool) "rw race found" true
    (List.exists
       (fun r -> r.Detector.kind = Detector.Read_write)
       report.Detector.races)

let test_fork_join_edges () =
  (* parent write -> child read and child write -> joiner read are
     ordered: no race *)
  let report =
    Detector.check ~main:(fun () ->
        Api.store base 1;
        let c =
          Api.spawn (fun () ->
              Api.output_int (Api.load base);
              Api.store (base + 8) 2)
        in
        Api.join c;
        Api.output_int (Api.load (base + 8)))
  in
  Alcotest.(check int) "no races across fork/join" 0
    (List.length report.Detector.races)

let test_atomics_are_synchronization () =
  (* message passing through an atomic flag: the plain data accesses are
     ordered by the release/acquire pair, so no race *)
  let report =
    Detector.check ~main:(fun () ->
        let data = base and flag = base + 128 in
        let producer =
          Api.spawn (fun () ->
              Api.store data 7;
              Api.atomic_store flag 1)
        in
        let consumer =
          Api.spawn (fun () ->
              while Api.atomic_load flag = 0 do
                Api.tick 30
              done;
              Api.output_int (Api.load data))
        in
        Api.join producer;
        Api.join consumer)
  in
  Alcotest.(check int) "atomic flag publication is race-free" 0
    (List.length report.Detector.races)

let test_missing_release_detected () =
  (* same shape but a PLAIN flag store: now the data accesses race *)
  let report =
    Detector.check ~main:(fun () ->
        let data = base and flag = base + 128 in
        let producer =
          Api.spawn (fun () ->
              Api.store data 7;
              Api.store flag 1)
        in
        let consumer =
          Api.spawn (fun () ->
              while Api.load flag = 0 do
                Api.tick 30
              done;
              Api.output_int (Api.load data))
        in
        Api.join producer;
        Api.join consumer)
  in
  Alcotest.(check bool) "ad hoc flag synchronization flagged" true
    (List.length report.Detector.races > 0)

let test_racey_is_racy () =
  let racey = Registry.find "racey" in
  let cfg = { Workload.default_cfg with scale = 0.2 } in
  let report = Detector.check ~main:(racey.Workload.main cfg) in
  Alcotest.(check bool) "racey has many racy addresses" true
    (report.Detector.racy_addresses > 5)

let test_benchmarks_race_free () =
  (* the 16 Table-1 workloads are written race-free — verify it *)
  let cfg = { Workload.default_cfg with scale = 0.2 } in
  List.iter
    (fun w ->
      let report = Detector.check ~main:(w.Workload.main cfg) in
      Alcotest.(check int)
        (w.Workload.name ^ " is race-free")
        0 (List.length report.Detector.races))
    Registry.table1

let suites =
  [
    ( "race-detector",
      [
        Alcotest.test_case "locked program clean" `Quick
          test_clean_locked_program;
        Alcotest.test_case "write-write race" `Quick test_write_write_race;
        Alcotest.test_case "write-read race" `Quick test_write_read_race;
        Alcotest.test_case "read-write race" `Quick test_read_write_race;
        Alcotest.test_case "fork/join edges" `Quick test_fork_join_edges;
        Alcotest.test_case "atomics synchronize" `Quick
          test_atomics_are_synchronization;
        Alcotest.test_case "ad hoc flag flagged" `Quick
          test_missing_release_detected;
        Alcotest.test_case "racey is racy" `Quick test_racey_is_racy;
        Alcotest.test_case "all 16 benchmarks race-free" `Slow
          test_benchmarks_race_free;
      ] );
  ]
