(* Section 3.3, consistency rule 1: "execution respects single-threaded
   semantics".  Any single-threaded program must produce identical
   observable output under every runtime — the DMT machinery (private
   spaces, slices, fences, quanta) must be invisible when there is no
   concurrency.  Checked on randomized single-thread programs over the
   full op vocabulary. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Options = Rfdet_core.Options

type step =
  | Store of int * int
  | Load_out of int
  | Byte_store of int * int
  | Byte_load_out of int
  | Work of int
  | Alloc_use  (* malloc, store, load, output, free *)
  | Atomic_add of int * int
  | Locked_bump of int  (* lock; slot++ ; unlock — self-merging slices *)
  | Spawn_join_child of step list  (* a child running a few steps *)

let slot_addr slot = Layout.globals_base + (8 * slot)

let rec exec mutex step =
  match step with
  | Store (s, v) -> Api.store (slot_addr s) v
  | Load_out s -> Api.output_int (Api.load (slot_addr s))
  | Byte_store (s, v) -> Api.store_byte (slot_addr s + 3) v
  | Byte_load_out s -> Api.output_int (Api.load_byte (slot_addr s + 3))
  | Work n -> Api.tick n
  | Alloc_use ->
    let p = Api.malloc 32 in
    Api.store p 99;
    Api.output_int (Api.load p);
    Api.free p
  | Atomic_add (s, d) -> Api.output_int (Api.atomic_fetch_add (slot_addr s) d)
  | Locked_bump s ->
    Api.with_lock mutex (fun () ->
        Api.store (slot_addr s) (Api.load (slot_addr s) + 1))
  | Spawn_join_child steps ->
    let c = Api.spawn (fun () -> List.iter (exec mutex) steps) in
    Api.join c

let run_program steps () =
  let mutex = Api.mutex_create () in
  List.iter (exec mutex) steps;
  for s = 0 to 5 do
    Api.output_int (Api.load (slot_addr s))
  done

let gen_step =
  let open QCheck2.Gen in
  let base =
    oneof
      [
        map2 (fun s v -> Store (s, v)) (int_bound 5) (int_bound 500);
        map (fun s -> Load_out s) (int_bound 5);
        map2 (fun s v -> Byte_store (s, v)) (int_bound 5) (int_bound 255);
        map (fun s -> Byte_load_out s) (int_bound 5);
        map (fun n -> Work (n * 7)) (int_bound 40);
        return Alloc_use;
        map2 (fun s d -> Atomic_add (s, d)) (int_bound 5) (int_bound 9);
        map (fun s -> Locked_bump s) (int_bound 5);
      ]
  in
  QCheck2.Gen.oneof
    [ base; map (fun l -> Spawn_join_child l) (list_size (int_range 1 4) base) ]

let gen_program = QCheck2.Gen.(list_size (int_range 1 15) gen_step)

let all_policies () =
  [
    Rfdet_baselines.Pthreads_runtime.make;
    Rfdet_baselines.Kendo_runtime.make;
    Rfdet_baselines.Dthreads_runtime.make;
    Rfdet_baselines.Coredet_runtime.make ~quantum:5_000;
    Rfdet_core.Rfdet_runtime.make ~opts:Options.ci;
    Rfdet_core.Rfdet_runtime.make ~opts:Options.pf;
    Rfdet_core.Dlrc_model.make;
  ]

let prop_sequential_equivalence =
  QCheck2.Test.make
    ~name:"sequential programs agree across all 7 runtimes" ~count:80
    gen_program
    (fun steps ->
      let outputs =
        List.map
          (fun policy ->
            (Engine.run policy ~main:(run_program steps)).Engine.outputs)
          (all_policies ())
      in
      match outputs with
      | first :: rest -> List.for_all (( = ) first) rest
      | [] -> false)

let test_directed_sequential () =
  (* mixed-width access to the same word: byte stores inside a word *)
  let steps =
    [
      Store (0, 0x11223344);
      Byte_store (0, 0xAB);
      Load_out 0;
      Byte_load_out 0;
      Atomic_add (0, 5);
      Load_out 0;
    ]
  in
  let outputs =
    List.map
      (fun policy -> (Engine.run policy ~main:(run_program steps)).Engine.outputs)
      (all_policies ())
  in
  match outputs with
  | first :: rest ->
    Alcotest.(check bool) "all agree" true (List.for_all (( = ) first) rest)
  | [] -> Alcotest.fail "no runtimes"

let suites =
  [
    ( "sequential",
      [
        Alcotest.test_case "directed mixed-width" `Quick
          test_directed_sequential;
        QCheck_alcotest.to_alcotest prop_sequential_equivalence;
      ] );
  ]
