(* The low-level atomics interface (the paper's Sections 4.6/6 future
   work): deterministic lock-free synchronization. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Options = Rfdet_core.Options
module Runner = Rfdet_harness.Runner

let base = Layout.globals_base

let all_policies =
  [
    ("pthreads", Rfdet_baselines.Pthreads_runtime.make);
    ("kendo", Rfdet_baselines.Kendo_runtime.make);
    ("dthreads", Rfdet_baselines.Dthreads_runtime.make);
    ("coredet", Rfdet_baselines.Coredet_runtime.make ?quantum:None);
    ("rfdet-ci", Rfdet_core.Rfdet_runtime.make ~opts:Options.ci);
    ("rfdet-pf", Rfdet_core.Rfdet_runtime.make ~opts:Options.pf);
    ("dlrc-model", Rfdet_core.Dlrc_model.make);
  ]

let run ?(seed = 1L) ?(jitter = 0.) policy main =
  let config = { Engine.default_config with seed; jitter_mean = jitter } in
  Engine.run ~config policy ~main

let test_fetch_add_exact () =
  (* lock-free counter: increments are never lost under ANY runtime *)
  let program () =
    let body () =
      for _ = 1 to 50 do
        ignore (Api.atomic_fetch_add base 1);
        Api.tick 7
      done
    in
    let ts = List.init 3 (fun _ -> Api.spawn body) in
    List.iter Api.join ts;
    Api.output_int (Api.atomic_load base)
  in
  List.iter
    (fun (label, policy) ->
      let r = run policy program in
      Alcotest.(check bool)
        (label ^ ": atomic increments exact")
        true
        (List.mem (0, 150L) r.Engine.outputs))
    all_policies

let test_cas_semantics () =
  let program () =
    Api.atomic_store base 5;
    Api.output_int (Api.atomic_cas base ~expect:5 ~desired:9);
    (* 5, swaps *)
    Api.output_int (Api.atomic_load base);
    (* 9 *)
    Api.output_int (Api.atomic_cas base ~expect:5 ~desired:77);
    (* 9, no swap *)
    Api.output_int (Api.atomic_load base);
    (* 9 *)
    Api.output_int (Api.atomic_exchange base 3);
    (* 9 *)
    Api.output_int (Api.atomic_load base)
    (* 3 *)
  in
  List.iter
    (fun (label, policy) ->
      let r = run policy program in
      Alcotest.(check bool)
        (label ^ ": cas/exchange semantics")
        true
        (List.map snd r.Engine.outputs = [ 5L; 9L; 9L; 9L; 9L; 3L ]))
    all_policies

let test_release_acquire_message_passing () =
  (* The integration that matters for RFDet: an atomic store is a
     RELEASE, so plain stores sequenced before it must be visible to a
     thread whose atomic load (ACQUIRE) observes the flag. *)
  let program () =
    let data = base and flag = base + 256 in
    let producer =
      Api.spawn (fun () ->
          Api.store data 4242;
          (* plain store *)
          Api.atomic_store flag 1 (* release *))
    in
    let consumer =
      Api.spawn (fun () ->
          while Api.atomic_load flag = 0 do
            Api.tick 40
          done;
          Api.output_int (Api.load data) (* must see 4242 *))
    in
    Api.join producer;
    Api.join consumer
  in
  List.iter
    (fun (label, policy) ->
      let r = run policy program in
      Alcotest.(check bool)
        (label ^ ": release/acquire publishes plain stores")
        true
        (List.mem (2, 4242L) r.Engine.outputs))
    all_policies

let test_cas_spinlock () =
  (* a CAS spinlock protecting a PLAIN counter: classic lock-free
     ad hoc synchronization, now legal under RFDet *)
  let program () =
    let lock = base and counter = base + 512 in
    let body () =
      for _ = 1 to 12 do
        while Api.atomic_cas lock ~expect:0 ~desired:1 <> 0 do
          Api.tick 25
        done;
        Api.store counter (Api.load counter + 1);
        Api.atomic_store lock 0;
        Api.tick 60
      done
    in
    let t1 = Api.spawn body and t2 = Api.spawn body in
    Api.join t1;
    Api.join t2;
    Api.output_int (Api.load counter)
  in
  List.iter
    (fun (label, policy) ->
      let r = run policy program in
      Alcotest.(check bool)
        (label ^ ": CAS spinlock protects plain data")
        true
        (List.mem (0, 24L) r.Engine.outputs))
    all_policies

let racy_exchange () =
  (* which thread's exchange lands last is schedule-dependent — exactly
     what strong DMT must pin down *)
  let body k () =
    Api.tick (100 + (k * 7));
    ignore (Api.atomic_exchange base (k + 100));
    Api.tick ((3 - k) * 13)
  in
  let ts = List.init 3 (fun k -> Api.spawn (body k)) in
  List.iter Api.join ts;
  Api.output_int (Api.atomic_load base)

let test_deterministic_atomics () =
  List.iter
    (fun (label, policy) ->
      if label <> "pthreads" then begin
        let sig_of seed =
          Engine.output_signature (run ~seed ~jitter:11. policy racy_exchange)
        in
        let s1 = sig_of 1L in
        List.iter
          (fun s ->
            Alcotest.(check string) (label ^ " deterministic") s1 (sig_of s))
          [ 2L; 3L; 4L ]
      end)
    all_policies

let test_rfdet_matches_model_on_atomics () =
  let sig_of policy =
    Engine.output_signature (run ~seed:5L ~jitter:8. policy racy_exchange)
  in
  Alcotest.(check string) "rfdet-ci = dlrc-model"
    (sig_of Rfdet_core.Dlrc_model.make)
    (sig_of (Rfdet_core.Rfdet_runtime.make ~opts:Options.ci))

let test_atomic_counter_profile () =
  let r =
    run
      (Rfdet_core.Rfdet_runtime.make ~opts:Options.ci)
      (fun () ->
        for _ = 1 to 10 do
          ignore (Api.atomic_fetch_add base 1)
        done;
        Api.output_int (Api.atomic_load base))
  in
  Alcotest.(check int) "atomics counted" 11
    r.Engine.profile.Rfdet_sim.Profile.atomics

let suites =
  [
    ( "atomics",
      [
        Alcotest.test_case "fetch_add exact everywhere" `Quick
          test_fetch_add_exact;
        Alcotest.test_case "cas/exchange semantics" `Quick test_cas_semantics;
        Alcotest.test_case "release/acquire message passing" `Quick
          test_release_acquire_message_passing;
        Alcotest.test_case "CAS spinlock" `Quick test_cas_spinlock;
        Alcotest.test_case "deterministic across seeds" `Quick
          test_deterministic_atomics;
        Alcotest.test_case "rfdet matches model" `Quick
          test_rfdet_matches_model_on_atomics;
        Alcotest.test_case "profile counter" `Quick test_atomic_counter_profile;
      ] );
  ]
