module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Options = Rfdet_core.Options
module Rfdet = Rfdet_core.Rfdet_runtime
module Pthreads = Rfdet_baselines.Pthreads_runtime

let run ?(opts = Options.default) ?config main =
  Engine.run ?config (Rfdet.make ~opts) ~main

let with_seed ?(jitter = 10.) seed =
  { Engine.default_config with seed; jitter_mean = jitter }

let base = Layout.globals_base

(* --- visibility semantics ------------------------------------------- *)

let test_isolation_without_sync () =
  (* A store with no happens-before edge to the reader must be invisible
     (DLRC's second implication), unlike pthreads. *)
  let r =
    run (fun () ->
        let c = Api.spawn (fun () -> Api.store base 41) in
        Api.tick 50_000;
        (* Plenty of simulated time for the child's store to "complete";
           it must still be invisible: there is no synchronization. *)
        Api.output_int (Api.load base);
        Api.join c)
  in
  Alcotest.(check bool) "unsynchronized write invisible" true
    (List.mem (0, 0L) r.Engine.outputs)

let test_visibility_through_lock () =
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let producer =
          Api.spawn (fun () ->
              Api.with_lock m (fun () -> Api.store base 7))
        in
        let consumer =
          Api.spawn (fun () ->
              Api.tick 100_000;
              (* acquire strictly after the producer's release *)
              Api.with_lock m (fun () -> Api.output_int (Api.load base)))
        in
        Api.join producer;
        Api.join consumer)
  in
  Alcotest.(check bool) "release->acquire makes write visible" true
    (List.mem (2, 7L) r.Engine.outputs)

let test_figure2_partial_visibility () =
  (* Figure 2 of the paper: T1 sets x=1 inside a critical section and
     x=2 after it; T2, acquiring the lock after T1's release, must see
     x=1 and must NOT see x=2. *)
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let t1 =
          Api.spawn (fun () ->
              Api.with_lock m (fun () -> Api.store base 1);
              Api.store base 2)
        in
        let t2 =
          Api.spawn (fun () ->
              Api.output_int (Api.load base);
              (* print #1: no HB yet -> 0 *)
              Api.tick 200_000;
              Api.with_lock m (fun () -> Api.output_int (Api.load base)))
        in
        Api.join t1;
        Api.join t2)
  in
  let t2_outputs = List.filter_map (fun (tid, v) -> if tid = 2 then Some v else None) r.Engine.outputs in
  Alcotest.(check (list int64)) "sees x=1, not x=2" [ 0L; 1L ] t2_outputs

let test_transitive_propagation () =
  (* Figure 6: x=1 flows T1 -> T2 -> T3 across two different locks. *)
  let r =
    run (fun () ->
        let m1 = Api.mutex_create () in
        let m2 = Api.mutex_create () in
        let t1 = Api.spawn (fun () -> Api.with_lock m1 (fun () -> Api.store base 1)) in
        let t2 =
          Api.spawn (fun () ->
              Api.tick 100_000;
              Api.with_lock m1 (fun () -> Api.tick 10);
              Api.with_lock m2 (fun () -> Api.tick 10))
        in
        let t3 =
          Api.spawn (fun () ->
              Api.tick 300_000;
              Api.with_lock m2 (fun () -> Api.output_int (Api.load base)))
        in
        Api.join t1;
        Api.join t2;
        Api.join t3)
  in
  Alcotest.(check bool) "x=1 reached T3 transitively" true
    (List.mem (3, 1L) r.Engine.outputs)

let test_join_propagates () =
  let r =
    run (fun () ->
        let c = Api.spawn (fun () -> Api.store base 123) in
        Api.join c;
        Api.output_int (Api.load base))
  in
  Alcotest.(check bool) "join is an acquire" true
    (List.mem (0, 123L) r.Engine.outputs)

let test_child_inherits_parent_memory () =
  let r =
    run (fun () ->
        Api.store base 55;
        (* pre-fork write: inherited via COW fork, never monitored *)
        let c = Api.spawn (fun () -> Api.output_int (Api.load base)) in
        Api.join c)
  in
  Alcotest.(check bool) "child sees pre-fork memory" true
    (List.mem (1, 55L) r.Engine.outputs)

let test_barrier_merges_all () =
  let r =
    run (fun () ->
        let b = Api.barrier_create 3 in
        let worker k () =
          Api.store (base + (8 * k)) (100 + k);
          Api.barrier_wait b;
          let sum =
            Api.load base + Api.load (base + 8) + Api.load (base + 16)
          in
          Api.output_int sum
        in
        let c1 = Api.spawn (worker 1) and c2 = Api.spawn (worker 2) in
        worker 0 ();
        Api.join c1;
        Api.join c2)
  in
  Alcotest.(check int) "three outputs" 3 (List.length r.Engine.outputs);
  List.iter
    (fun (_, v) ->
      Alcotest.(check int64) "all pre-barrier writes visible" 303L v)
    r.Engine.outputs

let test_byte_merge_511 () =
  (* Section 4.6: initial y=0; T1 writes y=256 in a critical section;
     T2 racily writes y=255 before acquiring the same lock.  Remote
     (T1's) modification is the single byte 1 at offset 1, merged over
     T2's local 255 -> T2 reads 511.  Deterministic and byte-granular. *)
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let t1 = Api.spawn (fun () -> Api.with_lock m (fun () -> Api.store base 256)) in
        let t2 =
          Api.spawn (fun () ->
              Api.store base 255;
              (* racy local write *)
              Api.tick 200_000;
              Api.with_lock m (fun () -> Api.output_int (Api.load base)))
        in
        Api.join t1;
        Api.join t2)
  in
  Alcotest.(check bool) "255 merged with 256 gives 511" true
    (List.mem (2, 511L) r.Engine.outputs)

let test_redundant_remote_keeps_local () =
  (* Section 4.6 continued: if the remote write is redundant (stores the
     value the location already had), it produces no modification, so
     the local racy write survives. *)
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        (* y starts at 0; T1 redundantly stores 0 in its critical section. *)
        let t1 = Api.spawn (fun () -> Api.with_lock m (fun () -> Api.store base 0)) in
        let t2 =
          Api.spawn (fun () ->
              Api.store base 2;
              Api.tick 200_000;
              Api.with_lock m (fun () -> Api.output_int (Api.load base)))
        in
        Api.join t1;
        Api.join t2)
  in
  Alcotest.(check bool) "local write survives redundant remote" true
    (List.mem (2, 2L) r.Engine.outputs)

(* --- determinism ---------------------------------------------------- *)

let racey_mini () =
  (* A miniature racey: racy read-modify-write mixing on a shared array,
     signature printed at the end. *)
  let arr = base and n = 8 in
  let body k () =
    for i = 1 to 1500 do
      let slot = arr + (8 * ((i * (k + 3)) mod n)) in
      let v = Api.load slot in
      Api.store slot ((v * 31) + i + k);
      if i mod 40 = 0 then Api.tick 13
    done
  in
  let ts = List.init 3 (fun k -> Api.spawn (body k)) in
  List.iter Api.join ts;
  let sig_ = ref 0 in
  for i = 0 to n - 1 do
    sig_ := (!sig_ * 1009) lxor Api.load (arr + (8 * i))
  done;
  Api.output_int !sig_

let signatures_for make_policy ~opts:_ seeds =
  List.map
    (fun seed ->
      Engine.output_signature
        (Engine.run ~config:(with_seed (Int64.of_int seed)) make_policy
           ~main:racey_mini))
    seeds

let test_rfdet_deterministic_across_seeds () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let sigs =
    signatures_for (Rfdet.make ~opts:Options.default) ~opts:() seeds
  in
  Alcotest.(check int) "one distinct output" 1
    (List.length (List.sort_uniq compare sigs))

let test_pthreads_nondeterministic () =
  let seeds = List.init 10 (fun i -> i + 1) in
  let sigs = signatures_for Pthreads.make ~opts:() seeds in
  Alcotest.(check bool) "pthreads varies" true
    (List.length (List.sort_uniq compare sigs) > 1)

let config_matrix =
  [
    ("ci", Options.ci);
    ("pf", Options.pf);
    ("noopt", Options.baseline_no_opt);
    ("no-merge", { Options.default with slice_merging = false });
    ("lazy-only", { Options.default with prelock = false });
    ("prelock-only", { Options.default with lazy_writes = false });
    ("monitor-all", { Options.default with skip_premain_monitoring = false });
  ]

let test_all_configs_agree () =
  (* Every monitor/optimization combination must produce the same
     observable output on the same racy program: the optimizations are
     performance-only. *)
  let reference =
    Engine.output_signature
      (Engine.run ~config:(with_seed 99L) (Rfdet.make ~opts:Options.default)
         ~main:racey_mini)
  in
  List.iter
    (fun (name, opts) ->
      let s =
        Engine.output_signature
          (Engine.run ~config:(with_seed 7L) (Rfdet.make ~opts)
             ~main:racey_mini)
      in
      Alcotest.(check string) (name ^ " agrees") reference s)
    config_matrix

let test_race_free_program_matches_pthreads () =
  (* For a race-free program, RFDet must compute the same result as
     pthreads (sequential-consistency preservation, Section 3.3). *)
  let program () =
    let m = Api.mutex_create () in
    let body k () =
      for i = 1 to 40 do
        Api.with_lock m (fun () ->
            Api.store base (Api.load base + (i * k)))
      done
    in
    let ts = List.init 3 (fun k -> Api.spawn (body (k + 1))) in
    List.iter Api.join ts;
    Api.output_int (Api.load base)
  in
  let rfdet =
    (Engine.run ~config:(with_seed 1L) (Rfdet.make ~opts:Options.default)
       ~main:program)
      .Engine.outputs
  in
  let pthreads =
    (Engine.run ~config:(with_seed 1L) Pthreads.make ~main:program)
      .Engine.outputs
  in
  Alcotest.(check bool) "same final sum" true (rfdet = pthreads)

(* --- GC ------------------------------------------------------------- *)

let test_gc_triggers_and_preserves_semantics () =
  let opts =
    { Options.default with metadata_capacity = 16 * 1024; gc_threshold = 0.5 }
  in
  let program () =
    let m = Api.mutex_create () in
    let body k () =
      for i = 1 to 120 do
        Api.with_lock m (fun () ->
            (* touch a few distinct pages to fatten slices *)
            Api.store (base + (i * 24)) (i + k);
            Api.store (base + 40_000 + (i * 16)) (i * k))
      done
    in
    let c1 = Api.spawn (body 1) and c2 = Api.spawn (body 2) in
    Api.join c1;
    Api.join c2;
    Api.output_int (Api.load (base + 24))
  in
  let r = run ~opts ~config:(with_seed 3L) program in
  Alcotest.(check bool) "GC ran" true (r.Engine.profile.Rfdet_sim.Profile.gc_runs > 0);
  (* determinism preserved under GC pressure *)
  let s1 = Engine.output_signature (run ~opts ~config:(with_seed 5L) program) in
  let s2 = Engine.output_signature (run ~opts ~config:(with_seed 9L) program) in
  Alcotest.(check string) "deterministic with GC" s1 s2;
  (* and equal to the run without GC pressure *)
  let s3 = Engine.output_signature (run ~config:(with_seed 2L) program) in
  Alcotest.(check string) "same output as without GC" s1 s3

(* --- profile plumbing ------------------------------------------------ *)

let test_profile_counters () =
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let c =
          Api.spawn (fun () ->
              Api.with_lock m (fun () -> Api.store base 1))
        in
        Api.with_lock m (fun () -> Api.store base 2);
        Api.join c)
  in
  let p = r.Engine.profile in
  Alcotest.(check int) "locks" 2 p.Rfdet_sim.Profile.locks;
  Alcotest.(check int) "unlocks" 2 p.Rfdet_sim.Profile.unlocks;
  Alcotest.(check int) "forks" 1 p.Rfdet_sim.Profile.forks;
  Alcotest.(check int) "joins" 1 p.Rfdet_sim.Profile.joins;
  Alcotest.(check bool) "stores with copy > 0" true
    (p.Rfdet_sim.Profile.stores_with_copy > 0);
  Alcotest.(check bool) "slices created > 0" true
    (p.Rfdet_sim.Profile.slices_created > 0);
  Alcotest.(check bool) "footprint: shared bytes > 0" true
    (p.Rfdet_sim.Profile.shared_bytes > 0)

let test_pf_counts_faults_ci_does_not () =
  let program () =
    let m = Api.mutex_create () in
    let c =
      Api.spawn (fun () -> Api.with_lock m (fun () -> Api.store base 1))
    in
    Api.with_lock m (fun () -> Api.store (base + 4096) 2);
    Api.join c
  in
  let opts_nolazy monitor =
    { Options.default with monitor; lazy_writes = false }
  in
  let r_pf = run ~opts:(opts_nolazy Options.Page_fault) program in
  let r_ci = run ~opts:(opts_nolazy Options.Instrumentation) program in
  Alcotest.(check bool) "pf faults > 0" true
    (r_pf.Engine.profile.Rfdet_sim.Profile.page_faults > 0);
  Alcotest.(check int) "ci faults = 0" 0
    r_ci.Engine.profile.Rfdet_sim.Profile.page_faults;
  Alcotest.(check bool) "pf mprotects > 0" true
    (r_pf.Engine.profile.Rfdet_sim.Profile.mprotect_calls > 0);
  Alcotest.(check bool) "pf slower than ci" true
    (r_pf.Engine.sim_time > r_ci.Engine.sim_time)

let suites =
  [
    ( "rfdet",
      [
        Alcotest.test_case "isolation without sync" `Quick
          test_isolation_without_sync;
        Alcotest.test_case "visibility through lock" `Quick
          test_visibility_through_lock;
        Alcotest.test_case "figure 2 partial visibility" `Quick
          test_figure2_partial_visibility;
        Alcotest.test_case "transitive propagation" `Quick
          test_transitive_propagation;
        Alcotest.test_case "join propagates" `Quick test_join_propagates;
        Alcotest.test_case "child inherits memory" `Quick
          test_child_inherits_parent_memory;
        Alcotest.test_case "barrier merges all" `Quick test_barrier_merges_all;
        Alcotest.test_case "byte merge 511" `Quick test_byte_merge_511;
        Alcotest.test_case "redundant remote keeps local" `Quick
          test_redundant_remote_keeps_local;
        Alcotest.test_case "deterministic across seeds" `Quick
          test_rfdet_deterministic_across_seeds;
        Alcotest.test_case "pthreads nondeterministic" `Quick
          test_pthreads_nondeterministic;
        Alcotest.test_case "all configs agree" `Quick test_all_configs_agree;
        Alcotest.test_case "race-free matches pthreads" `Quick
          test_race_free_program_matches_pthreads;
        Alcotest.test_case "GC triggers, semantics preserved" `Quick
          test_gc_triggers_and_preserves_semantics;
        Alcotest.test_case "profile counters" `Quick test_profile_counters;
        Alcotest.test_case "pf vs ci counters" `Quick
          test_pf_counts_faults_ci_does_not;
      ] );
  ]

(* appended: documented limitations, §4.6 *)

let test_adhoc_sync_unsupported () =
  (* The paper: "Programs using ad hoc synchronization may be incorrect
     in DLRC (e.g., they may deadlock)".  A plain-flag spin loop never
     observes the writer's store — there is no happens-before edge — so
     the spinner runs forever (caught by the engine's op bound).  The
     atomic-flag version of the same program works (see the atomics
     suite). *)
  let config = { Engine.default_config with max_ops = 200_000 } in
  Alcotest.check_raises "plain-flag spinning never terminates" Engine.Runaway
    (fun () ->
      ignore
        (run ~config (fun () ->
             let flag = base in
             let producer = Api.spawn (fun () -> Api.store flag 1) in
             let consumer =
               Api.spawn (fun () ->
                   while Api.load flag = 0 do
                     Api.tick 5
                   done)
             in
             Api.join producer;
             Api.join consumer)))

let test_thread_limit_guard () =
  Alcotest.(check bool) "spawning beyond the clock width fails cleanly" true
    (try
       ignore
         (run (fun () ->
              let tids = List.init 70 (fun _ -> Api.spawn (fun () -> Api.tick 1)) in
              List.iter Api.join tids));
       false
     with Engine.Thread_failure (_, Failure msg) ->
       Astring.String.is_infix ~affix:"vector-clock width" msg)

let suites =
  match suites with
  | [ (name, tests) ] ->
    [
      ( name,
        tests
        @ [
            Alcotest.test_case "ad hoc sync unsupported (documented)" `Quick
              test_adhoc_sync_unsupported;
            Alcotest.test_case "thread limit guard" `Quick
              test_thread_limit_guard;
          ] );
    ]
  | _ -> suites
