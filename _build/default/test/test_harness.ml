(* Harness-level tests: the experiment drivers produce structurally
   sound results with the paper's qualitative shapes, at a reduced scale
   so the suite stays fast. *)

module Experiments = Rfdet_harness.Experiments
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Registry = Rfdet_workloads.Registry

let scale = 0.3

let test_runner_basics () =
  let r = Runner.run ~scale Runner.rfdet_ci (Registry.find "fft") in
  Alcotest.(check string) "runtime name" "rfdet-ci" r.Runner.runtime;
  Alcotest.(check string) "workload name" "fft" r.Runner.workload;
  Alcotest.(check bool) "time positive" true (r.Runner.sim_time > 0);
  Alcotest.(check bool) "ops counted" true (r.Runner.ops > 0)

let test_determinism_checker () =
  let racey = Registry.find "racey" in
  let det = Determinism.check ~runs:6 ~scale Runner.rfdet_ci racey in
  Alcotest.(check bool) "rfdet deterministic" true det.Determinism.deterministic;
  let non = Determinism.check ~runs:8 ~scale:1.0 Runner.Pthreads racey in
  Alcotest.(check bool) "pthreads not" false non.Determinism.deterministic

let test_figure7_shapes () =
  let rows = Experiments.figure7 ~scale () in
  Alcotest.(check int) "16 rows" 16 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.f7_workload ^ ": pthreads cycles positive")
        true
        (r.Experiments.f7_pthreads > 0);
      Alcotest.(check bool)
        (r.Experiments.f7_workload ^ ": rfdet-ci <= rfdet-pf")
        true
        (r.Experiments.f7_rfdet_ci <= r.Experiments.f7_rfdet_pf +. 0.05))
    rows;
  let d, ci, pf = Experiments.figure7_summary rows in
  (* the paper's headline shape: ci < pf < dthreads, ci within ~2x of
     pthreads, rfdet-ci ≈ 2x better than dthreads *)
  Alcotest.(check bool) "ci < pf" true (ci < pf);
  Alcotest.(check bool) "pf < dthreads" true (pf < d);
  Alcotest.(check bool) "ci under 2x" true (ci < 2.0);
  Alcotest.(check bool) "rfdet ~2x faster than dthreads" true (d /. ci > 1.5)

let test_table1_consistency () =
  let rows = Experiments.table1 ~scale () in
  List.iter
    (fun r ->
      let name = r.Experiments.t1_workload in
      Alcotest.(check bool) (name ^ ": mem = loads + stores") true
        (r.Experiments.t1_mem
        = r.Experiments.t1_loads + r.Experiments.t1_stores);
      Alcotest.(check bool) (name ^ ": stores-with-copy <= stores") true
        (r.Experiments.t1_stores_with_copy <= r.Experiments.t1_stores);
      Alcotest.(check bool) (name ^ ": rfdet footprint largest") true
        (r.Experiments.t1_rfdet_bytes >= r.Experiments.t1_pthreads_bytes);
      Alcotest.(check bool) (name ^ ": loads dominate stores") true
        (r.Experiments.t1_loads + 1 > 0))
    rows;
  (* ferret is the lock-heaviest; the Phoenix map-reduce rows the least *)
  let locks name =
    (List.find (fun r -> r.Experiments.t1_workload = name) rows)
      .Experiments.t1_locks
  in
  Alcotest.(check bool) "ferret locks >> string_match locks" true
    (locks "ferret" > 100 * locks "string_match")

let test_figure9_shapes () =
  let rows = Experiments.figure9 ~scale () in
  Alcotest.(check int) "7 splash rows" 7 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.f9_workload ^ ": prelock never hurts")
        true
        (r.Experiments.f9_prelock >= 0.97);
      Alcotest.(check bool)
        (r.Experiments.f9_workload ^ ": lazy never hurts")
        true
        (r.Experiments.f9_lazy >= 0.97))
    rows;
  (* at least one app must benefit substantially from each optimization *)
  Alcotest.(check bool) "prelock wins somewhere" true
    (List.exists (fun r -> r.Experiments.f9_prelock > 1.15) rows);
  Alcotest.(check bool) "lazy wins somewhere" true
    (List.exists (fun r -> r.Experiments.f9_lazy > 1.15) rows)

let test_barrier_ablation_shape () =
  let rows = Experiments.ablation_barriers () in
  let find name =
    (List.find (fun r -> r.Experiments.e6_runtime = name) rows)
      .Experiments.e6_normalized
  in
  Alcotest.(check bool) "rfdet near pthreads" true (find "rfdet-ci" < 1.15);
  Alcotest.(check bool) "dthreads pays for the barrier-free thread" true
    (find "dthreads" > 1.3);
  Alcotest.(check bool) "coredet pays for quanta" true (find "coredet" > 1.2)

let test_racey_experiment () =
  let rows = Experiments.racey_determinism ~runs_per_config:5 ~thread_counts:[ 2; 4 ] () in
  Alcotest.(check int) "4 runtimes x 2 thread counts" 8 (List.length rows);
  List.iter
    (fun r ->
      if r.Experiments.e1_runtime <> "pthreads" then
        Alcotest.(check int)
          (r.Experiments.e1_runtime ^ " deterministic")
          1 r.Experiments.e1_distinct)
    rows

let test_renderers_do_not_raise () =
  let _ = Experiments.render_figure7 (Experiments.figure7 ~scale ()) in
  let _ = Experiments.render_table1 (Experiments.table1 ~scale ()) in
  let _ = Experiments.render_figure9 (Experiments.figure9 ~scale ()) in
  let _ = Experiments.render_e6 (Experiments.ablation_barriers ()) in
  let _ =
    Experiments.render_e1
      (Experiments.racey_determinism ~runs_per_config:2 ~thread_counts:[ 2 ] ())
  in
  ()

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "runner basics" `Quick test_runner_basics;
        Alcotest.test_case "determinism checker" `Quick test_determinism_checker;
        Alcotest.test_case "figure 7 shapes" `Quick test_figure7_shapes;
        Alcotest.test_case "table 1 consistency" `Quick test_table1_consistency;
        Alcotest.test_case "figure 9 shapes" `Quick test_figure9_shapes;
        Alcotest.test_case "barrier ablation shape" `Quick
          test_barrier_ablation_shape;
        Alcotest.test_case "racey experiment" `Quick test_racey_experiment;
        Alcotest.test_case "renderers" `Quick test_renderers_do_not_raise;
      ] );
  ]

(* appended *)

let test_sensitivity_ordering () =
  let rows =
    Experiments.ablation_sensitivity ~factors:[ 0.5; 2.0 ] ~scale:0.3 ()
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "ordering holds at %.1fx" r.Experiments.e8_factor)
        true r.Experiments.e8_ordering_holds)
    rows

let test_slice_merging_reduces_slices () =
  (* Merging pays off when a thread stores between two critical sections
     on a lock it last released itself: the acquire-side close is
     skipped, so the in-between stores join the critical section's
     slice.  An uncontended lock makes the effect exact: ~2 slices per
     iteration without merging, ~1 with. *)
  let module Api = Rfdet_sim.Api in
  let module Engine = Rfdet_sim.Engine in
  let base = Rfdet_mem.Layout.globals_base in
  let program () =
    let m = Api.mutex_create () in
    let worker =
      Api.spawn (fun () ->
          for i = 1 to 10 do
            Api.with_lock m (fun () -> Api.store base i);
            Api.store (base + 64) i
          done)
    in
    Api.join worker
  in
  let slices opts =
    (Engine.run (Rfdet_core.Rfdet_runtime.make ~opts) ~main:program)
      .Engine.profile.Rfdet_sim.Profile.slices_created
  in
  let merged = slices Rfdet_core.Options.ci in
  let unmerged = slices { Rfdet_core.Options.ci with slice_merging = false } in
  Alcotest.(check bool)
    (Printf.sprintf "fewer slices with merging (%d < %d)" merged unmerged)
    true
    (merged < unmerged)

let test_prelock_hides_propagation_latency () =
  let w = Registry.find "water-ns" in
  let time opts =
    (Runner.run ~scale:0.4 (Runner.Rfdet opts) w).Runner.sim_time
  in
  let with_prelock = time { Rfdet_core.Options.ci with lazy_writes = false } in
  let without =
    time
      { Rfdet_core.Options.ci with lazy_writes = false; prelock = false }
  in
  Alcotest.(check bool) "prelock does not hurt" true
    (with_prelock <= without + (without / 50))

let suites =
  match suites with
  | [ (name, tests) ] ->
    [
      ( name,
        tests
        @ [
            Alcotest.test_case "cost sensitivity ordering" `Quick
              test_sensitivity_ordering;
            Alcotest.test_case "slice merging reduces slices" `Quick
              test_slice_merging_reduces_slices;
            Alcotest.test_case "prelock never hurts" `Quick
              test_prelock_hides_propagation_latency;
          ] );
    ]
  | _ -> suites
