module Replay = Rfdet_harness.Replay
module Registry = Rfdet_workloads.Registry

let test_record_replay_roundtrip () =
  let rec_ = Replay.record ~scale:0.3 (Registry.find "radix") in
  List.iter
    (fun seed ->
      let _, ok = Replay.replay ~sched_seed:seed rec_ in
      Alcotest.(check bool)
        (Printf.sprintf "replay matches under scheduler seed %Ld" seed)
        true ok)
    [ 3L; 1234L; 777L ]

let test_replay_detects_input_change () =
  (* changing the input seed is a *different execution*: the recording
     must not match *)
  let rec_ = Replay.record ~scale:0.3 ~input_seed:1L (Registry.find "fft") in
  let tampered = { rec_ with Replay.input_seed = 2L } in
  let _, ok = Replay.replay tampered in
  Alcotest.(check bool) "different input, different output" false ok

let test_serialization_roundtrip () =
  let rec_ = Replay.record ~scale:0.3 (Registry.find "racey") in
  match Replay.of_string (Replay.to_string rec_) with
  | Some parsed ->
    Alcotest.(check bool) "round trip" true (parsed = rec_);
    let _, ok = Replay.replay parsed in
    Alcotest.(check bool) "parsed recording replays" true ok
  | None -> Alcotest.fail "failed to parse recording"

let test_parse_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Replay.of_string "not a recording" = None);
  Alcotest.(check bool) "partial rejected" true
    (Replay.of_string "workload=fft\nthreads=4\n" = None);
  Alcotest.(check bool) "bad int rejected" true
    (Replay.of_string
       "workload=fft\nthreads=x\nscale=1.0\ninput_seed=1\nsignature=s\n"
    = None)

let suites =
  [
    ( "replay",
      [
        Alcotest.test_case "record/replay round trip" `Quick
          test_record_replay_roundtrip;
        Alcotest.test_case "input change detected" `Quick
          test_replay_detects_input_change;
        Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
        Alcotest.test_case "parse garbage" `Quick test_parse_garbage;
      ] );
  ]
