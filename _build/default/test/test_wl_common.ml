(* Properties of the workload building blocks: partitioning, fixed-point
   arithmetic, the checksum mixer, and the table renderer. *)

module Wl = Rfdet_workloads.Wl_common
module Fx = Rfdet_workloads.Wl_common.Fx
module Tablefmt = Rfdet_util.Tablefmt
module Stats = Rfdet_util.Stats

let prop_partition_covers =
  QCheck2.Test.make ~name:"partition: ranges tile [0, n) exactly" ~count:300
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 9))
    (fun (n, workers) ->
      let ranges =
        List.init workers (fun k -> Wl.partition ~n ~workers ~k)
      in
      (* disjoint, ordered, and covering *)
      let flat = List.concat_map (fun (lo, hi) -> List.init (hi - lo) (( + ) lo)) ranges in
      flat = List.init n (fun i -> i))

let prop_partition_balanced =
  QCheck2.Test.make ~name:"partition: sizes differ by at most one chunk"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 9))
    (fun (n, workers) ->
      let sizes =
        List.init workers (fun k ->
            let lo, hi = Wl.partition ~n ~workers ~k in
            hi - lo)
      in
      let nonzero = List.filter (fun s -> s > 0) sizes in
      match (nonzero, List.rev nonzero) with
      | [], _ | _, [] -> n = 0
      | first :: _, last :: _ ->
        List.for_all (fun s -> s = first || s = last) nonzero)

let test_fx_basics () =
  Alcotest.(check int) "one" 65536 Fx.one;
  Alcotest.(check int) "of_int" (3 * 65536) (Fx.of_int 3);
  Alcotest.(check int) "mul identity" Fx.one (Fx.mul Fx.one Fx.one);
  Alcotest.(check int) "div identity" Fx.one (Fx.div Fx.one Fx.one);
  Alcotest.(check int) "div by zero" 0 (Fx.div Fx.one 0);
  Alcotest.(check int) "exp(0) = 1" Fx.one (Fx.exp_approx 0)

let prop_fx_mul_div_inverse =
  QCheck2.Test.make ~name:"fx: div (mul a b) b ~ a" ~count:300
    QCheck2.Gen.(pair (int_range 1 200) (int_range 1 200))
    (fun (a, b) ->
      let fa = Fx.of_int a and fb = Fx.of_int b in
      let back = Fx.div (Fx.mul fa fb) fb in
      abs (back - fa) <= 1)

let prop_fx_sqrt =
  QCheck2.Test.make ~name:"fx: sqrt(x)^2 ~ x" ~count:200
    QCheck2.Gen.(int_range 1 4000)
    (fun x ->
      let fx = Fx.of_int x in
      let r = Fx.sqrt_approx fx in
      let sq = Fx.mul r r in
      (* within 2% for moderate inputs *)
      abs (sq - fx) < fx / 50 + 2)

let prop_mix_sensitive =
  QCheck2.Test.make ~name:"mix: sensitive to both arguments" ~count:300
    QCheck2.Gen.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      (* perturbing either argument changes the mix (collisions are
         astronomically unlikely at these sizes) *)
      (b = c || Wl.mix a b <> Wl.mix a c)
      && (a = c || Wl.mix a b <> Wl.mix c b))

let test_tablefmt () =
  let t =
    Tablefmt.create ~title:"T"
      ~columns:[ ("a", Tablefmt.Left); ("b", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "yy"; "22" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "cells present" true
    (Astring.String.is_infix ~affix:"yy" s);
  Alcotest.check_raises "arity check"
    (Invalid_argument "Tablefmt.add_row: cell count mismatch") (fun () ->
      Tablefmt.add_row t [ "only-one" ])

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "min" 1.0 lo;
  Alcotest.(check (float 1e-9)) "max" 3.0 hi;
  Alcotest.(check string) "human bytes" "1.5 KB" (Stats.human_bytes 1536);
  Alcotest.(check string) "human count" "1.5K" (Stats.human_count 1500)

let suites =
  [
    ( "wl-common",
      [
        QCheck_alcotest.to_alcotest prop_partition_covers;
        QCheck_alcotest.to_alcotest prop_partition_balanced;
        Alcotest.test_case "fx basics" `Quick test_fx_basics;
        QCheck_alcotest.to_alcotest prop_fx_mul_div_inverse;
        QCheck_alcotest.to_alcotest prop_fx_sqrt;
        QCheck_alcotest.to_alcotest prop_mix_sensitive;
        Alcotest.test_case "tablefmt" `Quick test_tablefmt;
        Alcotest.test_case "stats" `Quick test_stats;
      ] );
  ]
