module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Dthreads = Rfdet_baselines.Dthreads_runtime
module Rfdet = Rfdet_core.Rfdet_runtime
module Options = Rfdet_core.Options

let run ?config main = Engine.run ?config Dthreads.make ~main

let with_seed seed = { Engine.default_config with seed; jitter_mean = 10. }

let base = Layout.globals_base

let test_lock_counter () =
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let body () =
          for _ = 1 to 20 do
            Api.with_lock m (fun () -> Api.store base (Api.load base + 1))
          done
        in
        let c1 = Api.spawn body and c2 = Api.spawn body in
        Api.join c1;
        Api.join c2;
        Api.output_int (Api.load base))
  in
  Alcotest.(check bool) "counter" true (r.Engine.outputs = [ (0, 40L) ])

let test_isolation_between_fences () =
  (* Writes are invisible to other threads until both sides pass a
     fence; with no synchronization at all the value stays hidden. *)
  let r =
    run (fun () ->
        let c = Api.spawn (fun () -> Api.store base 9) in
        Api.tick 50_000;
        Api.output_int (Api.load base);
        Api.join c)
  in
  Alcotest.(check bool) "isolated until fence" true
    (List.mem (0, 0L) r.Engine.outputs)

let test_join_commits () =
  let r =
    run (fun () ->
        let c = Api.spawn (fun () -> Api.store base 77) in
        Api.join c;
        Api.output_int (Api.load base))
  in
  Alcotest.(check bool) "child commit visible after join" true
    (List.mem (0, 77L) r.Engine.outputs)

let test_deterministic_across_seeds () =
  let racy () =
    let body k () =
      for i = 1 to 200 do
        let slot = base + (8 * ((i * (k + 2)) mod 6) ) in
        Api.store slot ((Api.load slot * 7) + i);
        Api.tick 9
      done
    in
    let m = Api.mutex_create () in
    let stir k () =
      body k ();
      Api.with_lock m (fun () -> Api.store (base + 64) (Api.load (base + 64) + k))
    in
    let ts = List.init 3 (fun k -> Api.spawn (stir k)) in
    List.iter Api.join ts;
    let s = ref 0 in
    for i = 0 to 8 do
      s := (!s * 31) lxor Api.load (base + (8 * i))
    done;
    Api.output_int !s
  in
  let sig_of seed =
    Engine.output_signature (run ~config:(with_seed seed) racy)
  in
  let s1 = sig_of 1L in
  List.iter
    (fun s -> Alcotest.(check string) "deterministic" s1 (sig_of s))
    [ 2L; 3L; 4L; 5L ]

let test_race_free_agrees_with_rfdet () =
  let program () =
    let m = Api.mutex_create () in
    let body k () =
      for i = 1 to 25 do
        Api.with_lock m (fun () -> Api.store base (Api.load base + (i * k)))
      done
    in
    let ts = List.init 3 (fun k -> Api.spawn (body (k + 1))) in
    List.iter Api.join ts;
    Api.output_int (Api.load base)
  in
  let d = (run program).Engine.outputs in
  let r =
    (Engine.run (Rfdet.make ~opts:Options.default) ~main:program).Engine.outputs
  in
  Alcotest.(check bool) "same race-free result" true (d = r)

let test_fence_imbalance () =
  (* The paper's T2 problem: two threads contend on a lock while a third
     computes without synchronizing.  Under DThreads the lock users stall
     at the fence until the compute thread arrives; under RFDet they
     proceed.  The compute thread's work (300k cycles) must show up in
     the lock users' completion time under DThreads only. *)
  let program () =
    let m = Api.mutex_create () in
    let compute = Api.spawn (fun () -> Api.tick 300_000) in
    let locker () =
      for _ = 1 to 5 do
        Api.with_lock m (fun () -> Api.store base (Api.load base + 1))
      done;
      (* Post-lock work: under DThreads it cannot start until the
         compute thread reaches a fence (its exit, 300k cycles in), so
         it lands after ~700k; under RFDet it overlaps the compute
         thread and finishes around 400k. *)
      Api.tick 400_000
    in
    let l1 = Api.spawn locker and l2 = Api.spawn locker in
    Api.join l1;
    Api.join l2;
    Api.join compute;
    Api.output_int (Api.load base)
  in
  let d = run program in
  let r = Engine.run (Rfdet.make ~opts:Options.default) ~main:program in
  Alcotest.(check bool) "same result" true (d.Engine.outputs = r.Engine.outputs);
  Alcotest.(check bool) "dthreads stalls at global fences" true
    (d.Engine.sim_time > r.Engine.sim_time + 200_000);
  Alcotest.(check bool) "fence count > 0" true
    (d.Engine.profile.Rfdet_sim.Profile.barrier_stalls > 0)

let test_cond_wait_signal () =
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        let c = Api.cond_create () in
        let consumer =
          Api.spawn (fun () ->
              Api.lock m;
              while Api.load base = 0 do
                Api.cond_wait c m
              done;
              Api.output_int (Api.load base);
              Api.unlock m)
        in
        Api.tick 20_000;
        Api.lock m;
        Api.store base 5;
        Api.cond_signal c;
        Api.unlock m;
        Api.join consumer)
  in
  Alcotest.(check bool) "consumer saw flag" true
    (List.mem (1, 5L) r.Engine.outputs)

let test_barrier () =
  let r =
    run (fun () ->
        let b = Api.barrier_create 2 in
        let c =
          Api.spawn (fun () ->
              Api.store base 3;
              Api.barrier_wait b;
              Api.output_int (Api.load (base + 8)))
        in
        Api.store (base + 8) 4;
        Api.barrier_wait b;
        Api.output_int (Api.load base);
        Api.join c)
  in
  Alcotest.(check bool) "both sides see commits" true
    (List.mem (0, 3L) r.Engine.outputs && List.mem (1, 4L) r.Engine.outputs)

let test_commit_order_by_tid () =
  (* Two threads racily write the same word, then both pass a fence (a
     barrier).  The last committer in token order (the larger tid) wins
     deterministically. *)
  let r =
    run (fun () ->
        let b = Api.barrier_create 2 in
        let c1 =
          Api.spawn (fun () ->
              Api.store base 111;
              Api.barrier_wait b;
              Api.output_int (Api.load base))
        in
        Api.tick 1000;
        let c2 =
          Api.spawn (fun () ->
              Api.store base 222;
              Api.barrier_wait b;
              Api.output_int (Api.load base))
        in
        Api.join c1;
        Api.join c2)
  in
  List.iter
    (fun (tid, v) ->
      if tid = 1 || tid = 2 then
        Alcotest.(check int64) "larger tid commits last" 222L v)
    r.Engine.outputs

let suites =
  [
    ( "dthreads",
      [
        Alcotest.test_case "lock counter" `Quick test_lock_counter;
        Alcotest.test_case "isolation between fences" `Quick
          test_isolation_between_fences;
        Alcotest.test_case "join commits" `Quick test_join_commits;
        Alcotest.test_case "deterministic across seeds" `Quick
          test_deterministic_across_seeds;
        Alcotest.test_case "race-free agrees with rfdet" `Quick
          test_race_free_agrees_with_rfdet;
        Alcotest.test_case "fence imbalance vs rfdet" `Quick
          test_fence_imbalance;
        Alcotest.test_case "cond wait/signal" `Quick test_cond_wait_signal;
        Alcotest.test_case "barrier" `Quick test_barrier;
        Alcotest.test_case "commit order by tid" `Quick
          test_commit_order_by_tid;
      ] );
  ]
