test/test_race_detector.ml: Alcotest List Rfdet_detect Rfdet_mem Rfdet_sim Rfdet_workloads
