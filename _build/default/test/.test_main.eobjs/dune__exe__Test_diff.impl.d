test/test_diff.ml: Alcotest Bytes Char Diff List Page QCheck2 QCheck_alcotest Rfdet_mem Space
