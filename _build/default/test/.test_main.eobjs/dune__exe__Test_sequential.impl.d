test/test_sequential.ml: Alcotest List QCheck2 QCheck_alcotest Rfdet_baselines Rfdet_core Rfdet_mem Rfdet_sim
