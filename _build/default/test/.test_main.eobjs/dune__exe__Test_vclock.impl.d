test/test_vclock.ml: Alcotest QCheck2 QCheck_alcotest Rfdet_util Vclock
