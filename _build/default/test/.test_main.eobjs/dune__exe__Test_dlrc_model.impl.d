test/test_dlrc_model.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Rfdet_core Rfdet_mem Rfdet_sim String
