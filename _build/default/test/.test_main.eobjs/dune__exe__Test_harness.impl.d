test/test_harness.ml: Alcotest List Printf Rfdet_core Rfdet_harness Rfdet_mem Rfdet_sim Rfdet_workloads
