test/test_atomics.ml: Alcotest List Rfdet_baselines Rfdet_core Rfdet_harness Rfdet_mem Rfdet_sim
