test/test_dthreads.ml: Alcotest List Rfdet_baselines Rfdet_core Rfdet_mem Rfdet_sim
