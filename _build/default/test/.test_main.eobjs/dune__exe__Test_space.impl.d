test/test_space.ml: Alcotest Bytes Char Hashtbl List Page QCheck2 QCheck_alcotest Rfdet_mem Space
