test/test_kendo.ml: Alcotest Int64 List Rfdet_baselines Rfdet_kendo Rfdet_mem Rfdet_sim
