test/test_allocator.ml: Alcotest Allocator Layout List Page QCheck2 QCheck_alcotest Rfdet_mem
