test/test_det_rng.ml: Alcotest Array Det_rng Rfdet_util
