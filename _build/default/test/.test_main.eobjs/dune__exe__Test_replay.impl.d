test/test_replay.ml: Alcotest List Printf Rfdet_harness Rfdet_workloads
