test/test_pipeline_queue.ml: Alcotest Int64 List Rfdet_baselines Rfdet_core Rfdet_mem Rfdet_sim Rfdet_workloads
