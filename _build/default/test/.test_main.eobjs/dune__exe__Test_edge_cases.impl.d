test/test_edge_cases.ml: Alcotest Array Int64 List Printf Rfdet_baselines Rfdet_core Rfdet_mem Rfdet_sim
