test/test_wl_common.ml: Alcotest Astring List QCheck2 QCheck_alcotest Rfdet_util Rfdet_workloads String
