test/test_coredet.ml: Alcotest List Rfdet_baselines Rfdet_mem Rfdet_sim
