test/test_metadata.ml: Alcotest Char List Rfdet_core Rfdet_mem Rfdet_sim Rfdet_util String
