test/test_workloads.ml: Alcotest Int64 List Printf Rfdet_harness Rfdet_workloads String
