test/test_pqueue.ml: Alcotest List Pqueue QCheck2 QCheck_alcotest Rfdet_util
