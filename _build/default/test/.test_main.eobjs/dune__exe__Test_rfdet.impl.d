test/test_rfdet.ml: Alcotest Astring Int64 List Rfdet_baselines Rfdet_core Rfdet_mem Rfdet_sim
