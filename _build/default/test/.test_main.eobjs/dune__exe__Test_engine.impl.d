test/test_engine.ml: Alcotest Int64 List Rfdet_baselines Rfdet_mem Rfdet_sim
