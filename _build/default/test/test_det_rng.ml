open Rfdet_util

let test_reproducible () =
  let a = Det_rng.create 42L and b = Det_rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Det_rng.next_int64 a)
      (Det_rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Det_rng.create 1L and b = Det_rng.create 2L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Det_rng.next_int64 a <> Det_rng.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_split_independent () =
  let parent = Det_rng.create 7L in
  let child = Det_rng.split parent in
  let a = Det_rng.next_int64 child and b = Det_rng.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (a <> b)

let test_copy () =
  let a = Det_rng.create 9L in
  ignore (Det_rng.next_int64 a);
  let b = Det_rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Det_rng.next_int64 a)
    (Det_rng.next_int64 b)

let test_int_bounds () =
  let rng = Det_rng.create 3L in
  for _ = 1 to 1000 do
    let v = Det_rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Det_rng.int: bound <= 0")
    (fun () -> ignore (Det_rng.int rng 0))

let test_int_in () =
  let rng = Det_rng.create 5L in
  for _ = 1 to 500 do
    let v = Det_rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 3)
  done

let test_float_bounds () =
  let rng = Det_rng.create 11L in
  for _ = 1 to 500 do
    let v = Det_rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_exponential_positive () =
  let rng = Det_rng.create 13L in
  for _ = 1 to 500 do
    Alcotest.(check bool) "positive" true
      (Det_rng.exponential rng ~mean:10. >= 0.)
  done

let test_shuffle_permutation () =
  let rng = Det_rng.create 17L in
  let arr = Array.init 50 (fun i -> i) in
  Det_rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let suites =
  [
    ( "det_rng",
      [
        Alcotest.test_case "reproducible" `Quick test_reproducible;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "split" `Quick test_split_independent;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_int_in;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "exponential" `Quick test_exponential_positive;
        Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
      ] );
  ]
