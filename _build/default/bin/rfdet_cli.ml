(* rfdet — command-line front end for the RFDet reproduction.

   Subcommands:
     run WORKLOAD     run one workload under one runtime, print stats
     list             list workloads and runtimes
     racey            the determinism stress experiment (Section 5.1)
     experiment NAME  regenerate a table/figure (fig7, table1, fig8,
                      fig9, e1, e6, e7, all) *)

open Cmdliner
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Experiments = Rfdet_harness.Experiments
module Registry = Rfdet_workloads.Registry
module Options = Rfdet_core.Options
module Profile = Rfdet_sim.Profile

let runtime_names =
  [
    ("pthreads", Runner.Pthreads);
    ("kendo", Runner.Kendo);
    ("dthreads", Runner.Dthreads);
    ("coredet", Runner.Coredet);
    ("rfdet-ci", Runner.rfdet_ci);
    ("rfdet-pf", Runner.rfdet_pf);
    ("rfdet-noopt", Runner.Rfdet Options.baseline_no_opt);
  ]

let runtime_conv =
  let parse s =
    match List.assoc_opt s runtime_names with
    | Some r -> Ok r
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown runtime %S (expected one of: %s)" s
             (String.concat ", " (List.map fst runtime_names))))
  in
  let print ppf r = Format.pp_print_string ppf (Runner.runtime_name r) in
  Arg.conv (parse, print)

let workload_conv =
  let parse s =
    match List.find_opt (fun w -> w.Rfdet_workloads.Workload.name = s) Registry.all with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown workload %S (expected one of: %s)" s
             (String.concat ", " Registry.names)))
  in
  let print ppf w =
    Format.pp_print_string ppf w.Rfdet_workloads.Workload.name
  in
  Arg.conv (parse, print)

let threads_arg =
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc:"Worker thread count.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~doc:"Problem-size multiplier.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")

let jitter_arg =
  Arg.(
    value & opt float 0.
    & info [ "jitter" ]
        ~doc:"Mean scheduling-noise cycles per operation (0 = none).")

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let runtime_arg =
    Arg.(
      value
      & opt runtime_conv Runner.rfdet_ci
      & info [ "r"; "runtime" ]
          ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
                rfdet-pf or rfdet-noopt.")
  in
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let action runtime workload threads scale seed input_seed jitter trace =
    let r =
      Runner.run ~threads ~scale ~sched_seed:(Int64.of_int seed)
        ~input_seed:(Int64.of_int input_seed) ~jitter ~trace runtime workload
    in
    let p = r.Runner.profile in
    Printf.printf "workload:    %s\n" r.Runner.workload;
    Printf.printf "runtime:     %s\n" r.Runner.runtime;
    Printf.printf "threads:     %d (total spawned: %d)\n" threads
      r.Runner.threads;
    Printf.printf "sim cycles:  %d\n" r.Runner.sim_time;
    Printf.printf "engine ops:  %d (%.2fs host)\n" r.Runner.ops
      r.Runner.wall_seconds;
    Printf.printf "signature:   %s\n" r.Runner.signature;
    Printf.printf "outputs:     %s\n"
      (String.concat ", "
         (List.map
            (fun (tid, v) -> Printf.sprintf "%d:%Ld" tid v)
            r.Runner.outputs));
    Format.printf "profile:     @[%a@]@." Profile.pp p;
    if r.Runner.trace <> [] then begin
      Printf.printf "trace (last %d operations):\n" (List.length r.Runner.trace);
      List.iter
        (fun e ->
          Printf.printf "  clock=%-10d icount=%-10d tid=%d %s\n"
            e.Rfdet_sim.Engine.t_clock e.Rfdet_sim.Engine.t_icount
            e.Rfdet_sim.Engine.t_tid e.Rfdet_sim.Engine.t_op)
        r.Runner.trace
    end
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~doc:"Print the last N operations of the run.")
  in
  let input_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "input-seed" ] ~doc:"Input-data generator seed (an input).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload under one runtime.")
    Term.(
      const action $ runtime_arg $ workload_arg $ threads_arg $ scale_arg
      $ seed_arg $ input_seed_arg $ jitter_arg $ trace_arg)

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let action () =
    Printf.printf "Workloads:\n";
    List.iter
      (fun w ->
        Printf.printf "  %-18s %-8s %s\n" w.Rfdet_workloads.Workload.name
          w.Rfdet_workloads.Workload.suite
          w.Rfdet_workloads.Workload.description)
      Registry.all;
    Printf.printf "\nRuntimes:\n";
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) runtime_names
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and runtimes.")
    Term.(const action $ const ())

(* --- racey ------------------------------------------------------------ *)

let racey_cmd =
  let runs_arg =
    Arg.(
      value & opt int 1000
      & info [ "n"; "runs" ] ~doc:"Runs per configuration (paper: 1000).")
  in
  let action runs =
    let rows =
      Experiments.racey_determinism ~runs_per_config:runs ()
    in
    print_string (Experiments.render_e1 rows)
  in
  Cmd.v
    (Cmd.info "racey"
       ~doc:"Determinism stress test: repeated racey runs (Section 5.1).")
    Term.(const action $ runs_arg)

(* --- races ------------------------------------------------------------ *)

let races_cmd =
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let action workload threads scale =
    let cfg =
      { Rfdet_workloads.Workload.threads; scale; input_seed = 42L }
    in
    let report =
      Rfdet_detect.Race_detector.check
        ~main:(workload.Rfdet_workloads.Workload.main cfg)
    in
    Format.printf "%a@." Rfdet_detect.Race_detector.pp_report report
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Run the happens-before race detector over a workload.")
    Term.(const action $ workload_arg $ threads_arg $ scale_arg)

(* --- replay ------------------------------------------------------------ *)

let replay_cmd =
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let action workload threads scale =
    let recording = Rfdet_harness.Replay.record ~threads ~scale workload in
    Printf.printf "recorded:\n%s\n"
      (Rfdet_harness.Replay.to_string recording);
    List.iter
      (fun seed ->
        let signature, ok = Rfdet_harness.Replay.replay ~sched_seed:seed recording in
        Printf.printf "replay (scheduler seed %Ld): %s %s\n" seed signature
          (if ok then "MATCH" else "MISMATCH"))
      [ 7L; 99L; 12345L ]
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Record a run by inputs only, then replay it under scheduler \
          noise (Section 2's record/replay application).")
    Term.(const action $ workload_arg $ threads_arg $ scale_arg)

(* --- experiment ------------------------------------------------------- *)

let experiment_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some (Arg.enum
           [ ("fig7", `Fig7); ("table1", `Table1); ("fig8", `Fig8);
             ("fig9", `Fig9); ("e1", `E1); ("e6", `E6); ("e7", `E7);
             ("all", `All) ])) None
      & info [] ~docv:"NAME"
          ~doc:"One of: fig7, table1, fig8, fig9, e1, e6, e7, all.")
  in
  let run_one = function
    | `Fig7 -> print_string (Experiments.render_figure7 (Experiments.figure7 ()))
    | `Table1 -> print_string (Experiments.render_table1 (Experiments.table1 ()))
    | `Fig8 -> print_string (Experiments.render_figure8 (Experiments.figure8 ()))
    | `Fig9 -> print_string (Experiments.render_figure9 (Experiments.figure9 ()))
    | `E1 ->
      print_string
        (Experiments.render_e1 (Experiments.racey_determinism ~runs_per_config:50 ()))
    | `E6 -> print_string (Experiments.render_e6 (Experiments.ablation_barriers ()))
    | `E7 -> print_string (Experiments.render_e7 (Experiments.ablation_gc ()))
    | `All -> assert false
  in
  let action = function
    | `All ->
      List.iter run_one [ `E1; `Fig7; `Table1; `Fig8; `Fig9; `E6; `E7 ]
    | x -> run_one x
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper.")
    Term.(const action $ name_arg)

let () =
  let doc = "RFDet: deterministic multithreading without global barriers" in
  let info = Cmd.info "rfdet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; list_cmd; racey_cmd; races_cmd; replay_cmd; experiment_cmd ]))
