type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let copy t = { data = Array.copy t.data; len = t.len }

let iter_range t ~from ~until ~f =
  let until = min until t.len in
  for i = max 0 from to until - 1 do
    f t.data.(i)
  done

let iter t ~f = iter_range t ~from:0 ~until:t.len ~f

let to_list t = Array.to_list (Array.sub t.data 0 t.len)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t
