(** Growable arrays (append-only usage pattern).

    RFDet's slice-pointer lists need O(1) append, O(1) random access and
    cheap structural copies; index positions must remain stable forever
    (the propagation resume indices depend on it), so there is no
    deletion. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

(** [get t i] — bounds-checked. *)
val get : 'a t -> int -> 'a

(** [copy t] — a new vector with the same contents. *)
val copy : 'a t -> 'a t

(** [iter_range t ~from ~until ~f] applies [f] to elements
    [from..until-1] in order ([until] is clamped to [length t]). *)
val iter_range : 'a t -> from:int -> until:int -> f:('a -> unit) -> unit

val iter : 'a t -> f:('a -> unit) -> unit

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t
