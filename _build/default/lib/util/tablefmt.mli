(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables like the ones in the paper's
    evaluation section so that `bench/main.exe` output can be compared to
    Table 1 / Figures 7-9 at a glance. *)

type align = Left | Right

type t

(** [create ~title ~columns] starts a table. Each column is a header
    string plus an alignment for its cells. *)
val create : title:string -> columns:(string * align) list -> t

(** [add_row t cells] appends a row; the number of cells must match the
    number of columns. *)
val add_row : t -> string list -> unit

(** [add_separator t] inserts a horizontal rule between row groups. *)
val add_separator : t -> unit

(** [render t] returns the formatted table as a string (ending in a
    newline). *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** Cell helpers. *)

val cell_float : ?decimals:int -> float -> string
val cell_int : int -> string
val cell_ratio : float -> string
(** [cell_ratio x] formats a slowdown/speedup factor like "1.35x". *)
