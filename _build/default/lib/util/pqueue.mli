(** Imperative binary min-heap keyed by a client-supplied comparison.

    The discrete-event engine keeps runnable threads ordered by
    (simulated clock, thread id); Kendo keeps pending synchronization
    requests ordered by (instruction count, thread id).  Ties must break
    deterministically, so the comparison given at creation time must be a
    total order. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push t x] inserts [x]. *)
val push : 'a t -> 'a -> unit

(** [peek t] returns the minimum without removing it. *)
val peek : 'a t -> 'a option

(** [pop t] removes and returns the minimum. *)
val pop : 'a t -> 'a option

(** [pop_exn t] removes and returns the minimum. Raises [Not_found] when
    empty. *)
val pop_exn : 'a t -> 'a

(** [clear t] removes every element. *)
val clear : 'a t -> unit

(** [to_list t] lists elements in unspecified order (heap order). *)
val to_list : 'a t -> 'a list

(** [exists t ~f] is true iff some element satisfies [f]. *)
val exists : 'a t -> f:('a -> bool) -> bool

(** [fold t ~init ~f] folds over elements in unspecified order. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
