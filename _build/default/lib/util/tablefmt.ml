type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let total_width =
    List.fold_left ( + ) 0 widths + (3 * List.length widths) + 1
  in
  let hline () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  hline ();
  let render_cells cells aligns =
    List.iteri
      (fun i cell ->
        let width = List.nth widths i in
        let align = List.nth aligns i in
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad align width cell);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  render_cells headers (List.map (fun _ -> Left) t.columns);
  hline ();
  List.iter
    (fun row ->
      match row with
      | Separator -> hline ()
      | Cells cells -> render_cells cells (List.map snd t.columns))
    rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int = string_of_int

let cell_ratio x = Printf.sprintf "%.2fx" x
