type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  (* A distinct mixing constant decorrelates the child stream. *)
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let int t bound =
  if bound <= 0 then invalid_arg "Det_rng.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Det_rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
