type t = int array

type order = Equal | Less | Greater | Concurrent

let create n =
  if n <= 0 then invalid_arg "Vclock.create: n <= 0";
  Array.make n 0

let size ~c = Array.length c

let copy = Array.copy

let get c i = c.(i)

let set c i v = c.(i) <- v

let tick c i =
  c.(i) <- c.(i) + 1;
  c.(i)

let join dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vclock.join: size mismatch";
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let joined a b =
  let c = copy a in
  join c b;
  c

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.leq: size mismatch";
  let rec go i = i >= Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let compare_partial a b =
  let le = leq a b and ge = leq b a in
  match le, ge with
  | true, true -> Equal
  | true, false -> Less
  | false, true -> Greater
  | false, false -> Concurrent

let compare_total = Stdlib.compare

let min_into dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vclock.min_into: size mismatch";
  for i = 0 to Array.length dst - 1 do
    if src.(i) < dst.(i) then dst.(i) <- src.(i)
  done

let to_list = Array.to_list

let of_list l =
  if l = [] then invalid_arg "Vclock.of_list: empty";
  Array.of_list l

let pp ppf c =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list c)
