(** Horizontal ASCII bar charts, for rendering the paper's figures in
    terminal output.

    Grouped layout: each row has a label and one bar per series; a
    legend line names the series glyphs.  Values are scaled to a common
    maximum so factors are visually comparable. *)

type series = { name : string; glyph : char }

(** [render ~title ~series ~rows ()] — each row is
    (label, one value per series, in order).  [width] is the maximum bar
    length in characters (default 48).  [baseline], if given, draws a
    vertical mark at that value (e.g. 1.0 for normalized charts). *)
val render :
  title:string ->
  series:series list ->
  rows:(string * float list) list ->
  ?width:int ->
  ?baseline:float ->
  unit ->
  string
