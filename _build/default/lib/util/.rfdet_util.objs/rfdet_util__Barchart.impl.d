lib/util/barchart.ml: Buffer Bytes Float List Printf String
