lib/util/stats.mli:
