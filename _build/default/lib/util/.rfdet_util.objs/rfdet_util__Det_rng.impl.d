lib/util/det_rng.ml: Array Int64
