lib/util/barchart.mli:
