lib/util/tablefmt.mli:
