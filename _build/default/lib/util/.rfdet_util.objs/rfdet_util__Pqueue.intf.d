lib/util/pqueue.mli:
