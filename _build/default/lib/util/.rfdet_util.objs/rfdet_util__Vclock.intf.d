lib/util/vclock.mli: Format
