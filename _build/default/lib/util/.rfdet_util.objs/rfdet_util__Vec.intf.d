lib/util/vec.mli:
