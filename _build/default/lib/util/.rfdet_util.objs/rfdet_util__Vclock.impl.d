lib/util/vclock.ml: Array Format Stdlib
