let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive element";
          acc +. log x)
        0. xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let percent_change ~from ~to_ =
  if from = 0. then 0. else (to_ -. from) /. from *. 100.

let round2 x = Float.round (x *. 100.) /. 100.

let human_bytes n =
  let f = float_of_int n in
  if f < 1024. then Printf.sprintf "%d B" n
  else if f < 1024. *. 1024. then Printf.sprintf "%.1f KB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Printf.sprintf "%.1f MB" (f /. (1024. *. 1024.))
  else Printf.sprintf "%.2f GB" (f /. (1024. *. 1024. *. 1024.))

let human_count n =
  let f = float_of_int n in
  if f < 1e3 then string_of_int n
  else if f < 1e6 then Printf.sprintf "%.1fK" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fM" (f /. 1e6)
  else Printf.sprintf "%.2fB" (f /. 1e9)
