(** Small numeric helpers used by the benchmark harness. *)

(** [mean xs] — arithmetic mean; 0. on empty input. *)
val mean : float list -> float

(** [geomean xs] — geometric mean; 0. on empty input; requires all
    elements positive. *)
val geomean : float list -> float

(** [min_max xs] — [(min, max)]. Raises [Invalid_argument] on empty. *)
val min_max : float list -> float * float

(** [stddev xs] — population standard deviation; 0. on fewer than two
    samples. *)
val stddev : float list -> float

(** [percent_change ~from ~to_] — signed percentage change from [from] to
    [to_]. *)
val percent_change : from:float -> to_:float -> float

(** [round2 x] — rounded to 2 decimal places (for table display). *)
val round2 : float -> float

(** [human_bytes n] — "12.3 KB"-style rendering of a byte count. *)
val human_bytes : int -> string

(** [human_count n] — "1.2M"-style rendering of an event count. *)
val human_count : int -> string
