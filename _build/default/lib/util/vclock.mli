(** Vector clocks (Fidge/Mattern).

    A vector clock timestamps an event in a system of [n] threads with one
    logical-counter component per thread.  RFDet stamps every slice with a
    vector clock and decides happens-before by component-wise comparison:
    slice [a] happens-before slice [b] iff [lt a b] (Section 4.2 of the
    paper). *)

type t

(** Result of a partial-order comparison of two clocks. *)
type order =
  | Equal
  | Less        (** strictly happens-before *)
  | Greater     (** strictly happens-after *)
  | Concurrent  (** unordered: a data race if both sides wrote *)

(** [create n] is the zero clock for [n] threads. *)
val create : int -> t

(** [size c] is the number of components. *)
val size : c:t -> int

(** [copy c] is an independent copy. *)
val copy : t -> t

(** [get c i] reads component [i]. *)
val get : t -> int -> int

(** [set c i v] writes component [i] (bounds-checked). *)
val set : t -> int -> int -> unit

(** [tick c i] increments component [i] in place and returns the new
    value.  Used before every synchronization operation so the next slice
    is younger than the previous one. *)
val tick : t -> int -> int

(** [join dst src] sets [dst := dst ⊔ src] (component-wise max) in place.
    This is the acquire-side update: [timestamp ⊔ Time(R)]. *)
val join : t -> t -> unit

(** [joined a b] is a fresh clock equal to [a ⊔ b]. *)
val joined : t -> t -> t

(** [leq a b] is true iff every component of [a] is [<=] the matching
    component of [b] — i.e. [a] happens-before-or-equals [b]. *)
val leq : t -> t -> bool

(** [lt a b] is true iff [leq a b] and [a <> b]: strict happens-before. *)
val lt : t -> t -> bool

(** [compare_partial a b] classifies the pair under the happens-before
    partial order. *)
val compare_partial : t -> t -> order

(** [equal a b] is component-wise equality. *)
val equal : t -> t -> bool

(** [compare_total a b] is an arbitrary but deterministic total order
    (lexicographic) extending nothing in particular; used only for sorted
    containers. *)
val compare_total : t -> t -> int

(** [min_into dst src] sets [dst := dst ⊓ src] (component-wise min).
    Used by the garbage collector to compute the global frontier: a slice
    older than the component-wise minimum of all threads' clocks has been
    propagated everywhere. *)
val min_into : t -> t -> unit

(** [to_list c] lists the components in thread-id order. *)
val to_list : t -> int list

(** [of_list l] builds a clock from components. *)
val of_list : int list -> t

val pp : Format.formatter -> t -> unit
