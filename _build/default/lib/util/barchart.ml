type series = { name : string; glyph : char }

let render ~title ~series ~rows ?(width = 48) ?baseline () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let legend =
    String.concat "   "
      (List.map (fun s -> Printf.sprintf "%c = %s" s.glyph s.name) series)
  in
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left max acc vs)
      epsilon_float rows
  in
  let bar glyph v =
    let n = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    let n = max 0 (min width n) in
    let b = Bytes.make n glyph in
    (* baseline tick *)
    (match baseline with
    | Some b0 when b0 > 0. && b0 <= max_value ->
      let pos = int_of_float (Float.round (b0 /. max_value *. float_of_int width)) in
      if pos >= 1 && pos <= n then Bytes.set b (pos - 1) '|'
    | Some _ | None -> ());
    Bytes.to_string b
  in
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i v ->
          let s = List.nth series i in
          let row_label = if i = 0 then label else "" in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %c %-*s %.2f\n" label_width row_label s.glyph
               width (bar s.glyph v) v))
        values;
      if List.length series > 1 then Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
