module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost

type obj =
  | Mutex_obj of int
  | Cond_obj of int
  | Barrier_obj of int
  | Thread_obj of int
  | Atomic_obj of int

type hooks = {
  acquire : tid:int -> obj:obj -> now:int -> int;
  release : tid:int -> obj:obj -> now:int -> int;
  barrier_all : tids:int list -> barrier:int -> now:int -> int;
  spawned : parent:int -> child:int -> now:int -> unit;
  exited : tid:int -> unit;
  joined : tid:int -> target:int -> now:int -> int;
}

let trivial_hooks =
  {
    acquire = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    release = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    barrier_all = (fun ~tids:_ ~barrier:_ ~now:_ -> 0);
    spawned = (fun ~parent:_ ~child:_ ~now:_ -> ());
    exited = (fun ~tid:_ -> ());
    joined = (fun ~tid:_ ~target:_ ~now:_ -> 0);
  }

type mutex_state = { mutable owner : int option; queue : int Queue.t }

type cond_state = { cond_waiters : (int * int) Queue.t }
(* (waiter tid, mutex to reacquire), in deterministic grant order *)

type barrier_state = { parties : int; mutable arrived : int list (* reversed *) }

type t = {
  engine : Engine.t;
  arb : Arbiter.t;
  hooks : hooks;
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;  (* target tid -> blocked joiners *)
  mutable next_handle : int;
}

let create engine hooks =
  let t =
    {
      engine;
      arb = Arbiter.create engine;
      hooks;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      joiners = Hashtbl.create 8;
      next_handle = 1;
    }
  in
  Arbiter.thread_started t.arb ~tid:0;
  t

let arbiter t = t.arb

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown barrier %d" b)

let sync_cost t = (Engine.cost t.engine).Cost.sync_op

let mutex_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.mutexes h { owner = None; queue = Queue.create () };
  Engine.Done h

let cond_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
  Engine.Done h

let barrier_create t ~tid:_ ~parties =
  if parties <= 0 then invalid_arg "Sync.barrier_create: parties <= 0";
  let h = fresh_handle t in
  Hashtbl.replace t.barriers h { parties; arrived = [] };
  Engine.Done h

(* Grant the mutex to [tid] at time [now]: run the acquire hook and wake
   the thread.  The thread is currently inactive/blocked. *)
let grant_mutex t ~tid ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  st.owner <- Some tid;
  let extra = t.hooks.acquire ~tid ~obj:(Mutex_obj mutex) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t + extra)

let lock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now
      | Some _ ->
        (* Queue in deterministic reservation order; stay blocked. *)
        Queue.add tid st.queue;
        Arbiter.set_inactive t.arb ~tid);
  Engine.Block

(* Pass a free mutex to the head of its queue, if any. *)
let pass_mutex t ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  match Queue.take_opt st.queue with
  | None -> ()
  | Some waiter -> grant_mutex t ~tid:waiter ~mutex ~now

let unlock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      (match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.unlock: tid %d does not hold mutex %d" tid
             mutex));
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      st.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_wait t ~tid ~cond ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let mst = mutex_state t mutex in
      (match mst.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.cond_wait: tid %d does not hold mutex %d" tid
             mutex));
      (* Waiting releases the mutex: a release point on the mutex. *)
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      mst.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      let cst = cond_state t cond in
      Queue.add (tid, mutex) cst.cond_waiters;
      Arbiter.set_inactive t.arb ~tid);
  Engine.Block

(* Wake one queued waiter: acquire point on the condvar (see the
   signaller's updates), then contend for the mutex again. *)
let wake_cond_waiter t ~waiter ~mutex ~cond ~now =
  let extra = t.hooks.acquire ~tid:waiter ~obj:(Cond_obj cond) ~now in
  let now = now + extra in
  let mst = mutex_state t mutex in
  match mst.owner with
  | None -> grant_mutex t ~tid:waiter ~mutex ~now
  | Some _ -> Queue.add waiter mst.queue

let cond_signal t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      (match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (waiter, mutex) ->
        wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra));
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_broadcast t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      let rec drain () =
        match Queue.take_opt cst.cond_waiters with
        | None -> ()
        | Some (waiter, mutex) ->
          wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra);
          drain ()
      in
      drain ();
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let barrier_wait t ~tid ~barrier =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = barrier_state t barrier in
      st.arrived <- tid :: st.arrived;
      if List.length st.arrived < st.parties then
        Arbiter.set_inactive t.arb ~tid
      else begin
        let tids = List.rev st.arrived in
        st.arrived <- [];
        let extra = t.hooks.barrier_all ~tids ~barrier ~now in
        let release_at =
          now + extra + (Engine.cost t.engine).Cost.barrier_overhead
        in
        List.iter
          (fun tid' ->
            if tid' <> tid then begin
              Arbiter.set_active t.arb ~tid:tid';
              Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:release_at
            end)
          tids;
        Engine.wake t.engine ~tid ~value:0 ~not_before:release_at
      end);
  Engine.Block

let spawn t ~tid ~body =
  let cost = Engine.cost t.engine in
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let start_at = now + cost.Cost.spawn in
      let child = Engine.register_thread t.engine ~body ~start_at in
      (* Children inherit the parent's deterministic instruction count so
         the Kendo logical clocks stay comparable. *)
      Engine.seed_icount t.engine child (Engine.icount t.engine tid);
      Arbiter.thread_started t.arb ~tid:child;
      t.hooks.spawned ~parent:tid ~child ~now;
      Engine.wake t.engine ~tid ~value:child ~not_before:start_at);
  Engine.Block

let rmw t ~tid ~action =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let value, extra = action ~now in
      Engine.wake t.engine ~tid ~value ~not_before:(now + sync_cost t + extra));
  Engine.Block

let complete_join t ~tid ~target ~now =
  let extra = t.hooks.joined ~tid ~target ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:0
    ~not_before:(now + (Engine.cost t.engine).Cost.join + extra)

let join t ~tid ~target =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      if Engine.is_finished t.engine target then
        complete_join t ~tid ~target ~now
      else begin
        let existing =
          Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
        in
        Hashtbl.replace t.joiners target (existing @ [ tid ]);
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let on_thread_exit t ~tid =
  t.hooks.exited ~tid;
  Arbiter.thread_finished t.arb ~tid;
  let now = Engine.clock t.engine tid in
  (match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    List.iter
      (fun joiner ->
        let now = max now (Engine.clock t.engine joiner) in
        complete_join t ~tid:joiner ~target:tid ~now)
      waiting);
  Arbiter.poll t.arb

let poll t = Arbiter.poll t.arb

let holder t ~mutex = (mutex_state t mutex).owner

let joining_target t ~tid =
  Hashtbl.fold
    (fun target joiners acc ->
      if acc = None && List.mem tid joiners then Some target else acc)
    t.joiners None

let waiters t ~cond =
  Queue.fold (fun acc (tid, _) -> tid :: acc) [] (cond_state t cond).cond_waiters
  |> List.rev
