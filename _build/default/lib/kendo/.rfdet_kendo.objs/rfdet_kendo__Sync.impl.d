lib/kendo/sync.ml: Arbiter Hashtbl List Option Printf Queue Rfdet_sim
