lib/kendo/arbiter.ml: Hashtbl Rfdet_sim
