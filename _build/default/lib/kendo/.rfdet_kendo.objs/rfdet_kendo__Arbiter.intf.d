lib/kendo/arbiter.mli: Rfdet_sim
