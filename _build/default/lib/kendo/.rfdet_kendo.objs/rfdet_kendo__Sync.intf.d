lib/kendo/sync.mli: Arbiter Rfdet_sim
