(** Page geometry for the simulated machine.

    Addresses are plain [int] byte addresses inside a simulated address
    space.  The page size matches the x86-64 default (4 KiB) used by the
    paper's mprotect-based monitor. *)

val size : int
(** Bytes per page (4096). *)

val shift : int
(** log2 [size]. *)

val id_of_addr : int -> int
(** Page number containing a byte address. *)

val offset_of_addr : int -> int
(** Offset of a byte address within its page. *)

val base_of_id : int -> int
(** First byte address of a page. *)

val span : addr:int -> len:int -> int list
(** [span ~addr ~len] lists the page ids touched by the byte range
    [addr, addr+len); empty when [len <= 0]. *)
