lib/mem/page.mli:
