lib/mem/layout.mli:
