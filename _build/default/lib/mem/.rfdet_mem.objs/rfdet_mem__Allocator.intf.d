lib/mem/allocator.mli:
