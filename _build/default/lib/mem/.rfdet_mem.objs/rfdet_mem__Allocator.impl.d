lib/mem/allocator.ml: Array Hashtbl Layout Page
