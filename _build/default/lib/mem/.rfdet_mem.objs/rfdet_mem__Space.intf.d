lib/mem/space.mli:
