lib/mem/space.ml: Bytes Char Hashtbl Int64 Page String
