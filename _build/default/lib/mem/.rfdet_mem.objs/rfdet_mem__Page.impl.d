lib/mem/page.ml:
