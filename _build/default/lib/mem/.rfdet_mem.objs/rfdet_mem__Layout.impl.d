lib/mem/layout.ml:
