lib/mem/diff.ml: Bytes Char Format List Page Space String
