lib/mem/diff.mli: Format Space
