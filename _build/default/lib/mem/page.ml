let shift = 12

let size = 1 lsl shift

let id_of_addr addr = addr lsr shift

let offset_of_addr addr = addr land (size - 1)

let base_of_id id = id lsl shift

let span ~addr ~len =
  if len <= 0 then []
  else begin
    let first = id_of_addr addr and last = id_of_addr (addr + len - 1) in
    let rec go id acc = if id < first then acc else go (id - 1) (id :: acc) in
    go last []
  end
