let globals_base = 0x0010_0000

let heap_base = 0x1000_0000

let heap_limit = 0x6000_0000

let stacks_base = 0x7000_0000

let stack_size = 0x10_0000

let stack_base_for ~tid = stacks_base + (tid * stack_size)

let is_shared addr = addr >= globals_base && addr < heap_limit

let is_stack addr = addr >= stacks_base
