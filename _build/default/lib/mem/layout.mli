(** Simulated virtual-address-space layout.

    Mirrors Figure 3 of the paper: a shared-memory region (globals +
    heap) whose virtual addresses are common to all threads and which the
    runtime monitors, and per-thread stack regions that are assumed
    thread-private and are never monitored.  The metadata space of the
    paper is runtime-internal state in this reproduction (it is metered in
    bytes but has no simulated addresses). *)

val globals_base : int
(** Start of the static/global data region (shared, monitored). *)

val heap_base : int
(** Start of the dynamic allocation region (shared, monitored). *)

val heap_limit : int
(** Exclusive end of the heap region. *)

val stacks_base : int
(** Start of the stack area (thread-private, unmonitored). *)

val stack_size : int
(** Bytes reserved per thread stack. *)

val stack_base_for : tid:int -> int
(** Base address of thread [tid]'s stack. *)

val is_shared : int -> bool
(** True when the address falls in the monitored shared region
    (globals or heap) — line 3 of the paper's Figure 4. *)

val is_stack : int -> bool
