(** Shared-metadata memory allocator (Hoard-like, Section 4.4).

    Because RFDet's threads live in isolated address spaces, glibc malloc
    would hand the same virtual address to two threads, and those objects
    would collide during modification propagation.  The paper's fix is a
    modified Hoard allocator whose bookkeeping lives in the shared
    metadata space so an address handed to one thread is reserved in all
    of them.

    This module is that allocator: a single instance is owned by the
    runtime (the metadata space), all simulated threads allocate through
    it, and consequently no two live objects ever share an address.  Size
    classes are powers of two from 16 bytes to one page; larger requests
    get page-aligned spans.  Frees go to per-class free lists. *)

type t

(** [create ()] — fresh allocator managing [Layout.heap_base,
    Layout.heap_limit). *)
val create : unit -> t

exception Out_of_memory

(** [malloc t n] returns the address of a span of at least [n] bytes
    ([n >= 0]; zero-size requests consume one slot, like glibc).  Raises
    [Out_of_memory] when the heap region is exhausted. *)
val malloc : t -> int -> int

(** [free t addr] releases an allocation. Raises [Invalid_argument] on a
    double free or an address not returned by [malloc]. *)
val free : t -> int -> unit

(** [size_of t addr] is the usable size of a live allocation. *)
val size_of : t -> int -> int

(** [live_bytes t] — bytes currently allocated (usable sizes). *)
val live_bytes : t -> int

(** [peak_bytes t] — high-water mark of [live_bytes]. *)
val peak_bytes : t -> int

(** [allocations t] — count of successful [malloc] calls so far. *)
val allocations : t -> int
