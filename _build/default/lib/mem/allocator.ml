exception Out_of_memory

(* Size classes: 16, 32, ..., 4096 bytes. *)
let min_class_shift = 4

let max_class_shift = Page.shift

let class_count = max_class_shift - min_class_shift + 1

type t = {
  mutable bump : int;                  (* next unallocated heap address *)
  free_lists : int list array;         (* per size class *)
  sizes : (int, int) Hashtbl.t;        (* live address -> usable size *)
  mutable live : int;
  mutable peak : int;
  mutable allocs : int;
}

let create () =
  {
    bump = Layout.heap_base;
    free_lists = Array.make class_count [];
    sizes = Hashtbl.create 256;
    live = 0;
    peak = 0;
    allocs = 0;
  }

(* Smallest size class holding [n] bytes, or None for large requests. *)
let class_for n =
  if n > Page.size then None
  else begin
    let rec go shift =
      if 1 lsl shift >= n then shift else go (shift + 1)
    in
    Some (go min_class_shift - min_class_shift)
  end

let usable_size n =
  match class_for n with
  | Some cls -> 1 lsl (cls + min_class_shift)
  | None ->
    (* Round large requests up to whole pages. *)
    (n + Page.size - 1) / Page.size * Page.size

let bump_alloc t n ~align =
  let addr = (t.bump + align - 1) / align * align in
  if addr + n > Layout.heap_limit then raise Out_of_memory;
  t.bump <- addr + n;
  addr

let account t addr size =
  Hashtbl.replace t.sizes addr size;
  t.live <- t.live + size;
  if t.live > t.peak then t.peak <- t.live;
  t.allocs <- t.allocs + 1

let malloc t n =
  if n < 0 then invalid_arg "Allocator.malloc: negative size";
  let n = max n 1 in
  let size = usable_size n in
  match class_for n with
  | Some cls -> begin
    match t.free_lists.(cls) with
    | addr :: rest ->
      t.free_lists.(cls) <- rest;
      account t addr size;
      addr
    | [] ->
      let addr = bump_alloc t size ~align:size in
      account t addr size;
      addr
  end
  | None ->
    let addr = bump_alloc t size ~align:Page.size in
    account t addr size;
    addr

let size_of t addr =
  match Hashtbl.find_opt t.sizes addr with
  | Some size -> size
  | None -> invalid_arg "Allocator.size_of: not a live allocation"

let free t addr =
  match Hashtbl.find_opt t.sizes addr with
  | None -> invalid_arg "Allocator.free: not a live allocation"
  | Some size ->
    Hashtbl.remove t.sizes addr;
    t.live <- t.live - size;
    (match class_for size with
    | Some cls when 1 lsl (cls + min_class_shift) = size ->
      t.free_lists.(cls) <- addr :: t.free_lists.(cls)
    | Some _ | None ->
      (* Large spans are not recycled; the heap region is vast relative to
         workload footprints, matching the paper's reserve-only spans. *)
      ())

let live_bytes t = t.live

let peak_bytes t = t.peak

let allocations t = t.allocs
