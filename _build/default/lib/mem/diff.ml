type run = { addr : int; data : string }

type t = run list

let diff_page ~page_id ~snapshot ~current =
  if Bytes.length snapshot <> Page.size || Bytes.length current <> Page.size
  then invalid_arg "Diff.diff_page: buffers must be page-sized";
  let base = Page.base_of_id page_id in
  (* Scan for maximal runs of differing bytes. *)
  let runs = ref [] in
  let i = ref 0 in
  while !i < Page.size do
    if Bytes.get snapshot !i <> Bytes.get current !i then begin
      let start = !i in
      while
        !i < Page.size && Bytes.get snapshot !i <> Bytes.get current !i
      do
        incr i
      done;
      let len = !i - start in
      runs :=
        { addr = base + start; data = Bytes.sub_string current start len }
        :: !runs
    end
    else incr i
  done;
  List.rev !runs

let apply_run space run =
  String.iteri
    (fun i c -> Space.store_byte space (run.addr + i) (Char.code c))
    run.data

let apply space t = List.iter (apply_run space) t

let byte_count t = List.fold_left (fun acc r -> acc + String.length r.data) 0 t

let run_count = List.length

let is_empty t = t = []

let pages_touched t =
  let ids = List.map (fun r -> Page.id_of_addr r.addr) t in
  List.sort_uniq compare ids

let restrict_to_page t page_id =
  List.filter (fun r -> Page.id_of_addr r.addr = page_id) t

let concat = List.concat

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf r ->
         Format.fprintf ppf "%#x+%d" r.addr (String.length r.data)))
    t
