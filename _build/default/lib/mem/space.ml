(* A mapping points at a page frame that may be shared by several spaces
   after a fork.  [frame.refs] counts the spaces sharing it; a write
   through a shared frame first copies it (copy-on-write). *)

type frame = { data : bytes; mutable refs : int }

type mapping = { mutable frame : frame }

type t = {
  pages : (int, mapping) Hashtbl.t;
  prots : (int, protection) Hashtbl.t;
}

and protection = Prot_rw | Prot_read_only | Prot_none

let create () = { pages = Hashtbl.create 64; prots = Hashtbl.create 8 }

let fork t =
  let child = create () in
  Hashtbl.iter
    (fun id m ->
      m.frame.refs <- m.frame.refs + 1;
      Hashtbl.replace child.pages id { frame = m.frame })
    t.pages;
  child

let fresh_frame () = { data = Bytes.make Page.size '\000'; refs = 1 }

let mapping_for t id =
  match Hashtbl.find_opt t.pages id with
  | Some m -> m
  | None ->
    let m = { frame = fresh_frame () } in
    Hashtbl.replace t.pages id m;
    m

(* Ensure the mapping's frame is private to this space before writing. *)
let own t id =
  let m = mapping_for t id in
  if m.frame.refs > 1 then begin
    m.frame.refs <- m.frame.refs - 1;
    let copy = { data = Bytes.copy m.frame.data; refs = 1 } in
    m.frame <- copy
  end;
  m

let load_byte t addr =
  match Hashtbl.find_opt t.pages (Page.id_of_addr addr) with
  | None -> 0
  | Some m -> Char.code (Bytes.get m.frame.data (Page.offset_of_addr addr))

let store_byte t addr v =
  let m = own t (Page.id_of_addr addr) in
  Bytes.set m.frame.data (Page.offset_of_addr addr) (Char.chr (v land 0xff))

let load_i64 t addr =
  (* Fast path when the 8 bytes sit inside one page. *)
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then
    match Hashtbl.find_opt t.pages (Page.id_of_addr addr) with
    | None -> 0L
    | Some m -> Bytes.get_int64_le m.frame.data off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load_byte t (addr + i)))
    done;
    !v
  end

let store_i64 t addr v =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let m = own t (Page.id_of_addr addr) in
    Bytes.set_int64_le m.frame.data off v
  end
  else
    for i = 0 to 7 do
      store_byte t (addr + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let load_int t addr = Int64.to_int (load_i64 t addr)

let store_int t addr v = store_i64 t addr (Int64.of_int v)

let blit_string t ~addr s =
  String.iteri (fun i c -> store_byte t (addr + i) (Char.code c)) s

let read_string t ~addr ~len =
  String.init len (fun i -> Char.chr (load_byte t (addr + i)))

let zero_page = Bytes.make Page.size '\000'

let snapshot_page t id =
  match Hashtbl.find_opt t.pages id with
  | None -> Bytes.copy zero_page
  | Some m -> Bytes.copy m.frame.data

let page_bytes t id =
  match Hashtbl.find_opt t.pages id with
  | None -> zero_page
  | Some m -> m.frame.data

let write_page t id data =
  if Bytes.length data <> Page.size then
    invalid_arg "Space.write_page: wrong page size";
  let m = own t id in
  Bytes.blit data 0 m.frame.data 0 Page.size

let page_is_mapped t id = Hashtbl.mem t.pages id

let owned_pages t =
  Hashtbl.fold (fun _ m acc -> if m.frame.refs = 1 then acc + 1 else acc) t.pages 0

let mapped_pages t = Hashtbl.length t.pages

let iter_pages t ~f = Hashtbl.iter (fun id _ -> f id) t.pages

let protect t id p =
  match p with
  | Prot_rw -> Hashtbl.remove t.prots id
  | Prot_read_only | Prot_none -> Hashtbl.replace t.prots id p

let protection t id =
  match Hashtbl.find_opt t.prots id with Some p -> p | None -> Prot_rw

let clear_protections t = Hashtbl.reset t.prots
