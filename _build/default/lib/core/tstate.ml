module Space = Rfdet_mem.Space
module Vclock = Rfdet_util.Vclock
module Vec = Rfdet_util.Vec

type t = {
  tid : int;
  shared : Space.t;
  stack : Space.t;
  time : Vclock.t;
  slices : Slice.t Vec.t;
  resume : (int, int) Hashtbl.t;
  snapshots : (int, bytes) Hashtbl.t;
  mutable touch_order : int list;
  lazy_pending : (int, Rfdet_mem.Diff.run list) Hashtbl.t;
  mutable final_stamp : Vclock.t option;
  mutable exit_len : int;
  mutable joined : bool;
  mutable monitoring : bool;
}

let create_root ~clock_size ~monitoring =
  {
    tid = 0;
    shared = Space.create ();
    stack = Space.create ();
    time = Vclock.create clock_size;
    slices = Vec.create ();
    resume = Hashtbl.create 8;
    snapshots = Hashtbl.create 32;
    touch_order = [];
    lazy_pending = Hashtbl.create 8;
    final_stamp = None;
    exit_len = 0;
    joined = false;
    monitoring;
  }

let fork parent ~tid ~stamp =
  assert (Hashtbl.length parent.lazy_pending = 0);
  let time = Vclock.copy stamp in
  ignore (Vclock.tick time tid);
  let resume = Hashtbl.copy parent.resume in
  (* The child has seen every slice its parent ever closed. *)
  Hashtbl.replace resume parent.tid (Vec.length parent.slices);
  {
    tid;
    shared = Space.fork parent.shared;
    stack = Space.create ();
    time;
    slices = Vec.copy parent.slices;
    resume;
    snapshots = Hashtbl.create 32;
    touch_order = [];
    lazy_pending = Hashtbl.create 8;
    final_stamp = None;
    exit_len = 0;
    joined = false;
    monitoring = true;
  }

let adopt_view ~leader ~follower =
  assert (Hashtbl.length leader.lazy_pending = 0);
  let resume = Hashtbl.copy leader.resume in
  Hashtbl.replace resume leader.tid (Vec.length leader.slices);
  {
    follower with
    shared = Space.fork leader.shared;
    slices = Vec.copy leader.slices;
    resume;
    snapshots = Hashtbl.create 32;
    touch_order = [];
    lazy_pending = Hashtbl.create 8;
  }

let append_slice t s = Vec.push t.slices s

let resume_index t ~from =
  Option.value (Hashtbl.find_opt t.resume from) ~default:0

let set_resume_index t ~from idx = Hashtbl.replace t.resume from idx

let has_open_snapshot t page = Hashtbl.mem t.snapshots page

let add_snapshot t page data =
  Hashtbl.replace t.snapshots page data;
  t.touch_order <- page :: t.touch_order

let pending_runs t page =
  match Hashtbl.find_opt t.lazy_pending page with
  | None -> []
  | Some rev ->
    Hashtbl.remove t.lazy_pending page;
    List.rev rev

let has_pending t page = Hashtbl.mem t.lazy_pending page

let add_pending t page runs =
  let existing = Option.value (Hashtbl.find_opt t.lazy_pending page) ~default:[] in
  Hashtbl.replace t.lazy_pending page (List.rev_append runs existing)

let pending_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.lazy_pending []
  |> List.sort compare

let exited t = t.final_stamp <> None
