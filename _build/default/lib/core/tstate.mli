(** Per-thread RFDet state: the isolated memory view, the vector clock,
    the slice-pointer list and the open-slice monitoring state.

    Mirrors the paper's per-process state: [shared] is the thread's
    private view of the shared region (created by copy-on-write fork from
    its parent, Section 4.1 "Thread Create"), [slices] is the
    *slice pointers* list of Section 4.3 — every closed slice known to
    happen-before this thread's program counter, in happens-before-
    compatible order — and [snapshots] holds the first-touch page
    snapshots of the currently open slice (Figure 4).

    [resume] implements an incremental version of Figure 5's scan: for
    each remote thread X it records how far into X's (append-only)
    slice-pointer list this thread has already looked.  Entries below the
    index are permanently resolved — every slice there was either
    propagated here or filtered as already-seen, and both verdicts are
    stable because the thread's clock only grows. *)

type t = {
  tid : int;
  shared : Rfdet_mem.Space.t;
  stack : Rfdet_mem.Space.t;  (** thread-private, never monitored *)
  time : Rfdet_util.Vclock.t;  (** current vector clock, mutated in place *)
  slices : Slice.t Rfdet_util.Vec.t;
  resume : (int, int) Hashtbl.t;  (** remote tid -> scan resume index *)
  snapshots : (int, bytes) Hashtbl.t;  (** open slice: page id -> snapshot *)
  mutable touch_order : int list;  (** reversed first-touch page order *)
  lazy_pending : (int, Rfdet_mem.Diff.run list) Hashtbl.t;
      (** page id -> unapplied propagated runs, reversed *)
  mutable final_stamp : Rfdet_util.Vclock.t option;  (** set at exit *)
  mutable exit_len : int;  (** slice-list length at exit (join bound) *)
  mutable joined : bool;
  mutable monitoring : bool;
}

(** [create_root ~clock_size ~monitoring] — thread 0's state with a fresh
    shared space. *)
val create_root : clock_size:int -> monitoring:bool -> t

(** [fork parent ~tid ~stamp] — child state at thread creation: shared
    space forked copy-on-write, slice pointers and resume indices copied
    (the child has seen everything its parent had seen, including all of
    the parent's own slices), clock = [stamp] with the child's component
    ticked so the child's first slice is concurrent with the parent's
    next one.  The parent's lazy-pending updates must be flushed before
    calling this. *)
val fork : t -> tid:int -> stamp:Rfdet_util.Vclock.t -> t

(** [adopt_view ~leader ~follower] — barrier re-seeding: the follower
    takes a copy-on-write copy of the leader's shared space, slice list
    and resume indices, keeping its own stack, tid, clock and monitoring
    flag. *)
val adopt_view : leader:t -> follower:t -> t

(** [append_slice t s] adds a closed slice to the slice-pointer list. *)
val append_slice : t -> Slice.t -> unit

val resume_index : t -> from:int -> int

val set_resume_index : t -> from:int -> int -> unit

(** [has_open_snapshot t page] / [add_snapshot t page data] — Figure 4's
    hasPageSnapshot / addPageSnapshot. *)
val has_open_snapshot : t -> int -> bool

val add_snapshot : t -> int -> bytes -> unit

(** [pending_runs t page] returns and clears the page's unapplied
    propagated runs, in application order. *)
val pending_runs : t -> int -> Rfdet_mem.Diff.run list

val has_pending : t -> int -> bool

val add_pending : t -> int -> Rfdet_mem.Diff.run list -> unit
(** Runs must be given in application order; they are queued after any
    runs already pending on the page. *)

val pending_pages : t -> int list

val exited : t -> bool
