lib/core/metadata.ml: List Rfdet_mem Rfdet_util Slice
