lib/core/tstate.mli: Hashtbl Rfdet_mem Rfdet_util Slice
