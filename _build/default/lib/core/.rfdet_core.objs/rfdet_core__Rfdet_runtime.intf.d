lib/core/rfdet_runtime.mli: Metadata Options Rfdet_kendo Rfdet_sim Rfdet_util Tstate
