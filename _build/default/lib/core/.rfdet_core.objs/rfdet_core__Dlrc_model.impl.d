lib/core/dlrc_model.ml: Hashtbl List Option Printf Rfdet_kendo Rfdet_mem Rfdet_sim Rfdet_util
