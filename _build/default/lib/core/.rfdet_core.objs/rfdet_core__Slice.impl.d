lib/core/slice.ml: Format Rfdet_mem Rfdet_util
