lib/core/propagate.mli: Options Rfdet_sim Rfdet_util Tstate
