lib/core/slice.mli: Format Rfdet_mem Rfdet_util
