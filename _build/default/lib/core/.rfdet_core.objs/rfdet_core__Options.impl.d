lib/core/options.ml:
