lib/core/metadata.mli: Rfdet_util Slice
