lib/core/options.mli:
