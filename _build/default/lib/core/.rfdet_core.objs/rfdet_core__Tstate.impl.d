lib/core/tstate.ml: Hashtbl List Option Rfdet_mem Rfdet_util Slice
