lib/core/dlrc_model.mli: Rfdet_sim
