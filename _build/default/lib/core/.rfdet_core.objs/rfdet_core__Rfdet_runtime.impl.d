lib/core/rfdet_runtime.ml: Bytes Hashtbl List Metadata Options Printf Propagate Rfdet_kendo Rfdet_mem Rfdet_sim Rfdet_util Slice String Tstate
