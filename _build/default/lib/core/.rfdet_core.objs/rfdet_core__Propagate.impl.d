lib/core/propagate.ml: Hashtbl List Option Options Rfdet_mem Rfdet_sim Rfdet_util Slice String Tstate
