type t = {
  instr : int;
  load : int;
  store : int;
  store_check : int;
  sync_op : int;
  kendo_check : int;
  page_fault : int;
  mprotect_page : int;
  snapshot_byte_num : int;
  snapshot_byte_den : int;
  diff_byte_num : int;
  diff_byte_den : int;
  apply_byte : int;
  slice_overhead : int;
  barrier_overhead : int;
  commit_token : int;
  spawn : int;
  join : int;
  malloc : int;
  free : int;
  output : int;
  gc_per_slice : int;
}

let default =
  {
    instr = 1;
    load = 2;
    store = 2;
    store_check = 1;
    sync_op = 60;
    kendo_check = 8;
    page_fault = 2200;
    mprotect_page = 800;
    snapshot_byte_num = 1;
    snapshot_byte_den = 32;
    diff_byte_num = 1;
    diff_byte_den = 16;
    apply_byte = 4;
    slice_overhead = 120;
    barrier_overhead = 500;
    commit_token = 200;
    spawn = 12000;
    join = 2500;
    malloc = 90;
    free = 60;
    output = 20;
    gc_per_slice = 40;
  }

let scale_memory t factor =
  let s x = int_of_float (Float.round (float_of_int x *. factor)) in
  {
    t with
    page_fault = s t.page_fault;
    mprotect_page = s t.mprotect_page;
    snapshot_byte_num = max 1 (s t.snapshot_byte_num);
    diff_byte_num = max 1 (s t.diff_byte_num);
  }

let snapshot_cost t ~bytes = bytes * t.snapshot_byte_num / t.snapshot_byte_den

let diff_cost t ~bytes = bytes * t.diff_byte_num / t.diff_byte_den
