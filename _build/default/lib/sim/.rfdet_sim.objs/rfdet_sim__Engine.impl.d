lib/sim/engine.ml: Api Array Buffer Cost Digest Effect Hashtbl List Op Printf Profile Rfdet_mem Rfdet_util String
