lib/sim/profile.ml: Format
