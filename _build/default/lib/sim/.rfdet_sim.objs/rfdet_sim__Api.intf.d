lib/sim/api.mli: Effect Op
