lib/sim/api.ml: Effect Int64 Op
