lib/sim/cost.ml: Float
