lib/sim/op.ml:
