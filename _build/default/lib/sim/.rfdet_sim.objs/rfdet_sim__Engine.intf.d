lib/sim/engine.mli: Cost Op Profile Rfdet_mem
