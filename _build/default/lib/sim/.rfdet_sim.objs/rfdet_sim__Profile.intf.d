lib/sim/profile.mli: Format
