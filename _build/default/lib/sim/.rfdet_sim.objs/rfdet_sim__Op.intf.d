lib/sim/op.mli:
