lib/sim/cost.mli:
