(** Simulated-cycle cost model.

    The paper's numbers come from a 2.2 GHz 12-core AMD Opteron; ours come
    from this table.  Absolute values are loose analogues of that machine
    (a cycle here ~ a CPU cycle there); what the evaluation depends on is
    the *relative* cost structure: page faults and mprotect calls are
    thousands of cycles (hence RFDet-pf > RFDet-ci), global barrier waits
    dominate DThreads, snapshot/diff work scales with bytes, and plain
    loads/stores are cheap. *)

type t = {
  instr : int;  (** cycles per counted instruction in a [Tick] *)
  load : int;  (** cycles per shared-memory load *)
  store : int;  (** cycles per shared-memory store *)
  store_check : int;
      (** extra cycles for the RFDet-ci instrumentation branch on every
          store (Figure 4's in-shared-memory / first-touch test) *)
  sync_op : int;  (** base cost of an uncontended synchronization call *)
  kendo_check : int;
      (** cycles per deterministic-turn re-check while waiting *)
  page_fault : int;  (** trap + handler, RFDet-pf and lazy-writes *)
  mprotect_page : int;  (** per page write-protected at slice start *)
  snapshot_byte_num : int;
  snapshot_byte_den : int;
      (** page snapshot memcpy: num/den cycles per byte *)
  diff_byte_num : int;
  diff_byte_den : int;  (** byte-compare during page diffing *)
  apply_byte : int;  (** cycles per propagated byte written locally *)
  slice_overhead : int;  (** fixed cost to open/close a slice *)
  barrier_overhead : int;  (** global-barrier bookkeeping (DThreads) *)
  commit_token : int;  (** serial-commit token handoff (DThreads) *)
  spawn : int;
  join : int;
  malloc : int;
  free : int;
  output : int;
  gc_per_slice : int;  (** GC sweep cost per live slice examined *)
}

val default : t

(** [scale_memory t factor] multiplies the page-granularity costs
    (fault, mprotect, snapshot, diff) — used by sensitivity ablations. *)
val scale_memory : t -> float -> t

val snapshot_cost : t -> bytes:int -> int
val diff_cost : t -> bytes:int -> int
