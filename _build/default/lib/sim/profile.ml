type t = {
  mutable locks : int;
  mutable unlocks : int;
  mutable waits : int;
  mutable signals : int;
  mutable barriers : int;
  mutable forks : int;
  mutable joins : int;
  mutable atomics : int;
  mutable loads : int;
  mutable stores : int;
  mutable stores_with_copy : int;
  mutable page_faults : int;
  mutable mprotect_calls : int;
  mutable snapshots : int;
  mutable slices_created : int;
  mutable slices_propagated : int;
  mutable bytes_propagated : int;
  mutable diff_bytes_scanned : int;
  mutable gc_runs : int;
  mutable gc_slices_freed : int;
  mutable kendo_waits : int;
  mutable barrier_stalls : int;
  mutable shared_bytes : int;
  mutable stack_bytes : int;
  mutable metadata_peak_bytes : int;
  mutable private_copy_bytes : int;
}

let create () =
  {
    locks = 0;
    unlocks = 0;
    waits = 0;
    signals = 0;
    barriers = 0;
    forks = 0;
    joins = 0;
    atomics = 0;
    loads = 0;
    stores = 0;
    stores_with_copy = 0;
    page_faults = 0;
    mprotect_calls = 0;
    snapshots = 0;
    slices_created = 0;
    slices_propagated = 0;
    bytes_propagated = 0;
    diff_bytes_scanned = 0;
    gc_runs = 0;
    gc_slices_freed = 0;
    kendo_waits = 0;
    barrier_stalls = 0;
    shared_bytes = 0;
    stack_bytes = 0;
    metadata_peak_bytes = 0;
    private_copy_bytes = 0;
  }

let footprint_pthreads p = p.shared_bytes + p.stack_bytes

let footprint_rfdet p =
  p.shared_bytes + p.private_copy_bytes + p.stack_bytes
  + p.metadata_peak_bytes

let sync_ops p =
  p.locks + p.unlocks + p.waits + p.signals + p.barriers + p.forks + p.joins
  + p.atomics

let mem_ops p = p.loads + p.stores

let pp ppf p =
  Format.fprintf ppf
    "@[<v>sync: lock/unlock=%d/%d wait=%d signal=%d barrier=%d fork/join=%d/%d@ \
     mem: loads=%d stores=%d stores_w_copy=%d@ \
     monitor: faults=%d mprotect=%d snapshots=%d slices=%d propagated=%d \
     bytes=%d gc=%d@ \
     footprint: shared=%d stacks=%d metadata=%d private=%d@]"
    p.locks p.unlocks p.waits p.signals p.barriers p.forks p.joins p.loads
    p.stores p.stores_with_copy p.page_faults p.mprotect_calls p.snapshots
    p.slices_created p.slices_propagated p.bytes_propagated p.gc_runs
    p.shared_bytes p.stack_bytes p.metadata_peak_bytes p.private_copy_bytes
