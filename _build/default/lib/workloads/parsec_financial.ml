(** blackscholes and swaptions (PARSEC): embarrassingly parallel
    financial kernels with a tiny amount of locking — a chunked work
    queue guarded by one mutex (Table 1 shows 24 locks for both).

    blackscholes is load-dominated (price each option, write one word);
    swaptions additionally writes large per-path scratch buffers in
    shared memory, giving the high store volume and
    2671 stores-with-copy of its Table 1 row. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng
module Fx = Wl_common.Fx

(* Fetch the next chunk index from a shared cursor under a mutex. *)
let next_chunk ~m ~cursor ~nchunks =
  Api.with_lock m (fun () ->
      let c = Api.load cursor in
      if c >= nchunks then -1
      else begin
        Api.store cursor (c + 1);
        c
      end)

let blackscholes_main (cfg : Workload.cfg) () =
  let n = Workload.scaled cfg 3000 in
  let fields = 5 in
  (* spot, strike, rate, vol, time — fixed-point *)
  let opts = Api.malloc (8 * n * fields) in
  let prices = Api.malloc (8 * n) in
  let rng = Det_rng.create cfg.input_seed in
  for i = 0 to (n * fields) - 1 do
    Api.store (opts + (8 * i)) (Fx.of_int (1 + Det_rng.int rng 100) / 4)
  done;
  let cursor = Api.malloc 8 in
  let m = Api.mutex_create () in
  let nchunks = cfg.threads * 6 in
  let chunk = (n + nchunks - 1) / nchunks in
  let body _k () =
    let rec loop () =
      let c = next_chunk ~m ~cursor ~nchunks in
      if c >= 0 then begin
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        for i = lo to hi - 1 do
          let f j = Api.load (opts + (8 * ((i * fields) + j))) in
          let spot = f 0 and strike = f 1 and rate = f 2 in
          let vol = f 3 and time = f 4 in
          (* Black-Scholes-shaped fixed-point arithmetic *)
          let sqrt_t = Fx.sqrt_approx time in
          let d1 =
            Fx.div
              (Fx.mul rate time + Fx.mul (Fx.mul vol vol) time / 2)
              (max 1 (Fx.mul vol sqrt_t))
          in
          let nd1 = Fx.div Fx.one (Fx.one + Fx.exp_approx (-d1 / 4)) in
          let price =
            Fx.mul spot nd1 - Fx.mul strike (Fx.mul nd1 (Fx.exp_approx (-rate / 8)))
          in
          Api.store (prices + (8 * i)) price;
          Api.tick 60
        done;
        loop ()
      end
    in
    loop ()
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:prices ~words:n)

let blackscholes =
  {
    Workload.name = "blackscholes";
    suite = "parsec";
    description = "option pricing, chunked work queue, 1 store per item";
    main = blackscholes_main;
  }

let swaptions_main (cfg : Workload.cfg) () =
  let n = Workload.scaled cfg 24 in
  (* swaptions *)
  let paths = Workload.scaled cfg 12 in
  let steps = 64 in
  let params = Api.malloc (8 * n * 4) in
  let results = Api.malloc (8 * n) in
  (* one scratch simulation buffer per worker, written heavily *)
  let scratch = Api.malloc (8 * steps * cfg.threads) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:params ~words:(n * 4) ~bound:Fx.one;
  let cursor = Api.malloc 8 in
  let m = Api.mutex_create () in
  let body k () =
    let buf = scratch + (8 * steps * k) in
    let rec loop () =
      let c = next_chunk ~m ~cursor ~nchunks:n in
      if c >= 0 then begin
        let rate = Api.load (params + (8 * c * 4)) in
        let vol = Api.load (params + (8 * ((c * 4) + 1))) in
        let acc = ref 0 in
        for p = 1 to paths do
          (* HJM-path-shaped walk: write the whole scratch buffer *)
          let level = ref (Fx.one + (rate / 2)) in
          for s = 0 to steps - 1 do
            let shock = ((c * 131) + (p * 17) + s) land 255 in
            level := !level + Fx.mul vol (Fx.of_int (shock - 128) / 256);
            Api.store (buf + (8 * s)) !level;
            Api.tick 6
          done;
          (* discounted payoff over the path *)
          for s = 0 to steps - 1 do
            acc := !acc + (Api.load (buf + (8 * s)) / (s + 2))
          done
        done;
        Api.store (results + (8 * c)) (!acc / paths);
        Api.tick 200;
        loop ()
      end
    in
    loop ()
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:results ~words:n)

let swaptions =
  {
    Workload.name = "swaptions";
    suite = "parsec";
    description = "Monte-Carlo swaption pricing, heavy scratch stores";
    main = swaptions_main;
  }
