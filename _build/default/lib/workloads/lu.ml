(** lu-contiguous and lu-non-contiguous (SPLASH-2): blocked LU
    factorization.

    The computation is identical; the two variants differ only in how
    blocks are laid out in memory.  [lu-con] stores each block
    contiguously (a block touches ~2 pages), while [lu-non] stores the
    matrix row-major so a 16x16 block's rows land on 16 different pages.
    Page-granularity DMT systems are exquisitely sensitive to this:
    DThreads commits entire dirty-page diffs at every fence, which is why
    lu-non is its 10x worst case in the paper's Figure 7, while RFDet's
    byte-granularity diffs keep both variants comparable. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

type layout = Contiguous | Row_major

(* Integer pseudo-LU update rules: the actual arithmetic is a mixing
   function rather than exact Gaussian elimination (no pivoting drama),
   but the data-flow — diag, perimeter, interior dependencies with
   barriers between phases — is the real blocked-LU schedule. *)

let main layout (cfg : Workload.cfg) () =
  let block = 16 in
  let nb = max 3 (Workload.scaled cfg 7) in
  (* blocks per side *)
  let m = nb * block in
  let words = m * m in
  let mat = Api.malloc (8 * words) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:mat ~words ~bound:(1 lsl 16);
  (* address of element (r, c) of block (br, bc) *)
  let addr ~br ~bc ~r ~c =
    match layout with
    | Contiguous ->
      let block_index = (br * nb) + bc in
      mat + (8 * ((block_index * block * block) + (r * block) + c))
    | Row_major -> mat + (8 * ((((br * block) + r) * m) + (bc * block) + c))
  in
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  (* owner of block (br, bc) *)
  let owner ~br ~bc = ((br * nb) + bc) mod cfg.threads in
  let load ~br ~bc ~r ~c = Api.load (addr ~br ~bc ~r ~c) in
  let store ~br ~bc ~r ~c v = Api.store (addr ~br ~bc ~r ~c) v in
  (* Sample a block through a coarse stencil rather than all 256 cells:
     keeps shared-memory traffic per block update ~O(block), with the
     arithmetic volume accounted via tick. *)
  let step = 2 in
  let mix_block ~br ~bc ~with_ ~salt =
    let wr, wc = with_ in
    let r = ref 0 and c = ref 0 in
    while !r < block do
      c := 0;
      while !c < block do
        let v = load ~br ~bc ~r:!r ~c:!c in
        let w = load ~br:wr ~bc:wc ~r:!c ~c:!r in
        store ~br ~bc ~r:!r ~c:!c
          (((v * 3) - (w lxor salt)) land 0xFFFFFFF);
        c := !c + step
      done;
      r := !r + step
    done;
    Api.tick (10 * block * block)
  in
  let body k () =
    for kk = 0 to nb - 1 do
      (* 1: factor the diagonal block *)
      if owner ~br:kk ~bc:kk = k then
        mix_block ~br:kk ~bc:kk ~with_:(kk, kk) ~salt:kk;
      Wl_common.Lock_barrier.wait barrier;
      (* 2: update the perimeter blocks *)
      for i = kk + 1 to nb - 1 do
        if owner ~br:i ~bc:kk = k then
          mix_block ~br:i ~bc:kk ~with_:(kk, kk) ~salt:(kk + 1);
        if owner ~br:kk ~bc:i = k then
          mix_block ~br:kk ~bc:i ~with_:(kk, kk) ~salt:(kk + 2)
      done;
      Wl_common.Lock_barrier.wait barrier;
      (* 3: update the interior *)
      for i = kk + 1 to nb - 1 do
        for j = kk + 1 to nb - 1 do
          if owner ~br:i ~bc:j = k then begin
            mix_block ~br:i ~bc:j ~with_:(i, kk) ~salt:kk;
            mix_block ~br:i ~bc:j ~with_:(kk, j) ~salt:(kk + 3)
          end
        done
      done;
      Wl_common.Lock_barrier.wait barrier
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:mat ~words)

let con =
  {
    Workload.name = "lu-con";
    suite = "splash2";
    description = "blocked LU, contiguous block layout";
    main = main Contiguous;
  }

let non =
  {
    Workload.name = "lu-non";
    suite = "splash2";
    description = "blocked LU, row-major (page-scattering) layout";
    main = main Row_major;
  }
