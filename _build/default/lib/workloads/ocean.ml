(** ocean (SPLASH-2): red/black relaxation over a shared grid.

    Iterative stencil sweeps with two lock-based barriers per iteration
    plus a lock-guarded global residual reduction — the lock/wait-heavy
    profile of Table 1's first row (1100 locks, 671 waits at 4
    threads). *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let main (cfg : Workload.cfg) () =
  let g = Workload.scaled cfg 40 in
  let iters = Workload.scaled cfg 30 in
  let grid = Api.malloc (8 * g * g) in
  let residual = Api.malloc 8 in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:grid ~words:(g * g) ~bound:1000;
  let cell r c = grid + (8 * ((r * g) + c)) in
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  let red_mutex = Api.mutex_create () in
  let body k () =
    let lo, hi = Wl_common.partition ~n:(g - 2) ~workers:cfg.threads ~k in
    for iter = 1 to iters do
      (* two color half-sweeps, each ending in a barrier *)
      List.iter
        (fun color ->
          let local_delta = ref 0 in
          for r = lo + 1 to hi do
            for c = 1 to g - 2 do
              if (r + c) land 1 = color then begin
                (* the (iter, position) term models the time-dependent
                   forcing of the real ocean kernel and keeps the field
                   churning, so every sweep produces a real page diff *)
                let v =
                  ((Api.load (cell (r - 1) c)
                   + Api.load (cell (r + 1) c)
                   + Api.load (cell r (c - 1))
                   + Api.load (cell r (c + 1)))
                  / 4)
                  + (((iter * 131) + (r * 17) + c) land 63)
                in
                let old = Api.load (cell r c) in
                Api.store (cell r c) v;
                local_delta := !local_delta + abs (v - old);
                Api.tick 25
              end
            done
          done;
          Api.with_lock red_mutex (fun () ->
              Api.store residual (Api.load residual + !local_delta));
          Wl_common.Lock_barrier.wait barrier)
        [ 0; 1 ]
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum
    (Wl_common.mix (Api.load residual)
       (Wl_common.checksum_region ~addr:grid ~words:(g * g)))

let workload =
  {
    Workload.name = "ocean";
    suite = "splash2";
    description = "red/black grid relaxation with lock-based barriers";
    main;
  }
