let all =
  [
    Racey.workload;
    Ocean.workload;
    Water.ns;
    Water.sp;
    Fft.workload;
    Radix.workload;
    Lu.con;
    Lu.non;
    Phoenix.linear_regression;
    Phoenix.matrix_multiply;
    Phoenix.pca;
    Phoenix.wordcount;
    Phoenix.string_match;
    Parsec_financial.blackscholes;
    Parsec_financial.swaptions;
    Dedup.workload;
    Ferret.workload;
  ]

let names = List.map (fun w -> w.Workload.name) all

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None ->
    raise
      (Invalid_argument
         (Printf.sprintf "unknown workload %S (expected one of: %s)" name
            (String.concat ", " names)))

let splash2 = List.filter (fun w -> w.Workload.suite = "splash2") all

let table1 = List.filter (fun w -> w.Workload.name <> "racey") all

let figure8 =
  List.filter
    (fun w ->
      not (List.mem w.Workload.name [ "racey"; "dedup"; "ferret"; "lu-non" ]))
    all
