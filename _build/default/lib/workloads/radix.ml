(** radix (SPLASH-2): parallel radix sort.

    Per digit pass: private histogram (local compute), a lock-guarded
    global histogram merge, a prefix-sum by thread 0, then a scatter into
    the destination array — with lock-based barriers between phases.
    Matches Table 1's radix row: ~96 locks, modest memory volume. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let main (cfg : Workload.cfg) () =
  let n = Workload.scaled cfg 8192 in
  let radix_bits = 6 in
  let buckets = 1 lsl radix_bits in
  let passes = 3 in
  let src = Api.malloc (8 * n) in
  let dst = Api.malloc (8 * n) in
  let hist = Api.malloc (8 * buckets) in
  (* per-(worker,bucket) scatter bases *)
  let bases = Api.malloc (8 * buckets * cfg.threads) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:src ~words:n ~bound:(1 lsl (radix_bits * passes));
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  let hist_lock = Api.mutex_create () in
  let body k () =
    let lo, hi = Wl_common.partition ~n ~workers:cfg.threads ~k in
    for pass = 0 to passes - 1 do
      let from = if pass land 1 = 0 then src else dst in
      let into = if pass land 1 = 0 then dst else src in
      let shift = pass * radix_bits in
      (* 1: private histogram over owned range *)
      let local = Array.make buckets 0 in
      for i = lo to hi - 1 do
        let d = (Api.load (from + (8 * i)) lsr shift) land (buckets - 1) in
        local.(d) <- local.(d) + 1;
        Api.tick 12
      done;
      (* zero the shared histogram once per pass *)
      if k = 0 then
        for b = 0 to buckets - 1 do
          Api.store (hist + (8 * b)) 0
        done;
      Wl_common.Lock_barrier.wait barrier;
      (* 2: merge into the global histogram; record this worker's base
         offset within each bucket (arrival order = worker id, since the
         merge is done in worker order via a turn variable) *)
      Api.with_lock hist_lock (fun () ->
          for b = 0 to buckets - 1 do
            (* stash the running count as this worker's base *)
            Api.store (bases + (8 * ((b * cfg.threads) + k))) (Api.load (hist + (8 * b)));
            Api.store (hist + (8 * b)) (Api.load (hist + (8 * b)) + local.(b))
          done);
      Wl_common.Lock_barrier.wait barrier;
      (* 3: exclusive prefix sum by worker 0 *)
      if k = 0 then begin
        let run = ref 0 in
        for b = 0 to buckets - 1 do
          let c = Api.load (hist + (8 * b)) in
          Api.store (hist + (8 * b)) !run;
          run := !run + c
        done
      end;
      Wl_common.Lock_barrier.wait barrier;
      (* 4: scatter: stable within (bucket, worker) *)
      let cursor = Array.make buckets 0 in
      for i = lo to hi - 1 do
        let v = Api.load (from + (8 * i)) in
        let d = (v lsr shift) land (buckets - 1) in
        let base =
          Api.load (hist + (8 * d))
          + Api.load (bases + (8 * ((d * cfg.threads) + k)))
        in
        Api.store (into + (8 * (base + cursor.(d)))) v;
        cursor.(d) <- cursor.(d) + 1;
        Api.tick 16
      done;
      Wl_common.Lock_barrier.wait barrier
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  let final = if passes land 1 = 0 then src else dst in
  (* verify sortedness into the checksum *)
  let sorted = ref 1 in
  let prev = ref min_int in
  for i = 0 to n - 1 do
    let v = Api.load (final + (8 * i)) in
    if v < !prev then sorted := 0;
    prev := v
  done;
  Wl_common.output_checksum
    (Wl_common.mix !sorted (Wl_common.checksum_region ~addr:final ~words:n))

let workload =
  {
    Workload.name = "radix";
    suite = "splash2";
    description = "parallel radix sort: histogram, prefix, scatter";
    main;
  }
