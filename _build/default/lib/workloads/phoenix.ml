(** The Phoenix map-reduce kernels (Table 1 rows 8-13): fork/join
    parallel phases with almost no locking.  These are the benchmarks
    where DMT overhead should nearly vanish (Figure 7): few sync ops
    mean few slices, and each worker writes only its private result
    slots (linear_regression and string_match have exactly 2
    stores-with-copy in the paper). *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

(* ------------------------------------------------------------------ *)

let linear_regression_main (cfg : Workload.cfg) () =
  let n = Workload.scaled cfg 24_000 in
  let pts = Api.malloc (8 * n) in
  (* x in the high 32 bits, y in the low 32 bits *)
  let rng = Det_rng.create cfg.input_seed in
  for i = 0 to n - 1 do
    let x = Det_rng.int rng 1024 and y = Det_rng.int rng 1024 in
    Api.store (pts + (8 * i)) ((x lsl 32) lor y)
  done;
  let partials = Api.malloc (8 * cfg.threads * 8) in
  (* one 64-byte stride per worker: sums land on few pages *)
  let body k () =
    let lo, hi = Wl_common.partition ~n ~workers:cfg.threads ~k in
    let sx = ref 0 and sy = ref 0 and sxx = ref 0 and sxy = ref 0 in
    for i = lo to hi - 1 do
      let v = Api.load (pts + (8 * i)) in
      let x = v lsr 32 and y = v land 0xFFFFFFFF in
      sx := !sx + x;
      sy := !sy + y;
      sxx := !sxx + (x * x);
      sxy := !sxy + (x * y);
      Api.tick 10
    done;
    let base = partials + (8 * 8 * k) in
    Api.store base !sx;
    Api.store (base + 8) !sy;
    Api.store (base + 16) !sxx;
    Api.store (base + 24) !sxy
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  let tot = Array.make 4 0 in
  for k = 0 to cfg.threads - 1 do
    for f = 0 to 3 do
      tot.(f) <- tot.(f) + Api.load (partials + (8 * 8 * k) + (8 * f))
    done
  done;
  let denom = (cfg.threads * tot.(2)) - (tot.(0) * tot.(0) / max 1 n) in
  Wl_common.output_checksum
    (Wl_common.mix tot.(3) (Wl_common.mix denom (tot.(0) + tot.(1))))

let linear_regression =
  {
    Workload.name = "linear_regression";
    suite = "phoenix";
    description = "least-squares fit: map over points, tiny reduce";
    main = linear_regression_main;
  }

(* ------------------------------------------------------------------ *)

let matrix_multiply_main (cfg : Workload.cfg) () =
  let n = Workload.scaled cfg 40 in
  let a = Api.malloc (8 * n * n) in
  let b = Api.malloc (8 * n * n) in
  let c = Api.malloc (8 * n * n) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:a ~words:(n * n) ~bound:100;
  Wl_common.fill_region rng ~addr:b ~words:(n * n) ~bound:100;
  let body k () =
    let lo, hi = Wl_common.partition ~n ~workers:cfg.threads ~k in
    for i = lo to hi - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0 in
        for l = 0 to n - 1 do
          acc :=
            !acc
            + (Api.load (a + (8 * ((i * n) + l)))
              * Api.load (b + (8 * ((l * n) + j))))
        done;
        Api.store (c + (8 * ((i * n) + j))) !acc;
        Api.tick n
      done
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:c ~words:(n * n))

let matrix_multiply =
  {
    Workload.name = "matrix_multiply";
    suite = "phoenix";
    description = "dense integer matrix multiply, row-partitioned";
    main = matrix_multiply_main;
  }

(* ------------------------------------------------------------------ *)

let pca_main (cfg : Workload.cfg) () =
  let rows = Workload.scaled cfg 400 in
  let dims = 12 in
  let data = Api.malloc (8 * rows * dims) in
  let means = Api.malloc (8 * dims) in
  let cov = Api.malloc (8 * dims * dims) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:data ~words:(rows * dims) ~bound:256;
  (* per-dimension accumulator locks: Phoenix pca's lock profile *)
  let locks = Array.init dims (fun _ -> Api.mutex_create ()) in
  (* phase 1: means *)
  Wl_common.fork_join ~workers:cfg.threads (fun k () ->
      let lo, hi = Wl_common.partition ~n:rows ~workers:cfg.threads ~k in
      let local = Array.make dims 0 in
      for r = lo to hi - 1 do
        for d = 0 to dims - 1 do
          local.(d) <- local.(d) + Api.load (data + (8 * ((r * dims) + d)));
          Api.tick 6
        done
      done;
      for d = 0 to dims - 1 do
        Api.with_lock locks.(d) (fun () ->
            Api.store (means + (8 * d)) (Api.load (means + (8 * d)) + local.(d)))
      done);
  (* phase 2: covariance (upper triangle), row-partitioned over dims *)
  Wl_common.fork_join ~workers:cfg.threads (fun k () ->
      let lo, hi = Wl_common.partition ~n:dims ~workers:cfg.threads ~k in
      for d1 = lo to hi - 1 do
        let m1 = Api.load (means + (8 * d1)) / rows in
        for d2 = d1 to dims - 1 do
          let m2 = Api.load (means + (8 * d2)) / rows in
          let acc = ref 0 in
          for r = 0 to rows - 1 do
            let v1 = Api.load (data + (8 * ((r * dims) + d1))) - m1 in
            let v2 = Api.load (data + (8 * ((r * dims) + d2))) - m2 in
            acc := !acc + (v1 * v2)
          done;
          Api.store (cov + (8 * ((d1 * dims) + d2))) (!acc / rows);
          Api.tick rows
        done
      done);
  Wl_common.output_checksum
    (Wl_common.mix
       (Wl_common.checksum_region ~addr:means ~words:dims)
       (Wl_common.checksum_region ~addr:cov ~words:(dims * dims)))

let pca =
  {
    Workload.name = "pca";
    suite = "phoenix";
    description = "mean + covariance with per-dimension accumulator locks";
    main = pca_main;
  }

(* ------------------------------------------------------------------ *)

(* A tiny deterministic "text": word ids drawn Zipf-ishly. *)
let gen_text rng ~addr ~words ~vocab =
  for i = 0 to words - 1 do
    let r = Det_rng.int rng (vocab * 3) in
    let w = if r < vocab then r else Det_rng.int rng (vocab / 4) in
    Api.store (addr + (8 * i)) w
  done

let wordcount_main (cfg : Workload.cfg) () =
  let words = Workload.scaled cfg 36_000 in
  let vocab = 128 in
  let text = Api.malloc (8 * words) in
  let rng = Det_rng.create cfg.input_seed in
  gen_text rng ~addr:text ~words ~vocab;
  (* Phoenix forks fresh workers for each of several phases (Table 1
     shows 60 forks): map in several waves, then a parallel merge. *)
  let waves = 2 in
  let counts = Api.malloc (8 * vocab * cfg.threads) in
  let wave_size = (words + waves - 1) / waves in
  for wave = 0 to waves - 1 do
    let base = wave * wave_size in
    let len = min wave_size (words - base) in
    Wl_common.fork_join ~workers:cfg.threads (fun k () ->
        let lo, hi = Wl_common.partition ~n:len ~workers:cfg.threads ~k in
        let local = Array.make vocab 0 in
        for i = lo to hi - 1 do
          let w = Api.load (text + (8 * (base + i))) in
          local.(w) <- local.(w) + 1;
          Api.tick 2
        done;
        (* flush into this worker's private row *)
        for w = 0 to vocab - 1 do
          if local.(w) <> 0 then begin
            let slot = counts + (8 * ((k * vocab) + w)) in
            Api.store slot (Api.load slot + local.(w))
          end
        done)
  done;
  (* parallel reduce: each worker sums a vocab range across rows *)
  let final = Api.malloc (8 * vocab) in
  Wl_common.fork_join ~workers:cfg.threads (fun k () ->
      let lo, hi = Wl_common.partition ~n:vocab ~workers:cfg.threads ~k in
      for w = lo to hi - 1 do
        let acc = ref 0 in
        for row = 0 to cfg.threads - 1 do
          acc := !acc + Api.load (counts + (8 * ((row * vocab) + w)))
        done;
        Api.store (final + (8 * w)) !acc
      done);
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:final ~words:vocab)

let wordcount =
  {
    Workload.name = "wordcount";
    suite = "phoenix";
    description = "multi-wave map + parallel reduce word counting";
    main = wordcount_main;
  }

(* ------------------------------------------------------------------ *)

let string_match_main (cfg : Workload.cfg) () =
  let len = Workload.scaled cfg 60_000 in
  let text = Api.malloc len in
  let rng = Det_rng.create cfg.input_seed in
  (* byte-granularity text *)
  for i = 0 to len - 1 do
    Api.store_byte (text + i) (97 + Det_rng.int rng 4)
  done;
  let keys = [ "abc"; "dcba"; "aabb" ] in
  let hits = Api.malloc (8 * cfg.threads) in
  let body k () =
    let lo, hi = Wl_common.partition ~n:len ~workers:cfg.threads ~k in
    let count = ref 0 in
    for i = lo to hi - 1 do
      let c0 = Api.load_byte (text + i) in
      List.iter
        (fun key ->
          if c0 = Char.code key.[0] && i + String.length key <= len then begin
            let matches = ref true in
            for j = 1 to String.length key - 1 do
              if Api.load_byte (text + i + j) <> Char.code key.[j] then
                matches := false
            done;
            if !matches then incr count
          end)
        keys;
      Api.tick 2
    done;
    Api.store (hits + (8 * k)) !count
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  let total = ref 0 in
  for k = 0 to cfg.threads - 1 do
    total := !total + Api.load (hits + (8 * k))
  done;
  Wl_common.output_checksum !total

let string_match =
  {
    Workload.name = "string_match";
    suite = "phoenix";
    description = "substring scan over a byte text, private hit counters";
    main = string_match_main;
  }
