type cfg = { threads : int; scale : float; input_seed : int64 }

let default_cfg = { threads = 4; scale = 1.0; input_seed = 42L }

type t = {
  name : string;
  suite : string;
  description : string;
  main : cfg -> unit -> unit;
}

let scaled cfg n = max 1 (int_of_float (float_of_int n *. cfg.scale))
