(** dedup (PARSEC): the chunk / deduplicate / write compression
    pipeline.

    One chunker thread slices the input stream into content-defined
    chunks and feeds a bounded queue; deduplication threads hash each
    chunk and probe a shared, lock-guarded hash table; a writer thread
    drains the unique chunks in arrival order.  The queue traffic makes
    this the second most lock-intensive workload of Table 1 (9304 locks,
    3599 signals at 4 threads), and its large streaming input gives it
    the biggest footprint. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let sentinel = -1

let main (cfg : Workload.cfg) () =
  let data_len = Workload.scaled cfg 48_000 in
  let avg_chunk = 160 in
  let data = Api.malloc data_len in
  let rng = Det_rng.create cfg.input_seed in
  (* Repetitive input so deduplication actually finds duplicates. *)
  let motif_count = 24 in
  let motif_len = 512 in
  let motifs =
    Array.init motif_count (fun _ ->
        String.init motif_len (fun _ -> Char.chr (32 + Det_rng.int rng 64)))
  in
  let off = ref 0 in
  while !off < data_len do
    let m = motifs.(Det_rng.int rng motif_count) in
    let len = min motif_len (data_len - !off) in
    String.iteri
      (fun i c -> if i < len then Api.store_byte (data + !off + i) (Char.code c))
      m;
    off := !off + len
  done;
  (* pipeline plumbing *)
  let q_chunks = Pipeline.create ~capacity:12 in
  let q_unique = Pipeline.create ~capacity:12 in
  let dedup_workers = max 1 (cfg.threads - 2) in
  (* shared chunk-hash table: open addressing, guarded by one lock *)
  let table_size = 1024 in
  let table = Api.malloc (8 * table_size) in
  let table_lock = Api.mutex_create () in
  let out_sum = Api.malloc 8 in
  let out_count = Api.malloc 8 in
  (* chunker: content-defined chunk boundaries from a rolling value *)
  let chunker () =
    let start = ref 0 in
    let roll = ref 0 in
    let i = ref 0 in
    while !i < data_len do
      let b = Api.load_byte (data + !i) in
      roll := (((!roll * 33) + b) land 0xFFFFFF : int);
      let len = !i - !start + 1 in
      if (!roll land (avg_chunk - 1) = 0 && len >= avg_chunk / 2)
         || len >= 4 * avg_chunk
      then begin
        Pipeline.push q_chunks ((!start lsl 20) lor len);
        start := !i + 1;
        roll := 0
      end;
      incr i;
      Api.tick 8
    done;
    if !start < data_len then
      Pipeline.push q_chunks ((!start lsl 20) lor (data_len - !start));
    for _ = 1 to dedup_workers do
      Pipeline.push q_chunks sentinel
    done
  in
  (* dedup stage: hash the chunk, probe/insert the shared table *)
  let dedup_stage () =
    let running = ref true in
    while !running do
      let item = Pipeline.pop q_chunks in
      if item = sentinel then begin
        running := false;
        Pipeline.push q_unique sentinel
      end
      else begin
        let start = item lsr 20 and len = item land 0xFFFFF in
        let h = ref 5381 in
        for i = 0 to len - 1 do
          h := ((!h * 33) + Api.load_byte (data + start + i)) land 0x3FFFFFFF
        done;
        Api.tick (3 * len);
        let fresh =
          Api.with_lock table_lock (fun () ->
              let rec probe slot tries =
                if tries > 64 then false
                else begin
                  let v = Api.load (table + (8 * slot)) in
                  if v = 0 then begin
                    Api.store (table + (8 * slot)) (!h lor 1);
                    true
                  end
                  else if v = !h lor 1 then false
                  else probe ((slot + 1) mod table_size) (tries + 1)
                end
              in
              probe (!h mod table_size) 0)
        in
        if fresh then Pipeline.push q_unique item
      end
    done
  in
  (* writer: drain unique chunks; order nondeterminism is absorbed by a
     commutative checksum so the output is runtime-independent *)
  let writer () =
    let finished = ref 0 in
    while !finished < dedup_workers do
      let item = Pipeline.pop q_unique in
      if item = sentinel then incr finished
      else begin
        let start = item lsr 20 and len = item land 0xFFFFF in
        let h = ref 0 in
        for i = 0 to min 31 (len - 1) do
          h := !h + Api.load_byte (data + start + i)
        done;
        Api.store out_sum (Api.load out_sum + (!h * len));
        Api.store out_count (Api.load out_count + 1);
        Api.tick 400
      end
    done
  in
  let tids =
    Api.spawn chunker
    :: Api.spawn writer
    :: List.init dedup_workers (fun _ -> Api.spawn dedup_stage)
  in
  List.iter Api.join tids;
  Wl_common.output_checksum
    (Wl_common.mix (Api.load out_sum) (Api.load out_count))

let workload =
  {
    Workload.name = "dedup";
    suite = "parsec";
    description = "chunk/dedup/write compression pipeline over queues";
    main;
  }
