(** Bounded producer/consumer queue used by the PARSEC pipeline
    benchmarks (dedup, ferret): a shared ring buffer guarded by a mutex
    and a pair of condition variables, the textbook pthreads
    construction.  Every push/pop is lock + possible wait + signal, which
    is exactly what makes dedup and ferret the most synchronization-
    intensive rows of Table 1. *)

module Api = Rfdet_sim.Api

type t = {
  m : Api.mutex;
  not_empty : Api.cond;
  not_full : Api.cond;
  buf : int;  (** ring storage *)
  head : int;
  tail : int;
  count : int;
  capacity : int;
}

let create ~capacity =
  let buf = Api.malloc (8 * capacity) in
  let state = Api.malloc 24 in
  Api.store state 0;
  Api.store (state + 8) 0;
  Api.store (state + 16) 0;
  {
    m = Api.mutex_create ();
    not_empty = Api.cond_create ();
    not_full = Api.cond_create ();
    buf;
    head = state;
    tail = state + 8;
    count = state + 16;
    capacity;
  }

let push t v =
  Api.lock t.m;
  while Api.load t.count = t.capacity do
    Api.cond_wait t.not_full t.m
  done;
  let tail = Api.load t.tail in
  Api.store (t.buf + (8 * tail)) v;
  Api.store t.tail ((tail + 1) mod t.capacity);
  Api.store t.count (Api.load t.count + 1);
  Api.cond_signal t.not_empty;
  Api.unlock t.m

let pop t =
  Api.lock t.m;
  while Api.load t.count = 0 do
    Api.cond_wait t.not_empty t.m
  done;
  let head = Api.load t.head in
  let v = Api.load (t.buf + (8 * head)) in
  Api.store t.head ((head + 1) mod t.capacity);
  Api.store t.count (Api.load t.count - 1);
  Api.cond_signal t.not_full;
  Api.unlock t.m;
  v
