(** Shared building blocks for the benchmark workloads. *)

module Api = Rfdet_sim.Api

(** [partition ~n ~workers ~k] — the half-open index range [lo, hi)
    worker [k] owns when [n] items are block-distributed over [workers]
    workers. *)
val partition : n:int -> workers:int -> k:int -> int * int

(** Lock-based barrier, the SPLASH-2 [c.m4.null.POSIX] construction the
    paper's evaluation uses ("this configuration uses lock and unlock to
    implement barrier").  State (count, generation) lives in shared
    memory guarded by the mutex, so the construct is race-free and
    generates the lock/wait/signal profile of Table 1 rather than
    [Barrier_wait] operations. *)
module Lock_barrier : sig
  type t

  (** [create ~parties] — call from the main thread before spawning. *)
  val create : parties:int -> t

  val wait : t -> unit
end

(** [spawn_workers ~workers body] spawns [body 0 .. body (workers-1)]
    and returns the tids. *)
val spawn_workers : workers:int -> (int -> unit -> unit) -> Api.tid list

val join_all : Api.tid list -> unit

(** [fork_join ~workers body] — spawn, run, join (one Phoenix-style
    parallel phase). *)
val fork_join : workers:int -> (int -> unit -> unit) -> unit

(** [fill_region rng ~addr ~words ~bound] stores [words] pseudorandom
    64-bit values in [0, bound) starting at [addr] (call from the main
    thread before spawning — generation writes are part of the input,
    not the measured computation). *)
val fill_region : Rfdet_util.Det_rng.t -> addr:int -> words:int -> bound:int -> unit

(** [checksum_region ~addr ~words] — order-independent-enough fold of a
    word array (loads each word once). *)
val checksum_region : addr:int -> words:int -> int

(** [output_checksum v] — emit a result value. *)
val output_checksum : int -> unit

(** [mix a b] — cheap 64-bit integer mixing for checksums. *)
val mix : int -> int -> int

(** Fixed-point helpers (16.16) for "floating point" kernels: keeps all
    shared-memory arithmetic integral and bit-deterministic. *)
module Fx : sig
  val one : int

  val of_int : int -> int

  val mul : int -> int -> int

  val div : int -> int -> int

  (** [exp_approx x] — polynomial approximation of e^x for small |x|. *)
  val exp_approx : int -> int

  (** [sqrt_approx x] — integer Newton iterations. *)
  val sqrt_approx : int -> int
end
