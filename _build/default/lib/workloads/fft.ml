(** fft (SPLASH-2): iterative radix-2 butterfly transform over a large
    shared array.

    Very few synchronization operations (one lock-based barrier per
    stage) against a large memory footprint and high load/store volume —
    Table 1's fft row (54 locks vs 163M memory operations, the largest
    footprint of the suite).  The kernel is an integer butterfly network
    (a number-theoretic-transform-style mixing) so results are exactly
    deterministic. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let main (cfg : Workload.cfg) () =
  let log_n = 12 + int_of_float (Float.round (log (max 1.0 cfg.scale) /. log 2.0)) in
  let n = 1 lsl log_n in
  let data = Api.malloc (8 * n) in
  let rng = Det_rng.create cfg.input_seed in
  Wl_common.fill_region rng ~addr:data ~words:n ~bound:(1 lsl 20);
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  let elt i = data + (8 * i) in
  let body k () =
    for stage = 0 to log_n - 1 do
      let half = 1 lsl stage in
      let pairs = n / 2 in
      let lo, hi = Wl_common.partition ~n:pairs ~workers:cfg.threads ~k in
      for p = lo to hi - 1 do
        (* index of the butterfly pair for this stage *)
        let block = p / half and offset = p mod half in
        let i = (block * half * 2) + offset in
        let j = i + half in
        let a = Api.load (elt i) and b = Api.load (elt j) in
        (* integer twiddle: rotate-mix keyed by stage and offset *)
        let w = ((offset * 2654435761) lsr (stage land 15)) land 0xFFFF in
        let t = (b * (w lor 1)) land 0xFFFFFFFF in
        Api.store (elt i) ((a + t) land 0xFFFFFFFF);
        Api.store (elt j) ((a - t) land 0xFFFFFFFF);
        Api.tick 30
      done;
      Wl_common.Lock_barrier.wait barrier
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:data ~words:n)

let workload =
  {
    Workload.name = "fft";
    suite = "splash2";
    description = "radix-2 integer butterfly transform, barrier per stage";
    main;
  }
