lib/workloads/parsec_financial.ml: Rfdet_sim Rfdet_util Wl_common Workload
