lib/workloads/ocean.ml: List Rfdet_sim Rfdet_util Wl_common Workload
