lib/workloads/wl_common.ml: List Rfdet_sim Rfdet_util
