lib/workloads/ferret.ml: Array List Pipeline Rfdet_sim Rfdet_util Wl_common Workload
