lib/workloads/registry.ml: Dedup Ferret Fft List Lu Ocean Parsec_financial Phoenix Printf Racey Radix String Water Workload
