lib/workloads/workload.mli:
