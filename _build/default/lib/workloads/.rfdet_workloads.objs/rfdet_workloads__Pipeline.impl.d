lib/workloads/pipeline.ml: Rfdet_sim
