lib/workloads/phoenix.ml: Array Char List Rfdet_sim Rfdet_util String Wl_common Workload
