lib/workloads/lu.ml: Rfdet_sim Rfdet_util Wl_common Workload
