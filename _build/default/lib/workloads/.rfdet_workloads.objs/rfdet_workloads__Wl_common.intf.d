lib/workloads/wl_common.mli: Rfdet_sim Rfdet_util
