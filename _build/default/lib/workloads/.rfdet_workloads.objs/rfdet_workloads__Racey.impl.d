lib/workloads/racey.ml: Rfdet_mem Rfdet_sim Wl_common Workload
