lib/workloads/fft.ml: Float Rfdet_sim Rfdet_util Wl_common Workload
