lib/workloads/water.ml: Array Rfdet_sim Rfdet_util Wl_common Workload
