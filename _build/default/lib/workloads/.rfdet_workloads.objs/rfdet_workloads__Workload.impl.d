lib/workloads/workload.ml:
