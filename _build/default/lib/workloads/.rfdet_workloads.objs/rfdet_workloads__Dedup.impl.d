lib/workloads/dedup.ml: Array Char List Pipeline Rfdet_sim Rfdet_util String Wl_common Workload
