(** The [racey] deterministic stress test (Hill & Xu), Section 5.1.

    Threads hammer a small shared array with unsynchronized
    read-mix-write updates; the final signature folds every cell.  Any
    nondeterminism in scheduling *or* in race resolution changes the
    signature, so 1000 identical runs is strong evidence of strong
    determinism — and under pthreads the signature varies per seed. *)

module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout

let mixer v i = ((v * 0x5DEECE66D) + i) land 0x3FFFFFFFFFFF

let main (cfg : Workload.cfg) () =
  let slots = 32 in
  let iters = Workload.scaled cfg 4000 in
  let arr = Api.malloc (8 * slots) in
  for i = 0 to slots - 1 do
    Api.store (arr + (8 * i)) i
  done;
  let body k () =
    for i = 1 to iters do
      (* read one racy slot, mix, write another racy slot *)
      let src = arr + (8 * ((i * (k + 7)) mod slots)) in
      let dst = arr + (8 * (((i * 13) + k) mod slots)) in
      let v = Api.load src in
      Api.store dst (mixer v (i + k));
      Api.tick 4
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Wl_common.checksum_region ~addr:arr ~words:slots)

let workload =
  {
    Workload.name = "racey";
    suite = "stress";
    description = "determinism stress test: unsynchronized racy mixing";
    main;
  }
