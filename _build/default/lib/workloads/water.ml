(** water-nsquared and water-spatial (SPLASH-2).

    Both simulate pairwise force updates on a molecule array over several
    timesteps.  water-ns locks *per molecule* while scattering pair
    forces — the most lock-intensive SPLASH row of Table 1 (6314 locks) —
    while water-sp aggregates forces per spatial cell and locks per cell,
    cutting locks by ~6x (1103) for the same computation shape. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

(* A molecule record is 4 live words (position, velocity, force,
   id-salt) padded to a 64-word stride: the real water molecule record
   is hundreds of bytes, so a handful of molecules — not dozens — share
   each page, which is what gives the per-molecule locking its
   page-level sharing pattern. *)
let mol_words = 4

let mol_stride = 64

let setup (cfg : Workload.cfg) ~molecules =
  let arr = Api.malloc (8 * mol_stride * molecules) in
  let rng = Det_rng.create cfg.input_seed in
  for i = 0 to molecules - 1 do
    for f = 0 to mol_words - 1 do
      Api.store (arr + (8 * ((i * mol_stride) + f))) (Det_rng.int rng 4096)
    done
  done;
  arr

let mol arr i field = arr + (8 * ((i * mol_stride) + field))

let checksum_molecules arr ~molecules =
  let acc = ref 0 in
  for i = 0 to molecules - 1 do
    for f = 0 to mol_words - 1 do
      acc := Wl_common.mix !acc (Api.load (mol arr i f))
    done
  done;
  !acc

(* Deterministic "force" between two molecules from their positions. *)
let force a b = ((a - b) * 7) + ((a lxor b) land 63)

let advance arr i =
  let pos = Api.load (mol arr i 0) in
  let vel = Api.load (mol arr i 1) in
  let f = Api.load (mol arr i 2) in
  let vel' = vel + (f / 16) in
  Api.store (mol arr i 1) vel';
  Api.store (mol arr i 0) ((pos + (vel' / 8)) land 0xFFFFF);
  Api.store (mol arr i 2) 0;
  Api.tick 10

let ns_main (cfg : Workload.cfg) () =
  let molecules = Workload.scaled cfg 48 in
  let steps = Workload.scaled cfg 16 in
  let neighbors = 6 in
  let arr = setup cfg ~molecules in
  let locks = Array.init molecules (fun _ -> Api.mutex_create ()) in
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  let body k () =
    let lo, hi = Wl_common.partition ~n:molecules ~workers:cfg.threads ~k in
    for step = 1 to steps do
      (* force scatter: lock each partner molecule individually *)
      for i = lo to hi - 1 do
        let my_pos = Api.load (mol arr i 0) in
        for d = 1 to neighbors do
          let j = (i + (d * step)) mod molecules in
          if j <> i then begin
            let f = force my_pos (Api.load (mol arr j 0)) in
            Api.with_lock locks.(j) (fun () ->
                Api.store (mol arr j 2) (Api.load (mol arr j 2) + f));
            Api.tick 3500
          end
        done
      done;
      Wl_common.Lock_barrier.wait barrier;
      (* private position update on owned molecules *)
      for i = lo to hi - 1 do
        advance arr i
      done;
      Wl_common.Lock_barrier.wait barrier
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (checksum_molecules arr ~molecules)

let sp_main (cfg : Workload.cfg) () =
  let molecules = Workload.scaled cfg 48 in
  let steps = Workload.scaled cfg 16 in
  let cells = 8 in
  let neighbors = 6 in
  let arr = setup cfg ~molecules in
  (* per-cell force accumulators, guarded by per-cell locks *)
  let acc = Api.malloc (8 * cells) in
  for c = 0 to cells - 1 do
    Api.store (acc + (8 * c)) 0
  done;
  let locks = Array.init cells (fun _ -> Api.mutex_create ()) in
  let barrier = Wl_common.Lock_barrier.create ~parties:cfg.threads in
  let cell_of i = i * cells / molecules in
  let body k () =
    let lo, hi = Wl_common.partition ~n:molecules ~workers:cfg.threads ~k in
    for step = 1 to steps do
      (* accumulate forces per cell: one lock per (worker, cell) pass *)
      let local = Array.make cells 0 in
      for i = lo to hi - 1 do
        let my_pos = Api.load (mol arr i 0) in
        for d = 1 to neighbors do
          let j = (i + (d * step)) mod molecules in
          if j <> i then begin
            let f = force my_pos (Api.load (mol arr j 0)) in
            local.(cell_of j) <- local.(cell_of j) + f;
            Api.tick 3000
          end
        done
      done;
      for c = 0 to cells - 1 do
        if local.(c) <> 0 then
          Api.with_lock locks.(c) (fun () ->
              Api.store (acc + (8 * c)) (Api.load (acc + (8 * c)) + local.(c)))
      done;
      Wl_common.Lock_barrier.wait barrier;
      (* apply cell force to owned molecules, then advance *)
      for i = lo to hi - 1 do
        let f = Api.load (acc + (8 * cell_of i)) / molecules in
        Api.store (mol arr i 2) (Api.load (mol arr i 2) + f);
        advance arr i
      done;
      Wl_common.Lock_barrier.wait barrier;
      if k = 0 then
        for c = 0 to cells - 1 do
          Api.store (acc + (8 * c)) 0
        done;
      Wl_common.Lock_barrier.wait barrier
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum
    (Wl_common.mix
       (checksum_molecules arr ~molecules)
       (Wl_common.checksum_region ~addr:acc ~words:cells))

let ns =
  {
    Workload.name = "water-ns";
    suite = "splash2";
    description = "n-squared molecular dynamics, per-molecule locks";
    main = ns_main;
  }

let sp =
  {
    Workload.name = "water-sp";
    suite = "splash2";
    description = "spatial molecular dynamics, per-cell locks";
    main = sp_main;
  }
