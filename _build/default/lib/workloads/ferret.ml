(** ferret (PARSEC): content-based similarity search as a four-stage
    pipeline — segment, extract features, query the index, rank.

    Every stage hands small work items across bounded queues, so the
    lock count dwarfs everything else in Table 1 (43025 locks against
    only 488K memory operations at 4 threads).  The middle stages do
    modest per-item compute; the index is a read-only shared table built
    by the main thread. *)

module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let sentinel = -1

let main (cfg : Workload.cfg) () =
  let queries = Workload.scaled cfg 780 in
  let feature_dims = 8 in
  let db_size = 64 in
  let topk = 4 in
  let rng = Det_rng.create cfg.input_seed in
  (* read-only feature database, built before the pipeline starts *)
  let db = Api.malloc (8 * db_size * feature_dims) in
  Wl_common.fill_region rng ~addr:db ~words:(db_size * feature_dims) ~bound:256;
  (* per-query raw data *)
  let raw = Api.malloc (8 * queries) in
  Wl_common.fill_region rng ~addr:raw ~words:queries ~bound:(1 lsl 30);
  (* feature scratch: one row per in-flight query slot *)
  let slots = 16 in
  let features = Api.malloc (8 * slots * feature_dims) in
  let q_seg = Pipeline.create ~capacity:8 in
  let q_feat = Pipeline.create ~capacity:8 in
  let q_rank = Pipeline.create ~capacity:8 in
  let result = Api.malloc 8 in
  let extract_workers = max 1 (cfg.threads - 3) in
  let segment () =
    for q = 0 to queries - 1 do
      Pipeline.push q_seg q;
      Api.tick 8
    done;
    for _ = 1 to extract_workers do
      Pipeline.push q_seg sentinel
    done
  in
  let extract () =
    let running = ref true in
    while !running do
      let q = Pipeline.pop q_seg in
      if q = sentinel then begin
        running := false;
        Pipeline.push q_feat sentinel
      end
      else begin
        let v = Api.load (raw + (8 * q)) in
        let slot = q mod slots in
        for d = 0 to feature_dims - 1 do
          Api.store
            (features + (8 * ((slot * feature_dims) + d)))
            (((v lsr (d * 4)) land 0xFF) + d);
          Api.tick 4
        done;
        Pipeline.push q_feat q
      end
    done
  in
  let query_stage () =
    let finished = ref 0 in
    while !finished < extract_workers do
      let q = Pipeline.pop q_feat in
      if q = sentinel then incr finished
      else begin
        let slot = q mod slots in
        (* nearest neighbours by L1 distance over the read-only db *)
        let best = Array.make topk max_int in
        for row = 0 to db_size - 1 do
          let dist = ref 0 in
          for d = 0 to feature_dims - 1 do
            let f = Api.load (features + (8 * ((slot * feature_dims) + d))) in
            let g = Api.load (db + (8 * ((row * feature_dims) + d))) in
            dist := !dist + abs (f - g)
          done;
          (* insertion into the tiny top-k heap is local work *)
          let worst = ref 0 in
          for i = 1 to topk - 1 do
            if best.(i) > best.(!worst) then worst := i
          done;
          if !dist < best.(!worst) then best.(!worst) <- !dist;
          Api.tick 6
        done;
        let score = Array.fold_left ( + ) 0 best in
        Pipeline.push q_rank (Wl_common.mix q score land 0xFFFFF)
      end
    done;
    Pipeline.push q_rank sentinel
  in
  let rank () =
    let running = ref true in
    while !running do
      let item = Pipeline.pop q_rank in
      if item = sentinel then running := false
      else begin
        Api.store result (Api.load result + item);
        Api.tick 10
      end
    done
  in
  let tids =
    Api.spawn segment
    :: Api.spawn query_stage
    :: Api.spawn rank
    :: List.init extract_workers (fun _ -> Api.spawn extract)
  in
  List.iter Api.join tids;
  Wl_common.output_checksum (Api.load result)

let workload =
  {
    Workload.name = "ferret";
    suite = "parsec";
    description = "4-stage similarity-search pipeline over bounded queues";
    main;
  }
