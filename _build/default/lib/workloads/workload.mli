(** Benchmark workload descriptors.

    Every workload is a pthreads-style program written against
    [Rfdet_sim.Api]; the same code runs unchanged under every runtime
    (pthreads, Kendo, DThreads, the RFDet variants), exactly as the paper
    runs
    unmodified benchmark binaries under its three systems.

    Each workload emits at least one [Api.output] checksum derived from
    the computation's result, so the determinism checker has something to
    compare and the computation cannot be dead-code-eliminated out of
    relevance.  Workloads must derive all randomness from [cfg.input_seed]
    (an *input* in the paper's broad sense, Section 3.4). *)

type cfg = {
  threads : int;  (** worker thread count (the paper's 2/4/8) *)
  scale : float;  (** problem-size multiplier; 1.0 = default *)
  input_seed : int64;  (** input-data generator seed *)
}

val default_cfg : cfg
(** 4 threads, scale 1.0, seed 42. *)

type t = {
  name : string;
  suite : string;  (** "stress" | "splash2" | "phoenix" | "parsec" *)
  description : string;
  main : cfg -> unit -> unit;
      (** [main cfg] is the simulated program's entry point. *)
}

val scaled : cfg -> int -> int
(** [scaled cfg n] multiplies a base size by [cfg.scale] (min 1). *)
