(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 5), plus the ablations called out in DESIGN.md.

    Each experiment returns structured rows (so tests can assert on the
    shapes) and has a renderer that prints a table comparable to the
    paper's artifact.  All runs are jitter-free: the simulator is
    deterministic, so a single run per configuration is exact. *)

(** {1 E1 — Section 5.1: racey determinism} *)

type e1_row = {
  e1_runtime : string;
  e1_threads : int;
  e1_runs : int;
  e1_distinct : int;
}

val racey_determinism :
  ?runs_per_config:int -> ?thread_counts:int list -> unit -> e1_row list
(** Default: 100 runs for each of 2/4/8 threads, for pthreads, dthreads,
    rfdet-ci and rfdet-pf (the paper runs 1000; pass
    [~runs_per_config:1000] for the full experiment). *)

val render_e1 : e1_row list -> string

(** {1 E2 — Figure 7: execution time normalized to pthreads, 4 threads} *)

type fig7_row = {
  f7_workload : string;
  f7_pthreads : int;  (** simulated cycles *)
  f7_dthreads : float;  (** normalized to pthreads *)
  f7_rfdet_ci : float;
  f7_rfdet_pf : float;
}

val figure7 : ?threads:int -> ?scale:float -> unit -> fig7_row list

val render_figure7 : fig7_row list -> string

(** Geometric-mean normalized times (dthreads, ci, pf) — the paper's
    "35.2% / 72.9% / ~2.5x" summary line. *)
val figure7_summary : fig7_row list -> float * float * float

val chart_figure7 : fig7_row list -> string
(** ASCII grouped bar chart of the normalized times (the figure itself,
    as opposed to [render_figure7]'s table). *)

(** {1 E3 — Table 1: profiling data at 4 threads} *)

type table1_row = {
  t1_workload : string;
  t1_locks : int;
  t1_waits : int;
  t1_signals : int;
  t1_forks : int;
  t1_mem : int;
  t1_loads : int;
  t1_stores : int;
  t1_stores_with_copy : int;
  t1_pthreads_bytes : int;
  t1_rfdet_bytes : int;
  t1_dthreads_bytes : int;
  t1_gc : int;
}

val table1 : ?threads:int -> ?scale:float -> ?metadata_capacity:int -> unit -> table1_row list
(** [metadata_capacity] defaults to 256 KiB — the paper's 256 MB scaled
    by the same factor as the workloads' footprints, so the GC column is
    exercised the same way. *)

val render_table1 : table1_row list -> string

(** {1 E4 — Figure 8: scalability (speedup over the 2-thread run)} *)

type fig8_row = {
  f8_workload : string;
  f8_rfdet : (int * float) list;  (** threads, speedup vs 2-thread rfdet *)
  f8_pthreads : (int * float) list;
}

val figure8 : ?thread_counts:int list -> ?scale:float -> unit -> fig8_row list
(** [scale] defaults to 2.0: scalability needs enough parallel work per
    thread for the 8-thread point to be meaningful. *)

val render_figure8 : fig8_row list -> string

(** {1 E5 — Figure 9: prelock and lazy-writes optimization study} *)

type fig9_row = {
  f9_workload : string;
  f9_baseline : int;  (** cycles, both optimizations off *)
  f9_prelock : float;  (** speedup of +prelock over baseline *)
  f9_lazy : float;  (** speedup of +lazy-writes over baseline *)
  f9_both : float;
}

val figure9 : ?threads:int -> ?scale:float -> unit -> fig9_row list

val render_figure9 : fig9_row list -> string

(** {1 E6 — ablation: the cost of global barriers (Figure 1 / §3.1)} *)

type e6_row = {
  e6_runtime : string;
  e6_time : int;
  e6_normalized : float;  (** vs pthreads *)
}

val ablation_barriers : ?imbalance:int -> unit -> e6_row list
(** The paper's motivating scenario: T1 and T3 contend on a lock while
    T2 computes for [imbalance] cycles without synchronizing.  Compares
    pthreads, rfdet-ci, dthreads and coredet (quantum barriers). *)

val render_e6 : e6_row list -> string

(** {1 E7 — ablation: metadata capacity vs GC count (Section 5.4)} *)

type e7_row = {
  e7_workload : string;
  e7_gc_small : int;  (** GC count at the scaled 256 "MB" *)
  e7_gc_large : int;  (** GC count at the scaled 512 "MB" *)
  e7_metadata_peak : int;
}

val ablation_gc : ?threads:int -> ?scale:float -> unit -> e7_row list

val render_e7 : e7_row list -> string

(** {1 E8 — ablation: cost-model sensitivity}

    The Figure 7 conclusions must not hinge on the exact cycle prices in
    the cost table.  This sweep scales the page-machinery costs (fault,
    mprotect, snapshot, diff) by several factors and recomputes the
    geomean normalized times: the ordering RFDet-ci < RFDet-pf <
    DThreads must hold at every point. *)

type e8_row = {
  e8_factor : float;  (** multiplier on the page-granularity costs *)
  e8_dthreads : float;
  e8_rfdet_ci : float;
  e8_rfdet_pf : float;
  e8_ordering_holds : bool;
}

val ablation_sensitivity :
  ?factors:float list -> ?scale:float -> unit -> e8_row list
(** Default factors: 0.5, 1.0, 2.0, 4.0; default scale 0.5 (the sweep
    runs Figure 7 once per factor). *)

val render_e8 : e8_row list -> string
