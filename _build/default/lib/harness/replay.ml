type recording = {
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  signature : string;
}

let record ?(threads = 4) ?(scale = 1.0) ?(input_seed = 42L) workload =
  let r = Runner.run ~threads ~scale ~input_seed Runner.rfdet_ci workload in
  {
    workload = r.Runner.workload;
    threads;
    scale;
    input_seed;
    signature = r.Runner.signature;
  }

let replay ?(sched_seed = 987654321L) recording =
  let workload = Rfdet_workloads.Registry.find recording.workload in
  let r =
    Runner.run ~threads:recording.threads ~scale:recording.scale
      ~input_seed:recording.input_seed ~sched_seed ~jitter:13. Runner.rfdet_ci
      workload
  in
  (r.Runner.signature, r.Runner.signature = recording.signature)

let to_string r =
  Printf.sprintf "workload=%s\nthreads=%d\nscale=%.6f\ninput_seed=%Ld\nsignature=%s\n"
    r.workload r.threads r.scale r.input_seed r.signature

let of_string s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))
  in
  let find k = List.assoc_opt k fields in
  match
    (find "workload", find "threads", find "scale", find "input_seed",
     find "signature")
  with
  | Some workload, Some threads, Some scale, Some input_seed, Some signature
    -> begin
    try
      Some
        {
          workload;
          threads = int_of_string threads;
          scale = float_of_string scale;
          input_seed = Int64.of_string input_seed;
          signature;
        }
    with Failure _ -> None
  end
  | _ -> None
