module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Options = Rfdet_core.Options
module Profile = Rfdet_sim.Profile
module Tablefmt = Rfdet_util.Tablefmt
module Stats = Rfdet_util.Stats

(* ------------------------------------------------------------------ *)
(* E1: racey determinism                                               *)
(* ------------------------------------------------------------------ *)

type e1_row = {
  e1_runtime : string;
  e1_threads : int;
  e1_runs : int;
  e1_distinct : int;
}

let racey_determinism ?(runs_per_config = 100) ?(thread_counts = [ 2; 4; 8 ])
    () =
  let racey = Registry.find "racey" in
  let runtimes =
    [ Runner.Pthreads; Runner.Dthreads; Runner.rfdet_ci; Runner.rfdet_pf ]
  in
  List.concat_map
    (fun runtime ->
      List.map
        (fun threads ->
          let report =
            Determinism.check ~threads ~runs:runs_per_config runtime racey
          in
          {
            e1_runtime = report.Determinism.runtime;
            e1_threads = threads;
            e1_runs = runs_per_config;
            e1_distinct = report.Determinism.distinct_signatures;
          })
        thread_counts)
    runtimes

let render_e1 rows =
  let t =
    Tablefmt.create
      ~title:
        "E1 (Section 5.1): racey stress test — distinct outputs over \
         repeated runs with scheduler noise"
      ~columns:
        [
          ("runtime", Tablefmt.Left);
          ("threads", Tablefmt.Right);
          ("runs", Tablefmt.Right);
          ("distinct outputs", Tablefmt.Right);
          ("verdict", Tablefmt.Left);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.e1_runtime;
          string_of_int r.e1_threads;
          string_of_int r.e1_runs;
          string_of_int r.e1_distinct;
          (if r.e1_distinct = 1 then "deterministic" else "nondeterministic");
        ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* E2: Figure 7                                                        *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  f7_workload : string;
  f7_pthreads : int;
  f7_dthreads : float;
  f7_rfdet_ci : float;
  f7_rfdet_pf : float;
}

let norm base t = float_of_int t /. float_of_int base

let figure7 ?(threads = 4) ?(scale = 1.0) () =
  List.map
    (fun w ->
      let p = (Runner.run ~threads ~scale Runner.Pthreads w).Runner.sim_time in
      let d = (Runner.run ~threads ~scale Runner.Dthreads w).Runner.sim_time in
      let ci = (Runner.run ~threads ~scale Runner.rfdet_ci w).Runner.sim_time in
      let pf = (Runner.run ~threads ~scale Runner.rfdet_pf w).Runner.sim_time in
      {
        f7_workload = w.Workload.name;
        f7_pthreads = p;
        f7_dthreads = norm p d;
        f7_rfdet_ci = norm p ci;
        f7_rfdet_pf = norm p pf;
      })
    Registry.table1

let figure7_summary rows =
  let geo f = Stats.geomean (List.map f rows) in
  (geo (fun r -> r.f7_dthreads), geo (fun r -> r.f7_rfdet_ci),
   geo (fun r -> r.f7_rfdet_pf))

let render_figure7 rows =
  let t =
    Tablefmt.create
      ~title:
        "Figure 7: execution time normalized to pthreads (4 threads; \
         simulated cycles)"
      ~columns:
        [
          ("benchmark", Tablefmt.Left);
          ("pthreads (cycles)", Tablefmt.Right);
          ("DThreads", Tablefmt.Right);
          ("RFDet-pf", Tablefmt.Right);
          ("RFDet-ci", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.f7_workload;
          string_of_int r.f7_pthreads;
          Tablefmt.cell_ratio r.f7_dthreads;
          Tablefmt.cell_ratio r.f7_rfdet_pf;
          Tablefmt.cell_ratio r.f7_rfdet_ci;
        ])
    rows;
  Tablefmt.add_separator t;
  let d, ci, pf = figure7_summary rows in
  Tablefmt.add_row t
    [
      "geomean";
      "-";
      Tablefmt.cell_ratio d;
      Tablefmt.cell_ratio pf;
      Tablefmt.cell_ratio ci;
    ];
  Tablefmt.render t

let chart_figure7 rows =
  Rfdet_util.Barchart.render
    ~title:
      "Figure 7 (chart): execution time normalized to pthreads, 4 threads \
       (| marks 1.0x)"
    ~series:
      [
        { Rfdet_util.Barchart.name = "DThreads"; glyph = 'D' };
        { name = "RFDet-pf"; glyph = 'p' };
        { name = "RFDet-ci"; glyph = 'c' };
      ]
    ~rows:
      (List.map
         (fun r ->
           (r.f7_workload, [ r.f7_dthreads; r.f7_rfdet_pf; r.f7_rfdet_ci ]))
         rows)
    ~baseline:1.0 ()

(* ------------------------------------------------------------------ *)
(* E3: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_workload : string;
  t1_locks : int;
  t1_waits : int;
  t1_signals : int;
  t1_forks : int;
  t1_mem : int;
  t1_loads : int;
  t1_stores : int;
  t1_stores_with_copy : int;
  t1_pthreads_bytes : int;
  t1_rfdet_bytes : int;
  t1_dthreads_bytes : int;
  t1_gc : int;
}

let table1 ?(threads = 4) ?(scale = 1.0) ?(metadata_capacity = 256 * 1024) () =
  let opts = { Options.ci with metadata_capacity } in
  List.map
    (fun w ->
      let r = Runner.run ~threads ~scale (Runner.Rfdet opts) w in
      let p = r.Runner.profile in
      let pth = (Runner.run ~threads ~scale Runner.Pthreads w).Runner.profile in
      let dth = (Runner.run ~threads ~scale Runner.Dthreads w).Runner.profile in
      {
        t1_workload = w.Workload.name;
        t1_locks = p.Profile.locks;
        t1_waits = p.Profile.waits;
        t1_signals = p.Profile.signals;
        t1_forks = p.Profile.forks;
        t1_mem = Profile.mem_ops p;
        t1_loads = p.Profile.loads;
        t1_stores = p.Profile.stores;
        t1_stores_with_copy = p.Profile.stores_with_copy;
        t1_pthreads_bytes = Profile.footprint_pthreads pth;
        t1_rfdet_bytes = Profile.footprint_rfdet p;
        t1_dthreads_bytes =
          pth.Profile.shared_bytes + dth.Profile.private_copy_bytes
          + dth.Profile.stack_bytes;
        t1_gc = p.Profile.gc_runs;
      })
    Registry.table1

let render_table1 rows =
  let t =
    Tablefmt.create
      ~title:
        "Table 1: profiling data, 4 threads (footprints in KB; the paper's \
         MB-scale inputs are scaled down ~1000x)"
      ~columns:
        [
          ("benchmark", Tablefmt.Left);
          ("lock/unlock", Tablefmt.Right);
          ("wait/signal", Tablefmt.Right);
          ("fork/join", Tablefmt.Right);
          ("mem", Tablefmt.Right);
          ("load", Tablefmt.Right);
          ("store", Tablefmt.Right);
          ("store w/copy", Tablefmt.Right);
          ("pthreads", Tablefmt.Right);
          ("RFDet", Tablefmt.Right);
          ("DThreads", Tablefmt.Right);
          ("GC", Tablefmt.Right);
        ]
  in
  let kb n = Printf.sprintf "%.1f" (float_of_int n /. 1024.) in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.t1_workload;
          string_of_int r.t1_locks;
          Printf.sprintf "%d/%d" r.t1_waits r.t1_signals;
          string_of_int r.t1_forks;
          string_of_int r.t1_mem;
          string_of_int r.t1_loads;
          string_of_int r.t1_stores;
          string_of_int r.t1_stores_with_copy;
          kb r.t1_pthreads_bytes;
          kb r.t1_rfdet_bytes;
          kb r.t1_dthreads_bytes;
          string_of_int r.t1_gc;
        ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* E4: Figure 8                                                        *)
(* ------------------------------------------------------------------ *)

type fig8_row = {
  f8_workload : string;
  f8_rfdet : (int * float) list;
  f8_pthreads : (int * float) list;
}

let figure8 ?(thread_counts = [ 2; 4; 8 ]) ?(scale = 2.0) () =
  List.map
    (fun w ->
      let series runtime =
        let times =
          List.map
            (fun threads ->
              (threads, (Runner.run ~threads ~scale runtime w).Runner.sim_time))
            thread_counts
        in
        match times with
        | (_, base) :: _ ->
          List.map
            (fun (n, t) -> (n, float_of_int base /. float_of_int t))
            times
        | [] -> []
      in
      {
        f8_workload = w.Workload.name;
        f8_rfdet = series Runner.rfdet_ci;
        f8_pthreads = series Runner.Pthreads;
      })
    Registry.figure8

let render_figure8 rows =
  let t =
    Tablefmt.create
      ~title:
        "Figure 8: scalability — speedup over the 2-thread run (RFDet-ci \
         vs pthreads)"
      ~columns:
        [
          ("benchmark", Tablefmt.Left);
          ("rfdet 2t", Tablefmt.Right);
          ("rfdet 4t", Tablefmt.Right);
          ("rfdet 8t", Tablefmt.Right);
          ("pthreads 2t", Tablefmt.Right);
          ("pthreads 4t", Tablefmt.Right);
          ("pthreads 8t", Tablefmt.Right);
        ]
  in
  let cell series n =
    match List.assoc_opt n series with
    | Some s -> Printf.sprintf "%.2f" s
    | None -> "-"
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.f8_workload;
          cell r.f8_rfdet 2;
          cell r.f8_rfdet 4;
          cell r.f8_rfdet 8;
          cell r.f8_pthreads 2;
          cell r.f8_pthreads 4;
          cell r.f8_pthreads 8;
        ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* E5: Figure 9                                                        *)
(* ------------------------------------------------------------------ *)

type fig9_row = {
  f9_workload : string;
  f9_baseline : int;
  f9_prelock : float;
  f9_lazy : float;
  f9_both : float;
}

let figure9 ?(threads = 4) ?(scale = 1.0) () =
  let time opts w =
    (Runner.run ~threads ~scale (Runner.Rfdet opts) w).Runner.sim_time
  in
  List.map
    (fun w ->
      let baseline = time Options.baseline_no_opt w in
      let prelock = time { Options.baseline_no_opt with prelock = true } w in
      let lazy_ = time { Options.baseline_no_opt with lazy_writes = true } w in
      let both = time Options.ci w in
      let speedup t = float_of_int baseline /. float_of_int t in
      {
        f9_workload = w.Workload.name;
        f9_baseline = baseline;
        f9_prelock = speedup prelock;
        f9_lazy = speedup lazy_;
        f9_both = speedup both;
      })
    Registry.splash2

let render_figure9 rows =
  let t =
    Tablefmt.create
      ~title:
        "Figure 9: speedup of the prelock and lazy-writes optimizations \
         over the no-optimization baseline (SPLASH-2, RFDet-ci)"
      ~columns:
        [
          ("benchmark", Tablefmt.Left);
          ("baseline (cycles)", Tablefmt.Right);
          ("+prelock", Tablefmt.Right);
          ("+lazy writes", Tablefmt.Right);
          ("+both", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.f9_workload;
          string_of_int r.f9_baseline;
          Tablefmt.cell_ratio r.f9_prelock;
          Tablefmt.cell_ratio r.f9_lazy;
          Tablefmt.cell_ratio r.f9_both;
        ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* E6: the barrier ablation (Figure 1 / Section 3.1)                   *)
(* ------------------------------------------------------------------ *)

type e6_row = { e6_runtime : string; e6_time : int; e6_normalized : float }

(* The motivating example: T1 and T3 repeatedly synchronize on a lock
   while T2 computes with no synchronization at all. *)
let barrier_scenario ~imbalance () =
  let module Api = Rfdet_sim.Api in
  let m = Api.mutex_create () in
  let addr = Rfdet_mem.Layout.globals_base in
  let compute = Api.spawn (fun () -> Api.tick imbalance) in
  let locker () =
    for _ = 1 to 40 do
      Api.with_lock m (fun () -> Api.store addr (Api.load addr + 1));
      Api.tick 2000
    done
  in
  let l1 = Api.spawn locker and l2 = Api.spawn locker in
  Api.join l1;
  Api.join l2;
  Api.join compute;
  Api.output_int (Api.load addr)

let ablation_barriers ?(imbalance = 500_000) () =
  let w =
    {
      Workload.name = "barrier-microbench";
      suite = "ablation";
      description = "two lockers + one non-synchronizing compute thread";
      main = (fun _cfg () -> barrier_scenario ~imbalance ());
    }
  in
  let runtimes =
    [
      Runner.Pthreads;
      Runner.rfdet_ci;
      Runner.Kendo;
      Runner.Dthreads;
      Runner.Coredet;
    ]
  in
  let base = ref 0 in
  List.map
    (fun rt ->
      let t = (Runner.run rt w).Runner.sim_time in
      if !base = 0 then base := t;
      {
        e6_runtime = Runner.runtime_name rt;
        e6_time = t;
        e6_normalized = float_of_int t /. float_of_int !base;
      })
    runtimes

let render_e6 rows =
  let t =
    Tablefmt.create
      ~title:
        "Ablation (Figure 1 / Section 3.1): two lock-contending threads + \
         one barrier-free compute thread"
      ~columns:
        [
          ("runtime", Tablefmt.Left);
          ("cycles", Tablefmt.Right);
          ("vs pthreads", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.e6_runtime;
          string_of_int r.e6_time;
          Tablefmt.cell_ratio r.e6_normalized;
        ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* E7: GC vs metadata capacity                                         *)
(* ------------------------------------------------------------------ *)

type e7_row = {
  e7_workload : string;
  e7_gc_small : int;
  e7_gc_large : int;
  e7_metadata_peak : int;
}

let ablation_gc ?(threads = 4) ?(scale = 1.0) () =
  let run capacity w =
    let opts = { Options.ci with metadata_capacity = capacity } in
    (Runner.run ~threads ~scale (Runner.Rfdet opts) w).Runner.profile
  in
  (* the paper's 256 MB / 512 MB, scaled with the inputs *)
  let small = 256 * 1024 and large = 512 * 1024 in
  List.filter_map
    (fun w ->
      let ps = run small w in
      let pl = run large w in
      if ps.Profile.slices_created = 0 then None
      else
        Some
          {
            e7_workload = w.Workload.name;
            e7_gc_small = ps.Profile.gc_runs;
            e7_gc_large = pl.Profile.gc_runs;
            e7_metadata_peak = pl.Profile.metadata_peak_bytes;
          })
    Registry.table1

type e8_row = {
  e8_factor : float;
  e8_dthreads : float;
  e8_rfdet_ci : float;
  e8_rfdet_pf : float;
  e8_ordering_holds : bool;
}

let ablation_sensitivity ?(factors = [ 0.5; 1.0; 2.0; 4.0 ]) ?(scale = 0.5) () =
  List.map
    (fun factor ->
      let cost = Rfdet_sim.Cost.scale_memory Rfdet_sim.Cost.default factor in
      let times runtime w = (Runner.run ~scale ~cost runtime w).Runner.sim_time in
      let rows =
        List.map
          (fun w ->
            let p = times Runner.Pthreads w in
            ( float_of_int (times Runner.Dthreads w) /. float_of_int p,
              float_of_int (times Runner.rfdet_ci w) /. float_of_int p,
              float_of_int (times Runner.rfdet_pf w) /. float_of_int p ))
          Registry.table1
      in
      let geo f = Stats.geomean (List.map f rows) in
      let d = geo (fun (d, _, _) -> d) in
      let ci = geo (fun (_, ci, _) -> ci) in
      let pf = geo (fun (_, _, pf) -> pf) in
      {
        e8_factor = factor;
        e8_dthreads = d;
        e8_rfdet_ci = ci;
        e8_rfdet_pf = pf;
        e8_ordering_holds = ci < pf && pf < d;
      })
    factors

let render_e8 rows =
  let t =
    Tablefmt.create
      ~title:
        "Ablation: cost-model sensitivity — geomean normalized times while \
         scaling the page-machinery costs (fault/mprotect/snapshot/diff)"
      ~columns:
        [
          ("cost factor", Tablefmt.Right);
          ("RFDet-ci", Tablefmt.Right);
          ("RFDet-pf", Tablefmt.Right);
          ("DThreads", Tablefmt.Right);
          ("ci < pf < dthreads", Tablefmt.Left);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          Printf.sprintf "%.1fx" r.e8_factor;
          Tablefmt.cell_ratio r.e8_rfdet_ci;
          Tablefmt.cell_ratio r.e8_rfdet_pf;
          Tablefmt.cell_ratio r.e8_dthreads;
          (if r.e8_ordering_holds then "holds" else "VIOLATED");
        ])
    rows;
  Tablefmt.render t

let render_e7 rows =
  let t =
    Tablefmt.create
      ~title:
        "Ablation (Section 5.4): GC count vs metadata capacity (scaled \
         256 vs 512 'MB')"
      ~columns:
        [
          ("benchmark", Tablefmt.Left);
          ("GC @256", Tablefmt.Right);
          ("GC @512", Tablefmt.Right);
          ("metadata peak", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.e7_workload;
          string_of_int r.e7_gc_small;
          string_of_int r.e7_gc_large;
          Rfdet_util.Stats.human_bytes r.e7_metadata_peak;
        ])
    rows;
  Tablefmt.render t
