(** Record/replay by recording inputs only — the application of DMT the
    paper highlights in Section 2.

    A record-and-replay system for nondeterministic threads must log
    every scheduling decision; under strong determinism the entire
    execution is a function of the input, so a "recording" is just the
    workload name, its configuration, and the input seed.  Replaying
    re-executes and must reproduce the output bit for bit — on any
    machine, under any scheduler noise. *)

type recording = {
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  signature : string;  (** output digest at record time *)
}

(** [record ?threads ?scale ?input_seed workload] runs the workload once
    under RFDet-ci and captures the recording. *)
val record :
  ?threads:int ->
  ?scale:float ->
  ?input_seed:int64 ->
  Rfdet_workloads.Workload.t ->
  recording

(** [replay ?sched_seed recording] re-executes (with arbitrary scheduler
    noise) and returns the new signature together with whether it matches
    the recording. *)
val replay : ?sched_seed:int64 -> recording -> string * bool

(** Text round-trip, one line per field ("key=value"). *)
val to_string : recording -> string

val of_string : string -> recording option
