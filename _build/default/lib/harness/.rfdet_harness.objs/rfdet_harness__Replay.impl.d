lib/harness/replay.ml: Int64 List Printf Rfdet_workloads Runner String
