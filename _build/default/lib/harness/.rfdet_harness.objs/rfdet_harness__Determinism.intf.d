lib/harness/determinism.mli: Format Rfdet_workloads Runner
