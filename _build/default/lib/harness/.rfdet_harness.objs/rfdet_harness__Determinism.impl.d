lib/harness/determinism.ml: Format Int64 List Rfdet_workloads Runner
