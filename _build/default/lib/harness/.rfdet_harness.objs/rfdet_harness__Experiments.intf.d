lib/harness/experiments.mli:
