lib/harness/experiments.ml: Determinism List Printf Rfdet_core Rfdet_mem Rfdet_sim Rfdet_util Rfdet_workloads Runner
