lib/harness/replay.mli: Rfdet_workloads
