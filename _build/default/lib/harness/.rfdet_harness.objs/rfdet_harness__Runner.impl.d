lib/harness/runner.ml: Rfdet_baselines Rfdet_core Rfdet_sim Rfdet_workloads Unix
