lib/harness/runner.mli: Rfdet_core Rfdet_sim Rfdet_workloads
