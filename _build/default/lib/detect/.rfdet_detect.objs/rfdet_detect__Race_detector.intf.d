lib/detect/race_detector.mli: Format Rfdet_sim
