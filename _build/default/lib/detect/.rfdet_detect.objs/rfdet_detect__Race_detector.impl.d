lib/detect/race_detector.ml: Format Hashtbl List Printf Rfdet_kendo Rfdet_mem Rfdet_sim Rfdet_util
