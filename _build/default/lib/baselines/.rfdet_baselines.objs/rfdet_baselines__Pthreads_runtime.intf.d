lib/baselines/pthreads_runtime.mli: Rfdet_sim
