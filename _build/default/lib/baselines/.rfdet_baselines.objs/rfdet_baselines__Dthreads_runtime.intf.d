lib/baselines/dthreads_runtime.mli: Rfdet_sim
