lib/baselines/kendo_runtime.ml: Rfdet_kendo Rfdet_mem Rfdet_sim
