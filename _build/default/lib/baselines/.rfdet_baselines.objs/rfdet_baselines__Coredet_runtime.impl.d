lib/baselines/coredet_runtime.ml: Hashtbl List Option Printf Queue Rfdet_mem Rfdet_sim
