lib/baselines/kendo_runtime.mli: Rfdet_sim
