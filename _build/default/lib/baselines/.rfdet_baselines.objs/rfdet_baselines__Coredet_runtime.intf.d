lib/baselines/coredet_runtime.mli: Rfdet_sim
