(** DThreads (Liu, Curtsinger, Berger — SOSP 2011): the state-of-the-art
    strong-DMT baseline the paper compares against.

    Architecture reproduced here (Section 2 of the RFDet paper):
    threads are isolated address spaces; a *parallel phase* ends when
    every live thread reaches its next synchronization operation (an
    internal global fence); then a *serial phase* passes a token in
    deterministic thread-id order — each thread commits its page diffs to
    the shared state (last committer wins, byte granularity) and performs
    its synchronization operation.

    The two overheads the RFDet paper attributes to this design emerge
    naturally:
    - {b fence imbalance}: a thread that does not synchronize holds every
      other thread at the fence until it finally arrives (or exits);
    - {b serialized commits}: all threads pay for the token round even
      when they have nothing to communicate.

    Dirty-page tracking is mprotect/page-fault based, as in DThreads. *)

val name : string

val make : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
