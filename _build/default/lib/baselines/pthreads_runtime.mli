(** The conventional, nondeterministic multithreading baseline.

    All threads share one memory space, stores are immediately visible
    everywhere, and synchronization is first-come-first-served in
    simulated-time order.  With scheduler jitter enabled (a nonzero
    [jitter_mean] in the engine config), different seeds produce
    different interleavings — so racy programs like [racey] produce
    different outputs per seed, which is exactly the behaviour the DMT
    runtimes are built to eliminate.

    This is the "pthreads" bar of Figure 7 and the normalization
    denominator of every performance experiment. *)

val name : string

val make : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
(** Use as [Engine.run ~config Pthreads_runtime.make ~main]. *)
