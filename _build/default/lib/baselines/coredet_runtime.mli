(** A CoreDet-style quantum-barrier strong-DMT runtime (Bergan et al.,
    ASPLOS 2010) — the third point in the design space of the paper's
    Figure 1.

    Execution proceeds in rounds.  In the *parallel phase* every thread
    runs isolated (private space, dirty pages tracked) until it either
    executes a fixed quantum of instructions or reaches a synchronization
    operation; a *global barrier* then starts the serial phase, where a
    token passes in thread-id order: each thread commits its buffered
    writes and performs its pending synchronization operation, if any.

    Unlike DThreads, even a thread that never synchronizes is stopped at
    every quantum boundary — the "unnecessary serialization" the paper's
    Section 3.1 argues DLRC eliminates.  The E6 ablation bench
    demonstrates this difference. *)

val name : string

val quantum : int
(** Parallel-phase length in instruction-count units (50k, CoreDet's
    ballpark). *)

val make : ?quantum:int -> Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
