(* Deterministic recovery (ISSUE: robustness).

   The acceptance properties:
   (a) same seed + same fault plan => bit-identical recovered signature;
   (b) for restartable workloads the recovered output checksum equals
       the fault-free run's — the fault is invisible, not just survived;
   (c) lock healing: trylock/lock_timed surface poison and contention
       deterministically, and a heal un-poisons for later acquirers;
   (d) a lock cycle picks a deterministic victim, crashes it through
       the restart path, and the run completes;
   (e) corrupted slice metadata is detected at propagation (quarantine
       + re-derivation from the publisher's space) or by the end-of-run
       audit, and an impossible re-derivation fails loudly. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Profile = Rfdet_sim.Profile
module Fault_plan = Rfdet_fault.Fault_plan
module Recover = Rfdet_recover.Recover
module Runner = Rfdet_harness.Runner
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry

let plan s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

let wl name = List.find (fun w -> w.Workload.name = name) Registry.all

let workload name main =
  { Workload.name; suite = "test"; description = name; main = (fun _cfg -> main) }

let run ?(runtime = Runner.rfdet_ci) ?faults ?(threads = 3) w =
  Runner.run ~threads ~sched_seed:1L ?faults ~failure_mode:Engine.Recover
    runtime w

(* --- thread restart ------------------------------------------------- *)

let test_restart_deterministic () =
  let p = plan "crash,tid=1,op=lock,n=2" in
  let a = run ~faults:p (wl "micro-lock") in
  let b = run ~faults:p (wl "micro-lock") in
  Alcotest.(check string) "same signature" a.Runner.signature b.Runner.signature;
  Alcotest.(check int) "restarted" 1 a.Runner.profile.Profile.restarts;
  Alcotest.(check bool) "backoff charged" true
    (a.Runner.profile.Profile.backoff_cycles > 0)

let test_restart_invisible () =
  (* Crash before the thread publishes anything: the replay loses no
     committed work, so the recovered outputs match the fault-free
     run's bit for bit (only the crash record distinguishes them). *)
  let clean = run (wl "micro-lock") in
  List.iter
    (fun s ->
      let r = run ~faults:(plan s) (wl "micro-lock") in
      Alcotest.(check string)
        (s ^ ": recovered outputs")
        clean.Runner.output_checksum r.Runner.output_checksum;
      Alcotest.(check bool) (s ^ ": crash recorded") true
        (r.Runner.crashes <> []);
      Alcotest.(check bool) (s ^ ": signature differs from clean") true
        (r.Runner.signature <> clean.Runner.signature))
    [
      "crash,tid=1,op=lock,n=1";
      "crash,tid=1,op=lock,n=2";
      "crash,tid=2,op=store,n=1";
      "crash,tid=3,op=any,n=1";
    ]

let test_restart_after_barrier () =
  (* micro-barrier checkpoints past the barrier: a post-barrier crash
     replays only the output phase and must not re-arrive. *)
  let clean = run (wl "micro-barrier") in
  let r = run ~faults:(plan "crash,tid=1,op=output,n=1") (wl "micro-barrier") in
  Alcotest.(check int) "restarted" 1 r.Runner.profile.Profile.restarts;
  Alcotest.(check string) "recovered outputs" clean.Runner.output_checksum
    r.Runner.output_checksum

let test_retry_budget_exhausts () =
  (* Crash the same thread on every attempt: once the budget is spent,
     containment applies and the run still terminates deterministically. *)
  let main () =
    let m = Api.mutex_create () in
    let t =
      Api.spawn (fun () ->
          Api.with_lock m (fun () -> Api.tick 100);
          Api.output_int 1)
    in
    (match Api.join_check t with
    | `Ok -> Api.output_int 2
    | `Crashed -> Api.output_int 3)
  in
  let p =
    plan
      "crash,tid=1,op=lock,n=1;crash,tid=1,op=lock,n=2;\
       crash,tid=1,op=lock,n=3;crash,tid=1,op=lock,n=4;\
       crash,tid=1,op=lock,n=5"
  in
  let w = workload "budget" main in
  let a = run ~faults:p w in
  let b = run ~faults:p w in
  Alcotest.(check string) "deterministic" a.Runner.signature b.Runner.signature;
  Alcotest.(check int) "budget bounds restarts"
    Recover.default_config.max_restarts a.Runner.profile.Profile.restarts;
  (* attempt 4 exceeds the budget: containment, and the joiner sees it *)
  Alcotest.(check (list (pair int int64))) "contained after budget"
    [ (0, 3L) ] a.Runner.outputs

let test_kendo_recovers_too () =
  let p = plan "crash,tid=1,op=lock,n=1" in
  let a = run ~runtime:Runner.Kendo ~faults:p (wl "micro-lock") in
  let b = run ~runtime:Runner.Kendo ~faults:p (wl "micro-lock") in
  Alcotest.(check string) "same signature" a.Runner.signature b.Runner.signature;
  Alcotest.(check int) "restarted" 1 a.Runner.profile.Profile.restarts

(* --- lock healing: trylock / lock_timed / heal ----------------------- *)

let test_trylock_semantics () =
  let main () =
    let m = Api.mutex_create () in
    Alcotest.(check bool) "uncontended trylock" true (Api.trylock m = `Ok);
    let t =
      Api.spawn (fun () ->
          (* the owner still holds m: a trylock must not block *)
          (match Api.trylock m with
          | `Busy -> Api.output_int 1
          | `Ok | `Poisoned -> Api.output_int 0);
          ())
    in
    Api.join t;
    Api.unlock m;
    Alcotest.(check bool) "free again" true (Api.trylock m = `Ok);
    Api.unlock m
  in
  let r = run (workload "trylock" main) in
  Alcotest.(check (list (pair int int64))) "busy observed" [ (1, 1L) ]
    r.Runner.outputs

let test_lock_timed_semantics () =
  let main () =
    let m = Api.mutex_create () in
    (match Api.lock_timed m ~timeout:500 with
    | `Ok -> ()
    | `Poisoned | `Timed_out -> Alcotest.fail "uncontended lock_timed");
    let t =
      Api.spawn (fun () ->
          match Api.lock_timed m ~timeout:400 with
          | `Timed_out -> Api.output_int 7
          | `Ok | `Poisoned -> Api.output_int 0)
    in
    (* hold m well past the waiter's icount deadline *)
    Api.tick 5_000;
    Api.join t;
    Api.unlock m
  in
  let a = run (workload "lock-timed" main) in
  let b = run (workload "lock-timed" main) in
  Alcotest.(check (list (pair int int64))) "timeout observed" [ (1, 7L) ]
    a.Runner.outputs;
  Alcotest.(check string) "deterministic" a.Runner.signature b.Runner.signature

let test_heal_unpoisons () =
  (* tid 1 crashes holding m (poisoning it); the next acquirer observes
     the poison, re-establishes the invariant and heals; acquirers after
     the heal see a clean mutex. *)
  let main () =
    let m = Api.mutex_create () in
    let cell = Api.malloc 8 in
    let crasher =
      Api.spawn (fun () ->
          Api.lock m;
          Api.store cell 13;
          Api.tick 200;
          Api.unlock m)
    in
    let healer =
      Api.spawn (fun () ->
          Api.tick 2_000;
          (match Api.lock_check m with
          | `Poisoned ->
            (* invariant repair: reset the protected cell *)
            Api.store cell 0;
            Api.mutex_heal m;
            Api.output_int 1
          | `Ok -> Api.output_int 0);
          Api.unlock m)
    in
    Api.join crasher;
    Api.join healer;
    (match Api.lock_check m with
    | `Ok -> Api.output_int 2
    | `Poisoned -> Api.output_int 3);
    Api.unlock m
  in
  (* crash tid 1 at its store, i.e. while holding m; budget 0 keeps the
     crash contained so the poison is observable *)
  let r =
    Runner.run ~threads:3 ~sched_seed:1L
      ~faults:(plan "crash,tid=1,op=store,n=1")
      ~failure_mode:Engine.Recover
      ~recover_config:{ Recover.default_config with max_restarts = 0 }
      Runner.rfdet_ci (workload "heal" main)
  in
  Alcotest.(check (list (pair int int64))) "healed" [ (0, 2L); (2, 1L) ]
    (List.sort compare r.Runner.outputs);
  Alcotest.(check int) "heal counted" 1 r.Runner.profile.Profile.heals

(* --- deadlock victims ------------------------------------------------ *)

let test_deadlock_victim_recovers () =
  (* AB-BA: with no recovery manager this stalls; under Recover the
     engine's wait-for-graph picks the lowest-(icount, tid) cycle member,
     crashes it through the restart path, and the run completes. *)
  let main () =
    let a = Api.mutex_create () in
    let b = Api.mutex_create () in
    let t1 =
      Api.spawn (fun () ->
          ignore (Api.lock_check a);
          Api.tick 300;
          ignore (Api.lock_check b);
          Api.unlock b;
          Api.unlock a;
          Api.output_int 1)
    in
    let t2 =
      Api.spawn (fun () ->
          ignore (Api.lock_check b);
          Api.tick 300;
          ignore (Api.lock_check a);
          Api.unlock a;
          Api.unlock b;
          Api.output_int 2)
    in
    Api.join t1;
    Api.join t2;
    Api.output_int 3
  in
  let r1 = run (workload "abba" main) in
  let r2 = run (workload "abba" main) in
  Alcotest.(check string) "deterministic" r1.Runner.signature r2.Runner.signature;
  Alcotest.(check bool) "a victim was taken" true
    (r1.Runner.profile.Profile.deadlock_victims >= 1);
  Alcotest.(check (list (pair int int64))) "all threads completed"
    [ (0, 3L); (1, 1L); (2, 2L) ]
    (List.sort compare r1.Runner.outputs)

(* --- self-verifying metadata ----------------------------------------- *)

(* Writer publishes a write-once word, then idles; reader acquires the
   same lock later and propagates the writer's slice.  Corrupting the
   stored slice between publish and propagation exercises the verify ->
   quarantine -> re-derive path, and the re-derivation succeeds because
   the writer's space still holds the published bytes. *)
let rederive_main () =
  let m = Api.mutex_create () in
  let cell = Api.malloc 8 in
  let writer =
    Api.spawn (fun () ->
        Api.lock m;
        Api.store cell 777;
        Api.unlock m;
        (* corruption is injected at this tick, after the publish *)
        Api.tick 50;
        Api.tick 5_000)
  in
  let reader =
    Api.spawn (fun () ->
        Api.tick 2_000;
        Api.lock m;
        Api.output_int (Api.load cell);
        Api.unlock m)
  in
  Api.join writer;
  Api.join reader

let test_corruption_rederived () =
  let r =
    run ~faults:(plan "corrupt,tid=1,op=compute,n=2")
      (workload "rederive" rederive_main)
  in
  Alcotest.(check bool) "detected" true
    (r.Runner.profile.Profile.corruptions_detected >= 1);
  Alcotest.(check bool) "quarantined" true
    (r.Runner.profile.Profile.quarantines >= 1);
  Alcotest.(check (list (pair int int64))) "value repaired" [ (2, 777L) ]
    r.Runner.outputs

let test_corruption_unrecoverable () =
  (* The writer overwrites the published word before the reader
     propagates: the stored digest can no longer be re-derived from the
     writer's space, so the run must fail loudly, not propagate damage. *)
  let main () =
    let m = Api.mutex_create () in
    let cell = Api.malloc 8 in
    let writer =
      Api.spawn (fun () ->
          Api.lock m;
          Api.store cell 777;
          Api.unlock m;
          Api.tick 50;
          (* private overwrite of the same word, after the corruption *)
          Api.store cell 888;
          Api.tick 5_000)
    in
    let reader =
      Api.spawn (fun () ->
          Api.tick 2_000;
          Api.lock m;
          Api.output_int (Api.load cell);
          Api.unlock m)
    in
    Api.join writer;
    Api.join reader
  in
  match
    run ~faults:(plan "corrupt,tid=1,op=compute,n=2")
      (workload "unrecoverable" main)
  with
  | _ -> Alcotest.fail "expected Engine.Fatal"
  | exception Engine.Fatal (Failure msg) ->
    let prefix = "metadata corruption: slice #" in
    Alcotest.(check string) "diagnostic names the slice" prefix
      (String.sub msg 0 (String.length prefix))
  | exception e ->
    Alcotest.failf "expected Engine.Fatal, got %s" (Printexc.to_string e)

let test_corruption_audit_at_exit () =
  (* A corrupted slice nobody propagates after the damage is still
     caught by the end-of-run audit. *)
  let r =
    run ~faults:(plan "corrupt,tid=1,op=output,n=1") (wl "micro-barrier")
  in
  Alcotest.(check int) "audit detected" 1
    r.Runner.profile.Profile.corruptions_detected

let test_clean_runs_verify_silently () =
  (* verify_metadata is on by default: a fault-free run checks every
     propagated slice and finds nothing. *)
  let a = run (wl "micro-lock") in
  Alcotest.(check int) "no detections" 0
    a.Runner.profile.Profile.corruptions_detected;
  let b =
    Runner.run ~threads:3 ~sched_seed:1L Runner.rfdet_ci (wl "micro-lock")
  in
  Alcotest.(check string) "recover mode alone changes nothing"
    b.Runner.signature a.Runner.signature

(* --- wildcard guard --------------------------------------------------- *)

let test_wildcard_guard () =
  let p = plan "crash,tid=*,op=lock,n=3" in
  Alcotest.check_raises "rejected under jitter"
    (Invalid_argument
       "Determinism.check_faults: fault plan has a wildcard-tid site, which \
        is only deterministic under a jitter-free schedule; qualify the site \
        with tid=K or pass ~jitter:0.")
    (fun () ->
      ignore
        (Rfdet_harness.Determinism.check_faults ~runs:2 ~plan:p
           Runner.rfdet_ci (wl "micro-lock")));
  (* jitter-free wildcard plans stay allowed (a non-crashing action, so
     the runs complete) *)
  let delays = plan "delay=100,tid=*,op=lock,n=3" in
  let report, _ =
    Rfdet_harness.Determinism.check_faults ~runs:2 ~jitter:0. ~plan:delays
      Runner.rfdet_ci (wl "micro-lock")
  in
  Alcotest.(check bool) "jitter-free ok" true
    report.Rfdet_harness.Determinism.deterministic

(* --- the crash clinic ------------------------------------------------- *)

let test_clinic_sweep () =
  let s =
    Rfdet_check.Clinic.sweep ~threads:2 ~max_sites:40 (wl "micro-lock")
  in
  Alcotest.(check int) "no hangs" 0 s.Rfdet_check.Clinic.hangs;
  Alcotest.(check int) "every outcome deterministic" 0
    s.Rfdet_check.Clinic.nondeterministic;
  Alcotest.(check int) "rfdet stays conformant" 0
    s.Rfdet_check.Clinic.nonconformant;
  Alcotest.(check bool) "probed sites" true (s.Rfdet_check.Clinic.sites > 0)

let suites =
  [
    ( "recover",
      [
        Alcotest.test_case "restart deterministic" `Quick
          test_restart_deterministic;
        Alcotest.test_case "restart invisible" `Quick test_restart_invisible;
        Alcotest.test_case "restart after barrier" `Quick
          test_restart_after_barrier;
        Alcotest.test_case "retry budget exhausts" `Quick
          test_retry_budget_exhausts;
        Alcotest.test_case "kendo recovers too" `Quick test_kendo_recovers_too;
        Alcotest.test_case "trylock semantics" `Quick test_trylock_semantics;
        Alcotest.test_case "lock_timed semantics" `Quick
          test_lock_timed_semantics;
        Alcotest.test_case "heal un-poisons" `Quick test_heal_unpoisons;
        Alcotest.test_case "deadlock victim recovers" `Quick
          test_deadlock_victim_recovers;
        Alcotest.test_case "corruption re-derived" `Quick
          test_corruption_rederived;
        Alcotest.test_case "corruption unrecoverable" `Quick
          test_corruption_unrecoverable;
        Alcotest.test_case "corruption audited at exit" `Quick
          test_corruption_audit_at_exit;
        Alcotest.test_case "clean runs verify silently" `Quick
          test_clean_runs_verify_silently;
        Alcotest.test_case "wildcard guard" `Quick test_wildcard_guard;
        Alcotest.test_case "crash clinic sweep" `Slow test_clinic_sweep;
      ] );
  ]
