open Rfdet_mem

let test_zero_fill () =
  let s = Space.create () in
  Alcotest.(check int) "byte" 0 (Space.load_byte s 0x1234);
  Alcotest.(check int) "word" 0 (Space.load_int s 0x8000)

let test_store_load_byte () =
  let s = Space.create () in
  Space.store_byte s 100 0xAB;
  Alcotest.(check int) "read back" 0xAB (Space.load_byte s 100);
  Space.store_byte s 100 0x3FF;
  Alcotest.(check int) "truncated to byte" 0xFF (Space.load_byte s 100)

let test_store_load_word () =
  let s = Space.create () in
  Space.store_int s 4096 123456789;
  Alcotest.(check int) "word round trip" 123456789 (Space.load_int s 4096);
  Space.store_i64 s 200 (-1L);
  Alcotest.(check int64) "negative" (-1L) (Space.load_i64 s 200)

let test_word_crossing_page () =
  let s = Space.create () in
  let addr = Page.size - 3 in
  Space.store_i64 s addr 0x0102030405060708L;
  Alcotest.(check int64) "cross-page word" 0x0102030405060708L
    (Space.load_i64 s addr);
  Alcotest.(check int) "first byte" 0x08 (Space.load_byte s addr)

let test_little_endian () =
  let s = Space.create () in
  Space.store_i64 s 0 0x1122334455667788L;
  Alcotest.(check int) "LSB first" 0x88 (Space.load_byte s 0);
  Alcotest.(check int) "MSB last" 0x11 (Space.load_byte s 7)

let test_fork_isolation () =
  let parent = Space.create () in
  Space.store_int parent 0 111;
  let child = Space.fork parent in
  Alcotest.(check int) "child inherits" 111 (Space.load_int child 0);
  Space.store_int child 0 222;
  Alcotest.(check int) "child sees own write" 222 (Space.load_int child 0);
  Alcotest.(check int) "parent unaffected" 111 (Space.load_int parent 0);
  Space.store_int parent 8 333;
  Alcotest.(check int) "parent write invisible to child" 0
    (Space.load_int child 8)

let test_fork_cow_counting () =
  let parent = Space.create () in
  for i = 0 to 3 do
    Space.store_int parent (i * Page.size) i
  done;
  Alcotest.(check int) "parent owns 4" 4 (Space.owned_pages parent);
  let child = Space.fork parent in
  Alcotest.(check int) "all shared after fork (child)" 0
    (Space.owned_pages child);
  Alcotest.(check int) "all shared after fork (parent)" 0
    (Space.owned_pages parent);
  Space.store_int child 0 9;
  Alcotest.(check int) "child owns its copy" 1 (Space.owned_pages child);
  (* The parent's frame for page 0 is again exclusively referenced. *)
  Alcotest.(check int) "parent regains exclusivity" 1 (Space.owned_pages parent);
  Alcotest.(check int) "mapped pages unchanged" 4 (Space.mapped_pages child)

let test_string_roundtrip () =
  let s = Space.create () in
  Space.blit_string s ~addr:5000 "hello, dlrc";
  Alcotest.(check string) "string" "hello, dlrc"
    (Space.read_string s ~addr:5000 ~len:11)

let test_snapshot_isolated () =
  let s = Space.create () in
  Space.store_byte s 10 1;
  let snap = Space.snapshot_page s 0 in
  Space.store_byte s 10 2;
  Alcotest.(check char) "snapshot frozen" '\001' (Bytes.get snap 10);
  Alcotest.(check int) "live updated" 2 (Space.load_byte s 10)

let test_write_page () =
  let s = Space.create () in
  let data = Bytes.make Page.size 'x' in
  Space.write_page s 3 data;
  Alcotest.(check int) "contents" (Char.code 'x')
    (Space.load_byte s ((3 * Page.size) + 17));
  Alcotest.check_raises "size check"
    (Invalid_argument "Space.write_page: wrong page size") (fun () ->
      Space.write_page s 0 (Bytes.create 7))

let test_protection () =
  let s = Space.create () in
  Alcotest.(check bool) "default rw" true (Space.protection s 0 = Space.Prot_rw);
  Space.protect s 0 Space.Prot_read_only;
  Alcotest.(check bool) "read only" true
    (Space.protection s 0 = Space.Prot_read_only);
  Space.protect s 1 Space.Prot_none;
  Space.clear_protections s;
  Alcotest.(check bool) "cleared" true (Space.protection s 1 = Space.Prot_rw)

let test_cache_survives_fork () =
  (* Warm the parent's page-handle cache, fork, then check copy-on-write
     isolation in both directions — a stale cached frame would leak
     writes across the fork. *)
  let parent = Space.create () in
  Space.store_byte parent 0 1;
  (* warm the cache on page 0 via both a read and a write *)
  Alcotest.(check int) "pre-fork read" 1 (Space.load_byte parent 0);
  Space.store_byte parent 1 2;
  let child = Space.fork parent in
  (* child's first read goes through its own (cold) cache *)
  Alcotest.(check int) "child inherits" 1 (Space.load_byte child 0);
  (* parent writes through its warmed cache; must CoW, not mutate the
     shared frame the child still references *)
  Space.store_byte parent 0 9;
  Alcotest.(check int) "child isolated from parent write" 1
    (Space.load_byte child 0);
  (* now warm the child's cache, write, and check the parent *)
  Alcotest.(check int) "child re-read" 2 (Space.load_byte child 1);
  Space.store_byte child 1 7;
  Alcotest.(check int) "parent isolated from child write" 2
    (Space.load_byte parent 1);
  Alcotest.(check int) "parent sees own write" 9 (Space.load_byte parent 0)

let test_cache_sibling_isolation () =
  (* Two children forked from the same parent, caches warmed on the same
     page: each child's writes stay private. *)
  let parent = Space.create () in
  Space.store_byte parent 100 5;
  let a = Space.fork parent in
  let b = Space.fork parent in
  Alcotest.(check int) "a inherits" 5 (Space.load_byte a 100);
  Alcotest.(check int) "b inherits" 5 (Space.load_byte b 100);
  Space.store_byte a 100 6;
  Space.store_byte b 100 7;
  Alcotest.(check int) "a private" 6 (Space.load_byte a 100);
  Alcotest.(check int) "b private" 7 (Space.load_byte b 100);
  Alcotest.(check int) "parent untouched" 5 (Space.load_byte parent 100)

let test_string_multi_page () =
  (* A blit spanning three pages must land byte-exact, and reads across
     unmapped gaps must zero-fill. *)
  let s = Space.create () in
  let len = (2 * Page.size) + 100 in
  let payload = String.init len (fun i -> Char.chr (i land 0xff)) in
  let addr = Page.size - 50 in
  Space.blit_string s ~addr payload;
  Alcotest.(check string) "multi-page round trip" payload
    (Space.read_string s ~addr ~len);
  Alcotest.(check int) "byte before is zero" 0 (Space.load_byte s (addr - 1));
  Alcotest.(check int) "byte after is zero" 0 (Space.load_byte s (addr + len));
  (* read spanning mapped + unmapped pages: the unmapped tail is zeros
     and reading must not materialize those pages *)
  let mapped_before = Space.mapped_pages s in
  let r = Space.read_string s ~addr:(addr + len - 4) ~len:20 in
  Alcotest.(check string) "mapped prefix"
    (String.sub payload (len - 4) 4)
    (String.sub r 0 4);
  Alcotest.(check string) "unmapped tail zero-filled"
    (String.make 16 '\000')
    (String.sub r 4 16);
  Alcotest.(check int) "read does not materialize pages" mapped_before
    (Space.mapped_pages s)

let prop_byte_roundtrip =
  QCheck2.Test.make ~name:"space: random byte stores read back" ~count:200
    QCheck2.Gen.(list (pair (int_bound 100_000) (int_bound 255)))
    (fun writes ->
      let s = Space.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (addr, v) ->
          Space.store_byte s addr v;
          Hashtbl.replace model addr v)
        writes;
      Hashtbl.fold
        (fun addr v acc -> acc && Space.load_byte s addr = v)
        model true)

let prop_fork_snapshot_semantics =
  QCheck2.Test.make ~name:"space: fork is a point-in-time snapshot" ~count:100
    QCheck2.Gen.(
      pair
        (list (pair (int_bound 20_000) (int_bound 255)))
        (list (pair (int_bound 20_000) (int_bound 255))))
    (fun (before, after) ->
      let parent = Space.create () in
      List.iter (fun (a, v) -> Space.store_byte parent a v) before;
      let child = Space.fork parent in
      List.iter (fun (a, v) -> Space.store_byte parent a (v lxor 0xFF)) after;
      (* The child must still see exactly the pre-fork contents. *)
      let model = Hashtbl.create 64 in
      List.iter (fun (a, v) -> Hashtbl.replace model a v) before;
      Hashtbl.fold
        (fun addr v acc -> acc && Space.load_byte child addr = v)
        model true)

let suites =
  [
    ( "space",
      [
        Alcotest.test_case "zero fill" `Quick test_zero_fill;
        Alcotest.test_case "byte round trip" `Quick test_store_load_byte;
        Alcotest.test_case "word round trip" `Quick test_store_load_word;
        Alcotest.test_case "cross-page word" `Quick test_word_crossing_page;
        Alcotest.test_case "little endian" `Quick test_little_endian;
        Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
        Alcotest.test_case "fork COW accounting" `Quick test_fork_cow_counting;
        Alcotest.test_case "string round trip" `Quick test_string_roundtrip;
        Alcotest.test_case "handle cache survives fork" `Quick
          test_cache_survives_fork;
        Alcotest.test_case "handle cache sibling isolation" `Quick
          test_cache_sibling_isolation;
        Alcotest.test_case "multi-page string ops" `Quick test_string_multi_page;
        Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolated;
        Alcotest.test_case "write_page" `Quick test_write_page;
        Alcotest.test_case "protection" `Quick test_protection;
        QCheck_alcotest.to_alcotest prop_byte_roundtrip;
        QCheck_alcotest.to_alcotest prop_fork_snapshot_semantics;
      ] );
  ]
