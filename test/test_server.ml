(* The deterministic overload-resilience server (lib/server).

   Covers: the circuit-breaker state machine (pure unit tests), the
   shedding and backoff policies, cross-runtime bit-identity of the
   whole serving pipeline (signatures, reports and per-request event
   logs), the no-mutation guarantee for deadline-expired requests, and
   crash-plan behavior under both containment (failover) and
   deterministic recovery (exactly-once resume). *)

module Runner = Rfdet_harness.Runner
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Engine = Rfdet_sim.Engine
module Fault_plan = Rfdet_fault.Fault_plan
module Server = Rfdet_server.Server
module Traffic = Rfdet_server.Traffic
module Kvstore = Rfdet_server.Kvstore
module Breaker = Rfdet_server.Resilience.Breaker
module Retry = Rfdet_server.Resilience.Retry
module Shed = Rfdet_server.Resilience.Shed

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)
(* ------------------------------------------------------------------ *)

let run_server ?faults ?(failure_mode = Engine.Contain)
    ?(runtime = Runner.rfdet_ci) ?(record_events = false) ?(seed = 7L) p =
  let report = ref None in
  let w =
    {
      Workload.name = "kvserver-test";
      suite = "server";
      description = "server test fixture";
      main = (fun _cfg () -> report := Some (Server.run ~record_events ~seed p));
    }
  in
  let r =
    Runner.run ~threads:p.Server.workers ?faults ~failure_mode runtime w
  in
  (r, Option.get !report)

(* a hot little configuration: heavily overloaded, small key space *)
let small =
  {
    Server.default with
    Server.traffic =
      {
        Traffic.default with
        Traffic.requests = 1_500;
        keys = 512;
        mean_interarrival = 60;
      };
  }

let conservation (rep : Server.report) =
  rep.Server.served + rep.Server.stale_served + rep.Server.shed
  + rep.Server.timed_out + rep.Server.failed + rep.Server.failed_over

(* ------------------------------------------------------------------ *)
(* Breaker state machine (pure)                                         *)
(* ------------------------------------------------------------------ *)

let test_breaker_opens () =
  let w = ref Breaker.empty in
  Alcotest.(check bool) "starts closed" true (Breaker.state !w = Breaker.Closed);
  for i = 1 to 4 do
    let w', t = Breaker.on_failure !w ~now:(100 * i) ~failure_threshold:5 in
    w := w';
    Alcotest.(check bool) "below threshold stays closed" false t
  done;
  Alcotest.(check int) "failure streak" 4 (Breaker.failures !w);
  let w', t = Breaker.on_failure !w ~now:500 ~failure_threshold:5 in
  Alcotest.(check bool) "threshold opens" true t;
  Alcotest.(check bool) "open" true (Breaker.state w' = Breaker.Open);
  Alcotest.(check int) "since records now" 500 (Breaker.since w');
  Alcotest.(check int) "one transition" 1 (Breaker.transitions w');
  (* a success while closed clears the streak *)
  let c = ref Breaker.empty in
  let c', _ = Breaker.on_failure !c ~now:1 ~failure_threshold:5 in
  let c', _ = Breaker.on_success c' ~now:2 ~half_open_successes:3 in
  Alcotest.(check int) "success clears streak" 0 (Breaker.failures c')

let test_breaker_half_open_cycle () =
  (* drive: closed -> open -> half-open -> closed, then a second
     open -> half-open -> reopen on a probe failure *)
  let w = ref Breaker.empty in
  for _ = 1 to 3 do
    let w', _ = Breaker.on_failure !w ~now:10 ~failure_threshold:3 in
    w := w'
  done;
  Alcotest.(check bool) "open" true (Breaker.state !w = Breaker.Open);
  let w', t = Breaker.tick !w ~now:100 ~cooldown:1_000 in
  Alcotest.(check bool) "cooldown not elapsed" false t;
  Alcotest.(check bool) "still open" true (Breaker.state w' = Breaker.Open);
  let w', t = Breaker.tick !w ~now:2_000 ~cooldown:1_000 in
  Alcotest.(check bool) "cooldown elapses" true t;
  Alcotest.(check bool) "half-open" true (Breaker.state w' = Breaker.Half_open);
  w := w';
  (* two probe successes close it (half_open_successes = 2) *)
  let w', t = Breaker.on_success !w ~now:2_100 ~half_open_successes:2 in
  Alcotest.(check bool) "first probe does not close" false t;
  let w', t = Breaker.on_success w' ~now:2_200 ~half_open_successes:2 in
  Alcotest.(check bool) "second probe closes" true t;
  Alcotest.(check bool) "closed again" true (Breaker.state w' = Breaker.Closed);
  (* reopen path: half-open + failure -> open immediately *)
  let w = ref w' in
  for _ = 1 to 3 do
    let w', _ = Breaker.on_failure !w ~now:3_000 ~failure_threshold:3 in
    w := w'
  done;
  let w', _ = Breaker.tick !w ~now:5_000 ~cooldown:1_000 in
  let w', t = Breaker.on_failure w' ~now:5_100 ~failure_threshold:3 in
  Alcotest.(check bool) "probe failure reopens" true t;
  Alcotest.(check bool) "reopened" true (Breaker.state w' = Breaker.Open);
  Alcotest.(check int) "transitions counted" 6 (Breaker.transitions w')

let test_policies_deterministic () =
  (* backoff: pure function of its key, monotone in attempt *)
  let b0 = Retry.backoff ~seed:9L ~worker:1 ~seq:42 ~attempt:0 ~base:200 in
  let b0' = Retry.backoff ~seed:9L ~worker:1 ~seq:42 ~attempt:0 ~base:200 in
  Alcotest.(check int) "backoff replays" b0 b0';
  let b3 = Retry.backoff ~seed:9L ~worker:1 ~seq:42 ~attempt:3 ~base:200 in
  Alcotest.(check bool) "backoff grows" true (b3 > b0);
  Alcotest.(check bool) "attempt 0 >= base" true (b0 >= 200);
  (* shedding: hard edges plus a deterministic middle *)
  let d ~lag =
    Shed.decide ~seed:9L ~seq:42 ~lag ~soft:100 ~hard:200 ~drop_per_1000:1000
  in
  Alcotest.(check bool) "below soft admits" true (d ~lag:50 = Shed.Admit);
  Alcotest.(check bool) "above hard sheds" true (d ~lag:200 = Shed.Shed);
  Alcotest.(check bool) "middle is stable" true (d ~lag:150 = d ~lag:150)

let test_scatter_injective () =
  (* the rank->key scatter must be a permutation of [0, keys) for any
     key count, not just powers of two (where a plain multiplicative
     mod would already be one) *)
  List.iter
    (fun keys ->
      let image =
        List.init keys (Traffic.scatter ~keys)
        |> List.sort_uniq compare
      in
      Alcotest.(check int)
        (Printf.sprintf "keys=%d: permutation" keys)
        keys (List.length image);
      List.iter
        (fun k -> Alcotest.(check bool) "in range" true (k >= 0 && k < keys))
        image)
    [ 1; 2; 3; 7; 10; 96; 512; 1_000; 4_096; 6_000 ]

(* ------------------------------------------------------------------ *)
(* Cross-runtime bit-identity (fault-free)                              *)
(* ------------------------------------------------------------------ *)

let dmt_runtimes =
  [
    ("rfdet-ci", Runner.rfdet_ci); ("kendo", Runner.Kendo);
    ("dthreads", Runner.Dthreads); ("coredet", Runner.Coredet);
  ]

let test_cross_runtime_identity () =
  let runs =
    List.map
      (fun (name, rt) ->
        (name, run_server ~runtime:rt ~record_events:true small))
      dmt_runtimes
  in
  let _, (r0, rep0) = List.hd runs in
  Alcotest.(check bool) "overload exercises the breaker" true
    (rep0.Server.breaker_transitions > 0 && rep0.Server.stale_served > 0
   && rep0.Server.shed > 0 && rep0.Server.timed_out > 0);
  Alcotest.(check int) "conservation" rep0.Server.total (conservation rep0);
  List.iter
    (fun (name, (r, rep)) ->
      Alcotest.(check string)
        (name ^ ": signature") r0.Runner.signature r.Runner.signature;
      Alcotest.(check int)
        (name ^ ": served") rep0.Server.served rep.Server.served;
      Alcotest.(check int)
        (name ^ ": breaker transitions")
        rep0.Server.breaker_transitions rep.Server.breaker_transitions;
      Alcotest.(check (list (pair int int)))
        (name ^ ": latency histogram")
        rep0.Server.latency.Rfdet_obs.Metrics.buckets
        rep.Server.latency.Rfdet_obs.Metrics.buckets;
      Alcotest.(check (array string))
        (name ^ ": shed/retry/breaker event sequences")
        rep0.Server.events rep.Server.events)
    (List.tl runs);
  (* different traffic seed, different behavior (sanity) *)
  let _, rep_b = run_server ~seed:8L small in
  Alcotest.(check bool) "seed matters" true
    (rep_b.Server.event_digest <> rep0.Server.event_digest)

(* ------------------------------------------------------------------ *)
(* Deadlines never mutate the table                                     *)
(* ------------------------------------------------------------------ *)

let test_expired_never_mutates () =
  (* deadline 0: every admitted request is already expired, so nothing
     may ever reach the table — the checksum must equal the virgin
     table's.  All-put traffic makes any violation visible. *)
  let p =
    {
      small with
      Server.deadline = 0;
      drop_per_1000 = 0;
      soft_lag = max_int / 2;
      hard_lag = max_int / 2;
      traffic = { small.Server.traffic with Traffic.get_per_1000 = 0 };
    }
  in
  let _, rep = run_server p in
  Alcotest.(check int) "nothing served" 0 rep.Server.served;
  let virgin = ref 0 in
  for _ = 1 to p.Server.traffic.Traffic.keys do
    virgin := Kvstore.mix !virgin 0
  done;
  Alcotest.(check int) "table untouched" !virgin rep.Server.checksum;
  Alcotest.(check int) "conservation" rep.Server.total (conservation rep)

(* ------------------------------------------------------------------ *)
(* Crash plans: containment failover and exactly-once recovery          *)
(* ------------------------------------------------------------------ *)

let plan_of s =
  match Fault_plan.parse s with Ok p -> p | Error e -> failwith e

(* One crash site per window of the request commit protocol: before the
   stripe lock (op=lock), after the serve but before the breaker publish
   (op=unlock, which also poisons the held lock), at the table/journal/
   breaker stores (op=store), at the virtual-clock mirror (op=compute)
   and at the progress-word commit itself (op=atomic).  Exactly-once
   must hold at every one of them: a replayed request may never
   double-mix the response digest or re-apply a breaker update. *)
let crash_sites =
  [
    "crash,tid=2,op=lock,n=25"; "crash,tid=2,op=unlock,n=25";
    "crash,tid=2,op=store,n=40"; "crash,tid=2,op=compute,n=10";
    "crash,tid=2,op=atomic,n=30";
  ]

let test_contain_failover () =
  List.iter
    (fun site ->
      (* op=unlock crashes while the stripe lock is held, so the drain
         must heal a poisoned lock; op=lock crashes with it free *)
      let faults = plan_of site in
      let r1, rep1 =
        run_server ~faults ~failure_mode:Engine.Contain small
      in
      let r2, rep2 =
        run_server ~faults ~failure_mode:Engine.Contain small
      in
      Alcotest.(check bool) (site ^ ": worker crashed") true
        (r1.Runner.crashes <> []);
      Alcotest.(check bool) (site ^ ": failover drained the dead worker")
        true
        (rep1.Server.failed_over > 0);
      Alcotest.(check int) (site ^ ": conservation under failover")
        rep1.Server.total (conservation rep1);
      Alcotest.(check string) (site ^ ": same plan, same signature")
        r1.Runner.signature r2.Runner.signature;
      Alcotest.(check int) (site ^ ": same plan, same failover")
        rep1.Server.failed_over rep2.Server.failed_over;
      Alcotest.(check int) (site ^ ": same plan, same table")
        rep1.Server.checksum rep2.Server.checksum;
      Alcotest.(check int) (site ^ ": same plan, same digest")
        rep1.Server.digest rep2.Server.digest)
    [ "crash,tid=2,op=lock,n=25"; "crash,tid=2,op=unlock,n=25" ]

let test_recover_exactly_once () =
  let clean, rep_clean = run_server small in
  List.iter
    (fun site ->
      let faults = plan_of site in
      let r1, rep1 =
        run_server ~faults ~failure_mode:Engine.Recover small
      in
      let r2, _rep2 =
        run_server ~faults ~failure_mode:Engine.Recover small
      in
      let check msg = Alcotest.(check int) (site ^ ": " ^ msg) in
      Alcotest.(check int) (site ^ ": restart happened") 1
        r1.Runner.profile.Rfdet_sim.Profile.restarts;
      Alcotest.(check string) (site ^ ": recovery is deterministic")
        r1.Runner.signature r2.Runner.signature;
      (* the resumed worker skips committed requests and replays the
         rest: every counter and digest must match the fault-free run *)
      check "served exactly once" rep_clean.Server.served rep1.Server.served;
      check "retries match" rep_clean.Server.retries rep1.Server.retries;
      check "no failover needed" 0 rep1.Server.failed_over;
      check "table matches fault-free" rep_clean.Server.checksum
        rep1.Server.checksum;
      check "digest matches fault-free" rep_clean.Server.digest
        rep1.Server.digest;
      check "breaker transitions match fault-free"
        rep_clean.Server.breaker_transitions rep1.Server.breaker_transitions;
      check "event stream matches fault-free" rep_clean.Server.event_digest
        rep1.Server.event_digest;
      Alcotest.(check string) (site ^ ": outputs checksum matches fault-free")
        clean.Runner.output_checksum r1.Runner.output_checksum)
    crash_sites

(* ------------------------------------------------------------------ *)
(* Registry integration                                                 *)
(* ------------------------------------------------------------------ *)

let test_registered () =
  let w = Registry.find "kvserver" in
  Alcotest.(check string) "suite" "server" w.Workload.suite;
  let in_set set = List.exists (fun x -> x.Workload.name = "kvserver") set in
  Alcotest.(check bool) "not in table1" false (in_set Registry.table1);
  Alcotest.(check bool) "not in figure8" false (in_set Registry.figure8);
  (* profile counters flow through Op.Server_mark *)
  let r = Runner.run ~threads:4 ~scale:0.25 Runner.rfdet_ci w in
  let p = r.Runner.profile in
  Alcotest.(check bool) "served counted" true
    (p.Rfdet_sim.Profile.requests_served > 0);
  Alcotest.(check bool) "shed counted" true
    (p.Rfdet_sim.Profile.requests_shed > 0)

let suites =
  [
    ( "server",
      [
        Alcotest.test_case "breaker opens at threshold" `Quick
          test_breaker_opens;
        Alcotest.test_case "breaker half-open reclose/reopen" `Quick
          test_breaker_half_open_cycle;
        Alcotest.test_case "backoff and shedding deterministic" `Quick
          test_policies_deterministic;
        Alcotest.test_case "rank scatter is a permutation" `Quick
          test_scatter_injective;
        Alcotest.test_case "cross-runtime bit-identity" `Quick
          test_cross_runtime_identity;
        Alcotest.test_case "expired requests never mutate" `Quick
          test_expired_never_mutates;
        Alcotest.test_case "containment failover" `Quick test_contain_failover;
        Alcotest.test_case "recovery is exactly-once" `Quick
          test_recover_exactly_once;
        Alcotest.test_case "registry integration" `Quick test_registered;
      ] );
  ]
