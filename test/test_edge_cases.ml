(* Directed edge cases across the trickier synchronization and memory
   paths, exercised under the strong-DMT runtimes. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Options = Rfdet_core.Options

let base = Layout.globals_base

let dmt_policies () =
  [
    ("rfdet-ci", Rfdet_core.Rfdet_runtime.make ~opts:Options.ci);
    ("rfdet-pf", Rfdet_core.Rfdet_runtime.make ~opts:Options.pf);
    ("dthreads", Rfdet_baselines.Dthreads_runtime.make);
    ("coredet", Rfdet_baselines.Coredet_runtime.make ?quantum:None);
    ("dlrc-model", Rfdet_core.Dlrc_model.make);
  ]

let run ?(seed = 1L) ?(jitter = 0.) policy main =
  Engine.run
    ~config:{ Engine.default_config with seed; jitter_mean = jitter }
    policy ~main

let for_all_dmt name main expected =
  List.iter
    (fun (label, policy) ->
      let r = run policy main in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" label name)
        true
        (List.map snd r.Engine.outputs = expected))
    (dmt_policies ())

(* --- nested and overlapping locks ------------------------------------ *)

let test_nested_locks () =
  let main () =
    let m1 = Api.mutex_create () in
    let m2 = Api.mutex_create () in
    let body k () =
      for _ = 1 to 10 do
        Api.with_lock m1 (fun () ->
            Api.with_lock m2 (fun () ->
                Api.store base (Api.load base + k)))
      done
    in
    let a = Api.spawn (body 1) and b = Api.spawn (body 100) in
    Api.join a;
    Api.join b;
    Api.output_int (Api.load base)
  in
  for_all_dmt "nested locks sum" main [ 1010L ]

let test_hand_over_hand () =
  (* lock-coupling through a 4-lock chain *)
  let main () =
    let locks = Array.init 4 (fun _ -> Api.mutex_create ()) in
    let body k () =
      Api.lock locks.(0);
      for i = 0 to 3 do
        Api.store (base + (8 * i)) (Api.load (base + (8 * i)) + k);
        if i < 3 then Api.lock locks.(i + 1);
        Api.unlock locks.(i)
      done
    in
    let a = Api.spawn (body 3) and b = Api.spawn (body 5) in
    Api.join a;
    Api.join b;
    let s = ref 0 in
    for i = 0 to 3 do
      s := !s + Api.load (base + (8 * i))
    done;
    Api.output_int !s
  in
  for_all_dmt "hand-over-hand" main [ 32L ]

(* --- condition variables --------------------------------------------- *)

let test_two_conds_one_mutex () =
  (* bounded buffer of size 1 with separate not_empty/not_full conds *)
  let main () =
    let m = Api.mutex_create () in
    let not_empty = Api.cond_create () in
    let not_full = Api.cond_create () in
    let slot = base and count = base + 8 and sum = base + 16 in
    let items = 25 in
    let producer =
      Api.spawn (fun () ->
          for i = 1 to items do
            Api.lock m;
            while Api.load count = 1 do
              Api.cond_wait not_full m
            done;
            Api.store slot (i * 3);
            Api.store count 1;
            Api.cond_signal not_empty;
            Api.unlock m
          done)
    in
    let consumer =
      Api.spawn (fun () ->
          for _ = 1 to items do
            Api.lock m;
            while Api.load count = 0 do
              Api.cond_wait not_empty m
            done;
            Api.store sum (Api.load sum + Api.load slot);
            Api.store count 0;
            Api.cond_signal not_full;
            Api.unlock m
          done)
    in
    Api.join producer;
    Api.join consumer;
    Api.output_int (Api.load sum)
  in
  let expected = Int64.of_int (3 * 25 * 26 / 2) in
  for_all_dmt "1-slot bounded buffer" main [ expected ]

let test_signal_no_waiter_is_lost () =
  (* pthreads semantics: a signal with no waiter does nothing *)
  let main () =
    let m = Api.mutex_create () in
    let c = Api.cond_create () in
    Api.lock m;
    Api.cond_signal c;
    (* lost *)
    Api.unlock m;
    let waiter =
      Api.spawn (fun () ->
          Api.lock m;
          (* must block until the later signal, not the lost one *)
          while Api.load base = 0 do
            Api.cond_wait c m
          done;
          Api.unlock m;
          Api.output_int 1)
    in
    Api.tick 50_000;
    Api.lock m;
    Api.store base 1;
    Api.cond_signal c;
    Api.unlock m;
    Api.join waiter
  in
  for_all_dmt "lost signal" main [ 1L ]

(* --- barriers ---------------------------------------------------------- *)

let test_barrier_reuse () =
  (* the same barrier used across many rounds (generation handling) *)
  let main () =
    let b = Api.barrier_create 3 in
    let rounds = 8 in
    let body k () =
      for r = 1 to rounds do
        Api.store (base + (8 * k)) ((r * 10) + k);
        Api.barrier_wait b;
        (* read everyone's value for this round *)
        let s =
          Api.load base + Api.load (base + 8) + Api.load (base + 16)
        in
        Api.store (base + 64 + (8 * k)) s;
        Api.barrier_wait b
      done
    in
    let t1 = Api.spawn (body 0) and t2 = Api.spawn (body 1) in
    let t3 = Api.spawn (body 2) in
    Api.join t1;
    Api.join t2;
    Api.join t3;
    for k = 0 to 2 do
      Api.output_int (Api.load (base + 64 + (8 * k)))
    done
  in
  (* final round r=8: values 80, 81, 82 -> each sum 243 *)
  for_all_dmt "barrier reuse" main [ 243L; 243L; 243L ]

(* --- thread trees ------------------------------------------------------ *)

let test_nested_spawn_tree () =
  (* threads spawning threads: memory inheritance and join chains *)
  let main () =
    let leaf k () = Api.store (base + (8 * k)) (k * k) in
    let mid k () =
      let a = Api.spawn (leaf (2 * k)) in
      let b = Api.spawn (leaf ((2 * k) + 1)) in
      Api.join a;
      Api.join b
    in
    let m1 = Api.spawn (mid 1) and m2 = Api.spawn (mid 2) in
    Api.join m1;
    Api.join m2;
    let s = ref 0 in
    for k = 2 to 5 do
      s := !s + Api.load (base + (8 * k))
    done;
    Api.output_int !s
  in
  (* 4 + 9 + 16 + 25 = 54 *)
  for_all_dmt "spawn tree" main [ 54L ]

let test_many_threads () =
  (* a wide fork/join at the vector-clock capacity margin *)
  let main () =
    let n = 40 in
    let tids =
      List.init n (fun k ->
          Api.spawn (fun () -> Api.store (base + (8 * k)) (k + 1)))
    in
    List.iter Api.join tids;
    let s = ref 0 in
    for k = 0 to n - 1 do
      s := !s + Api.load (base + (8 * k))
    done;
    Api.output_int !s
  in
  for_all_dmt "40-thread fan-out" main [ 820L ]

(* --- memory edge cases ------------------------------------------------- *)

let test_cross_page_word_propagation () =
  (* a 64-bit store straddling a page boundary must propagate whole *)
  let main () =
    let addr = base + (4096 - (base mod 4096)) - 3 in
    (* 5 bytes in one page, 3 in the next *)
    let m = Api.mutex_create () in
    let writer =
      Api.spawn (fun () ->
          Api.with_lock m (fun () -> Api.store addr 0x1122334455667788))
    in
    let reader =
      Api.spawn (fun () ->
          Api.tick 100_000;
          Api.with_lock m (fun () -> Api.output_int (Api.load addr)))
    in
    Api.join writer;
    Api.join reader
  in
  for_all_dmt "cross-page word" main [ 0x1122334455667788L ]

let test_malloc_free_recycling_under_isolation () =
  (* free + realloc of the same address across threads, with the
     allocator in shared metadata: no aliasing surprises *)
  let main () =
    let m = Api.mutex_create () in
    let p = Api.malloc 64 in
    Api.with_lock m (fun () -> Api.store p 7);
    let worker =
      Api.spawn (fun () ->
          Api.tick 50_000;
          Api.with_lock m (fun () ->
              Api.output_int (Api.load p);
              Api.free p;
              let q = Api.malloc 64 in
              Api.store q 9;
              Api.output_int (if q = p then 1 else 0)))
    in
    Api.join worker;
    Api.with_lock m (fun () -> Api.output_int (Api.load p))
  in
  (* outputs group by tid: main's (tid 0) final read comes first *)
  for_all_dmt "malloc recycling" main [ 9L; 7L; 1L ]

let test_gc_under_pressure_all_runtimes_agree () =
  (* rfdet with constantly-firing GC still equals the model *)
  let main () =
    let m = Api.mutex_create () in
    let body k () =
      for i = 1 to 60 do
        Api.with_lock m (fun () ->
            Api.store (base + (8 * ((i + k) mod 16))) (i * k))
      done
    in
    let a = Api.spawn (body 1) and b = Api.spawn (body 2) in
    Api.join a;
    Api.join b;
    for i = 0 to 15 do
      Api.output_int (Api.load (base + (8 * i)))
    done
  in
  let tiny =
    { Options.ci with metadata_capacity = 2048; gc_threshold = 0.4 }
  in
  let a = run (Rfdet_core.Rfdet_runtime.make ~opts:tiny) main in
  let b = run Rfdet_core.Dlrc_model.make main in
  Alcotest.(check bool) "gc-pressured rfdet equals model" true
    (a.Engine.outputs = b.Engine.outputs)

(* --- degenerate schedules --------------------------------------------- *)

let test_single_thread_run () =
  (* no spawns at all: sync ops still work with nobody to synchronize
     with, including under the pre-fork monitoring exemption *)
  let main () =
    let m = Api.mutex_create () in
    Api.with_lock m (fun () -> Api.store base 5);
    Api.with_lock m (fun () -> Api.store base (Api.load base * 3));
    Api.output_int (Api.load base)
  in
  for_all_dmt "single-thread run" main [ 15L ]

let test_zero_iteration_workers () =
  (* workers whose loops run zero times: spawn, exit and join with no
     slice content worth propagating *)
  let iterations = 0 in
  let main () =
    let m = Api.mutex_create () in
    let body () =
      for _ = 1 to iterations do
        Api.with_lock m (fun () -> Api.store base (Api.load base + 1))
      done
    in
    let a = Api.spawn body and b = Api.spawn body in
    Api.join a;
    Api.join b;
    Api.output_int (Api.load base)
  in
  for_all_dmt "zero-iteration workers" main [ 0L ]

let test_exit_holding_lock_uncontended () =
  (* a thread exits while holding a lock; nobody contends for it, and
     the exit flush must still publish the store to the joiner *)
  let main () =
    let m = Api.mutex_create () in
    let t =
      Api.spawn (fun () ->
          Api.lock m;
          Api.store base 7)
    in
    Api.join t;
    Api.output_int (Api.load base)
  in
  for_all_dmt "exit holding lock (uncontended)" main [ 7L ]

let test_exit_holding_lock_contended_deadlocks () =
  (* pthreads semantics: the mutex stays locked forever, so a later
     lock attempt deadlocks — identically under every runtime *)
  let main () =
    let m = Api.mutex_create () in
    let t =
      Api.spawn (fun () ->
          Api.lock m;
          Api.store base 7)
    in
    Api.join t;
    Api.lock m;
    Api.output_int (Api.load base)
  in
  List.iter
    (fun (label, policy) ->
      match run policy main with
      | _ -> Alcotest.fail (label ^ ": expected a deadlock")
      | exception Engine.Deadlock _ -> ())
    (dmt_policies ())

let test_micros_one_thread_all_runtimes_agree () =
  (* the exploration micros in their degenerate 1-thread configuration:
     every strongly deterministic runtime must compute the same thing *)
  let module Runner = Rfdet_harness.Runner in
  List.iter
    (fun wl ->
      let sigs =
        List.map
          (fun rt -> (Runner.run ~threads:1 rt wl).Runner.signature)
          [ Runner.rfdet_ci; Runner.rfdet_pf; Runner.Coredet; Runner.Dthreads ]
      in
      match sigs with
      | [] -> ()
      | s0 :: _ ->
        Alcotest.(check bool)
          (wl.Rfdet_workloads.Workload.name ^ ": runtimes agree at 1 thread")
          true
          (List.for_all (String.equal s0) sigs))
    Rfdet_workloads.Registry.micro

(* --- primitive edge schedules (rwlock / sem / deque / condvar) -------- *)

let test_rwlock_writer_preference_mid_batch () =
  (* a reader holds the lock, a writer queues, then a later reader
     arrives: the reader must queue BEHIND the writer (stamp-ordered
     writer preference), so it observes the writer's store *)
  let main () =
    let rw = Api.rwlock_create () in
    let cell = base and early = base + 8 and late = base + 16 in
    let r1 =
      Api.spawn (fun () ->
          Api.tick 10;
          Api.with_rdlock rw (fun () ->
              Api.tick 50_000;
              Api.store early (Api.load cell + 1)))
    in
    let w =
      Api.spawn (fun () ->
          Api.tick 10_000;
          Api.with_wrlock rw (fun () -> Api.store cell 9))
    in
    let r3 =
      Api.spawn (fun () ->
          Api.tick 20_000;
          Api.with_rdlock rw (fun () -> Api.store late (Api.load cell + 1)))
    in
    Api.join r1;
    Api.join w;
    Api.join r3;
    Api.output_int (Api.load early);
    Api.output_int (Api.load late)
  in
  (* early reader saw 0 (+1), late reader queued behind the writer: 9+1 *)
  for_all_dmt "writer preference mid-batch" main [ 1L; 10L ]

let zero_permit_main () =
  (* sem_create 0 as a rendezvous: every acquire blocks until a post
     hands it a permit directly *)
  let s = Api.sem_create 0 in
  let idx = base and log = base + 8 in
  let waiter (gap, id) () =
    Api.tick gap;
    Api.sem_acquire s;
    let i = Api.atomic_fetch_add idx 1 in
    Api.store (log + (8 * i)) id
  in
  let tids =
    List.map (fun g -> Api.spawn (waiter g))
      [ (3000, 30); (1000, 10); (2000, 20) ]
  in
  for _ = 1 to 3 do
    Api.tick 50_000;
    Api.sem_post s
  done;
  List.iter Api.join tids;
  for i = 0 to 2 do
    Api.output_int (Api.load (log + (8 * i)))
  done

let test_zero_permit_sem_rendezvous () =
  (* every runtime serves all three waiters exactly once (conservation);
     the grant ORDER is the runtime's admission policy — dthreads and
     coredet hand out permits in token order, kendo and rfdet by stamp *)
  List.iter
    (fun (label, policy) ->
      let r = run policy zero_permit_main in
      let served =
        List.map (fun (_, v) -> Int64.to_int v) r.Engine.outputs
        |> List.sort compare
      in
      Alcotest.(check (list int))
        (label ^ ": all three served once") [ 10; 20; 30 ] served)
    (dmt_policies ());
  (* stamp-ordered runtimes grant lowest wait stamp first, post by post *)
  List.iter
    (fun (label, policy) ->
      let r = run policy zero_permit_main in
      Alcotest.(check (list (pair int int64)))
        (label ^ ": grants in stamp order")
        [ (0, 10L); (0, 20L); (0, 30L) ]
        r.Engine.outputs)
    [
      ("kendo", Rfdet_baselines.Kendo_runtime.make);
      ("rfdet-ci", Rfdet_core.Rfdet_runtime.make ~opts:Options.ci);
    ]

let test_steal_after_owner_exit_holding_lock () =
  (* the owner dies a NORMAL exit while holding an unrelated mutex; its
     deque is not poisoned, and queued work stays stealable *)
  let main () =
    let m = Api.mutex_create () in
    let dw = base and sum = base + 8 in
    let owner =
      Api.spawn (fun () ->
          let d = Api.deque_create () in
          Api.store dw (d :> int);
          for i = 1 to 4 do
            Api.deque_push d (10 * i)
          done;
          Api.lock m
          (* exit without unlocking *))
    in
    Api.join owner;
    let thief =
      Api.spawn (fun () ->
          let rec go acc =
            match Api.deque_steal () with
            | `Item v -> go (acc + v)
            | `Empty -> acc
          in
          Api.store sum (go 0))
    in
    Api.join thief;
    Api.output_int (Api.load sum)
  in
  for_all_dmt "steal after owner exit" main [ 100L ]

let fault_plan s =
  match Rfdet_fault.Fault_plan.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

(* Three waiters park on one condvar; tid 2 is crashed at its first cond
   operation (the wait itself) and the broadcast races the containment.
   Survivors must wake normally and the outcome must be deterministic. *)
let broadcast_crash_workload =
  {
    Rfdet_workloads.Workload.name = "broadcast-vs-crash";
    suite = "test";
    description = "broadcast racing a crashing waiter";
    main =
      (fun _cfg () ->
        let flag = base and slots = base + 8 in
        let m = Api.mutex_create () in
        let c = Api.cond_create () in
        let waiter k () =
          Api.tick (1000 * k);
          Api.lock m;
          while Api.load flag = 0 do
            Api.cond_wait c m
          done;
          Api.unlock m;
          Api.store (slots + (8 * k)) 1
        in
        let tids = List.map (fun k -> Api.spawn (waiter k)) [ 1; 2; 3 ] in
        Api.tick 50_000;
        Api.lock m;
        Api.store flag 1;
        Api.cond_broadcast c;
        Api.unlock m;
        let crashed =
          List.fold_left
            (fun n t ->
              match Api.join_check t with `Ok -> n | `Crashed -> n + 1)
            0 tids
        in
        Api.output_int crashed;
        for k = 1 to 3 do
          Api.output_int (Api.load (slots + (8 * k)))
        done);
  }

let test_broadcast_racing_crashing_waiter_contained () =
  let module Runner = Rfdet_harness.Runner in
  let faults = fault_plan "crash,tid=2,op=cond,n=1" in
  let r = Runner.run ~faults ~failure_mode:Engine.Contain Runner.rfdet_ci
      broadcast_crash_workload
  in
  Alcotest.(check (list (pair int int64)))
    "one crash, survivors woke"
    [ (0, 1L); (0, 1L); (0, 0L); (0, 1L) ]
    r.Runner.outputs;
  (* and the contained outcome is schedule-deterministic *)
  let d =
    Rfdet_harness.Determinism.check_faults ~threads:3 ~runs:6 ~jitter:0.
      ~plan:faults Runner.rfdet_ci broadcast_crash_workload
  in
  Alcotest.(check bool) "deterministic" true
    (fst d).Rfdet_harness.Determinism.deterministic

let test_broadcast_racing_crashing_waiter_recovered () =
  let module Runner = Rfdet_harness.Runner in
  let faults = fault_plan "crash,tid=2,op=cond,n=1" in
  let r = Runner.run ~faults ~failure_mode:Engine.Recover Runner.rfdet_ci
      broadcast_crash_workload
  in
  Alcotest.(check (list (pair int int64)))
    "restarted waiter completed too"
    [ (0, 0L); (0, 1L); (0, 1L); (0, 1L) ]
    r.Runner.outputs;
  Alcotest.(check bool) "a restart happened" true
    (r.Runner.profile.Rfdet_sim.Profile.restarts >= 1)

let suites =
  [
    ( "edge-cases",
      [
        Alcotest.test_case "nested locks" `Quick test_nested_locks;
        Alcotest.test_case "hand-over-hand locking" `Quick test_hand_over_hand;
        Alcotest.test_case "two conds, one mutex" `Quick
          test_two_conds_one_mutex;
        Alcotest.test_case "lost signal" `Quick test_signal_no_waiter_is_lost;
        Alcotest.test_case "barrier reuse" `Quick test_barrier_reuse;
        Alcotest.test_case "nested spawn tree" `Quick test_nested_spawn_tree;
        Alcotest.test_case "40-thread fan-out" `Quick test_many_threads;
        Alcotest.test_case "cross-page word propagation" `Quick
          test_cross_page_word_propagation;
        Alcotest.test_case "malloc recycling" `Quick
          test_malloc_free_recycling_under_isolation;
        Alcotest.test_case "GC pressure vs model" `Quick
          test_gc_under_pressure_all_runtimes_agree;
        Alcotest.test_case "single-thread run" `Quick test_single_thread_run;
        Alcotest.test_case "zero-iteration workers" `Quick
          test_zero_iteration_workers;
        Alcotest.test_case "exit holding lock (uncontended)" `Quick
          test_exit_holding_lock_uncontended;
        Alcotest.test_case "exit holding lock (contended) deadlocks" `Quick
          test_exit_holding_lock_contended_deadlocks;
        Alcotest.test_case "micros at 1 thread, all runtimes" `Quick
          test_micros_one_thread_all_runtimes_agree;
        Alcotest.test_case "rwlock writer preference mid-batch" `Quick
          test_rwlock_writer_preference_mid_batch;
        Alcotest.test_case "zero-permit semaphore rendezvous" `Quick
          test_zero_permit_sem_rendezvous;
        Alcotest.test_case "steal after owner exit holding a lock" `Quick
          test_steal_after_owner_exit_holding_lock;
        Alcotest.test_case "broadcast vs crashing waiter (contain)" `Quick
          test_broadcast_racing_crashing_waiter_contained;
        Alcotest.test_case "broadcast vs crashing waiter (recover)" `Quick
          test_broadcast_racing_crashing_waiter_recovered;
      ] );
  ]
