(* Fault injection and crash containment (ISSUE: robustness).

   The acceptance properties:
   (a) a fixed seed + fault plan gives byte-identical signatures —
       crash outcomes included — across scheduling jitter;
   (b) a thread crashed mid-slice never leaks uncommitted writes;
   (c) a mutex poisoned by a crash is handed to the deterministically
       next waiter and the program terminates. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Op = Rfdet_sim.Op
module Layout = Rfdet_mem.Layout
module Fault_plan = Rfdet_fault.Fault_plan
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry

let plan s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

let workload name main =
  { Workload.name; suite = "test"; description = name; main = (fun _cfg -> main) }

let racey =
  List.find (fun w -> w.Workload.name = "racey") Registry.all

(* --- plan syntax and the injector ---------------------------------- *)

let test_parse_roundtrip () =
  let s = "crash,tid=2,op=lock,n=3;fail,tid=*,op=malloc,n=5;delay=500,tid=1,op=unlock,n=2" in
  let p = plan s in
  Alcotest.(check string) "round trip" s (Fault_plan.to_string p);
  Alcotest.(check bool) "reparse" true (Fault_plan.parse (Fault_plan.to_string p) = Ok p)

let test_parse_errors () =
  let bad s =
    match Fault_plan.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown action" true (bad "explode,tid=1");
  Alcotest.(check bool) "unknown op class" true (bad "crash,op=nosuch");
  Alcotest.(check bool) "bad count" true (bad "crash,n=0");
  Alcotest.(check bool) "bad delay" true (bad "delay=x");
  Alcotest.(check bool) "empty" true (bad "")

let test_injector_counts_per_thread () =
  let inj =
    Fault_plan.injector
      [ { Fault_plan.tid = Some 2; op = Fault_plan.Lock_op; nth = 3;
          action = Fault_plan.Crash } ]
  in
  (* Another thread's locks never advance the count. *)
  Alcotest.(check bool) "other tid" true (inj ~tid:1 (Op.Lock 1) = Engine.I_none);
  Alcotest.(check bool) "1st" true (inj ~tid:2 (Op.Lock 1) = Engine.I_none);
  Alcotest.(check bool) "wrong class" true (inj ~tid:2 (Op.Unlock 1) = Engine.I_none);
  Alcotest.(check bool) "2nd" true (inj ~tid:2 (Op.Lock 1) = Engine.I_none);
  Alcotest.(check bool) "3rd fires" true (inj ~tid:2 (Op.Lock 1) = Engine.I_crash);
  (* One-shot: the site never fires again. *)
  Alcotest.(check bool) "4th" true (inj ~tid:2 (Op.Lock 1) = Engine.I_none)

let test_random_plan_seeded () =
  let p1 = Fault_plan.random ~seed:7L ~tids:[ 1; 2; 3 ] ~sites:5 in
  let p2 = Fault_plan.random ~seed:7L ~tids:[ 1; 2; 3 ] ~sites:5 in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "all sites tid-qualified" true
    (List.for_all (fun s -> s.Fault_plan.tid <> None) p1)

(* --- fail and delay injections -------------------------------------- *)

let test_fail_malloc_returns_null () =
  let w =
    workload "fail-malloc" (fun () ->
        Api.output_int (Api.malloc 64);
        Api.output_int (if Api.malloc 64 <> 0 then 1 else 0))
  in
  let r = Runner.run ~faults:(plan "fail,op=malloc,n=1") Runner.rfdet_ci w in
  Alcotest.(check bool) "1st malloc null, 2nd succeeds" true
    (r.Runner.outputs = [ (0, 0L); (0, 1L) ]);
  Alcotest.(check bool) "no crash" true (r.Runner.crashes = [])

let test_fail_raises_recoverable () =
  (* A failed operation raises [Injected_fault] at the call site inside
     the thread, which may catch it and keep going — an error, not a
     crash. *)
  let w =
    workload "fail-store" (fun () ->
        (try Api.store Layout.globals_base 1
         with Engine.Injected_fault -> Api.output_int 77);
        Api.output_int (Api.load Layout.globals_base))
  in
  let r = Runner.run ~faults:(plan "fail,tid=0,op=store,n=1") Runner.rfdet_ci w in
  Alcotest.(check bool) "caught and continued" true
    (r.Runner.outputs = [ (0, 77L); (0, 0L) ]);
  Alcotest.(check bool) "no crash" true (r.Runner.crashes = [])

let test_fail_uncaught_is_contained () =
  (* Uncaught, the injected fault unwinds the fiber and the thread dies
     like any other raising thread: contained, recorded. *)
  let w =
    workload "fail-uncaught" (fun () ->
        let c = Api.spawn (fun () -> Api.store Layout.globals_base 1) in
        Api.output_int (match Api.join_check c with `Ok -> 0 | `Crashed -> 1))
  in
  let r = Runner.run ~faults:(plan "fail,tid=1,op=store,n=1") Runner.rfdet_ci w in
  Alcotest.(check bool) "joiner sees the crash" true
    (r.Runner.outputs = [ (0, 1L) ]);
  Alcotest.(check bool) "crash recorded for tid 1" true
    (match r.Runner.crashes with [ (1, _) ] -> true | _ -> false)

let test_delay_stalls_without_changing_results () =
  let w =
    workload "delay" (fun () ->
        let c = Api.spawn (fun () -> Api.output_int 5) in
        Api.join c;
        Api.output_int 6)
  in
  let clean = Runner.run Runner.rfdet_ci w in
  let delayed =
    Runner.run ~faults:(plan "delay=9000,tid=1,op=output,n=1") Runner.rfdet_ci w
  in
  Alcotest.(check bool) "same outputs" true
    (clean.Runner.outputs = delayed.Runner.outputs);
  Alcotest.(check bool) "no crash" true (delayed.Runner.crashes = []);
  (* The clean critical path overlaps the stalled chain by a few sync
     cycles, so the makespan grows by slightly less than the stall. *)
  Alcotest.(check bool) "makespan grew by roughly the stall" true
    (delayed.Runner.sim_time >= clean.Runner.sim_time + 8000)

(* --- crash containment ---------------------------------------------- *)

let test_abort_mode_unwinds () =
  let w =
    workload "abort" (fun () ->
        let c = Api.spawn (fun () -> Api.store Layout.globals_base 1) in
        Api.join c)
  in
  Alcotest.(check bool) "Thread_failure with the crashed tid" true
    (try
       ignore
         (Runner.run ~faults:(plan "crash,tid=1,op=store,n=1")
            ~failure_mode:Engine.Abort Runner.rfdet_ci w);
       false
     with Engine.Thread_failure (1, Engine.Injected_crash) -> true)

(* (b) A thread crashed mid-slice has published nothing since its last
   release point; its uncommitted writes must never propagate. *)
let crash_discards_main () =
  let addr = Layout.globals_base in
  let m = Api.mutex_create () in
  Api.store addr 7;
  let child =
    Api.spawn (fun () ->
        Api.lock m;
        Api.store addr 41;
        Api.store addr 42;
        (* the crash is injected at this unlock — before the release
           takes effect, so 41/42 die in the open slice *)
        Api.unlock m)
  in
  Api.output_int (match Api.join_check child with `Ok -> 0 | `Crashed -> 1);
  Api.output_int (match Api.lock_check m with `Ok -> 0 | `Poisoned -> 2);
  Api.output_int (Api.load addr);
  Api.unlock m

let test_crash_discards_uncommitted_writes () =
  let w = workload "discard" crash_discards_main in
  let check_runtime rt =
    let r = Runner.run ~faults:(plan "crash,tid=1,op=unlock,n=1") rt w in
    Alcotest.(check bool)
      (Runner.runtime_name rt ^ ": join=Crashed, lock=Poisoned, value intact")
      true
      (r.Runner.outputs = [ (0, 1L); (0, 2L); (0, 7L) ]);
    Alcotest.(check bool) "one crash, tid 1" true
      (match r.Runner.crashes with [ (1, _) ] -> true | _ -> false)
  in
  List.iter check_runtime [ Runner.rfdet_ci; Runner.rfdet_pf ]

(* (c) A crash while holding a mutex poisons it and hands it to the
   deterministically next waiter; the run terminates. *)
let poison_handoff_main () =
  let counter = Layout.globals_base + 8 in
  let m = Api.mutex_create () in
  let crasher =
    Api.spawn (fun () ->
        Api.lock m;
        Api.tick 2000;
        (* crash injected at this store, while holding m *)
        Api.store Layout.globals_base 1)
  in
  let waiter k () =
    Api.tick 500;
    (match Api.lock_check m with
    | `Poisoned ->
      (* acquisition order is observable: the first acquirer reads 0 *)
      let v = Api.load counter in
      Api.store counter (v + 1);
      Api.output_int ((100 * k) + v)
    | `Ok -> Api.output_int (-k));
    Api.unlock m
  in
  let w1 = Api.spawn (waiter 1) in
  let w2 = Api.spawn (waiter 2) in
  ignore (Api.join_check crasher);
  Api.join w1;
  Api.join w2;
  Api.output_int (Api.load Layout.globals_base)

let test_poisoned_mutex_next_waiter () =
  let w = workload "poison" poison_handoff_main in
  let p = plan "crash,tid=1,op=store,n=1" in
  let r = Runner.run ~faults:p Runner.rfdet_ci w in
  (* Both waiters observe the poison; waiter 1 (earlier Kendo stamp)
     acquires first; the crasher's store never lands. *)
  Alcotest.(check bool) "poisoned hand-off order" true
    (r.Runner.outputs = [ (0, 0L); (2, 100L); (3, 201L) ]);
  Alcotest.(check bool) "crash recorded" true
    (match r.Runner.crashes with [ (1, _) ] -> true | _ -> false);
  (* The same hand-off under scheduling jitter, for several seeds. *)
  let sig_of seed =
    let r =
      Runner.run ~faults:p ~sched_seed:seed ~jitter:10.0 Runner.rfdet_ci w
    in
    r.Runner.signature
  in
  let signatures = List.init 6 (fun i -> sig_of (Int64.of_int (i + 1))) in
  Alcotest.(check int) "jitter-independent hand-off" 1
    (List.length (List.sort_uniq compare signatures))

let test_barrier_breaks_on_party_crash () =
  (* Two children synchronize through a 2-party barrier; one crashes
     between rounds.  The survivor's next wait must fail with [`Broken]
     instead of hanging forever. *)
  let main () =
    let b = Api.barrier_create 2 in
    let body k () =
      (match Api.barrier_wait_check b with
      | `Ok -> Api.output_int (10 + k)
      | `Broken -> Api.output_int (20 + k));
      Api.tick 100;
      if k = 1 then Api.store Layout.globals_base 1;
      match Api.barrier_wait_check b with
      | `Ok -> Api.output_int (30 + k)
      | `Broken -> Api.output_int (40 + k)
    in
    let c1 = Api.spawn (body 1) in
    let c2 = Api.spawn (body 2) in
    ignore (Api.join_check c1);
    ignore (Api.join_check c2)
  in
  let w = workload "barrier-break" main in
  let r = Runner.run ~faults:(plan "crash,tid=1,op=store,n=1") Runner.rfdet_ci w in
  Alcotest.(check bool) "round 1 completes, round 2 breaks" true
    (r.Runner.outputs = [ (1, 11L); (2, 12L); (2, 42L) ]);
  Alcotest.(check bool) "crash recorded" true
    (match r.Runner.crashes with [ (1, _) ] -> true | _ -> false)

let test_contained_under_kendo () =
  (* Weak determinism contains crashes too: memory is shared (nothing to
     discard) but the sync layer still poisons and unblocks. *)
  let w = workload "kendo-contain" crash_discards_main in
  let r = Runner.run ~faults:(plan "crash,tid=1,op=unlock,n=1") Runner.Kendo w in
  (* Kendo shares memory, so the crashed thread's stores are visible:
     containment here is about liveness, not isolation. *)
  Alcotest.(check bool) "join=Crashed, lock=Poisoned" true
    (match r.Runner.outputs with
    | [ (0, 1L); (0, 2L); (0, v) ] -> v = 42L
    | _ -> false);
  Alcotest.(check bool) "crash recorded" true
    (match r.Runner.crashes with [ (1, _) ] -> true | _ -> false)

(* --- (a) fault determinism across jitter ----------------------------- *)

let test_fault_determinism_racey () =
  let p = plan "crash,tid=2,op=store,n=100" in
  let report, crashes =
    Determinism.check_faults ~threads:4 ~runs:12 ~jitter:12.0 ~plan:p
      Runner.rfdet_ci racey
  in
  Alcotest.(check bool) "12 jittered runs, one signature" true
    report.Determinism.deterministic;
  Alcotest.(check bool) "the crash happened" true
    (match crashes with [ (2, _) ] -> true | _ -> false);
  (* The crash is part of the observable behavior: a faulty run must
     not masquerade as a clean one. *)
  let clean = Runner.run ~threads:4 Runner.rfdet_ci racey in
  let faulty = Runner.run ~threads:4 ~faults:p Runner.rfdet_ci racey in
  Alcotest.(check bool) "signature differs from the clean run" true
    (clean.Runner.signature <> faulty.Runner.signature)

let test_signature_folds_crashes () =
  (* Two runs with identical outputs but different crash outcomes must
     have different signatures. *)
  let w =
    workload "sig" (fun () ->
        let c = Api.spawn (fun () -> Api.store Layout.globals_base 1) in
        ignore (Api.join_check c);
        Api.output_int 9)
  in
  let crash1 = Runner.run ~faults:(plan "crash,tid=1,op=store,n=1") Runner.rfdet_ci w in
  let clean = Runner.run Runner.rfdet_ci w in
  Alcotest.(check bool) "same outputs either way" true
    (clean.Runner.outputs = [ (0, 9L) ] && crash1.Runner.outputs = [ (0, 9L) ]);
  Alcotest.(check bool) "signatures differ" true
    (clean.Runner.signature <> crash1.Runner.signature)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "plan parse round-trip" `Quick test_parse_roundtrip;
        Alcotest.test_case "plan parse errors" `Quick test_parse_errors;
        Alcotest.test_case "injector per-thread counting" `Quick
          test_injector_counts_per_thread;
        Alcotest.test_case "seeded random plans" `Quick test_random_plan_seeded;
        Alcotest.test_case "fail: malloc returns null" `Quick
          test_fail_malloc_returns_null;
        Alcotest.test_case "fail: recoverable at call site" `Quick
          test_fail_raises_recoverable;
        Alcotest.test_case "fail: uncaught is contained" `Quick
          test_fail_uncaught_is_contained;
        Alcotest.test_case "delay: stalls, same results" `Quick
          test_delay_stalls_without_changing_results;
        Alcotest.test_case "abort mode unwinds" `Quick test_abort_mode_unwinds;
        Alcotest.test_case "crash discards uncommitted writes" `Quick
          test_crash_discards_uncommitted_writes;
        Alcotest.test_case "poisoned mutex to next waiter" `Quick
          test_poisoned_mutex_next_waiter;
        Alcotest.test_case "barrier breaks on party crash" `Quick
          test_barrier_breaks_on_party_crash;
        Alcotest.test_case "containment under kendo" `Quick
          test_contained_under_kendo;
        Alcotest.test_case "fault determinism (racey, jitter)" `Quick
          test_fault_determinism_racey;
        Alcotest.test_case "signature folds crashes" `Quick
          test_signature_folds_crashes;
      ] );
  ]
