open Rfdet_mem

let page_of_writes writes =
  let b = Bytes.make Page.size '\000' in
  List.iter (fun (off, v) -> Bytes.set b off (Char.chr (v land 0xff))) writes;
  b

let test_no_change () =
  let snap = Bytes.make Page.size 'a' in
  let cur = Bytes.copy snap in
  Alcotest.(check bool) "empty diff" true
    (Diff.is_empty (Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur))

let test_single_byte () =
  let snap = Bytes.make Page.size '\000' in
  let cur = Bytes.copy snap in
  Bytes.set cur 42 'Z';
  let d = Diff.diff_page ~page_id:3 ~snapshot:snap ~current:cur in
  Alcotest.(check int) "one run" 1 (Diff.run_count d);
  Alcotest.(check int) "one byte" 1 (Diff.byte_count d);
  match d with
  | [ { Diff.addr; data } ] ->
    Alcotest.(check int) "absolute addr" ((3 * Page.size) + 42) addr;
    Alcotest.(check string) "data" "Z" data
  | _ -> Alcotest.fail "expected a single run"

let test_runs_merged () =
  let snap = Bytes.make Page.size '\000' in
  let cur = Bytes.copy snap in
  (* Two adjacent changed bytes are one run; a gap splits runs. *)
  Bytes.set cur 10 'a';
  Bytes.set cur 11 'b';
  Bytes.set cur 13 'c';
  let d = Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur in
  Alcotest.(check int) "two runs" 2 (Diff.run_count d);
  Alcotest.(check int) "three bytes" 3 (Diff.byte_count d)

let test_redundant_write_invisible () =
  (* Overwriting a location with the value it already held produces no
     modification — the paper's Section 4.6 correctness case. *)
  let snap = Bytes.make Page.size '\000' in
  Bytes.set snap 5 'q';
  let cur = Bytes.copy snap in
  Bytes.set cur 5 'q';
  let d = Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur in
  Alcotest.(check bool) "redundant store dropped" true (Diff.is_empty d)

let test_apply_roundtrip () =
  let snap = page_of_writes [ (0, 1); (100, 2) ] in
  let cur = page_of_writes [ (0, 9); (100, 2); (200, 7) ] in
  let d = Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur in
  let s = Space.create () in
  Space.write_page s 0 snap;
  Diff.apply s d;
  for i = 0 to Page.size - 1 do
    if Space.load_byte s i <> Char.code (Bytes.get cur i) then
      Alcotest.failf "byte %d differs after apply" i
  done

let test_byte_merge_511 () =
  (* The paper's example: y=256 from one thread, y=255 from another,
     against initial y=0, merged at byte granularity gives 511. *)
  let initial = Bytes.make Page.size '\000' in
  (* Thread A writes the 32-bit value 256 at offset 0. *)
  let a = Bytes.copy initial in
  Bytes.set_int32_le a 0 256l;
  (* Thread B writes the 32-bit value 255 at offset 0. *)
  let b = Bytes.copy initial in
  Bytes.set_int32_le b 0 255l;
  let diff_a = Diff.diff_page ~page_id:0 ~snapshot:initial ~current:a in
  let diff_b = Diff.diff_page ~page_id:0 ~snapshot:initial ~current:b in
  (* B's memory receives A's (non-overlapping-byte) modification. *)
  let s = Space.create () in
  Space.write_page s 0 b;
  Diff.apply s diff_a;
  let merged =
    Space.load_byte s 0
    lor (Space.load_byte s 1 lsl 8)
    lor (Space.load_byte s 2 lsl 16)
    lor (Space.load_byte s 3 lsl 24)
  in
  Alcotest.(check int) "255 | 256 = 511" 511 merged;
  Alcotest.(check int) "A's diff touches byte 1 only" 1
    (Diff.byte_count diff_a);
  Alcotest.(check int) "B's diff touches byte 0 only" 1 (Diff.byte_count diff_b)

let test_pages_touched_and_restrict () =
  let runs =
    [
      { Diff.addr = 5; data = "ab" };
      { Diff.addr = Page.size + 1; data = "c" };
      { Diff.addr = 10; data = "d" };
    ]
  in
  Alcotest.(check (list int)) "pages" [ 0; 1 ] (Diff.pages_touched runs);
  Alcotest.(check int) "restrict page 0" 2
    (Diff.run_count (Diff.restrict_to_page runs 0));
  Alcotest.(check int) "restrict page 1" 1
    (Diff.run_count (Diff.restrict_to_page runs 1))

let test_size_validation () =
  Alcotest.check_raises "bad sizes"
    (Invalid_argument "Diff.diff_page: buffers must be page-sized") (fun () ->
      ignore
        (Diff.diff_page ~page_id:0 ~snapshot:(Bytes.create 3)
           ~current:(Bytes.create 3)))

let gen_page =
  (* Sparse random page contents: a few byte writes over zeros. *)
  QCheck2.Gen.(
    map page_of_writes
      (list_size (int_bound 40)
         (pair (int_bound (Page.size - 1)) (int_bound 255))))

let prop_diff_apply_roundtrip =
  QCheck2.Test.make ~name:"diff: apply (diff snap cur) snap == cur" ~count:200
    QCheck2.Gen.(pair gen_page gen_page)
    (fun (snap, cur) ->
      let d = Diff.diff_page ~page_id:2 ~snapshot:snap ~current:cur in
      let s = Space.create () in
      Space.write_page s 2 snap;
      Diff.apply s d;
      let ok = ref true in
      for i = 0 to Page.size - 1 do
        if Space.load_byte s ((2 * Page.size) + i) <> Char.code (Bytes.get cur i)
        then ok := false
      done;
      !ok)

(* The word-level fast path must be extensionally equal to the
   byte-at-a-time oracle: same runs, same boundaries, same data. *)
let check_same_as_bytewise ~msg snap cur =
  let fast = Diff.diff_page ~page_id:1 ~snapshot:snap ~current:cur in
  let slow = Diff.diff_page_bytewise ~page_id:1 ~snapshot:snap ~current:cur in
  Alcotest.(check bool)
    (msg ^ ": word diff = bytewise diff")
    true (fast = slow)

let test_word_vs_bytewise_directed () =
  let fresh () = Bytes.make Page.size '\000' in
  (* run starting at offset 0 *)
  let snap = fresh () and cur = fresh () in
  Bytes.set cur 0 'x';
  check_same_as_bytewise ~msg:"offset 0" snap cur;
  (* run ending at the last byte of the page *)
  let snap = fresh () and cur = fresh () in
  Bytes.set cur (Page.size - 1) 'x';
  check_same_as_bytewise ~msg:"last byte" snap cur;
  (* run straddling a word boundary *)
  let snap = fresh () and cur = fresh () in
  Bytes.fill cur 6 4 'x';
  check_same_as_bytewise ~msg:"word straddle" snap cur;
  (* run straddling the 32-byte unrolled stride *)
  let snap = fresh () and cur = fresh () in
  Bytes.fill cur 30 4 'x';
  check_same_as_bytewise ~msg:"stride straddle" snap cur;
  (* all-equal and all-different pages *)
  let snap = fresh () and cur = fresh () in
  check_same_as_bytewise ~msg:"all equal" snap cur;
  let snap = fresh () in
  let cur = Bytes.make Page.size '\001' in
  check_same_as_bytewise ~msg:"all different" snap cur;
  (* alternating equal/different bytes: worst case for run bookkeeping *)
  let snap = fresh () and cur = fresh () in
  let i = ref 0 in
  while !i < Page.size do
    Bytes.set cur !i 'x';
    i := !i + 2
  done;
  check_same_as_bytewise ~msg:"alternating" snap cur

let prop_word_diff_equals_bytewise =
  QCheck2.Test.make ~name:"diff: word-level diff == bytewise oracle"
    ~count:300
    QCheck2.Gen.(pair gen_page gen_page)
    (fun (snap, cur) ->
      Diff.diff_page ~page_id:7 ~snapshot:snap ~current:cur
      = Diff.diff_page_bytewise ~page_id:7 ~snapshot:snap ~current:cur)

let gen_run_page =
  (* Pages built from byte runs rather than isolated bytes, to exercise
     run-boundary placement around word and stride edges. *)
  QCheck2.Gen.(
    map
      (fun runs ->
        let b = Bytes.make Page.size '\000' in
        List.iter
          (fun (off, len, v) ->
            let off = off mod Page.size in
            let len = min (len + 1) (Page.size - off) in
            Bytes.fill b off len (Char.chr (v land 0xff)))
          runs;
        b)
      (list_size (int_bound 8)
         (triple (int_bound (Page.size - 1)) (int_bound 70) (int_bound 255))))

let prop_word_diff_equals_bytewise_runs =
  QCheck2.Test.make ~name:"diff: word diff == bytewise oracle (run-shaped)"
    ~count:300
    QCheck2.Gen.(pair gen_run_page gen_run_page)
    (fun (snap, cur) ->
      Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur
      = Diff.diff_page_bytewise ~page_id:0 ~snapshot:snap ~current:cur)

let prop_diff_minimal =
  QCheck2.Test.make ~name:"diff: only differing bytes are recorded" ~count:200
    QCheck2.Gen.(pair gen_page gen_page)
    (fun (snap, cur) ->
      let d = Diff.diff_page ~page_id:0 ~snapshot:snap ~current:cur in
      let expected = ref 0 in
      for i = 0 to Page.size - 1 do
        if Bytes.get snap i <> Bytes.get cur i then incr expected
      done;
      Diff.byte_count d = !expected)

let suites =
  [
    ( "diff",
      [
        Alcotest.test_case "no change" `Quick test_no_change;
        Alcotest.test_case "single byte" `Quick test_single_byte;
        Alcotest.test_case "run merging" `Quick test_runs_merged;
        Alcotest.test_case "redundant write dropped" `Quick
          test_redundant_write_invisible;
        Alcotest.test_case "apply round trip" `Quick test_apply_roundtrip;
        Alcotest.test_case "byte-merge 255|256=511" `Quick test_byte_merge_511;
        Alcotest.test_case "pages_touched/restrict" `Quick
          test_pages_touched_and_restrict;
        Alcotest.test_case "size validation" `Quick test_size_validation;
        Alcotest.test_case "word vs bytewise (directed)" `Quick
          test_word_vs_bytewise_directed;
        QCheck_alcotest.to_alcotest prop_word_diff_equals_bytewise;
        QCheck_alcotest.to_alcotest prop_word_diff_equals_bytewise_runs;
        QCheck_alcotest.to_alcotest prop_diff_apply_roundtrip;
        QCheck_alcotest.to_alcotest prop_diff_minimal;
      ] );
  ]
