open Rfdet_util

let vc l = Vclock.of_list l

let test_create () =
  let c = Vclock.create 4 in
  Alcotest.(check (list int)) "zero" [ 0; 0; 0; 0 ] (Vclock.to_list c)

let test_tick () =
  let c = Vclock.create 3 in
  Alcotest.(check int) "tick returns new value" 1 (Vclock.tick c 1);
  Alcotest.(check int) "tick again" 2 (Vclock.tick c 1);
  Alcotest.(check (list int)) "components" [ 0; 2; 0 ] (Vclock.to_list c)

let test_join () =
  let a = vc [ 1; 5; 2 ] and b = vc [ 3; 1; 2 ] in
  Vclock.join a b;
  Alcotest.(check (list int)) "lub" [ 3; 5; 2 ] (Vclock.to_list a);
  Alcotest.(check (list int)) "src untouched" [ 3; 1; 2 ] (Vclock.to_list b)

let test_min_into () =
  let a = vc [ 5; 2; 7 ] in
  Vclock.min_into a (vc [ 3; 4; 7 ]);
  Alcotest.(check (list int)) "glb" [ 3; 2; 7 ] (Vclock.to_list a)

let test_size_mismatch () =
  Alcotest.check_raises "join mismatch"
    (Invalid_argument "Vclock.join: size mismatch") (fun () ->
      Vclock.join (Vclock.create 2) (Vclock.create 3))

(* qcheck generators *)

let gen_clock n =
  QCheck2.Gen.(map Vclock.of_list (list_size (return n) (int_bound 8)))

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"vclock: join is an upper bound" ~count:300
    QCheck2.Gen.(pair (gen_clock 4) (gen_clock 4))
    (fun (a, b) ->
      let j = Vclock.joined a b in
      Vclock.leq a j && Vclock.leq b j)

let prop_join_least =
  QCheck2.Test.make ~name:"vclock: join is the least upper bound" ~count:300
    QCheck2.Gen.(triple (gen_clock 4) (gen_clock 4) (gen_clock 4))
    (fun (a, b, c) ->
      let j = Vclock.joined a b in
      if Vclock.leq a c && Vclock.leq b c then Vclock.leq j c else true)

let prop_join_commutative =
  QCheck2.Test.make ~name:"vclock: join commutative" ~count:300
    QCheck2.Gen.(pair (gen_clock 4) (gen_clock 4))
    (fun (a, b) -> Vclock.equal (Vclock.joined a b) (Vclock.joined b a))

let prop_join_associative =
  QCheck2.Test.make ~name:"vclock: join associative" ~count:300
    QCheck2.Gen.(triple (gen_clock 4) (gen_clock 4) (gen_clock 4))
    (fun (a, b, c) ->
      Vclock.equal
        (Vclock.joined (Vclock.joined a b) c)
        (Vclock.joined a (Vclock.joined b c)))

let prop_leq_antisym =
  QCheck2.Test.make ~name:"vclock: leq antisymmetric" ~count:300
    QCheck2.Gen.(pair (gen_clock 4) (gen_clock 4))
    (fun (a, b) ->
      if Vclock.leq a b && Vclock.leq b a then Vclock.equal a b else true)

let prop_leq_transitive =
  QCheck2.Test.make ~name:"vclock: leq transitive" ~count:300
    QCheck2.Gen.(triple (gen_clock 3) (gen_clock 3) (gen_clock 3))
    (fun (a, b, c) ->
      if Vclock.leq a b && Vclock.leq b c then Vclock.leq a c else true)

let prop_partial_consistent =
  QCheck2.Test.make ~name:"vclock: compare_partial agrees with leq" ~count:300
    QCheck2.Gen.(pair (gen_clock 4) (gen_clock 4))
    (fun (a, b) ->
      match Vclock.compare_partial a b with
      | Vclock.Equal -> Vclock.equal a b
      | Less -> Vclock.lt a b
      | Greater -> Vclock.lt b a
      | Concurrent -> (not (Vclock.leq a b)) && not (Vclock.leq b a))

let prop_lt_irreflexive_strict =
  QCheck2.Test.make ~name:"vclock: lt is the strict part of leq" ~count:300
    QCheck2.Gen.(pair (gen_clock 4) (gen_clock 4))
    (fun (a, b) ->
      (not (Vclock.lt a a))
      && Vclock.lt a b = (Vclock.leq a b && not (Vclock.equal a b)))

(* --- the Figure-5 propagation filters --------------------------------

   At an acquire, a slice with timestamp [s] is propagated iff
   [lt s upper && not (lt s lower)]: the upper limit admits only what
   happens-before the acquired position, and the lower limit drops what
   the acquirer has already merged.  These properties pin down why that
   filter pair is safe: it is monotone (growing limits never flip an
   earlier decision the wrong way), causally closed (an admitted
   slice's predecessors are admitted), and self-limiting (once a slice
   is admitted, the acquirer's joined time blocks it forever — the
   never-propagate-twice guarantee the metadata GC relies on). *)

let passes ~upper ~lower s = Vclock.lt s upper && not (Vclock.lt s lower)

let prop_filter_upper_monotone =
  QCheck2.Test.make
    ~name:"figure5: enlarging the upper limit only admits more" ~count:500
    QCheck2.Gen.(triple (gen_clock 4) (gen_clock 4) (pair (gen_clock 4) (gen_clock 4)))
    (fun (s, lower, (u, d)) ->
      let u' = Vclock.joined u d in
      if passes ~upper:u ~lower s then passes ~upper:u' ~lower s else true)

let prop_filter_lower_monotone =
  QCheck2.Test.make
    ~name:"figure5: a slice redundant under a lower limit stays redundant"
    ~count:500
    QCheck2.Gen.(triple (gen_clock 4) (gen_clock 4) (gen_clock 4))
    (fun (s, l, d) ->
      let l' = Vclock.joined l d in
      if Vclock.lt s l then Vclock.lt s l' else true)

let prop_filter_transitive =
  QCheck2.Test.make
    ~name:"figure5: admission is causally closed (lt transitive)" ~count:500
    QCheck2.Gen.(triple (gen_clock 4) (gen_clock 4) (gen_clock 4))
    (fun (s1, s2, upper) ->
      if Vclock.lt s1 s2 && Vclock.lt s2 upper then Vclock.lt s1 upper
      else true)

let prop_filter_never_twice =
  QCheck2.Test.make
    ~name:"figure5: an admitted slice can never be admitted again"
    ~count:500
    QCheck2.Gen.(
      triple (gen_clock 4) (pair (gen_clock 4) (gen_clock 4)) (gen_clock 4))
    (fun (s, (release, lower), next_upper) ->
      if passes ~upper:release ~lower s then
        (* after the acquire the thread's time includes the release time *)
        let lower' = Vclock.joined lower release in
        not (passes ~upper:next_upper ~lower:lower' s)
      else true)

let suites =
  [
    ( "vclock",
      [
        Alcotest.test_case "create" `Quick test_create;
        Alcotest.test_case "tick" `Quick test_tick;
        Alcotest.test_case "join" `Quick test_join;
        Alcotest.test_case "min_into" `Quick test_min_into;
        Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
        QCheck_alcotest.to_alcotest prop_join_upper_bound;
        QCheck_alcotest.to_alcotest prop_join_least;
        QCheck_alcotest.to_alcotest prop_join_commutative;
        QCheck_alcotest.to_alcotest prop_join_associative;
        QCheck_alcotest.to_alcotest prop_leq_antisym;
        QCheck_alcotest.to_alcotest prop_leq_transitive;
        QCheck_alcotest.to_alcotest prop_partial_consistent;
        QCheck_alcotest.to_alcotest prop_lt_irreflexive_strict;
        QCheck_alcotest.to_alcotest prop_filter_upper_monotone;
        QCheck_alcotest.to_alcotest prop_filter_lower_monotone;
        QCheck_alcotest.to_alcotest prop_filter_transitive;
        QCheck_alcotest.to_alcotest prop_filter_never_twice;
      ] );
  ]
