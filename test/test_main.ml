let () =
  Alcotest.run "rfdet"
    (List.concat
       [
         Test_vclock.suites;
         Test_pqueue.suites;
         Test_det_rng.suites;
         Test_space.suites;
         Test_diff.suites;
         Test_allocator.suites;
         Test_engine.suites;
         Test_fault.suites;
         Test_kendo.suites;
         Test_rfdet.suites;
         Test_dthreads.suites;
         Test_dlrc_model.suites;
         Test_coredet.suites;
         Test_atomics.suites;
         Test_race_detector.suites;
         Test_replay.suites;
         Test_sequential.suites;
         Test_edge_cases.suites;
         Test_pipeline_queue.suites;
         Test_wl_common.suites;
         Test_metadata.suites;
         Test_harness.suites;
         Test_workloads.suites;
       ])
