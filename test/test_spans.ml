(* Request-level span trees and critical-path attribution (lib/obs).

   The contract under test has three legs: (1) exactness — every span
   tree's segment cycles sum bit-exactly to the request's measured
   latency, for every outcome, seed, load level, server variant and
   fault plan; (2) inertness — enabling spans changes no signature, op
   count or profile field; (3) canonicality — the attribution document
   is byte-identical across all deterministic runtimes and repeat runs,
   and ring overflow degrades loudly (counters, incompleteness) rather
   than corrupting what survives. *)

module Runner = Rfdet_harness.Runner
module Workload = Rfdet_workloads.Workload
module Engine = Rfdet_sim.Engine
module Profile = Rfdet_sim.Profile
module Fault_plan = Rfdet_fault.Fault_plan
module Server = Rfdet_server.Server
module Rwserve = Rfdet_server.Rwserve
module Traffic = Rfdet_server.Traffic
module Sink = Rfdet_obs.Sink
module Span = Rfdet_obs.Span
module Critpath = Rfdet_obs.Critpath

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)
(* ------------------------------------------------------------------ *)

let params ?(requests = 1_200) ?(rate = 60) () =
  {
    Server.default with
    Server.traffic =
      {
        Traffic.default with
        Traffic.requests;
        keys = 512;
        mean_interarrival = rate;
      };
  }

let run_spanned ?(runtime = Runner.rfdet_ci) ?faults
    ?(failure_mode = Engine.Contain) ?(capacity = 0) ?(seed = 7L) p =
  let obs = Sink.create ~capacity () in
  let report = ref None in
  let w =
    {
      Workload.name = "kvserver-test";
      suite = "server";
      description = "span test fixture";
      main = (fun _cfg () -> report := Some (Server.run ~seed p));
    }
  in
  let r =
    Runner.run ~threads:p.Server.workers ?faults ~failure_mode ~obs runtime w
  in
  (r, Option.get !report, Sink.events obs, Sink.dropped obs)

let run_spanned_rw ?(runtime = Runner.rfdet_ci) ?(seed = 7L) p =
  let obs = Sink.create () in
  let report = ref None in
  let w =
    {
      Workload.name = "kvserver-rw-test";
      suite = "server";
      description = "rw span test fixture";
      main = (fun _cfg () -> report := Some (Rwserve.run ~seed p));
    }
  in
  let r = Runner.run ~threads:p.Rwserve.workers ~obs runtime w in
  (r, Option.get !report, Sink.events obs)

let walk_ok events =
  let spans = Span.collect events in
  match Critpath.walk_all spans.Span.complete with
  | Ok atts -> (spans, atts)
  | Error msg -> Alcotest.failf "critical-path walk failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Exactness                                                            *)
(* ------------------------------------------------------------------ *)

(* The headline invariant, across seeds and load levels that exercise
   every outcome class: light load (pure service), the overload mix
   (timeouts, breaker trips, shed, stale reads, backoff retries). *)
let test_segments_sum_exactly () =
  List.iter
    (fun (seed, rate) ->
      let p = params ~rate () in
      let _, rep, events, dropped = run_spanned ~seed p in
      Alcotest.(check int) "unbounded sink never drops" 0 dropped;
      let spans, atts = walk_ok events in
      Alcotest.(check int) "no dangling trees without faults" 0
        spans.Span.incomplete;
      (* every committed, non-failed-over request has a tree *)
      Alcotest.(check int) "one tree per committed request"
        (rep.Server.total - rep.Server.failed_over)
        (List.length atts);
      List.iter
        (fun (a : Critpath.attribution) ->
          let sum =
            List.fold_left (fun acc (_, c) -> acc + c) 0 a.Critpath.segments
          in
          Alcotest.(check int)
            (Printf.sprintf "req %d segments sum to latency" a.Critpath.req)
            a.Critpath.latency sum;
          Alcotest.(check bool) "latency nonnegative" true
            (a.Critpath.latency >= 0))
        atts)
    [ (1L, 60); (7L, 60); (7L, 250); (13L, 2000) ]

(* The overload mix must actually exercise the degraded segments, or
   the sums above prove less than they claim. *)
let test_overload_exercises_segments () =
  let _, rep, events, _ = run_spanned ~seed:7L (params ~rate:60 ()) in
  let _, atts = walk_ok events in
  let seg l a = List.assoc l a.Critpath.segments in
  let some l = List.exists (fun a -> seg l a > 0) atts in
  Alcotest.(check bool) "queueing observed" true (some "queue");
  Alcotest.(check bool) "service observed" true (some "service");
  Alcotest.(check bool) "shed observed" true
    (rep.Server.shed = 0 || some "shed");
  Alcotest.(check bool) "stale observed" true
    (rep.Server.stale_served = 0 || some "stale");
  (* timed-out requests attribute their whole latency to queue+backoff *)
  List.iter
    (fun a ->
      if a.Critpath.outcome = 4 then
        Alcotest.(check int) "timeout = queue + backoff" a.Critpath.latency
          (seg "queue" a + seg "backoff" a))
    atts

let test_rwserve_put_sums () =
  let p =
    {
      Rwserve.default with
      Rwserve.traffic =
        {
          Traffic.default with
          Traffic.requests = 1_200;
          keys = 512;
          mean_interarrival = 60;
        };
    }
  in
  let _, rep, events = run_spanned_rw p in
  let spans, atts = walk_ok events in
  Alcotest.(check int) "no dangling trees" 0 spans.Span.incomplete;
  (* the rw variant spans its put phase; gets ride the steal trace *)
  Alcotest.(check int) "one tree per put" rep.Rwserve.puts
    (List.length atts);
  Alcotest.(check bool) "puts exist" true (rep.Rwserve.puts > 0)

(* Crash + deterministic recovery re-emits the victim's trees; collect
   keeps the last complete emission, so sums still hold exactly. *)
let test_sums_under_recovery () =
  let faults =
    match Fault_plan.parse "crash,tid=2,op=store,n=40" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let p = params ~rate:60 () in
  let r, rep, events, _ =
    run_spanned ~faults ~failure_mode:Engine.Recover p
  in
  Alcotest.(check int) "restart happened" 1
    r.Runner.profile.Profile.restarts;
  let _, atts = walk_ok events in
  Alcotest.(check int) "exactly one tree per request survives replay"
    (rep.Server.total - rep.Server.failed_over)
    (List.length atts)

(* ------------------------------------------------------------------ *)
(* Inertness                                                            *)
(* ------------------------------------------------------------------ *)

let test_spans_inert () =
  let p = params () in
  List.iter
    (fun (name, runtime) ->
      let plain, rep0 =
        let report = ref None in
        let w =
          {
            Workload.name = "kvserver-test";
            suite = "server";
            description = "span test fixture";
            main = (fun _cfg () -> report := Some (Server.run ~seed:7L p));
          }
        in
        let r = Runner.run ~threads:p.Server.workers runtime w in
        (r, Option.get !report)
      in
      let spanned, rep1, events, _ = run_spanned ~runtime p in
      Alcotest.(check string)
        (name ^ ": signature unchanged by spans")
        plain.Runner.signature spanned.Runner.signature;
      Alcotest.(check int)
        (name ^ ": ops unchanged")
        plain.Runner.ops spanned.Runner.ops;
      Alcotest.(check (list (pair string int)))
        (name ^ ": profile unchanged")
        (Profile.fields plain.Runner.profile)
        (Profile.fields spanned.Runner.profile);
      Alcotest.(check int)
        (name ^ ": server report identical")
        rep0.Server.digest rep1.Server.digest;
      Alcotest.(check bool) (name ^ ": spans present") true
        (List.exists
           (fun (e : Rfdet_obs.Trace.event) ->
             match e.kind with Rfdet_obs.Trace.Span _ -> true | _ -> false)
           events))
    [
      ("rfdet-ci", Runner.rfdet_ci);
      ("kendo", Runner.Kendo);
      ("pthreads", Runner.Pthreads);
    ]

(* ------------------------------------------------------------------ *)
(* Canonical output                                                     *)
(* ------------------------------------------------------------------ *)

let doc atts = Critpath.json ~meta:[ ("seed", "7") ] ~top:5 atts

let test_json_identical_across_runtimes () =
  let p = params ~rate:60 () in
  let render runtime =
    let _, _, events, _ = run_spanned ~runtime p in
    doc (snd (walk_ok events))
  in
  let reference = render Runner.rfdet_ci in
  Alcotest.(check bool) "document nonempty" true
    (String.length reference > 0);
  List.iter
    (fun (name, runtime) ->
      Alcotest.(check string)
        (name ^ ": attribution document byte-identical")
        reference (render runtime))
    [
      ("rfdet-ci again", Runner.rfdet_ci);
      ("rfdet-pf", Runner.rfdet_pf);
      ("rfdet-noopt", Runner.Rfdet Rfdet_core.Options.baseline_no_opt);
      ("kendo", Runner.Kendo);
      ("dthreads", Runner.Dthreads);
      ("coredet", Runner.Coredet);
    ]

let test_tree_render_stable () =
  let p = params ~rate:60 () in
  let render runtime =
    let _, _, events, _ = run_spanned ~runtime p in
    let spans = Span.collect events in
    let b = Buffer.create 4096 in
    List.iter (Span.render_tree b) spans.Span.complete;
    Buffer.contents b
  in
  Alcotest.(check string) "tree renders byte-identical"
    (render Runner.rfdet_ci) (render Runner.Dthreads)

let test_cohorts_and_exemplars () =
  let _, _, events, _ = run_spanned ~seed:7L (params ~rate:60 ()) in
  let _, atts = walk_ok events in
  let n = List.length atts in
  List.iter
    (fun (c : Critpath.cohort) ->
      Alcotest.(check bool) (c.Critpath.label ^ " nonempty") true
        (c.Critpath.count > 0);
      Alcotest.(check int) (c.Critpath.label ^ " cycles sum to total")
        c.Critpath.total_latency
        (List.fold_left (fun acc (_, v) -> acc + v) 0 c.Critpath.cycles);
      List.iter
        (fun (_, s) ->
          Alcotest.(check bool) "share in [0,1000]" true (s >= 0 && s <= 1000))
        c.Critpath.shares_pm)
    (Critpath.cohorts atts);
  (* p999 is a subset of p99 is a subset of p50 by construction *)
  (match Critpath.cohorts atts with
  | [ p50; p99; p999 ] ->
    Alcotest.(check bool) "cohorts nest" true
      (p999.Critpath.count <= p99.Critpath.count
      && p99.Critpath.count <= p50.Critpath.count)
  | _ -> Alcotest.fail "expected three cohorts");
  let slow = Critpath.top_slowest 5 atts in
  Alcotest.(check int) "top-k bounded" (min 5 n) (List.length slow);
  let lats = List.map (fun a -> a.Critpath.latency) slow in
  Alcotest.(check (list int)) "slowest sorted descending"
    (List.sort (fun a b -> compare b a) lats)
    lats;
  let deep = Critpath.top_deepest 5 atts in
  let depths = List.map (fun a -> a.Critpath.attempts) deep in
  Alcotest.(check (list int)) "deepest sorted descending"
    (List.sort (fun a b -> compare b a) depths)
    depths;
  let j = doc atts in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json carries " ^ needle) true
        (Astring.String.is_infix ~affix:needle j))
    [
      "\"schema\": \"rfdet-spans/1\""; "\"p50\""; "\"p99\""; "\"p999\"";
      "\"top_slowest\""; "\"top_deepest\""; "\"replay\""; "\"window\"";
      "\"shares_pm\"";
    ]

(* ------------------------------------------------------------------ *)
(* Ring overflow                                                        *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow_is_loud () =
  let p = params ~requests:600 () in
  let r, _, events, dropped = run_spanned ~capacity:256 p in
  Alcotest.(check bool) "ring overflowed" true (dropped > 0);
  Alcotest.(check int) "profile counter carries the loss" dropped
    r.Runner.profile.Profile.trace_dropped;
  Alcotest.(check int) "retained at most capacity" 256
    (List.length events);
  (* truncation degrades to incompleteness, never to bad sums *)
  let spans, atts = walk_ok events in
  Alcotest.(check bool) "truncation visible as incomplete trees" true
    (spans.Span.incomplete > 0 || List.length atts < 600);
  let r2, _, _, _ = run_spanned p in
  Alcotest.(check int) "unbounded run reports zero drops" 0
    r2.Runner.profile.Profile.trace_dropped

let suites =
  [
    ( "spans",
      [
        Alcotest.test_case "segments sum exactly to latency" `Quick
          test_segments_sum_exactly;
        Alcotest.test_case "overload exercises degraded segments" `Quick
          test_overload_exercises_segments;
        Alcotest.test_case "rw put-phase sums" `Quick test_rwserve_put_sums;
        Alcotest.test_case "sums survive crash recovery" `Quick
          test_sums_under_recovery;
        Alcotest.test_case "spans are deterministically inert" `Quick
          test_spans_inert;
        Alcotest.test_case "json identical across runtimes" `Quick
          test_json_identical_across_runtimes;
        Alcotest.test_case "tree renders are runtime-independent" `Quick
          test_tree_render_stable;
        Alcotest.test_case "cohorts and exemplars" `Quick
          test_cohorts_and_exemplars;
        Alcotest.test_case "ring overflow is loud" `Quick
          test_ring_overflow_is_loud;
      ] );
  ]
