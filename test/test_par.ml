(* The deterministic domain pool: Par.map_ordered must be
   observationally List.map — same results, same order, same escaping
   exception — for every job count, and the harness sweeps built on it
   must return byte-identical reports at jobs = 1 and jobs = 4. *)

open Rfdet_par
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload

let job_counts = [ 1; 2; 4; 7 ]

exception Boom of int

(* --- equality with List.map ---------------------------------------- *)

let prop_map_ordered_is_map =
  QCheck2.Test.make ~name:"par: map_ordered == List.map (jobs 1,2,4,7)"
    ~count:60
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 10_000))
    (fun xs ->
      let f x = (x * 31) + (x mod 7) in
      let expect = List.map f xs in
      List.for_all
        (fun jobs -> Par.map_ordered ~jobs f xs = expect)
        job_counts)

let prop_exceptions_match_sequential =
  (* the element to blow up on is part of the generated input; the
     parallel map must raise exactly what sequential evaluation raises:
     the exception of the lowest failing index *)
  QCheck2.Test.make ~name:"par: exception == sequential (jobs 1,2,4,7)"
    ~count:60
    QCheck2.Gen.(
      pair (list_size (int_bound 60) (int_bound 100)) (int_bound 100))
    (fun (xs, bad) ->
      let f x = if x = bad then raise (Boom x) else x + 1 in
      let outcome g = try Ok (g ()) with e -> Error (Printexc.to_string e) in
      let expect = outcome (fun () -> List.map f xs) in
      List.for_all
        (fun jobs ->
          outcome (fun () -> Par.map_ordered ~jobs f xs) = expect)
        job_counts)

let test_order_under_skew () =
  (* early items run much longer than late ones, so with several domains
     the completions arrive back-to-front; results must still come back
     in input order *)
  let n = 64 in
  let f i =
    let spin = (n - i) * 2000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + (k land 7)
    done;
    ignore (Sys.opaque_identity !acc);
    i * i
  in
  let xs = List.init n (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order at jobs=%d" jobs)
        (List.map f xs)
        (Par.map_ordered ~jobs f xs))
    [ 2; 4; 7 ]

let test_pool_reuse () =
  let pool = Par.create ~jobs:4 in
  Alcotest.(check int) "jobs" 4 (Par.jobs pool);
  let xs = List.init 500 (fun i -> i) in
  let once = Par.map_pool pool (fun x -> x * 2) xs in
  let twice = Par.map_pool pool (fun x -> x * 3) xs in
  Alcotest.(check (list int)) "first map" (List.map (fun x -> x * 2) xs) once;
  Alcotest.(check (list int)) "second map" (List.map (fun x -> x * 3) xs) twice;
  Par.shutdown pool;
  (* idempotent *)
  Par.shutdown pool

let test_invalid_jobs () =
  Alcotest.check_raises "create ~jobs:0"
    (Invalid_argument "Par.create: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Par.create ~jobs:0));
  Alcotest.check_raises "map_ordered ~jobs:(-3)"
    (Invalid_argument "Par.map_ordered: jobs must be >= 1 (got -3)") (fun () ->
      ignore (Par.map_ordered ~jobs:(-3) Fun.id [ 1 ]))

let test_default_jobs_env () =
  let get () = Par.default_jobs () in
  Unix.putenv "RFDET_JOBS" "3";
  Alcotest.(check int) "RFDET_JOBS=3" 3 (get ());
  Unix.putenv "RFDET_JOBS" "not-a-number";
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument
       "RFDET_JOBS=\"not-a-number\": expected a positive integer job count")
    (fun () -> ignore (get ()));
  Unix.putenv "RFDET_JOBS" "";
  let d = get () in
  Alcotest.(check bool) "empty means machine default" true
    (d >= 1 && d <= Par.max_default_jobs)

(* --- byte-identity of the parallel sweeps --------------------------- *)

let test_determinism_check_identical () =
  let wl = Registry.find "micro-lock" in
  let seq = Determinism.check ~threads:3 ~runs:8 ~jobs:1 Runner.rfdet_ci wl in
  let par = Determinism.check ~threads:3 ~runs:8 ~jobs:4 Runner.rfdet_ci wl in
  Alcotest.(check bool) "reports equal" true (seq = par);
  Alcotest.(check bool) "deterministic" true seq.Determinism.deterministic

let test_explore_sample_identical () =
  let wl = Registry.find "micro-lock" in
  let seq = Rfdet_check.Explore.sample ~jobs:1 ~seed:2026L ~n:30 wl in
  let par = Rfdet_check.Explore.sample ~jobs:4 ~seed:2026L ~n:30 wl in
  Alcotest.(check bool) "stats equal" true (seq = par);
  Alcotest.(check int) "no failures" 0 (List.length seq.Rfdet_check.Explore.failures)

let test_differential_identical () =
  let wl = Registry.find "micro-atomic" in
  let seq = Rfdet_check.Differential.check ~jobs:1 wl in
  let par = Rfdet_check.Differential.check ~jobs:4 wl in
  Alcotest.(check bool) "reports equal" true (seq = par);
  Alcotest.(check bool) "ok" true seq.Rfdet_check.Differential.ok

let test_clinic_identical () =
  let wl = Registry.find "micro-lock" in
  let seq = Rfdet_check.Clinic.sweep ~threads:2 ~max_sites:6 ~jobs:1 wl in
  let par = Rfdet_check.Clinic.sweep ~threads:2 ~max_sites:6 ~jobs:4 wl in
  Alcotest.(check bool) "summaries equal" true (seq = par)

let serve_report ~rate =
  let module Server = Rfdet_server.Server in
  let module Traffic = Rfdet_server.Traffic in
  let p =
    {
      Server.default with
      Server.traffic =
        {
          Traffic.default with
          Traffic.requests = 500;
          mean_interarrival = rate;
        };
    }
  in
  let report = ref None in
  let w =
    {
      Workload.name = "kvserver";
      suite = "server";
      description = "test sweep kvserver";
      main =
        (fun cfg () ->
          report := Some (Server.run ~seed:cfg.Workload.input_seed p));
    }
  in
  ignore (Runner.run ~threads:p.Server.workers Runner.rfdet_ci w);
  Option.get !report

let test_serve_sweep_identical () =
  let rates = [ 200; 80 ] in
  let seq = Rfdet_server.Sweep.run ~jobs:1 ~rates ~f:serve_report () in
  let par = Rfdet_server.Sweep.run ~jobs:4 ~rates ~f:serve_report () in
  Alcotest.(check string) "sweep json byte-identical"
    (Rfdet_server.Sweep.to_json seq)
    (Rfdet_server.Sweep.to_json par);
  Alcotest.(check (list int)) "rates in input order" rates (List.map fst par)

let suites =
  [
    ( "par",
      [
        QCheck_alcotest.to_alcotest prop_map_ordered_is_map;
        QCheck_alcotest.to_alcotest prop_exceptions_match_sequential;
        Alcotest.test_case "input order under skewed runtimes" `Quick
          test_order_under_skew;
        Alcotest.test_case "pool reuse and shutdown" `Quick test_pool_reuse;
        Alcotest.test_case "invalid job counts" `Quick test_invalid_jobs;
        Alcotest.test_case "RFDET_JOBS fallback" `Quick test_default_jobs_env;
        Alcotest.test_case "determinism check jobs 1 == 4" `Quick
          test_determinism_check_identical;
        Alcotest.test_case "explore sample jobs 1 == 4" `Quick
          test_explore_sample_identical;
        Alcotest.test_case "differential jobs 1 == 4" `Quick
          test_differential_identical;
        Alcotest.test_case "clinic jobs 1 == 4" `Quick test_clinic_identical;
        Alcotest.test_case "serve sweep jobs 1 == 4" `Quick
          test_serve_sweep_identical;
      ] );
  ]
