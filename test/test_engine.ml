module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Pthreads = Rfdet_baselines.Pthreads_runtime

let run ?config main = Engine.run ?config Pthreads.make ~main

let test_single_thread_output () =
  let r = run (fun () -> Api.output 42L) in
  Alcotest.(check int) "one thread" 1 r.Engine.threads;
  Alcotest.(check bool) "output" true (r.Engine.outputs = [ (0, 42L) ])

let test_memory_visible_same_thread () =
  let r =
    run (fun () ->
        Api.store Layout.globals_base 7;
        Api.output_int (Api.load Layout.globals_base))
  in
  Alcotest.(check bool) "read own write" true (r.Engine.outputs = [ (0, 7L) ])

let test_spawn_join () =
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let child = Api.spawn (fun () -> Api.store addr 99) in
        Alcotest.(check int) "child tid" 1 child;
        Api.join child;
        (* pthreads: shared memory, so the child's write is visible *)
        Api.output_int (Api.load addr))
  in
  Alcotest.(check bool) "child write visible after join" true
    (r.Engine.outputs = [ (0, 99L) ]);
  Alcotest.(check int) "fork count" 1 r.Engine.profile.Rfdet_sim.Profile.forks;
  Alcotest.(check int) "join count" 1 r.Engine.profile.Rfdet_sim.Profile.joins

let test_join_before_exit_blocks () =
  (* Main joins a child that does a lot of work: join must wait. *)
  let r =
    run (fun () ->
        let child = Api.spawn (fun () -> Api.tick 100_000) in
        Api.join child;
        Api.output 1L)
  in
  Alcotest.(check bool) "completed" true (r.Engine.outputs = [ (0, 1L) ]);
  Alcotest.(check bool) "time includes child work" true
    (r.Engine.sim_time >= 100_000)

let test_self_and_tids () =
  let r =
    run (fun () ->
        Api.output_int (Api.self ());
        let c1 = Api.spawn (fun () -> Api.output_int (Api.self ())) in
        let c2 = Api.spawn (fun () -> Api.output_int (Api.self ())) in
        Api.join c1;
        Api.join c2)
  in
  Alcotest.(check bool) "tids deterministic" true
    (r.Engine.outputs = [ (0, 0L); (1, 1L); (2, 2L) ])

let test_malloc_free () =
  let r =
    run (fun () ->
        let p = Api.malloc 64 in
        Api.store p 5;
        Api.output_int (Api.load p);
        Api.free p;
        let q = Api.malloc 64 in
        Api.output_int (if q = p then 1 else 0))
  in
  Alcotest.(check bool) "malloc works and recycles" true
    (r.Engine.outputs = [ (0, 5L); (0, 1L) ])

let test_tick_accounting () =
  let r = run (fun () -> Api.tick ~loads:10 ~stores:5 100) in
  Alcotest.(check int) "loads" 10 r.Engine.profile.Rfdet_sim.Profile.loads;
  Alcotest.(check int) "stores" 5 r.Engine.profile.Rfdet_sim.Profile.stores;
  Alcotest.(check bool) "time advanced" true (r.Engine.sim_time >= 100)

let test_mutex_mutual_exclusion () =
  (* Two threads increment a shared counter under a lock: no lost
     updates even under pthreads. *)
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let m = Api.mutex_create () in
        let body () =
          for _ = 1 to 50 do
            Api.with_lock m (fun () -> Api.store addr (Api.load addr + 1))
          done
        in
        let c1 = Api.spawn body and c2 = Api.spawn body in
        Api.join c1;
        Api.join c2;
        Api.output_int (Api.load addr))
  in
  Alcotest.(check bool) "no lost updates" true (r.Engine.outputs = [ (0, 100L) ])

let test_cond_wait_signal () =
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let m = Api.mutex_create () in
        let c = Api.cond_create () in
        let consumer =
          Api.spawn (fun () ->
              Api.lock m;
              while Api.load addr = 0 do
                Api.cond_wait c m
              done;
              Api.output_int (Api.load addr);
              Api.unlock m)
        in
        Api.tick 10_000;
        Api.lock m;
        Api.store addr 123;
        Api.cond_signal c;
        Api.unlock m;
        Api.join consumer)
  in
  Alcotest.(check bool) "consumer saw the flag" true
    (List.mem (1, 123L) r.Engine.outputs)

let test_barrier () =
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let b = Api.barrier_create 3 in
        let body () =
          let tid = Api.self () in
          Api.store (addr + (tid * 8)) tid;
          Api.barrier_wait b;
          (* After the barrier everyone sees all writes (pthreads). *)
          let sum =
            Api.load addr + Api.load (addr + 8) + Api.load (addr + 16)
          in
          Api.output_int sum
        in
        let c1 = Api.spawn body and c2 = Api.spawn body in
        body ();
        Api.join c1;
        Api.join c2)
  in
  List.iter
    (fun (_, v) -> Alcotest.(check int64) "sum of tids" 3L v)
    r.Engine.outputs;
  Alcotest.(check int) "three outputs" 3 (List.length r.Engine.outputs)

let test_deterministic_without_jitter () =
  let racy () =
    let addr = Layout.globals_base in
    let body () =
      for i = 1 to 20 do
        Api.store addr ((Api.load addr * 3) + i)
      done
    in
    let c1 = Api.spawn body and c2 = Api.spawn body in
    Api.join c1;
    Api.join c2;
    Api.output_int (Api.load addr)
  in
  let sig_of seed =
    let config = { Engine.default_config with seed } in
    Engine.output_signature (run ~config racy)
  in
  Alcotest.(check string) "same seed, same result" (sig_of 5L) (sig_of 5L)

let test_jitter_changes_interleaving () =
  (* A racy read-modify-write loop under pthreads with jitter: some pair
     of seeds must disagree. *)
  let racy () =
    let addr = Layout.globals_base in
    let body () =
      for i = 1 to 3000 do
        Api.store addr ((Api.load addr * 3) + i);
        Api.tick 7
      done
    in
    let c1 = Api.spawn body and c2 = Api.spawn body in
    Api.join c1;
    Api.join c2;
    Api.output_int (Api.load addr)
  in
  let sig_of seed =
    let config = { Engine.default_config with seed; jitter_mean = 8. } in
    Engine.output_signature (run ~config racy)
  in
  let signatures = List.init 10 (fun i -> sig_of (Int64.of_int (i + 1))) in
  let distinct = List.sort_uniq compare signatures in
  Alcotest.(check bool) "pthreads racy results vary across seeds" true
    (List.length distinct > 1)

let test_deadlock_detected () =
  Alcotest.(check bool) "deadlock raises" true
    (try
       ignore
         (run (fun () ->
              let m = Api.mutex_create () in
              Api.lock m;
              let c = Api.spawn (fun () -> Api.lock m) in
              Api.join c));
       false
     with Engine.Deadlock _ -> true)

let test_lost_wakeup_deadlock_describes_blocked () =
  (* A classic lost wakeup: the signal fires before the waiter waits, so
     the waiter blocks forever and main blocks in join.  The deadlock
     diagnostic must name the stuck threads and their states. *)
  let contains msg affix = Astring.String.is_infix ~affix msg in
  match
    run (fun () ->
        let m = Api.mutex_create () in
        let c = Api.cond_create () in
        Api.lock m;
        Api.cond_signal c;
        Api.unlock m;
        let waiter =
          Api.spawn (fun () ->
              Api.lock m;
              Api.cond_wait c m;
              Api.unlock m)
        in
        Api.join waiter)
  with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    Alcotest.(check bool) "names the lost waiter" true (contains msg "tid=1");
    Alcotest.(check bool) "names blocked main" true (contains msg "tid=0");
    Alcotest.(check bool) "reports the blocked state" true
      (contains msg "blocked")

let test_thread_failure_propagates () =
  Alcotest.(check bool) "exception surfaces with tid" true
    (try
       ignore (run (fun () -> failwith "boom"));
       false
     with Engine.Thread_failure (0, Failure msg) -> msg = "boom")

let test_unlock_not_held () =
  Alcotest.(check bool) "unlock of unheld mutex rejected" true
    (try
       ignore
         (run (fun () ->
              let m = Api.mutex_create () in
              Api.unlock m));
       false
     with Engine.Thread_failure (_, Invalid_argument _) -> true)

let test_policy_failure_attributed_to_child () =
  (* A protocol violation detected inside policy code (here: unlocking
     an unheld mutex) must be attributed to the offending thread, not to
     whoever happened to run the scheduler loop. *)
  Alcotest.(check bool) "Thread_failure carries the child's tid" true
    (try
       ignore
         (run (fun () ->
              let m = Api.mutex_create () in
              let c = Api.spawn (fun () -> Api.unlock m) in
              Api.join c));
       false
     with Engine.Thread_failure (1, Invalid_argument _) -> true)

let test_max_ops () =
  let config = { Engine.default_config with max_ops = 100 } in
  Alcotest.check_raises "runaway guard" Engine.Runaway (fun () ->
      ignore
        (run ~config (fun () ->
             while true do
               Api.tick 1
             done)))

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "single thread output" `Quick
          test_single_thread_output;
        Alcotest.test_case "own writes visible" `Quick
          test_memory_visible_same_thread;
        Alcotest.test_case "spawn/join" `Quick test_spawn_join;
        Alcotest.test_case "join blocks" `Quick test_join_before_exit_blocks;
        Alcotest.test_case "self/tids" `Quick test_self_and_tids;
        Alcotest.test_case "malloc/free" `Quick test_malloc_free;
        Alcotest.test_case "tick accounting" `Quick test_tick_accounting;
        Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
        Alcotest.test_case "cond wait/signal" `Quick test_cond_wait_signal;
        Alcotest.test_case "barrier" `Quick test_barrier;
        Alcotest.test_case "no jitter => deterministic" `Quick
          test_deterministic_without_jitter;
        Alcotest.test_case "jitter => racy variance" `Quick
          test_jitter_changes_interleaving;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
        Alcotest.test_case "lost wakeup deadlock diagnostic" `Quick
          test_lost_wakeup_deadlock_describes_blocked;
        Alcotest.test_case "thread failure" `Quick
          test_thread_failure_propagates;
        Alcotest.test_case "unlock unheld" `Quick test_unlock_not_held;
        Alcotest.test_case "policy failure attributed to child" `Quick
          test_policy_failure_attributed_to_child;
        Alcotest.test_case "max_ops guard" `Quick test_max_ops;
      ] );
  ]
