(* Observability-layer tests: trace serialization round-trips, the
   determinism-inertness invariant (tracing on/off produces bit-identical
   runs), same-seed trace determinism, the Chrome exporter's shape, the
   metrics registry, attribution reports, and the Profile JSON/pp
   satellites. *)

module Trace = Rfdet_obs.Trace
module Sink = Rfdet_obs.Sink
module Metrics = Rfdet_obs.Metrics
module Chrome = Rfdet_obs.Chrome
module Report = Rfdet_obs.Report
module Runner = Rfdet_harness.Runner
module Registry = Rfdet_workloads.Registry
module Profile = Rfdet_sim.Profile

let scale = 0.3

let contains ~needle hay = Astring.String.is_infix ~affix:needle hay

(* ------------------------------------------------------------------ *)
(* Line-format round trip                                              *)
(* ------------------------------------------------------------------ *)

let gen_kind =
  QCheck2.Gen.(
    map
      (fun (choice, (a, b, c, d)) ->
        let obj = if a mod 2 = 0 then "mutex" else "cond" in
        match choice with
        | 0 -> Trace.Slice_open
        | 1 -> Trace.Slice_close { slice = a - 1; pages = b; bytes = c; cycles = d }
        | 2 -> Trace.Snapshot { page = a; cycles = b }
        | 3 -> Trace.Diff { page = a; bytes = b; runs = c; cycles = d }
        | 4 ->
          Trace.Propagate
            { slice = a - 1; src = b; pages = c; bytes = d; cycles = a + b }
        | 5 -> Trace.Prop_page { page = a; bytes = b }
        | 6 -> Trace.Gc { examined = a; freed = b; cycles = c }
        | 7 -> Trace.Lock_acquire { obj; handle = a; wait = b; queued = c }
        | 8 -> Trace.Lock_release { obj; handle = a; hold = b }
        | 9 -> Trace.Kendo_wait { cycles = a }
        | 10 -> Trace.Barrier_stall { barrier = a - 1; cycles = b }
        | 11 ->
          Trace.Fault
            { op = (if b mod 2 = 0 then "lock" else "malloc");
              action = (if c mod 2 = 0 then "crash" else "fail") }
        | 12 -> Trace.Thread_exit
        | 13 -> Trace.Steal { deque = a; victim = b; value = c }
        | 14 ->
          Trace.Span
            { phase = (if d mod 2 = 0 then "admit" else "response");
              req = a; a = b; b = c }
        | _ -> Trace.Thread_crash)
      (pair (0 -- 15) (quad (0 -- 1000) (0 -- 1000) (0 -- 1000) (0 -- 1000))))

(* trailing zeros trimmed, as the sink emits *)
let gen_vc =
  QCheck2.Gen.(
    map
      (fun l ->
        let a = Array.of_list l in
        let n = ref (Array.length a) in
        while !n > 0 && a.(!n - 1) = 0 do
          decr n
        done;
        Array.sub a 0 !n)
      (list_size (0 -- 5) (0 -- 9)))

let gen_event =
  QCheck2.Gen.(
    map
      (fun ((seq, tid, time), (vc, kind)) -> { Trace.seq; tid; time; vc; kind })
      (pair
         (triple (0 -- 100_000) (0 -- 16) (0 -- 1_000_000))
         (pair gen_vc gen_kind)))

let prop_line_roundtrip =
  QCheck2.Test.make ~name:"obs: of_line (to_line e) = e" ~count:500 gen_event
    (fun e ->
      match Trace.of_line (Trace.to_line e) with
      | Ok e' -> e = e'
      | Error msg -> QCheck2.Test.fail_reportf "parse error: %s" msg)

let prop_lines_roundtrip =
  QCheck2.Test.make ~name:"obs: of_lines (to_lines es) = es" ~count:100
    QCheck2.Gen.(list_size (0 -- 20) gen_event)
    (fun es ->
      match Trace.of_lines (Trace.to_lines es) with
      | Ok es' -> es = es'
      | Error msg -> QCheck2.Test.fail_reportf "parse error: %s" msg)

let test_line_rejects_garbage () =
  List.iter
    (fun line ->
      match Trace.of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "";
      "not a line";
      "0 0 0 - no_such_kind";
      "0 0 0 - slice_close slice=1";  (* missing keys *)
      "0 0 0 - kendo_wait cycles=x";  (* non-numeric *)
      "0 0 0 - kendo_wait wrong=3";  (* wrong key *)
    ]

(* ------------------------------------------------------------------ *)
(* Determinism inertness and trace determinism                          *)
(* ------------------------------------------------------------------ *)

let traced ?(seed = 1L) ?(jitter = 0.) runtime w =
  let obs = Sink.create () in
  let r = Runner.run ~scale ~sched_seed:seed ~jitter ~obs runtime w in
  (r, Sink.events obs)

(* Tracing must never perturb the run: same seed with and without a
   sink gives bit-identical signatures, makespans, op counts and
   profiles — for every runtime, including the nondeterministic
   baseline. *)
let test_tracing_inert () =
  let w = Registry.find "fft" in
  List.iter
    (fun (name, runtime) ->
      let plain = Runner.run ~scale runtime w in
      let with_obs, events = traced runtime w in
      Alcotest.(check string)
        (name ^ ": signature unchanged by tracing")
        plain.Runner.signature with_obs.Runner.signature;
      Alcotest.(check int)
        (name ^ ": makespan unchanged")
        plain.Runner.sim_time with_obs.Runner.sim_time;
      Alcotest.(check int)
        (name ^ ": engine ops unchanged")
        plain.Runner.ops with_obs.Runner.ops;
      Alcotest.(check (list (pair string int)))
        (name ^ ": profile unchanged")
        (Profile.fields plain.Runner.profile)
        (Profile.fields with_obs.Runner.profile);
      Alcotest.(check bool)
        (name ^ ": trace nonempty")
        true (events <> []))
    [
      ("pthreads", Runner.Pthreads);
      ("kendo", Runner.Kendo);
      ("dthreads", Runner.Dthreads);
      ("coredet", Runner.Coredet);
      ("rfdet-ci", Runner.rfdet_ci);
      ("rfdet-pf", Runner.rfdet_pf);
    ]

(* The trace is a pure function of (workload, runtime, seed): two
   same-seed runs serialize byte-identically, in both formats. *)
let test_trace_same_seed_identical () =
  List.iter
    (fun w ->
      let _, e1 = traced Runner.rfdet_ci w in
      let _, e2 = traced Runner.rfdet_ci w in
      Alcotest.(check string)
        (w.Rfdet_workloads.Workload.name ^ ": line dumps identical")
        (Trace.to_lines e1) (Trace.to_lines e2);
      Alcotest.(check string)
        (w.Rfdet_workloads.Workload.name ^ ": chrome exports identical")
        (Chrome.export e1) (Chrome.export e2))
    (Registry.find "fft" :: Registry.micro)

(* Under scheduling noise the trace tracks the actual interleaving, so
   a different seed shows up in the trace bytes. *)
let test_trace_seed_sensitive () =
  let w = Registry.find "fft" in
  let _, e1 = traced ~seed:1L ~jitter:12.0 Runner.Pthreads w in
  let _, e2 = traced ~seed:2L ~jitter:12.0 Runner.Pthreads w in
  Alcotest.(check bool)
    "different seeds give different pthreads traces" true
    (Trace.to_lines e1 <> Trace.to_lines e2)

(* Every event a real run emits survives the line round trip. *)
let test_real_trace_lines_roundtrip () =
  let _, events = traced Runner.rfdet_ci (Registry.find "fft") in
  List.iter
    (fun e ->
      let line = Trace.to_line e in
      match Trace.of_line line with
      | Ok e' ->
        if e <> e' then Alcotest.failf "round trip changed %S" line
      | Error msg -> Alcotest.failf "unparseable %S: %s" line msg)
    events

(* ------------------------------------------------------------------ *)
(* Sink ring buffer                                                    *)
(* ------------------------------------------------------------------ *)

let test_sink_ring () =
  let s = Sink.create ~capacity:4 () in
  for i = 0 to 9 do
    Sink.emit s ~tid:0 ~time:i Trace.Slice_open
  done;
  let es = Sink.events s in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length es);
  Alcotest.(check int) "total counts all" 10 (Sink.total s);
  Alcotest.(check int) "dropped" 6 (Sink.dropped s);
  Alcotest.(check (list int)) "oldest-first, seq preserved" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Trace.seq) es);
  Alcotest.(check bool) "null sink disabled" false (Sink.enabled Sink.null);
  Sink.emit Sink.null ~tid:0 ~time:0 Trace.Slice_open;
  Alcotest.(check int) "null sink stays empty" 0 (Sink.total Sink.null)

(* ------------------------------------------------------------------ *)
(* Chrome exporter                                                     *)
(* ------------------------------------------------------------------ *)

let test_chrome_shape () =
  let _, events = traced Runner.rfdet_ci (Registry.find "fft") in
  let json = Chrome.export events in
  Alcotest.(check bool) "object form" true
    (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (contains ~needle json))
    [
      "\"traceEvents\"";
      "\"ph\":\"M\"";  (* metadata: track names *)
      "\"ph\":\"X\"";  (* durations *)
      "\"ph\":\"i\"";  (* instants *)
      "\"ph\":\"s\"";  (* flow start at slice close *)
      "\"ph\":\"f\"";  (* flow end at propagation *)
      "\"thread_name\"";
      "\"process_name\"";
    ];
  Alcotest.(check bool) "closed" true
    (contains ~needle:"]}" json);
  (* crude balance check — every quote is paired, braces balance *)
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth else if c = '}' then decr depth)
    json;
  Alcotest.(check int) "braces balance" 0 !depth

(* Request spans export as Chrome async tracks: a `b`/`e` pair per
   request plus flow arrows from admission to the serving slice. *)
let test_chrome_request_tracks () =
  let _, events = traced Runner.rfdet_ci (Registry.find "kvserver") in
  let json = Chrome.export events in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (contains ~needle json))
    [
      "\"ph\":\"b\"";  (* async request open at admission *)
      "\"ph\":\"e\"";  (* async request close at response *)
      "\"ph\":\"n\"";  (* async instants for attempts/backoff *)
      "\"cat\":\"request\"";
      "request-flow";
      "\"name\":\"req ";
    ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Metrics.set m "g" 7;
  Metrics.set m "g" 9;
  List.iter (Metrics.observe m "h") [ 0; 1; 3; 8; 8; 1000 ];
  Alcotest.(check int) "counter" 5 (Metrics.counter m "a");
  Alcotest.(check int) "missing counter" 0 (Metrics.counter m "zzz");
  Alcotest.(check (option int)) "gauge last-write-wins" (Some 9)
    (Metrics.gauge m "g");
  (match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 6 h.Metrics.count;
    Alcotest.(check int) "sum" 1020 h.Metrics.sum;
    Alcotest.(check int) "min" 0 h.Metrics.min;
    Alcotest.(check int) "max" 1000 h.Metrics.max);
  Metrics.observe m "neg" (-5);
  match Metrics.histogram m "neg" with
  | Some h -> Alcotest.(check int) "negative clamps to 0" 0 h.Metrics.max
  | None -> Alcotest.fail "neg histogram missing"

(* JSON output is insertion-order-free: two registries filled in
   opposite orders serialize identically. *)
let test_metrics_json_stable () =
  let fill names m = List.iter (fun n -> Metrics.incr ~by:3 m n) names in
  let m1 = Metrics.create () and m2 = Metrics.create () in
  fill [ "x"; "m"; "a" ] m1;
  fill [ "a"; "m"; "x" ] m2;
  Metrics.observe m1 "h" 5;
  Metrics.observe m2 "h" 5;
  Alcotest.(check string) "sorted, identical" (Metrics.to_json m1)
    (Metrics.to_json m2);
  Alcotest.(check bool) "escapes keys" true
    (contains ~needle:"\\\"" (Metrics.json_escape "a\"b"))

(* ------------------------------------------------------------------ *)
(* Attribution reports                                                 *)
(* ------------------------------------------------------------------ *)

let test_breakdown_partitions () =
  let r, events = traced Runner.rfdet_ci (Registry.find "fft") in
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 r.Runner.thread_clocks
  in
  Alcotest.(check bool) "thread clocks recorded" true (total > 0);
  let bd = Report.breakdown ~total events in
  Alcotest.(check int) "total is the denominator" total bd.Report.total;
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " nonnegative") true (v >= 0))
    [
      ("compute", bd.Report.compute);
      ("wait", bd.Report.wait);
      ("propagate", bd.Report.propagate);
      ("diff", bd.Report.diff);
      ("gc", bd.Report.gc);
      ("monitor", bd.Report.monitor);
    ];
  (* compute is the residual, so the parts partition the total exactly
     whenever attribution doesn't overshoot *)
  Alcotest.(check int) "components sum to total" total
    (bd.Report.compute + bd.Report.wait + bd.Report.propagate
   + bd.Report.diff + bd.Report.gc + bd.Report.monitor);
  Alcotest.(check bool) "fft propagates" true (bd.Report.propagate > 0);
  Alcotest.(check bool) "fft waits on locks" true (bd.Report.wait > 0)

let test_lock_table_and_hot_pages () =
  let _, events = traced Runner.rfdet_ci (Registry.find "fft") in
  let rows = Report.lock_table events in
  Alcotest.(check bool) "fft uses locks" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "acquires positive" true (r.Report.acquires > 0);
      Alcotest.(check bool) "contended <= acquires" true
        (r.Report.contended <= r.Report.acquires);
      Alcotest.(check bool) "queued <= wait" true
        (r.Report.queued <= r.Report.wait))
    rows;
  let waits = List.map (fun r -> r.Report.wait) rows in
  Alcotest.(check (list int)) "sorted by descending wait"
    (List.sort (fun a b -> compare b a) waits)
    waits;
  let pages = Report.hot_pages ~top:5 events in
  Alcotest.(check bool) "pages propagated" true (pages <> []);
  Alcotest.(check bool) "at most top" true (List.length pages <= 5);
  let bytes = List.map (fun (_, b, _) -> b) pages in
  Alcotest.(check (list int)) "ranked by bytes"
    (List.sort (fun a b -> compare b a) bytes)
    bytes;
  (* renders never raise and carry their headers *)
  let total = 1_000_000 in
  Alcotest.(check bool) "breakdown renders" true
    (contains ~needle:"compute"
       (Report.render_breakdown (Report.breakdown ~total events)));
  Alcotest.(check bool) "lock table renders" true
    (contains ~needle:"mutex" (Report.render_lock_table rows));
  Alcotest.(check bool) "hot pages renders" true
    (contains ~needle:"page" (Report.render_hot_pages pages))

(* The contention table speaks the newer primitives' object classes
   too: rwlock reader batches land under "rwlock_r", writer holds under
   "rwlock_w", semaphore hand-offs under "sem" — and the work-stealing
   micro leaves Steal events in the raw trace for the thief columns. *)
let test_contention_table_primitives () =
  let table w =
    let _, events = traced Runner.rfdet_ci (Registry.find w) in
    (List.map (fun r -> r.Report.obj) (Report.lock_table events), events)
  in
  let rw_objs, _ = table "micro-rwlock" in
  Alcotest.(check bool) "reader batches tracked" true
    (List.mem "rwlock_r" rw_objs);
  Alcotest.(check bool) "writer holds tracked" true
    (List.mem "rwlock_w" rw_objs);
  let sem_objs, _ = table "micro-sem" in
  Alcotest.(check bool) "sem handoffs tracked" true (List.mem "sem" sem_objs);
  (* the deque micro is lock-free on the steal path: it shows up as
     Steal events in the raw trace rather than lock-table rows *)
  let _, steal_events = table "micro-steal" in
  let steals =
    List.filter
      (fun (e : Trace.event) ->
        match e.kind with Trace.Steal _ -> true | _ -> false)
      steal_events
  in
  Alcotest.(check bool) "steals traced" true (steals <> []);
  (* mixed-primitive render carries every object class it saw *)
  let _, rw_events = table "kvserver-rw" in
  let rendered = Report.render_lock_table (Report.lock_table rw_events) in
  Alcotest.(check bool) "render names rwlock_r" true
    (contains ~needle:"rwlock_r" rendered)

let test_report_fill_metrics () =
  let _, events = traced Runner.rfdet_ci (Registry.find "fft") in
  let m = Metrics.create () in
  Report.fill_metrics m events;
  Alcotest.(check int) "trace.events counts all" (List.length events)
    (Metrics.counter m "trace.events");
  Alcotest.(check bool) "per-kind counters" true
    (Metrics.counter m "trace.slice_close" > 0);
  Alcotest.(check bool) "propagate histogram" true
    (Metrics.histogram m "propagate.bytes" <> None);
  Alcotest.(check bool) "lock wait histogram" true
    (Metrics.histogram m "lock.wait" <> None)

(* ------------------------------------------------------------------ *)
(* Profile satellites                                                  *)
(* ------------------------------------------------------------------ *)

let test_profile_json_and_pp () =
  let r = Runner.run ~scale Runner.rfdet_ci (Registry.find "fft") in
  let p = r.Runner.profile in
  let json = Profile.to_json p in
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) ("json has " ^ k) true
        (contains ~needle:(Printf.sprintf "\"%s\":" k) json))
    (Profile.fields p);
  Alcotest.(check int) "44 fields" 44 (List.length (Profile.fields p));
  let pp = Format.asprintf "%a" Profile.pp p in
  (* the once-dropped fields all print now *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("pp has " ^ needle) true (contains ~needle pp))
    [
      "atomics="; "diff_scanned="; "gc_freed="; "kendo="; "barrier_stalls=";
      "unheard_signals="; "steals=";
    ];
  let m = Metrics.create () in
  Profile.fill_metrics m p;
  Alcotest.(check int) "profile mirrored into metrics" p.Profile.locks
    (Metrics.counter m "profile.locks")

(* ------------------------------------------------------------------ *)
(* Quantile estimates                                                   *)
(* ------------------------------------------------------------------ *)

(* Exact q-quantile of a sample list: the rank-ceil(q*n) smallest
   element (1-based) — the oracle the bucketed estimate is checked
   against. *)
let exact_quantile samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(rank - 1)

(* The pow2-bucket estimate can only round a sample up to the end of its
   bucket: exact <= estimate <= 2*exact + 1 (the +1 covers exact = 0). *)
let prop_quantile_bounds =
  QCheck2.Test.make ~name:"obs: quantile bounded by 2x exact" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (1 -- 200) (frequency [ (3, 0 -- 100); (1, 0 -- 1_000_000) ]))
        (0 -- 1000))
    (fun (samples, permille) ->
      let q = float_of_int permille /. 1000. in
      let m = Metrics.create () in
      List.iter (Metrics.observe m "h") samples;
      let s = Option.get (Metrics.histogram m "h") in
      let est = Metrics.quantile s q in
      let exact = exact_quantile samples q in
      if not (exact <= est && est <= (2 * exact) + 1) then
        QCheck2.Test.fail_reportf "q=%.3f exact=%d est=%d" q exact est
      else true)

let test_quantile_edge_cases () =
  let m = Metrics.create () in
  Metrics.observe m "one" 7;
  let s = Option.get (Metrics.histogram m "one") in
  Alcotest.(check int) "single sample p50" 7 (Metrics.quantile s 0.5);
  Alcotest.(check int) "single sample p999" 7 (Metrics.quantile s 0.999);
  Metrics.observe m "zeros" 0;
  Metrics.observe m "zeros" 0;
  let z = Option.get (Metrics.histogram m "zeros") in
  Alcotest.(check int) "all-zero p99" 0 (Metrics.quantile z 0.99);
  let empty =
    { Metrics.count = 0; sum = 0; min = 0; max = 0; buckets = [] }
  in
  Alcotest.(check int) "empty histogram" 0 (Metrics.quantile empty 0.5);
  let json = Metrics.to_json m in
  Alcotest.(check bool) "json has p999" true
    (contains ~needle:"\"p999\"" json);
  let r = Report.render_quantiles m [ "one"; "absent" ] in
  Alcotest.(check bool) "render has row" true (contains ~needle:"one" r)

let suites =
  [
    ( "obs",
      [
        QCheck_alcotest.to_alcotest prop_line_roundtrip;
        QCheck_alcotest.to_alcotest prop_lines_roundtrip;
        QCheck_alcotest.to_alcotest prop_quantile_bounds;
        Alcotest.test_case "quantile edge cases" `Quick
          test_quantile_edge_cases;
        Alcotest.test_case "line parser rejects garbage" `Quick
          test_line_rejects_garbage;
        Alcotest.test_case "tracing is deterministically inert" `Quick
          test_tracing_inert;
        Alcotest.test_case "same seed, same trace bytes" `Quick
          test_trace_same_seed_identical;
        Alcotest.test_case "different seed, different trace" `Quick
          test_trace_seed_sensitive;
        Alcotest.test_case "real trace lines round-trip" `Quick
          test_real_trace_lines_roundtrip;
        Alcotest.test_case "sink ring buffer" `Quick test_sink_ring;
        Alcotest.test_case "chrome export shape" `Quick test_chrome_shape;
        Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
        Alcotest.test_case "metrics JSON is order-free" `Quick
          test_metrics_json_stable;
        Alcotest.test_case "breakdown partitions total" `Quick
          test_breakdown_partitions;
        Alcotest.test_case "lock table and hot pages" `Quick
          test_lock_table_and_hot_pages;
        Alcotest.test_case "contention table covers rwlock/sem/steal" `Quick
          test_contention_table_primitives;
        Alcotest.test_case "chrome request tracks" `Quick
          test_chrome_request_tracks;
        Alcotest.test_case "trace-derived metrics" `Quick
          test_report_fill_metrics;
        Alcotest.test_case "profile json/pp/metrics" `Quick
          test_profile_json_and_pp;
      ] );
  ]
