(* The deterministic synchronization primitives (ISSUE: condvars,
   rwlocks, semaphores, work-stealing deques) — the conformance wall.

   The properties:
   (a) condvar wakeup order is a pure function of the waiters' Kendo
       stamps (lowest (icount, tid) first), independent of spawn order,
       scheduler seed and jitter;
   (b) steal order is a pure function of push stamps (globally oldest
       item first), independent of which owner pushed what and of the
       schedule;
   (c) the pipeline conserves items through broadcast/signal wakeups:
       every produced item is transformed and folded exactly once;
   (d) all four primitives give bit-identical signatures across the six
       deterministic runtimes under jitter, and their profile counters
       are stable across jittered schedules per runtime. *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Options = Rfdet_core.Options
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Registry = Rfdet_workloads.Registry
module Pipeline = Rfdet_workloads.Pipeline

let kendo = Rfdet_baselines.Kendo_runtime.make

let rfdet = Rfdet_core.Rfdet_runtime.make ~opts:Options.ci

let run ?(seed = 1L) ?(jitter = 0.) policy main =
  Engine.run
    ~config:{ Engine.default_config with seed; jitter_mean = jitter }
    policy ~main

let outputs r = List.map (fun (_, v) -> Int64.to_int v) r.Engine.outputs

(* Run [main] under kendo and rfdet-ci, each at two jittered seeds, and
   require all four runs to produce [expected]. *)
let check_pure name main expected =
  List.iter
    (fun (label, policy) ->
      List.iter
        (fun seed ->
          let got = outputs (run ~seed ~jitter:7.0 policy main) in
          if got <> expected then
            QCheck2.Test.fail_reportf "%s: %s seed=%Ld: got [%s], want [%s]"
              name label seed
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int expected)))
        [ 1L; 12L ])
    [ ("kendo", kendo); ("rfdet-ci", rfdet) ];
  true

(* --- (a) wakeup order = ascending stamp order ------------------------ *)

(* Each waiter burns [1000 * (rank + 1)] instructions before queueing on
   the condvar, so its wait stamp is ordered by rank with a margin that
   dwarfs the fixed protocol overhead.  The broadcast must then wake
   (and re-admit through the mutex) rank 0, 1, 2, ... whatever order
   the waiters were spawned in and wherever the scheduler preempted. *)
let wakeup_program spawn_order () =
  let n = List.length spawn_order in
  let waiting = Api.malloc 8 in
  let flag = Api.malloc 8 in
  let wcount = Api.malloc 8 in
  let log = Api.malloc (8 * n) in
  let m = Api.mutex_create () in
  let c = Api.cond_create () in
  let waiter rank () =
    Api.tick (1000 * (rank + 1));
    Api.lock m;
    Api.store waiting (Api.load waiting + 1);
    while Api.load flag = 0 do
      Api.cond_wait c m
    done;
    let i = Api.load wcount in
    Api.store (log + (8 * i)) rank;
    Api.store wcount (i + 1);
    Api.unlock m
  in
  let tids = List.map (fun rank -> Api.spawn (waiter rank)) spawn_order in
  let rec gate () =
    Api.lock m;
    if Api.load waiting < n then begin
      Api.unlock m;
      Api.tick 50;
      gate ()
    end
    else begin
      Api.store flag 1;
      Api.cond_broadcast c;
      Api.unlock m
    end
  in
  gate ();
  List.iter Api.join tids;
  for i = 0 to n - 1 do
    Api.output_int (Api.load (log + (8 * i)))
  done

let gen_permutation =
  QCheck2.Gen.(
    2 -- 4 >>= fun n ->
    shuffle_l (List.init n Fun.id))

let prop_wakeup_stamp_order =
  QCheck2.Test.make ~name:"sync: broadcast wakes in ascending stamp order"
    ~count:12 gen_permutation (fun spawn_order ->
      let n = List.length spawn_order in
      check_pure "wakeup" (wakeup_program spawn_order) (List.init n Fun.id))

(* --- (b) steal order = globally oldest push stamp first -------------- *)

(* Two owners each push three items; the instruction counts at the six
   pushes are the generated (distinct) cumulative budgets x 1000, so the
   global oldest-first steal order is the sort of those budgets —
   whichever deque each item sits in. *)
let steal_program own0 own1 () =
  let owner cums () =
    let d = Api.deque_create () in
    let prev = ref 0 in
    List.iter
      (fun (c, v) ->
        Api.tick ((c - !prev) * 1000);
        prev := c;
        Api.deque_push d v)
      cums
  in
  let a = Api.spawn (owner own0) in
  let b = Api.spawn (owner own1) in
  Api.join a;
  Api.join b;
  let rec drain () =
    match Api.deque_steal () with
    | `Item v ->
      Api.output_int v;
      drain ()
    | `Empty -> Api.output_int (-1)
  in
  drain ()

let gen_budgets =
  (* six gaps >= 1 give six distinct ascending cumulative budgets; a
     random half (in ascending order, pushes only append) per owner *)
  QCheck2.Gen.(
    pair (list_repeat 6 (1 -- 10)) (shuffle_l (List.init 6 Fun.id))
    >|= fun (gaps, perm) ->
    let cums =
      List.rev
        (List.fold_left
           (fun acc g ->
             (g + match acc with [] -> 0 | c :: _ -> c) :: acc)
           [] gaps)
    in
    let arr = Array.of_list cums in
    let half i = List.filteri (fun j _ -> j / 3 = i) perm in
    let pick i = List.map (Array.get arr) (List.sort compare (half i)) in
    (pick 0, pick 1))

let prop_steal_oldest_first =
  QCheck2.Test.make ~name:"sync: steal takes the globally oldest item"
    ~count:12 gen_budgets (fun (cum0, cum1) ->
      let own0 = List.mapi (fun i c -> (c, 100 + i)) cum0 in
      let own1 = List.mapi (fun i c -> (c, 200 + i)) cum1 in
      let expected =
        List.sort compare (own0 @ own1) |> List.map snd
      in
      check_pure "steal" (steal_program own0 own1) (expected @ [ -1 ]))

(* --- (c) pipeline conservation through condvar wakeups --------------- *)

let pipeline_program items stages () =
  let q1 = Pipeline.create ~capacity:3 in
  let q2 = Pipeline.create ~capacity:3 in
  let sum = Api.malloc 8 in
  let count = Api.malloc 8 in
  let worker () =
    let rec go () =
      let v = Pipeline.pop q1 in
      if v = 0 then Pipeline.push q2 0
      else begin
        Pipeline.push q2 ((v * 3) + 1);
        go ()
      end
    in
    go ()
  in
  let acc () =
    let rec go pills =
      if pills < stages then begin
        let v = Pipeline.pop q2 in
        if v = 0 then go (pills + 1)
        else begin
          Api.store sum (Api.load sum + v);
          Api.store count (Api.load count + 1);
          go pills
        end
      end
    in
    go 0
  in
  let tids = List.init stages (fun _ -> Api.spawn worker) in
  let acc_tid = Api.spawn acc in
  for i = 1 to items do
    Pipeline.push q1 i
  done;
  for _ = 1 to stages do
    Pipeline.push q1 0
  done;
  List.iter Api.join (tids @ [ acc_tid ]);
  Api.output_int (Api.load count);
  Api.output_int (Api.load sum)

let prop_pipeline_conserves =
  QCheck2.Test.make ~name:"sync: pipeline conserves every item exactly once"
    ~count:12
    QCheck2.Gen.(pair (1 -- 15) (1 -- 3))
    (fun (items, stages) ->
      let expect_sum = ((3 * items * (items + 1)) / 2) + items in
      check_pure "pipeline" (pipeline_program items stages)
        [ items; expect_sum ])

(* --- (d) six runtimes, one signature --------------------------------- *)

let dmt_runtimes =
  [ Runner.Kendo; Runner.Dthreads; Runner.Coredet; Runner.rfdet_ci;
    Runner.rfdet_pf; Runner.Rfdet Options.baseline_no_opt ]

let primitive_workloads =
  [ "micro-handoff"; "micro-rwlock"; "micro-sem"; "micro-steal"; "prodcons" ]

let test_six_runtimes_identical () =
  List.iter
    (fun name ->
      let wl = Registry.find name in
      let sigs =
        List.map
          (fun rt ->
            ( Runner.runtime_name rt,
              (Runner.run ~threads:3 ~sched_seed:5L ~jitter:8.0 rt wl)
                .Runner.signature ))
          dmt_runtimes
      in
      match sigs with
      | [] -> assert false
      | (_, s0) :: rest ->
        List.iter
          (fun (rt, s) ->
            Alcotest.(check string)
              (Printf.sprintf "%s: %s agrees with kendo" name rt)
              s0 s)
          rest)
    primitive_workloads

let test_deterministic_under_jitter () =
  List.iter
    (fun name ->
      let wl = Registry.find name in
      List.iter
        (fun rt ->
          let r = Determinism.check ~threads:3 ~runs:6 ~jitter:10.0 rt wl in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s deterministic" name
               (Runner.runtime_name rt))
            true r.Determinism.deterministic)
        [ Runner.Kendo; Runner.rfdet_ci ])
    primitive_workloads

let test_profiles_stable_under_jitter () =
  (* per runtime, the primitive profile counters are a schedule
     invariant: two jittered seeds must agree exactly *)
  List.iter
    (fun name ->
      let wl = Registry.find name in
      let counters seed =
        let p =
          (Runner.run ~threads:3 ~sched_seed:seed ~jitter:9.0 Runner.rfdet_ci
             wl)
            .Runner.profile
        in
        ( p.Rfdet_sim.Profile.cond_unheard_signals,
          p.Rfdet_sim.Profile.rw_reader_batches,
          p.Rfdet_sim.Profile.rw_batch_readers,
          p.Rfdet_sim.Profile.steals_attempted,
          p.Rfdet_sim.Profile.steals_succeeded )
      in
      let a, b, c, d, e = counters 3L in
      let a', b', c', d', e' = counters 77L in
      Alcotest.(check (list int))
        (name ^ ": primitive counters stable")
        [ a; b; c; d; e ] [ a'; b'; c'; d'; e' ])
    primitive_workloads

let test_steal_profile_counts () =
  (* micro-steal at 3 threads: 5 items pushed, 1 popped by main, so the
     thieves' successful steals must total 4 whatever the assignment *)
  let wl = Registry.find "micro-steal" in
  let p = (Runner.run ~threads:3 Runner.rfdet_ci wl).Runner.profile in
  Alcotest.(check int) "steals succeeded" 4 p.Rfdet_sim.Profile.steals_succeeded;
  Alcotest.(check bool)
    "attempts cover successes" true
    (p.Rfdet_sim.Profile.steals_attempted >= p.Rfdet_sim.Profile.steals_succeeded)

let test_unheard_signal_counter () =
  (* a signal with no waiters is counted, not dropped silently *)
  let r =
    run rfdet (fun () ->
        let c = Api.cond_create () in
        Api.cond_signal c;
        Api.cond_signal c;
        Api.output_int 1)
  in
  Alcotest.(check int) "two unheard signals" 2
    r.Engine.profile.Rfdet_sim.Profile.cond_unheard_signals

let suites =
  [
    ( "sync-primitives",
      [
        QCheck_alcotest.to_alcotest prop_wakeup_stamp_order;
        QCheck_alcotest.to_alcotest prop_steal_oldest_first;
        QCheck_alcotest.to_alcotest prop_pipeline_conserves;
        Alcotest.test_case "six runtimes, one signature" `Quick
          test_six_runtimes_identical;
        Alcotest.test_case "deterministic under jitter" `Quick
          test_deterministic_under_jitter;
        Alcotest.test_case "profile counters stable under jitter" `Quick
          test_profiles_stable_under_jitter;
        Alcotest.test_case "steal conservation in the profile" `Quick
          test_steal_profile_counts;
        Alcotest.test_case "unheard signals are counted" `Quick
          test_unheard_signal_counter;
      ] );
  ]
