(* Direct unit tests for the RFDet core data structures: Slice, Metadata
   (usage metering + GC), Tstate and Propagate. *)

module Slice = Rfdet_core.Slice
module Metadata = Rfdet_core.Metadata
module Tstate = Rfdet_core.Tstate
module Propagate = Rfdet_core.Propagate
module Options = Rfdet_core.Options
module Vclock = Rfdet_util.Vclock
module Diff = Rfdet_mem.Diff
module Space = Rfdet_mem.Space
module Page = Rfdet_mem.Page

let vc l = Vclock.of_list l

let slice ~id ~tid ~mods ~time = Slice.make ~id ~tid ~mods ~time:(vc time)

let run1 addr data = [ { Diff.addr; data } ]

(* --- Slice ------------------------------------------------------------ *)

let test_slice_basics () =
  let s = slice ~id:0 ~tid:1 ~mods:(run1 100 "abc") ~time:[ 1; 2 ] in
  Alcotest.(check int) "bytes" 3 s.Slice.bytes;
  Alcotest.(check int) "footprint" (Slice.overhead_bytes + 3) (Slice.footprint s);
  Alcotest.(check bool) "not freed" false s.Slice.freed;
  Slice.free s;
  Alcotest.(check bool) "freed" true s.Slice.freed;
  Alcotest.(check bool) "mods dropped" true (s.Slice.mods = []);
  Alcotest.(check int) "footprint remembers size" (Slice.overhead_bytes + 3)
    (Slice.footprint s)

(* --- Metadata ---------------------------------------------------------- *)

let test_metadata_usage_and_gc () =
  let m = Metadata.create ~capacity:200 ~gc_threshold:0.5 in
  Alcotest.(check int) "empty" 0 (Metadata.usage m);
  let s1 = slice ~id:(Metadata.fresh_slice_id m) ~tid:0 ~mods:(run1 0 "xy") ~time:[ 1; 0 ] in
  let s2 = slice ~id:(Metadata.fresh_slice_id m) ~tid:1 ~mods:(run1 8 "z") ~time:[ 0; 1 ] in
  Metadata.add_slice m s1;
  Metadata.add_slice m s2;
  Alcotest.(check int) "usage" (Slice.footprint s1 + Slice.footprint s2)
    (Metadata.usage m);
  Alcotest.(check bool) "needs gc" true (Metadata.needs_gc m);
  (* frontier dominates s1 only *)
  let examined, freed = Metadata.gc m ~frontier:(vc [ 5; 0 ]) in
  Alcotest.(check int) "examined" 2 examined;
  Alcotest.(check int) "freed one" 1 freed;
  Alcotest.(check bool) "s1 freed" true s1.Slice.freed;
  Alcotest.(check bool) "s2 live" false s2.Slice.freed;
  Alcotest.(check int) "usage shrank" (Slice.footprint s2) (Metadata.usage m);
  Alcotest.(check int) "gc runs" 1 (Metadata.gc_runs m);
  Alcotest.(check int) "live slices" 1 (Metadata.live_slices m)

let test_metadata_snapshot_metering () =
  let m = Metadata.create ~capacity:100_000 ~gc_threshold:0.9 in
  Metadata.snapshot_taken m;
  Alcotest.(check int) "one page" Page.size (Metadata.usage m);
  Metadata.snapshot_released m;
  Alcotest.(check int) "released" 0 (Metadata.usage m);
  Alcotest.(check int) "peak remembers" Page.size (Metadata.peak m)

let test_metadata_rearm () =
  (* after a sweep that frees nothing, GC must not retrigger until usage
     grows — the anti-thrash guard *)
  let m = Metadata.create ~capacity:1000 ~gc_threshold:0.3 in
  let s =
    slice ~id:0 ~tid:0 ~mods:(run1 0 (String.make 300 'x')) ~time:[ 9; 9 ]
  in
  Metadata.add_slice m s;
  Alcotest.(check bool) "over threshold" true (Metadata.needs_gc m);
  let _, freed = Metadata.gc m ~frontier:(vc [ 0; 0 ]) in
  Alcotest.(check int) "nothing freeable" 0 freed;
  Alcotest.(check bool) "re-armed off" false (Metadata.needs_gc m)

let test_metadata_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Metadata.create: capacity <= 0")
    (fun () -> ignore (Metadata.create ~capacity:0 ~gc_threshold:0.5));
  Alcotest.check_raises "threshold"
    (Invalid_argument "Metadata.create: threshold out of (0,1]") (fun () ->
      ignore (Metadata.create ~capacity:10 ~gc_threshold:1.5))

(* --- Tstate ------------------------------------------------------------ *)

let test_tstate_fork_semantics () =
  let root = Tstate.create_root ~clock_size:4 ~monitoring:true in
  Space.store_int root.Tstate.shared 0 42;
  ignore (Vclock.tick root.Tstate.time 0);
  let s = slice ~id:0 ~tid:0 ~mods:(run1 0 "a") ~time:[ 1; 0; 0; 0 ] in
  Tstate.append_slice root s;
  let stamp = Vclock.copy root.Tstate.time in
  let child = Tstate.fork root ~tid:1 ~stamp in
  Alcotest.(check int) "memory inherited" 42 (Space.load_int child.Tstate.shared 0);
  Alcotest.(check int) "slices inherited" 1
    (Rfdet_util.Vec.length child.Tstate.slices);
  Alcotest.(check int) "resume index covers parent" 1
    (Tstate.resume_index child ~from:0);
  (* child clock: parent stamp with own component ticked *)
  Alcotest.(check (list int)) "child clock" [ 1; 1; 0; 0 ]
    (Vclock.to_list child.Tstate.time);
  (* independent memories after the fork *)
  Space.store_int child.Tstate.shared 0 7;
  Alcotest.(check int) "parent unaffected" 42 (Space.load_int root.Tstate.shared 0)

let test_tstate_pending () =
  let ts = Tstate.create_root ~clock_size:2 ~monitoring:true in
  Alcotest.(check bool) "no pending" false (Tstate.has_pending ts 3);
  Tstate.add_pending ts 3 (run1 (3 * Page.size) "ab");
  Tstate.add_pending ts 3 (run1 ((3 * Page.size) + 5) "c");
  Alcotest.(check bool) "pending" true (Tstate.has_pending ts 3);
  Alcotest.(check (list int)) "pending pages" [ 3 ] (Tstate.pending_pages ts);
  let runs = Tstate.pending_runs ts 3 in
  Alcotest.(check int) "runs in order" 2 (List.length runs);
  (match runs with
  | [ a; b ] ->
    Alcotest.(check int) "first first" (3 * Page.size) a.Diff.addr;
    Alcotest.(check int) "second second" ((3 * Page.size) + 5) b.Diff.addr
  | _ -> Alcotest.fail "expected 2 runs");
  Alcotest.(check bool) "cleared" false (Tstate.has_pending ts 3)

(* --- Propagate --------------------------------------------------------- *)

let mk_state tid =
  let root = Tstate.create_root ~clock_size:4 ~monitoring:true in
  (* cheap way to get a tid-labelled state *)
  if tid = 0 then root
  else Tstate.fork root ~tid ~stamp:(Vclock.create 4)

let test_propagate_filters () =
  let from = mk_state 1 in
  let into = mk_state 0 in
  let mk id time data =
    let s = slice ~id ~tid:1 ~mods:(run1 (id * 16) data) ~time in
    Tstate.append_slice from s;
    s
  in
  let s_old = mk 0 [ 0; 1; 0; 0 ] "A" in
  let s_mid = mk 1 [ 0; 2; 0; 0 ] "B" in
  let s_new = mk 2 [ 0; 9; 0; 0 ] "C" in
  let prof = Rfdet_sim.Profile.create () in
  let cycles =
    Propagate.run ~cost:Rfdet_sim.Cost.default
      ~opts:{ Options.ci with lazy_writes = false }
      ~prof ~from ~upto:3 ~into
      ~upper:(vc [ 1; 3; 0; 0 ]) (* sees s_old, s_mid, not s_new *)
      ~lower:(vc [ 0; 1; 5; 5 ]) (* s_old already seen *)
      ()
  in
  Alcotest.(check bool) "cycles positive" true (cycles > 0);
  Alcotest.(check int) "one slice propagated" 1
    prof.Rfdet_sim.Profile.slices_propagated;
  Alcotest.(check int) "s_mid bytes applied" (Char.code 'B')
    (Space.load_byte into.Tstate.shared 16);
  Alcotest.(check int) "s_old not applied" 0
    (Space.load_byte into.Tstate.shared 0);
  Alcotest.(check int) "s_new not applied" 0
    (Space.load_byte into.Tstate.shared 32);
  ignore (s_old, s_mid, s_new);
  (* resume index advanced: a second propagation rescans nothing *)
  Alcotest.(check int) "resume index" 3 (Tstate.resume_index into ~from:1);
  let prof2 = Rfdet_sim.Profile.create () in
  let _ =
    Propagate.run ~cost:Rfdet_sim.Cost.default
      ~opts:{ Options.ci with lazy_writes = false }
      ~prof:prof2 ~from ~upto:3 ~into ~upper:(vc [ 9; 9; 9; 9 ])
      ~lower:(vc [ 0; 0; 0; 0 ]) ()
  in
  Alcotest.(check int) "nothing rescanned" 0
    prof2.Rfdet_sim.Profile.slices_propagated

let test_propagate_skips_freed () =
  let from = mk_state 1 in
  let into = mk_state 0 in
  let s = slice ~id:0 ~tid:1 ~mods:(run1 64 "Z") ~time:[ 0; 1; 0; 0 ] in
  Tstate.append_slice from s;
  Slice.free s;
  let prof = Rfdet_sim.Profile.create () in
  let _ =
    Propagate.run ~cost:Rfdet_sim.Cost.default
      ~opts:{ Options.ci with lazy_writes = false }
      ~prof ~from ~upto:1 ~into ~upper:(vc [ 9; 9; 9; 9 ])
      ~lower:(vc [ 0; 0; 0; 0 ]) ()
  in
  Alcotest.(check int) "freed slice skipped" 0
    prof.Rfdet_sim.Profile.slices_propagated

let test_propagate_lazy_defers_large () =
  let from = mk_state 1 in
  let into = mk_state 0 in
  let big = String.make 600 'Q' in
  let s = slice ~id:0 ~tid:1 ~mods:(run1 (5 * Page.size) big) ~time:[ 0; 1; 0; 0 ] in
  Tstate.append_slice from s;
  let prof = Rfdet_sim.Profile.create () in
  let _ =
    Propagate.run ~cost:Rfdet_sim.Cost.default ~opts:Options.ci ~prof ~from
      ~upto:1 ~into ~upper:(vc [ 9; 9; 9; 9 ]) ~lower:(vc [ 0; 0; 0; 0 ]) ()
  in
  Alcotest.(check bool) "page pending" true (Tstate.has_pending into 5);
  Alcotest.(check bool) "bytes not yet applied" true
    (Space.load_byte into.Tstate.shared (5 * Page.size) = 0);
  Alcotest.(check bool) "page protected" true
    (Space.protection into.Tstate.shared 5 = Space.Prot_none)

let suites =
  [
    ( "metadata",
      [
        Alcotest.test_case "slice basics" `Quick test_slice_basics;
        Alcotest.test_case "usage + GC" `Quick test_metadata_usage_and_gc;
        Alcotest.test_case "snapshot metering" `Quick
          test_metadata_snapshot_metering;
        Alcotest.test_case "anti-thrash rearm" `Quick test_metadata_rearm;
        Alcotest.test_case "validation" `Quick test_metadata_validation;
        Alcotest.test_case "tstate fork" `Quick test_tstate_fork_semantics;
        Alcotest.test_case "tstate pending" `Quick test_tstate_pending;
        Alcotest.test_case "propagate filters" `Quick test_propagate_filters;
        Alcotest.test_case "propagate skips freed" `Quick
          test_propagate_skips_freed;
        Alcotest.test_case "propagate lazy defers" `Quick
          test_propagate_lazy_defers_large;
      ] );
  ]
