module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Kendo_rt = Rfdet_baselines.Kendo_runtime
module Arbiter = Rfdet_kendo.Arbiter

let run ?config main = Engine.run ?config Kendo_rt.make ~main

let with_seed seed jitter =
  { Engine.default_config with seed; jitter_mean = jitter }

let test_lock_counter () =
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let m = Api.mutex_create () in
        let body () =
          for _ = 1 to 25 do
            Api.with_lock m (fun () -> Api.store addr (Api.load addr + 1))
          done
        in
        let c1 = Api.spawn body and c2 = Api.spawn body in
        Api.join c1;
        Api.join c2;
        Api.output_int (Api.load addr))
  in
  Alcotest.(check bool) "counter correct" true (r.Engine.outputs = [ (0, 50L) ])

let test_deterministic_across_seeds () =
  (* Race-free program whose *order-sensitive* result is observed: each
     thread appends its tid to a shared log under a lock.  Kendo must
     produce the same log for every scheduler seed. *)
  let program () =
    let log_len = Layout.globals_base in
    let log = Layout.globals_base + 8 in
    let m = Api.mutex_create () in
    let body k () =
      for _ = 1 to 10 do
        Api.tick (50 * k);
        Api.with_lock m (fun () ->
            let n = Api.load log_len in
            Api.store (log + (8 * n)) (Api.self ());
            Api.store log_len (n + 1))
      done
    in
    let c1 = Api.spawn (body 1) and c2 = Api.spawn (body 3) in
    let c3 = Api.spawn (body 7) in
    Api.join c1;
    Api.join c2;
    Api.join c3;
    let n = Api.load log_len in
    for i = 0 to n - 1 do
      Api.output_int (Api.load (log + (8 * i)))
    done
  in
  let sig_of seed = Engine.output_signature (run ~config:(with_seed seed 10.) program) in
  let s1 = sig_of 1L in
  for i = 2 to 8 do
    Alcotest.(check string) "same log across seeds" s1 (sig_of (Int64.of_int i))
  done

let test_grant_order_by_icount () =
  (* Two threads request the same lock; the one with fewer executed
     instructions wins regardless of simulated-time arrival. *)
  let r =
    run (fun () ->
        let addr = Layout.globals_base in
        let m = Api.mutex_create () in
        let slow =
          Api.spawn (fun () ->
              Api.tick 10_000;
              (* high icount *)
              Api.with_lock m (fun () -> Api.store addr (Api.load addr + 1));
              Api.output_int 100)
        in
        let fast =
          Api.spawn (fun () ->
              Api.tick 10;
              (* low icount: must acquire first *)
              Api.with_lock m (fun () ->
                  Api.output_int (Api.load addr);
                  Api.store addr (Api.load addr + 1)))
        in
        Api.join slow;
        Api.join fast)
  in
  (* fast (tid 2) observed addr before slow's increment -> saw 0 *)
  Alcotest.(check bool) "low-icount thread acquired first" true
    (List.mem (2, 0L) r.Engine.outputs)

let test_cond_deterministic_wakeup () =
  (* Three waiters, one broadcast: wakeup order (hence the order of log
     appends) must be identical across seeds. *)
  let program () =
    let flag = Layout.globals_base in
    let log_len = Layout.globals_base + 8 in
    let log = Layout.globals_base + 16 in
    let m = Api.mutex_create () in
    let c = Api.cond_create () in
    let waiter k () =
      Api.tick (13 * k);
      Api.lock m;
      while Api.load flag = 0 do
        Api.cond_wait c m
      done;
      let n = Api.load log_len in
      Api.store (log + (8 * n)) (Api.self ());
      Api.store log_len (n + 1);
      Api.unlock m
    in
    let ws = List.map (fun k -> Api.spawn (waiter k)) [ 1; 2; 3 ] in
    Api.tick 5_000;
    Api.lock m;
    Api.store flag 1;
    Api.cond_broadcast c;
    Api.unlock m;
    List.iter Api.join ws;
    let n = Api.load log_len in
    for i = 0 to n - 1 do
      Api.output_int (Api.load (log + (8 * i)))
    done
  in
  let sig_of seed =
    Engine.output_signature (run ~config:(with_seed seed 12.) program)
  in
  let s1 = sig_of 100L in
  for i = 101 to 105 do
    Alcotest.(check string) "same wakeup order" s1 (sig_of (Int64.of_int i))
  done

let test_barrier_releases_all () =
  let r =
    run (fun () ->
        let b = Api.barrier_create 2 in
        let c =
          Api.spawn (fun () ->
              Api.barrier_wait b;
              Api.output_int 7)
        in
        Api.tick 1_000;
        Api.barrier_wait b;
        Api.output_int 9;
        Api.join c)
  in
  Alcotest.(check int) "both passed" 2 (List.length r.Engine.outputs)

let test_spawn_inherits_icount () =
  (* A child created late must not stall other threads' Kendo turns: its
     icount is seeded from the parent's, so it is already "past" earlier
     synchronization stamps. *)
  let r =
    run (fun () ->
        let m = Api.mutex_create () in
        Api.tick 50_000;
        let child =
          Api.spawn (fun () -> Api.with_lock m (fun () -> Api.output_int 1))
        in
        Api.with_lock m (fun () -> Api.output_int 2);
        Api.join child)
  in
  Alcotest.(check int) "completed" 2 (List.length r.Engine.outputs)

let test_arbiter_unit () =
  (* Drive the arbiter directly through a minimal engine run. *)
  let result =
    Engine.run
      (fun engine ->
        let arb = Arbiter.create engine in
        Arbiter.thread_started arb ~tid:0;
        let granted = ref [] in
        {
          Engine.policy_name = "arbiter-test";
          handle =
            (fun ~tid op ->
              match op with
              | Rfdet_sim.Op.Lock _ ->
                Arbiter.request arb ~tid ~grant:(fun ~now ->
                    granted := (tid, now) :: !granted;
                    Arbiter.set_active arb ~tid;
                    Engine.wake engine ~tid ~value:0 ~not_before:now);
                Engine.Block
              | Rfdet_sim.Op.Output _ | _ -> Engine.Done 0)
          ;
          on_engine_op = (fun ~tid:_ _ outcome -> outcome);
          on_thread_exit = (fun ~tid -> Arbiter.thread_finished arb ~tid);
          on_thread_crash = Engine.escalate_crash;
          on_step = (fun () -> Arbiter.poll arb);
          on_finish = (fun () -> ());
        })
      ~main:(fun () ->
        Api.lock (Api.Handle.mutex_of_int 1);
        Api.lock (Api.Handle.mutex_of_int 1))
  in
  Alcotest.(check int) "ran to completion" 1 result.Engine.threads

let suites =
  [
    ( "kendo",
      [
        Alcotest.test_case "lock counter" `Quick test_lock_counter;
        Alcotest.test_case "deterministic across seeds" `Quick
          test_deterministic_across_seeds;
        Alcotest.test_case "grant order by icount" `Quick
          test_grant_order_by_icount;
        Alcotest.test_case "cond deterministic wakeup" `Quick
          test_cond_deterministic_wakeup;
        Alcotest.test_case "barrier releases all" `Quick
          test_barrier_releases_all;
        Alcotest.test_case "spawn inherits icount" `Quick
          test_spawn_inherits_icount;
        Alcotest.test_case "arbiter unit" `Quick test_arbiter_unit;
      ] );
  ]
