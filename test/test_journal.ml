(* Decision journals: record/replay byte-identity, torn-tail recovery,
   loud corruption detection, the chaos/fuzz harness, and offline race
   detection over journals (with auto-minimized repros).

   The invariant under test everywhere: a mutated journal either fails
   LOUDLY (a distinct scan/replay error) or replays to a byte-identical
   summary.  There is no third outcome — silent divergence is the one
   thing the format must make impossible. *)

module Engine = Rfdet_sim.Engine
module Runner = Rfdet_harness.Runner
module Registry = Rfdet_workloads.Registry
module Fault_plan = Rfdet_fault.Fault_plan
module Race = Rfdet_detect.Race_detector
module Trace = Rfdet_check.Trace
module Explore = Rfdet_check.Explore
module J = Rfdet_replay.Journal
module S = Rfdet_replay.Session
module O = Rfdet_replay.Offline

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let with_temp f =
  let path = Filename.temp_file "rfdet-journal-test" ".rfdj" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let spec ?(runtime = Runner.rfdet_ci) ?(threads = 2) ?(scale = 0.05)
    ?(jitter = 0.) ?(fault_mode = Engine.Contain) ?faults name =
  {
    S.workload = Registry.find name;
    runtime;
    threads;
    scale;
    input_seed = 42L;
    sched_seed = 1L;
    jitter;
    fault_mode;
    faults;
  }

let replay_ok ?(recover = false) path =
  match S.replay ~recover ~path () with
  | Ok ok -> ok
  | Error e -> Alcotest.fail (S.describe_error e)

(* All six DMT runtimes (pthreads is the nondeterministic baseline). *)
let dmt_runtimes =
  List.filter (fun (n, _) -> n <> "pthreads") Runner.named_runtimes

(* --- roundtrip -------------------------------------------------------- *)

let test_roundtrip () =
  with_temp @@ fun path ->
  let s = S.record ~path (spec "kvserver" ~threads:4 ~scale:0.1) in
  (match J.scan_file path with
  | Ok (J.Complete { header; decisions; trailer }) ->
    Alcotest.(check string) "workload" "kvserver" header.J.workload;
    Alcotest.(check string) "runtime" "rfdet-ci" header.J.runtime;
    Alcotest.(check int) "decoded decisions" s.S.s_decisions
      (Array.length decisions);
    Alcotest.(check int) "trailer decisions" s.S.s_decisions
      trailer.J.decisions;
    Alcotest.(check string) "trailer signature" s.S.s_signature
      trailer.J.signature
  | Ok _ -> Alcotest.fail "expected a Complete scan"
  | Error e -> Alcotest.fail e);
  let ok = replay_ok path in
  Alcotest.(check bool) "summary identical" true (ok.S.r_summary = s);
  Alcotest.(check bool) "not recovered" false ok.S.r_recovered

let test_roundtrip_fault_recovery () =
  with_temp @@ fun path ->
  let faults =
    match Fault_plan.parse "crash,tid=2,op=lock,n=3" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let s =
    S.record ~path
      (spec "kvserver" ~threads:4 ~scale:0.1 ~fault_mode:Engine.Recover
         ~faults)
  in
  let ok = replay_ok path in
  Alcotest.(check bool) "crash-recovery run replays identically" true
    (ok.S.r_summary = s)

(* --- minimality ------------------------------------------------------- *)

let test_minimality () =
  (* the journal records only free decisions: orders of magnitude fewer
     entries than engine ops ... *)
  with_temp @@ fun path ->
  let s = S.record ~path (spec "kvserver" ~threads:4 ~scale:0.1) in
  Alcotest.(check bool) "decisions << ops" true
    (s.S.s_decisions * 10 < s.S.s_ops);
  (* ... and a one-worker run almost never has a multi-thread ready
     set (only the instants where main and its single worker overlap
     around spawn/join), so its journal is near-empty *)
  with_temp @@ fun path1 ->
  let s1 = S.record ~path:path1 (spec "micro-lock" ~threads:1 ~scale:0.2) in
  Alcotest.(check bool) "singleton ready sets are free" true
    (s1.S.s_decisions <= 2);
  let ok = replay_ok path1 in
  Alcotest.(check bool) "near-empty journal still replays" true
    (ok.S.r_summary = s1)

(* --- torn tails ------------------------------------------------------- *)

let test_torn_recovery () =
  with_temp @@ fun path ->
  let s = S.record ~path (spec "kvserver" ~threads:4 ~scale:0.1) in
  let bytes = read_file path in
  write_bytes path (String.sub bytes 0 (String.length bytes - 23));
  (match S.replay ~path () with
  | Error (S.E_torn _) -> ()
  | Error e ->
    Alcotest.fail ("expected E_torn, got " ^ S.describe_error e)
  | Ok _ -> Alcotest.fail "strict replay accepted a torn tail");
  let ok = replay_ok ~recover:true path in
  Alcotest.(check bool) "recovered" true ok.S.r_recovered;
  Alcotest.(check string) "recovery converges on the recorded run"
    s.S.s_signature ok.S.r_summary.S.s_signature;
  Alcotest.(check int) "same decision count" s.S.s_decisions
    ok.S.r_summary.S.s_decisions

let test_abort_leaves_torn () =
  (* a recorder cut down mid-run (Journal.abort, as Session.record does
     on an escaping exception) must leave a recoverable torn journal,
     never a corrupt or complete-looking one *)
  with_temp @@ fun path ->
  let w = S.header_of_spec (spec "kvserver" ~threads:4 ~scale:0.1) in
  let writer = J.create ~path w in
  List.iter (J.add writer) [ 1; 2; 1; 3; 0 ];
  J.abort writer;
  match J.scan_file path with
  | Ok (J.Torn { decisions; synced; _ }) ->
    Alcotest.(check (list int)) "prefix survives" [ 1; 2; 1; 3; 0 ]
      (Array.to_list decisions);
    Alcotest.(check int) "synced through the marker" 5 synced
  | Ok (J.Complete _) -> Alcotest.fail "aborted journal scanned Complete"
  | Ok (J.Corrupt { reason; _ }) ->
    Alcotest.fail ("aborted journal scanned Corrupt: " ^ reason)
  | Error e -> Alcotest.fail e

(* --- corruption is always loud ---------------------------------------- *)

let test_checksum_flip_every_frame () =
  with_temp @@ fun path ->
  let _ = S.record ~path (spec "racey" ~threads:2 ~scale:0.05) in
  let bytes = read_file path in
  let frames = J.frame_offsets bytes in
  Alcotest.(check bool) "several frames" true (List.length frames >= 4);
  List.iteri
    (fun i (off, _tag, total) ->
      (* flip the last checksum byte of frame i: a complete frame that
         fails verification must scan Corrupt and name the frame *)
      let b = Bytes.of_string bytes in
      let p = off + total - 1 in
      Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 0xff));
      match J.scan_string (Bytes.to_string b) with
      | J.Corrupt { frame; _ } ->
        Alcotest.(check int)
          (Printf.sprintf "corruption attributed to frame %d" i)
          i frame
      | J.Complete _ -> Alcotest.fail "checksum flip scanned Complete"
      | J.Torn _ -> Alcotest.fail "checksum flip scanned Torn")
    frames

let splice bytes ~at ~len ~insert =
  String.sub bytes 0 at ^ insert
  ^ String.sub bytes (at + len) (String.length bytes - at - len)

let test_duplicate_and_drop_frames () =
  with_temp @@ fun path ->
  let _ = S.record ~path (spec "racey" ~threads:2 ~scale:0.05) in
  let bytes = read_file path in
  let frames = J.frame_offsets bytes in
  let nth i = List.nth frames i in
  (* duplicate a middle frame: the seq discontinuity is corruption *)
  let off, _, total = nth 1 in
  let frame_bytes = String.sub bytes off total in
  (match
     J.scan_string (splice bytes ~at:(off + total) ~len:0 ~insert:frame_bytes)
   with
  | J.Corrupt _ -> ()
  | _ -> Alcotest.fail "duplicated frame was not detected as corruption");
  (* drop a middle frame: likewise *)
  (match J.scan_string (splice bytes ~at:off ~len:total ~insert:"") with
  | J.Corrupt _ -> ()
  | _ -> Alcotest.fail "dropped frame was not detected as corruption");
  (* garbage and empty inputs are corrupt, not crashes *)
  (match J.scan_string "" with
  | J.Corrupt _ -> ()
  | _ -> Alcotest.fail "empty journal must scan Corrupt");
  match J.scan_string "this is not a journal" with
  | J.Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage must scan Corrupt"

(* --- chaos fuzz: loud or harmless, never a third outcome --------------- *)

(* A small corpus of (baseline summary, journal bytes): two workloads,
   two runtimes, one with jitter and one with a fault plan. *)
let fuzz_corpus =
  lazy
    (List.map
       (fun sp ->
         let path = Filename.temp_file "rfdet-fuzz" ".rfdj" in
         let s = S.record ~path sp in
         let bytes = read_file path in
         (try Sys.remove path with Sys_error _ -> ());
         (s, bytes))
       [
         spec "racey" ~threads:2 ~scale:0.05;
         spec "micro-lock" ~runtime:Runner.Kendo ~threads:3 ~scale:0.2
           ~jitter:5.;
       ])

let apply_mutation ~which ~kind ~pos ~byte =
  let _, bytes = List.nth (Lazy.force fuzz_corpus) (which mod 2) in
  let len = String.length bytes in
  match kind mod 4 with
  | 0 ->
    (* flip a byte (xor is never 0, so the byte always changes) *)
    let p = pos mod len in
    let b = Bytes.of_string bytes in
    Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor (1 + (byte mod 255))));
    (which mod 2, Bytes.to_string b)
  | 1 -> (which mod 2, String.sub bytes 0 (pos mod len))
  | 2 ->
    let frames = J.frame_offsets bytes in
    let off, _, total = List.nth frames (pos mod List.length frames) in
    (which mod 2, splice bytes ~at:(off + total) ~len:0
         ~insert:(String.sub bytes off total))
  | _ ->
    let frames = J.frame_offsets bytes in
    let off, _, total = List.nth frames (pos mod List.length frames) in
    (which mod 2, splice bytes ~at:off ~len:total ~insert:"")

let prop_fuzz =
  QCheck2.Test.make
    ~name:"journal fuzz: every mutation detected or byte-identical"
    ~count:80
    QCheck2.Gen.(
      quad (int_bound 1) (int_bound 3) (int_bound 1_000_000) (int_bound 254))
    (fun (which, kind, pos, byte) ->
      let idx, mutated = apply_mutation ~which ~kind ~pos ~byte in
      let base, bytes = List.nth (Lazy.force fuzz_corpus) idx in
      if mutated = bytes then true
      else
        with_temp @@ fun path ->
        write_bytes path mutated;
        match S.replay ~path () with
        | Error _ -> true (* loud: scan or verify refused it *)
        | Ok ok -> ok.S.r_summary = base (* or a byte-identical replay *))

(* --- offline race detection over journals ------------------------------ *)

let header_of path =
  match J.scan_file path with
  | Ok (J.Complete { header; _ }) -> header
  | Ok _ -> Alcotest.fail "expected a Complete scan"
  | Error e -> Alcotest.fail e

let test_races_cross_runtime () =
  (* the same racy workload recorded under every DMT runtime yields the
     identical racy-address digest: the happens-before relation is a
     pure function of the header, not of the runtime or schedule *)
  let digests =
    List.map
      (fun (name, runtime) ->
        with_temp @@ fun path ->
        let _ = S.record ~path (spec "racey" ~runtime ~threads:2 ~scale:0.05) in
        let ok = replay_ok path in
        Alcotest.(check bool) (name ^ " replays") true (not ok.S.r_recovered);
        match O.detect (header_of path) with
        | Ok report ->
          Alcotest.(check bool) (name ^ " detects races") true
            (report.Race.races <> []);
          (name, Race.digest report)
        | Error e -> Alcotest.fail e)
      dmt_runtimes
  in
  match digests with
  | (_, d) :: rest ->
    List.iter
      (fun (name, d') ->
        Alcotest.(check string) ("digest under " ^ name) d d')
      rest
  | [] -> Alcotest.fail "no runtimes"

let test_races_clean_workload () =
  with_temp @@ fun path ->
  let _ = S.record ~path (spec "micro-lock" ~threads:3 ~scale:0.2) in
  match O.detect (header_of path) with
  | Ok report ->
    Alcotest.(check int) "a locked counter has no races" 0
      (List.length report.Race.races)
  | Error e -> Alcotest.fail e

let test_minimize_repro () =
  with_temp @@ fun path ->
  let _ = S.record ~path (spec "racey" ~threads:2 ~scale:0.05) in
  let header = header_of path in
  match O.detect header with
  | Error e -> Alcotest.fail e
  | Ok report -> (
    match O.minimize_repro header report with
    | Error e -> Alcotest.fail e
    | Ok (tr, _tries) ->
      Alcotest.(check (option string)) "digest pinned in expect"
        (Some (Race.digest report))
        tr.Trace.expect;
      Alcotest.(check string) "detector runtime" Explore.detector_runtime
        tr.Trace.runtime;
      let r = Explore.replay ~strict:false tr in
      Alcotest.(check (option string)) "minimized repro replays clean" None
        r.Explore.r_error)

let suites =
  [
    ( "journal",
      [
        Alcotest.test_case "record/replay roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "crash-recovery run roundtrip" `Quick
          test_roundtrip_fault_recovery;
        Alcotest.test_case "log minimality" `Quick test_minimality;
        Alcotest.test_case "torn tail: strict refusal + recovery" `Quick
          test_torn_recovery;
        Alcotest.test_case "aborted recording is torn, not corrupt" `Quick
          test_abort_leaves_torn;
        Alcotest.test_case "checksum flip on every frame is loud" `Quick
          test_checksum_flip_every_frame;
        Alcotest.test_case "duplicate/drop/garbage are loud" `Quick
          test_duplicate_and_drop_frames;
        QCheck_alcotest.to_alcotest prop_fuzz;
      ] );
    ( "journal races",
      [
        Alcotest.test_case "identical digest across all 6 runtimes" `Quick
          test_races_cross_runtime;
        Alcotest.test_case "clean workload detects nothing" `Quick
          test_races_clean_workload;
        Alcotest.test_case "ddmin minimizes a replayable repro" `Quick
          test_minimize_repro;
      ] );
  ]
