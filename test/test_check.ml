(* The lib/check subsystem: systematic exploration, the DLRC
   conformance oracle, the schedule shrinker, trace replay and the
   regression corpus. *)

module Explore = Rfdet_check.Explore
module Shrink = Rfdet_check.Shrink
module Trace = Rfdet_check.Trace
module Differential = Rfdet_check.Differential
module Options = Rfdet_core.Options
module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload

let micro name = Registry.find name

(* --- exhaustive enumeration ------------------------------------------ *)

(* These counts document the full synchronization-interleaving space of
   each micro at 2 threads.  They only change if the workloads or the
   runtime's boundary structure change — in which case updating them
   here is the point of the test. *)
let test_exhaustive_micros () =
  List.iter
    (fun (name, expected) ->
      let s = Explore.explore (micro name) in
      Alcotest.(check (list reject))
        (name ^ ": no failures") []
        (List.map (fun f -> f.Explore.f_reason) s.Explore.failures);
      Alcotest.(check bool) (name ^ ": exhausted") false s.Explore.truncated;
      Alcotest.(check int) (name ^ ": schedule count") expected s.Explore.schedules;
      Alcotest.(check bool)
        (name ^ ": has reference") true
        (s.Explore.reference <> None))
    [
      ("micro-lock", 24);
      ("micro-handoff", 4);
      ("micro-barrier", 4);
      ("micro-atomic", 6);
      ("micro-rwlock", 12);
      ("micro-sem", 12);
      ("micro-steal", 6);
    ]

let test_pruning_sound () =
  (* pruning may only remove redundant schedules: the unpruned search
     agrees on the reference signature and also finds nothing *)
  let wl = micro "micro-lock" in
  let p = Explore.explore wl in
  let u = Explore.hunt wl in
  Alcotest.(check bool) "hunt finds nothing" true (u.Explore.failures = []);
  Alcotest.(check int) "hunt prunes nothing" 0 u.Explore.pruned;
  Alcotest.(check bool)
    "hunt explores at least as much" true
    (u.Explore.schedules >= p.Explore.schedules);
  Alcotest.(check (option string))
    "same reference" p.Explore.reference u.Explore.reference

let test_one_thread_degenerate () =
  (* "1 thread" still means main plus one worker, so a couple of real
     choice points remain (e.g. main reaching join while the worker sits
     at a boundary) — but the space must stay tiny and clean *)
  let config = { Explore.default_config with Explore.threads = 1 } in
  List.iter
    (fun wl ->
      let s = Explore.explore ~config wl in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tiny space (%d)" wl.Workload.name s.Explore.schedules)
        true
        (s.Explore.schedules >= 1 && s.Explore.schedules <= 8);
      Alcotest.(check bool)
        (wl.Workload.name ^ ": exhausted") false s.Explore.truncated;
      Alcotest.(check bool)
        (wl.Workload.name ^ ": clean") true (s.Explore.failures = []))
    Registry.micro

(* --- the oracle against a seeded visibility bug ----------------------- *)

let buggy_opts = { Options.ci with Options.bug_drop_window = Some (20, 26) }

let hunt_buggy () =
  let config = { Explore.default_config with Explore.opts = buggy_opts } in
  Explore.hunt ~config (micro "micro-lock")

let test_oracle_catches_drop_window () =
  let s = hunt_buggy () in
  Alcotest.(check bool) "failures found" true (s.Explore.failures <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "reason names the oracle" true
        (Astring.String.is_infix ~affix:"oracle" f.Explore.f_reason))
    s.Explore.failures

let test_shrinker_minimizes () =
  let s = hunt_buggy () in
  match s.Explore.failures with
  | [] -> Alcotest.fail "expected the seeded bug to produce failures"
  | f :: _ -> (
    match Shrink.shrink ~opts:buggy_opts f.Explore.f_trace with
    | None -> Alcotest.fail "shrinker lost the failure"
    | Some r ->
      let n = List.length r.Shrink.minimized.Trace.choices in
      Alcotest.(check bool)
        (Printf.sprintf "minimized to %d <= 10 choices" n)
        true (n <= 10);
      (* the minimized trace still reproduces under the buggy options … *)
      let bad = Explore.replay ~strict:false ~opts:buggy_opts r.Shrink.minimized in
      Alcotest.(check bool)
        "still fails under buggy options" true
        (bad.Explore.r_error <> None);
      (* … and replays clean under the options its runtime name denotes *)
      let good = Explore.replay ~strict:false r.Shrink.minimized in
      Alcotest.(check (option string))
        "clean under the correct runtime" None good.Explore.r_error)

(* --- the oracle against a seeded lost wakeup --------------------------- *)

(* The second negative control: [bug_lost_signal] swallows condvar
   signals inside the window, so schedules whose signal lands there
   strand a waiter — the explorer must surface the deadlock. *)
let lost_opts = { Options.ci with Options.bug_lost_signal = Some (1, 100_000) }

let hunt_lost () =
  let config = { Explore.default_config with Explore.opts = lost_opts } in
  Explore.hunt ~config (Registry.find "prodcons")

let test_oracle_catches_lost_signal () =
  let s = hunt_lost () in
  Alcotest.(check bool) "failures found" true (s.Explore.failures <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "reason names the deadlock" true
        (Astring.String.is_infix ~affix:"deadlock" f.Explore.f_reason))
    s.Explore.failures

let test_lost_signal_shrinks_and_replays () =
  let s = hunt_lost () in
  match s.Explore.failures with
  | [] -> Alcotest.fail "expected the lost-signal bug to produce failures"
  | f :: _ -> (
    match Shrink.shrink ~opts:lost_opts f.Explore.f_trace with
    | None -> Alcotest.fail "shrinker lost the failure"
    | Some r ->
      let n = List.length r.Shrink.minimized.Trace.choices in
      Alcotest.(check bool)
        (Printf.sprintf "minimized to %d <= 10 choices" n)
        true (n <= 10);
      let bad = Explore.replay ~strict:false ~opts:lost_opts r.Shrink.minimized in
      Alcotest.(check bool)
        "still deadlocks under the buggy options" true
        (bad.Explore.r_error <> None);
      let good = Explore.replay ~strict:false r.Shrink.minimized in
      Alcotest.(check (option string))
        "clean under the correct runtime" None good.Explore.r_error)

(* --- sampling --------------------------------------------------------- *)

let test_sampling_deterministic () =
  let wl = micro "micro-lock" in
  let a = Explore.sample ~seed:5L ~n:25 wl in
  let b = Explore.sample ~seed:5L ~n:25 wl in
  Alcotest.(check int) "same schedule count" a.Explore.schedules b.Explore.schedules;
  Alcotest.(check int) "same deepest" a.Explore.deepest b.Explore.deepest;
  Alcotest.(check (option string))
    "same reference" a.Explore.reference b.Explore.reference;
  Alcotest.(check bool) "a clean" true (a.Explore.failures = []);
  Alcotest.(check bool) "b clean" true (b.Explore.failures = [])

(* --- trace round-trip ------------------------------------------------- *)

let test_trace_roundtrip () =
  let t =
    Trace.make ~workload:"micro-lock" ~threads:3 ~scale:1.5 ~input_seed:99L
      ~runtime:"rfdet-pf" ~choices:[ 1; 0; 2; 2; 1 ]
      ~expect:"deadbeefdeadbeef" ~note:"round-trip fixture" ()
  in
  (match Trace.of_string (Trace.to_string t) with
  | Ok t' -> Alcotest.(check bool) "round-trips" true (t = t')
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  match Trace.of_string "threads 2\nchoices 1 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a trace without a workload"

(* --- the regression corpus (satellite: replay on every runtest) ------- *)

(* dune runtest runs in the test directory, where the glob_files dep
   placed the corpus; dune exec may run elsewhere, so fall back to the
   copy next to the executable *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus"
  else Filename.concat (Filename.dirname Sys.executable_name) "corpus"

let test_corpus_replays () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun file ->
      match Trace.load ~path:(Filename.concat corpus_dir file) with
      | Error e -> Alcotest.fail (file ^ ": " ^ e)
      | Ok tr ->
        let r = Explore.replay ~strict:false tr in
        Alcotest.(check (option string)) (file ^ ": clean") None r.Explore.r_error)
    files

(* --- differential spot checks (full suites run under rfdet check) ----- *)

let test_differential_race_free () =
  (* micro-rwlock and micro-steal are the admission-policy-sensitive
     primitives: their observables must still be runtime-agnostic *)
  List.iter
    (fun name ->
      let r = Differential.check (micro name) in
      Alcotest.(check bool) (name ^ " ok") true r.Differential.ok;
      Alcotest.(check bool)
        (name ^ " model agrees") false r.Differential.model_diverged;
      Alcotest.(check bool)
        (name ^ " no disagreement") true
        (r.Differential.disagree = None))
    [ "micro-lock"; "micro-rwlock"; "micro-sem"; "micro-steal" ]

let test_differential_racy_stable () =
  let r =
    Differential.check ~expect_agree:false (Registry.find "racey")
  in
  Alcotest.(check bool) "racey ok" true r.Differential.ok;
  Alcotest.(check (list string)) "all runtimes stable" [] r.Differential.unstable

let suites =
  [
    ( "check",
      [
        Alcotest.test_case "exhaustive micros" `Quick test_exhaustive_micros;
        Alcotest.test_case "pruning is sound" `Quick test_pruning_sound;
        Alcotest.test_case "1-thread configs stay tiny and clean" `Quick
          test_one_thread_degenerate;
        Alcotest.test_case "oracle catches drop window" `Quick
          test_oracle_catches_drop_window;
        Alcotest.test_case "shrinker minimizes to <= 10 choices" `Quick
          test_shrinker_minimizes;
        Alcotest.test_case "oracle catches lost signal" `Quick
          test_oracle_catches_lost_signal;
        Alcotest.test_case "lost signal shrinks and replays" `Quick
          test_lost_signal_shrinks_and_replays;
        Alcotest.test_case "sampling is deterministic" `Quick
          test_sampling_deterministic;
        Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
        Alcotest.test_case "corpus replays clean" `Quick test_corpus_replays;
        Alcotest.test_case "differential: race-free" `Quick
          test_differential_race_free;
        Alcotest.test_case "differential: racy but stable" `Quick
          test_differential_racy_stable;
      ] );
  ]
