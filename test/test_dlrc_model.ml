(* Differential testing: the optimized RFDet runtime against the naive
   executable DLRC model, on randomized racy programs.

   Both use the same Kendo layer, so their deterministic synchronization
   orders coincide; DLRC then demands bit-identical observable outputs.
   A divergence indicts one of the optimizations the model omits: page
   diffing, copy-on-write forking, resume indices, release-bounded
   propagation scans, slice merging, lazy writes, GC, ... *)

module Engine = Rfdet_sim.Engine
module Api = Rfdet_sim.Api
module Layout = Rfdet_mem.Layout
module Options = Rfdet_core.Options
module Rfdet = Rfdet_core.Rfdet_runtime
module Model = Rfdet_core.Dlrc_model

(* --- a small random-program AST ------------------------------------- *)

type atom =
  | Store of int * int  (* slot, value *)
  | Load_out of int  (* output the slot's value *)
  | Work of int  (* tick *)
  | Atomic_add of int * int  (* slot, delta *)
  | Atomic_cas of int * int * int  (* slot, expect, desired *)
  | Critical of int * atom list  (* mutex index, body *)

type program = { n_mutexes : int; threads : atom list list }

let slot_addr slot = Layout.globals_base + (8 * slot)

let rec exec_atom mutexes atom =
  match atom with
  | Store (slot, v) -> Api.store (slot_addr slot) v
  | Load_out slot -> Api.output_int (Api.load (slot_addr slot))
  | Work n -> Api.tick n
  | Atomic_add (slot, d) -> Api.output_int (Api.atomic_fetch_add (slot_addr slot) d)
  | Atomic_cas (slot, e, d) ->
    Api.output_int (Api.atomic_cas (slot_addr slot) ~expect:e ~desired:d)
  | Critical (m, body) ->
    Api.with_lock mutexes.(m) (fun () -> List.iter (exec_atom mutexes) body)

let run_program (p : program) () =
  let mutexes = Array.init p.n_mutexes (fun _ -> Api.mutex_create ()) in
  let tids =
    List.map (fun atoms -> Api.spawn (fun () -> List.iter (exec_atom mutexes) atoms))
      p.threads
  in
  List.iter Api.join tids;
  (* final memory dump through thread 0's view *)
  for slot = 0 to 7 do
    Api.output_int (Api.load (slot_addr slot))
  done

(* --- generators ------------------------------------------------------ *)

let gen_atom ~depth =
  let open QCheck2.Gen in
  let base =
    oneof
      [
        map2 (fun s v -> Store (s, v)) (int_bound 7) (int_bound 1000);
        map (fun s -> Load_out s) (int_bound 7);
        map (fun n -> Work (n * 10)) (int_bound 30);
        map2 (fun s d -> Atomic_add (s, d + 1)) (int_bound 7) (int_bound 9);
        map2
          (fun s e -> Atomic_cas (s, e, e + 13))
          (int_bound 7) (int_bound 3);
      ]
  in
  if depth = 0 then base
  else
    frequency
      [
        (3, base);
        ( 1,
          map2
            (fun m body -> Critical (m, body))
            (int_bound 1)
            (list_size (int_range 1 4) base) );
      ]

let gen_program =
  let open QCheck2.Gen in
  let* n_threads = int_range 2 3 in
  let* threads =
    list_repeat n_threads (list_size (int_range 3 12) (gen_atom ~depth:1))
  in
  return { n_mutexes = 2; threads }

(* --- the differential property --------------------------------------- *)

let outputs_under policy seed p =
  let config =
    { Engine.default_config with seed; jitter_mean = 9. }
  in
  (Engine.run ~config policy ~main:(run_program p)).Engine.outputs

let opt_configs =
  [
    ("ci", Options.ci);
    ("pf", Options.pf);
    ("noopt", Options.baseline_no_opt);
    ("no-merge", { Options.ci with slice_merging = false });
    ("tiny-meta", { Options.ci with metadata_capacity = 4096; gc_threshold = 0.5 });
  ]

let prop_model_agreement =
  QCheck2.Test.make ~name:"dlrc: optimized runtime matches the naive model"
    ~count:120 ~print:(fun p ->
      Printf.sprintf "threads=%d sizes=%s" (List.length p.threads)
        (String.concat ","
           (List.map (fun l -> string_of_int (List.length l)) p.threads)))
    gen_program
    (fun p ->
      let reference = outputs_under Model.make 1L p in
      List.for_all
        (fun (_, opts) -> outputs_under (Rfdet.make ~opts) 2L p = reference)
        opt_configs)

let prop_model_self_deterministic =
  QCheck2.Test.make ~name:"dlrc: model itself is seed-independent" ~count:60
    gen_program
    (fun p ->
      outputs_under Model.make 3L p = outputs_under Model.make 17L p)

let prop_runtime_seed_independent =
  QCheck2.Test.make
    ~name:"dlrc: optimized runtime is seed-independent on random programs"
    ~count:60 gen_program
    (fun p ->
      outputs_under (Rfdet.make ~opts:Options.ci) 5L p
      = outputs_under (Rfdet.make ~opts:Options.ci) 23L p)

(* Figure 5's lower-limit filter is exactly a redundancy eliminator: a
   slice already merged into a thread's view must never be appended to
   its seen-list again.  The checked model asserts physical membership
   on every propagation and raises [Propagated_twice] on violation —
   randomized racy programs drive it through every acquire path (locks,
   atomics, joins, the final dump). *)
let prop_never_propagates_twice =
  QCheck2.Test.make
    ~name:"dlrc: no slice is ever propagated twice (checked model)"
    ~count:120
    ~print:(fun p ->
      Printf.sprintf "threads=%d sizes=%s" (List.length p.threads)
        (String.concat ","
           (List.map (fun l -> string_of_int (List.length l)) p.threads)))
    gen_program
    (fun p ->
      match outputs_under Model.make_checked 1L p with
      | _ -> true
      | exception Engine.Thread_failure (_, Model.Propagated_twice _)
      | exception Model.Propagated_twice _ ->
        false)

let prop_checked_model_transparent =
  QCheck2.Test.make
    ~name:"dlrc: the never-twice check does not change model outputs"
    ~count:60 gen_program
    (fun p ->
      outputs_under Model.make_checked 1L p = outputs_under Model.make 1L p)

(* a directed regression: the Figure 2 shape expressed as a program *)
let test_directed_figure2 () =
  let p =
    {
      n_mutexes = 1;
      threads =
        [
          [ Critical (0, [ Store (0, 1) ]); Store (0, 2) ];
          [ Load_out 0; Work 5000; Critical (0, [ Load_out 0 ]) ];
        ];
    }
  in
  let a = outputs_under Model.make 1L p in
  let b = outputs_under (Rfdet.make ~opts:Options.ci) 1L p in
  Alcotest.(check bool) "model and runtime agree" true (a = b)

let suites =
  [
    ( "dlrc-model",
      [
        Alcotest.test_case "directed figure-2 program" `Quick
          test_directed_figure2;
        QCheck_alcotest.to_alcotest prop_model_agreement;
        QCheck_alcotest.to_alcotest prop_model_self_deterministic;
        QCheck_alcotest.to_alcotest prop_runtime_seed_independent;
        QCheck_alcotest.to_alcotest prop_never_propagates_twice;
        QCheck_alcotest.to_alcotest prop_checked_model_transparent;
      ] );
  ]
