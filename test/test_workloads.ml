(* Every workload, under every runtime:
   - the strong-DMT runtimes (rfdet-ci, rfdet-pf, dthreads, coredet) must
     be output-deterministic across scheduler seeds;
   - every runtime must run every workload to completion and produce
     at least one output;
   - racey must actually vary under pthreads (the stress test works). *)

module Runner = Rfdet_harness.Runner
module Registry = Rfdet_workloads.Registry
module Workload = Rfdet_workloads.Workload

let scale = 0.3

let seeds = [ 1L; 2L; 3L ]

let signatures runtime w =
  List.map
    (fun seed ->
      (Runner.run ~scale ~jitter:11. ~sched_seed:seed runtime w).Runner.signature)
    seeds

let deterministic runtime w =
  List.length (List.sort_uniq compare (signatures runtime w)) = 1

let dmt_runtimes =
  [
    ("rfdet-ci", Runner.rfdet_ci);
    ("rfdet-pf", Runner.rfdet_pf);
    ("dthreads", Runner.Dthreads);
    ("coredet", Runner.Coredet);
  ]

let test_deterministic w (label, runtime) () =
  Alcotest.(check bool)
    (Printf.sprintf "%s deterministic under %s" w.Workload.name label)
    true (deterministic runtime w)

let test_completes w () =
  List.iter
    (fun runtime ->
      let r = Runner.run ~scale runtime w in
      Alcotest.(check bool)
        (Printf.sprintf "%s under %s produced output" w.Workload.name
           r.Runner.runtime)
        true
        (r.Runner.outputs <> []);
      Alcotest.(check bool) "simulated time positive" true (r.Runner.sim_time > 0))
    [ Runner.Pthreads; Runner.Kendo ]

let test_racey_varies_under_pthreads () =
  let racey = Registry.find "racey" in
  let sigs =
    List.init 10 (fun i ->
        (Runner.run ~jitter:11.
           ~sched_seed:(Int64.of_int (i + 1))
           Runner.Pthreads racey)
          .Runner.signature)
  in
  Alcotest.(check bool) "racey varies" true
    (List.length (List.sort_uniq compare sigs) > 1)

let test_thread_count_param () =
  (* workloads respect the thread-count configuration *)
  let w = Registry.find "ocean" in
  List.iter
    (fun threads ->
      let r = Runner.run ~threads ~scale Runner.rfdet_ci w in
      Alcotest.(check bool)
        (Printf.sprintf "spawned >= %d threads" threads)
        true
        (r.Runner.threads >= threads))
    [ 2; 4; 8 ]

let test_input_seed_changes_result () =
  (* the input seed is an *input*: different seeds, different outputs *)
  let w = Registry.find "radix" in
  let a = (Runner.run ~scale ~input_seed:1L Runner.rfdet_ci w).Runner.signature in
  let b = (Runner.run ~scale ~input_seed:2L Runner.rfdet_ci w).Runner.signature in
  Alcotest.(check bool) "different inputs differ" true (a <> b)

let test_registry () =
  Alcotest.(check int) "27 workloads" 27 (List.length Registry.all);
  Alcotest.(check int) "7 exploration micros" 7 (List.length Registry.micro);
  Alcotest.(check int) "16 in table 1" 16 (List.length Registry.table1);
  Alcotest.(check int) "7 in splash2" 7 (List.length Registry.splash2);
  Alcotest.(check int) "13 in figure 8" 13 (List.length Registry.figure8);
  Alcotest.(check bool) "find works" true
    ((Registry.find "fft").Workload.name = "fft");
  Alcotest.check_raises "unknown workload"
    (Invalid_argument
       (Printf.sprintf "unknown workload \"nope\" (expected one of: %s)"
          (String.concat ", " Registry.names)))
    (fun () -> ignore (Registry.find "nope"))

let test_radix_sorts () =
  (* the sortedness flag is mixed into the checksum as 1; rerunning with
     the same input under two runtimes gives the same answer only if
     both sorted correctly — spot-check by direct execution *)
  let w = Registry.find "radix" in
  let r = Runner.run ~scale:1.0 Runner.Pthreads w in
  Alcotest.(check bool) "radix produced a checksum" true
    (List.length r.Runner.outputs = 1)

let suites =
  let per_workload =
    List.concat_map
      (fun w ->
        List.map
          (fun rt ->
            Alcotest.test_case
              (Printf.sprintf "%s deterministic (%s)" w.Workload.name (fst rt))
              `Quick (test_deterministic w rt))
          dmt_runtimes
        @ [
            Alcotest.test_case
              (Printf.sprintf "%s completes (pthreads/kendo)" w.Workload.name)
              `Quick (test_completes w);
          ])
      Registry.all
  in
  [
    ( "workloads",
      per_workload
      @ [
          Alcotest.test_case "racey varies under pthreads" `Quick
            test_racey_varies_under_pthreads;
          Alcotest.test_case "thread-count parameter" `Quick
            test_thread_count_param;
          Alcotest.test_case "input seed is an input" `Quick
            test_input_seed_changes_result;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "radix output" `Quick test_radix_sorts;
        ] );
  ]
