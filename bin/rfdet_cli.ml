(* rfdet — command-line front end for the RFDet reproduction.

   Subcommands:
     run WORKLOAD     run one workload under one runtime, print stats
     list             list workloads and runtimes
     racey            the determinism stress experiment (Section 5.1)
     faults WORKLOAD  fault-determinism check under an injected plan
     clinic WORKLOAD  crash clinic: inject one crash at every op index
     bench            host-performance bench of the core primitives
                      (--json writes BENCH_CORE.json)
     experiment NAME  regenerate a table/figure (fig7, table1, fig8,
                      fig9, e1, e6, e7, all) *)

open Cmdliner
module Runner = Rfdet_harness.Runner
module Determinism = Rfdet_harness.Determinism
module Experiments = Rfdet_harness.Experiments
module Registry = Rfdet_workloads.Registry
module Options = Rfdet_core.Options
module Profile = Rfdet_sim.Profile
module Engine = Rfdet_sim.Engine
module Fault_plan = Rfdet_fault.Fault_plan
module Sink = Rfdet_obs.Sink
module Obs_trace = Rfdet_obs.Trace
module Chrome = Rfdet_obs.Chrome
module Metrics = Rfdet_obs.Metrics
module Report = Rfdet_obs.Report
module Span = Rfdet_obs.Span
module Critpath = Rfdet_obs.Critpath

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* Engine failures escape as exceptions; turn them into a one-line
   diagnostic and a distinct nonzero exit code instead of a backtrace. *)
let guard f =
  try f () with
  | Engine.Deadlock msg ->
    Printf.eprintf "rfdet: deadlock: %s\n" msg;
    exit 2
  | Engine.Thread_failure (tid, e) ->
    Printf.eprintf "rfdet: thread %d failed: %s\n" tid (Printexc.to_string e);
    exit 3
  | Engine.Runaway ->
    Printf.eprintf
      "rfdet: runaway execution: exceeded the engine's max_ops budget \
       (livelocked policy or unbounded loop)\n";
    exit 4
  | Engine.Fatal e ->
    Printf.eprintf "rfdet: unrecoverable: %s\n"
      (match e with Failure m -> m | e -> Printexc.to_string e);
    exit 5

(* The canonical CLI-name table lives in Runner so journal headers and
   this parser can never drift apart. *)
let runtime_names = Runner.named_runtimes

let runtime_conv =
  let parse s =
    match List.assoc_opt s runtime_names with
    | Some r -> Ok r
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown runtime %S (expected one of: %s)" s
             (String.concat ", " (List.map fst runtime_names))))
  in
  let print ppf r = Format.pp_print_string ppf (Runner.cli_name r) in
  Arg.conv (parse, print)

let workload_conv =
  let parse s =
    match List.find_opt (fun w -> w.Rfdet_workloads.Workload.name = s) Registry.all with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown workload %S (expected one of: %s)" s
             (String.concat ", " Registry.names)))
  in
  let print ppf w =
    Format.pp_print_string ppf w.Rfdet_workloads.Workload.name
  in
  Arg.conv (parse, print)

let threads_arg =
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc:"Worker thread count.")

(* Host-domain parallelism for the sweep commands.  Sweep results are
   byte-identical for every job count, so the default can safely track
   the machine. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Host domains (OS cores) used to parallelize independent \
           simulated runs.  Default: $(b,RFDET_JOBS) when set, else the \
           machine's recommended domain count (capped at 16).  Output \
           is byte-identical for every N.")

let resolve_jobs = function
  | Some n when n <= 0 ->
    Printf.eprintf
      "rfdet: --jobs must be a positive domain count (got %d)\n" n;
    exit 64
  | Some n -> n
  | None -> (
    try Rfdet_par.Par.default_jobs ()
    with Invalid_argument msg ->
      Printf.eprintf "rfdet: %s\n" msg;
      exit 64)

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~doc:"Problem-size multiplier.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")

let jitter_arg =
  Arg.(
    value & opt float 0.
    & info [ "jitter" ]
        ~doc:"Mean scheduling-noise cycles per operation (0 = none).")

let fault_plan_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Fault_plan.parse s) in
  Arg.conv (parse, Fault_plan.pp)

let fault_plan_arg =
  Arg.(
    value
    & opt (some fault_plan_conv) None
    & info [ "fault-plan" ]
        ~doc:
          "Deterministic fault plan: sites separated by ';', fields by \
           ','; the first field is crash, fail or delay=CYCLES, then \
           optional tid=K, op=CLASS, n=K. Example: \
           'crash,tid=2,op=lock,n=3;fail,op=malloc,n=5'.")

let fault_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("contain", Engine.Contain); ("abort", Engine.Abort);
             ("recover", Engine.Recover) ])
        Engine.Contain
    & info [ "fault-mode" ]
        ~doc:
          "What a thread crash does: 'contain' (kill only the faulting \
           thread, poison its locks, keep going), 'abort' (unwind the \
           whole run) or 'recover' (restart the thread deterministically \
           under a retry budget, healing its locks).")

let print_crashes crashes =
  if crashes <> [] then begin
    Printf.printf "crashes:\n";
    List.iter
      (fun (tid, msg) -> Printf.printf "  tid %d: %s\n" tid msg)
      crashes
  end

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let runtime_arg =
    Arg.(
      value
      & opt runtime_conv Runner.rfdet_ci
      & info [ "r"; "runtime" ]
          ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
                rfdet-pf or rfdet-noopt.")
  in
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let action runtime workload threads scale seed input_seed jitter trace
      faults failure_mode profile_json =
   guard @@ fun () ->
    (match faults with
    | Some plan when Fault_plan.has_wildcard plan && jitter > 0. ->
      Printf.eprintf
        "rfdet: warning: the fault plan has a wildcard-tid site and \
         jitter is nonzero; wildcard sites count operations in global \
         scheduler order, so where the fault fires depends on the \
         schedule.  Qualify the site with tid=K (or drop --jitter) for \
         a reproducible injection.\n"
    | _ -> ());
    let r =
      Runner.run ~threads ~scale ~sched_seed:(Int64.of_int seed)
        ~input_seed:(Int64.of_int input_seed) ~jitter ~trace ?faults
        ~failure_mode runtime workload
    in
    let p = r.Runner.profile in
    (match profile_json with
    | None -> ()
    | Some path ->
      write_file path (Profile.to_json p);
      Printf.printf "profile json: %s\n" path);
    Printf.printf "workload:    %s\n" r.Runner.workload;
    Printf.printf "runtime:     %s\n" r.Runner.runtime;
    Printf.printf "threads:     %d (total spawned: %d)\n" threads
      r.Runner.threads;
    Printf.printf "sim cycles:  %d\n" r.Runner.sim_time;
    Printf.printf "engine ops:  %d (%.2fs host)\n" r.Runner.ops
      r.Runner.wall_seconds;
    Printf.printf "signature:   %s\n" r.Runner.signature;
    Printf.printf "outputs:     %s\n"
      (String.concat ", "
         (List.map
            (fun (tid, v) -> Printf.sprintf "%d:%Ld" tid v)
            r.Runner.outputs));
    print_crashes r.Runner.crashes;
    Format.printf "profile:     @[%a@]@." Profile.pp p;
    if r.Runner.trace <> [] then begin
      Printf.printf "trace (last %d operations):\n" (List.length r.Runner.trace);
      List.iter
        (fun e ->
          Printf.printf "  clock=%-10d icount=%-10d tid=%d %s\n"
            e.Rfdet_sim.Engine.t_clock e.Rfdet_sim.Engine.t_icount
            e.Rfdet_sim.Engine.t_tid e.Rfdet_sim.Engine.t_op)
        r.Runner.trace
    end
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~doc:"Print the last N operations of the run.")
  in
  let input_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "input-seed" ] ~doc:"Input-data generator seed (an input).")
  in
  let profile_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:"Also write the run's profile counters as a JSON object.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload under one runtime.")
    Term.(
      const action $ runtime_arg $ workload_arg $ threads_arg $ scale_arg
      $ seed_arg $ input_seed_arg $ jitter_arg $ trace_arg $ fault_plan_arg
      $ fault_mode_arg $ profile_json_arg)

(* --- trace / profile --------------------------------------------------- *)

(* Shared by [trace] and [profile]: run a workload with a causal sink
   attached and return the result plus the collected events and the
   ring-overflow count (0 when the sink is unbounded). *)
let traced_run ?(ring = 0) runtime workload threads scale seed input_seed =
  let obs = Sink.create ~capacity:ring () in
  let r =
    Runner.run ~threads ~scale ~sched_seed:(Int64.of_int seed)
      ~input_seed:(Int64.of_int input_seed) ~obs runtime workload
  in
  (r, Sink.events obs, Sink.dropped obs)

(* A saturated ring silently truncates the causal record, which turns
   "the trace proves X" into "the trace suggests X" — so every consumer
   shouts when events were dropped instead of burying it in a counter. *)
let warn_dropped dropped =
  if dropped > 0 then
    Printf.eprintf
      "rfdet: WARNING: trace ring overflowed — %d event%s dropped (oldest \
       first).  Raise --ring (or use 0 for unbounded) for a complete \
       causal record; profile counter trace_dropped carries this count.\n"
      dropped
      (if dropped = 1 then "" else "s")

let ring_arg =
  Arg.(
    value & opt int 0
    & info [ "ring" ] ~docv:"CAP"
        ~doc:
          "Sink ring capacity: keep only the last $(docv) events.  0 \
           (default) grows without bound.  Overflow is surfaced as a \
           loud warning and the $(b,trace_dropped) profile counter.")

let runtime_opt_arg =
  Arg.(
    value
    & opt runtime_conv Runner.rfdet_ci
    & info [ "r"; "runtime" ]
        ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
              rfdet-pf or rfdet-noopt.")

let workload_pos_arg =
  Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")

let input_seed_opt_arg =
  Arg.(
    value & opt int 42
    & info [ "input-seed" ] ~doc:"Input-data generator seed (an input).")

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output file.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("lines", `Lines) ]) `Chrome
      & info [ "format" ]
          ~doc:
            "Export format: 'chrome' (trace_event JSON for Perfetto / \
             chrome://tracing) or 'lines' (the compact replayable line \
             format, one event per line).")
  in
  let filter_kind_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter-kind" ] ~docv:"KINDS"
          ~doc:
            "Keep only events of these kinds (comma-separated, e.g. \
             'lock_acquire,lock_release' or 'span').")
  in
  let filter_tid_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter-tid" ] ~docv:"TIDS"
          ~doc:"Keep only events from these simulated threads \
                (comma-separated ids).")
  in
  let filter_time_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter-time" ] ~docv:"LO:HI"
          ~doc:
            "Keep only events whose simulated-time stamp lies in the \
             inclusive window $(docv).")
  in
  let split_commas s = String.split_on_char ',' s |> List.map String.trim in
  let parse_window s =
    match String.split_on_char ':' s with
    | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> (lo, hi)
      | _ ->
        Printf.eprintf "rfdet: --filter-time wants LO:HI integers\n";
        exit 64)
    | _ ->
      Printf.eprintf "rfdet: --filter-time wants LO:HI integers\n";
      exit 64
  in
  let apply_filters ~kinds ~tids ~window events =
    let keep (e : Obs_trace.event) =
      (match kinds with
      | None -> true
      | Some ks -> List.mem (Obs_trace.kind_name e.kind) ks)
      && (match tids with None -> true | Some ts -> List.mem e.tid ts)
      &&
      match window with
      | None -> true
      | Some (lo, hi) -> e.time >= lo && e.time <= hi
    in
    List.filter keep events
  in
  let action runtime workload threads scale seed input_seed out format ring
      filter_kind filter_tid filter_time =
   guard @@ fun () ->
    let r, events, dropped =
      traced_run ~ring runtime workload threads scale seed input_seed
    in
    warn_dropped dropped;
    let kinds = Option.map split_commas filter_kind in
    (match kinds with
    | Some ks ->
      List.iter
        (fun k ->
          if not (List.mem k Obs_trace.kind_names) then begin
            Printf.eprintf "rfdet: unknown trace kind %S (see: %s)\n" k
              (String.concat ", " Obs_trace.kind_names);
            exit 64
          end)
        ks
    | None -> ());
    let tids =
      Option.map
        (fun s ->
          List.map
            (fun t ->
              match int_of_string_opt t with
              | Some t -> t
              | None ->
                Printf.eprintf "rfdet: --filter-tid wants integer ids\n";
                exit 64)
            (split_commas s))
        filter_tid
    in
    let window = Option.map parse_window filter_time in
    let kept = apply_filters ~kinds ~tids ~window events in
    (match format with
    | `Chrome -> write_file out (Chrome.export kept)
    | `Lines -> write_file out (Obs_trace.to_lines kept));
    Printf.printf "workload:    %s\n" r.Runner.workload;
    Printf.printf "runtime:     %s\n" r.Runner.runtime;
    Printf.printf "sim cycles:  %d\n" r.Runner.sim_time;
    Printf.printf "signature:   %s\n" r.Runner.signature;
    if dropped > 0 then Printf.printf "dropped:     %d (ring overflow)\n" dropped;
    if List.length kept <> List.length events then
      Printf.printf "events:      %d (of %d after filters)\n"
        (List.length kept) (List.length events)
    else Printf.printf "events:      %d\n" (List.length events);
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with causal tracing on and export the event \
          stream.  The default format loads directly in Perfetto \
          (ui.perfetto.dev) or chrome://tracing: one track per simulated \
          thread, flow arrows for slice propagation.  Tracing is \
          deterministically inert (the signature matches an untraced run) \
          and the trace is a pure function of (workload, runtime, seed): \
          two same-seed runs write byte-identical files.")
    Term.(
      const action $ runtime_opt_arg $ workload_pos_arg $ threads_arg
      $ scale_arg $ seed_arg $ input_seed_opt_arg $ out_arg $ format_arg
      $ ring_arg $ filter_kind_arg $ filter_tid_arg $ filter_time_arg)

let profile_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the hottest-pages table.")
  in
  let metrics_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Also write the full metrics registry (profile counters plus \
             trace-derived histograms) as JSON.")
  in
  let action runtime workload threads scale seed input_seed top metrics_json =
   guard @@ fun () ->
    let r, events, dropped =
      traced_run runtime workload threads scale seed input_seed
    in
    warn_dropped dropped;
    let total =
      List.fold_left (fun acc (_, c) -> acc + c) 0 r.Runner.thread_clocks
    in
    Printf.printf "workload:    %s\n" r.Runner.workload;
    Printf.printf "runtime:     %s\n" r.Runner.runtime;
    Printf.printf "threads:     %d (total spawned: %d)\n" threads
      r.Runner.threads;
    Printf.printf "sim cycles:  %d (makespan), %d thread-cycles\n"
      r.Runner.sim_time total;
    Printf.printf "signature:   %s\n\n" r.Runner.signature;
    print_string (Report.render_breakdown (Report.breakdown ~total events));
    print_newline ();
    print_string (Report.render_lock_table (Report.lock_table events));
    print_newline ();
    print_string (Report.render_hot_pages (Report.hot_pages ~top events));
    match metrics_json with
    | None -> ()
    | Some path ->
      let m = Metrics.create () in
      Profile.fill_metrics m r.Runner.profile;
      Report.fill_metrics m events;
      write_file path (Metrics.to_json m);
      Printf.printf "\nwrote %s\n" path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload with causal tracing on and print attribution \
          reports: a Figure-7-style time breakdown (compute / wait / \
          propagate / diff / GC / monitor), a per-lock contention table \
          and the hottest pages by propagated bytes.  All numbers are \
          simulated cycles, so the report is deterministic.")
    Term.(
      const action $ runtime_opt_arg $ workload_pos_arg $ threads_arg
      $ scale_arg $ seed_arg $ input_seed_opt_arg $ top_arg
      $ metrics_json_arg)

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let action () =
    Printf.printf "Workloads:\n";
    List.iter
      (fun w ->
        Printf.printf "  %-18s %-8s %s\n" w.Rfdet_workloads.Workload.name
          w.Rfdet_workloads.Workload.suite
          w.Rfdet_workloads.Workload.description)
      Registry.all;
    Printf.printf "\nRuntimes:\n";
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) runtime_names
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and runtimes.")
    Term.(const action $ const ())

(* --- racey ------------------------------------------------------------ *)

let racey_cmd =
  let runs_arg =
    Arg.(
      value & opt int 1000
      & info [ "n"; "runs" ] ~doc:"Runs per configuration (paper: 1000).")
  in
  let action runs =
   guard @@ fun () ->
    let rows =
      Experiments.racey_determinism ~runs_per_config:runs ()
    in
    print_string (Experiments.render_e1 rows)
  in
  Cmd.v
    (Cmd.info "racey"
       ~doc:"Determinism stress test: repeated racey runs (Section 5.1).")
    Term.(const action $ runs_arg)

(* --- record / replay (decision journals) ------------------------------ *)

module Session = Rfdet_replay.Session
module Journal = Rfdet_replay.Journal
module Offline = Rfdet_replay.Offline

(* Journal failures get their own distinct exit codes so CI can gate on
   "loud, and loud in the right way": 8 a corrupted frame (named by
   index and byte offset), 9 a torn tail refused by a strict replay,
   10 a divergent replay or trailer mismatch.  Silent divergence is the
   one outcome that must be impossible. *)
let exit_of_replay_error = function
  | Session.E_corrupt _ -> 8
  | Session.E_torn _ -> 9
  | Session.E_bad_header _ -> 64
  | Session.E_diverged _ | Session.E_mismatch _ -> 10

let fail_replay e =
  Printf.eprintf "rfdet: %s\n" (Session.describe_error e);
  exit (exit_of_replay_error e)

let print_summary ?(prefix = "") (s : Session.summary) =
  Printf.printf "%ssignature:   %s\n" prefix s.Session.s_signature;
  Printf.printf "%soutputs:     %s\n" prefix s.Session.s_outputs_checksum;
  Printf.printf "%sengine ops:  %d\n" prefix s.Session.s_ops;
  Printf.printf "%ssim cycles:  %d\n" prefix s.Session.s_sim_time;
  Printf.printf "%sdecisions:   %d\n" prefix s.Session.s_decisions;
  Printf.printf "%sthreads:     %d\n" prefix s.Session.s_threads

let journal_arg_doc =
  "Decision journals record only the free scheduler decisions (plus a \
   seeded header); everything else is reconstructed deterministically."

let record_cmd =
  let runtime_arg =
    Arg.(
      value
      & opt runtime_conv Runner.rfdet_ci
      & info [ "r"; "runtime" ]
          ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
                rfdet-pf or rfdet-noopt.")
  in
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let input_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "input-seed" ] ~doc:"Input-data generator seed (an input).")
  in
  let out_arg =
    Arg.(
      value & opt string "run.rfdj"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Where to write the decision journal.")
  in
  let action runtime workload threads scale seed input_seed jitter faults
      failure_mode out =
   guard @@ fun () ->
    let spec =
      {
        Session.workload;
        runtime;
        threads;
        scale;
        input_seed = Int64.of_int input_seed;
        sched_seed = Int64.of_int seed;
        jitter;
        fault_mode = failure_mode;
        faults;
      }
    in
    let s = Session.record ~path:out spec in
    let bytes =
      let ic = open_in_bin out in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
    in
    Printf.printf "workload:    %s\n" workload.Rfdet_workloads.Workload.name;
    Printf.printf "runtime:     %s\n" (Runner.cli_name runtime);
    print_summary s;
    Printf.printf "journal:     %s (%d bytes, %.1f bytes/decision)\n" out
      bytes
      (if s.Session.s_decisions = 0 then 0.
       else float_of_int bytes /. float_of_int s.Session.s_decisions)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         (Printf.sprintf
            "Record a run's arbiter decisions into a minimal binary \
             journal for $(b,rfdet replay).  %s" journal_arg_doc))
    Term.(
      const action $ runtime_arg $ workload_arg $ threads_arg $ scale_arg
      $ seed_arg $ input_seed_arg $ jitter_arg $ fault_plan_arg
      $ fault_mode_arg $ out_arg)

let replay_cmd =
  let journal_pos_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Accept a torn journal (crashed recorder): verify the \
             checksum-valid decision prefix, then deterministically \
             re-execute the remainder from the header's seeds.  Without \
             this flag a torn tail is refused with exit code 9.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Replay the journal N times (use with $(b,--jobs) to spread \
             replays over host domains) and require every replay to \
             agree — a cheap determinism gate on the replayer itself.")
  in
  let profile_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:"Also write the replayed run's profile counters as JSON.")
  in
  let action path recover repeat jobs profile_json =
   guard @@ fun () ->
    if repeat < 1 then begin
      Printf.eprintf "rfdet: --repeat must be >= 1 (got %d)\n" repeat;
      exit 64
    end;
    let jobs = resolve_jobs jobs in
    let replay_once () = Session.replay ~recover ~path () in
    let first =
      match replay_once () with Error e -> fail_replay e | Ok ok -> ok
    in
    (if repeat > 1 then
       let results =
         Rfdet_par.Par.map_ordered ~jobs:(min jobs repeat)
           (fun _ -> replay_once ())
           (List.init (repeat - 1) Fun.id)
       in
       List.iter
         (function
           | Error e -> fail_replay e
           | Ok (ok : Session.ok) ->
             if ok.Session.r_summary <> first.Session.r_summary then begin
               Printf.eprintf
                 "rfdet: repeated replays disagree (nondeterministic \
                  replayer)\n";
               exit 10
             end)
         results);
    let s = first.Session.r_summary in
    let h = first.Session.r_header in
    (match profile_json with
    | None -> ()
    | Some file ->
      write_file file s.Session.s_profile_json;
      Printf.printf "profile json: %s\n" file);
    Printf.printf "workload:    %s\n" h.Journal.workload;
    Printf.printf "runtime:     %s\n" h.Journal.runtime;
    print_summary s;
    Printf.printf "verified:    %d journal decision%s%s\n"
      first.Session.r_verified
      (if first.Session.r_verified = 1 then "" else "s")
      (if first.Session.r_recovered then
         " (torn tail: remainder re-executed from seed)"
       else "");
    if repeat > 1 then
      Printf.printf "repeats:     %d replays, all identical\n" repeat;
    Printf.printf "replay OK%s\n"
      (if first.Session.r_recovered then " (recovered)" else "")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         (Printf.sprintf
            "Reconstruct a full execution from a recorded decision \
             journal and verify it against the journal byte-for-byte.  \
             %s  Exit codes: 8 corrupt frame, 9 torn tail (strict), 10 \
             divergence or trailer mismatch.  Contrast with $(b,rfdet \
             check --replay), which replays explicit schedule-choice \
             traces from the model checker; this command replays \
             recorded production-style runs." journal_arg_doc))
    Term.(
      const action $ journal_pos_arg $ recover_arg $ repeat_arg $ jobs_arg
      $ profile_json_arg)

(* --- races ------------------------------------------------------------ *)

let races_cmd =
  let workload_arg =
    Arg.(value & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let journal_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Detect races offline over a recorded decision journal \
             instead of a WORKLOAD.  The header pins everything the \
             happens-before relation depends on, so detection over the \
             journal is complete, not a sample of one interleaving.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Feed the detected race set through the ddmin shrinker and \
             write a minimized, replayable repro trace (see --out); \
             requires $(b,--journal).")
  in
  let out_arg =
    Arg.(
      value & opt string "race-repro.trace"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Where $(b,--shrink) writes the minimized repro trace.")
  in
  let report_races header_opt report =
    Format.printf "%a@." Rfdet_detect.Race_detector.pp_report report;
    match header_opt with
    | Some _ when report.Rfdet_detect.Race_detector.races <> [] ->
      Printf.printf "race digest: %s\n"
        (Rfdet_detect.Race_detector.digest report)
    | _ -> ()
  in
  let action workload threads scale journal shrink out =
   guard @@ fun () ->
    match (journal, workload) with
    | None, None ->
      Printf.eprintf "rfdet: races needs a WORKLOAD or --journal FILE\n";
      exit 64
    | None, Some workload ->
      if shrink then begin
        Printf.eprintf "rfdet: --shrink requires --journal\n";
        exit 64
      end;
      let cfg =
        { Rfdet_workloads.Workload.threads; scale; input_seed = 42L }
      in
      let report =
        Rfdet_detect.Race_detector.check
          ~main:(workload.Rfdet_workloads.Workload.main cfg)
      in
      report_races None report
    | Some path, _ -> (
      let header =
        match Journal.scan_file path with
        | Error e ->
          Printf.eprintf "rfdet: %s: %s\n" path e;
          exit 64
        | Ok (Journal.Corrupt { frame; offset; reason }) ->
          Printf.eprintf
            "rfdet: corrupt journal: frame %d at byte offset %d: %s\n" frame
            offset reason;
          exit 8
        | Ok (Journal.Torn { header; offset; reason; _ }) ->
          (* detection needs only the (checksum-verified) header, so a
             torn tail is survivable here — but say so out loud *)
          Printf.eprintf
            "rfdet: note: torn journal tail (%s at byte offset %d); the \
             header is intact and race detection needs only the header\n"
            reason offset;
          header
        | Ok (Journal.Complete { header; _ }) -> header
      in
      match Offline.detect header with
      | Error e ->
        Printf.eprintf "rfdet: %s\n" e;
        exit 64
      | Ok report ->
        Printf.printf "journal:     %s\n" path;
        Printf.printf "workload:    %s (%d threads, scale %g, runtime %s)\n"
          header.Journal.workload header.Journal.threads
          header.Journal.scale header.Journal.runtime;
        report_races (Some header) report;
        if shrink then begin
          match Offline.minimize_repro header report with
          | Error e ->
            Printf.eprintf "rfdet: shrink: %s\n" e;
            exit 1
          | Ok (tr, tries) ->
            Rfdet_check.Trace.save tr ~path:out;
            Printf.printf "shrink:      %d replays; wrote %s\n" tries out;
            Printf.printf "             replay it with: rfdet check \
                           --replay %s\n" out
        end)
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Run the happens-before race detector over a workload, or \
          offline over a recorded decision journal ($(b,--journal)); \
          $(b,--shrink) auto-minimizes a replayable repro for \
          test/corpus.")
    Term.(
      const action $ workload_arg $ threads_arg $ scale_arg
      $ journal_file_arg $ shrink_arg $ out_arg)

(* --- faults ----------------------------------------------------------- *)

let faults_cmd =
  let runtime_arg =
    Arg.(
      value
      & opt runtime_conv Runner.rfdet_ci
      & info [ "r"; "runtime" ]
          ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
                rfdet-pf or rfdet-noopt.")
  in
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let plan_arg =
    Arg.(
      required
      & opt (some fault_plan_conv) None
      & info [ "fault-plan" ]
          ~doc:"The fault plan to inject on every run (same syntax as \
                $(b,run --fault-plan)).")
  in
  let runs_arg =
    Arg.(
      value & opt int 20
      & info [ "n"; "runs" ] ~doc:"Jittered runs to compare.")
  in
  let jitter_fault_arg =
    Arg.(
      value & opt float 12.0
      & info [ "jitter" ]
          ~doc:"Mean scheduling-noise cycles per operation.")
  in
  let action runtime workload plan threads scale runs jitter jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    let report, crashes =
      (* check_faults rejects wildcard-tid plans under jitter — the
         check would measure the injector's schedule-dependence, not the
         runtime's determinism.  Surface that as a usage error. *)
      try
        Determinism.check_faults ~threads ~scale ~runs ~jitter ~jobs ~plan
          runtime workload
      with Invalid_argument msg ->
        Printf.eprintf "rfdet: %s\n" msg;
        exit 2
    in
    Format.printf "plan:        %a@." Fault_plan.pp plan;
    Format.printf "%a@." Determinism.pp_report report;
    print_crashes crashes;
    if not report.Determinism.deterministic then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-determinism check: run a workload repeatedly under \
          scheduling jitter with the same injected fault plan and verify \
          that every run — crash outcomes included — produces the same \
          signature.")
    Term.(
      const action $ runtime_arg $ workload_arg $ plan_arg $ threads_arg
      $ scale_arg $ runs_arg $ jitter_fault_arg $ jobs_arg)

(* --- clinic ----------------------------------------------------------- *)

let clinic_cmd =
  let workload_arg =
    Arg.(
      required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let clinic_threads_arg =
    Arg.(value & opt int 3 & info [ "t"; "threads" ] ~doc:"Worker thread count.")
  in
  let max_sites_arg =
    Arg.(
      value & opt int 500
      & info [ "max-sites" ]
          ~doc:"Cap on injection sites (operation indices) probed.")
  in
  let op_class_arg =
    Arg.(
      value
      & opt (enum Rfdet_fault.Fault_plan.op_class_names)
          Rfdet_fault.Fault_plan.Any_op
      & info [ "op-class" ] ~docv:"CLASS"
          ~doc:
            "Count only this operation class when choosing the injection \
             site (e.g. cond, sem, rwlock, deque, lock; default any) — \
             lands the crash inside that primitive's protocol.")
  in
  let action workload threads scale max_sites op_class jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    let s =
      Rfdet_check.Clinic.sweep ~op_class ~threads ~scale ~max_sites ~jobs
        workload
    in
    Format.printf "%a@." Rfdet_check.Clinic.pp_summary s;
    if s.Rfdet_check.Clinic.nondeterministic > 0
       || s.Rfdet_check.Clinic.nonconformant > 0
    then exit 1
  in
  Cmd.v
    (Cmd.info "clinic"
       ~doc:
         "Crash clinic: inject one crash at every operation index of a \
          workload, under both containment and deterministic recovery, \
          across runtimes; verify that no probe hangs, every outcome is \
          deterministic, and RFDet stays DLRC-conformant.")
    Term.(
      const action $ workload_arg $ clinic_threads_arg $ scale_arg
      $ max_sites_arg $ op_class_arg $ jobs_arg)

(* --- bench ------------------------------------------------------------ *)

let bench_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also write the machine-readable benchmark record (the repo's \
             perf-trajectory file) and echo it to stdout.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_CORE.json"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Where $(b,--json) writes the record.")
  in
  let action json out jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    let r =
      Rfdet_harness.Bench_core.run ~jobs
        ~journal_probe:Rfdet_replay.Offline.bench_probe ()
    in
    print_string (Rfdet_harness.Bench_core.render r);
    if json then begin
      Rfdet_harness.Bench_core.write_json ~path:out r;
      Printf.printf "\nwrote %s:\n%s" out (Rfdet_harness.Bench_core.to_json r)
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Benchmark the memory-pipeline primitives (word-level page diff, \
          blit-based apply, string I/O, snapshot pooling) and two \
          end-to-end workloads on the host clock; $(b,--json) emits \
          BENCH_CORE.json with times, ops/sec and output signatures.")
    Term.(const action $ json_arg $ out_arg $ jobs_arg)

(* --- check ------------------------------------------------------------ *)

let check_cmd =
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Exhaustive exploration only: enumerate every synchronization \
             interleaving of the micro workloads (skip the sampled \
             configurations).")
  in
  let sample_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample" ] ~docv:"N"
          ~doc:
            "Sampled exploration only: N seeded random schedules per \
             configuration (with a WORKLOAD: N schedules of it).")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Delta-debug the first failure down to a minimal choice \
             sequence and write it as a replayable trace (see --out).")
  in
  let replay_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a schedule trace file (explicit model-checker choice \
             sequences, e.g. from --shrink or test/corpus) under the \
             oracle and exit.  Contrast with $(b,rfdet replay), which \
             reconstructs recorded production-style runs from minimal \
             decision journals.")
  in
  let bug_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "bug-window" ] ~docv:"LO:HI"
          ~doc:
            "Seed the test-only visibility bug: propagation silently drops \
             slices while the global operation counter is in [LO,HI).  \
             Exploration then runs with pruning off (the bug breaks the \
             commutativity pruning assumes).  For validating that the \
             oracle catches real divergence, and for generating corpus \
             traces; requires a WORKLOAD.")
  in
  let bug_lost_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "bug-lost" ] ~docv:"LO:HI"
          ~doc:
            "Seed the test-only lost-wakeup bug: condvar signals are \
             silently swallowed while the global operation counter is in \
             [LO,HI), as if delivered outside the mutex.  Exploration \
             runs with pruning off, like $(b,--bug-window); requires a \
             WORKLOAD.")
  in
  let out_arg =
    Arg.(
      value & opt string "shrunk.trace"
      & info [ "o"; "out" ] ~docv:"PATH"
          ~doc:"Where $(b,--shrink) writes the minimized trace.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory of traces to replay (default test/corpus \
             when present).")
  in
  let workload_arg =
    Arg.(value & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let do_replay path =
    match Rfdet_check.Trace.load ~path with
    | Error e ->
      Printf.eprintf "rfdet: %s: %s\n" path e;
      exit 64
    | Ok tr -> (
      let r = Rfdet_check.Explore.replay ~strict:false tr in
      Printf.printf "workload:   %s (%d threads, runtime %s)\n"
        tr.Rfdet_check.Trace.workload tr.Rfdet_check.Trace.threads
        tr.Rfdet_check.Trace.runtime;
      Printf.printf "choices:    %s\n"
        (String.concat " "
           (List.map string_of_int r.Rfdet_check.Explore.r_choices));
      match r.Rfdet_check.Explore.r_error with
      | None ->
        Printf.printf "replay ok: signature %s\n"
          (Option.value r.Rfdet_check.Explore.r_signature ~default:"-")
      | Some e ->
        Printf.printf "replay FAIL: %s\n" e;
        exit 1)
  in
  let do_single wl threads jobs sample bug bug_lost shrinkf out =
    let opts =
      {
        Options.ci with
        Options.bug_drop_window = bug;
        bug_lost_signal = bug_lost;
      }
    in
    let buggy = bug <> None || bug_lost <> None in
    let config = { Rfdet_check.Explore.default_config with threads; opts } in
    let stats =
      match sample with
      | Some n -> Rfdet_check.Explore.sample ~config ~jobs ~seed:2026L ~n wl
      | None ->
        if not buggy then Rfdet_check.Explore.explore ~config wl
        else Rfdet_check.Explore.hunt ~config wl
    in
    Printf.printf "workload:      %s (%d threads)\n"
      wl.Rfdet_workloads.Workload.name threads;
    Printf.printf "schedules:     %d%s\n" stats.Rfdet_check.Explore.schedules
      (if stats.Rfdet_check.Explore.truncated then " (TRUNCATED)" else "");
    Printf.printf "pruned:        %d\n" stats.Rfdet_check.Explore.pruned;
    Printf.printf "choice points: %d (max per schedule)\n"
      stats.Rfdet_check.Explore.deepest;
    (match stats.Rfdet_check.Explore.reference with
    | Some s -> Printf.printf "signature:     %s\n" s
    | None -> ());
    match stats.Rfdet_check.Explore.failures with
    | [] -> Printf.printf "no failures\n"
    | { f_trace; f_reason } :: _ as fs ->
      Printf.printf "failures:      %d\nfirst failure: %s\n" (List.length fs)
        f_reason;
      if shrinkf then begin
        match Rfdet_check.Shrink.shrink ~opts f_trace with
        | None ->
          Printf.printf "shrink: the failure did not reproduce on replay\n"
        | Some { Rfdet_check.Shrink.minimized; reason; tries } ->
          Rfdet_check.Trace.save minimized ~path:out;
          Printf.printf "shrink:        %d -> %d choices in %d replays\n"
            (List.length f_trace.Rfdet_check.Trace.choices)
            (List.length minimized.Rfdet_check.Trace.choices)
            tries;
          Printf.printf "               %s\nwrote %s\n" reason out
      end;
      exit 1
  in
  let action exhaustive sample shrinkf replay_file bug bug_lost out corpus
      workload threads jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    match (replay_file, workload) with
    | Some path, _ -> do_replay path
    | None, Some wl -> do_single wl threads jobs sample bug bug_lost shrinkf out
    | None, None ->
      if bug <> None || bug_lost <> None then begin
        Printf.eprintf
          "rfdet: --bug-window/--bug-lost require a WORKLOAD\n";
        exit 64
      end;
      let corpus_dir =
        match corpus with
        | Some d -> Some d
        | None ->
          if Sys.file_exists "test/corpus" && Sys.is_directory "test/corpus"
          then Some "test/corpus"
          else None
      in
      let samples =
        match sample with Some n -> n | None -> if exhaustive then 0 else 200
      in
      let exhaustive = exhaustive || sample = None in
      let s =
        Rfdet_check.Driver.conformance ~exhaustive ~samples ?corpus_dir
          ~progress:print_endline ~jobs ()
      in
      if s.Rfdet_check.Driver.ok then Printf.printf "conformance: ok\n"
      else begin
        Printf.printf "conformance: FAIL\n";
        (match
           List.concat_map
             (fun (_, (st : Rfdet_check.Explore.stats)) ->
               st.Rfdet_check.Explore.failures)
             (s.Rfdet_check.Driver.explored @ s.Rfdet_check.Driver.sampled)
         with
        | { f_trace; f_reason } :: _ ->
          Printf.printf "first failure: %s\n" f_reason;
          if shrinkf then begin
            match Rfdet_check.Shrink.shrink f_trace with
            | Some { Rfdet_check.Shrink.minimized; _ } ->
              Rfdet_check.Trace.save minimized ~path:out;
              Printf.printf "wrote %s\n" out
            | None -> ()
          end
        | [] -> ());
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Systematic schedule exploration under the DLRC conformance \
          oracle: enumerate (or sample) synchronization interleavings, \
          cross-check runtimes differentially, and replay the regression \
          corpus.")
    Term.(
      const action $ exhaustive_arg $ sample_arg $ shrink_flag
      $ replay_file_arg $ bug_arg $ bug_lost_arg $ out_arg $ corpus_arg
      $ workload_arg $ threads_arg $ jobs_arg)

(* --- experiment ------------------------------------------------------- *)

let experiment_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some (Arg.enum
           [ ("fig7", `Fig7); ("table1", `Table1); ("fig8", `Fig8);
             ("fig9", `Fig9); ("e1", `E1); ("e6", `E6); ("e7", `E7);
             ("all", `All) ])) None
      & info [] ~docv:"NAME"
          ~doc:"One of: fig7, table1, fig8, fig9, e1, e6, e7, all.")
  in
  let run_one = function
    | `Fig7 -> print_string (Experiments.render_figure7 (Experiments.figure7 ()))
    | `Table1 -> print_string (Experiments.render_table1 (Experiments.table1 ()))
    | `Fig8 -> print_string (Experiments.render_figure8 (Experiments.figure8 ()))
    | `Fig9 -> print_string (Experiments.render_figure9 (Experiments.figure9 ()))
    | `E1 ->
      print_string
        (Experiments.render_e1 (Experiments.racey_determinism ~runs_per_config:50 ()))
    | `E6 -> print_string (Experiments.render_e6 (Experiments.ablation_barriers ()))
    | `E7 -> print_string (Experiments.render_e7 (Experiments.ablation_gc ()))
    | `All -> assert false
  in
  let action name =
   guard @@ fun () ->
    match name with
    | `All ->
      List.iter run_one [ `E1; `Fig7; `Table1; `Fig8; `Fig9; `E6; `E7 ]
    | x -> run_one x
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper.")
    Term.(const action $ name_arg)


(* --- serve ------------------------------------------------------------ *)

let serve_cmd =
  let module Server = Rfdet_server.Server in
  let module Traffic = Rfdet_server.Traffic in
  let runtime_arg =
    Arg.(
      value
      & opt runtime_conv Runner.rfdet_ci
      & info [ "r"; "runtime" ]
          ~doc:"Runtime: pthreads, kendo, dthreads, coredet, rfdet-ci, \
                rfdet-pf or rfdet-noopt.")
  in
  let requests_arg =
    Arg.(
      value
      & opt int Traffic.default.Traffic.requests
      & info [ "n"; "requests" ] ~doc:"Number of requests to generate.")
  in
  let rate_arg =
    Arg.(
      value
      & opt int Traffic.default.Traffic.mean_interarrival
      & info [ "rate" ]
          ~doc:
            "Mean interarrival gap in simulated cycles (smaller = \
             heavier offered load).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Server.default.Server.workers
      & info [ "workers" ] ~doc:"Worker pool size.")
  in
  let shards_arg =
    Arg.(
      value
      & opt int Server.default.Server.shards
      & info [ "shards" ]
          ~doc:"Shard count (raised to the worker count if below it).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt int Server.default.Server.deadline
      & info [ "deadline" ] ~doc:"Per-request deadline, simulated cycles.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report (counters and latency quantiles) \
                as JSON; with $(b,--sweep), an array with one object \
                per offered load.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Arrival-rate sweep (experiment E12): one line per offered \
             load instead of a single report.")
  in
  let rw_arg =
    Arg.(
      value & flag
      & info [ "rw" ]
          ~doc:
            "Serve the read-heavy rwlock+deque variant (per-shard \
             reader-writer locks, work-stealing get deques) instead of \
             the stripe-mutex server.  Single-report mode only.")
  in
  let mk_params ~requests ~rate ~workers ~shards ~deadline =
    let shards = max shards workers in
    {
      Server.default with
      Server.workers;
      shards;
      deadline;
      traffic =
        {
          Traffic.default with
          Traffic.requests;
          mean_interarrival = rate;
        };
    }
  in
  let run_one runtime ~seed ~input_seed ~faults ~failure_mode p =
    let report = ref None in
    let w =
      {
        Rfdet_workloads.Workload.name = "kvserver";
        suite = "server";
        description = "kvserver with explicit serve parameters";
        main =
          (fun cfg () ->
            report :=
              Some
                (Server.run ~seed:cfg.Rfdet_workloads.Workload.input_seed p));
      }
    in
    let r =
      Runner.run ~threads:p.Server.workers ~sched_seed:(Int64.of_int seed)
        ~input_seed:(Int64.of_int input_seed) ?faults ~failure_mode runtime w
    in
    (r, Option.get !report)
  in
  let run_one_rw runtime ~seed ~input_seed ~faults ~failure_mode
      ~requests ~rate ~workers ~shards ~deadline =
    let module Rwserve = Rfdet_server.Rwserve in
    let shards = max shards workers in
    let p =
      {
        Rwserve.default with
        Rwserve.workers;
        shards;
        deadline;
        traffic =
          { Traffic.default with Traffic.requests; mean_interarrival = rate };
      }
    in
    let report = ref None in
    let w =
      {
        Rfdet_workloads.Workload.name = "kvserver-rw";
        suite = "server";
        description = "rwlock+deque kvserver with explicit serve parameters";
        main =
          (fun cfg () ->
            report :=
              Some
                (Rwserve.run ~seed:cfg.Rfdet_workloads.Workload.input_seed p));
      }
    in
    let r =
      Runner.run ~threads:workers ~sched_seed:(Int64.of_int seed)
        ~input_seed:(Int64.of_int input_seed) ?faults ~failure_mode runtime w
    in
    (r, Option.get !report)
  in
  let action runtime requests rate workers shards deadline seed input_seed
      faults failure_mode sweep rw json jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    if rw then begin
      if sweep then begin
        Printf.eprintf "rfdet: --rw does not support --sweep\n";
        exit 64
      end;
      let r, rep =
        run_one_rw runtime ~seed ~input_seed ~faults ~failure_mode ~requests
          ~rate ~workers ~shards ~deadline
      in
      Printf.printf "runtime         %s\n" r.Runner.runtime;
      Printf.printf "signature       %s\n" r.Runner.signature;
      print_string (Rfdet_server.Rwserve.render rep);
      Printf.printf "engine ops      %10d (%.2fs host)\n" r.Runner.ops
        r.Runner.wall_seconds;
      print_crashes r.Runner.crashes;
      match json with
      | None -> ()
      | Some _ ->
        Printf.eprintf "rfdet: --rw does not support --json\n";
        exit 64
    end
    else if sweep then begin
      (* compute the whole sweep, then print: rows render in rate order
         whatever order the domains finished in, so the output is
         byte-identical for every --jobs value *)
      let rows =
        Rfdet_server.Sweep.run ~jobs
          ~f:(fun ~rate ->
            let p = mk_params ~requests ~rate ~workers ~shards ~deadline in
            snd (run_one runtime ~seed ~input_seed ~faults ~failure_mode p))
          ()
      in
      Printf.printf "arrival-rate sweep: %d requests, %d workers, %s\n"
        requests workers (Runner.runtime_name runtime);
      print_endline (Rfdet_server.Sweep.render_header ());
      List.iter
        (fun (rate, rep) ->
          print_endline (Rfdet_server.Sweep.render_row ~rate rep))
        rows;
      match json with
      | None -> ()
      | Some path ->
        write_file path (Rfdet_server.Sweep.to_json rows);
        Printf.printf "report json: %s\n" path
    end
    else begin
      let p = mk_params ~requests ~rate ~workers ~shards ~deadline in
      let r, rep = run_one runtime ~seed ~input_seed ~faults ~failure_mode p in
      Printf.printf "runtime         %s\n" r.Runner.runtime;
      Printf.printf "signature       %s\n" r.Runner.signature;
      print_string (Server.render rep);
      Printf.printf "engine ops      %10d (%.2fs host)\n" r.Runner.ops
        r.Runner.wall_seconds;
      print_crashes r.Runner.crashes;
      match json with
      | None -> ()
      | Some path ->
        write_file path (Rfdet_server.Sweep.report_json rep);
        Printf.printf "report json: %s\n" path
    end
  in
  let input_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "input-seed" ]
          ~doc:"Traffic generator seed (an input of the run).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive the deterministic KV server and print its \
          latency/shed/retry report.  Same seed and fault plan give a \
          byte-identical report.")
    Term.(
      const action $ runtime_arg $ requests_arg $ rate_arg $ workers_arg
      $ shards_arg $ deadline_arg $ seed_arg $ input_seed_arg
      $ fault_plan_arg $ fault_mode_arg $ sweep_arg $ rw_arg $ json_arg
      $ jobs_arg)

(* --- spans ------------------------------------------------------------ *)

(* Request-level observability for the KV servers: run with the inert
   sink on, fold the causal trace into per-request span trees, walk each
   tree's critical path (segments must sum bit-exactly to the measured
   latency — violation is exit code 7, not a warning) and print cohort
   attribution plus top-k exemplars.  Every number below is a virtual
   per-worker cycle, so the whole output — tree renders included — is
   byte-identical across runtimes, --jobs counts and repeat runs. *)
let spans_cmd =
  let module Server = Rfdet_server.Server in
  let module Rwserve = Rfdet_server.Rwserve in
  let module Traffic = Rfdet_server.Traffic in
  let requests_arg =
    Arg.(
      value
      & opt int Traffic.default.Traffic.requests
      & info [ "n"; "requests" ] ~doc:"Number of requests to generate.")
  in
  let rate_arg =
    Arg.(
      value
      & opt int Traffic.default.Traffic.mean_interarrival
      & info [ "rate" ]
          ~doc:"Mean interarrival gap in simulated cycles.")
  in
  let workers_arg =
    Arg.(
      value
      & opt int Server.default.Server.workers
      & info [ "workers" ] ~doc:"Worker pool size.")
  in
  let shards_arg =
    Arg.(
      value
      & opt int Server.default.Server.shards
      & info [ "shards" ]
          ~doc:"Shard count (raised to the worker count if below it).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt int Server.default.Server.deadline
      & info [ "deadline" ] ~doc:"Per-request deadline, simulated cycles.")
  in
  let input_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "input-seed" ]
          ~doc:"Traffic generator seed (an input of the run).")
  in
  let rw_arg =
    Arg.(
      value & flag
      & info [ "rw" ]
          ~doc:"Trace the read-heavy rwlock+deque server variant.")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N"
          ~doc:"Exemplars per list (slowest and deepest).")
  in
  let crit_arg =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Print exemplars as one-line critical-path segment vectors \
             instead of span trees.")
  in
  let pct_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("p50", `P50); ("p99", `P99); ("p999", `P999); ("all", `All) ])
          `All
      & info [ "percentile" ]
          ~doc:
            "Which latency cohort(s) to aggregate: 'p50', 'p99', 'p999' \
             or 'all'.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the sorted attribution document (cohorts plus \
             exemplars with replay coordinates) as JSON.  Byte-identical \
             across runtimes, --jobs counts and repeat runs.")
  in
  let action runtime requests rate workers shards deadline seed input_seed
      faults failure_mode rw top crit pct json ring jobs =
   guard @@ fun () ->
    let jobs = resolve_jobs jobs in
    let shards = max shards workers in
    let obs = Sink.create ~capacity:ring () in
    let report = ref None in
    let w =
      if rw then
        {
          Rfdet_workloads.Workload.name = "kvserver-rw";
          suite = "server";
          description = "rwlock+deque kvserver with spans on";
          main =
            (fun cfg () ->
              let p =
                {
                  Rwserve.default with
                  Rwserve.workers;
                  shards;
                  deadline;
                  traffic =
                    {
                      Traffic.default with
                      Traffic.requests;
                      mean_interarrival = rate;
                    };
                }
              in
              ignore
                (Rwserve.run ~seed:cfg.Rfdet_workloads.Workload.input_seed p));
        }
      else
        {
          Rfdet_workloads.Workload.name = "kvserver";
          suite = "server";
          description = "kvserver with spans on";
          main =
            (fun cfg () ->
              let p =
                {
                  Server.default with
                  Server.workers;
                  shards;
                  deadline;
                  traffic =
                    {
                      Traffic.default with
                      Traffic.requests;
                      mean_interarrival = rate;
                    };
                }
              in
              report :=
                Some
                  (Server.run ~seed:cfg.Rfdet_workloads.Workload.input_seed p));
        }
    in
    let r =
      Runner.run ~threads:workers ~sched_seed:(Int64.of_int seed)
        ~input_seed:(Int64.of_int input_seed) ?faults ~failure_mode ~obs
        runtime w
    in
    ignore !report;
    let events = Sink.events obs in
    let dropped = Sink.dropped obs in
    warn_dropped dropped;
    let spans = Span.collect events in
    let records = spans.Span.complete in
    (* the walk is offline analysis: spread record chunks over host
       domains, order-preserving, so output bytes never depend on N *)
    let chunk xs =
      let n = List.length xs in
      let size = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
      let rec go acc cur k = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | x :: rest ->
          if k = size then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
      in
      go [] [] 0 xs
    in
    let walked =
      Rfdet_par.Par.map_ordered ~jobs
        (List.map Critpath.walk)
        (chunk records)
      |> List.concat
    in
    let atts =
      List.map
        (function
          | Ok a -> a
          | Error msg ->
            Printf.eprintf
              "rfdet: critical-path invariant violated: %s\n" msg;
            exit 7)
        walked
    in
    Printf.printf "runtime         %s\n" r.Runner.runtime;
    Printf.printf "signature       %s\n" r.Runner.signature;
    Printf.printf "variant         %s\n" (if rw then "rw" else "mutex");
    Printf.printf "spanned         %10d requests (%d incomplete"
      (List.length atts) spans.Span.incomplete;
    if dropped > 0 then Printf.printf ", %d events dropped" dropped;
    print_string ")\n";
    Printf.printf "exact-sum       every span tree's segments sum to its \
                   measured latency\n";
    let cohorts = Critpath.cohorts atts in
    let selected =
      match pct with
      | `All -> cohorts
      | `P50 -> List.filter (fun c -> c.Critpath.label = "p50") cohorts
      | `P99 -> List.filter (fun c -> c.Critpath.label = "p99") cohorts
      | `P999 -> List.filter (fun c -> c.Critpath.label = "p999") cohorts
    in
    List.iter
      (fun (c : Critpath.cohort) ->
        Printf.printf
          "\n%-5s cohort: %d requests at latency >= %d (total %d cycles)\n"
          c.Critpath.label c.Critpath.count c.Critpath.threshold
          c.Critpath.total_latency;
        List.iter
          (fun (l, cyc) ->
            let share = List.assoc l c.Critpath.shares_pm in
            Printf.printf "  %-8s %12d cycles  %3d.%d%%\n" l cyc
              (share / 10) (share mod 10))
          c.Critpath.cycles)
      selected;
    let by_req = Hashtbl.create 64 in
    List.iter (fun (rc : Span.record) -> Hashtbl.replace by_req rc.Span.req rc)
      records;
    let print_exemplars title xs =
      Printf.printf "\n%s:\n" title;
      List.iter
        (fun (a : Critpath.attribution) ->
          if crit then Printf.printf "  %s\n" (Critpath.attribution_json a)
          else
            match Hashtbl.find_opt by_req a.Critpath.req with
            | Some rc ->
              let b = Buffer.create 256 in
              Span.render_tree b rc;
              print_string (Buffer.contents b)
            | None -> ())
        xs
    in
    print_exemplars "top slowest" (Critpath.top_slowest top atts);
    print_exemplars "top deepest" (Critpath.top_deepest top atts);
    match json with
    | None -> ()
    | Some path ->
      let meta =
        [
          ("variant", Printf.sprintf "%S" (if rw then "rw" else "mutex"));
          ("seed", string_of_int seed);
          ("input_seed", string_of_int input_seed);
          ("requests", string_of_int requests);
          ("rate", string_of_int rate);
          ("workers", string_of_int workers);
          ("shards", string_of_int shards);
          ("deadline", string_of_int deadline);
          ("incomplete", string_of_int spans.Span.incomplete);
          ("dropped", string_of_int dropped);
        ]
      in
      write_file path (Critpath.json ~meta ~top atts);
      Printf.printf "\nspans json: %s\n" path
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Run the deterministic KV server with request-level span \
          tracing on and print critical-path latency attribution: \
          per-cohort (p50/p99/p999) segment shares and top-k \
          slowest/deepest exemplar span trees with replay coordinates.  \
          Segment cycles sum bit-exactly to each request's measured \
          latency (violations exit 7), spans never perturb the run (the \
          signature matches an untraced serve), and the output is \
          byte-identical across runtimes, $(b,--jobs) counts and repeat \
          runs.")
    Term.(
      const action $ runtime_opt_arg $ requests_arg $ rate_arg $ workers_arg
      $ shards_arg $ deadline_arg $ seed_arg $ input_seed_arg
      $ fault_plan_arg $ fault_mode_arg $ rw_arg $ top_arg $ crit_arg
      $ pct_arg $ json_arg $ ring_arg $ jobs_arg)

let () =
  let doc = "RFDet: deterministic multithreading without global barriers" in
  let info = Cmd.info "rfdet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; trace_cmd; profile_cmd; list_cmd; racey_cmd; races_cmd;
            record_cmd; replay_cmd; faults_cmd; clinic_cmd; check_cmd;
            bench_cmd; serve_cmd; spans_cmd; experiment_cmd ]))
