(* A mapping points at a page frame that may be shared by several spaces
   after a fork.  [frame.refs] counts the spaces sharing it; a write
   through a shared frame first copies it (copy-on-write). *)

type frame = { data : bytes; mutable refs : int }

type mapping = { mutable frame : frame }

type t = {
  pages : (int, mapping) Hashtbl.t;
  prots : (int, protection) Hashtbl.t;
  mutable cache_id : int;  (* page-handle cache: last mapping looked up *)
  mutable cache_m : mapping;  (* meaningful iff [cache_id >= 0] *)
}

and protection = Prot_rw | Prot_read_only | Prot_none

(* Placeholder for an empty cache slot; never dereferenced because
   [cache_id = -1] matches no page id. *)
let no_mapping = { frame = { data = Bytes.empty; refs = 0 } }

let create () =
  {
    pages = Hashtbl.create 64;
    prots = Hashtbl.create 8;
    cache_id = -1;
    cache_m = no_mapping;
  }

let invalidate_cache t = t.cache_id <- -1

let fork t =
  let child = create () in
  Hashtbl.iter
    (fun id m ->
      m.frame.refs <- m.frame.refs + 1;
      Hashtbl.replace child.pages id { frame = m.frame })
    t.pages;
  (* The cached mapping record stays valid (mappings are per-space and
     [own] checks [refs] on every write), but drop it anyway: a stale
     handle held across a fork is exactly the bug class the cache could
     hide, and the next access re-warms it for free. *)
  invalidate_cache t;
  child

let fresh_frame () = { data = Bytes.make Page.size '\000'; refs = 1 }

(* Read-path lookup: never materializes a page (unmapped pages read as
   zeros and must stay unmapped — mapped-page counts feed the footprint
   numbers of Table 1). *)
let find_mapping t id =
  if t.cache_id = id then Some t.cache_m
  else
    match Hashtbl.find_opt t.pages id with
    | Some m ->
      t.cache_id <- id;
      t.cache_m <- m;
      Some m
    | None -> None

(* Write-path lookup: materializes a zero page on first touch. *)
let mapping_for t id =
  if t.cache_id = id then t.cache_m
  else begin
    let m =
      match Hashtbl.find_opt t.pages id with
      | Some m -> m
      | None ->
        let m = { frame = fresh_frame () } in
        Hashtbl.replace t.pages id m;
        m
    in
    t.cache_id <- id;
    t.cache_m <- m;
    m
  end

(* Ensure the mapping's frame is private to this space before writing.
   Cache-safe: the frame is replaced *inside* the mapping record, so a
   cached mapping can never leak a shared frame to a writer. *)
let own t id =
  let m = mapping_for t id in
  if m.frame.refs > 1 then begin
    m.frame.refs <- m.frame.refs - 1;
    let copy = { data = Bytes.copy m.frame.data; refs = 1 } in
    m.frame <- copy
  end;
  m

let own_page t id = (own t id).frame.data

let load_byte t addr =
  match find_mapping t (Page.id_of_addr addr) with
  | None -> 0
  | Some m -> Char.code (Bytes.get m.frame.data (Page.offset_of_addr addr))

let store_byte t addr v =
  let m = own t (Page.id_of_addr addr) in
  Bytes.set m.frame.data (Page.offset_of_addr addr) (Char.chr (v land 0xff))

let load_i64 t addr =
  (* Fast path when the 8 bytes sit inside one page. *)
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then
    match find_mapping t (Page.id_of_addr addr) with
    | None -> 0L
    | Some m -> Bytes.get_int64_le m.frame.data off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load_byte t (addr + i)))
    done;
    !v
  end

let store_i64 t addr v =
  let off = Page.offset_of_addr addr in
  if off <= Page.size - 8 then begin
    let m = own t (Page.id_of_addr addr) in
    Bytes.set_int64_le m.frame.data off v
  end
  else
    for i = 0 to 7 do
      store_byte t (addr + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let load_int t addr = Int64.to_int (load_i64 t addr)

let store_int t addr v = store_i64 t addr (Int64.of_int v)

(* String I/O works page-segment-at-a-time: one ownership / lookup and
   one blit per page crossed, instead of per byte. *)

let blit_string t ~addr s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Page.offset_of_addr a in
    let n = min (len - !pos) (Page.size - off) in
    let m = own t (Page.id_of_addr a) in
    Bytes.blit_string s !pos m.frame.data off n;
    pos := !pos + n
  done

let read_string t ~addr ~len =
  if len <= 0 then ""
  else begin
    let buf = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let off = Page.offset_of_addr a in
      let n = min (len - !pos) (Page.size - off) in
      (match find_mapping t (Page.id_of_addr a) with
      | Some m -> Bytes.blit m.frame.data off buf !pos n
      | None -> Bytes.fill buf !pos n '\000');
      pos := !pos + n
    done;
    Bytes.unsafe_to_string buf
  end

let zero_page = Bytes.make Page.size '\000'

let snapshot_page t id =
  match find_mapping t id with
  | None -> Bytes.copy zero_page
  | Some m -> Bytes.copy m.frame.data

let snapshot_page_into t id buf =
  if Bytes.length buf <> Page.size then
    invalid_arg "Space.snapshot_page_into: buffer must be page-sized";
  match find_mapping t id with
  | None -> Bytes.fill buf 0 Page.size '\000'
  | Some m -> Bytes.blit m.frame.data 0 buf 0 Page.size

let page_bytes t id =
  match find_mapping t id with None -> zero_page | Some m -> m.frame.data

let write_page t id data =
  if Bytes.length data <> Page.size then
    invalid_arg "Space.write_page: wrong page size";
  let m = own t id in
  Bytes.blit data 0 m.frame.data 0 Page.size

let page_is_mapped t id = Hashtbl.mem t.pages id

let owned_pages t =
  Hashtbl.fold (fun _ m acc -> if m.frame.refs = 1 then acc + 1 else acc) t.pages 0

let mapped_pages t = Hashtbl.length t.pages

let iter_pages t ~f = Hashtbl.iter (fun id _ -> f id) t.pages

let protect t id p =
  match p with
  | Prot_rw -> Hashtbl.remove t.prots id
  | Prot_read_only | Prot_none -> Hashtbl.replace t.prots id p

let protection t id =
  match Hashtbl.find_opt t.prots id with Some p -> p | None -> Prot_rw

let clear_protections t = Hashtbl.reset t.prots
