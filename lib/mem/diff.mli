(** Byte-granularity page diffing and modification lists.

    RFDet captures the writes of a slice by snapshotting each page on
    first touch and, when the slice ends, comparing snapshot and live page
    byte-by-byte (paper Section 4.2).  The C++ memory model's smallest
    scalar is a byte, so diffs must be byte-granular for correctness
    (Section 4.6) — this is also what produces the paper's famous
    255/256 -> 511 merge on racy programs.

    A modification list is a sequence of runs, each a maximal range of
    consecutive differing bytes.  Runs within one page are in ascending
    address order; the order of whole-page diffs inside a slice follows
    first-touch order, which is deterministic. *)

type run = {
  addr : int;       (** absolute byte address of the first modified byte *)
  data : string;    (** the new bytes, length >= 1 *)
}

type t = run list

val empty : t
(** The empty modification list. *)

(** [diff_page ~page_id ~snapshot ~current] compares two page images and
    returns the modification runs with absolute addresses.  Raises
    [Invalid_argument] if either buffer is not page-sized.

    The scan compares 8 bytes per step ([Bytes.get_int64_le]) and only
    refines mismatching words byte-by-byte, so equal regions — the
    overwhelmingly common case — cost one word load per 8 bytes. *)
val diff_page : page_id:int -> snapshot:bytes -> current:bytes -> t

(** [diff_page_bytewise] is the byte-at-a-time reference implementation
    of [diff_page]: extensionally equal (property-tested), an order of
    magnitude slower.  Kept as the testing oracle and the baseline of
    the [page diff] microbenchmarks. *)
val diff_page_bytewise : page_id:int -> snapshot:bytes -> current:bytes -> t

(** [apply space t] writes every run into [space] in list order (later
    runs overwrite earlier ones on overlap — "remote wins").  Each
    target page is owned (copy-on-write) once and runs are applied with
    [Bytes.blit_string], not per-byte stores. *)
val apply : Space.t -> t -> unit

(** [apply_run space run] writes a single run (one page ownership + one
    blit). *)
val apply_run : Space.t -> run -> unit

(** [apply_runs_on_page space ~page_id runs] bulk-applies runs known to
    live on one page, owning the page once.  Used by the lazy-writes
    flush paths, whose pending sets are already grouped by page. *)
val apply_runs_on_page : Space.t -> page_id:int -> run list -> unit

(** [byte_count t] is the total number of modified bytes — the metadata
    space cost of storing the list. *)
val byte_count : t -> int

(** [run_count t] is the number of runs. *)
val run_count : t -> int

(** [is_empty t] — true when the slice made no (non-redundant) writes. *)
val is_empty : t -> bool

(** [pages_touched t] is the sorted, deduplicated list of page ids the
    runs fall on (runs never span pages). *)
val pages_touched : t -> int list

(** [restrict_to_page t page_id] keeps only runs on the given page —
    used by the lazy-writes fault handler to apply one page's pending
    updates. *)
val restrict_to_page : t -> int -> t

(** [concat ts] concatenates modification lists preserving order. *)
val concat : t list -> t

val pp : Format.formatter -> t -> unit
