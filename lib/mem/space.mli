(** Private, paged address spaces with copy-on-write forking.

    This is the software analogue of the per-process address spaces RFDet
    obtains from [clone]: each simulated thread owns a [Space]; a store in
    one space is invisible in every other space until the runtime
    explicitly propagates it.  [fork] implements the child-inherits-parent
    semantics of thread creation at page granularity with copy-on-write,
    and the materialized-page count feeds the memory-footprint numbers of
    Table 1.

    Domain safety: a space (and everything forked from it) is
    unsynchronized mutable state belonging to one simulated run — never
    share one across host domains ([Rfdet_par.Par] sweeps).  The only
    module-level values are the all-zero page returned for unmapped
    reads and an inert cache placeholder; both are read-only by
    contract, so concurrent runs on different domains may observe them
    freely. *)

type t

(** [create ()] is an empty space; pages are zero-filled on demand. *)
val create : unit -> t

(** [fork t] is a copy-on-write clone.  Both spaces subsequently see the
    same contents until one of them writes a page, at which point that
    space gets a private copy of the page.  Forking invalidates [t]'s
    page-handle cache (see below). *)
val fork : t -> t

(** Every space keeps a one-entry page-handle cache — the mapping of the
    last page looked up — so the hot access pattern (many consecutive
    operations on one page) costs one integer compare instead of one
    hashtable probe each.  The cache holds the {e mapping}, not the
    frame, and ownership re-checks the frame's reference count on every
    write, so copy-on-write isolation is unaffected; [fork]
    additionally drops the cache outright. *)

(** [load_byte t addr] reads one byte (pages spring into existence
    zero-filled). *)
val load_byte : t -> int -> int

(** [store_byte t addr v] writes one byte ([v land 0xff]). *)
val store_byte : t -> int -> int -> unit

(** [load_i64 t addr] / [store_i64 t addr v] read/write 8 bytes
    little-endian at arbitrary (possibly unaligned) addresses. *)
val load_i64 : t -> int -> int64
val store_i64 : t -> int -> int64 -> unit

(** [load_int] / [store_int] are [int]-valued convenience wrappers over
    the 64-bit accessors (the simulated machine's natural word). *)
val load_int : t -> int -> int
val store_int : t -> int -> int -> unit

(** [blit_string t ~addr s] stores the bytes of [s] starting at [addr],
    one page-segment blit at a time. *)
val blit_string : t -> addr:int -> string -> unit

(** [read_string t ~addr ~len] reads [len] bytes as a string, one
    page-segment blit at a time (unmapped pages read as zeros). *)
val read_string : t -> addr:int -> len:int -> string

(** [snapshot_page t page_id] returns a private copy of the current
    contents of a page (zero page if untouched). *)
val snapshot_page : t -> int -> bytes

(** [snapshot_page_into t page_id buf] copies the page's current
    contents into the caller's page-sized buffer (zero-fills when
    unmapped) — the allocation-free variant of [snapshot_page] used with
    [Metadata]'s buffer pool.  Raises [Invalid_argument] if [buf] is not
    page-sized. *)
val snapshot_page_into : t -> int -> bytes -> unit

(** [page_bytes t page_id] returns the live page contents for read-only
    inspection (do not mutate; used by the differ). *)
val page_bytes : t -> int -> bytes

(** [own_page t page_id] materializes the page, makes it private to this
    space (copy-on-write), and returns its live mutable contents — the
    bulk-write entry point used by [Diff.apply] and the lazy-writes
    flush.  Writes through the returned bytes are writes to the page. *)
val own_page : t -> int -> bytes

(** [write_page t page_id data] replaces a page's contents (used when
    re-seeding spaces at barriers). *)
val write_page : t -> int -> bytes -> unit

(** [page_is_mapped t page_id] is true when the space has a mapping for
    the page (shared or private). *)
val page_is_mapped : t -> int -> bool

(** [owned_pages t] counts pages for which this space holds a private
    (materialized) copy — the space's resident-set contribution beyond
    the shared backing. *)
val owned_pages : t -> int

(** [mapped_pages t] counts all mapped pages. *)
val mapped_pages : t -> int

(** [iter_pages t ~f] calls [f page_id] on every mapped page. *)
val iter_pages : t -> f:(int -> unit) -> unit

(** Page protection (simulated mprotect): the RFDet-pf monitor and the
    lazy-writes optimization mark pages and the simulated Store/Load paths
    consult the marks.  Protection is metadata only; accessors themselves
    never fault — the runtime checks [protection] first. *)

type protection = Prot_rw | Prot_read_only | Prot_none

val protect : t -> int -> protection -> unit
val protection : t -> int -> protection
(** Unmapped or unprotected pages report [Prot_rw]. *)

val clear_protections : t -> unit
