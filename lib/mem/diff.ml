type run = { addr : int; data : string }

type t = run list

let empty = []

(* Reference implementation: scan for maximal runs of differing bytes,
   one byte at a time.  Kept as the oracle for the word-level fast path
   (property-tested equal) and as the baseline the microbenchmarks
   compare against. *)
let diff_page_bytewise ~page_id ~snapshot ~current =
  if Bytes.length snapshot <> Page.size || Bytes.length current <> Page.size
  then invalid_arg "Diff.diff_page: buffers must be page-sized";
  let base = Page.base_of_id page_id in
  let runs = ref [] in
  let i = ref 0 in
  while !i < Page.size do
    if Bytes.get snapshot !i <> Bytes.get current !i then begin
      let start = !i in
      while
        !i < Page.size && Bytes.get snapshot !i <> Bytes.get current !i
      do
        incr i
      done;
      let len = !i - start in
      runs :=
        { addr = base + start; data = Bytes.sub_string current start len }
        :: !runs
    end
    else incr i
  done;
  List.rev !runs

(* Fast path: compare 8 bytes per step, with a 32-byte unrolled stride
   while no run is open.  Equal words are skipped with a single 64-bit
   load per buffer; only mismatching words are refined byte-by-byte, so
   run boundaries land exactly where the bytewise scan puts them.
   Requires [Page.size] to be a multiple of 8 (it is 4096).  The
   refinement loop uses [unsafe_get] — indices stay within the length
   check performed on entry. *)
let diff_page ~page_id ~snapshot ~current =
  if Bytes.length snapshot <> Page.size || Bytes.length current <> Page.size
  then invalid_arg "Diff.diff_page: buffers must be page-sized";
  let base = Page.base_of_id page_id in
  let runs = ref [] in
  let run_start = ref (-1) in
  let close stop =
    if !run_start >= 0 then begin
      runs :=
        {
          addr = base + !run_start;
          data = Bytes.sub_string current !run_start (stop - !run_start);
        }
        :: !runs;
      run_start := -1
    end
  in
  let o = ref 0 in
  while !o < Page.size do
    if
      !run_start < 0
      && !o + 32 <= Page.size
      && Bytes.get_int64_le snapshot !o = Bytes.get_int64_le current !o
      && Bytes.get_int64_le snapshot (!o + 8) = Bytes.get_int64_le current (!o + 8)
      && Bytes.get_int64_le snapshot (!o + 16)
         = Bytes.get_int64_le current (!o + 16)
      && Bytes.get_int64_le snapshot (!o + 24)
         = Bytes.get_int64_le current (!o + 24)
    then o := !o + 32
    else if Bytes.get_int64_le snapshot !o = Bytes.get_int64_le current !o
    then begin
      (* guard the call: the equal-word path must stay call-free *)
      if !run_start >= 0 then close !o;
      o := !o + 8
    end
    else begin
      for j = !o to !o + 7 do
        if Bytes.unsafe_get snapshot j <> Bytes.unsafe_get current j then begin
          if !run_start < 0 then run_start := j
        end
        else if !run_start >= 0 then close j
      done;
      o := !o + 8
    end
  done;
  if !run_start >= 0 then close Page.size;
  List.rev !runs

(* Application owns each target page once and blits whole runs into the
   private frame, instead of one hashtable probe + copy-on-write check
   per byte.  Runs never span pages (diff_page works page-at-a-time), so
   a run is always a single blit. *)

let blit_run data (r : run) =
  Bytes.blit_string r.data 0 data
    (Page.offset_of_addr r.addr)
    (String.length r.data)

let apply_runs_on_page space ~page_id runs =
  match runs with
  | [] -> ()
  | runs ->
    let data = Space.own_page space page_id in
    List.iter (blit_run data) runs

let apply_run space run =
  blit_run (Space.own_page space (Page.id_of_addr run.addr)) run

let apply space t =
  (* One-entry page memo: consecutive runs land on the same page (diffs
     are in ascending in-page order), so each page is owned once. *)
  let page = ref (-1) in
  let data = ref Bytes.empty in
  List.iter
    (fun r ->
      let p = Page.id_of_addr r.addr in
      if p <> !page then begin
        page := p;
        data := Space.own_page space p
      end;
      blit_run !data r)
    t

let byte_count t = List.fold_left (fun acc r -> acc + String.length r.data) 0 t

let run_count = List.length

let is_empty = function [] -> true | _ :: _ -> false

let pages_touched t =
  let ids = List.map (fun r -> Page.id_of_addr r.addr) t in
  List.sort_uniq compare ids

let restrict_to_page t page_id =
  List.filter (fun r -> Page.id_of_addr r.addr = page_id) t

let concat = List.concat

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf r ->
         Format.fprintf ppf "%#x+%d" r.addr (String.length r.data)))
    t
