module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Space = Rfdet_mem.Space
module Page = Rfdet_mem.Page
module Sync = Rfdet_kendo.Sync

let name = "kendo"

type t = { engine : Engine.t; space : Space.t; sync : Sync.t }

let handle t ~tid (op : Op.t) : Engine.outcome =
  let cost = Engine.cost t.engine in
  match op with
  | Op.Load { addr; width } ->
    Engine.advance t.engine tid cost.Cost.load;
    let v =
      match width with
      | Op.W8 -> Space.load_byte t.space addr
      | Op.W64 -> Space.load_int t.space addr
    in
    Done v
  | Op.Store { addr; value; width } ->
    Engine.advance t.engine tid cost.Cost.store;
    (match width with
    | Op.W8 -> Space.store_byte t.space addr value
    | Op.W64 -> Space.store_int t.space addr value);
    Done 0
  | Op.Mutex_create -> Sync.mutex_create t.sync ~tid
  | Op.Cond_create -> Sync.cond_create t.sync ~tid
  | Op.Barrier_create parties -> Sync.barrier_create t.sync ~tid ~parties
  | Op.Lock m -> Sync.lock t.sync ~tid ~mutex:m
  | Op.Trylock m -> Sync.trylock t.sync ~tid ~mutex:m
  | Op.Lock_timed { mutex; timeout } ->
    Sync.lock_timed t.sync ~tid ~mutex ~timeout
  | Op.Mutex_heal m -> Sync.heal t.sync ~tid ~handle:m
  | Op.Unlock m -> Sync.unlock t.sync ~tid ~mutex:m
  | Op.Cond_wait { cond; mutex } -> Sync.cond_wait t.sync ~tid ~cond ~mutex
  | Op.Cond_signal c -> Sync.cond_signal t.sync ~tid ~cond:c
  | Op.Cond_broadcast c -> Sync.cond_broadcast t.sync ~tid ~cond:c
  | Op.Barrier_wait b -> Sync.barrier_wait t.sync ~tid ~barrier:b
  | Op.Atomic { addr; rmw } ->
    Sync.rmw t.sync ~tid ~action:(fun ~now:_ ->
        let current = Space.load_int t.space addr in
        let prev, next = Op.apply_rmw rmw ~current in
        Space.store_int t.space addr next;
        (prev, 0))
  | Op.Spawn body -> Sync.spawn t.sync ~tid ~body
  | Op.Join target -> Sync.join t.sync ~tid ~target
  | Op.Rwlock_create -> Sync.rwlock_create t.sync ~tid
  | Op.Rdlock rw -> Sync.rdlock t.sync ~tid ~rwlock:rw
  | Op.Wrlock rw -> Sync.wrlock t.sync ~tid ~rwlock:rw
  | Op.Rwunlock rw -> Sync.rwunlock t.sync ~tid ~rwlock:rw
  | Op.Sem_create permits -> Sync.sem_create t.sync ~tid ~permits
  | Op.Sem_acquire s -> Sync.sem_acquire t.sync ~tid ~sem:s
  | Op.Sem_post s -> Sync.sem_post t.sync ~tid ~sem:s
  | Op.Deque_create -> Sync.deque_create t.sync ~tid
  | Op.Deque_push { deque; value } -> Sync.deque_push t.sync ~tid ~deque ~value
  | Op.Deque_pop dq -> Sync.deque_pop t.sync ~tid ~deque:dq
  | Op.Deque_steal own -> Sync.deque_steal t.sync ~tid ~own
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let on_finish t () =
  let prof = Engine.profile t.engine in
  let shared = ref 0 in
  Space.iter_pages t.space ~f:(fun id ->
      if Rfdet_mem.Layout.is_shared (Page.base_of_id id) then incr shared);
  prof.shared_bytes <- !shared * Page.size;
  prof.stack_bytes <- Engine.thread_count t.engine * 8192

let make_with_sync engine : Sync.t * Engine.policy =
  let t =
    {
      engine;
      space = Space.create ();
      sync = Sync.create engine Sync.trivial_hooks;
    }
  in
  ( t.sync,
    {
      Engine.policy_name = name;
      handle = (fun ~tid op -> handle t ~tid op);
      on_engine_op = (fun ~tid:_ _ outcome -> outcome);
      on_thread_exit = (fun ~tid -> Sync.on_thread_exit t.sync ~tid);
      (* Weak determinism shares memory directly, so a crashed thread has
         no private state to discard — the sync-layer repair (poisoned
         mutexes, broken barriers, failed joiners) is the whole story. *)
      on_thread_crash = (fun ~tid _exn -> Sync.on_thread_crash t.sync ~tid);
      on_step = (fun () -> Sync.poll t.sync);
      on_finish = (fun () -> on_finish t ());
    } )

let make engine : Engine.policy = snd (make_with_sync engine)
