(** Weak determinism: the Kendo algorithm alone (Section 2).

    Synchronization operations execute in deterministic logical-time
    order via the arbiter, but memory is a single shared space with
    immediate visibility — data races are *not* resolved
    deterministically by construction.  In this simulator the schedule of
    ordinary loads and stores still follows seeded jitter, so racy
    programs can produce different outputs across seeds while race-free
    programs are fully deterministic: exactly the weak-determinism
    guarantee ("determinism up to the first data race").

    Included as a comparison point and to test the Kendo layer in
    isolation. *)

val name : string

val make : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy

val make_with_sync :
  Rfdet_sim.Engine.t -> Rfdet_kendo.Sync.t * Rfdet_sim.Engine.policy
(** Like [make], also exposing the runtime's synchronization layer —
    the recovery manager ([Rfdet_recover]) needs it for lock healing
    and deadlock-victim selection. *)
