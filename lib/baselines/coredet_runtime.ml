module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Page = Rfdet_mem.Page
module Diff = Rfdet_mem.Diff

let name = "coredet"

let quantum = 50_000

type action =
  | A_lock of int
  | A_trylock of int
  | A_unlock of int
  | A_cond_wait of int * int
  | A_cond_signal of int
  | A_cond_broadcast of int
  | A_barrier of int
  | A_spawn of (unit -> unit)
  | A_join of int
  | A_exit
  | A_atomic of int * Op.rmw
  | A_rdlock of int
  | A_wrlock of int
  | A_rwunlock of int
  | A_sem_acquire of int
  | A_sem_post of int
  | A_deque_push of int * int
  | A_deque_pop of int
  | A_deque_steal of int
  | A_quantum of int
      (** ran out of instruction budget mid-computation; the int is the
          just-completed operation's result, delivered when the next
          round resumes the thread *)

type cstate = {
  tid : int;
  space : Space.t;
  stack : Space.t;
  snapshots : (int, bytes) Hashtbl.t;
  mutable touch_order : int list;
  mutable quantum_end : int;  (* icount bound for the current round *)
  mutable live : bool;
}

type mutex_state = { mutable owner : int option; queue : int Queue.t }

type cond_state = { cond_waiters : (int * int) Queue.t }

type barrier_state = { parties : int; mutable arrived_tids : int list }

type rw_state = {
  mutable rw_writer : int option;
  mutable rw_readers : int list;
  rw_queue : (int * [ `Rd | `Wr ]) Queue.t;  (* token arrival order *)
}

type sem_state = { mutable sem_permits : int; sem_queue : int Queue.t }

type deque_state = {
  dq_owner : int;
  mutable dq_items : (int * int) list;  (* (value, push seq), oldest first *)
}

type t = {
  engine : Engine.t;
  quantum : int;
  states : (int, cstate) Hashtbl.t;
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  rwlocks : (int, rw_state) Hashtbl.t;
  sems : (int, sem_state) Hashtbl.t;
  deques : (int, deque_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;
  mutable next_handle : int;
  mutable push_seq : int;
  mutable arrived : (int * action) list;
  mutable excluded : int list;
  mutable commits : (int * Diff.t) list;
  mutable live_count : int;
}

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let cstate t tid =
  match Hashtbl.find_opt t.states tid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "coredet: unknown tid %d" tid)

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "coredet: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "coredet: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "coredet: unknown barrier %d" b)

let rw_state t rw =
  match Hashtbl.find_opt t.rwlocks rw with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "coredet: unknown rwlock %d" rw)

let sem_state t s =
  match Hashtbl.find_opt t.sems s with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "coredet: unknown semaphore %d" s)

let deque_state t dq =
  match Hashtbl.find_opt t.deques dq with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "coredet: unknown deque %d" dq)

let fresh_state t ~tid ~space =
  let st =
    {
      tid;
      space;
      stack = Space.create ();
      snapshots = Hashtbl.create 16;
      touch_order = [];
      quantum_end = Engine.icount t.engine tid + t.quantum;
      live = true;
    }
  in
  Hashtbl.replace t.states tid st;
  st

(* store-buffer emulation: first-touch snapshot for the round's diff *)
let track_store t st addr ~len =
  let c = Engine.cost t.engine in
  let p = Engine.profile t.engine in
  let cycles = ref 0 in
  let copied = ref false in
  List.iter
    (fun page ->
      if t.live_count > 1 && not (Hashtbl.mem st.snapshots page) then begin
        Hashtbl.replace st.snapshots page (Space.snapshot_page st.space page);
        st.touch_order <- page :: st.touch_order;
        p.snapshots <- p.snapshots + 1;
        copied := true;
        cycles := !cycles + Cost.snapshot_cost c ~bytes:Page.size
      end)
    (Page.span ~addr ~len);
  if !copied then p.stores_with_copy <- p.stores_with_copy + 1;
  !cycles

let collect_diffs t st =
  let c = Engine.cost t.engine in
  let cycles = ref 0 in
  let pages = List.rev st.touch_order in
  let mods =
    List.concat_map
      (fun page ->
        let snapshot = Hashtbl.find st.snapshots page in
        let current = Space.page_bytes st.space page in
        cycles := !cycles + Cost.diff_cost c ~bytes:Page.size;
        Diff.diff_page ~page_id:page ~snapshot ~current)
      pages
  in
  Hashtbl.reset st.snapshots;
  st.touch_order <- [];
  (mods, !cycles)

let population t =
  Hashtbl.fold
    (fun tid st acc ->
      if st.live && not (List.mem tid t.excluded) then tid :: acc else acc)
    t.states []

let exclude t tid = t.excluded <- tid :: t.excluded

let unexclude t tid = t.excluded <- List.filter (fun x -> x <> tid) t.excluded

let pass_mutex t ~mutex ~at =
  let st = mutex_state t mutex in
  match Queue.take_opt st.queue with
  | None -> ()
  | Some w ->
    st.owner <- Some w;
    unexclude t w;
    Engine.wake t.engine ~tid:w ~value:0 ~not_before:at

(* Admit the queue head after a full rwlock release: a writer alone, or
   the consecutive run of readers at the head as a group. *)
let admit_rw t ~rw ~at =
  let st = rw_state t rw in
  if st.rw_writer = None && st.rw_readers = [] then
    match Queue.peek_opt st.rw_queue with
    | None -> ()
    | Some (_, `Wr) ->
      let w, _ = Queue.pop st.rw_queue in
      st.rw_writer <- Some w;
      unexclude t w;
      Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
    | Some (_, `Rd) ->
      let rec run () =
        match Queue.peek_opt st.rw_queue with
        | Some (r, `Rd) ->
          ignore (Queue.pop st.rw_queue);
          st.rw_readers <- r :: st.rw_readers;
          unexclude t r;
          Engine.wake t.engine ~tid:r ~value:0 ~not_before:at;
          run ()
        | _ -> ()
      in
      run ()

let perform_action t ~tid ~action ~at =
  let resume value = Engine.wake t.engine ~tid ~value ~not_before:at in
  match action with
  | A_exit -> ()
  | A_quantum v -> resume v
  | A_rdlock rw ->
    let st = rw_state t rw in
    if st.rw_writer = None && Queue.is_empty st.rw_queue then begin
      st.rw_readers <- tid :: st.rw_readers;
      resume 0
    end
    else begin
      Queue.add (tid, `Rd) st.rw_queue;
      exclude t tid
    end
  | A_wrlock rw ->
    let st = rw_state t rw in
    if st.rw_writer = None && st.rw_readers = [] && Queue.is_empty st.rw_queue
    then begin
      st.rw_writer <- Some tid;
      resume 0
    end
    else begin
      Queue.add (tid, `Wr) st.rw_queue;
      exclude t tid
    end
  | A_rwunlock rw ->
    let st = rw_state t rw in
    (if st.rw_writer = Some tid then st.rw_writer <- None
     else if List.mem tid st.rw_readers then
       st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers
     else invalid_arg (Printf.sprintf "coredet: rwunlock of unheld %d" rw));
    admit_rw t ~rw ~at;
    resume 0
  | A_sem_acquire s ->
    let st = sem_state t s in
    if st.sem_permits > 0 then begin
      st.sem_permits <- st.sem_permits - 1;
      resume 0
    end
    else begin
      Queue.add tid st.sem_queue;
      exclude t tid
    end
  | A_sem_post s ->
    let st = sem_state t s in
    (match Queue.take_opt st.sem_queue with
    | Some w ->
      unexclude t w;
      Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
    | None -> st.sem_permits <- st.sem_permits + 1);
    resume 0
  | A_deque_push (dq, value) ->
    let st = deque_state t dq in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "coredet: push into deque %d by non-owner" dq);
    let seq = t.push_seq in
    t.push_seq <- seq + 1;
    st.dq_items <- st.dq_items @ [ (value, seq) ];
    resume 0
  | A_deque_pop dq ->
    let st = deque_state t dq in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "coredet: pop from deque %d by non-owner" dq);
    (match List.rev st.dq_items with
    | [] -> resume (-1)
    | (v, _) :: rest ->
      st.dq_items <- List.rev rest;
      resume v)
  | A_deque_steal own ->
    (* the globally oldest item (lowest push seq), excluding the thief's
       own deque *)
    let victim =
      Hashtbl.fold
        (fun h st best ->
          if h = own then best
          else
            match st.dq_items, best with
            | [], _ -> best
            | (_, seq) :: _, Some (_, best_seq) when best_seq <= seq -> best
            | (_, seq) :: _, _ -> Some (h, seq))
        t.deques None
    in
    (match victim with
    | None -> resume (-1)
    | Some (h, _) ->
      let st = deque_state t h in
      (match st.dq_items with
      | (v, _) :: rest ->
        st.dq_items <- rest;
        resume v
      | [] -> assert false))
  | A_atomic (addr, rmw) ->
    let st = cstate t tid in
    let current = Space.load_int st.space addr in
    let prev, next = Op.apply_rmw rmw ~current in
    Hashtbl.iter
      (fun _ (st' : cstate) ->
        if st'.live then Space.store_int st'.space addr next)
      t.states;
    resume prev
  | A_lock m -> begin
    let st = mutex_state t m in
    match st.owner with
    | None ->
      st.owner <- Some tid;
      resume 0
    | Some _ ->
      Queue.add tid st.queue;
      exclude t tid
  end
  | A_trylock m -> begin
    let st = mutex_state t m in
    match st.owner with
    | None ->
      st.owner <- Some tid;
      resume 0
    | Some _ -> resume 2 (* busy; no queueing *)
  end
  | A_unlock m ->
    let st = mutex_state t m in
    (match st.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "coredet: unlock of unheld mutex %d" m));
    st.owner <- None;
    pass_mutex t ~mutex:m ~at;
    resume 0
  | A_cond_wait (c, m) ->
    let mst = mutex_state t m in
    (match mst.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None -> invalid_arg "coredet: cond_wait without the mutex");
    mst.owner <- None;
    pass_mutex t ~mutex:m ~at;
    Queue.add (tid, m) (cond_state t c).cond_waiters;
    exclude t tid
  | A_cond_signal c -> begin
    (match Queue.take_opt (cond_state t c).cond_waiters with
    | None -> ()
    | Some (w, m) ->
      let mst = mutex_state t m in
      (match mst.owner with
      | None ->
        mst.owner <- Some w;
        unexclude t w;
        Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
      | Some _ -> Queue.add w mst.queue));
    resume 0
  end
  | A_cond_broadcast c ->
    let cst = cond_state t c in
    let rec drain () =
      match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (w, m) ->
        let mst = mutex_state t m in
        (match mst.owner with
        | None ->
          mst.owner <- Some w;
          unexclude t w;
          Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
        | Some _ -> Queue.add w mst.queue);
        drain ()
    in
    drain ();
    resume 0
  | A_barrier b ->
    let st = barrier_state t b in
    st.arrived_tids <- tid :: st.arrived_tids;
    if List.length st.arrived_tids < st.parties then exclude t tid
    else begin
      List.iter
        (fun tid' ->
          if tid' <> tid then begin
            unexclude t tid';
            Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:at
          end)
        st.arrived_tids;
      st.arrived_tids <- [];
      resume 0
    end
  | A_spawn body ->
    let child = Engine.register_thread t.engine ~body ~start_at:at in
    let parent = cstate t tid in
    let (_ : cstate) = fresh_state t ~tid:child ~space:(Space.fork parent.space) in
    t.live_count <- t.live_count + 1;
    resume child
  | A_join target ->
    if not (cstate t target).live then resume 0
    else begin
      let existing =
        Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
      in
      Hashtbl.replace t.joiners target (existing @ [ tid ]);
      exclude t tid
    end

let run_serial t =
  let c = Engine.cost t.engine in
  let p = Engine.profile t.engine in
  let o = Engine.obs t.engine in
  p.barrier_stalls <- p.barrier_stalls + 1;
  let fence_time =
    List.fold_left
      (fun acc (tid, _) -> max acc (Engine.clock t.engine tid))
      0 t.arrived
  in
  let order = List.sort compare (List.rev t.arrived) in
  let commits = t.commits in
  t.arrived <- [];
  t.commits <- [];
  let clock = ref (fence_time + c.Cost.barrier_overhead) in
  (* Quantum-expiry fences stall every thread from its own arrival to
     the serial phase — CoreDet's round-robin commit cost. *)
  if Rfdet_obs.Sink.enabled o then
    List.iter
      (fun (tid, _) ->
        let arrived_at = Engine.clock t.engine tid in
        Rfdet_obs.Sink.emit o ~tid ~time:arrived_at
          (Rfdet_obs.Trace.Barrier_stall
             { barrier = -1; cycles = max 0 (!clock - arrived_at) }))
      order;
  List.iter
    (fun (tid, action) ->
      clock := !clock + c.Cost.commit_token;
      (match List.assoc_opt tid commits with
      | None | Some [] -> ()
      | Some mods ->
        let bytes = Diff.byte_count mods in
        Hashtbl.iter
          (fun tid' (st' : cstate) ->
            if tid' <> tid && st'.live then Diff.apply st'.space mods)
          t.states;
        p.bytes_propagated <- p.bytes_propagated + bytes;
        let commit_cycles = bytes * max 1 (c.Cost.apply_byte / 4) in
        if Rfdet_obs.Sink.enabled o then
          Rfdet_obs.Sink.emit o ~tid ~time:!clock
            (Rfdet_obs.Trace.Propagate
               { slice = -1; src = tid; pages = 0; bytes;
                 cycles = commit_cycles });
        clock := !clock + commit_cycles);
      (* refill the quantum for the next parallel phase *)
      (if Hashtbl.mem t.states tid then
         let st = cstate t tid in
         st.quantum_end <- Engine.icount t.engine tid + t.quantum);
      match action with
      | A_exit ->
        let st = cstate t tid in
        st.live <- false;
        t.live_count <- t.live_count - 1;
        (match Hashtbl.find_opt t.joiners tid with
        | None -> ()
        | Some waiting ->
          Hashtbl.remove t.joiners tid;
          List.iter
            (fun joiner ->
              unexclude t joiner;
              Engine.wake t.engine ~tid:joiner ~value:0 ~not_before:!clock)
            waiting)
      | _ -> perform_action t ~tid ~action ~at:!clock)
    order

let maybe_fence t =
  let pop = List.sort compare (population t) in
  let arr = List.sort compare (List.map fst t.arrived) in
  if pop <> [] && pop = arr then run_serial t

let arrive t ~tid ~action =
  let st = cstate t tid in
  let mods, cycles = collect_diffs t st in
  let c = Engine.cost t.engine in
  Engine.advance t.engine tid (cycles + c.Cost.sync_op);
  t.arrived <- (tid, action) :: t.arrived;
  t.commits <- (tid, mods) :: t.commits

(* Preempt the thread if its instruction budget for the round is gone. *)
let check_quantum t ~tid (outcome : Engine.outcome) : Engine.outcome =
  match outcome with
  | Engine.Block -> outcome
  | Engine.Done _ ->
    let st = cstate t tid in
    if st.live && Engine.icount t.engine tid >= st.quantum_end then begin
      (* pause at the quantum barrier; the serial phase delivers the
         just-completed operation's result when the next round starts *)
      let value = match outcome with Engine.Done v -> v | Block -> 0 in
      arrive t ~tid ~action:(A_quantum value);
      Engine.Block
    end
    else outcome

let handle t ~tid (op : Op.t) : Engine.outcome =
  let c = Engine.cost t.engine in
  let st = cstate t tid in
  match op with
  | Op.Load { addr; width } ->
    let space = if Layout.is_stack addr then st.stack else st.space in
    Engine.advance t.engine tid c.Cost.load;
    let v =
      match width with
      | Op.W8 -> Space.load_byte space addr
      | Op.W64 -> Space.load_int space addr
    in
    check_quantum t ~tid (Done v)
  | Op.Store { addr; value; width } ->
    let space, extra =
      if Layout.is_stack addr then (st.stack, 0)
      else
        (st.space,
         track_store t st addr ~len:(match width with Op.W8 -> 1 | Op.W64 -> 8))
    in
    Engine.advance t.engine tid (c.Cost.store + extra);
    (match width with
    | Op.W8 -> Space.store_byte space addr value
    | Op.W64 -> Space.store_int space addr value);
    check_quantum t ~tid (Done 0)
  | Op.Mutex_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.mutexes h { owner = None; queue = Queue.create () };
    Done h
  | Op.Cond_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
    Done h
  | Op.Barrier_create parties ->
    let h = fresh_handle t in
    Hashtbl.replace t.barriers h { parties; arrived_tids = [] };
    Done h
  | Op.Lock m ->
    arrive t ~tid ~action:(A_lock m);
    Block
  | Op.Trylock m ->
    arrive t ~tid ~action:(A_trylock m);
    Block
  | Op.Lock_timed { mutex; timeout = _ } ->
    (* Quantum rounds are the only time base; a timed lock behaves as an
       infinite-timeout lock, like the pthreads baseline. *)
    arrive t ~tid ~action:(A_lock mutex);
    Block
  | Op.Mutex_heal m ->
    (* heal dispatches on the handle's kind; nothing is ever poisoned
       under this runtime (crashes abort the run), so just validate *)
    (match Hashtbl.find_opt t.mutexes m with
    | Some mst -> (
      match mst.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg (Printf.sprintf "coredet: heal of unheld mutex %d" m))
    | None ->
      if
        not
          (Hashtbl.mem t.rwlocks m || Hashtbl.mem t.sems m
          || Hashtbl.mem t.deques m)
      then invalid_arg (Printf.sprintf "coredet: heal of unknown handle %d" m));
    Done 0
  | Op.Unlock m ->
    arrive t ~tid ~action:(A_unlock m);
    Block
  | Op.Cond_wait { cond; mutex } ->
    arrive t ~tid ~action:(A_cond_wait (cond, mutex));
    Block
  | Op.Cond_signal cond ->
    arrive t ~tid ~action:(A_cond_signal cond);
    Block
  | Op.Cond_broadcast cond ->
    arrive t ~tid ~action:(A_cond_broadcast cond);
    Block
  | Op.Barrier_wait b ->
    arrive t ~tid ~action:(A_barrier b);
    Block
  | Op.Atomic { addr; rmw } ->
    arrive t ~tid ~action:(A_atomic (addr, rmw));
    Block
  | Op.Spawn body ->
    arrive t ~tid ~action:(A_spawn body);
    Block
  | Op.Join target ->
    arrive t ~tid ~action:(A_join target);
    Block
  | Op.Rwlock_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.rwlocks h
      { rw_writer = None; rw_readers = []; rw_queue = Queue.create () };
    Done h
  | Op.Rdlock rw ->
    arrive t ~tid ~action:(A_rdlock rw);
    Block
  | Op.Wrlock rw ->
    arrive t ~tid ~action:(A_wrlock rw);
    Block
  | Op.Rwunlock rw ->
    arrive t ~tid ~action:(A_rwunlock rw);
    Block
  | Op.Sem_create permits ->
    if permits < 0 then invalid_arg "coredet: negative initial permits";
    let h = fresh_handle t in
    Hashtbl.replace t.sems h
      { sem_permits = permits; sem_queue = Queue.create () };
    Done h
  | Op.Sem_acquire s ->
    arrive t ~tid ~action:(A_sem_acquire s);
    Block
  | Op.Sem_post s ->
    arrive t ~tid ~action:(A_sem_post s);
    Block
  | Op.Deque_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.deques h { dq_owner = tid; dq_items = [] };
    Done h
  | Op.Deque_push { deque; value } ->
    arrive t ~tid ~action:(A_deque_push (deque, value));
    Block
  | Op.Deque_pop dq ->
    arrive t ~tid ~action:(A_deque_pop dq);
    Block
  | Op.Deque_steal own ->
    arrive t ~tid ~action:(A_deque_steal own);
    Block
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let on_finish t () =
  let p = Engine.profile t.engine in
  let pages = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ (st : cstate) ->
      Space.iter_pages st.space ~f:(fun id ->
          if Layout.is_shared (Page.base_of_id id) then
            Hashtbl.replace pages id ()))
    t.states;
  p.shared_bytes <- Hashtbl.length pages * Page.size;
  p.stack_bytes <- Engine.thread_count t.engine * 8192

let make ?(quantum = quantum) engine : Engine.policy =
  let t =
    {
      engine;
      quantum;
      states = Hashtbl.create 16;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      rwlocks = Hashtbl.create 8;
      sems = Hashtbl.create 8;
      deques = Hashtbl.create 8;
      joiners = Hashtbl.create 8;
      next_handle = 1;
      push_seq = 0;
      arrived = [];
      excluded = [];
      commits = [];
      live_count = 1;
    }
  in
  let (_ : cstate) = fresh_state t ~tid:0 ~space:(Space.create ()) in
  {
    Engine.policy_name = name;
    handle = (fun ~tid op -> handle t ~tid op);
    on_engine_op = (fun ~tid op outcome ->
        match op with
        | Op.Tick _ | Op.Malloc _ | Op.Free _ | Op.Output _ ->
          check_quantum t ~tid outcome
        | _ -> outcome);
    on_thread_exit = (fun ~tid -> arrive t ~tid ~action:A_exit);
    (* Quantum barriers need every live thread to arrive; no per-thread
       recovery, so a crash aborts the run. *)
    on_thread_crash = Engine.escalate_crash;
    on_step = (fun () -> maybe_fence t);
    on_finish = (fun () -> on_finish t ());
  }
