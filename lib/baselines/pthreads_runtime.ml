module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Page = Rfdet_mem.Page

let name = "pthreads"

type mutex_state = { mutable owner : int option; queue : int Queue.t }

type cond_state = { cond_waiters : (int * int) Queue.t }

type barrier_state = { parties : int; mutable arrived : int list }

type rw_state = {
  mutable rw_writer : int option;
  mutable rw_readers : int list;
  rw_queue : (int * [ `Rd | `Wr ]) Queue.t;  (* FIFO arrival order *)
}

type sem_state = { mutable sem_permits : int; sem_queue : int Queue.t }

type deque_state = {
  dq_owner : int;
  mutable dq_items : (int * int) list;  (* (value, push seq), oldest first *)
}

type t = {
  engine : Engine.t;
  space : Space.t;  (* one shared space: stores are visible immediately *)
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  rwlocks : (int, rw_state) Hashtbl.t;
  sems : (int, sem_state) Hashtbl.t;
  deques : (int, deque_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;
  mutable next_handle : int;
  mutable push_seq : int;  (* global push order, for oldest-first steals *)
}

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown barrier %d" b)

let rw_state t rw =
  match Hashtbl.find_opt t.rwlocks rw with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown rwlock %d" rw)

let sem_state t s =
  match Hashtbl.find_opt t.sems s with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown semaphore %d" s)

let deque_state t dq =
  match Hashtbl.find_opt t.deques dq with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown deque %d" dq)

(* Admit the FIFO queue head after a full release: a writer alone, or
   the consecutive run of readers at the head as a group. *)
let admit_rw t ~rw ~now =
  let st = rw_state t rw in
  if st.rw_writer = None && st.rw_readers = [] then
    match Queue.peek_opt st.rw_queue with
    | None -> ()
    | Some (_, `Wr) ->
      let w, _ = Queue.pop st.rw_queue in
      st.rw_writer <- Some w;
      Engine.wake t.engine ~tid:w ~value:0 ~not_before:now
    | Some (_, `Rd) ->
      let rec run () =
        match Queue.peek_opt st.rw_queue with
        | Some (r, `Rd) ->
          ignore (Queue.pop st.rw_queue);
          st.rw_readers <- r :: st.rw_readers;
          Engine.wake t.engine ~tid:r ~value:0 ~not_before:now;
          run ()
        | _ -> ()
      in
      run ()

let grant_mutex t ~tid ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  st.owner <- Some tid;
  Engine.wake t.engine ~tid ~value:0 ~not_before:now

let pass_mutex t ~mutex ~now =
  let st = mutex_state t mutex in
  match Queue.take_opt st.queue with
  | None -> ()
  | Some w -> grant_mutex t ~tid:w ~mutex ~now

let handle t ~tid (op : Op.t) : Engine.outcome =
  let cost = Engine.cost t.engine in
  let now () = Engine.clock t.engine tid in
  match op with
  | Op.Load { addr; width } ->
    Engine.advance t.engine tid cost.Cost.load;
    let v =
      match width with
      | Op.W8 -> Space.load_byte t.space addr
      | Op.W64 -> Space.load_int t.space addr
    in
    Done v
  | Op.Store { addr; value; width } ->
    Engine.advance t.engine tid cost.Cost.store;
    (match width with
    | Op.W8 -> Space.store_byte t.space addr value
    | Op.W64 -> Space.store_int t.space addr value);
    Done 0
  | Op.Mutex_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.mutexes h { owner = None; queue = Queue.create () };
    Done h
  | Op.Cond_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
    Done h
  | Op.Barrier_create parties ->
    let h = fresh_handle t in
    Hashtbl.replace t.barriers h { parties; arrived = [] };
    Done h
  | Op.Lock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ ->
      Queue.add tid st.queue;
      Block)
  | Op.Trylock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ -> Done 2 (* busy; pthreads mutexes are never poisoned *))
  | Op.Lock_timed { mutex = m; timeout = _ } ->
    (* No deterministic time base to expire against: the nondeterministic
       baseline treats a timed lock as an infinite-timeout lock, the
       conservative pthread_mutex_timedlock behavior under a patient
       deadline. *)
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ ->
      Queue.add tid st.queue;
      Block)
  | Op.Mutex_heal m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    (* Heal dispatches on the handle kind (handles are unique across
       object kinds); nothing is ever poisoned without containment, so
       this only validates the handle/holder. *)
    (match Hashtbl.find_opt t.mutexes m with
    | Some st -> (
      match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg (Printf.sprintf "pthreads: heal of unheld mutex %d" m))
    | None ->
      if
        not
          (Hashtbl.mem t.rwlocks m || Hashtbl.mem t.sems m
          || Hashtbl.mem t.deques m)
      then invalid_arg (Printf.sprintf "pthreads: heal of unknown handle %d" m));
    Done 0
  | Op.Unlock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "pthreads: unlock of unheld mutex %d" m));
    st.owner <- None;
    pass_mutex t ~mutex:m ~now:(now ());
    Done 0
  | Op.Cond_wait { cond; mutex } ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let mst = mutex_state t mutex in
    (match mst.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg "pthreads: cond_wait without holding the mutex");
    mst.owner <- None;
    pass_mutex t ~mutex ~now:(now ());
    Queue.add (tid, mutex) (cond_state t cond).cond_waiters;
    Block
  | Op.Cond_signal c ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    (match Queue.take_opt (cond_state t c).cond_waiters with
    | None -> ()
    | Some (w, mutex) ->
      let mst = mutex_state t mutex in
      (match mst.owner with
      | None -> grant_mutex t ~tid:w ~mutex ~now:(now ())
      | Some _ -> Queue.add w mst.queue));
    Done 0
  | Op.Cond_broadcast c ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let cst = cond_state t c in
    let rec drain () =
      match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (w, mutex) ->
        let mst = mutex_state t mutex in
        (match mst.owner with
        | None -> grant_mutex t ~tid:w ~mutex ~now:(now ())
        | Some _ -> Queue.add w mst.queue);
        drain ()
    in
    drain ();
    Done 0
  | Op.Barrier_wait b ->
    Engine.advance t.engine tid (cost.Cost.sync_op + cost.Cost.barrier_overhead);
    let st = barrier_state t b in
    st.arrived <- tid :: st.arrived;
    if List.length st.arrived < st.parties then Block
    else begin
      let release_at = now () in
      List.iter
        (fun tid' ->
          if tid' <> tid then
            Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:release_at)
        st.arrived;
      st.arrived <- [];
      Done 0
    end
  | Op.Atomic { addr; rmw } ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let current = Space.load_int t.space addr in
    let prev, next = Op.apply_rmw rmw ~current in
    Space.store_int t.space addr next;
    Done prev
  | Op.Spawn body ->
    Engine.advance t.engine tid cost.Cost.spawn;
    let child = Engine.register_thread t.engine ~body ~start_at:(now ()) in
    Done child
  | Op.Join target ->
    Engine.advance t.engine tid cost.Cost.join;
    if Engine.is_finished t.engine target then Done 0
    else begin
      let existing =
        Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
      in
      Hashtbl.replace t.joiners target (existing @ [ tid ]);
      Block
    end
  | Op.Rwlock_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.rwlocks h
      { rw_writer = None; rw_readers = []; rw_queue = Queue.create () };
    Done h
  | Op.Rdlock rw ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = rw_state t rw in
    if st.rw_writer = None && Queue.is_empty st.rw_queue then begin
      st.rw_readers <- tid :: st.rw_readers;
      Done 0
    end
    else begin
      Queue.add (tid, `Rd) st.rw_queue;
      Block
    end
  | Op.Wrlock rw ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = rw_state t rw in
    if st.rw_writer = None && st.rw_readers = [] && Queue.is_empty st.rw_queue
    then begin
      st.rw_writer <- Some tid;
      Done 0
    end
    else begin
      Queue.add (tid, `Wr) st.rw_queue;
      Block
    end
  | Op.Rwunlock rw ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = rw_state t rw in
    (if st.rw_writer = Some tid then st.rw_writer <- None
     else if List.mem tid st.rw_readers then
       st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers
     else invalid_arg (Printf.sprintf "pthreads: rwunlock of unheld %d" rw));
    admit_rw t ~rw ~now:(now ());
    Done 0
  | Op.Sem_create permits ->
    if permits < 0 then invalid_arg "pthreads: negative initial permits";
    let h = fresh_handle t in
    Hashtbl.replace t.sems h
      { sem_permits = permits; sem_queue = Queue.create () };
    Done h
  | Op.Sem_acquire s ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = sem_state t s in
    if st.sem_permits > 0 then begin
      st.sem_permits <- st.sem_permits - 1;
      Done 0
    end
    else begin
      Queue.add tid st.sem_queue;
      Block
    end
  | Op.Sem_post s ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = sem_state t s in
    (match Queue.take_opt st.sem_queue with
    | Some w -> Engine.wake t.engine ~tid:w ~value:0 ~not_before:(now ())
    | None -> st.sem_permits <- st.sem_permits + 1);
    Done 0
  | Op.Deque_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.deques h { dq_owner = tid; dq_items = [] };
    Done h
  | Op.Deque_push { deque; value } ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = deque_state t deque in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "pthreads: push into deque %d by non-owner" deque);
    let seq = t.push_seq in
    t.push_seq <- seq + 1;
    st.dq_items <- st.dq_items @ [ (value, seq) ];
    Done 0
  | Op.Deque_pop dq ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = deque_state t dq in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "pthreads: pop from deque %d by non-owner" dq);
    (match List.rev st.dq_items with
    | [] -> Done (-1)
    | (v, _) :: rest ->
      st.dq_items <- List.rev rest;
      Done v)
  | Op.Deque_steal own ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    (* Steal the globally oldest item (lowest push sequence number),
       excluding the thief's own deque. *)
    let victim =
      Hashtbl.fold
        (fun h st best ->
          if h = own then best
          else
            match st.dq_items, best with
            | [], _ -> best
            | (_, seq) :: _, Some (_, best_seq) when best_seq <= seq -> best
            | (_, seq) :: _, _ -> Some (h, seq))
        t.deques None
    in
    (match victim with
    | None -> Done (-1)
    | Some (h, _) ->
      let st = deque_state t h in
      (match st.dq_items with
      | (v, _) :: rest ->
        st.dq_items <- rest;
        Done v
      | [] -> assert false))
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    (* handled by the engine *)
    assert false

let on_thread_exit t ~tid =
  match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    let now = Engine.clock t.engine tid in
    List.iter
      (fun joiner ->
        Engine.wake t.engine ~tid:joiner ~value:0 ~not_before:now)
      waiting

let shared_touched_bytes space =
  let count = ref 0 in
  Space.iter_pages space ~f:(fun id ->
      if Rfdet_mem.Layout.is_shared (Page.base_of_id id) then incr count);
  !count * Page.size

let on_finish t () =
  let prof = Engine.profile t.engine in
  prof.shared_bytes <- shared_touched_bytes t.space;
  prof.stack_bytes <- Engine.thread_count t.engine * 8192;
  prof.metadata_peak_bytes <- 0;
  prof.private_copy_bytes <- 0

let make engine : Engine.policy =
  let t =
    {
      engine;
      space = Space.create ();
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      rwlocks = Hashtbl.create 8;
      sems = Hashtbl.create 8;
      deques = Hashtbl.create 8;
      joiners = Hashtbl.create 8;
      next_handle = 1;
      push_seq = 0;
    }
  in
  {
    Engine.policy_name = name;
    handle = (fun ~tid op -> handle t ~tid op);
    on_engine_op = (fun ~tid:_ _ outcome -> outcome);
    on_thread_exit = (fun ~tid -> on_thread_exit t ~tid);
    on_thread_crash = Engine.escalate_crash;
    on_step = (fun () -> ());
    on_finish = (fun () -> on_finish t ());
  }
