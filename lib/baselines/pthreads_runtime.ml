module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Page = Rfdet_mem.Page

let name = "pthreads"

type mutex_state = { mutable owner : int option; queue : int Queue.t }

type cond_state = { cond_waiters : (int * int) Queue.t }

type barrier_state = { parties : int; mutable arrived : int list }

type t = {
  engine : Engine.t;
  space : Space.t;  (* one shared space: stores are visible immediately *)
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;
  mutable next_handle : int;
}

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "pthreads: unknown barrier %d" b)

let grant_mutex t ~tid ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  st.owner <- Some tid;
  Engine.wake t.engine ~tid ~value:0 ~not_before:now

let pass_mutex t ~mutex ~now =
  let st = mutex_state t mutex in
  match Queue.take_opt st.queue with
  | None -> ()
  | Some w -> grant_mutex t ~tid:w ~mutex ~now

let handle t ~tid (op : Op.t) : Engine.outcome =
  let cost = Engine.cost t.engine in
  let now () = Engine.clock t.engine tid in
  match op with
  | Op.Load { addr; width } ->
    Engine.advance t.engine tid cost.Cost.load;
    let v =
      match width with
      | Op.W8 -> Space.load_byte t.space addr
      | Op.W64 -> Space.load_int t.space addr
    in
    Done v
  | Op.Store { addr; value; width } ->
    Engine.advance t.engine tid cost.Cost.store;
    (match width with
    | Op.W8 -> Space.store_byte t.space addr value
    | Op.W64 -> Space.store_int t.space addr value);
    Done 0
  | Op.Mutex_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.mutexes h { owner = None; queue = Queue.create () };
    Done h
  | Op.Cond_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
    Done h
  | Op.Barrier_create parties ->
    let h = fresh_handle t in
    Hashtbl.replace t.barriers h { parties; arrived = [] };
    Done h
  | Op.Lock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ ->
      Queue.add tid st.queue;
      Block)
  | Op.Trylock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ -> Done 2 (* busy; pthreads mutexes are never poisoned *))
  | Op.Lock_timed { mutex = m; timeout = _ } ->
    (* No deterministic time base to expire against: the nondeterministic
       baseline treats a timed lock as an infinite-timeout lock, the
       conservative pthread_mutex_timedlock behavior under a patient
       deadline. *)
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | None ->
      st.owner <- Some tid;
      Done 0
    | Some _ ->
      Queue.add tid st.queue;
      Block)
  | Op.Mutex_heal m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "pthreads: heal of unheld mutex %d" m));
    Done 0 (* nothing to heal: no poisoning without containment *)
  | Op.Unlock m ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let st = mutex_state t m in
    (match st.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "pthreads: unlock of unheld mutex %d" m));
    st.owner <- None;
    pass_mutex t ~mutex:m ~now:(now ());
    Done 0
  | Op.Cond_wait { cond; mutex } ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let mst = mutex_state t mutex in
    (match mst.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg "pthreads: cond_wait without holding the mutex");
    mst.owner <- None;
    pass_mutex t ~mutex ~now:(now ());
    Queue.add (tid, mutex) (cond_state t cond).cond_waiters;
    Block
  | Op.Cond_signal c ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    (match Queue.take_opt (cond_state t c).cond_waiters with
    | None -> ()
    | Some (w, mutex) ->
      let mst = mutex_state t mutex in
      (match mst.owner with
      | None -> grant_mutex t ~tid:w ~mutex ~now:(now ())
      | Some _ -> Queue.add w mst.queue));
    Done 0
  | Op.Cond_broadcast c ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let cst = cond_state t c in
    let rec drain () =
      match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (w, mutex) ->
        let mst = mutex_state t mutex in
        (match mst.owner with
        | None -> grant_mutex t ~tid:w ~mutex ~now:(now ())
        | Some _ -> Queue.add w mst.queue);
        drain ()
    in
    drain ();
    Done 0
  | Op.Barrier_wait b ->
    Engine.advance t.engine tid (cost.Cost.sync_op + cost.Cost.barrier_overhead);
    let st = barrier_state t b in
    st.arrived <- tid :: st.arrived;
    if List.length st.arrived < st.parties then Block
    else begin
      let release_at = now () in
      List.iter
        (fun tid' ->
          if tid' <> tid then
            Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:release_at)
        st.arrived;
      st.arrived <- [];
      Done 0
    end
  | Op.Atomic { addr; rmw } ->
    Engine.advance t.engine tid cost.Cost.sync_op;
    let current = Space.load_int t.space addr in
    let prev, next = Op.apply_rmw rmw ~current in
    Space.store_int t.space addr next;
    Done prev
  | Op.Spawn body ->
    Engine.advance t.engine tid cost.Cost.spawn;
    let child = Engine.register_thread t.engine ~body ~start_at:(now ()) in
    Done child
  | Op.Join target ->
    Engine.advance t.engine tid cost.Cost.join;
    if Engine.is_finished t.engine target then Done 0
    else begin
      let existing =
        Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
      in
      Hashtbl.replace t.joiners target (existing @ [ tid ]);
      Block
    end
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Malloc _
  | Op.Free _ ->
    (* handled by the engine *)
    assert false

let on_thread_exit t ~tid =
  match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    let now = Engine.clock t.engine tid in
    List.iter
      (fun joiner ->
        Engine.wake t.engine ~tid:joiner ~value:0 ~not_before:now)
      waiting

let shared_touched_bytes space =
  let count = ref 0 in
  Space.iter_pages space ~f:(fun id ->
      if Rfdet_mem.Layout.is_shared (Page.base_of_id id) then incr count);
  !count * Page.size

let on_finish t () =
  let prof = Engine.profile t.engine in
  prof.shared_bytes <- shared_touched_bytes t.space;
  prof.stack_bytes <- Engine.thread_count t.engine * 8192;
  prof.metadata_peak_bytes <- 0;
  prof.private_copy_bytes <- 0

let make engine : Engine.policy =
  let t =
    {
      engine;
      space = Space.create ();
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      joiners = Hashtbl.create 8;
      next_handle = 1;
    }
  in
  {
    Engine.policy_name = name;
    handle = (fun ~tid op -> handle t ~tid op);
    on_engine_op = (fun ~tid:_ _ outcome -> outcome);
    on_thread_exit = (fun ~tid -> on_thread_exit t ~tid);
    on_thread_crash = Engine.escalate_crash;
    on_step = (fun () -> ());
    on_finish = (fun () -> on_finish t ());
  }
