module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Page = Rfdet_mem.Page
module Diff = Rfdet_mem.Diff

let name = "dthreads"

(* The synchronization action a thread carries to the fence. *)
type action =
  | A_lock of int
  | A_trylock of int
  | A_unlock of int
  | A_cond_wait of int * int
  | A_cond_signal of int
  | A_cond_broadcast of int
  | A_barrier of int
  | A_spawn of (unit -> unit)
  | A_join of int
  | A_exit
  | A_atomic of int * Op.rmw
  | A_rdlock of int
  | A_wrlock of int
  | A_rwunlock of int
  | A_sem_acquire of int
  | A_sem_post of int
  | A_deque_push of int * int
  | A_deque_pop of int
  | A_deque_steal of int

type dstate = {
  tid : int;
  space : Space.t;  (* private view of shared region *)
  stack : Space.t;
  snapshots : (int, bytes) Hashtbl.t;  (* dirty-page twins, this phase *)
  mutable touch_order : int list;  (* reversed *)
  mutable live : bool;
}

type mutex_state = { mutable owner : int option; queue : int Queue.t }

type cond_state = { cond_waiters : (int * int) Queue.t }

type barrier_state = { parties : int; mutable arrived_tids : int list }

type rw_state = {
  mutable rw_writer : int option;
  mutable rw_readers : int list;
  rw_queue : (int * [ `Rd | `Wr ]) Queue.t;  (* token arrival order *)
}

type sem_state = { mutable sem_permits : int; sem_queue : int Queue.t }

type deque_state = {
  dq_owner : int;
  mutable dq_items : (int * int) list;  (* (value, push seq), oldest first *)
}

type t = {
  engine : Engine.t;
  states : (int, dstate) Hashtbl.t;
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  rwlocks : (int, rw_state) Hashtbl.t;
  sems : (int, sem_state) Hashtbl.t;
  deques : (int, deque_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;
  mutable next_handle : int;
  mutable push_seq : int;
  (* fence state *)
  mutable arrived : (int * action) list;  (* reversed arrival order *)
  mutable excluded : int list;  (* blocked on lock/cond/barrier/join *)
  mutable commits : (int * Diff.t) list;  (* diffs committed at arrival *)
  mutable live_count : int;
      (* dirty-page tracking is off while single-threaded, as in
         DThreads: children inherit memory through fork, so there is
         nothing to commit until a second thread exists *)
}

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let dstate t tid =
  match Hashtbl.find_opt t.states tid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown tid %d" tid)

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown barrier %d" b)

let rw_state t rw =
  match Hashtbl.find_opt t.rwlocks rw with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown rwlock %d" rw)

let sem_state t s =
  match Hashtbl.find_opt t.sems s with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown semaphore %d" s)

let deque_state t dq =
  match Hashtbl.find_opt t.deques dq with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "dthreads: unknown deque %d" dq)

(* --- dirty-page tracking (mprotect style, like DThreads twins) ------- *)

let track_store t st addr ~len =
  let c = Engine.cost t.engine in
  let p = Engine.profile t.engine in
  let cycles = ref 0 in
  let copied = ref false in
  List.iter
    (fun page ->
      if t.live_count > 1 && not (Hashtbl.mem st.snapshots page) then begin
        Hashtbl.replace st.snapshots page (Space.snapshot_page st.space page);
        st.touch_order <- page :: st.touch_order;
        p.page_faults <- p.page_faults + 1;
        p.snapshots <- p.snapshots + 1;
        copied := true;
        cycles := !cycles + c.Cost.page_fault + Cost.snapshot_cost c ~bytes:Page.size
      end)
    (Page.span ~addr ~len);
  if !copied then p.stores_with_copy <- p.stores_with_copy + 1;
  !cycles

(* Compute this phase's diffs for a thread (its commit payload). *)
let collect_diffs t st =
  let c = Engine.cost t.engine in
  let p = Engine.profile t.engine in
  let o = Engine.obs t.engine in
  let cycles = ref 0 in
  let pages = List.rev st.touch_order in
  let mods =
    List.concat_map
      (fun page ->
        let snapshot = Hashtbl.find st.snapshots page in
        let current = Space.page_bytes st.space page in
        let diff_cycles = Cost.diff_cost c ~bytes:Page.size in
        cycles := !cycles + diff_cycles;
        p.diff_bytes_scanned <- p.diff_bytes_scanned + Page.size;
        let d = Diff.diff_page ~page_id:page ~snapshot ~current in
        if Rfdet_obs.Sink.enabled o then
          Rfdet_obs.Sink.emit o ~tid:st.tid
            ~time:(Engine.clock t.engine st.tid)
            (Rfdet_obs.Trace.Diff
               {
                 page;
                 bytes = Diff.byte_count d;
                 runs = List.length d;
                 cycles = diff_cycles;
               });
        d)
      pages
  in
  Hashtbl.reset st.snapshots;
  st.touch_order <- [];
  (mods, !cycles)

(* Per-page byte totals of a commit payload, page id ascending. *)
let pages_of_mods mods =
  let by_page = Hashtbl.create 8 in
  List.iter
    (fun (r : Diff.run) ->
      let page = Page.id_of_addr r.addr in
      let existing = Option.value (Hashtbl.find_opt by_page page) ~default:0 in
      Hashtbl.replace by_page page (existing + String.length r.data))
    mods;
  Hashtbl.fold (fun p b acc -> (p, b) :: acc) by_page [] |> List.sort compare

(* --- fence ----------------------------------------------------------- *)

let population t =
  Hashtbl.fold
    (fun tid st acc ->
      if st.live && not (List.mem tid t.excluded) then tid :: acc else acc)
    t.states []

let arrived_tids t = List.map fst t.arrived

let exclude t tid = t.excluded <- tid :: t.excluded

let unexclude t tid = t.excluded <- List.filter (fun x -> x <> tid) t.excluded

(* Grant [mutex] to the queue head, waking it at [at]. *)
let pass_mutex t ~mutex ~at =
  let st = mutex_state t mutex in
  match Queue.take_opt st.queue with
  | None -> ()
  | Some w ->
    st.owner <- Some w;
    unexclude t w;
    Engine.wake t.engine ~tid:w ~value:0 ~not_before:at

(* Admit the queue head after a full rwlock release: a writer alone, or
   the consecutive run of readers at the head as a group. *)
let admit_rw t ~rw ~at =
  let st = rw_state t rw in
  if st.rw_writer = None && st.rw_readers = [] then
    match Queue.peek_opt st.rw_queue with
    | None -> ()
    | Some (_, `Wr) ->
      let w, _ = Queue.pop st.rw_queue in
      st.rw_writer <- Some w;
      unexclude t w;
      Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
    | Some (_, `Rd) ->
      let rec run () =
        match Queue.peek_opt st.rw_queue with
        | Some (r, `Rd) ->
          ignore (Queue.pop st.rw_queue);
          st.rw_readers <- r :: st.rw_readers;
          unexclude t r;
          Engine.wake t.engine ~tid:r ~value:0 ~not_before:at;
          run ()
        | _ -> ()
      in
      run ()

(* Execute one thread's synchronization action during the serial phase.
   [at] is the simulated time at the end of this thread's token slot. *)
let perform_action t ~tid ~action ~at =
  let resume value = Engine.wake t.engine ~tid ~value ~not_before:at in
  match action with
  | A_exit -> ()
  | A_atomic (addr, rmw) ->
    (* read the committed value from this thread's (post-commit) view,
       write the result through to every live space: atomics are global
       immediately, like a one-word commit *)
    let st = dstate t tid in
    let current = Space.load_int st.space addr in
    let prev, next = Op.apply_rmw rmw ~current in
    Hashtbl.iter
      (fun _ (st' : dstate) ->
        if st'.live then Space.store_int st'.space addr next)
      t.states;
    resume prev
  | A_lock m -> begin
    let st = mutex_state t m in
    match st.owner with
    | None ->
      st.owner <- Some tid;
      resume 0
    | Some _ ->
      Queue.add tid st.queue;
      exclude t tid
  end
  | A_trylock m -> begin
    let st = mutex_state t m in
    match st.owner with
    | None ->
      st.owner <- Some tid;
      resume 0
    | Some _ -> resume 2 (* busy; no queueing *)
  end
  | A_unlock m ->
    let st = mutex_state t m in
    (match st.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "dthreads: unlock of unheld mutex %d" m));
    st.owner <- None;
    pass_mutex t ~mutex:m ~at;
    resume 0
  | A_cond_wait (c, m) ->
    let mst = mutex_state t m in
    (match mst.owner with
    | Some owner when owner = tid -> ()
    | Some _ | None -> invalid_arg "dthreads: cond_wait without the mutex");
    mst.owner <- None;
    pass_mutex t ~mutex:m ~at;
    Queue.add (tid, m) (cond_state t c).cond_waiters;
    exclude t tid
  | A_cond_signal c -> begin
    (match Queue.take_opt (cond_state t c).cond_waiters with
    | None -> ()
    | Some (w, m) ->
      let mst = mutex_state t m in
      (match mst.owner with
      | None ->
        mst.owner <- Some w;
        unexclude t w;
        Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
      | Some _ -> Queue.add w mst.queue));
    resume 0
  end
  | A_cond_broadcast c ->
    let cst = cond_state t c in
    let rec drain () =
      match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (w, m) ->
        let mst = mutex_state t m in
        (match mst.owner with
        | None ->
          mst.owner <- Some w;
          unexclude t w;
          Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
        | Some _ -> Queue.add w mst.queue);
        drain ()
    in
    drain ();
    resume 0
  | A_barrier b ->
    let st = barrier_state t b in
    st.arrived_tids <- tid :: st.arrived_tids;
    if List.length st.arrived_tids < st.parties then exclude t tid
    else begin
      List.iter
        (fun tid' ->
          if tid' <> tid then begin
            unexclude t tid';
            Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:at
          end)
        st.arrived_tids;
      st.arrived_tids <- [];
      resume 0
    end
  | A_spawn body ->
    let child = Engine.register_thread t.engine ~body ~start_at:at in
    let parent = dstate t tid in
    let child_state =
      {
        tid = child;
        space = Space.fork parent.space;
        stack = Space.create ();
        snapshots = Hashtbl.create 16;
        touch_order = [];
        live = true;
      }
    in
    Hashtbl.replace t.states child child_state;
    t.live_count <- t.live_count + 1;
    resume child
  | A_join target ->
    if not (dstate t target).live then resume 0
    else begin
      let existing =
        Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
      in
      Hashtbl.replace t.joiners target (existing @ [ tid ]);
      exclude t tid
    end
  | A_rdlock rw ->
    let st = rw_state t rw in
    if st.rw_writer = None && Queue.is_empty st.rw_queue then begin
      st.rw_readers <- tid :: st.rw_readers;
      resume 0
    end
    else begin
      Queue.add (tid, `Rd) st.rw_queue;
      exclude t tid
    end
  | A_wrlock rw ->
    let st = rw_state t rw in
    if st.rw_writer = None && st.rw_readers = [] && Queue.is_empty st.rw_queue
    then begin
      st.rw_writer <- Some tid;
      resume 0
    end
    else begin
      Queue.add (tid, `Wr) st.rw_queue;
      exclude t tid
    end
  | A_rwunlock rw ->
    let st = rw_state t rw in
    (if st.rw_writer = Some tid then st.rw_writer <- None
     else if List.mem tid st.rw_readers then
       st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers
     else invalid_arg (Printf.sprintf "dthreads: rwunlock of unheld %d" rw));
    admit_rw t ~rw ~at;
    resume 0
  | A_sem_acquire s ->
    let st = sem_state t s in
    if st.sem_permits > 0 then begin
      st.sem_permits <- st.sem_permits - 1;
      resume 0
    end
    else begin
      Queue.add tid st.sem_queue;
      exclude t tid
    end
  | A_sem_post s ->
    let st = sem_state t s in
    (match Queue.take_opt st.sem_queue with
    | Some w ->
      unexclude t w;
      Engine.wake t.engine ~tid:w ~value:0 ~not_before:at
    | None -> st.sem_permits <- st.sem_permits + 1);
    resume 0
  | A_deque_push (dq, value) ->
    let st = deque_state t dq in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "dthreads: push into deque %d by non-owner" dq);
    let seq = t.push_seq in
    t.push_seq <- seq + 1;
    st.dq_items <- st.dq_items @ [ (value, seq) ];
    resume 0
  | A_deque_pop dq ->
    let st = deque_state t dq in
    if st.dq_owner <> tid then
      invalid_arg (Printf.sprintf "dthreads: pop from deque %d by non-owner" dq);
    (match List.rev st.dq_items with
    | [] -> resume (-1)
    | (v, _) :: rest ->
      st.dq_items <- List.rev rest;
      resume v)
  | A_deque_steal own ->
    (* the globally oldest item (lowest push seq), excluding the thief's
       own deque *)
    let victim =
      Hashtbl.fold
        (fun h st best ->
          if h = own then best
          else
            match st.dq_items, best with
            | [], _ -> best
            | (_, seq) :: _, Some (_, best_seq) when best_seq <= seq -> best
            | (_, seq) :: _, _ -> Some (h, seq))
        t.deques None
    in
    (match victim with
    | None -> resume (-1)
    | Some (h, _) ->
      let st = deque_state t h in
      (match st.dq_items with
      | (v, _) :: rest ->
        st.dq_items <- rest;
        resume v
      | [] -> assert false))

(* Run the serial phase: token in ascending tid order; each slot commits
   the thread's diffs into every other live space and performs its
   action. *)
let run_serial t =
  let c = Engine.cost t.engine in
  let p = Engine.profile t.engine in
  let o = Engine.obs t.engine in
  p.barrier_stalls <- p.barrier_stalls + 1;
  let fence_time =
    List.fold_left
      (fun acc (tid, _) -> max acc (Engine.clock t.engine tid))
      0 t.arrived
  in
  let order = List.sort compare (List.rev t.arrived) in
  let commits = t.commits in
  t.arrived <- [];
  t.commits <- [];
  let clock = ref (fence_time + c.Cost.barrier_overhead) in
  (* Every arrival stalls at the global fence from its own clock until
     the serial phase opens — the cost RFDet's barrier-free design
     removes, made visible in the trace. *)
  if Rfdet_obs.Sink.enabled o then
    List.iter
      (fun (tid, _) ->
        let arrived_at = Engine.clock t.engine tid in
        Rfdet_obs.Sink.emit o ~tid ~time:arrived_at
          (Rfdet_obs.Trace.Barrier_stall
             { barrier = -1; cycles = max 0 (!clock - arrived_at) }))
      order;
  List.iter
    (fun (tid, action) ->
      clock := !clock + c.Cost.commit_token;
      (* commit this thread's diffs into all other live spaces *)
      (match List.assoc_opt tid commits with
      | None | Some [] -> ()
      | Some mods ->
        (* The diff is patched into the shared global store once; the
           other threads pick the committed pages up by copy-on-write
           remapping, which costs a near-constant amount per thread.
           (Functionally we apply to each private space — the simulated
           machine has no shared mapping — but the committed bytes are
           charged once, as in DThreads.) *)
        let bytes = Diff.byte_count mods in
        let peers = ref 0 in
        Hashtbl.iter
          (fun tid' (st' : dstate) ->
            if tid' <> tid && st'.live then begin
              Diff.apply st'.space mods;
              incr peers
            end)
          t.states;
        p.bytes_propagated <- p.bytes_propagated + bytes;
        (* committing is a streaming patch of whole twin pages into the
           shared mapping — cheaper per byte than RFDet's scattered
           byte-run application *)
        let commit_cycles =
          (bytes * max 1 (c.Cost.apply_byte / 4)) + (!peers * 80)
        in
        if Rfdet_obs.Sink.enabled o then begin
          let pages = pages_of_mods mods in
          List.iter
            (fun (page, b) ->
              Rfdet_obs.Sink.emit o ~tid ~time:!clock
                (Rfdet_obs.Trace.Prop_page { page; bytes = b }))
            pages;
          Rfdet_obs.Sink.emit o ~tid ~time:!clock
            (Rfdet_obs.Trace.Propagate
               {
                 slice = -1;
                 src = tid;
                 pages = List.length pages;
                 bytes;
                 cycles = commit_cycles;
               })
        end;
        clock := !clock + commit_cycles);
      (* exits were already finalized by the engine; everything else
         resumes (or re-blocks) at this slot's end *)
      (match action with
      | A_exit ->
        let st = dstate t tid in
        st.live <- false;
        t.live_count <- t.live_count - 1;
        (match Hashtbl.find_opt t.joiners tid with
        | None -> ()
        | Some waiting ->
          Hashtbl.remove t.joiners tid;
          List.iter
            (fun joiner ->
              unexclude t joiner;
              Engine.wake t.engine ~tid:joiner ~value:0 ~not_before:!clock)
            waiting)
      | _ -> perform_action t ~tid ~action ~at:!clock))
    order

(* A fence fires when every thread in the population has arrived. *)
let maybe_fence t =
  let pop = List.sort compare (population t) in
  let arr = List.sort compare (arrived_tids t) in
  if pop <> [] && pop = arr then run_serial t

(* A thread reaches its next synchronization point. *)
let arrive t ~tid ~action =
  let st = dstate t tid in
  let mods, cycles = collect_diffs t st in
  let c = Engine.cost t.engine in
  Engine.advance t.engine tid (cycles + c.Cost.sync_op);
  t.arrived <- (tid, action) :: t.arrived;
  t.commits <- (tid, mods) :: t.commits

let handle t ~tid (op : Op.t) : Engine.outcome =
  let c = Engine.cost t.engine in
  let st = dstate t tid in
  match op with
  | Op.Load { addr; width } ->
    let space = if Layout.is_stack addr then st.stack else st.space in
    Engine.advance t.engine tid c.Cost.load;
    let v =
      match width with
      | Op.W8 -> Space.load_byte space addr
      | Op.W64 -> Space.load_int space addr
    in
    Done v
  | Op.Store { addr; value; width } ->
    let space, extra =
      if Layout.is_stack addr then (st.stack, 0)
      else
        (st.space,
         track_store t st addr ~len:(match width with Op.W8 -> 1 | Op.W64 -> 8))
    in
    Engine.advance t.engine tid (c.Cost.store + extra);
    (match width with
    | Op.W8 -> Space.store_byte space addr value
    | Op.W64 -> Space.store_int space addr value);
    Done 0
  | Op.Mutex_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.mutexes h { owner = None; queue = Queue.create () };
    Done h
  | Op.Cond_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
    Done h
  | Op.Barrier_create parties ->
    let h = fresh_handle t in
    Hashtbl.replace t.barriers h { parties; arrived_tids = [] };
    Done h
  | Op.Lock m ->
    arrive t ~tid ~action:(A_lock m);
    Block
  | Op.Trylock m ->
    arrive t ~tid ~action:(A_trylock m);
    Block
  | Op.Lock_timed { mutex; timeout = _ } ->
    (* Fence arrival order is the only time base here; a timed lock
       behaves as an infinite-timeout lock, like the pthreads baseline. *)
    arrive t ~tid ~action:(A_lock mutex);
    Block
  | Op.Mutex_heal m ->
    (* heal dispatches on the handle's kind; nothing is ever poisoned
       under this runtime (crashes abort the run), so just validate *)
    (match Hashtbl.find_opt t.mutexes m with
    | Some mst -> (
      match mst.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg (Printf.sprintf "dthreads: heal of unheld mutex %d" m))
    | None ->
      if
        not
          (Hashtbl.mem t.rwlocks m || Hashtbl.mem t.sems m
          || Hashtbl.mem t.deques m)
      then invalid_arg (Printf.sprintf "dthreads: heal of unknown handle %d" m));
    Done 0
  | Op.Unlock m ->
    arrive t ~tid ~action:(A_unlock m);
    Block
  | Op.Cond_wait { cond; mutex } ->
    arrive t ~tid ~action:(A_cond_wait (cond, mutex));
    Block
  | Op.Cond_signal cond ->
    arrive t ~tid ~action:(A_cond_signal cond);
    Block
  | Op.Cond_broadcast cond ->
    arrive t ~tid ~action:(A_cond_broadcast cond);
    Block
  | Op.Barrier_wait b ->
    arrive t ~tid ~action:(A_barrier b);
    Block
  | Op.Atomic { addr; rmw } ->
    arrive t ~tid ~action:(A_atomic (addr, rmw));
    Block
  | Op.Spawn body ->
    arrive t ~tid ~action:(A_spawn body);
    Block
  | Op.Join target ->
    arrive t ~tid ~action:(A_join target);
    Block
  | Op.Rwlock_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.rwlocks h
      { rw_writer = None; rw_readers = []; rw_queue = Queue.create () };
    Done h
  | Op.Rdlock rw ->
    arrive t ~tid ~action:(A_rdlock rw);
    Block
  | Op.Wrlock rw ->
    arrive t ~tid ~action:(A_wrlock rw);
    Block
  | Op.Rwunlock rw ->
    arrive t ~tid ~action:(A_rwunlock rw);
    Block
  | Op.Sem_create permits ->
    if permits < 0 then invalid_arg "dthreads: negative initial permits";
    let h = fresh_handle t in
    Hashtbl.replace t.sems h
      { sem_permits = permits; sem_queue = Queue.create () };
    Done h
  | Op.Sem_acquire s ->
    arrive t ~tid ~action:(A_sem_acquire s);
    Block
  | Op.Sem_post s ->
    arrive t ~tid ~action:(A_sem_post s);
    Block
  | Op.Deque_create ->
    let h = fresh_handle t in
    Hashtbl.replace t.deques h { dq_owner = tid; dq_items = [] };
    Done h
  | Op.Deque_push { deque; value } ->
    arrive t ~tid ~action:(A_deque_push (deque, value));
    Block
  | Op.Deque_pop dq ->
    arrive t ~tid ~action:(A_deque_pop dq);
    Block
  | Op.Deque_steal own ->
    arrive t ~tid ~action:(A_deque_steal own);
    Block
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let on_thread_exit t ~tid = arrive t ~tid ~action:A_exit

let on_finish t () =
  let p = Engine.profile t.engine in
  let pages = Hashtbl.create 256 in
  let dirty_copies = ref 0 in
  Hashtbl.iter
    (fun _ (st : dstate) ->
      dirty_copies := !dirty_copies + Space.owned_pages st.space;
      Space.iter_pages st.space ~f:(fun id ->
          if Layout.is_shared (Page.base_of_id id) then
            Hashtbl.replace pages id ()))
    t.states;
  p.shared_bytes <- Hashtbl.length pages * Page.size;
  p.private_copy_bytes <- !dirty_copies * Page.size;
  let stacks = ref 0 in
  Hashtbl.iter
    (fun _ (st : dstate) ->
      stacks := !stacks + 8192 + (Space.mapped_pages st.stack * Page.size))
    t.states;
  p.stack_bytes <- !stacks;
  p.metadata_peak_bytes <- 0

let make engine : Engine.policy =
  let t =
    {
      engine;
      states = Hashtbl.create 16;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      rwlocks = Hashtbl.create 8;
      sems = Hashtbl.create 8;
      deques = Hashtbl.create 8;
      joiners = Hashtbl.create 8;
      next_handle = 1;
      push_seq = 0;
      arrived = [];
      excluded = [];
      commits = [];
      live_count = 1;
    }
  in
  Hashtbl.replace t.states 0
    {
      tid = 0;
      space = Space.create ();
      stack = Space.create ();
      snapshots = Hashtbl.create 16;
      touch_order = [];
      live = true;
    };
  {
    Engine.policy_name = name;
    handle = (fun ~tid op -> handle t ~tid op);
    on_engine_op = (fun ~tid:_ _ outcome -> outcome);
    on_thread_exit = (fun ~tid -> on_thread_exit t ~tid);
    (* DThreads' fence protocol has no per-thread recovery path: a
       crashed party would stall every survivor at the next fence, so a
       crash aborts the run (gracefully, as Thread_failure). *)
    on_thread_crash = Engine.escalate_crash;
    on_step = (fun () -> maybe_fence t);
    on_finish = (fun () -> on_finish t ());
  }
