(** Happens-before data-race detection.

    The paper's position (after Boehm): all data races are bugs, and
    strong determinism exists to make the severe ones reproducible.  This
    module closes the loop: it runs a program under a Kendo-scheduled
    policy that tracks the happens-before relation with vector clocks and
    FastTrack-style access epochs, and reports every racy address.

    Synchronization clocks follow exactly the RFDet discipline (tick at
    every synchronization operation, join release stamps at acquires,
    barrier joins, fork/join edges, atomics as acquire+release), so a
    program the detector calls race-free is precisely a program whose
    RFDet execution is sequentially consistent (paper Section 3.3).

    Accesses are tracked at the granularity the program uses (the
    accessed address), with 64-bit accesses reported by their base
    address. *)

type kind = Write_write | Read_write | Write_read

type race = {
  addr : int;
  kind : kind;
  prior_tid : int;  (** the earlier, unordered access *)
  racing_tid : int;  (** the access that exposed the race *)
}

val kind_to_string : kind -> string

type report = {
  races : race list;  (** deduplicated by (addr, kind), detection order *)
  racy_addresses : int;
  accesses_checked : int;
}

val pp_report : Format.formatter -> report -> unit

val canonical_lines : report -> string list
(** One line per race, sorted by (addr, kind, tids) — a detection-order
    independent rendering, so two reports describe the same race set iff
    their canonical lines are equal. *)

val digest : report -> string
(** Compact fingerprint ["<addresses>:<md5hex>"] of the {e racy-address
    set}.  The pair list is schedule-sensitive — the per-address access
    history (last write + reads since) can mask a pair one interleaving
    exposes and another hides — but whether an address races at all is
    a pure function of (workload, threads, scale, input seed), because
    synchronization order under the arbiter's (icount, tid) stamps is
    schedule-invariant.  The digest therefore pins exactly the
    invariant part, which is what the record/replay corpus replays
    ([rfdet races --journal --shrink]). *)

(** [make engine] returns the detector policy and a function producing
    the report once the run finishes. *)
val make : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy * (unit -> report)

(** [check ?threads ?scale ?input_seed workload_main] — convenience:
    run a program to completion under the detector and return the
    report. *)
val check : main:(unit -> unit) -> report
