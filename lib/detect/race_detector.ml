module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Sync = Rfdet_kendo.Sync
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Vclock = Rfdet_util.Vclock

type kind = Write_write | Read_write | Write_read

type race = { addr : int; kind : kind; prior_tid : int; racing_tid : int }

let kind_to_string = function
  | Write_write -> "write-write"
  | Read_write -> "read-write"
  | Write_read -> "write-read"

type report = {
  races : race list;
  racy_addresses : int;
  accesses_checked : int;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d racy address(es), %d race pair(s), %d accesses checked"
    r.racy_addresses (List.length r.races) r.accesses_checked;
  List.iteri
    (fun i race ->
      if i < 16 then
        Format.fprintf ppf "@ %#x: %s (tid %d vs tid %d)" race.addr
          (kind_to_string race.kind) race.prior_tid race.racing_tid)
    r.races;
  Format.fprintf ppf "@]"

let clock_width = 64

(* FastTrack-style access metadata: epochs (tid, count) for writes, an
   epoch per reader tid for reads.  Epoch (t, c) happens-before thread
   T's current clock iff clock(T)[t] >= c. *)
type access = {
  mutable write : (int * int) option;
  reads : (int, int) Hashtbl.t;
}

type tclock = { tid : int; time : Vclock.t }

type t = {
  engine : Engine.t;
  space : Space.t;  (* shared memory: detection needs no isolation *)
  clocks : (int, tclock) Hashtbl.t;
  accesses : (int, access) Hashtbl.t;  (* keyed by accessed address *)
  last_release : (Sync.obj, Vclock.t) Hashtbl.t;
  final : (int, Vclock.t) Hashtbl.t;  (* exited threads *)
  mutable races_rev : race list;
  seen_races : (int * kind, unit) Hashtbl.t;
  mutable checked : int;
  mutable sync : Sync.t option;
}

let sync_exn t = match t.sync with Some s -> s | None -> assert false

let clock t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "race_detector: unknown tid %d" tid)

let access_of t addr =
  match Hashtbl.find_opt t.accesses addr with
  | Some a -> a
  | None ->
    let a = { write = None; reads = Hashtbl.create 2 } in
    Hashtbl.replace t.accesses addr a;
    a

let report_race t ~addr ~kind ~prior_tid ~racing_tid =
  if not (Hashtbl.mem t.seen_races (addr, kind)) then begin
    Hashtbl.replace t.seen_races (addr, kind) ();
    t.races_rev <- { addr; kind; prior_tid; racing_tid } :: t.races_rev
  end

let epoch_hb (etid, ecount) time = Vclock.get time etid >= ecount

let on_read t ~tid ~addr =
  if Layout.is_shared addr then begin
    t.checked <- t.checked + 1;
    let tc = clock t tid in
    let a = access_of t addr in
    (match a.write with
    | Some ((wtid, _) as epoch) when wtid <> tid && not (epoch_hb epoch tc.time)
      ->
      report_race t ~addr ~kind:Write_read ~prior_tid:wtid ~racing_tid:tid
    | Some _ | None -> ());
    Hashtbl.replace a.reads tid (Vclock.get tc.time tid)
  end

let on_write t ~tid ~addr =
  if Layout.is_shared addr then begin
    t.checked <- t.checked + 1;
    let tc = clock t tid in
    let a = access_of t addr in
    (match a.write with
    | Some ((wtid, _) as epoch) when wtid <> tid && not (epoch_hb epoch tc.time)
      ->
      report_race t ~addr ~kind:Write_write ~prior_tid:wtid ~racing_tid:tid
    | Some _ | None -> ());
    Hashtbl.iter
      (fun rtid rcount ->
        if rtid <> tid && not (epoch_hb (rtid, rcount) tc.time) then
          report_race t ~addr ~kind:Read_write ~prior_tid:rtid ~racing_tid:tid)
      a.reads;
    a.write <- Some (tid, Vclock.get tc.time tid);
    Hashtbl.reset a.reads
  end

(* --- the RFDet clock discipline over the Kendo sync layer ------------- *)

let do_release t ~tid ~obj =
  let tc = clock t tid in
  let stamp = Vclock.copy tc.time in
  ignore (Vclock.tick tc.time tid);
  Hashtbl.replace t.last_release obj stamp

let do_acquire t ~tid ~obj =
  let tc = clock t tid in
  ignore (Vclock.tick tc.time tid);
  match Hashtbl.find_opt t.last_release obj with
  | Some stamp -> Vclock.join tc.time stamp
  | None -> ()

let do_barrier t ~tids =
  let joint = Vclock.create clock_width in
  List.iter (fun tid -> Vclock.join joint (clock t tid).time) tids;
  List.iter
    (fun tid ->
      let tc = clock t tid in
      Vclock.join tc.time joint;
      ignore (Vclock.tick tc.time tid))
    tids

let do_spawned t ~parent ~child =
  let pc = clock t parent in
  let stamp = Vclock.copy pc.time in
  ignore (Vclock.tick pc.time parent);
  let time = Vclock.copy stamp in
  ignore (Vclock.tick time child);
  Hashtbl.replace t.clocks child { tid = child; time }

let do_exited t ~tid =
  let tc = clock t tid in
  Hashtbl.replace t.final tid (Vclock.copy tc.time);
  ignore (Vclock.tick tc.time tid)

let do_joined t ~tid ~target =
  let tc = clock t tid in
  ignore (Vclock.tick tc.time tid);
  match Hashtbl.find_opt t.final target with
  | Some f -> Vclock.join tc.time f
  | None -> invalid_arg "race_detector: join before exit"

let handle t ~tid (op : Op.t) : Engine.outcome =
  let sync = sync_exn t in
  let c = Engine.cost t.engine in
  match op with
  | Op.Load { addr; width } ->
    Engine.advance t.engine tid c.Cost.load;
    on_read t ~tid ~addr;
    let v =
      match width with
      | Op.W8 -> Space.load_byte t.space addr
      | Op.W64 -> Space.load_int t.space addr
    in
    Done v
  | Op.Store { addr; value; width } ->
    Engine.advance t.engine tid c.Cost.store;
    on_write t ~tid ~addr;
    (match width with
    | Op.W8 -> Space.store_byte t.space addr value
    | Op.W64 -> Space.store_int t.space addr value);
    Done 0
  | Op.Atomic { addr; rmw } ->
    (* synchronization, never a race; acquire + release on the address *)
    Sync.rmw sync ~tid ~action:(fun ~now:_ ->
        let obj = Sync.Atomic_obj addr in
        do_acquire t ~tid ~obj;
        let current = Space.load_int t.space addr in
        let prev, next = Op.apply_rmw rmw ~current in
        Space.store_int t.space addr next;
        do_release t ~tid ~obj;
        (prev, 0))
  | Op.Mutex_create -> Sync.mutex_create sync ~tid
  | Op.Cond_create -> Sync.cond_create sync ~tid
  | Op.Barrier_create parties -> Sync.barrier_create sync ~tid ~parties
  | Op.Lock m -> Sync.lock sync ~tid ~mutex:m
  | Op.Trylock m -> Sync.trylock sync ~tid ~mutex:m
  | Op.Lock_timed { mutex; timeout } -> Sync.lock_timed sync ~tid ~mutex ~timeout
  | Op.Mutex_heal m -> Sync.mutex_heal sync ~tid ~mutex:m
  | Op.Unlock m -> Sync.unlock sync ~tid ~mutex:m
  | Op.Cond_wait { cond; mutex } -> Sync.cond_wait sync ~tid ~cond ~mutex
  | Op.Cond_signal cond -> Sync.cond_signal sync ~tid ~cond
  | Op.Cond_broadcast cond -> Sync.cond_broadcast sync ~tid ~cond
  | Op.Barrier_wait b -> Sync.barrier_wait sync ~tid ~barrier:b
  | Op.Spawn body -> Sync.spawn sync ~tid ~body
  | Op.Join target -> Sync.join sync ~tid ~target
  | Op.Rwlock_create -> Sync.rwlock_create sync ~tid
  | Op.Rdlock rw -> Sync.rdlock sync ~tid ~rwlock:rw
  | Op.Wrlock rw -> Sync.wrlock sync ~tid ~rwlock:rw
  | Op.Rwunlock rw -> Sync.rwunlock sync ~tid ~rwlock:rw
  | Op.Sem_create permits -> Sync.sem_create sync ~tid ~permits
  | Op.Sem_acquire s -> Sync.sem_acquire sync ~tid ~sem:s
  | Op.Sem_post s -> Sync.sem_post sync ~tid ~sem:s
  | Op.Deque_create -> Sync.deque_create sync ~tid
  | Op.Deque_push { deque; value } -> Sync.deque_push sync ~tid ~deque ~value
  | Op.Deque_pop dq -> Sync.deque_pop sync ~tid ~deque:dq
  | Op.Deque_steal own -> Sync.deque_steal sync ~tid ~own
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let make engine =
  let t =
    {
      engine;
      space = Space.create ();
      clocks = Hashtbl.create 8;
      accesses = Hashtbl.create 1024;
      last_release = Hashtbl.create 32;
      final = Hashtbl.create 8;
      races_rev = [];
      seen_races = Hashtbl.create 16;
      checked = 0;
      sync = None;
    }
  in
  Hashtbl.replace t.clocks 0 { tid = 0; time = Vclock.create clock_width };
  let hooks =
    {
      Sync.acquire = (fun ~tid ~obj ~now:_ -> do_acquire t ~tid ~obj; 0);
      release = (fun ~tid ~obj ~now:_ -> do_release t ~tid ~obj; 0);
      barrier_all = (fun ~tids ~barrier:_ ~now:_ -> do_barrier t ~tids; 0);
      spawned = (fun ~parent ~child ~now:_ -> do_spawned t ~parent ~child);
      exited = (fun ~tid -> do_exited t ~tid);
      joined = (fun ~tid ~target ~now:_ -> do_joined t ~tid ~target; 0);
    }
  in
  let sync = Sync.create engine hooks in
  t.sync <- Some sync;
  let policy =
    {
      Engine.policy_name = "race-detector";
      handle = (fun ~tid op -> handle t ~tid op);
      on_engine_op = (fun ~tid:_ _ outcome -> outcome);
      on_thread_exit = (fun ~tid -> Sync.on_thread_exit sync ~tid);
      on_thread_crash = Engine.escalate_crash;
      on_step = (fun () -> Sync.poll sync);
      on_finish = (fun () -> ());
    }
  in
  let report () =
    {
      races = List.rev t.races_rev;
      racy_addresses =
        List.length
          (List.sort_uniq compare (List.map (fun r -> r.addr) t.races_rev));
      accesses_checked = t.checked;
    }
  in
  (policy, report)

let canonical_lines report =
  report.races
  |> List.map (fun r ->
         Printf.sprintf "addr=0x%x kind=%s prior=%d racing=%d" r.addr
           (kind_to_string r.kind) r.prior_tid r.racing_tid)
  |> List.sort String.compare

(* The digest deliberately covers only the racy-address set.  Which
   *pairs* get witnessed depends on the interleaving (the per-address
   access history keeps the last write plus reads-since, so an
   intervening ordered access can mask a pair one schedule exposes and
   another hides), but whether an address races at all does not. *)
let digest report =
  let addrs =
    report.races
    |> List.map (fun r -> r.addr)
    |> List.sort_uniq compare
    |> List.map (Printf.sprintf "0x%x")
  in
  Printf.sprintf "%d:%s" (List.length addrs)
    (Digest.to_hex (Digest.string (String.concat "\n" addrs)))

let check ~main =
  let report = ref None in
  let (_ : Engine.result) =
    Engine.run
      (fun engine ->
        let policy, rep = make engine in
        report := Some rep;
        policy)
      ~main
  in
  match !report with Some rep -> rep () | None -> assert false
