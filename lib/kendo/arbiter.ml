module Engine = Rfdet_sim.Engine

type pending_req = {
  stamp : int * int;  (* (icount at request, tid) *)
  asked_at : int;  (* simulated clock when filed, for stats *)
  grant : now:int -> unit;
}

type state = Active | Inactive | Pending of pending_req

(* A deadline filed alongside the turn requests: fires (at most once)
   when its stamp becomes grantable, i.e. when every other active thread
   is deterministically past the deadline instruction count.  Backs
   [lock_timed]: the expiry point depends only on instruction counts, so
   whether the lock or the timeout wins is jitter-independent. *)
type timer = {
  tm_stamp : int * int;  (* (deadline icount, tid) *)
  tm_fire : now:int -> unit;
}

type t = {
  engine : Engine.t;
  states : (int, state) Hashtbl.t;
  timers : (int, timer) Hashtbl.t;  (* at most one per waiting tid *)
}

let create engine =
  { engine; states = Hashtbl.create 16; timers = Hashtbl.create 4 }

let thread_started t ~tid = Hashtbl.replace t.states tid Active

let thread_finished t ~tid =
  Hashtbl.remove t.states tid;
  Hashtbl.remove t.timers tid

let add_timer t ~tid ~deadline ~fire =
  Hashtbl.replace t.timers tid { tm_stamp = (deadline, tid); tm_fire = fire }

let cancel_timer t ~tid = Hashtbl.remove t.timers tid

let set_inactive t ~tid = Hashtbl.replace t.states tid Inactive

let set_active t ~tid = Hashtbl.replace t.states tid Active

let is_active t ~tid =
  match Hashtbl.find_opt t.states tid with
  | Some Active -> true
  | Some (Inactive | Pending _) | None -> false

let request t ~tid ~grant =
  (match Hashtbl.find_opt t.states tid with
  | Some Active -> ()
  | Some (Pending _) -> invalid_arg "Arbiter.request: already pending"
  | Some Inactive | None -> invalid_arg "Arbiter.request: thread not active");
  let stamp = (Engine.icount t.engine tid, tid) in
  let asked_at = Engine.clock t.engine tid in
  Hashtbl.replace t.states tid (Pending { stamp; asked_at; grant })

let reservation_rank t ~tid =
  match Hashtbl.find_opt t.states tid with
  | Some (Pending { stamp; _ }) ->
    Hashtbl.fold
      (fun tid' st acc ->
        match st with
        | Pending { stamp = stamp'; _ } when tid' <> tid && stamp' < stamp ->
          acc + 1
        | Pending _ | Active | Inactive -> acc)
      t.states 0
  | Some (Active | Inactive) | None -> 0

(* The minimal pending request, if any. *)
let min_pending t =
  Hashtbl.fold
    (fun tid st acc ->
      match st, acc with
      | Pending p, None -> Some (tid, p)
      | Pending p, Some (_, best) when p.stamp < best.stamp -> Some (tid, p)
      | _ -> acc)
    t.states None

(* A request is grantable when every *other active* thread is logically
   past its stamp.  Other pending requests necessarily have larger stamps
   (we only test the minimum), and inactive/finished threads are ignored
   exactly as Kendo ignores blocked threads. *)
let grantable t tid (stamp : int * int) =
  let ok = ref true in
  Hashtbl.iter
    (fun tid' st ->
      if !ok && tid' <> tid then
        match st with
        | Active ->
          let stamp' = (Engine.icount t.engine tid', tid') in
          if stamp' <= stamp then ok := false
        | Inactive | Pending _ -> ())
    t.states;
  !ok

(* The turn became available when the last other active thread's
   instruction count passed the stamp.  Instruction counts advance
   in proportion to app cycles, so the crossing moment can be
   interpolated from (clock, icount) instead of being quantized to
   whole-operation completions — without this, one coarse Tick in a
   peer thread would inflate every waiter's grant time. *)
let crossing_time t tid c ~floor =
  Hashtbl.fold
    (fun tid' st acc ->
      match st with
      | Active when tid' <> tid ->
        let crossed =
          Engine.clock t.engine tid'
          - max 0 (Engine.icount t.engine tid' - c)
        in
        max acc crossed
      | Active | Inactive | Pending _ -> acc)
    t.states floor

let min_timer t =
  Hashtbl.fold
    (fun tid tm acc ->
      match acc with
      | None -> Some (tid, tm)
      | Some (_, best) when tm.tm_stamp < best.tm_stamp -> Some (tid, tm)
      | Some _ -> acc)
    t.timers None

(* Requests and timers share one deterministic grant order: the globally
   minimal stamp goes first, so a timeout cannot leapfrog a turn that
   deterministically precedes it (or vice versa). *)
let rec poll t =
  let next =
    match min_pending t, min_timer t with
    | None, None -> None
    | Some (tid, p), None -> Some (`Req (tid, p))
    | None, Some (tid, tm) -> Some (`Timer (tid, tm))
    | Some (rtid, p), Some (ttid, tm) ->
      if p.stamp <= tm.tm_stamp then Some (`Req (rtid, p))
      else Some (`Timer (ttid, tm))
  in
  match next with
  | None -> ()
  | Some (`Req (tid, p)) ->
    if grantable t tid p.stamp then begin
      Hashtbl.replace t.states tid Active;
      let mine = Engine.clock t.engine tid in
      let c, _ = p.stamp in
      let now = crossing_time t tid c ~floor:mine in
      if now > p.asked_at then begin
        let prof = Engine.profile t.engine in
        prof.kendo_waits <- prof.kendo_waits + 1;
        let obs = Engine.obs t.engine in
        if Rfdet_obs.Sink.enabled obs then
          Rfdet_obs.Sink.emit obs ~tid ~time:p.asked_at
            (Rfdet_obs.Trace.Kendo_wait { cycles = now - p.asked_at })
      end;
      p.grant ~now;
      poll t
    end
  | Some (`Timer (tid, tm)) ->
    if grantable t tid tm.tm_stamp then begin
      Hashtbl.remove t.timers tid;
      let c, _ = tm.tm_stamp in
      let now = crossing_time t tid c ~floor:(Engine.clock t.engine tid) in
      tm.tm_fire ~now;
      poll t
    end

let pending_count t =
  Hashtbl.fold
    (fun _ st acc ->
      match st with Pending _ -> acc + 1 | Active | Inactive -> acc)
    t.states 0
