(** Deterministic POSIX-style synchronization objects on top of the Kendo
    arbiter (paper Section 4.1).

    This layer owns the *internal synchronization variables* of the
    paper: mutexes, condition variables and barriers live in the runtime
    metadata space, are identified by handles, and all state transitions
    execute serially in deterministic-turn order.  The DMT-specific work
    — what happens to memory at acquire and release points — is supplied
    by the client runtime through [hooks]:

    - RFDet's hooks run DLRC memory-modification propagation and stamp
      lastTid/lastTime;
    - the weak-determinism (Kendo-only) runtime passes trivial hooks,
      because its threads share memory directly.

    Acquire operations are lock, cond-wait (on wakeup), thread entry,
    join and barrier; release operations are unlock, signal/broadcast,
    thread create, thread exit and barrier. *)

type obj =
  | Mutex_obj of int
  | Cond_obj of int
  | Barrier_obj of int
  | Thread_obj of int  (** create/exit/join synchronization *)
  | Atomic_obj of int  (** low-level atomic word, keyed by address *)
  | Rwlock_obj of int  (** reader–writer lock (shared or exclusive) *)
  | Sem_obj of int  (** counting semaphore *)
  | Deque_obj of int  (** work-stealing deque (push releases, pop/steal acquire) *)

type hooks = {
  acquire : tid:int -> obj:obj -> now:int -> int;
      (** [tid] passes an acquire point on [obj] at time [now]; returns
          the extra simulated cycles the acquire costs (propagation).
          Runs in deterministic order. *)
  release : tid:int -> obj:obj -> now:int -> int;
      (** [tid] passes a release point (stamp lastTid/lastTime, close the
          slice); returns extra cycles. *)
  barrier_all : tids:int list -> barrier:int -> now:int -> int;
      (** all parties arrived, listed in arrival order; perform the
          deterministic smallest-tid-first merge; returns extra cycles
          applied to every party. *)
  spawned : parent:int -> child:int -> now:int -> unit;
      (** child registered (memory inheritance, vector-clock setup). *)
  exited : tid:int -> unit;
      (** thread body returned: close its final slice. *)
  joined : tid:int -> target:int -> now:int -> int;
      (** [tid]'s join on [target] completes; returns extra cycles. *)
}

val trivial_hooks : hooks
(** All callbacks return 0 / do nothing — weak determinism. *)

type t

val create : Rfdet_sim.Engine.t -> hooks -> t

(** Handle one synchronization operation for the current thread.  Every
    function returns the [Engine.outcome] the policy should return:
    turn-taking operations block and are completed by the arbiter. *)

val mutex_create : t -> tid:int -> Rfdet_sim.Engine.outcome

val lock : t -> tid:int -> mutex:int -> Rfdet_sim.Engine.outcome

val trylock : t -> tid:int -> mutex:int -> Rfdet_sim.Engine.outcome
(** Non-blocking acquire: takes a deterministic turn, then either
    acquires (waking with 0/1 for clean/poisoned) or reports busy
    (waking with 2) without queueing. *)

val lock_timed :
  t -> tid:int -> mutex:int -> timeout:int -> Rfdet_sim.Engine.outcome
(** [lock] with a deterministic deadline of [timeout] counted
    instructions from the request, filed as an arbiter timer in the same
    min-stamp grant order as turn requests.  If the mutex is granted
    first the timer is cancelled; if the deadline is granted first the
    waiter leaves the queue and wakes with 2 ([`Timed_out]). *)

val mutex_heal :
  t -> tid:int -> mutex:int -> Rfdet_sim.Engine.outcome
(** Un-poison a mutex the caller holds (raises [Invalid_argument]
    otherwise): the caller declares the protected invariant
    re-established.  A poisoned mutex also heals automatically when the
    restarted thread whose crash poisoned it completes a clean
    [unlock].  Counted in [Profile.heals] and traced as a [Recovery]
    event. *)

val unlock : t -> tid:int -> mutex:int -> Rfdet_sim.Engine.outcome

val cond_create : t -> tid:int -> Rfdet_sim.Engine.outcome

val cond_wait : t -> tid:int -> cond:int -> mutex:int -> Rfdet_sim.Engine.outcome

val cond_signal : ?lose:bool -> t -> tid:int -> cond:int -> Rfdet_sim.Engine.outcome
(** Wake the *lowest-stamp* waiter — deterministic, not FIFO: the waiter
    whose [cond_wait] carried the smallest (icount, tid) Kendo stamp is
    chosen, so the wakeup order is a pure function of the waiters' logical
    times.  A signal with no waiters is counted in
    [Profile.cond_unheard_signals] (lost-wakeup diagnostics).  [?lose]
    (default false) is the seeded [bug_lost_signal] fault: the signal
    takes its deterministic turn but the wakeup is swallowed — the waiter
    stays queued, modelling the classic lost-wakeup bug. *)

val cond_broadcast : t -> tid:int -> cond:int -> Rfdet_sim.Engine.outcome
(** Wake every waiter, in ascending stamp order. *)

val barrier_create : t -> tid:int -> parties:int -> Rfdet_sim.Engine.outcome

val barrier_wait : t -> tid:int -> barrier:int -> Rfdet_sim.Engine.outcome

val spawn : t -> tid:int -> body:(unit -> unit) -> Rfdet_sim.Engine.outcome

val join : t -> tid:int -> target:int -> Rfdet_sim.Engine.outcome

(** {2 Reader–writer locks}

    Deterministic admission: all blocked requests sit in one queue sorted
    by Kendo stamp.  An arriving reader acquires immediately only when no
    writer holds the lock and no writer is waiting (stamp-ordered writer
    preference); an arriving writer acquires only when the lock is
    entirely free.  On full release, the queue head is admitted — a
    writer alone, or the consecutive run of readers at the head as one
    batch ([Profile.rw_reader_batches] / [rw_batch_readers]). *)

val rwlock_create : t -> tid:int -> Rfdet_sim.Engine.outcome

val rdlock : t -> tid:int -> rwlock:int -> Rfdet_sim.Engine.outcome

val wrlock : t -> tid:int -> rwlock:int -> Rfdet_sim.Engine.outcome

val rwunlock : t -> tid:int -> rwlock:int -> Rfdet_sim.Engine.outcome
(** Release the caller's hold (shared or exclusive — detected; raises
    [Invalid_argument] when the caller holds neither).  A clean release
    by the thread whose earlier crash poisoned the lock heals it. *)

(** {2 Counting semaphores} *)

val sem_create : t -> tid:int -> permits:int -> Rfdet_sim.Engine.outcome

val sem_acquire : t -> tid:int -> sem:int -> Rfdet_sim.Engine.outcome
(** P: grants a permit when available, else queues in stamp order. *)

val sem_post : t -> tid:int -> sem:int -> Rfdet_sim.Engine.outcome
(** V: hands the permit directly to the lowest-stamp waiter when one is
    queued (no release-then-race), else increments the pool.  A post by
    the thread whose crash poisoned the semaphore heals it. *)

(** {2 Work-stealing deques} *)

val deque_create : t -> tid:int -> Rfdet_sim.Engine.outcome
(** The new deque is owned by [tid]; only the owner may push/pop. *)

val deque_push :
  t -> tid:int -> deque:int -> value:int -> Rfdet_sim.Engine.outcome
(** Owner pushes [value] at the bottom, stamped with the owner's Kendo
    time (a release point).  A push by the restarted owner of a poisoned
    deque heals it. *)

val deque_pop : t -> tid:int -> deque:int -> Rfdet_sim.Engine.outcome
(** Owner pops the newest item (LIFO); wakes with the value, -1 when
    empty, -2 when poisoned. *)

val deque_steal : t -> tid:int -> own:int -> Rfdet_sim.Engine.outcome
(** Steal the globally oldest item: deterministic victim selection — the
    non-empty, non-poisoned deque (excluding [own]) whose oldest item
    has the smallest (push stamp, handle).  Wakes with the value, or -1
    when no victim exists.  Counted in [Profile.steals_attempted] /
    [steals_succeeded] and traced as a [Steal] event. *)

val heal : t -> tid:int -> handle:int -> Rfdet_sim.Engine.outcome
(** Unified heal: dispatches on the handle's kind (handles are unique
    across mutexes, rwlocks, semaphores and deques).  Mutexes, rwlocks
    and semaphores require the caller to hold the object; anyone may
    heal a poisoned deque (the owner is dead). *)

val rmw :
  t -> tid:int -> action:(now:int -> int * int) -> Rfdet_sim.Engine.outcome
(** [rmw t ~tid ~action] takes a deterministic turn and runs [action] at
    the grant; [action ~now] returns (result value, extra cycles).  Used
    for the low-level atomic interface: the client runtime performs the
    acquire, the read-modify-write, and the release inside [action]. *)

val on_thread_exit : t -> tid:int -> unit
(** Must be wired into the policy's [on_thread_exit]. *)

val on_thread_crash : t -> tid:int -> unit
(** Crash containment: wire into the policy's [on_thread_crash] (after
    any memory-model cleanup).  Deterministically — in ascending handle
    order, independent of physical interleaving — this (1) removes the
    crashed thread from the arbiter and every wait queue, (2) releases
    each mutex it held as *poisoned* and passes it to the next waiter,
    which observes [`Poisoned] from [Api.lock_check], (3) breaks every
    barrier the thread was a party to (had ever waited on), waking
    stranded parties with [`Broken] and failing all future waits on it,
    (4) completes current and future joins on the crashed thread
    with [`Crashed], (5) poisons and releases its rwlock holds (then
    admits the next stamp-ordered batch), (6) returns its semaphore
    permits as poisoned (then drains waiters against them), and
    (7) poisons the deques it owned — queued work stays visible and
    becomes stealable again after [Api.deque_heal]. *)

val on_thread_crash_recoverable : t -> tid:int -> unit
(** Crash cleanup for a thread that will be *restarted* (the Recover
    path): purges it from the arbiter and every wait queue and poisons
    its held mutexes exactly like [on_thread_crash], but does NOT mark
    it crashed, fail its joiners, or break its barriers — joiners keep
    waiting for the restarted body, and the thread's stale barrier
    arrival is retracted so it can re-arrive. *)

val on_thread_restarted : t -> tid:int -> unit
(** Re-register a restarted tid with the arbiter (active, preserved
    instruction count).  Call before the restarted body first runs. *)

val deadlock_victim : t -> int option
(** Wait-for-graph cycle detection: mutex-queue waiter → owner,
    rwlock waiter → holder (the writer, else the lowest-tid reader),
    semaphore waiter → lowest-tid permit holder, and
    joiner → target edges.  Returns the deterministic victim — the
    cycle node with the smallest (icount, tid) — or [None] when the
    stall is not a cycle (e.g. a lone cond_wait nobody will signal).
    Meaningful at a total stall, where it is schedule-independent for a
    deterministic runtime. *)

val poll : t -> unit
(** Must be wired into the policy's [on_step]. *)

val arbiter : t -> Arbiter.t

(** [holder t ~mutex] — current owner, for assertions in tests. *)
val holder : t -> mutex:int -> int option

(** [mutex_poisoned t ~mutex] — true once a crash released the mutex
    (and no heal has happened since). *)
val mutex_poisoned : t -> mutex:int -> bool

(** [mutex_poisoned_by t ~mutex] — the tid whose crash poisoned it;
    [None] once healed (or never poisoned). *)
val mutex_poisoned_by : t -> mutex:int -> int option

(** [barrier_broken t ~barrier] — true once a party crashed. *)
val barrier_broken : t -> barrier:int -> bool

(** [crashed t ~tid] — true once [on_thread_crash] ran for [tid]. *)
val crashed : t -> tid:int -> bool

(** [waiters t ~cond] — queued waiter tids in deterministic order. *)
val waiters : t -> cond:int -> int list

(** [joining_target t ~tid] — when [tid] is blocked in a join, the thread
    it waits for.  The RFDet garbage collector uses this: a joiner's
    clock is guaranteed to absorb its target's clock before the joiner
    touches memory again, so the target's time is a sound lower bound on
    the joiner's future frontier contribution. *)
val joining_target : t -> tid:int -> int option

(** {2 Primitive-state accessors (tests and diagnostics)} *)

(** [rw_holders t ~rwlock] — who holds the lock right now. *)
val rw_holders : t -> rwlock:int -> [ `Free | `Writer of int | `Readers of int list ]

(** [rw_waiters t ~rwlock] — blocked requests in stamp order. *)
val rw_waiters : t -> rwlock:int -> (int * [ `Rd | `Wr ]) list

val rwlock_poisoned : t -> rwlock:int -> bool

val sem_permits : t -> sem:int -> int

(** [sem_waiters t ~sem] — blocked acquirers in stamp order. *)
val sem_waiters : t -> sem:int -> int list

val sem_poisoned : t -> sem:int -> bool

val deque_owner : t -> deque:int -> int

val deque_size : t -> deque:int -> int

val deque_poisoned : t -> deque:int -> bool
