(** Kendo deterministic-turn arbitration (Olszewski et al., ASPLOS'09;
    paper Section 4.1).

    Every synchronization operation must take a *turn* before its
    semantics execute.  A thread requesting a turn is stamped with its
    deterministic logical time — the pair (instruction count at the
    request, thread id) — and the arbiter grants turns in strictly
    increasing stamp order.  A request is granted once every *other
    active* thread is logically past it, i.e. has a larger stamp;
    threads that are blocked (waiting on a lock queue, a condition
    variable, a barrier, or a join) or finished are not consulted,
    mirroring Kendo's treatment of inactive threads.

    Because stamps derive only from instruction counts — never from
    simulated wall-clock — the grant *sequence* is identical across
    scheduler seeds; only grant *times* vary.  This is the root of the
    whole system's determinism (paper Section 3.2). *)

type t

val create : Rfdet_sim.Engine.t -> t

(** [thread_started t ~tid] registers a thread as active.  Thread 0 must
    be registered before any request. *)
val thread_started : t -> tid:int -> unit

(** [thread_finished t ~tid] removes a thread permanently. *)
val thread_finished : t -> tid:int -> unit

(** [set_inactive t ~tid] excludes a thread from grant checks while it
    waits on a synchronization object (it cannot issue requests). *)
val set_inactive : t -> tid:int -> unit

(** [set_active t ~tid] re-includes a woken thread. *)
val set_active : t -> tid:int -> unit

(** [is_active t ~tid] — true when the thread is in the active set. *)
val is_active : t -> tid:int -> bool

(** [request t ~tid ~grant] files a turn request stamped with the
    thread's current instruction count.  [grant ~now] runs exactly once,
    when the turn is granted, with the simulated time of the grant; it
    must arrange for the thread to eventually be woken (directly or by
    queueing it on a synchronization object).  The requesting thread must
    be active and have no outstanding request. *)
val request : t -> tid:int -> grant:(now:int -> unit) -> unit

(** [reservation_rank t ~tid] — for the prelock optimization: when the
    thread has a pending request, the number of pending requests with
    smaller stamps (its position in the deterministic reservation
    order). *)
val reservation_rank : t -> tid:int -> int

(** [add_timer t ~tid ~deadline ~fire] files a deterministic timeout for
    a waiting thread: [fire ~now] runs once [deadline] (an absolute
    instruction count, stamped (deadline, tid)) becomes grantable under
    the same rule as turn requests, merged into the same min-stamp
    order.  At most one timer per tid; refiling replaces.  Backs
    [Op.Lock_timed]. *)
val add_timer : t -> tid:int -> deadline:int -> fire:(now:int -> unit) -> unit

(** [cancel_timer t ~tid] — discard the timer (the wait completed
    first).  No-op when absent. *)
val cancel_timer : t -> tid:int -> unit

(** [poll t] grants every currently grantable request and fires every
    due timer, in global stamp order.  Call after every engine step. *)
val poll : t -> unit

(** [pending_count t] — outstanding requests (diagnostics). *)
val pending_count : t -> int
