module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost

type obj =
  | Mutex_obj of int
  | Cond_obj of int
  | Barrier_obj of int
  | Thread_obj of int
  | Atomic_obj of int

type hooks = {
  acquire : tid:int -> obj:obj -> now:int -> int;
  release : tid:int -> obj:obj -> now:int -> int;
  barrier_all : tids:int list -> barrier:int -> now:int -> int;
  spawned : parent:int -> child:int -> now:int -> unit;
  exited : tid:int -> unit;
  joined : tid:int -> target:int -> now:int -> int;
}

let trivial_hooks =
  {
    acquire = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    release = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    barrier_all = (fun ~tids:_ ~barrier:_ ~now:_ -> 0);
    spawned = (fun ~parent:_ ~child:_ ~now:_ -> ());
    exited = (fun ~tid:_ -> ());
    joined = (fun ~tid:_ ~target:_ ~now:_ -> 0);
  }

(* Result values delivered to woken threads: [ok] for a normal grant,
   [fault] when the grant carries a crash consequence — a poisoned
   mutex, a broken barrier, or a join on a crashed thread — and [busy]
   when a trylock found the mutex held or a timed lock expired.  The Api
   layer maps them to [`Ok]/[`Poisoned]/[`Broken]/[`Crashed]/[`Busy]/
   [`Timed_out]. *)
let ok = 0

let fault = 1

let busy = 2

type mutex_state = {
  mutable owner : int option;
  queue : (int * int * int) Queue.t;
      (* (tid, asked_at, enqueued_at): when the waiter first requested
         the lock and when its deterministic turn put it in this queue —
         the trace splits its total wait into arbiter vs. queue time *)
  mutable acquired_at : int;  (* grant time of the current owner *)
  mutable poisoned : bool;
      (* a crash released this mutex; sticky until healed, observed by
         every later acquirer (à la Rust's lock poisoning) *)
  mutable poisoned_by : int option;
      (* the tid whose crash poisoned it: a clean unlock by that same
         (restarted) thread heals the mutex — it held the lock and
         re-established the invariant *)
}

type cond_state = { cond_waiters : (int * int) Queue.t }
(* (waiter tid, mutex to reacquire), in deterministic grant order *)

type barrier_state = {
  parties : int;
  mutable arrived : (int * int) list; (* (tid, arrival time), reversed *)
  participants : (int, unit) Hashtbl.t;
      (* every tid that has ever waited here: the barrier's parties.  A
         crash of any of them breaks the barrier — a stranded waiter
         cannot tell (and must not depend on) whether the crashed party
         would have come back. *)
  mutable broken : bool;  (* a party crashed; sticky *)
}

type t = {
  engine : Engine.t;
  arb : Arbiter.t;
  hooks : hooks;
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;  (* target tid -> blocked joiners *)
  crashed : (int, unit) Hashtbl.t;
  mutable next_handle : int;
}

let create engine hooks =
  let t =
    {
      engine;
      arb = Arbiter.create engine;
      hooks;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      joiners = Hashtbl.create 8;
      crashed = Hashtbl.create 4;
      next_handle = 1;
    }
  in
  Arbiter.thread_started t.arb ~tid:0;
  t

let arbiter t = t.arb

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown cond %d" c)

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown barrier %d" b)

let sync_cost t = (Engine.cost t.engine).Cost.sync_op

let obs t = Engine.obs t.engine

let mutex_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.mutexes h
    {
      owner = None;
      queue = Queue.create ();
      acquired_at = 0;
      poisoned = false;
      poisoned_by = None;
    };
  Engine.Done h

let cond_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.conds h { cond_waiters = Queue.create () };
  Engine.Done h

let barrier_create t ~tid:_ ~parties =
  if parties <= 0 then invalid_arg "Sync.barrier_create: parties <= 0";
  let h = fresh_handle t in
  Hashtbl.replace t.barriers h
    {
      parties;
      arrived = [];
      participants = Hashtbl.create (max 4 parties);
      broken = false;
    };
  Engine.Done h

(* Grant the mutex to [tid] at time [now]: run the acquire hook and wake
   the thread.  The thread is currently inactive/blocked.  [asked] is
   when the thread first requested the lock, [enq] when its turn put it
   in the wait queue ([= now] for an uncontended grant). *)
let grant_mutex t ~tid ~mutex ~now ~asked ~enq =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  st.owner <- Some tid;
  st.acquired_at <- now;
  (* the wait completed before any lock_timed deadline *)
  Arbiter.cancel_timer t.arb ~tid;
  (let o = obs t in
   if Rfdet_obs.Sink.enabled o then
     Rfdet_obs.Sink.emit o ~tid ~time:now
       (Rfdet_obs.Trace.Lock_acquire
          {
            obj = "mutex";
            handle = mutex;
            wait = max 0 (now - asked);
            queued = max 0 (now - enq);
          }));
  let extra = t.hooks.acquire ~tid ~obj:(Mutex_obj mutex) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid
    ~value:(if st.poisoned then fault else ok)
    ~not_before:(now + sync_cost t + extra)

let emit_release t ~tid ~mutex ~now =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    let st = mutex_state t mutex in
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Lock_release
         { obj = "mutex"; handle = mutex; hold = max 0 (now - st.acquired_at) })

let remove_from_queue q ~tid =
  let kept =
    Queue.fold (fun acc ((w, _, _) as e) -> if w = tid then acc else e :: acc)
      [] q
  in
  Queue.clear q;
  List.iter (fun x -> Queue.add x q) (List.rev kept)

let remove_from_cond_queue q ~tid =
  let kept =
    Queue.fold (fun acc ((w, _) as e) -> if w = tid then acc else e :: acc) [] q
  in
  Queue.clear q;
  List.iter (fun e -> Queue.add e q) (List.rev kept)

let emit_recovery t ~tid ~now ~action ~target ~attempt ~cycles =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Recovery { action; target; attempt; cycles })

(* Un-poison: the caller holds the mutex and vouches for the protected
   invariant (explicitly via [mutex_heal], or implicitly by being the
   restarted crasher completing a clean critical section). *)
let heal_mutex t ~tid ~mutex ~now =
  let st = mutex_state t mutex in
  if st.poisoned then begin
    st.poisoned <- false;
    st.poisoned_by <- None;
    let p = Engine.profile t.engine in
    p.heals <- p.heals + 1;
    emit_recovery t ~tid ~now ~action:"heal" ~target:mutex ~attempt:0 ~cycles:0
  end

let lock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        (* Queue in deterministic reservation order; stay blocked. *)
        Queue.add (tid, asked, now) st.queue;
        Arbiter.set_inactive t.arb ~tid);
  Engine.Block

let trylock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        (* Held: report busy without queueing.  The answer depends only
           on the arbiter state at this deterministic turn. *)
        Engine.wake t.engine ~tid ~value:busy ~not_before:(now + sync_cost t));
  Engine.Block

let lock_timed t ~tid ~mutex ~timeout =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  (* Absolute icount deadline, fixed at the request: expiry is granted
     through the arbiter's min-stamp order, so whether the lock or the
     timeout wins is jitter-independent. *)
  let deadline = Engine.icount t.engine tid + max 0 timeout in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        Queue.add (tid, asked, now) st.queue;
        Arbiter.set_inactive t.arb ~tid;
        Arbiter.add_timer t.arb ~tid ~deadline ~fire:(fun ~now ->
            remove_from_queue st.queue ~tid;
            Arbiter.set_active t.arb ~tid;
            Engine.wake t.engine ~tid ~value:busy
              ~not_before:(max now (Engine.clock t.engine tid) + sync_cost t)));
  Engine.Block

let mutex_heal t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      (match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.mutex_heal: tid %d does not hold mutex %d" tid
             mutex));
      heal_mutex t ~tid ~mutex ~now;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t));
  Engine.Block

(* Pass a free mutex to the head of its queue, if any. *)
let pass_mutex t ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  match Queue.take_opt st.queue with
  | None -> ()
  | Some (waiter, asked, enq) ->
    grant_mutex t ~tid:waiter ~mutex ~now ~asked ~enq

let unlock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      (match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.unlock: tid %d does not hold mutex %d" tid
             mutex));
      (* The thread whose crash poisoned this mutex completed a clean
         critical section after restarting: invariant re-established. *)
      if st.poisoned && st.poisoned_by = Some tid then
        heal_mutex t ~tid ~mutex ~now;
      emit_release t ~tid ~mutex ~now;
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      st.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_wait t ~tid ~cond ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let mst = mutex_state t mutex in
      (match mst.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.cond_wait: tid %d does not hold mutex %d" tid
             mutex));
      (* Waiting releases the mutex: a release point on the mutex. *)
      emit_release t ~tid ~mutex ~now;
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      mst.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      let cst = cond_state t cond in
      Queue.add (tid, mutex) cst.cond_waiters;
      Arbiter.set_inactive t.arb ~tid);
  Engine.Block

(* Wake one queued waiter: acquire point on the condvar (see the
   signaller's updates), then contend for the mutex again. *)
let wake_cond_waiter t ~waiter ~mutex ~cond ~now =
  let extra = t.hooks.acquire ~tid:waiter ~obj:(Cond_obj cond) ~now in
  let now = now + extra in
  let mst = mutex_state t mutex in
  match mst.owner with
  | None -> grant_mutex t ~tid:waiter ~mutex ~now ~asked:now ~enq:now
  | Some _ -> Queue.add (waiter, now, now) mst.queue

let cond_signal t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      (match Queue.take_opt cst.cond_waiters with
      | None -> ()
      | Some (waiter, mutex) ->
        wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra));
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_broadcast t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      let rec drain () =
        match Queue.take_opt cst.cond_waiters with
        | None -> ()
        | Some (waiter, mutex) ->
          wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra);
          drain ()
      in
      drain ();
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let barrier_wait t ~tid ~barrier =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = barrier_state t barrier in
      Hashtbl.replace st.participants tid ();
      if st.broken then
        (* A party crashed at this barrier: it can never complete.
           Fail fast and deterministically instead of deadlocking. *)
        Engine.wake t.engine ~tid ~value:fault
          ~not_before:(now + sync_cost t)
      else begin
      st.arrived <- (tid, now) :: st.arrived;
      if List.length st.arrived < st.parties then
        Arbiter.set_inactive t.arb ~tid
      else begin
        let parties = List.rev st.arrived in
        let tids = List.map fst parties in
        st.arrived <- [];
        let extra = t.hooks.barrier_all ~tids ~barrier ~now in
        let release_at =
          now + extra + (Engine.cost t.engine).Cost.barrier_overhead
        in
        (let o = obs t in
         if Rfdet_obs.Sink.enabled o then
           List.iter
             (fun (tid', arrived_at) ->
               Rfdet_obs.Sink.emit o ~tid:tid' ~time:arrived_at
                 (Rfdet_obs.Trace.Barrier_stall
                    { barrier; cycles = max 0 (release_at - arrived_at) }))
             parties);
        List.iter
          (fun tid' ->
            if tid' <> tid then begin
              Arbiter.set_active t.arb ~tid:tid';
              Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:release_at
            end)
          tids;
        Engine.wake t.engine ~tid ~value:0 ~not_before:release_at
      end
      end);
  Engine.Block

let spawn t ~tid ~body =
  let cost = Engine.cost t.engine in
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let start_at = now + cost.Cost.spawn in
      let child = Engine.register_thread t.engine ~body ~start_at in
      (* Children inherit the parent's deterministic instruction count so
         the Kendo logical clocks stay comparable. *)
      Engine.seed_icount t.engine child (Engine.icount t.engine tid);
      Arbiter.thread_started t.arb ~tid:child;
      t.hooks.spawned ~parent:tid ~child ~now;
      Engine.wake t.engine ~tid ~value:child ~not_before:start_at);
  Engine.Block

let rmw t ~tid ~action =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let value, extra = action ~now in
      Engine.wake t.engine ~tid ~value ~not_before:(now + sync_cost t + extra));
  Engine.Block

let complete_join t ~tid ~target ~now =
  let extra = t.hooks.joined ~tid ~target ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:0
    ~not_before:(now + (Engine.cost t.engine).Cost.join + extra)

(* A join on a crashed target completes immediately with an error value;
   the [joined] hook is NOT run — the joiner must not absorb anything
   beyond the target's already-released slices (which remain reachable
   through the regular acquire paths). *)
let complete_join_crashed t ~tid ~now =
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:fault
    ~not_before:(now + (Engine.cost t.engine).Cost.join)

let join t ~tid ~target =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      if Hashtbl.mem t.crashed target then
        complete_join_crashed t ~tid ~now
      else if Engine.is_finished t.engine target then
        complete_join t ~tid ~target ~now
      else begin
        let existing =
          Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
        in
        Hashtbl.replace t.joiners target (existing @ [ tid ]);
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let on_thread_exit t ~tid =
  t.hooks.exited ~tid;
  Arbiter.thread_finished t.arb ~tid;
  let now = Engine.clock t.engine tid in
  (match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    List.iter
      (fun joiner ->
        let now = max now (Engine.clock t.engine joiner) in
        complete_join t ~tid:joiner ~target:tid ~now)
      waiting);
  Arbiter.poll t.arb

(* Crash containment.  Everything here iterates objects in ascending
   handle order, so the repair sequence — and therefore which survivor
   observes what — is a pure function of the crash point, never of the
   physical interleaving that led to it. *)
let on_thread_crash t ~tid =
  Hashtbl.replace t.crashed tid ();
  (* The arbiter must forget the thread: a crashed thread's logical
     clock never advances, and leaving it Active would block every
     later turn grant forever. *)
  Arbiter.thread_finished t.arb ~tid;
  let sorted_handles tbl pred =
    Hashtbl.fold (fun h st acc -> if pred st then h :: acc else acc) tbl []
    |> List.sort compare
  in
  (* 1. Purge the crashed thread from every wait queue so no later
     hand-off resurrects it. *)
  Hashtbl.iter (fun _ st -> remove_from_queue st.queue ~tid) t.mutexes;
  Hashtbl.iter (fun _ st -> remove_from_cond_queue st.cond_waiters ~tid) t.conds;
  Hashtbl.filter_map_inplace
    (fun _ joiners ->
      match List.filter (fun j -> j <> tid) joiners with
      | [] -> None
      | l -> Some l)
    t.joiners;
  let now = Engine.clock t.engine tid in
  (* 2. Release held mutexes as poisoned, ascending handle order; each
     passes to the deterministically-next waiter, who observes the
     poison in its lock result. *)
  List.iter
    (fun m ->
      emit_release t ~tid ~mutex:m ~now;
      let st = mutex_state t m in
      st.poisoned <- true;
      st.poisoned_by <- Some tid;
      st.owner <- None;
      pass_mutex t ~mutex:m ~now)
    (sorted_handles t.mutexes (fun st -> st.owner = Some tid));
  (* 3. Break every barrier the crashed thread was a party to (it has
     waited there at least once): release the stranded waiters with an
     error now, and fail all future waits.  Without this, survivors of
     an iterative barrier loop would wait forever for a party that is
     never coming back. *)
  List.iter
    (fun b ->
      let st = barrier_state t b in
      st.broken <- true;
      let stranded =
        List.rev_map fst (List.filter (fun (p, _) -> p <> tid) st.arrived)
        |> List.rev
      in
      st.arrived <- [];
      List.iter
        (fun party ->
          Arbiter.set_active t.arb ~tid:party;
          Engine.wake t.engine ~tid:party ~value:fault
            ~not_before:(max now (Engine.clock t.engine party)))
        stranded)
    (sorted_handles t.barriers (fun st -> Hashtbl.mem st.participants tid));
  (* 4. Joiners of the crashed thread get an error instead of waiting
     forever. *)
  (match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    List.iter
      (fun joiner ->
        complete_join_crashed t ~tid:joiner
          ~now:(max now (Engine.clock t.engine joiner)))
      waiting);
  Arbiter.poll t.arb

(* Recoverable crash: the thread will be resurrected, so the world must
   stay waitable-for.  Compared to full containment this (1) does NOT
   mark the thread crashed — joins keep blocking until the restarted
   body exits; (2) does NOT break barriers — the restarted thread will
   re-arrive (its own stale arrival is retracted); (3) still poisons and
   hands off held mutexes, recording the crasher so its clean unlock
   after restart heals them.  Same ascending-handle determinism as
   [on_thread_crash]. *)
let on_thread_crash_recoverable t ~tid =
  Arbiter.thread_finished t.arb ~tid;
  let sorted_handles tbl pred =
    Hashtbl.fold (fun h st acc -> if pred st then h :: acc else acc) tbl []
    |> List.sort compare
  in
  Hashtbl.iter (fun _ st -> remove_from_queue st.queue ~tid) t.mutexes;
  Hashtbl.iter (fun _ st -> remove_from_cond_queue st.cond_waiters ~tid) t.conds;
  Hashtbl.filter_map_inplace
    (fun _ joiners ->
      match List.filter (fun j -> j <> tid) joiners with
      | [] -> None
      | l -> Some l)
    t.joiners;
  Hashtbl.iter
    (fun _ st -> st.arrived <- List.filter (fun (p, _) -> p <> tid) st.arrived)
    t.barriers;
  let now = Engine.clock t.engine tid in
  List.iter
    (fun m ->
      emit_release t ~tid ~mutex:m ~now;
      let st = mutex_state t m in
      st.poisoned <- true;
      st.poisoned_by <- Some tid;
      st.owner <- None;
      pass_mutex t ~mutex:m ~now)
    (sorted_handles t.mutexes (fun st -> st.owner = Some tid));
  Arbiter.poll t.arb

(* The restarted tid rejoins the arbiter's active set with its preserved
   (monotone) instruction count. *)
let on_thread_restarted t ~tid = Arbiter.thread_started t.arb ~tid

(* Deadlock victim selection over the wait-for graph.  Each blocked
   thread waits on at most one thing, so the graph is functional: mutex
   queue waiter -> owner, joiner -> join target (condition variables
   have no owner and contribute no edge).  Called at a total stall —
   a schedule-independent point for a deterministic runtime — and the
   victim is the cycle node with the lowest Kendo logical time
   ((icount, tid) order), so the choice is deterministic too. *)
let deadlock_victim t =
  let next = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ st ->
      match st.owner with
      | Some o -> Queue.iter (fun (w, _, _) -> Hashtbl.replace next w o) st.queue
      | None -> ())
    t.mutexes;
  Hashtbl.iter
    (fun target joiners ->
      List.iter (fun j -> Hashtbl.replace next j target) joiners)
    t.joiners;
  let color = Hashtbl.create 16 in
  let run = ref 0 in
  let cyc = ref [] in
  let starts =
    Hashtbl.fold (fun n _ acc -> n :: acc) next [] |> List.sort compare
  in
  List.iter
    (fun start ->
      incr run;
      let rec chase node =
        match Hashtbl.find_opt color node with
        | Some r when r = !run ->
          (* back-edge into this walk: the loop from [node] is a cycle *)
          let rec loop x acc =
            let nx = Hashtbl.find next x in
            if nx = node then x :: acc else loop nx (x :: acc)
          in
          cyc := loop node [] @ !cyc
        | Some _ -> ()
        | None ->
          Hashtbl.replace color node !run;
          (match Hashtbl.find_opt next node with
          | Some nx -> chase nx
          | None -> ());
          Hashtbl.replace color node 0
      in
      chase start)
    starts;
  match !cyc with
  | [] -> None
  | hd :: tl ->
    let key tid = (Engine.icount t.engine tid, tid) in
    Some (List.fold_left (fun b x -> if key x < key b then x else b) hd tl)

let poll t = Arbiter.poll t.arb

let holder t ~mutex = (mutex_state t mutex).owner

let mutex_poisoned t ~mutex = (mutex_state t mutex).poisoned

let mutex_poisoned_by t ~mutex = (mutex_state t mutex).poisoned_by

let barrier_broken t ~barrier = (barrier_state t barrier).broken

let crashed t ~tid = Hashtbl.mem t.crashed tid

let joining_target t ~tid =
  Hashtbl.fold
    (fun target joiners acc ->
      if acc = None && List.mem tid joiners then Some target else acc)
    t.joiners None

let waiters t ~cond =
  Queue.fold (fun acc (tid, _) -> tid :: acc) [] (cond_state t cond).cond_waiters
  |> List.rev
