module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost

type obj =
  | Mutex_obj of int
  | Cond_obj of int
  | Barrier_obj of int
  | Thread_obj of int
  | Atomic_obj of int
  | Rwlock_obj of int
  | Sem_obj of int
  | Deque_obj of int

type hooks = {
  acquire : tid:int -> obj:obj -> now:int -> int;
  release : tid:int -> obj:obj -> now:int -> int;
  barrier_all : tids:int list -> barrier:int -> now:int -> int;
  spawned : parent:int -> child:int -> now:int -> unit;
  exited : tid:int -> unit;
  joined : tid:int -> target:int -> now:int -> int;
}

let trivial_hooks =
  {
    acquire = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    release = (fun ~tid:_ ~obj:_ ~now:_ -> 0);
    barrier_all = (fun ~tids:_ ~barrier:_ ~now:_ -> 0);
    spawned = (fun ~parent:_ ~child:_ ~now:_ -> ());
    exited = (fun ~tid:_ -> ());
    joined = (fun ~tid:_ ~target:_ ~now:_ -> 0);
  }

(* Result values delivered to woken threads: [ok] for a normal grant,
   [fault] when the grant carries a crash consequence — a poisoned
   mutex, a broken barrier, or a join on a crashed thread — and [busy]
   when a trylock found the mutex held or a timed lock expired.  The Api
   layer maps them to [`Ok]/[`Poisoned]/[`Broken]/[`Crashed]/[`Busy]/
   [`Timed_out]. *)
let ok = 0

let fault = 1

let busy = 2

type mutex_state = {
  mutable owner : int option;
  queue : (int * int * int) Queue.t;
      (* (tid, asked_at, enqueued_at): when the waiter first requested
         the lock and when its deterministic turn put it in this queue —
         the trace splits its total wait into arbiter vs. queue time *)
  mutable acquired_at : int;  (* grant time of the current owner *)
  mutable poisoned : bool;
      (* a crash released this mutex; sticky until healed, observed by
         every later acquirer (à la Rust's lock poisoning) *)
  mutable poisoned_by : int option;
      (* the tid whose crash poisoned it: a clean unlock by that same
         (restarted) thread heals the mutex — it held the lock and
         re-established the invariant *)
}

(* Condvar waiters carry the Kendo stamp ((icount, tid)) they entered
   the wait with; signal wakes the minimum stamp, broadcast drains in
   ascending stamp order.  The list is kept sorted, so the wakeup order
   is a pure function of the stamps — never of insertion order. *)
type cond_state = {
  mutable cond_waiters : (int * int * (int * int)) list;
      (* (waiter tid, mutex to reacquire, stamp), ascending stamp *)
}

type rw_mode = Rd | Wr

type rw_waiter = {
  rw_tid : int;
  rw_mode : rw_mode;
  rw_stamp : int * int;
  rw_asked : int;  (* when the thread first requested the lock *)
  rw_enq : int;  (* when its deterministic turn queued it *)
}

type rwlock_state = {
  mutable rw_writer : int option;
  mutable rw_readers : int list;  (* current batch, admission order *)
  mutable rw_waiting : rw_waiter list;  (* ascending stamp *)
  mutable rw_acquired_at : int;  (* grant time of writer / batch start *)
  mutable rw_poisoned : bool;
  mutable rw_poisoned_by : int option;
}

type sem_state = {
  mutable sem_permits : int;
  mutable sem_held : (int * int) list;  (* tid -> permits held *)
  mutable sem_waiting : (int * (int * int) * int * int) list;
      (* (tid, stamp, asked, enqueued), ascending stamp *)
  mutable sem_poisoned : bool;
  mutable sem_poisoned_by : int option;
}

type deque_state = {
  dq_owner : int;
  mutable dq_items : (int * (int * int)) list;
      (* (value, push stamp), oldest first: the owner pushes/pops at the
         back (LIFO), thieves steal from the front (the oldest item) *)
  mutable dq_poisoned : bool;
  mutable dq_poisoned_by : int option;
}

type barrier_state = {
  parties : int;
  mutable arrived : (int * int) list; (* (tid, arrival time), reversed *)
  participants : (int, unit) Hashtbl.t;
      (* every tid that has ever waited here: the barrier's parties.  A
         crash of any of them breaks the barrier — a stranded waiter
         cannot tell (and must not depend on) whether the crashed party
         would have come back. *)
  mutable broken : bool;  (* a party crashed; sticky *)
}

type t = {
  engine : Engine.t;
  arb : Arbiter.t;
  hooks : hooks;
  mutexes : (int, mutex_state) Hashtbl.t;
  conds : (int, cond_state) Hashtbl.t;
  barriers : (int, barrier_state) Hashtbl.t;
  rwlocks : (int, rwlock_state) Hashtbl.t;
  sems : (int, sem_state) Hashtbl.t;
  deques : (int, deque_state) Hashtbl.t;
  joiners : (int, int list) Hashtbl.t;  (* target tid -> blocked joiners *)
  crashed : (int, unit) Hashtbl.t;
  mutable next_handle : int;
}

let create engine hooks =
  let t =
    {
      engine;
      arb = Arbiter.create engine;
      hooks;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      rwlocks = Hashtbl.create 8;
      sems = Hashtbl.create 8;
      deques = Hashtbl.create 8;
      joiners = Hashtbl.create 8;
      crashed = Hashtbl.create 4;
      next_handle = 1;
    }
  in
  Arbiter.thread_started t.arb ~tid:0;
  t

let arbiter t = t.arb

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let mutex_state t m =
  match Hashtbl.find_opt t.mutexes m with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown mutex %d" m)

let cond_state t c =
  match Hashtbl.find_opt t.conds c with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown cond %d" c)

let rwlock_state t rw =
  match Hashtbl.find_opt t.rwlocks rw with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown rwlock %d" rw)

let sem_state t s =
  match Hashtbl.find_opt t.sems s with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Sync: unknown semaphore %d" s)

let deque_state t dq =
  match Hashtbl.find_opt t.deques dq with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Sync: unknown deque %d" dq)

(* The Kendo stamp that orders every wakeup/steal decision: the thread's
   deterministic instruction count, tid as the tie-break.  Pure function
   of the thread's own progress — never of physical timing. *)
let stamp_of t tid = (Engine.icount t.engine tid, tid)

let insert_sorted ~stamp_of_elt e l =
  let k = stamp_of_elt e in
  let rec go = function
    | [] -> [ e ]
    | x :: _ as rest when stamp_of_elt x > k -> e :: rest
    | x :: rest -> x :: go rest
  in
  go l

let barrier_state t b =
  match Hashtbl.find_opt t.barriers b with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sync: unknown barrier %d" b)

let sync_cost t = (Engine.cost t.engine).Cost.sync_op

let obs t = Engine.obs t.engine

let mutex_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.mutexes h
    {
      owner = None;
      queue = Queue.create ();
      acquired_at = 0;
      poisoned = false;
      poisoned_by = None;
    };
  Engine.Done h

let cond_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.conds h { cond_waiters = [] };
  Engine.Done h

let rwlock_create t ~tid:_ =
  let h = fresh_handle t in
  Hashtbl.replace t.rwlocks h
    {
      rw_writer = None;
      rw_readers = [];
      rw_waiting = [];
      rw_acquired_at = 0;
      rw_poisoned = false;
      rw_poisoned_by = None;
    };
  Engine.Done h

let sem_create t ~tid:_ ~permits =
  if permits < 0 then invalid_arg "Sync.sem_create: permits < 0";
  let h = fresh_handle t in
  Hashtbl.replace t.sems h
    {
      sem_permits = permits;
      sem_held = [];
      sem_waiting = [];
      sem_poisoned = false;
      sem_poisoned_by = None;
    };
  Engine.Done h

let deque_create t ~tid =
  let h = fresh_handle t in
  Hashtbl.replace t.deques h
    { dq_owner = tid; dq_items = []; dq_poisoned = false; dq_poisoned_by = None };
  Engine.Done h

let barrier_create t ~tid:_ ~parties =
  if parties <= 0 then invalid_arg "Sync.barrier_create: parties <= 0";
  let h = fresh_handle t in
  Hashtbl.replace t.barriers h
    {
      parties;
      arrived = [];
      participants = Hashtbl.create (max 4 parties);
      broken = false;
    };
  Engine.Done h

(* Grant the mutex to [tid] at time [now]: run the acquire hook and wake
   the thread.  The thread is currently inactive/blocked.  [asked] is
   when the thread first requested the lock, [enq] when its turn put it
   in the wait queue ([= now] for an uncontended grant). *)
let grant_mutex t ~tid ~mutex ~now ~asked ~enq =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  st.owner <- Some tid;
  st.acquired_at <- now;
  (* the wait completed before any lock_timed deadline *)
  Arbiter.cancel_timer t.arb ~tid;
  (let o = obs t in
   if Rfdet_obs.Sink.enabled o then
     Rfdet_obs.Sink.emit o ~tid ~time:now
       (Rfdet_obs.Trace.Lock_acquire
          {
            obj = "mutex";
            handle = mutex;
            wait = max 0 (now - asked);
            queued = max 0 (now - enq);
          }));
  let extra = t.hooks.acquire ~tid ~obj:(Mutex_obj mutex) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid
    ~value:(if st.poisoned then fault else ok)
    ~not_before:(now + sync_cost t + extra)

let emit_release t ~tid ~mutex ~now =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    let st = mutex_state t mutex in
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Lock_release
         { obj = "mutex"; handle = mutex; hold = max 0 (now - st.acquired_at) })

let remove_from_queue q ~tid =
  let kept =
    Queue.fold (fun acc ((w, _, _) as e) -> if w = tid then acc else e :: acc)
      [] q
  in
  Queue.clear q;
  List.iter (fun x -> Queue.add x q) (List.rev kept)

let emit_acquire_ev t ~tid ~obj ~handle ~now ~asked ~enq =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Lock_acquire
         {
           obj;
           handle;
           wait = max 0 (now - asked);
           queued = max 0 (now - enq);
         })

let emit_release_ev t ~tid ~obj ~handle ~now ~held_since =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Lock_release
         { obj; handle; hold = max 0 (now - held_since) })

let emit_recovery t ~tid ~now ~action ~target ~attempt ~cycles =
  let o = obs t in
  if Rfdet_obs.Sink.enabled o then
    Rfdet_obs.Sink.emit o ~tid ~time:now
      (Rfdet_obs.Trace.Recovery { action; target; attempt; cycles })

(* Un-poison: the caller holds the mutex and vouches for the protected
   invariant (explicitly via [mutex_heal], or implicitly by being the
   restarted crasher completing a clean critical section). *)
let heal_mutex t ~tid ~mutex ~now =
  let st = mutex_state t mutex in
  if st.poisoned then begin
    st.poisoned <- false;
    st.poisoned_by <- None;
    let p = Engine.profile t.engine in
    p.heals <- p.heals + 1;
    emit_recovery t ~tid ~now ~action:"heal" ~target:mutex ~attempt:0 ~cycles:0
  end

let lock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        (* Queue in deterministic reservation order; stay blocked. *)
        Queue.add (tid, asked, now) st.queue;
        Arbiter.set_inactive t.arb ~tid);
  Engine.Block

let trylock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        (* Held: report busy without queueing.  The answer depends only
           on the arbiter state at this deterministic turn. *)
        Engine.wake t.engine ~tid ~value:busy ~not_before:(now + sync_cost t));
  Engine.Block

let lock_timed t ~tid ~mutex ~timeout =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  (* Absolute icount deadline, fixed at the request: expiry is granted
     through the arbiter's min-stamp order, so whether the lock or the
     timeout wins is jitter-independent. *)
  let deadline = Engine.icount t.engine tid + max 0 timeout in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      match st.owner with
      | None -> grant_mutex t ~tid ~mutex ~now ~asked ~enq:now
      | Some _ ->
        Queue.add (tid, asked, now) st.queue;
        Arbiter.set_inactive t.arb ~tid;
        Arbiter.add_timer t.arb ~tid ~deadline ~fire:(fun ~now ->
            remove_from_queue st.queue ~tid;
            Arbiter.set_active t.arb ~tid;
            Engine.wake t.engine ~tid ~value:busy
              ~not_before:(max now (Engine.clock t.engine tid) + sync_cost t)));
  Engine.Block

let mutex_heal t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      (match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.mutex_heal: tid %d does not hold mutex %d" tid
             mutex));
      heal_mutex t ~tid ~mutex ~now;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t));
  Engine.Block

(* Pass a free mutex to the head of its queue, if any. *)
let pass_mutex t ~mutex ~now =
  let st = mutex_state t mutex in
  assert (st.owner = None);
  match Queue.take_opt st.queue with
  | None -> ()
  | Some (waiter, asked, enq) ->
    grant_mutex t ~tid:waiter ~mutex ~now ~asked ~enq

let unlock t ~tid ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = mutex_state t mutex in
      (match st.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.unlock: tid %d does not hold mutex %d" tid
             mutex));
      (* The thread whose crash poisoned this mutex completed a clean
         critical section after restarting: invariant re-established. *)
      if st.poisoned && st.poisoned_by = Some tid then
        heal_mutex t ~tid ~mutex ~now;
      emit_release t ~tid ~mutex ~now;
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      st.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_wait t ~tid ~cond ~mutex =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let mst = mutex_state t mutex in
      (match mst.owner with
      | Some owner when owner = tid -> ()
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "Sync.cond_wait: tid %d does not hold mutex %d" tid
             mutex));
      (* Waiting releases the mutex: a release point on the mutex. *)
      emit_release t ~tid ~mutex ~now;
      let extra = t.hooks.release ~tid ~obj:(Mutex_obj mutex) ~now in
      mst.owner <- None;
      pass_mutex t ~mutex ~now:(now + extra);
      let cst = cond_state t cond in
      cst.cond_waiters <-
        insert_sorted
          ~stamp_of_elt:(fun (_, _, s) -> s)
          (tid, mutex, stamp_of t tid)
          cst.cond_waiters;
      Arbiter.set_inactive t.arb ~tid);
  Engine.Block

(* Wake one queued waiter: acquire point on the condvar (see the
   signaller's updates), then contend for the mutex again. *)
let wake_cond_waiter t ~waiter ~mutex ~cond ~now =
  let extra = t.hooks.acquire ~tid:waiter ~obj:(Cond_obj cond) ~now in
  let now = now + extra in
  let mst = mutex_state t mutex in
  match mst.owner with
  | None -> grant_mutex t ~tid:waiter ~mutex ~now ~asked:now ~enq:now
  | Some _ -> Queue.add (waiter, now, now) mst.queue

(* [lose] is the seeded negative control ([Options.bug_lost_signal]):
   the signal's release side happens but the min-stamp waiter is never
   woken — the classic lost wakeup, which the conformance wall must
   catch as a deterministic divergence or deadlock. *)
let cond_signal ?(lose = false) t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      (match cst.cond_waiters with
      | [] ->
        (* A signal nobody heard: the lost-wakeup-prone pattern.  Count
           it so the profile makes silent hand-off bugs visible. *)
        let p = Engine.profile t.engine in
        p.cond_unheard_signals <- p.cond_unheard_signals + 1
      | _ :: _ when lose -> ()
      | (waiter, mutex, _) :: rest ->
        cst.cond_waiters <- rest;
        wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra));
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let cond_broadcast t ~tid ~cond =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let extra = t.hooks.release ~tid ~obj:(Cond_obj cond) ~now in
      let cst = cond_state t cond in
      let sleeping = cst.cond_waiters in
      cst.cond_waiters <- [];
      (* already ascending by stamp: min-stamp waiter contends first *)
      List.iter
        (fun (waiter, mutex, _) ->
          wake_cond_waiter t ~waiter ~mutex ~cond ~now:(now + extra))
        sleeping;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

(* --- reader-writer locks --------------------------------------------- *)

let heal_rwlock t ~tid ~rwlock ~now =
  let st = rwlock_state t rwlock in
  if st.rw_poisoned then begin
    st.rw_poisoned <- false;
    st.rw_poisoned_by <- None;
    let p = Engine.profile t.engine in
    p.heals <- p.heals + 1;
    emit_recovery t ~tid ~now ~action:"heal" ~target:rwlock ~attempt:0
      ~cycles:0
  end

let grant_rd t ~tid ~rwlock ~now ~asked ~enq =
  let st = rwlock_state t rwlock in
  assert (st.rw_writer = None);
  let p = Engine.profile t.engine in
  if st.rw_readers = [] then begin
    p.rw_reader_batches <- p.rw_reader_batches + 1;
    st.rw_acquired_at <- now
  end;
  p.rw_batch_readers <- p.rw_batch_readers + 1;
  st.rw_readers <- st.rw_readers @ [ tid ];
  emit_acquire_ev t ~tid ~obj:"rwlock_r" ~handle:rwlock ~now ~asked ~enq;
  let extra = t.hooks.acquire ~tid ~obj:(Rwlock_obj rwlock) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid
    ~value:(if st.rw_poisoned then fault else ok)
    ~not_before:(now + sync_cost t + extra)

let grant_wr t ~tid ~rwlock ~now ~asked ~enq =
  let st = rwlock_state t rwlock in
  assert (st.rw_writer = None && st.rw_readers = []);
  st.rw_writer <- Some tid;
  st.rw_acquired_at <- now;
  emit_acquire_ev t ~tid ~obj:"rwlock_w" ~handle:rwlock ~now ~asked ~enq;
  let extra = t.hooks.acquire ~tid ~obj:(Rwlock_obj rwlock) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid
    ~value:(if st.rw_poisoned then fault else ok)
    ~not_before:(now + sync_cost t + extra)

(* Admission when the lock is fully free, in pure stamp order: a writer
   at the head enters alone; a reader at the head brings in the whole
   consecutive run of waiting readers up to the first waiting writer —
   one deterministic batch. *)
let admit_rw t ~rwlock ~now =
  let st = rwlock_state t rwlock in
  if st.rw_writer = None && st.rw_readers = [] then
    match st.rw_waiting with
    | [] -> ()
    | { rw_mode = Wr; rw_tid; rw_asked; rw_enq; _ } :: rest ->
      st.rw_waiting <- rest;
      grant_wr t ~tid:rw_tid ~rwlock ~now ~asked:rw_asked ~enq:rw_enq
    | _ :: _ ->
      let rec split acc = function
        | ({ rw_mode = Rd; _ } as w) :: rest -> split (w :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let batch, rest = split [] st.rw_waiting in
      st.rw_waiting <- rest;
      List.iter
        (fun w ->
          grant_rd t ~tid:w.rw_tid ~rwlock ~now ~asked:w.rw_asked
            ~enq:w.rw_enq)
        batch

let rw_insert_waiter st w =
  st.rw_waiting <-
    insert_sorted ~stamp_of_elt:(fun x -> x.rw_stamp) w st.rw_waiting

let rdlock t ~tid ~rwlock =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = rwlock_state t rwlock in
      (* Stamp-ordered writer preference: a reader arriving after a
         writer started waiting queues behind it — even while other
         readers hold the lock — so writers cannot starve, and the
         queue drains in stamp order. *)
      let writer_waiting =
        List.exists (fun w -> w.rw_mode = Wr) st.rw_waiting
      in
      if st.rw_writer = None && not writer_waiting then
        grant_rd t ~tid ~rwlock ~now ~asked ~enq:now
      else begin
        rw_insert_waiter st
          {
            rw_tid = tid;
            rw_mode = Rd;
            rw_stamp = stamp_of t tid;
            rw_asked = asked;
            rw_enq = now;
          };
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let wrlock t ~tid ~rwlock =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = rwlock_state t rwlock in
      if st.rw_writer = None && st.rw_readers = [] && st.rw_waiting = []
      then grant_wr t ~tid ~rwlock ~now ~asked ~enq:now
      else begin
        rw_insert_waiter st
          {
            rw_tid = tid;
            rw_mode = Wr;
            rw_stamp = stamp_of t tid;
            rw_asked = asked;
            rw_enq = now;
          };
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let rwunlock t ~tid ~rwlock =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = rwlock_state t rwlock in
      let mode =
        if st.rw_writer = Some tid then Wr
        else if List.mem tid st.rw_readers then Rd
        else
          invalid_arg
            (Printf.sprintf "Sync.rwunlock: tid %d does not hold rwlock %d"
               tid rwlock)
      in
      (* clean critical section by the restarted crasher: healed *)
      if st.rw_poisoned && st.rw_poisoned_by = Some tid then
        heal_rwlock t ~tid ~rwlock ~now;
      emit_release_ev t ~tid
        ~obj:(match mode with Wr -> "rwlock_w" | Rd -> "rwlock_r")
        ~handle:rwlock ~now ~held_since:st.rw_acquired_at;
      let extra = t.hooks.release ~tid ~obj:(Rwlock_obj rwlock) ~now in
      (match mode with
      | Wr -> st.rw_writer <- None
      | Rd -> st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers);
      admit_rw t ~rwlock ~now:(now + extra);
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let rwlock_heal_op t ~tid ~rwlock =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = rwlock_state t rwlock in
      if not (st.rw_writer = Some tid || List.mem tid st.rw_readers) then
        invalid_arg
          (Printf.sprintf "Sync.heal: tid %d does not hold rwlock %d" tid
             rwlock);
      heal_rwlock t ~tid ~rwlock ~now;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t));
  Engine.Block

(* --- counting semaphores --------------------------------------------- *)

let heal_sem t ~tid ~sem ~now =
  let st = sem_state t sem in
  if st.sem_poisoned then begin
    st.sem_poisoned <- false;
    st.sem_poisoned_by <- None;
    let p = Engine.profile t.engine in
    p.heals <- p.heals + 1;
    emit_recovery t ~tid ~now ~action:"heal" ~target:sem ~attempt:0 ~cycles:0
  end

let sem_held_count st tid =
  Option.value (List.assoc_opt tid st.sem_held) ~default:0

let sem_set_held st tid n =
  st.sem_held <-
    (if n = 0 then List.remove_assoc tid st.sem_held
     else (tid, n) :: List.remove_assoc tid st.sem_held)

let grant_sem t ~tid ~sem ~now ~asked ~enq =
  let st = sem_state t sem in
  sem_set_held st tid (sem_held_count st tid + 1);
  emit_acquire_ev t ~tid ~obj:"sem" ~handle:sem ~now ~asked ~enq;
  let extra = t.hooks.acquire ~tid ~obj:(Sem_obj sem) ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid
    ~value:(if st.sem_poisoned then fault else ok)
    ~not_before:(now + sync_cost t + extra)

let sem_acquire t ~tid ~sem =
  Engine.advance t.engine tid (sync_cost t);
  let asked = Engine.clock t.engine tid in
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = sem_state t sem in
      if st.sem_permits > 0 then begin
        st.sem_permits <- st.sem_permits - 1;
        grant_sem t ~tid ~sem ~now ~asked ~enq:now
      end
      else begin
        st.sem_waiting <-
          insert_sorted
            ~stamp_of_elt:(fun (_, s, _, _) -> s)
            (tid, stamp_of t tid, asked, now)
            st.sem_waiting;
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let sem_post t ~tid ~sem =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = sem_state t sem in
      (* a clean post by the thread whose crash poisoned it heals *)
      if st.sem_poisoned && st.sem_poisoned_by = Some tid then
        heal_sem t ~tid ~sem ~now;
      emit_release_ev t ~tid ~obj:"sem" ~handle:sem ~now ~held_since:now;
      let extra = t.hooks.release ~tid ~obj:(Sem_obj sem) ~now in
      sem_set_held st tid (max 0 (sem_held_count st tid - 1));
      (match st.sem_waiting with
      | (waiter, _, asked, enq) :: rest ->
        (* hand the permit straight to the lowest-stamp waiter *)
        st.sem_waiting <- rest;
        grant_sem t ~tid:waiter ~sem ~now:(now + extra) ~asked ~enq
      | [] -> st.sem_permits <- st.sem_permits + 1);
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + extra));
  Engine.Block

let sem_heal_op t ~tid ~sem =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = sem_state t sem in
      if sem_held_count st tid = 0 then
        invalid_arg
          (Printf.sprintf "Sync.heal: tid %d holds no permit of semaphore %d"
             tid sem);
      heal_sem t ~tid ~sem ~now;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t));
  Engine.Block

(* --- work-stealing deques -------------------------------------------- *)

let heal_deque t ~tid ~deque ~now =
  let st = deque_state t deque in
  if st.dq_poisoned then begin
    st.dq_poisoned <- false;
    st.dq_poisoned_by <- None;
    let p = Engine.profile t.engine in
    p.heals <- p.heals + 1;
    emit_recovery t ~tid ~now ~action:"heal" ~target:deque ~attempt:0
      ~cycles:0
  end

let deque_push t ~tid ~deque ~value =
  if value < 0 then invalid_arg "Sync.deque_push: negative value";
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = deque_state t deque in
      if st.dq_owner <> tid then
        invalid_arg
          (Printf.sprintf "Sync.deque_push: tid %d does not own deque %d"
             tid deque);
      (* the restarted owner producing work again heals its deque *)
      if st.dq_poisoned && st.dq_poisoned_by = Some tid then
        heal_deque t ~tid ~deque ~now;
      (* a push is a release: thieves must see the published item *)
      let extra = t.hooks.release ~tid ~obj:(Deque_obj deque) ~now in
      st.dq_items <- st.dq_items @ [ (value, stamp_of t tid) ];
      Engine.wake t.engine ~tid ~value:0
        ~not_before:(now + sync_cost t + extra));
  Engine.Block

let deque_pop t ~tid ~deque =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = deque_state t deque in
      if st.dq_owner <> tid then
        invalid_arg
          (Printf.sprintf "Sync.deque_pop: tid %d does not own deque %d" tid
             deque);
      if st.dq_poisoned then
        Engine.wake t.engine ~tid ~value:(-2)
          ~not_before:(now + sync_cost t)
      else
        match List.rev st.dq_items with
        | [] ->
          Engine.wake t.engine ~tid ~value:(-1)
            ~not_before:(now + sync_cost t)
        | (v, _) :: older_rev ->
          st.dq_items <- List.rev older_rev;
          let extra = t.hooks.acquire ~tid ~obj:(Deque_obj deque) ~now in
          Engine.wake t.engine ~tid ~value:v
            ~not_before:(now + sync_cost t + extra));
  Engine.Block

let deque_steal t ~tid ~own =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let p = Engine.profile t.engine in
      p.steals_attempted <- p.steals_attempted + 1;
      (* Victim selection: the non-empty, non-poisoned deque whose
         oldest item carries the lowest push stamp (handle breaks the
         impossible tie) — the thief always takes the globally oldest
         runnable work, a pure function of stamps. *)
      let best =
        Hashtbl.fold
          (fun h st acc ->
            if h = own || st.dq_poisoned then acc
            else
              match st.dq_items with
              | [] -> acc
              | (_, stamp) :: _ -> (
                match acc with
                | Some (bstamp, bh, _) when (bstamp, bh) <= (stamp, h) -> acc
                | _ -> Some (stamp, h, st)))
          t.deques None
      in
      match best with
      | None ->
        Engine.wake t.engine ~tid ~value:(-1)
          ~not_before:(now + sync_cost t)
      | Some (_, victim, st) ->
        let v, _ = List.hd st.dq_items in
        st.dq_items <- List.tl st.dq_items;
        p.steals_succeeded <- p.steals_succeeded + 1;
        (let o = obs t in
         if Rfdet_obs.Sink.enabled o then
           Rfdet_obs.Sink.emit o ~tid ~time:now
             (Rfdet_obs.Trace.Steal
                { deque = victim; victim = st.dq_owner; value = v }));
        (* stealing is an acquire on the victim deque: the thief must
           see everything published up to the push it just took *)
        let extra = t.hooks.acquire ~tid ~obj:(Deque_obj victim) ~now in
        Engine.wake t.engine ~tid ~value:v
          ~not_before:(now + sync_cost t + extra));
  Engine.Block

let deque_heal_op t ~tid ~deque =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      heal_deque t ~tid ~deque ~now;
      Engine.wake t.engine ~tid ~value:0 ~not_before:(now + sync_cost t));
  Engine.Block

(* Un-poison by handle, whatever kind of object the handle names.
   Handles are unique across kinds, so dispatch is unambiguous. *)
let heal t ~tid ~handle =
  if Hashtbl.mem t.mutexes handle then mutex_heal t ~tid ~mutex:handle
  else if Hashtbl.mem t.rwlocks handle then
    rwlock_heal_op t ~tid ~rwlock:handle
  else if Hashtbl.mem t.sems handle then sem_heal_op t ~tid ~sem:handle
  else if Hashtbl.mem t.deques handle then deque_heal_op t ~tid ~deque:handle
  else invalid_arg (Printf.sprintf "Sync.heal: unknown handle %d" handle)

let barrier_wait t ~tid ~barrier =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let st = barrier_state t barrier in
      Hashtbl.replace st.participants tid ();
      if st.broken then
        (* A party crashed at this barrier: it can never complete.
           Fail fast and deterministically instead of deadlocking. *)
        Engine.wake t.engine ~tid ~value:fault
          ~not_before:(now + sync_cost t)
      else begin
      st.arrived <- (tid, now) :: st.arrived;
      if List.length st.arrived < st.parties then
        Arbiter.set_inactive t.arb ~tid
      else begin
        let parties = List.rev st.arrived in
        let tids = List.map fst parties in
        st.arrived <- [];
        let extra = t.hooks.barrier_all ~tids ~barrier ~now in
        let release_at =
          now + extra + (Engine.cost t.engine).Cost.barrier_overhead
        in
        (let o = obs t in
         if Rfdet_obs.Sink.enabled o then
           List.iter
             (fun (tid', arrived_at) ->
               Rfdet_obs.Sink.emit o ~tid:tid' ~time:arrived_at
                 (Rfdet_obs.Trace.Barrier_stall
                    { barrier; cycles = max 0 (release_at - arrived_at) }))
             parties);
        List.iter
          (fun tid' ->
            if tid' <> tid then begin
              Arbiter.set_active t.arb ~tid:tid';
              Engine.wake t.engine ~tid:tid' ~value:0 ~not_before:release_at
            end)
          tids;
        Engine.wake t.engine ~tid ~value:0 ~not_before:release_at
      end
      end);
  Engine.Block

let spawn t ~tid ~body =
  let cost = Engine.cost t.engine in
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let start_at = now + cost.Cost.spawn in
      let child = Engine.register_thread t.engine ~body ~start_at in
      (* Children inherit the parent's deterministic instruction count so
         the Kendo logical clocks stay comparable. *)
      Engine.seed_icount t.engine child (Engine.icount t.engine tid);
      Arbiter.thread_started t.arb ~tid:child;
      t.hooks.spawned ~parent:tid ~child ~now;
      Engine.wake t.engine ~tid ~value:child ~not_before:start_at);
  Engine.Block

let rmw t ~tid ~action =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      let value, extra = action ~now in
      Engine.wake t.engine ~tid ~value ~not_before:(now + sync_cost t + extra));
  Engine.Block

let complete_join t ~tid ~target ~now =
  let extra = t.hooks.joined ~tid ~target ~now in
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:0
    ~not_before:(now + (Engine.cost t.engine).Cost.join + extra)

(* A join on a crashed target completes immediately with an error value;
   the [joined] hook is NOT run — the joiner must not absorb anything
   beyond the target's already-released slices (which remain reachable
   through the regular acquire paths). *)
let complete_join_crashed t ~tid ~now =
  Arbiter.set_active t.arb ~tid;
  Engine.wake t.engine ~tid ~value:fault
    ~not_before:(now + (Engine.cost t.engine).Cost.join)

let join t ~tid ~target =
  Engine.advance t.engine tid (sync_cost t);
  Arbiter.request t.arb ~tid ~grant:(fun ~now ->
      if Hashtbl.mem t.crashed target then
        complete_join_crashed t ~tid ~now
      else if Engine.is_finished t.engine target then
        complete_join t ~tid ~target ~now
      else begin
        let existing =
          Option.value (Hashtbl.find_opt t.joiners target) ~default:[]
        in
        Hashtbl.replace t.joiners target (existing @ [ tid ]);
        Arbiter.set_inactive t.arb ~tid
      end);
  Engine.Block

let on_thread_exit t ~tid =
  t.hooks.exited ~tid;
  Arbiter.thread_finished t.arb ~tid;
  let now = Engine.clock t.engine tid in
  (match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    List.iter
      (fun joiner ->
        let now = max now (Engine.clock t.engine joiner) in
        complete_join t ~tid:joiner ~target:tid ~now)
      waiting);
  Arbiter.poll t.arb

(* Crash containment.  Everything here iterates objects in ascending
   handle order, so the repair sequence — and therefore which survivor
   observes what — is a pure function of the crash point, never of the
   physical interleaving that led to it. *)
let on_thread_crash t ~tid =
  Hashtbl.replace t.crashed tid ();
  (* The arbiter must forget the thread: a crashed thread's logical
     clock never advances, and leaving it Active would block every
     later turn grant forever. *)
  Arbiter.thread_finished t.arb ~tid;
  let sorted_handles tbl pred =
    Hashtbl.fold (fun h st acc -> if pred st then h :: acc else acc) tbl []
    |> List.sort compare
  in
  (* 1. Purge the crashed thread from every wait queue so no later
     hand-off resurrects it. *)
  Hashtbl.iter (fun _ st -> remove_from_queue st.queue ~tid) t.mutexes;
  Hashtbl.iter
    (fun _ st ->
      st.cond_waiters <-
        List.filter (fun (w, _, _) -> w <> tid) st.cond_waiters)
    t.conds;
  Hashtbl.iter
    (fun _ st ->
      st.rw_waiting <- List.filter (fun w -> w.rw_tid <> tid) st.rw_waiting)
    t.rwlocks;
  Hashtbl.iter
    (fun _ st ->
      st.sem_waiting <-
        List.filter (fun (w, _, _, _) -> w <> tid) st.sem_waiting)
    t.sems;
  Hashtbl.filter_map_inplace
    (fun _ joiners ->
      match List.filter (fun j -> j <> tid) joiners with
      | [] -> None
      | l -> Some l)
    t.joiners;
  let now = Engine.clock t.engine tid in
  (* 2. Release held mutexes as poisoned, ascending handle order; each
     passes to the deterministically-next waiter, who observes the
     poison in its lock result. *)
  List.iter
    (fun m ->
      emit_release t ~tid ~mutex:m ~now;
      let st = mutex_state t m in
      st.poisoned <- true;
      st.poisoned_by <- Some tid;
      st.owner <- None;
      pass_mutex t ~mutex:m ~now)
    (sorted_handles t.mutexes (fun st -> st.owner = Some tid));
  (* 2b. Same for rwlocks the crashed thread held (as writer or reader):
     poison, drop the hold, admit the deterministically-next batch. *)
  List.iter
    (fun rw ->
      let st = rwlock_state t rw in
      let mode = if st.rw_writer = Some tid then Wr else Rd in
      emit_release_ev t ~tid
        ~obj:(match mode with Wr -> "rwlock_w" | Rd -> "rwlock_r")
        ~handle:rw ~now ~held_since:st.rw_acquired_at;
      st.rw_poisoned <- true;
      st.rw_poisoned_by <- Some tid;
      (match mode with
      | Wr -> st.rw_writer <- None
      | Rd -> st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers);
      admit_rw t ~rwlock:rw ~now)
    (sorted_handles t.rwlocks (fun st ->
         st.rw_writer = Some tid || List.mem tid st.rw_readers));
  (* 2c. Semaphores: permits died with their holder.  Return them (so
     the pool keeps its capacity), poison the semaphore, and serve
     waiters that the returned permits can now admit. *)
  List.iter
    (fun s ->
      let st = sem_state t s in
      let n = sem_held_count st tid in
      sem_set_held st tid 0;
      st.sem_poisoned <- true;
      st.sem_poisoned_by <- Some tid;
      st.sem_permits <- st.sem_permits + n;
      let rec drain () =
        if st.sem_permits > 0 then
          match st.sem_waiting with
          | (waiter, _, asked, enq) :: rest ->
            st.sem_waiting <- rest;
            st.sem_permits <- st.sem_permits - 1;
            grant_sem t ~tid:waiter ~sem:s ~now ~asked ~enq;
            drain ()
          | [] -> ()
      in
      drain ())
    (sorted_handles t.sems (fun st -> sem_held_count st tid > 0));
  (* 2d. Deques the crashed thread owned are poisoned: their queued work
     may be half-constructed, so pops/steals observe the poison until a
     heal (or the restarted owner pushing again) vouches for it. *)
  List.iter
    (fun dq ->
      let st = deque_state t dq in
      st.dq_poisoned <- true;
      st.dq_poisoned_by <- Some tid)
    (sorted_handles t.deques (fun st -> st.dq_owner = tid));
  (* 3. Break every barrier the crashed thread was a party to (it has
     waited there at least once): release the stranded waiters with an
     error now, and fail all future waits.  Without this, survivors of
     an iterative barrier loop would wait forever for a party that is
     never coming back. *)
  List.iter
    (fun b ->
      let st = barrier_state t b in
      st.broken <- true;
      let stranded =
        List.rev_map fst (List.filter (fun (p, _) -> p <> tid) st.arrived)
        |> List.rev
      in
      st.arrived <- [];
      List.iter
        (fun party ->
          Arbiter.set_active t.arb ~tid:party;
          Engine.wake t.engine ~tid:party ~value:fault
            ~not_before:(max now (Engine.clock t.engine party)))
        stranded)
    (sorted_handles t.barriers (fun st -> Hashtbl.mem st.participants tid));
  (* 4. Joiners of the crashed thread get an error instead of waiting
     forever. *)
  (match Hashtbl.find_opt t.joiners tid with
  | None -> ()
  | Some waiting ->
    Hashtbl.remove t.joiners tid;
    List.iter
      (fun joiner ->
        complete_join_crashed t ~tid:joiner
          ~now:(max now (Engine.clock t.engine joiner)))
      waiting);
  Arbiter.poll t.arb

(* Recoverable crash: the thread will be resurrected, so the world must
   stay waitable-for.  Compared to full containment this (1) does NOT
   mark the thread crashed — joins keep blocking until the restarted
   body exits; (2) does NOT break barriers — the restarted thread will
   re-arrive (its own stale arrival is retracted); (3) still poisons and
   hands off held mutexes, recording the crasher so its clean unlock
   after restart heals them.  Same ascending-handle determinism as
   [on_thread_crash]. *)
let on_thread_crash_recoverable t ~tid =
  Arbiter.thread_finished t.arb ~tid;
  let sorted_handles tbl pred =
    Hashtbl.fold (fun h st acc -> if pred st then h :: acc else acc) tbl []
    |> List.sort compare
  in
  Hashtbl.iter (fun _ st -> remove_from_queue st.queue ~tid) t.mutexes;
  Hashtbl.iter
    (fun _ st ->
      st.cond_waiters <-
        List.filter (fun (w, _, _) -> w <> tid) st.cond_waiters)
    t.conds;
  Hashtbl.iter
    (fun _ st ->
      st.rw_waiting <- List.filter (fun w -> w.rw_tid <> tid) st.rw_waiting)
    t.rwlocks;
  Hashtbl.iter
    (fun _ st ->
      st.sem_waiting <-
        List.filter (fun (w, _, _, _) -> w <> tid) st.sem_waiting)
    t.sems;
  Hashtbl.filter_map_inplace
    (fun _ joiners ->
      match List.filter (fun j -> j <> tid) joiners with
      | [] -> None
      | l -> Some l)
    t.joiners;
  Hashtbl.iter
    (fun _ st -> st.arrived <- List.filter (fun (p, _) -> p <> tid) st.arrived)
    t.barriers;
  let now = Engine.clock t.engine tid in
  List.iter
    (fun m ->
      emit_release t ~tid ~mutex:m ~now;
      let st = mutex_state t m in
      st.poisoned <- true;
      st.poisoned_by <- Some tid;
      st.owner <- None;
      pass_mutex t ~mutex:m ~now)
    (sorted_handles t.mutexes (fun st -> st.owner = Some tid));
  List.iter
    (fun rw ->
      let st = rwlock_state t rw in
      let mode = if st.rw_writer = Some tid then Wr else Rd in
      emit_release_ev t ~tid
        ~obj:(match mode with Wr -> "rwlock_w" | Rd -> "rwlock_r")
        ~handle:rw ~now ~held_since:st.rw_acquired_at;
      st.rw_poisoned <- true;
      st.rw_poisoned_by <- Some tid;
      (match mode with
      | Wr -> st.rw_writer <- None
      | Rd -> st.rw_readers <- List.filter (fun r -> r <> tid) st.rw_readers);
      admit_rw t ~rwlock:rw ~now)
    (sorted_handles t.rwlocks (fun st ->
         st.rw_writer = Some tid || List.mem tid st.rw_readers));
  List.iter
    (fun s ->
      let st = sem_state t s in
      let n = sem_held_count st tid in
      sem_set_held st tid 0;
      st.sem_poisoned <- true;
      st.sem_poisoned_by <- Some tid;
      st.sem_permits <- st.sem_permits + n;
      let rec drain () =
        if st.sem_permits > 0 then
          match st.sem_waiting with
          | (waiter, _, asked, enq) :: rest ->
            st.sem_waiting <- rest;
            st.sem_permits <- st.sem_permits - 1;
            grant_sem t ~tid:waiter ~sem:s ~now ~asked ~enq;
            drain ()
          | [] -> ()
      in
      drain ())
    (sorted_handles t.sems (fun st -> sem_held_count st tid > 0));
  List.iter
    (fun dq ->
      let st = deque_state t dq in
      st.dq_poisoned <- true;
      st.dq_poisoned_by <- Some tid)
    (sorted_handles t.deques (fun st -> st.dq_owner = tid));
  Arbiter.poll t.arb

(* The restarted tid rejoins the arbiter's active set with its preserved
   (monotone) instruction count. *)
let on_thread_restarted t ~tid = Arbiter.thread_started t.arb ~tid

(* Deadlock victim selection over the wait-for graph.  Each blocked
   thread waits on at most one thing, so the graph is functional: mutex
   queue waiter -> owner, joiner -> join target (condition variables
   have no owner and contribute no edge).  Called at a total stall —
   a schedule-independent point for a deterministic runtime — and the
   victim is the cycle node with the lowest Kendo logical time
   ((icount, tid) order), so the choice is deterministic too. *)
let deadlock_victim t =
  let next = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ st ->
      match st.owner with
      | Some o -> Queue.iter (fun (w, _, _) -> Hashtbl.replace next w o) st.queue
      | None -> ())
    t.mutexes;
  Hashtbl.iter
    (fun _ st ->
      (* A blocked rwlock waiter waits on the writer when one holds the
         lock, else on the lowest-tid reader — one representative edge
         keeps the graph functional while still exposing the cycle. *)
      let holder =
        match st.rw_writer with
        | Some w -> Some w
        | None -> (
          match List.sort compare st.rw_readers with
          | r :: _ -> Some r
          | [] -> None)
      in
      match holder with
      | Some h ->
        List.iter (fun w -> Hashtbl.replace next w.rw_tid h) st.rw_waiting
      | None -> ())
    t.rwlocks;
  Hashtbl.iter
    (fun _ st ->
      (* A blocked semaphore waiter waits on the lowest-tid permit
         holder, when there is one. *)
      match
        List.sort compare
          (List.filter_map
             (fun (h, n) -> if n > 0 then Some h else None)
             st.sem_held)
      with
      | h :: _ ->
        List.iter (fun (w, _, _, _) -> Hashtbl.replace next w h) st.sem_waiting
      | [] -> ())
    t.sems;
  Hashtbl.iter
    (fun target joiners ->
      List.iter (fun j -> Hashtbl.replace next j target) joiners)
    t.joiners;
  let color = Hashtbl.create 16 in
  let run = ref 0 in
  let cyc = ref [] in
  let starts =
    Hashtbl.fold (fun n _ acc -> n :: acc) next [] |> List.sort compare
  in
  List.iter
    (fun start ->
      incr run;
      let rec chase node =
        match Hashtbl.find_opt color node with
        | Some r when r = !run ->
          (* back-edge into this walk: the loop from [node] is a cycle *)
          let rec loop x acc =
            let nx = Hashtbl.find next x in
            if nx = node then x :: acc else loop nx (x :: acc)
          in
          cyc := loop node [] @ !cyc
        | Some _ -> ()
        | None ->
          Hashtbl.replace color node !run;
          (match Hashtbl.find_opt next node with
          | Some nx -> chase nx
          | None -> ());
          Hashtbl.replace color node 0
      in
      chase start)
    starts;
  match !cyc with
  | [] -> None
  | hd :: tl ->
    let key tid = (Engine.icount t.engine tid, tid) in
    Some (List.fold_left (fun b x -> if key x < key b then x else b) hd tl)

let poll t = Arbiter.poll t.arb

let holder t ~mutex = (mutex_state t mutex).owner

let mutex_poisoned t ~mutex = (mutex_state t mutex).poisoned

let mutex_poisoned_by t ~mutex = (mutex_state t mutex).poisoned_by

let barrier_broken t ~barrier = (barrier_state t barrier).broken

let crashed t ~tid = Hashtbl.mem t.crashed tid

let joining_target t ~tid =
  Hashtbl.fold
    (fun target joiners acc ->
      if acc = None && List.mem tid joiners then Some target else acc)
    t.joiners None

let waiters t ~cond =
  List.map (fun (tid, _, _) -> tid) (cond_state t cond).cond_waiters

let rw_holders t ~rwlock =
  let st = rwlock_state t rwlock in
  match st.rw_writer with
  | Some w -> `Writer w
  | None -> (
    match st.rw_readers with [] -> `Free | rs -> `Readers (List.sort compare rs))

let rw_waiters t ~rwlock =
  List.map
    (fun w -> (w.rw_tid, match w.rw_mode with Rd -> `Rd | Wr -> `Wr))
    (rwlock_state t rwlock).rw_waiting

let rwlock_poisoned t ~rwlock = (rwlock_state t rwlock).rw_poisoned

let sem_permits t ~sem = (sem_state t sem).sem_permits

let sem_waiters t ~sem =
  List.map (fun (tid, _, _, _) -> tid) (sem_state t sem).sem_waiting

let sem_poisoned t ~sem = (sem_state t sem).sem_poisoned

let deque_owner t ~deque = (deque_state t deque).dq_owner

let deque_size t ~deque = List.length (deque_state t deque).dq_items

let deque_poisoned t ~deque = (deque_state t deque).dq_poisoned
