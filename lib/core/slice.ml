type t = {
  id : int;
  tid : int;
  mutable mods : Rfdet_mem.Diff.t;
  time : Rfdet_util.Vclock.t;
  bytes : int;
  mutable freed : bool;
  mutable checksum : int;
}

let free t =
  t.freed <- true;
  t.mods <- Rfdet_mem.Diff.empty

(* FNV-1a-style mixing confined to OCaml's 63-bit int range. *)
let mix h x = ((h lxor x) * 0x100000001b3) land max_int

let mix_string h s =
  let n = String.length s in
  let h = ref h in
  let i = ref 0 in
  while !i + 8 <= n do
    let w = String.get_int64_le s !i in
    h := mix !h (Int64.to_int (Int64.logand w 0xFFFFFFFFL));
    h := mix !h (Int64.to_int (Int64.shift_right_logical w 32));
    i := !i + 8
  done;
  while !i < n do
    h := mix !h (Char.code s.[!i]);
    incr i
  done;
  !h

let compute_checksum ~tid ~mods ~time =
  let h = ref (mix 0x27d4eb2f tid) in
  List.iter (fun c -> h := mix !h c) (Rfdet_util.Vclock.to_list time);
  List.iter
    (fun (r : Rfdet_mem.Diff.run) ->
      h := mix !h r.addr;
      h := mix_string !h r.data)
    mods;
  !h

let checksum_valid t =
  t.freed || t.checksum = compute_checksum ~tid:t.tid ~mods:t.mods ~time:t.time

let rehash t =
  t.checksum <- compute_checksum ~tid:t.tid ~mods:t.mods ~time:t.time

let make ~id ~tid ~mods ~time =
  {
    id;
    tid;
    mods;
    time;
    bytes = Rfdet_mem.Diff.byte_count mods;
    freed = false;
    checksum = compute_checksum ~tid ~mods ~time;
  }

let overhead_bytes = 64

let footprint t = overhead_bytes + t.bytes

let pp ppf t =
  Format.fprintf ppf "slice#%d tid=%d time=%a bytes=%d%s" t.id t.tid
    Rfdet_util.Vclock.pp t.time t.bytes
    (if t.freed then " (freed)" else "")
