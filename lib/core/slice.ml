type t = {
  id : int;
  tid : int;
  mutable mods : Rfdet_mem.Diff.t;
  time : Rfdet_util.Vclock.t;
  bytes : int;
  mutable freed : bool;
}

let free t =
  t.freed <- true;
  t.mods <- Rfdet_mem.Diff.empty

let make ~id ~tid ~mods ~time =
  { id; tid; mods; time; bytes = Rfdet_mem.Diff.byte_count mods; freed = false }

let overhead_bytes = 64

let footprint t = overhead_bytes + t.bytes

let pp ppf t =
  Format.fprintf ppf "slice#%d tid=%d time=%a bytes=%d%s" t.id t.tid
    Rfdet_util.Vclock.pp t.time t.bytes
    (if t.freed then " (freed)" else "")
