module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Sync = Rfdet_kendo.Sync
module Layout = Rfdet_mem.Layout
module Vclock = Rfdet_util.Vclock

let name = "dlrc-model"

let clock_width = 64

(* A model slice: exact byte writes, in write order. *)
type mslice = {
  s_tid : int;
  s_mods : (int * int) list;  (* (addr, byte value), ascending addr *)
  s_time : Vclock.t;
}

type mstate = {
  tid : int;
  mem : (int, int) Hashtbl.t;  (* byte map: private view of shared region *)
  stack_mem : (int, int) Hashtbl.t;
  time : Vclock.t;
  mutable seen : mslice list;  (* slice pointers, reversed append order *)
  started : (int, int) Hashtbl.t;  (* addr -> value at slice start *)
  mutable final_stamp : Vclock.t option;
  mutable final_seen : mslice list;
}

type t = {
  engine : Engine.t;
  states : (int, mstate) Hashtbl.t;
  last_release : (Sync.obj, int * Vclock.t) Hashtbl.t;
  mutable sync : Sync.t option;
  checked : bool;
      (* assert the Figure-5 redundancy-elimination property on every
         propagation: a slice never enters a seen-list twice *)
}

exception Propagated_twice of string

let sync_exn t = match t.sync with Some s -> s | None -> assert false

let state t tid =
  match Hashtbl.find_opt t.states tid with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "dlrc-model: unknown tid %d" tid)

let read_byte ms addr =
  Option.value (Hashtbl.find_opt ms.mem addr) ~default:0

let write_byte ms addr v =
  (* remember the slice-start value on first touch *)
  if not (Hashtbl.mem ms.started addr) then
    Hashtbl.replace ms.started addr (read_byte ms addr);
  Hashtbl.replace ms.mem addr (v land 0xff)

(* Close the current slice: exact modification list = touched bytes whose
   final value differs from their slice-start value. *)
let close_slice ms =
  let mods =
    Hashtbl.fold
      (fun addr start acc ->
        let now = read_byte ms addr in
        if now <> start then (addr, now) :: acc else acc)
      ms.started []
    |> List.sort compare
  in
  Hashtbl.reset ms.started;
  if mods <> [] then begin
    let s = { s_tid = ms.tid; s_mods = mods; s_time = Vclock.copy ms.time } in
    ms.seen <- s :: ms.seen
  end

(* Figure 5, naively: walk the whole remote list in order.  Only the
   lower-limit filter stands between this full rescan and applying a
   slice twice; with [checked] that is asserted per append (physical
   membership — slices are shared by pointer, as in the runtime). *)
let propagate ~checked ~(from_slices : mslice list) ~(into : mstate) ~upper
    ~lower =
  let in_order = List.rev from_slices in
  List.iter
    (fun s ->
      if Vclock.lt s.s_time upper && not (Vclock.lt s.s_time lower) then begin
        if checked && List.memq s into.seen then
          raise
            (Propagated_twice
               (Printf.sprintf
                  "dlrc-model: slice of tid %d (time %s) propagated twice \
                   into tid %d"
                  s.s_tid
                  (String.concat ","
                     (List.map string_of_int (Vclock.to_list s.s_time)))
                  into.tid));
        List.iter (fun (addr, v) -> Hashtbl.replace into.mem addr v) s.s_mods;
        into.seen <- s :: into.seen
      end)
    in_order

let do_release t ~tid ~obj =
  let ms = state t tid in
  close_slice ms;
  let stamp = Vclock.copy ms.time in
  ignore (Vclock.tick ms.time tid);
  Hashtbl.replace t.last_release obj (tid, stamp)

let do_acquire t ~tid ~obj =
  let ms = state t tid in
  close_slice ms;
  let lower = Vclock.copy ms.time in
  ignore (Vclock.tick ms.time tid);
  match Hashtbl.find_opt t.last_release obj with
  | None -> ()
  | Some (last_tid, last_time) ->
    Vclock.join ms.time last_time;
    if last_tid <> tid then begin
      let upper = Vclock.copy ms.time in
      let from = state t last_tid in
      let from_slices =
        match from.final_stamp with
        | Some _ -> from.final_seen
        | None -> from.seen
      in
      propagate ~checked:t.checked ~from_slices ~into:ms ~upper ~lower
    end

let do_barrier t ~tids =
  let states = List.map (state t) tids in
  List.iter close_slice states;
  let joint = Vclock.create clock_width in
  List.iter (fun ms -> Vclock.join joint ms.time) states;
  let sorted = List.sort compare tids in
  let leader = state t (List.hd sorted) in
  let lower = Vclock.copy leader.time in
  Vclock.join leader.time joint;
  ignore (Vclock.tick leader.time leader.tid);
  let upper = Vclock.copy leader.time in
  List.iter
    (fun tid ->
      if tid <> leader.tid then
        propagate ~checked:t.checked ~from_slices:(state t tid).seen ~into:leader ~upper ~lower)
    sorted;
  List.iter
    (fun ms ->
      if ms.tid <> leader.tid then begin
        Hashtbl.reset ms.mem;
        Hashtbl.iter (fun a v -> Hashtbl.replace ms.mem a v) leader.mem;
        ms.seen <- leader.seen;
        Vclock.join ms.time joint;
        ignore (Vclock.tick ms.time ms.tid)
      end)
    states

let do_spawned t ~parent ~child =
  let ps = state t parent in
  close_slice ps;
  let stamp = Vclock.copy ps.time in
  ignore (Vclock.tick ps.time parent);
  let time = Vclock.copy stamp in
  ignore (Vclock.tick time child);
  let mem = Hashtbl.copy ps.mem in
  Hashtbl.replace t.states child
    {
      tid = child;
      mem;
      stack_mem = Hashtbl.create 16;
      time;
      seen = ps.seen;
      started = Hashtbl.create 16;
      final_stamp = None;
      final_seen = [];
    }

let do_exited t ~tid =
  let ms = state t tid in
  close_slice ms;
  ms.final_stamp <- Some (Vclock.copy ms.time);
  ms.final_seen <- ms.seen;
  ignore (Vclock.tick ms.time tid)

let do_joined t ~tid ~target =
  let ms = state t tid in
  let tg = state t target in
  close_slice ms;
  let lower = Vclock.copy ms.time in
  ignore (Vclock.tick ms.time tid);
  (match tg.final_stamp with
  | Some f -> Vclock.join ms.time f
  | None -> invalid_arg "dlrc-model: join before exit");
  let upper = Vclock.copy ms.time in
  propagate ~checked:t.checked ~from_slices:tg.final_seen ~into:ms ~upper ~lower

let handle t ~tid (op : Op.t) : Engine.outcome =
  let sync = sync_exn t in
  let c = Engine.cost t.engine in
  let ms = state t tid in
  match op with
  | Op.Load { addr; width } ->
    Engine.advance t.engine tid c.Cost.load;
    let mem = if Layout.is_stack addr then ms.stack_mem else ms.mem in
    let byte a = Option.value (Hashtbl.find_opt mem a) ~default:0 in
    let v =
      match width with
      | Op.W8 -> byte addr
      | Op.W64 ->
        let acc = ref 0 in
        for i = 7 downto 0 do
          acc := (!acc lsl 8) lor byte (addr + i)
        done;
        !acc
    in
    Done v
  | Op.Store { addr; value; width } ->
    Engine.advance t.engine tid c.Cost.store;
    (if Layout.is_stack addr then
       match width with
       | Op.W8 -> Hashtbl.replace ms.stack_mem addr (value land 0xff)
       | Op.W64 ->
         for i = 0 to 7 do
           Hashtbl.replace ms.stack_mem (addr + i) ((value asr (8 * i)) land 0xff)
         done
     else
       match width with
       | Op.W8 -> write_byte ms addr value
       | Op.W64 ->
         for i = 0 to 7 do
           write_byte ms (addr + i) ((value asr (8 * i)) land 0xff)
         done);
    Done 0
  | Op.Mutex_create -> Sync.mutex_create sync ~tid
  | Op.Cond_create -> Sync.cond_create sync ~tid
  | Op.Barrier_create parties -> Sync.barrier_create sync ~tid ~parties
  | Op.Lock m -> Sync.lock sync ~tid ~mutex:m
  | Op.Trylock m -> Sync.trylock sync ~tid ~mutex:m
  | Op.Lock_timed { mutex; timeout } -> Sync.lock_timed sync ~tid ~mutex ~timeout
  | Op.Mutex_heal m -> Sync.heal sync ~tid ~handle:m
  | Op.Unlock m -> Sync.unlock sync ~tid ~mutex:m
  | Op.Cond_wait { cond; mutex } -> Sync.cond_wait sync ~tid ~cond ~mutex
  | Op.Cond_signal cond -> Sync.cond_signal sync ~tid ~cond
  | Op.Cond_broadcast cond -> Sync.cond_broadcast sync ~tid ~cond
  | Op.Barrier_wait b -> Sync.barrier_wait sync ~tid ~barrier:b
  | Op.Atomic { addr; rmw } ->
    Sync.rmw sync ~tid ~action:(fun ~now:_ ->
        let obj = Sync.Atomic_obj addr in
        do_acquire t ~tid ~obj;
        let byte a = Option.value (Hashtbl.find_opt ms.mem a) ~default:0 in
        let current = ref 0 in
        for i = 7 downto 0 do
          current := (!current lsl 8) lor byte (addr + i)
        done;
        let prev, next = Op.apply_rmw rmw ~current:!current in
        for i = 0 to 7 do
          write_byte ms (addr + i) ((next asr (8 * i)) land 0xff)
        done;
        do_release t ~tid ~obj;
        (prev, 0))
  | Op.Spawn body -> Sync.spawn sync ~tid ~body
  | Op.Join target -> Sync.join sync ~tid ~target
  | Op.Rwlock_create -> Sync.rwlock_create sync ~tid
  | Op.Rdlock rw -> Sync.rdlock sync ~tid ~rwlock:rw
  | Op.Wrlock rw -> Sync.wrlock sync ~tid ~rwlock:rw
  | Op.Rwunlock rw -> Sync.rwunlock sync ~tid ~rwlock:rw
  | Op.Sem_create permits -> Sync.sem_create sync ~tid ~permits
  | Op.Sem_acquire s -> Sync.sem_acquire sync ~tid ~sem:s
  | Op.Sem_post s -> Sync.sem_post sync ~tid ~sem:s
  | Op.Deque_create -> Sync.deque_create sync ~tid
  | Op.Deque_push { deque; value } -> Sync.deque_push sync ~tid ~deque ~value
  | Op.Deque_pop dq -> Sync.deque_pop sync ~tid ~deque:dq
  | Op.Deque_steal own -> Sync.deque_steal sync ~tid ~own
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let make_gen ~checked engine : Engine.policy =
  let t =
    {
      engine;
      states = Hashtbl.create 8;
      last_release = Hashtbl.create 32;
      sync = None;
      checked;
    }
  in
  Hashtbl.replace t.states 0
    {
      tid = 0;
      mem = Hashtbl.create 64;
      stack_mem = Hashtbl.create 16;
      time = Vclock.create clock_width;
      seen = [];
      started = Hashtbl.create 16;
      final_stamp = None;
      final_seen = [];
    };
  let hooks =
    {
      Sync.acquire = (fun ~tid ~obj ~now:_ -> do_acquire t ~tid ~obj; 0);
      release = (fun ~tid ~obj ~now:_ -> do_release t ~tid ~obj; 0);
      barrier_all = (fun ~tids ~barrier:_ ~now:_ -> do_barrier t ~tids; 0);
      spawned = (fun ~parent ~child ~now:_ -> do_spawned t ~parent ~child);
      exited = (fun ~tid -> do_exited t ~tid);
      joined = (fun ~tid ~target ~now:_ -> do_joined t ~tid ~target; 0);
    }
  in
  let sync = Sync.create engine hooks in
  t.sync <- Some sync;
  {
    Engine.policy_name = name;
    handle = (fun ~tid op -> handle t ~tid op);
    on_engine_op = (fun ~tid:_ _ outcome -> outcome);
    on_thread_exit = (fun ~tid -> Sync.on_thread_exit sync ~tid);
    on_thread_crash = Engine.escalate_crash;
    on_step = (fun () -> Sync.poll sync);
    on_finish = (fun () -> ());
  }

let make engine = make_gen ~checked:false engine

let make_checked engine = make_gen ~checked:true engine
