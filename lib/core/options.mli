(** RFDet runtime configuration.

    The two monitor modes and the four optimizations of the paper's
    Section 4, plus the metadata-space sizing that drives garbage
    collection (Section 4.5 / Table 1). *)

type monitor =
  | Instrumentation
      (** RFDet-ci: compile-time store instrumentation — every store runs
          the Figure-4 check; first touch of a page in a slice pays a
          snapshot memcpy. *)
  | Page_fault
      (** RFDet-pf: mprotect the shared region at slice start; the first
          write to each page traps, snapshots and unprotects. *)

type t = {
  monitor : monitor;
  slice_merging : bool;
      (** do not end the slice when re-acquiring a variable last released
          by this same thread (Section 4.5) *)
  prelock : bool;
      (** overlap memory propagation with lock waiting via the
          deterministic reservation order (Section 4.5) *)
  lazy_writes : bool;
      (** defer writing propagated modifications until the target page is
          actually accessed (Section 4.5) *)
  lazy_min_bytes : int;
      (** only defer pages carrying at least this many pending bytes;
          smaller payloads are cheaper to apply eagerly than to fault in
          later (refinement over the paper: the all-pages policy is
          strictly worse whenever payloads are small) *)
  metadata_capacity : int;
      (** metadata space size in bytes (paper default 256 MB) *)
  gc_threshold : float;
      (** trigger GC at this fraction of capacity (paper: 0.9) *)
  skip_premain_monitoring : bool;
      (** do not monitor the main thread before the first fork
          (Section 4.1, "Thread Create and Join") *)
  verify_metadata : bool;
      (** verify each slice's self-checksum before applying it at
          propagation (and audit all live slices at run end); detected
          corruption is quarantined and re-derived from the publisher's
          space, or escalated as a deterministic fatal error when
          re-derivation is impossible.  Default on. *)
  bug_drop_window : (int * int) option;
      (** {b test only} — seeded visibility bug for validating the DLRC
          conformance oracle ([Rfdet_check.Oracle]).  While the engine's
          global operation counter is in [\[lo, hi)], propagation silently
          drops every slice it should have applied.  The global counter is
          the one quantity in the runtime that depends on the
          interleaving, so the bug surfaces only under some schedules —
          exactly the kind of defect seed-sampling misses and systematic
          exploration must catch.  [None] (the default, and the only
          sound value) disables it. *)
  bug_lost_signal : (int * int) option;
      (** {b test only} — seeded lost-wakeup bug for validating the
          explorer against condition-variable schedules.  While the
          engine's global operation counter is in [\[lo, hi)], every
          [cond_signal] takes its deterministic turn but the wakeup is
          swallowed: the lowest-stamp waiter stays queued, exactly the
          classic missed-signal defect.  Whether a signal lands in the
          window depends on the interleaving, so only some schedules
          expose the hang/divergence.  [None] (the default, and the only
          sound value) disables it. *)
}

val default : t
(** RFDet-ci with every optimization on, 256 MB metadata, 0.9 GC
    threshold — the configuration of the headline results. *)

val ci : t
val pf : t

val baseline_no_opt : t
(** Both prelock and lazy writes off — the Figure 9 baseline. *)

val name : t -> string
(** "rfdet-ci", "rfdet-pf", with "-noopt"/"-prelock"/"-lazy" suffixes. *)
