(** Slices: the unit of memory-modification propagation (Section 4.2).

    A slice is a synchronization-free span of one thread's execution.
    It is the triple <tid, modifications, timestamp>: the modifications
    are a byte-granularity list produced by page diffing, and the
    timestamp is the vector clock the thread held while executing the
    span.  The atomic property — every access in a slice has the same
    happens-before relation to anything outside it — is what makes the
    slice a sound propagation unit. *)

type t = {
  id : int;  (** unique, allocation order — diagnostics only *)
  tid : int;
  mutable mods : Rfdet_mem.Diff.t;  (** cleared when the GC frees the slice *)
  time : Rfdet_util.Vclock.t;
  bytes : int;  (** cached [Diff.byte_count mods] *)
  mutable freed : bool;  (** reclaimed by the metadata GC *)
  mutable checksum : int;
      (** self-verifying digest of <tid, mods, time>, computed at [make];
          [checksum_valid] recomputes and compares, so any later silent
          damage to the stored modification bytes is detectable at
          propagation time *)
}

val make : id:int -> tid:int -> mods:Rfdet_mem.Diff.t -> time:Rfdet_util.Vclock.t -> t

(** [free t] marks the slice reclaimed and drops its modification list.
    Slice-pointer lists keep the (now tiny) record so that resume indices
    stay stable; propagation skips freed slices. *)
val free : t -> unit

val compute_checksum :
  tid:int -> mods:Rfdet_mem.Diff.t -> time:Rfdet_util.Vclock.t -> int
(** The digest stored in [checksum]: FNV-1a-style over the thread id,
    the vector-clock components and every run's address and bytes. *)

val checksum_valid : t -> bool
(** Recompute and compare.  Freed slices (empty mods by construction)
    are vacuously valid. *)

val rehash : t -> unit
(** Recompute [checksum] from the current contents — used after a
    quarantined slice is re-derived from the publisher's space. *)

val overhead_bytes : int
(** Fixed metadata footprint per slice record. *)

val footprint : t -> int
(** [overhead_bytes + bytes]. *)

val pp : Format.formatter -> t -> unit
