type monitor = Instrumentation | Page_fault

type t = {
  monitor : monitor;
  slice_merging : bool;
  prelock : bool;
  lazy_writes : bool;
  lazy_min_bytes : int;
  metadata_capacity : int;
  gc_threshold : float;
  skip_premain_monitoring : bool;
  verify_metadata : bool;
  bug_drop_window : (int * int) option;
  bug_lost_signal : (int * int) option;
}

let mb = 1024 * 1024

let default =
  {
    monitor = Instrumentation;
    slice_merging = true;
    prelock = true;
    lazy_writes = true;
    lazy_min_bytes = 512;
    metadata_capacity = 256 * mb;
    gc_threshold = 0.9;
    skip_premain_monitoring = true;
    verify_metadata = true;
    bug_drop_window = None;
    bug_lost_signal = None;
  }

let ci = default

let pf = { default with monitor = Page_fault }

let baseline_no_opt = { default with prelock = false; lazy_writes = false }

let name t =
  let base =
    match t.monitor with
    | Instrumentation -> "rfdet-ci"
    | Page_fault -> "rfdet-pf"
  in
  match t.prelock, t.lazy_writes with
  | true, true -> base
  | false, false -> base ^ "-noopt"
  | true, false -> base ^ "-prelock"
  | false, true -> base ^ "-lazy"
