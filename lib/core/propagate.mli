(** Memory-modification propagation — the algorithm of the paper's
    Figure 5, plus the lazy-writes variant.

    At an acquire that synchronizes with a release in thread [from], every
    slice in [from]'s slice-pointer list whose timestamp is
    - strictly before [upper] (the vector time of the slice that will
      succeed the acquire — only happens-before slices propagate), and
    - {e not} strictly before [lower] (the timestamp of the slice that
      preceded the acquire — those were already seen: redundancy
      elimination)
    is applied to [into]'s memory and appended to [into]'s slice-pointer
    list (which is what makes propagation transitive).

    Conflicts (concurrent slices writing the same bytes) are resolved by
    application order: the remote modification overwrites the local one,
    except that a redundant remote write never made it into any slice in
    the first place (byte-granularity diffing), yielding the paper's
    "remote wins unless redundant" policy of Section 4.6.

    With [lazy_writes], modifications are queued per page and the page is
    protected; the runtime's access paths apply them on first touch. *)

val run :
  ?drop:bool ->
  ?obs:Rfdet_obs.Sink.t ->
  ?at:int ->
  cost:Rfdet_sim.Cost.t ->
  opts:Options.t ->
  prof:Rfdet_sim.Profile.t ->
  from:Tstate.t ->
  upto:int ->
  into:Tstate.t ->
  upper:Rfdet_util.Vclock.t ->
  lower:Rfdet_util.Vclock.t ->
  unit ->
  int
(** Returns the simulated cycles the propagation costs (scan + byte
    application, or scan + page-protection when lazy).

    [obs] (default disabled) receives a [Prop_page] event per page and a
    [Propagate] event per applied slice, stamped with the acquirer's tid
    and vector clock at simulated time [at] (the grant time, default 0).

    [drop] (test only, default false) silently discards every slice the
    filter selected instead of applying it — the seeded visibility bug of
    [Options.bug_drop_window], used to prove the conformance oracle can
    catch real divergence.

    With [opts.verify_metadata], each slice selected for application is
    checksum-verified first ([Slice.checksum_valid]); a corrupted slice
    is quarantined and re-derived from [from]'s live space (counted in
    [Profile.quarantines]/[corruptions_detected], traced as [Recovery]
    "quarantine"/"rederive" events), and the run fails with
    [Engine.Fatal] when the re-derived bytes no longer match.

    [upto] is the length of [from]'s slice-pointer list recorded at the
    release this acquire synchronizes with; entries beyond it either
    carry timestamps not ordered before [upper] or have already been seen
    by [into], so the scan stops there.  Combined with [into]'s resume
    index for [from], every (from, into, slice) triple is examined at
    most once over a whole run. *)
