module Vclock = Rfdet_util.Vclock
module Vec = Rfdet_util.Vec
module Diff = Rfdet_mem.Diff
module Space = Rfdet_mem.Space
module Cost = Rfdet_sim.Cost
module Profile = Rfdet_sim.Profile

let scan_cost_per_slice = 2

(* Self-verifying metadata: recompute the slice digest before applying.
   A mismatch means the stored modification bytes were silently damaged
   (Engine.I_corrupt, or a real memory error in a deployment).  The
   slice is quarantined and re-derived from the publisher's live space;
   when the publisher has since overwritten those addresses the payload
   is unrecoverable and the run must fail loudly and deterministically
   rather than propagate garbage. *)
let verify ~obs ~at ~cost ~(prof : Profile.t) ~(from : Tstate.t)
    ~(into : Tstate.t) (s : Slice.t) =
  let check_cycles = (s.bytes / 8) + 1 in
  if Slice.checksum_valid s then check_cycles
  else begin
    prof.corruptions_detected <- prof.corruptions_detected + 1;
    prof.quarantines <- prof.quarantines + 1;
    let rederived =
      List.map
        (fun (r : Diff.run) ->
          {
            r with
            Diff.data =
              Space.read_string from.shared ~addr:r.addr
                ~len:(String.length r.data);
          })
        s.mods
    in
    let repair_cycles = (s.bytes * cost.Cost.apply_byte) + check_cycles in
    let emit action cycles =
      if Rfdet_obs.Sink.enabled obs then
        Rfdet_obs.Sink.emit obs ~tid:into.tid ~time:at
          (Rfdet_obs.Trace.Recovery { action; target = s.id; attempt = 1; cycles })
    in
    emit "quarantine" 0;
    if
      Slice.compute_checksum ~tid:s.tid ~mods:rederived ~time:s.time
      = s.checksum
    then begin
      (* the publisher's space still holds the slice's exact bytes *)
      s.mods <- rederived;
      emit "rederive" repair_cycles;
      check_cycles + repair_cycles
    end
    else
      raise
        (Rfdet_sim.Engine.Fatal
           (Failure
              (Printf.sprintf
                 "metadata corruption: slice #%d (tid %d, %d bytes) failed \
                  checksum verification and could not be re-derived from the \
                  publisher's space"
                 s.id s.tid s.bytes)))
  end

let apply_eager ~cost ~(into : Tstate.t) (s : Slice.t) =
  Diff.apply into.shared s.mods;
  s.bytes * cost.Cost.apply_byte

let apply_lazy ~cost ~(opts : Options.t) ~(into : Tstate.t) (s : Slice.t) =
  (* Group the slice's runs by page.  Pages carrying a substantial
     payload are queued and access-revoked so the first touch faults the
     updates in; small payloads are cheaper to write now than to trap on
     later, so they apply eagerly (see Options.lazy_min_bytes). *)
  let cycles = ref 0 in
  let by_page = Hashtbl.create 8 in
  List.iter
    (fun (r : Diff.run) ->
      let page = Rfdet_mem.Page.id_of_addr r.addr in
      let existing = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
      Hashtbl.replace by_page page (r :: existing))
    s.mods;
  let pages = Hashtbl.fold (fun p rs acc -> (p, List.rev rs) :: acc) by_page [] in
  let pages = List.sort compare pages in
  let deferred = ref false in
  List.iter
    (fun (page, runs) ->
      let bytes =
        List.fold_left (fun acc (r : Diff.run) -> acc + String.length r.data) 0 runs
      in
      (* A page that already has deferred updates must keep receiving
         them in order, whatever the payload size. *)
      if bytes >= opts.lazy_min_bytes || Tstate.has_pending into page then begin
        Tstate.add_pending into page runs;
        Space.protect into.shared page Space.Prot_none;
        deferred := true;
        cycles := !cycles + 25
      end
      else begin
        Diff.apply_runs_on_page into.shared ~page_id:page runs;
        cycles := !cycles + (bytes * cost.Cost.apply_byte)
      end)
    pages;
  (* one mprotect call covers the whole deferred page set *)
  if !deferred then cycles := !cycles + cost.Cost.mprotect_page;
  !cycles

(* Per-page byte totals of a slice's modification list, page id
   ascending — the payload of the trace's [Prop_page] events. *)
let pages_of_mods mods =
  let by_page = Hashtbl.create 8 in
  List.iter
    (fun (r : Diff.run) ->
      let page = Rfdet_mem.Page.id_of_addr r.addr in
      let existing = Option.value (Hashtbl.find_opt by_page page) ~default:0 in
      Hashtbl.replace by_page page (existing + String.length r.data))
    mods;
  Hashtbl.fold (fun p b acc -> (p, b) :: acc) by_page []
  |> List.sort compare

let run ?(drop = false) ?(obs = Rfdet_obs.Sink.null) ?(at = 0) ~cost
    ~(opts : Options.t) ~(prof : Profile.t) ~(from : Tstate.t) ~(upto : int)
    ~(into : Tstate.t) ~upper ~lower () =
  assert (from.tid <> into.tid);
  let cycles = ref 0 in
  let start = Tstate.resume_index into ~from:from.tid in
  Vec.iter_range from.slices ~from:start ~until:upto ~f:(fun (s : Slice.t) ->
      if not s.freed then begin
        cycles := !cycles + scan_cost_per_slice;
        if Vclock.lt s.time upper && not (Vclock.lt s.time lower) then begin
          if drop then
            (* Options.bug_drop_window active (test only): lose the slice
               — neither applied nor recorded, and the resume index still
               advances, so it is gone for good. *)
            ()
          else begin
            if opts.verify_metadata then
              cycles := !cycles + verify ~obs ~at ~cost ~prof ~from ~into s;
            let apply_cycles =
              if opts.lazy_writes then apply_lazy ~cost ~opts ~into s
              else apply_eager ~cost ~into s
            in
            cycles := !cycles + apply_cycles;
            Tstate.append_slice into s;
            prof.slices_propagated <- prof.slices_propagated + 1;
            prof.bytes_propagated <- prof.bytes_propagated + s.bytes;
            if Rfdet_obs.Sink.enabled obs then begin
              let vc = Array.of_list (Vclock.to_list into.time) in
              let pages = pages_of_mods s.mods in
              List.iter
                (fun (page, bytes) ->
                  Rfdet_obs.Sink.emit obs ~tid:into.tid ~time:at ~vc
                    (Rfdet_obs.Trace.Prop_page { page; bytes }))
                pages;
              Rfdet_obs.Sink.emit obs ~tid:into.tid ~time:at ~vc
                (Rfdet_obs.Trace.Propagate
                   {
                     slice = s.id;
                     src = from.tid;
                     pages = List.length pages;
                     bytes = s.bytes;
                     cycles = apply_cycles;
                   })
            end
          end
        end
      end);
  if upto > start then Tstate.set_resume_index into ~from:from.tid upto;
  !cycles
