module Engine = Rfdet_sim.Engine
module Cost = Rfdet_sim.Cost
module Op = Rfdet_sim.Op
module Profile = Rfdet_sim.Profile
module Sync = Rfdet_kendo.Sync
module Space = Rfdet_mem.Space
module Layout = Rfdet_mem.Layout
module Page = Rfdet_mem.Page
module Diff = Rfdet_mem.Diff
module Vclock = Rfdet_util.Vclock

(* The vector-clock width.  Thread ids index clock components, so this
   bounds the number of threads a single run may create.  Kept modest:
   clock joins are O(width) and happen at every synchronization. *)
let max_threads = 64

type t = {
  engine : Engine.t;
  opts : Options.t;
  meta : Metadata.t;
  states : (int, Tstate.t) Hashtbl.t;
  last_release : (Sync.obj, int * Vclock.t * int) Hashtbl.t;
  (* lastTid, lastTime, and the releaser's slice-list length at the
     release — the propagation scan bound *)
  mutable sync : Sync.t option;  (* tied after creation (hooks need [t]) *)
  mutable main_forked : bool;
}

let name opts = Options.name opts

let state t ~tid =
  match Hashtbl.find_opt t.states tid with
  | Some ts -> ts
  | None -> invalid_arg (Printf.sprintf "Rfdet_runtime: unknown tid %d" tid)

let metadata t = t.meta

let iter_states t ~f = Hashtbl.iter (fun tid ts -> f ~tid ts) t.states

let last_release t obj = Hashtbl.find_opt t.last_release obj

(* Options.bug_drop_window (test only): the seeded visibility bug is
   active while the engine's global op counter — the one
   schedule-dependent quantity in the runtime — is inside the window. *)
let bug_drop_active t =
  match t.opts.Options.bug_drop_window with
  | None -> false
  | Some (lo, hi) ->
    let ops = Engine.ops_executed t.engine in
    ops >= lo && ops < hi

(* Options.bug_lost_signal (test only): same window mechanism, but the
   defect is a swallowed cond_signal wakeup. *)
let bug_lost_active t =
  match t.opts.Options.bug_lost_signal with
  | None -> false
  | Some (lo, hi) ->
    let ops = Engine.ops_executed t.engine in
    ops >= lo && ops < hi

let clock_size _ = max_threads

let sync_exn t = match t.sync with Some s -> s | None -> assert false

let sync = sync_exn

let prof t = Engine.profile t.engine

let cost t = Engine.cost t.engine

let obs t = Engine.obs t.engine

let vc_of (ts : Tstate.t) = Array.of_list (Vclock.to_list ts.time)

(* ------------------------------------------------------------------ *)
(* Lazy writes: apply a page's queued propagated runs on first touch.  *)
(* ------------------------------------------------------------------ *)

(* Apply pending runs in arrival order (so the latest propagated value
   wins), but charge only one write per distinct byte — the whole point
   of postponing the writes (Section 4.5, "Lazy Writes"). *)
let flush_pending ?(bulk = false) t (ts : Tstate.t) page =
  match Tstate.pending_runs ts page with
  | [] -> 0
  | runs ->
    let p = prof t in
    if not bulk then p.page_faults <- p.page_faults + 1;
    let touched = Metadata.alloc_page_buf t.meta in
    Bytes.fill touched 0 Page.size '\000';
    let distinct = ref 0 in
    (* Own the page once, then blit each run; the bitmap still charges
       one simulated write per distinct byte. *)
    let data = Space.own_page ts.shared page in
    List.iter
      (fun (r : Diff.run) ->
        let base = Page.offset_of_addr r.addr in
        let len = String.length r.data in
        Bytes.blit_string r.data 0 data base len;
        for i = base to base + len - 1 do
          if Bytes.get touched i = '\000' then begin
            Bytes.set touched i '\001';
            incr distinct
          end
        done)
      runs;
    Metadata.release_page_buf t.meta touched;
    Space.protect ts.shared page Space.Prot_rw;
    let c = cost t in
    let trap = if bulk then 50 else c.Cost.page_fault in
    trap + (!distinct * c.Cost.apply_byte)

(* Bulk application (barrier merge, pre-fork): the runtime walks the
   pending set directly — no traps are taken. *)
let flush_all_pending t (ts : Tstate.t) =
  List.fold_left
    (fun acc page -> acc + flush_pending ~bulk:true t ts page)
    0 (Tstate.pending_pages ts)

(* ------------------------------------------------------------------ *)
(* Slices                                                              *)
(* ------------------------------------------------------------------ *)

(* Begin a new slice.  Under the page-fault monitor this is where the
   shared region is write-protected again (one mprotect call). *)
let open_slice t (ts : Tstate.t) =
  match t.opts.monitor with
  | Options.Instrumentation -> 0
  | Options.Page_fault ->
    if ts.monitoring then begin
      let p = prof t in
      p.mprotect_calls <- p.mprotect_calls + 1;
      (cost t).Cost.mprotect_page
    end
    else 0

(* End the current slice: diff every snapshotted page (first-touch
   order), release the snapshots, store the modification list stamped
   with the thread's current clock, and run GC if the metadata space is
   over threshold.  Returns the simulated cycles spent.  The caller ticks
   the clock afterwards. *)
let close_slice t (ts : Tstate.t) =
  let c = cost t in
  let p = prof t in
  let o = obs t in
  let tracing = Rfdet_obs.Sink.enabled o in
  let trace_now = if tracing then Engine.clock t.engine ts.tid else 0 in
  let trace_vc = if tracing then vc_of ts else [||] in
  let cycles = ref c.Cost.slice_overhead in
  let pages = List.rev ts.touch_order in
  let mods =
    List.concat_map
      (fun page ->
        let snapshot = Hashtbl.find ts.snapshots page in
        let current = Space.page_bytes ts.shared page in
        let diff_cycles = Cost.diff_cost c ~bytes:Page.size in
        cycles := !cycles + diff_cycles;
        p.diff_bytes_scanned <- p.diff_bytes_scanned + Page.size;
        let d = Diff.diff_page ~page_id:page ~snapshot ~current in
        if tracing then
          Rfdet_obs.Sink.emit o ~tid:ts.tid ~time:trace_now ~vc:trace_vc
            (Rfdet_obs.Trace.Diff
               {
                 page;
                 bytes = Rfdet_mem.Diff.byte_count d;
                 runs = List.length d;
                 cycles = diff_cycles;
               });
        Metadata.snapshot_released t.meta;
        Metadata.release_page_buf t.meta snapshot;
        d)
      pages
  in
  Hashtbl.reset ts.snapshots;
  ts.touch_order <- [];
  let closed_slice_id = ref (-1) in
  if not (Diff.is_empty mods) then begin
    let slice =
      Slice.make
        ~id:(Metadata.fresh_slice_id t.meta)
        ~tid:ts.tid ~mods ~time:(Vclock.copy ts.time)
    in
    closed_slice_id := slice.Slice.id;
    Metadata.add_slice t.meta slice;
    Tstate.append_slice ts slice;
    p.slices_created <- p.slices_created + 1;
    if Metadata.needs_gc t.meta then begin
      let frontier = Vclock.create max_threads in
      for i = 0 to max_threads - 1 do
        Vclock.set frontier i max_int
      done;
      (* The frontier must witness that every unfinished thread has
         *merged the bytes* of a slice, not merely that its clock will
         eventually dominate it — so each thread contributes its raw
         current time.  (A tempting refinement — crediting a thread
         blocked in join(X) with X's clock — is unsound: the joiner's
         clock will dominate X's slices after the join, but its memory
         has not absorbed their bytes yet, and freeing them first loses
         updates.  A regression test covers this.) *)
      Hashtbl.iter
        (fun _ (ts' : Tstate.t) ->
          if not (Tstate.exited ts') then Vclock.min_into frontier ts'.time)
        t.states;
      let examined, freed = Metadata.gc t.meta ~frontier in
      p.gc_runs <- p.gc_runs + 1;
      p.gc_slices_freed <- p.gc_slices_freed + freed;
      let gc_cycles = examined * c.Cost.gc_per_slice in
      if tracing then
        Rfdet_obs.Sink.emit o ~tid:ts.tid ~time:trace_now ~vc:trace_vc
          (Rfdet_obs.Trace.Gc { examined; freed; cycles = gc_cycles });
      cycles := !cycles + gc_cycles
    end
  end;
  cycles := !cycles + open_slice t ts;
  if tracing then begin
    Rfdet_obs.Sink.emit o ~tid:ts.tid ~time:trace_now ~vc:trace_vc
      (Rfdet_obs.Trace.Slice_close
         {
           slice = !closed_slice_id;
           pages = List.length pages;
           bytes = Rfdet_mem.Diff.byte_count mods;
           cycles = !cycles;
         });
    Rfdet_obs.Sink.emit o ~tid:ts.tid ~time:trace_now ~vc:trace_vc
      Rfdet_obs.Trace.Slice_open
  end;
  !cycles

(* ------------------------------------------------------------------ *)
(* Acquire / release hooks (wired into the Kendo synchronization layer) *)
(* ------------------------------------------------------------------ *)

(* Extra delay after the grant time [now], given that closing the slice
   really happened when the thread blocked (at its current clock) and
   that with prelock the propagation work overlaps the wait. *)
let settle_delay t ~tid ~now ~close_cycles ~prop_cycles =
  let t0 = Engine.clock t.engine tid in
  let ready = t0 + close_cycles in
  if ready >= now then (ready - now) + prop_cycles
  else begin
    let slack = now - ready in
    if t.opts.prelock && prop_cycles > 0 then max 0 (prop_cycles - slack)
    else prop_cycles
  end

let do_release t ~tid ~obj ~now =
  let ts = state t ~tid in
  let close_cycles = close_slice t ts in
  let stamp = Vclock.copy ts.time in
  ignore (Vclock.tick ts.time tid);
  Hashtbl.replace t.last_release obj
    (tid, stamp, Rfdet_util.Vec.length ts.slices);
  settle_delay t ~tid ~now ~close_cycles ~prop_cycles:0

let do_acquire t ~tid ~obj ~now =
  let ts = state t ~tid in
  match Hashtbl.find_opt t.last_release obj with
  | Some (last_tid, _, _) when last_tid = tid && t.opts.slice_merging ->
    (* Slice merging: re-acquiring a variable we released ourselves —
       keep the current slice open, skip the snapshot/diff cycle. *)
    0
  | last ->
    let close_cycles = close_slice t ts in
    let lower = Vclock.copy ts.time in
    ignore (Vclock.tick ts.time tid);
    let prop_cycles =
      match last with
      | None -> 0
      | Some (last_tid, last_time, last_len) ->
        Vclock.join ts.time last_time;
        if last_tid = tid then 0
        else
          let upper = Vclock.copy ts.time in
          Propagate.run ~drop:(bug_drop_active t) ~obs:(obs t) ~at:now
            ~cost:(cost t) ~opts:t.opts ~prof:(prof t)
            ~from:(state t ~tid:last_tid) ~upto:last_len ~into:ts ~upper
            ~lower ()
    in
    settle_delay t ~tid ~now ~close_cycles ~prop_cycles

(* Barriers merge every arriving thread's happens-before set into the
   smallest-tid thread (in ascending tid order, Section 4.1), then hand
   each party a copy-on-write copy of that thread's memory. *)
let do_barrier t ~tids ~barrier:_ ~now =
  let cycles = ref 0 in
  let states = List.map (fun tid -> state t ~tid) tids in
  List.iter (fun ts -> cycles := !cycles + close_slice t ts) states;
  let joint = Vclock.create max_threads in
  List.iter (fun (ts : Tstate.t) -> Vclock.join joint ts.time) states;
  let sorted = List.sort compare tids in
  let leader =
    match sorted with
    | tid :: _ -> state t ~tid
    | [] -> invalid_arg "Rfdet: barrier with no parties"
  in
  let lower = Vclock.copy leader.time in
  Vclock.join leader.time joint;
  ignore (Vclock.tick leader.time leader.tid);
  let upper = Vclock.copy leader.time in
  List.iter
    (fun tid ->
      if tid <> leader.tid then
        cycles :=
          !cycles
          + (let from = state t ~tid in
             Propagate.run ~drop:(bug_drop_active t) ~obs:(obs t) ~at:now
               ~cost:(cost t) ~opts:t.opts ~prof:(prof t) ~from
               ~upto:(Rfdet_util.Vec.length from.Tstate.slices) ~into:leader
               ~upper ~lower ()))
    sorted;
  (* Everyone must observe the merged memory: flush the leader's pending
     lazy updates before forking its space. *)
  cycles := !cycles + flush_all_pending t leader;
  List.iter
    (fun (ts : Tstate.t) ->
      if ts.tid <> leader.tid then begin
        (* Adopt the leader's merged memory, slice list and resume
           indices (copy-on-write); keep own stack and monitoring flag.
           The clock restarts from the joint time, ticked so the new
           slices of different threads stay concurrent. *)
        Hashtbl.replace t.states ts.tid (Tstate.adopt_view ~leader ~follower:ts);
        Vclock.join ts.time joint;
        ignore (Vclock.tick ts.time ts.tid)
      end)
    states;
  !cycles

let do_spawned t ~parent ~child ~now:_ =
  if child >= max_threads then
    failwith
      (Printf.sprintf
         "RFDet: thread id %d exceeds the configured vector-clock width %d"
         child max_threads);
  let ts = state t ~tid:parent in
  let close_cycles = close_slice t ts in
  let pending_cycles = flush_all_pending t ts in
  Engine.advance t.engine parent (close_cycles + pending_cycles);
  let stamp = Vclock.copy ts.time in
  ignore (Vclock.tick ts.time parent);
  if parent = 0 && not t.main_forked then begin
    t.main_forked <- true;
    if t.opts.skip_premain_monitoring then ts.monitoring <- true
  end;
  let child_state = Tstate.fork ts ~tid:child ~stamp in
  Hashtbl.replace t.states child child_state

let do_exited t ~tid =
  let ts = state t ~tid in
  let cycles = close_slice t ts in
  Engine.advance t.engine tid cycles;
  ts.final_stamp <- Some (Vclock.copy ts.time);
  ts.exit_len <- Rfdet_util.Vec.length ts.slices;
  ignore (Vclock.tick ts.time tid)

(* Crash containment (an extension beyond the paper; see DESIGN.md).
   Slice privacy makes this sound and cheap: the thread's stores since
   its last release point live only in its private copy-on-write view
   and in its open snapshot set — nothing has been published.  Discard
   the open slice by dropping the snapshots *without diffing*; the
   thread's previously released slices stay in the metadata space and
   remain visible through the regular acquire-time propagation.  The
   thread is marked exited so it stops pinning the GC frontier. *)
let do_crashed t ~tid =
  let ts = state t ~tid in
  Hashtbl.iter
    (fun _ buf ->
      Metadata.snapshot_released t.meta;
      Metadata.release_page_buf t.meta buf)
    ts.snapshots;
  Hashtbl.reset ts.snapshots;
  ts.touch_order <- [];
  (* Pending lazy writes were already committed by their writers; this
     only drops the crashed thread's private, never-again-read view. *)
  Hashtbl.reset ts.lazy_pending;
  ts.final_stamp <- Some (Vclock.copy ts.time);
  ts.exit_len <- Rfdet_util.Vec.length ts.slices;
  ignore (Vclock.tick ts.time tid)

(* Restart preparation (the Recover failure mode): roll the private
   view back to the last release point by restoring every open page
   snapshot, then drop the snapshot set.  Unlike [do_crashed] the
   thread is not marked exited — its clock keeps running, joiners keep
   waiting, and pending lazy writes stay queued (they carry remote
   data still owed to this view).  After the rollback, replaying the
   lost span from the registered restart point re-executes the same
   deterministic stores against the same pre-span memory, so the
   recovered slices are bit-identical to what the crash destroyed. *)
let crash_recoverable t ~tid =
  let ts = state t ~tid in
  Hashtbl.iter
    (fun page buf ->
      Space.blit_string ts.shared ~addr:(Page.base_of_id page)
        (Bytes.to_string buf);
      Metadata.snapshot_released t.meta;
      Metadata.release_page_buf t.meta buf)
    ts.snapshots;
  Hashtbl.reset ts.snapshots;
  ts.touch_order <- []

(* Engine.I_corrupt: silently flip a byte in the newest live slice the
   thread has published.  Nothing is signalled here — the damage must
   be caught by checksum verification at propagation time, or by the
   end-of-run audit in [on_finish]. *)
let corrupt_metadata t ~tid =
  match Hashtbl.find_opt t.states tid with
  | None -> ()
  | Some ts ->
    let target = ref None in
    Rfdet_util.Vec.iter ts.slices ~f:(fun (s : Slice.t) ->
        if s.tid = tid && (not s.freed) && s.mods <> [] then target := Some s);
    (match !target with
    | None -> ()
    | Some s -> (
      match s.mods with
      | [] -> ()
      | r :: rest ->
        let b = Bytes.of_string r.Diff.data in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
        s.mods <- { r with Diff.data = Bytes.unsafe_to_string b } :: rest))

let do_joined t ~tid ~target ~now =
  let ts = state t ~tid in
  let target_state = state t ~tid:target in
  let final =
    match target_state.final_stamp with
    | Some f -> f
    | None -> invalid_arg "Rfdet: join of a thread that has not exited"
  in
  let close_cycles = close_slice t ts in
  let lower = Vclock.copy ts.time in
  ignore (Vclock.tick ts.time tid);
  Vclock.join ts.time final;
  let upper = Vclock.copy ts.time in
  let prop_cycles =
    Propagate.run ~drop:(bug_drop_active t) ~obs:(obs t) ~at:now
      ~cost:(cost t) ~opts:t.opts ~prof:(prof t) ~from:target_state
      ~upto:target_state.Tstate.exit_len ~into:ts ~upper ~lower ()
  in
  target_state.joined <- true;
  settle_delay t ~tid ~now ~close_cycles ~prop_cycles

(* ------------------------------------------------------------------ *)
(* Memory operations                                                   *)
(* ------------------------------------------------------------------ *)

let do_load t ~tid ~addr ~width =
  let c = cost t in
  let ts = state t ~tid in
  let space, extra =
    if Layout.is_stack addr then (ts.stack, 0)
    else begin
      let len = match width with Op.W8 -> 1 | Op.W64 -> 8 in
      let extra =
        List.fold_left
          (fun acc page ->
            if Tstate.has_pending ts page then acc + flush_pending t ts page
            else acc)
          0
          (Page.span ~addr ~len)
      in
      (ts.shared, extra)
    end
  in
  Engine.advance t.engine tid (c.Cost.load + extra);
  match width with
  | Op.W8 -> Space.load_byte space addr
  | Op.W64 -> Space.load_int space addr

(* Figure 4: the store instrumentation.  First write to a shared page in
   the current slice snapshots the page into the metadata space. *)
let do_store t ~tid ~addr ~value ~width =
  let c = cost t in
  let p = prof t in
  let ts = state t ~tid in
  if Layout.is_stack addr then begin
    Engine.advance t.engine tid c.Cost.store;
    match width with
    | Op.W8 -> Space.store_byte ts.stack addr value
    | Op.W64 -> Space.store_int ts.stack addr value
  end
  else begin
    let extra = ref 0 in
    let len = match width with Op.W8 -> 1 | Op.W64 -> 8 in
    (* Figure 4: "foreach pageid in pagesTouchedBy(addr, len)" — an
       unaligned word store can straddle two pages and both need a
       snapshot, or the second page's bytes vanish from the slice. *)
    let copied = ref false in
    List.iter
      (fun page ->
        if Tstate.has_pending ts page then
          extra := !extra + flush_pending t ts page;
        if ts.monitoring && not (Tstate.has_open_snapshot ts page) then begin
          let buf = Metadata.alloc_page_buf t.meta in
          Space.snapshot_page_into ts.shared page buf;
          Tstate.add_snapshot ts page buf;
          Metadata.snapshot_taken t.meta;
          p.snapshots <- p.snapshots + 1;
          copied := true;
          let snap_cycles = ref (Cost.snapshot_cost c ~bytes:Page.size) in
          (match t.opts.monitor with
          | Options.Instrumentation -> ()
          | Options.Page_fault ->
            p.page_faults <- p.page_faults + 1;
            snap_cycles := !snap_cycles + c.Cost.page_fault);
          extra := !extra + !snap_cycles;
          let o = obs t in
          if Rfdet_obs.Sink.enabled o then
            Rfdet_obs.Sink.emit o ~tid ~time:(Engine.clock t.engine tid)
              ~vc:(vc_of ts)
              (Rfdet_obs.Trace.Snapshot { page; cycles = !snap_cycles })
        end)
      (Page.span ~addr ~len);
    if !copied then p.stores_with_copy <- p.stores_with_copy + 1;
    if ts.monitoring then begin
      match t.opts.monitor with
      | Options.Instrumentation -> extra := !extra + c.Cost.store_check
      | Options.Page_fault -> ()
    end;
    Engine.advance t.engine tid (c.Cost.store + !extra);
    match width with
    | Op.W8 -> Space.store_byte ts.shared addr value
    | Op.W64 -> Space.store_int ts.shared addr value
  end

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let handle t ~tid (op : Op.t) : Engine.outcome =
  let sync = sync_exn t in
  match op with
  | Op.Load { addr; width } -> Done (do_load t ~tid ~addr ~width)
  | Op.Store { addr; value; width } ->
    do_store t ~tid ~addr ~value ~width;
    Done 0
  | Op.Mutex_create -> Sync.mutex_create sync ~tid
  | Op.Cond_create -> Sync.cond_create sync ~tid
  | Op.Barrier_create parties -> Sync.barrier_create sync ~tid ~parties
  | Op.Lock m -> Sync.lock sync ~tid ~mutex:m
  | Op.Trylock m -> Sync.trylock sync ~tid ~mutex:m
  | Op.Lock_timed { mutex; timeout } -> Sync.lock_timed sync ~tid ~mutex ~timeout
  | Op.Mutex_heal m -> Sync.heal sync ~tid ~handle:m
  | Op.Unlock m -> Sync.unlock sync ~tid ~mutex:m
  | Op.Cond_wait { cond; mutex } -> Sync.cond_wait sync ~tid ~cond ~mutex
  | Op.Cond_signal c ->
    Sync.cond_signal ~lose:(bug_lost_active t) sync ~tid ~cond:c
  | Op.Cond_broadcast c -> Sync.cond_broadcast sync ~tid ~cond:c
  | Op.Barrier_wait b -> Sync.barrier_wait sync ~tid ~barrier:b
  | Op.Atomic { addr; rmw } ->
    (* Section 4.6/6: a low-level atomic is an acquire followed by a
       release on an internal synchronization variable keyed by the
       address, executed in deterministic-turn order. *)
    Sync.rmw sync ~tid ~action:(fun ~now ->
        let obj = Sync.Atomic_obj addr in
        let acq = do_acquire t ~tid ~obj ~now in
        let prev, next =
          Op.apply_rmw rmw ~current:(do_load t ~tid ~addr ~width:Op.W64)
        in
        do_store t ~tid ~addr ~value:next ~width:Op.W64;
        let rel = do_release t ~tid ~obj ~now:(now + acq) in
        (prev, acq + rel))
  | Op.Spawn body -> Sync.spawn sync ~tid ~body
  | Op.Join target -> Sync.join sync ~tid ~target
  | Op.Rwlock_create -> Sync.rwlock_create sync ~tid
  | Op.Rdlock rw -> Sync.rdlock sync ~tid ~rwlock:rw
  | Op.Wrlock rw -> Sync.wrlock sync ~tid ~rwlock:rw
  | Op.Rwunlock rw -> Sync.rwunlock sync ~tid ~rwlock:rw
  | Op.Sem_create permits -> Sync.sem_create sync ~tid ~permits
  | Op.Sem_acquire s -> Sync.sem_acquire sync ~tid ~sem:s
  | Op.Sem_post s -> Sync.sem_post sync ~tid ~sem:s
  | Op.Deque_create -> Sync.deque_create sync ~tid
  | Op.Deque_push { deque; value } -> Sync.deque_push sync ~tid ~deque ~value
  | Op.Deque_pop dq -> Sync.deque_pop sync ~tid ~deque:dq
  | Op.Deque_steal own -> Sync.deque_steal sync ~tid ~own
  | Op.Tick _ | Op.Output _ | Op.Self | Op.Yield | Op.Checkpoint _
  | Op.Server_mark _ | Op.Span _ | Op.Malloc _
  | Op.Free _ ->
    assert false

let shared_union_bytes t =
  let pages = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ (ts : Tstate.t) ->
      Space.iter_pages ts.shared ~f:(fun id ->
          if Layout.is_shared (Page.base_of_id id) then
            Hashtbl.replace pages id ()))
    t.states;
  Hashtbl.length pages * Page.size

(* End-of-run metadata audit: verify every still-live published slice,
   so a corruption whose slice was never selected for propagation is
   still detected (the 100%-detection gate).  Each slice is audited in
   its publisher's list only — propagated copies share the record. *)
let audit_metadata t =
  let p = prof t in
  Hashtbl.iter
    (fun tid (ts : Tstate.t) ->
      Rfdet_util.Vec.iter ts.slices ~f:(fun (s : Slice.t) ->
          if s.tid = tid && not (Slice.checksum_valid s) then begin
            p.corruptions_detected <- p.corruptions_detected + 1;
            Slice.rehash s
          end))
    t.states

let on_finish t () =
  if t.opts.verify_metadata then audit_metadata t;
  let p = prof t in
  let n = Engine.peak_live_threads t.engine in
  let shared = shared_union_bytes t in
  p.shared_bytes <- shared;
  (* Column 11 of Table 1: N * SharedMemory + stacks + metadata. *)
  p.private_copy_bytes <- (n - 1) * shared;
  let stack_bytes = ref 0 in
  Hashtbl.iter
    (fun _ (ts : Tstate.t) ->
      stack_bytes := !stack_bytes + 8192 + (Space.mapped_pages ts.stack * Page.size))
    t.states;
  p.stack_bytes <- !stack_bytes;
  p.metadata_peak_bytes <- Metadata.peak t.meta;
  p.gc_runs <- Metadata.gc_runs t.meta

let make_with_state ?(opts = Options.default) engine =
  let t =
    {
      engine;
      opts;
      meta =
        Metadata.create ~capacity:opts.Options.metadata_capacity
          ~gc_threshold:opts.Options.gc_threshold;
      states = Hashtbl.create 16;
      last_release = Hashtbl.create 64;
      sync = None;
      main_forked = false;
    }
  in
  let root =
    Tstate.create_root ~clock_size:max_threads
      ~monitoring:(not opts.Options.skip_premain_monitoring)
  in
  Hashtbl.replace t.states 0 root;
  let hooks =
    {
      Sync.acquire = (fun ~tid ~obj ~now -> do_acquire t ~tid ~obj ~now);
      release = (fun ~tid ~obj ~now -> do_release t ~tid ~obj ~now);
      barrier_all = (fun ~tids ~barrier ~now -> do_barrier t ~tids ~barrier ~now);
      spawned = (fun ~parent ~child ~now -> do_spawned t ~parent ~child ~now);
      exited = (fun ~tid -> do_exited t ~tid);
      joined = (fun ~tid ~target ~now -> do_joined t ~tid ~target ~now);
    }
  in
  let sync = Sync.create engine hooks in
  t.sync <- Some sync;
  Engine.set_on_corrupt engine (fun ~tid -> corrupt_metadata t ~tid);
  let policy =
    {
      Engine.policy_name = Options.name opts;
      handle = (fun ~tid op -> handle t ~tid op);
      on_engine_op = (fun ~tid:_ _ outcome -> outcome);
      on_thread_exit = (fun ~tid -> Sync.on_thread_exit sync ~tid);
      on_thread_crash =
        (fun ~tid _exn ->
          do_crashed t ~tid;
          Sync.on_thread_crash sync ~tid);
      on_step = (fun () -> Sync.poll sync);
      on_finish = (fun () -> on_finish t ());
    }
  in
  (t, policy)

let make ?opts engine = snd (make_with_state ?opts engine)
