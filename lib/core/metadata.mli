(** The shared metadata space: slice storage, usage metering and garbage
    collection (Sections 4, 4.5).

    In RFDet proper this is a shared-memory region between the isolated
    processes; here it is runtime-internal state whose size is metered in
    bytes so that the paper's GC experiment (256 MB capacity, 90%
    threshold, Table 1's GC column) can be reproduced.  Usage counts the
    footprint of live (unreclaimed) slices plus any open page snapshots;
    snapshot memory is released as soon as a slice is converted to a
    byte-granularity modification list, exactly as in the paper.

    A slice becomes garbage once its timestamp is ≤ the component-wise
    minimum of every thread's current vector clock — every thread has
    already merged it.

    Domain safety: each [t] is self-contained — the snapshot-buffer pool
    it recycles hangs off the instance, not the module — so concurrent
    simulated runs on different host domains ([Rfdet_par.Par] sweeps)
    never contend as long as each run creates its own metadata space,
    which [Rfdet_core.Rfdet_runtime] does. *)

type t

val create : capacity:int -> gc_threshold:float -> t

(** [add_slice t slice] stores a closed slice and accounts for its
    footprint. *)
val add_slice : t -> Slice.t -> unit

(** [fresh_slice_id t] — next deterministic slice id. *)
val fresh_slice_id : t -> int

(** [snapshot_taken t] / [snapshot_released t] meter the transient
    page-snapshot memory of open slices. *)
val snapshot_taken : t -> unit

val snapshot_released : t -> unit

(** [alloc_page_buf t] hands out a page-sized scratch buffer from the
    free-list (or allocates one when the pool is empty).  The contents
    are {e unspecified} — callers must overwrite the whole buffer
    ([Space.snapshot_page_into] does).  [release_page_buf t b] returns a
    buffer to the pool; the pool is bounded, so releasing is always
    safe.  Pooling is a host-side optimization only: metering
    ([snapshot_taken]/[snapshot_released]) is unchanged. *)
val alloc_page_buf : t -> bytes

val release_page_buf : t -> bytes -> unit

(** [usage t] — current bytes; [peak t] — high-water mark. *)
val usage : t -> int

val peak : t -> int

(** [needs_gc t] — usage has reached threshold × capacity. *)
val needs_gc : t -> bool

(** [gc t ~frontier] marks every live slice with
    [Vclock.leq time frontier] as freed, releases its footprint, and
    returns the pair (slices examined, slices freed).  The frontier must
    be the component-wise minimum of all threads' clocks (including
    exited-but-unjoined threads' final clocks — their slices may still
    need to flow to a joiner). *)
val gc : t -> frontier:Rfdet_util.Vclock.t -> int * int

val gc_runs : t -> int

val live_slices : t -> int

val iter_slices : t -> f:(Slice.t -> unit) -> unit
(** Every live (unreclaimed) slice, unspecified order — the conformance
    oracle's completeness check walks these. *)

val capacity : t -> int
