module Vclock = Rfdet_util.Vclock
module Page = Rfdet_mem.Page

type t = {
  capacity : int;
  gc_threshold : float;
  mutable slices : Slice.t list;  (* live, reversed insertion order *)
  mutable next_id : int;
  mutable usage : int;
  mutable peak : int;
  mutable open_snapshots : int;
  mutable runs : int;
  mutable rearm_at : int;
      (* after a GC, do not run again until usage grows past this —
         prevents thrashing when little can be freed (e.g. a parent
         thread sleeping in join pins the frontier) *)
  mutable free_bufs : bytes list;
      (* pool of page-sized scratch buffers (snapshots, touch bitmaps):
         steady-state slicing recycles these instead of allocating a
         fresh 4 KiB buffer per first-touch store *)
  mutable free_buf_count : int;
}

(* Enough for every open snapshot of a heavily-slicing run; beyond this
   buffers are dropped to the GC rather than hoarded. *)
let pool_cap = 128

let create ~capacity ~gc_threshold =
  if capacity <= 0 then invalid_arg "Metadata.create: capacity <= 0";
  if gc_threshold <= 0. || gc_threshold > 1. then
    invalid_arg "Metadata.create: threshold out of (0,1]";
  {
    capacity;
    gc_threshold;
    slices = [];
    next_id = 0;
    usage = 0;
    peak = 0;
    open_snapshots = 0;
    runs = 0;
    rearm_at = 0;
    free_bufs = [];
    free_buf_count = 0;
  }

let alloc_page_buf t =
  match t.free_bufs with
  | b :: rest ->
    t.free_bufs <- rest;
    t.free_buf_count <- t.free_buf_count - 1;
    b
  | [] -> Bytes.create Page.size

let release_page_buf t b =
  if Bytes.length b <> Page.size then
    invalid_arg "Metadata.release_page_buf: buffer must be page-sized";
  if t.free_buf_count < pool_cap then begin
    t.free_bufs <- b :: t.free_bufs;
    t.free_buf_count <- t.free_buf_count + 1
  end

let bump t delta =
  t.usage <- t.usage + delta;
  if t.usage > t.peak then t.peak <- t.usage

let add_slice t slice =
  t.slices <- slice :: t.slices;
  bump t (Slice.footprint slice)

let fresh_slice_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let snapshot_taken t =
  t.open_snapshots <- t.open_snapshots + 1;
  bump t Page.size

let snapshot_released t =
  assert (t.open_snapshots > 0);
  t.open_snapshots <- t.open_snapshots - 1;
  t.usage <- t.usage - Page.size

let usage t = t.usage

let peak t = t.peak

let needs_gc t =
  float_of_int t.usage >= t.gc_threshold *. float_of_int t.capacity
  && t.usage >= t.rearm_at

let gc t ~frontier =
  t.runs <- t.runs + 1;
  let examined = List.length t.slices in
  let freed = ref 0 in
  let keep =
    List.filter
      (fun (s : Slice.t) ->
        if Vclock.leq s.time frontier then begin
          Slice.free s;
          t.usage <- t.usage - Slice.footprint s;
          incr freed;
          false
        end
        else true)
      t.slices
  in
  t.slices <- keep;
  (* re-arm only after usage grows by 10% of capacity beyond what this
     sweep left behind *)
  t.rearm_at <- t.usage + (t.capacity / 10);
  (examined, !freed)

let gc_runs t = t.runs

let live_slices t = List.length t.slices

let iter_slices t ~f = List.iter f t.slices

let capacity t = t.capacity
