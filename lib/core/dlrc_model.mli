(** An executable reference model of deterministic lazy release
    consistency — the differential-testing oracle for the optimized
    runtime.

    This policy implements Section 3's semantics as directly as
    possible, with none of the engineering of [Rfdet_runtime]:

    - per-thread memory is a plain byte map (no pages, no copy-on-write,
      no snapshots, no page diffing);
    - slice modifications are computed from an exact write log
      (initial-value comparison drops redundant stores, mirroring what
      byte-granularity page diffing produces);
    - slice-pointer lists are plain lists and every propagation rescans
      the *entire* remote list with only the upper/lower vector-time
      filters of Figure 5 — no release-length bounds, no resume indices;
    - no slice merging, no pre-fork monitoring exemption, no metadata
      accounting, no GC, no lazy writes, no prelock.

    Synchronization goes through the same Kendo layer, so the
    deterministic synchronization order is identical to the optimized
    runtime's; DLRC then promises the observable outputs are identical
    too.  The property suite runs randomized racy programs under both
    and compares outputs — any divergence indicts one of the runtime's
    optimizations (resume indices, slice merging, GC, lazy writes,
    copy-on-write forking, ...). *)

val name : string

val make : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy

exception Propagated_twice of string
(** Raised by the [make_checked] variant when a propagation would append
    a slice that is already in the destination's seen-list — i.e. the
    Figure-5 lower-limit filter failed at redundancy elimination. *)

val make_checked : Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
(** Like [make], but every propagation additionally asserts the
    never-propagate-twice property, raising [Propagated_twice] on
    violation.  The property suite runs randomized programs under this
    variant. *)
