(** The RFDet runtime: strong determinism via deterministic lazy release
    consistency, without global barriers (paper Sections 3-4).

    Composition:
    - the Kendo layer ([Rfdet_kendo.Sync]) serializes every
      synchronization operation in deterministic logical-time order;
    - each thread runs against a private copy-on-write view of the shared
      region, so its stores are invisible elsewhere until propagated;
    - execution is cut into slices at synchronization points; slice
      modifications are captured by first-touch page snapshots plus
      byte-granularity diffing (monitor = RFDet-ci or RFDet-pf);
    - at every acquire, the slices that happen-before the matching
      release are propagated under vector-clock upper/lower limits
      (Figure 5) and merged with the deterministic conflict policy;
    - the metadata space meters slice storage and garbage-collects slices
      that every thread has merged.

    The resulting guarantee: the run's observable output depends only on
    the program and its input — never on the engine's scheduling seed —
    even for programs with data races. *)

val name : Options.t -> string

val make : ?opts:Options.t -> Rfdet_sim.Engine.t -> Rfdet_sim.Engine.policy
(** Use as [Engine.run ~config (Rfdet_runtime.make ~opts) ~main]. *)

(** {1 Introspection for tests} *)

type t
(** The runtime instance behind a policy. *)

val make_with_state :
  ?opts:Options.t -> Rfdet_sim.Engine.t -> t * Rfdet_sim.Engine.policy

val state : t -> tid:int -> Tstate.t

val iter_states : t -> f:(tid:int -> Tstate.t -> unit) -> unit
(** Every thread state created so far (unspecified order) — the DLRC
    conformance oracle walks these after each synchronization step. *)

val metadata : t -> Metadata.t

val last_release :
  t -> Rfdet_kendo.Sync.obj -> (int * Rfdet_util.Vclock.t * int) option
(** lastTid, lastTime, and the releaser's slice-list length at the
    release. *)

val clock_size : t -> int

(** {1 Recovery support} *)

val sync : t -> Rfdet_kendo.Sync.t
(** The runtime's synchronization layer — the recovery manager
    ([Rfdet_recover]) uses it for lock healing and deadlock-victim
    selection. *)

val crash_recoverable : t -> tid:int -> unit
(** Prepare a crashed thread for restart: restore every open page
    snapshot into its private view (rolling uncommitted stores back to
    the last release point) and drop the open slice's snapshot set.
    The thread is not marked exited; call before
    [Engine.restart_thread].  Idempotent on a thread with no open
    slice. *)
