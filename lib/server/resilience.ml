module Det_rng = Rfdet_util.Det_rng

(* --- circuit breaker -------------------------------------------------- *)

module Breaker = struct
  type state = Closed | Open | Half_open

  (* Packed word layout, low to high:
       bits  0-1   state (0 closed, 1 open, 2 half-open)
       bits  2-5   half-open success count
       bits  6-11  consecutive failure count
       bits 12-23  cumulative transition count (saturating)
       bits 24-62  timestamp of the last transition, virtual cycles *)
  let empty = 0

  let state w =
    match w land 3 with 0 -> Closed | 1 -> Open | _ -> Half_open

  let state_name w =
    match state w with
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  let successes w = (w lsr 2) land 0xF

  let failures w = (w lsr 6) land 0x3F

  let transitions w = (w lsr 12) land 0xFFF

  let since w = w lsr 24

  let pack ~state ~successes ~failures ~transitions ~since =
    let st = match state with Closed -> 0 | Open -> 1 | Half_open -> 2 in
    st
    lor (min successes 0xF lsl 2)
    lor (min failures 0x3F lsl 6)
    lor (min transitions 0xFFF lsl 12)
    lor (since lsl 24)

  let transition w ~to_ ~now =
    pack ~state:to_ ~successes:0 ~failures:0
      ~transitions:(transitions w + 1)
      ~since:now

  (* Open -> Half_open once the cooldown has elapsed; everything else is
     driven by success/failure records. *)
  let tick w ~now ~cooldown =
    match state w with
    | Open when now - since w >= cooldown ->
      (transition w ~to_:Half_open ~now, true)
    | _ -> (w, false)

  let on_success w ~now ~half_open_successes =
    match state w with
    | Closed ->
      (* a success clears the consecutive-failure streak *)
      ( pack ~state:Closed ~successes:0 ~failures:0
          ~transitions:(transitions w) ~since:(since w),
        false )
    | Half_open ->
      let s = successes w + 1 in
      if s >= half_open_successes then (transition w ~to_:Closed ~now, true)
      else
        ( pack ~state:Half_open ~successes:s ~failures:(failures w)
            ~transitions:(transitions w) ~since:(since w),
          false )
    | Open -> (w, false)

  let on_failure w ~now ~failure_threshold =
    match state w with
    | Closed ->
      let f = failures w + 1 in
      if f >= failure_threshold then (transition w ~to_:Open ~now, true)
      else
        ( pack ~state:Closed ~successes:0 ~failures:f
            ~transitions:(transitions w) ~since:(since w),
          false )
    | Half_open -> (transition w ~to_:Open ~now, true)
    | Open -> (w, false)
end

(* --- bounded retry with seeded exponential backoff -------------------- *)

module Retry = struct
  (* Mirrors Recover.backoff_cycles: base doubles per attempt plus a
     jitter term from a generator keyed by (seed, request, attempt) —
     stateless, so replaying a crashed worker that skips already-
     committed requests cannot desynchronize later draws. *)
  let backoff ~seed ~worker ~seq ~attempt ~base =
    let base = max 1 base in
    let expo = base * (1 lsl min attempt 16) in
    let ident = (worker lsl 24) lxor seq in
    let key =
      Int64.logxor seed
        (Int64.of_int ((ident * 0x9E3779B9) lxor (attempt * 0x85EBCA6B)))
    in
    expo + Det_rng.int (Det_rng.create key) base
end

(* --- admission control / load shedding -------------------------------- *)

module Shed = struct
  type decision = Admit | Shed

  (* Queue lag below [soft]: admit.  Above [hard]: shed.  In between:
     shed with probability (drop_per_1000/1000) * (lag-soft)/(hard-soft),
     decided by a hash of (seed, seq) so the same request sheds in every
     runtime and under every schedule. *)
  let decide ~seed ~seq ~lag ~soft ~hard ~drop_per_1000 =
    if lag >= hard then Shed
    else if lag < soft then Admit
    else begin
      let span = max 1 (hard - soft) in
      let threshold = drop_per_1000 * (lag - soft) / span in
      let key = Int64.logxor seed (Int64.of_int (seq * 0x9E3779B9)) in
      if Det_rng.int (Det_rng.create key) 1000 < threshold then Shed
      else Admit
    end
end
