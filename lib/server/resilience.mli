(** Deterministic request-resilience policies.

    Every decision here is pure integer arithmetic over values the
    calling worker computes deterministically — virtual cycle clocks,
    request sequence numbers, the run seed — never host time or engine
    scheduling state.  Breaker state is a single packed word the caller
    keeps in simulated memory (one word per shard, owner-only), so the
    policies behave identically across runtimes, schedules and replays. *)

module Breaker : sig
  type state = Closed | Open | Half_open

  val empty : int
  (** Initial word: closed, no history, epoch 0. *)

  val state : int -> state

  val state_name : int -> string
  (** ["closed"] / ["open"] / ["half_open"] — stable strings for trace
      and span output. *)

  val failures : int -> int
  (** Consecutive failures while closed. *)

  val successes : int -> int
  (** Probe successes while half-open. *)

  val transitions : int -> int
  (** Cumulative state changes (saturates at 4095). *)

  val since : int -> int
  (** Virtual cycle of the last transition. *)

  val tick : int -> now:int -> cooldown:int -> int * bool
  (** Open -> half-open once [cooldown] cycles have elapsed.  Returns
      the new word and whether a transition happened. *)

  val on_success : int -> now:int -> half_open_successes:int -> int * bool
  (** Closed: clears the failure streak.  Half-open: counts a probe
      success and re-closes after [half_open_successes] of them. *)

  val on_failure : int -> now:int -> failure_threshold:int -> int * bool
  (** Closed: counts a failure and opens at [failure_threshold]
      consecutive ones.  Half-open: reopens immediately. *)
end

module Retry : sig
  val backoff :
    seed:int64 -> worker:int -> seq:int -> attempt:int -> base:int -> int
  (** Exponential backoff in virtual cycles, mirroring the restart
      discipline of [Recover]: [base * 2^min(attempt,16)] plus a jitter
      term keyed by (seed, worker, seq, attempt).  Stateless — safe to
      recompute during crash replay. *)
end

module Shed : sig
  type decision = Admit | Shed

  val decide :
    seed:int64 ->
    seq:int ->
    lag:int ->
    soft:int ->
    hard:int ->
    drop_per_1000:int ->
    decision
  (** Admit below [soft] lag, shed above [hard]; in between, shed a
      seeded pseudorandom fraction that ramps linearly from 0 to
      [drop_per_1000] per mille.  A pure function of (seed, seq, lag). *)
end
