(** A deterministic overloaded KV server: sharded store, worker pool,
    and a request-resilience layer — per-request deadlines, bounded
    retries with seeded backoff, per-shard circuit breakers, admission
    control / load shedding, and degraded (stale) reads while a shard's
    breaker is open.

    Every policy decision runs in virtual cycles the owning worker
    computes by pure arithmetic, and every shard is owned by exactly one
    worker — so a fault-free run is a set of independent sequential
    programs and its outcome (signature, latency histogram, resilience
    counters) is bit-identical across runtimes, schedules and jitter.
    Under a fault plan, outcomes are deterministic per runtime: crashed
    workers resume from their atomically-published progress word
    (deterministic recovery) or are drained by the main thread
    (failover), with stripe locks healed where the crash poisoned them.

    [run] must be called from the simulated main thread. *)

type params = {
  workers : int;
  shards : int;  (** must be >= workers; shard s is owned by worker
                     [s mod workers] *)
  traffic : Traffic.params;
  deadline : int;  (** per-request budget from arrival, virtual cycles *)
  lock_slack : int;  (** extra icount budget granted to [lock_timed] *)
  max_retries : int;
  backoff_base : int;  (** seeded exponential backoff base, cycles *)
  soft_lag : int;  (** shedding starts ramping at this queue lag *)
  hard_lag : int;  (** unconditional shed beyond this lag *)
  drop_per_1000 : int;  (** peak shed probability at [hard_lag] *)
  failure_threshold : int;  (** consecutive failures that open a breaker *)
  cooldown : int;  (** open -> half-open after this many cycles *)
  half_open_successes : int;  (** probe successes that re-close *)
  stale_cost : int;  (** virtual cost of a degraded read *)
  shed_cost : int;  (** virtual cost of rejecting a request *)
}

val default : params
(** 4 workers over 16 shards at overload (see [Traffic.default]), with
    [soft_lag] < [deadline] < [hard_lag] so a saturated shard sheds
    probabilistically first, then times requests out — opening its
    breaker — then drains cheaply through stale reads and shed puts
    until the half-open probe succeeds. *)

type report = {
  total : int;
  served : int;
  stale_served : int;
  shed : int;
  timed_out : int;
  failed : int;  (** retry budget exhausted (needs lock contention) *)
  failed_over : int;  (** drained by the main thread after a crash *)
  retries : int;  (** retry attempts, not requests *)
  breaker_transitions : int;
  checksum : int;  (** table digest after all joins *)
  digest : int;  (** response digest over every served/stale read *)
  event_digest : int;  (** digest of (seq, outcome, attempts) streams *)
  makespan : int;  (** max worker virtual clock *)
  latency : Rfdet_obs.Metrics.hist_summary;  (** served requests only *)
  p50 : int;
  p99 : int;
  p999 : int;
  events : string array;  (** per-worker logs; empty unless recorded *)
}

val run : ?record_events:bool -> seed:int64 -> params -> report
(** Generate traffic, serve it, fail over crashed workers, and emit the
    report's key figures as observable outputs (so any behavioral
    divergence changes the run signature) plus [Op.Server_mark] profile
    counters.  [record_events] keeps a human-readable per-worker event
    log; leave it off for large runs.

    Invariant: [served + stale_served + shed + timed_out + failed +
    failed_over = total]. *)

val render : report -> string
(** The [rfdet serve] console report. *)
