(** Seeded open-loop request generator: Poisson arrivals, Zipfian
    hot-key skew, exponential service costs with a heavy tail.

    Generation is pure host arithmetic over a [Det_rng] stream, run once
    by the simulated main thread before any worker is spawned — so the
    request array is a function of (seed, params) alone and identical
    under every runtime, schedule and fault plan. *)

type op = Get | Put of int

type request = {
  seq : int;  (** global arrival order, 0-based *)
  arrival : int;  (** arrival time, simulated cycles from epoch *)
  key : int;
  op : op;
  cost : int;  (** service cost in simulated cycles *)
}

type params = {
  requests : int;
  keys : int;  (** key-space size *)
  zipf_theta : float;  (** skew; 0 = uniform, 0.99 = classic YCSB *)
  mean_interarrival : int;
      (** mean gap between arrivals, cycles; the open-loop offered load
          is [1/mean_interarrival] requests per cycle regardless of how
          the server keeps up *)
  get_per_1000 : int;  (** read fraction, per mille *)
  mean_service : int;  (** mean service cost, cycles *)
  tail_per_1000 : int;  (** heavy requests, per mille *)
  tail_factor : int;  (** cost multiplier for heavy requests *)
}

val default : params
(** 2 000 requests over 4 096 keys, theta 0.99, 90% gets, mean service
    400 cycles vs. a 70-cycle interarrival — overloaded for a 4-worker
    pool (capacity 1 request per 100 cycles). *)

val scatter : keys:int -> int -> int
(** Injective Zipf-rank -> key map: spreads hot ranks over the key
    space so they do not cluster in the low shards.  A permutation of
    [0, keys) for any [keys] (multiplicative hash in the enclosing
    power-of-two space, cycle-walked back into range). *)

val generate : seed:int64 -> params -> request array
(** Requests in arrival order; [arrival] is nondecreasing. *)
