module Api = Rfdet_sim.Api

type t = {
  shards : int;
  keys : int;
  locks : Api.mutex array;
  data : int;  (** base address, [keys] words *)
  stale : int;  (** base address, [shards] words *)
}

let create ~shards ~keys =
  let locks = Array.init shards (fun _ -> Api.mutex_create ()) in
  let data = Api.malloc (8 * keys) in
  let stale = Api.malloc (8 * shards) in
  for k = 0 to keys - 1 do
    Api.store (data + (8 * k)) 0
  done;
  for s = 0 to shards - 1 do
    Api.store (stale + (8 * s)) 0
  done;
  { shards; keys; locks; data; stale }

let shard_of t key = key mod t.shards

let lock t shard = t.locks.(shard)

let get t key = Api.load (t.data + (8 * key))

let mix a b =
  let h = (a * 0x9E3779B1) lxor (b + 0x85EBCA77 + (a lsl 6) + (a lsr 2)) in
  h land max_int

(* A put refreshes the shard's stale-cache word under the same lock, so
   the cache always reflects the last committed write — and goes stale
   precisely while the shard's breaker is open and puts are shed. *)
let put t key v =
  Api.store (t.data + (8 * key)) v;
  Api.store (t.stale + (8 * shard_of t key)) (mix key v)

let stale_get t ~shard = Api.load (t.stale + (8 * shard))

let checksum t =
  let acc = ref 0 in
  for k = 0 to t.keys - 1 do
    acc := mix !acc (Api.load (t.data + (8 * k)))
  done;
  !acc
