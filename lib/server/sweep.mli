(** The arrival-rate sweep (experiment E12) behind [rfdet serve --sweep].

    A sweep runs the KV server once per offered load and tabulates the
    resulting reports.  The loads are independent full runs — nothing
    carries over between rates — so [run] can execute them on up to
    [jobs] host domains ([Rfdet_par.Par]) and still return rows in rate
    order: the rendered table and the JSON array are byte-identical for
    every [jobs] value.

    Rendering lives here (not in the CLI) so the byte-identity contract
    is testable: [test/test_par.ml] asserts [to_json] at [jobs = 4]
    equals [jobs = 1]. *)

val default_rates : int list
(** Mean interarrival gaps swept by default, heaviest load last:
    400, 200, 150, 120, 100, 90, 80, 70, 60, 50. *)

val run :
  ?jobs:int ->
  ?rates:int list ->
  f:(rate:int -> Server.report) ->
  unit ->
  (int * Server.report) list
(** Run [f] once per rate (on up to [jobs] domains, default 1) and
    return [(rate, report)] rows in the order of [rates].  [f] must be
    a pure function of [rate] — the CLI's closure rebuilds the whole
    simulated server per call, which it is. *)

val report_fields : ?rate:int -> Server.report -> (string * int) list
(** The report as ordered (key, value) pairs; [rate] prepends a
    ["rate"] field.  Shared by the single-run and sweep JSON shapes. *)

val report_json : Server.report -> string
(** One report as a JSON object (trailing newline included). *)

val to_json : (int * Server.report) list -> string
(** Sweep rows as a JSON array of objects, one per offered load. *)

val render_header : unit -> string
(** Column-header line of the human-readable sweep table. *)

val render_row : rate:int -> Server.report -> string
(** One table line for one offered load. *)
