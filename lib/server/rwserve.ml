module Api = Rfdet_sim.Api
module Op = Rfdet_sim.Op
module Metrics = Rfdet_obs.Metrics
module Breaker = Resilience.Breaker

type params = {
  workers : int;
  shards : int;
  traffic : Traffic.params;
  deadline : int;
  failure_threshold : int;
  cooldown : int;
  half_open_successes : int;
  stale_cost : int;
}

let default =
  {
    workers = Server.default.Server.workers;
    shards = Server.default.Server.shards;
    traffic = Traffic.default;
    deadline = Server.default.Server.deadline;
    failure_threshold = Server.default.Server.failure_threshold;
    cooldown = Server.default.Server.cooldown;
    half_open_successes = Server.default.Server.half_open_successes;
    stale_cost = Server.default.Server.stale_cost;
  }

type report = {
  total : int;
  puts : int;
  puts_served : int;
  puts_timed_out : int;
  gets : int;
  gets_served : int;
  gets_stale : int;
  failed_over : int;
  breaker_transitions : int;
  checksum : int;
  read_digest : int;
  makespan : int;
  p50 : int;
  p99 : int;
}

let mix = Kvstore.mix

(* progress word: (virtual clock lsl 21) lor put cursor — the same
   commit discipline as [Server], minus the retry machinery *)
let cursor_bits = 21

let cursor_mask = (1 lsl cursor_bits) - 1

let owner p shard = shard mod p.workers

(* The read-heavy variant trades the per-shard stripe mutex for a
   per-shard reader–writer lock and work-stealing deques:

   - Puts keep the base server's shard->owner affinity and run first,
     under the shard's write lock, with per-request deadlines and the
     shard breaker fed exactly as in [Server] — so the final table, the
     breaker words, the timeout counts and each worker's virtual clock
     are per-worker sequential programs, identical under every runtime
     and schedule.
   - Gets are seeded round-robin into per-worker deques before the put
     phase, and served after it: owners pop their own deque (LIFO) and
     steal from peers once dry, reading under the shard's read lock, or
     through the lock-free stale word while the shard's breaker is
     open.  Which worker serves which get is stamp arbitration, but
     every observable is a commutative fold over the frozen table, so
     the signature cannot depend on the steal order.
   - The phase gate is a mutex+condvar broadcast; workers checkpoint
     just past their deque setup, so a crashed worker restarts, replays
     its put stream from the committed cursor, re-arrives at the gate
     and heals whatever its crash poisoned.  Workers that die before
     the checkpoint are drained by the main thread (failover), stolen
     work included. *)
let run ~seed p =
  if p.workers < 1 || p.shards < p.workers then
    invalid_arg "Rwserve.run: need workers >= 1 and shards >= workers";
  let reqs = Traffic.generate ~seed p.traffic in
  let store = Kvstore.create ~shards:p.shards ~keys:p.traffic.Traffic.keys in
  let rwlocks = Array.init p.shards (fun _ -> Api.rwlock_create ()) in
  let breakers = Api.malloc (8 * p.shards) in
  for s = 0 to p.shards - 1 do
    Api.store (breakers + (8 * s)) Breaker.empty
  done;
  let progress = Api.malloc (8 * p.workers) in
  let dq_words = Api.malloc (8 * p.workers) in
  for w = 0 to p.workers - 1 do
    Api.store (progress + (8 * w)) 0;
    Api.store (dq_words + (8 * w)) 0
  done;
  (* split the stream: puts by shard affinity, gets round-robin *)
  let puts =
    Array.of_list
      (List.filter
         (fun (r : Traffic.request) ->
           match r.Traffic.op with Traffic.Put _ -> true | Traffic.Get -> false)
         (Array.to_list reqs))
  in
  let gets =
    Array.of_list
      (List.filter
         (fun (r : Traffic.request) -> r.Traffic.op = Traffic.Get)
         (Array.to_list reqs))
  in
  let puts_of =
    Array.init p.workers (fun w ->
        Array.of_list
          (List.filter
             (fun (r : Traffic.request) ->
               owner p (Kvstore.shard_of store r.Traffic.key) = w)
             (Array.to_list puts)))
  in
  Array.iter
    (fun part ->
      if Array.length part > cursor_mask then
        invalid_arg "Rwserve.run: put stream exceeds the progress cursor")
    puts_of;
  (* host accumulators; phase-2 folds are commutative on purpose *)
  let put_served = Array.make p.workers 0 in
  let put_timed_out = Array.make p.workers 0 in
  let get_served = Array.make p.workers 0 in
  let get_stale = Array.make p.workers 0 in
  let read_sums = Array.make p.workers 0 in
  let latencies = Array.init p.workers (fun _ -> ref []) in
  (* mutex+condvar phase gate: the last worker in broadcasts *)
  let gate_m = Api.mutex_create () in
  let gate_c = Api.cond_create () in
  let gate_done = Api.malloc 8 in
  Api.store gate_done 0;

  (* the previous holder died mid-hold: single-word table writes keep
     the store consistent, so heal and carry on (cf. Server.attempt) *)
  let wr_locked rw f =
    (match Api.wrlock_check rw with
    | `Ok -> ()
    | `Poisoned -> Api.rwlock_heal rw);
    let v = f () in
    Api.rwunlock rw;
    v
  in
  let rd_locked rw f =
    (match Api.rdlock_check rw with
    | `Ok -> ()
    | `Poisoned -> Api.rwlock_heal rw);
    let v = f () in
    Api.rwunlock rw;
    v
  in
  let serve_get w (r : Traffic.request) =
    let shard = Kvstore.shard_of store r.Traffic.key in
    let b = Api.load (breakers + (8 * shard)) in
    if Breaker.state b = Breaker.Open then begin
      let v = Kvstore.stale_get store ~shard in
      read_sums.(w) <- read_sums.(w) + mix r.Traffic.key v;
      get_stale.(w) <- get_stale.(w) + 1
    end
    else begin
      let v = rd_locked rwlocks.(shard) (fun () -> Kvstore.get store r.Traffic.key) in
      read_sums.(w) <- read_sums.(w) + mix r.Traffic.key v;
      get_served.(w) <- get_served.(w) + 1
    end
  in
  let put_phase w =
    let reqs_w = puts_of.(w) in
    let prog_addr = progress + (8 * w) in
    let pw = Api.atomic_load prog_addr in
    let start = pw land cursor_mask in
    let now = ref (pw lsr cursor_bits) in
    for i = start to Array.length reqs_w - 1 do
      let r = reqs_w.(i) in
      let shard = Kvstore.shard_of store r.Traffic.key in
      let b_addr = breakers + (8 * shard) in
      if r.Traffic.arrival > !now then now := r.Traffic.arrival;
      (* span tree for the put path, exactly as in [Server]: queue +
         service cycles tile the measured latency.  Phase-2 gets are
         batch-drained with no per-request latency, so they carry no
         spans. *)
      Api.span Op.Sp_admit ~req:r.Traffic.seq ~a:r.Traffic.arrival
        ~b:(!now - r.Traffic.arrival);
      let trans = ref 0 in
      let b = ref (Api.load b_addr) in
      let update (b', t) =
        if t then incr trans;
        b := b'
      in
      update (Breaker.tick !b ~now:!now ~cooldown:p.cooldown);
      let timed_out = !now - r.Traffic.arrival > p.deadline in
      if timed_out then
        update
          (Breaker.on_failure !b ~now:!now
             ~failure_threshold:p.failure_threshold)
      else begin
        (match r.Traffic.op with
        | Traffic.Put v ->
          wr_locked rwlocks.(shard) (fun () -> Kvstore.put store r.Traffic.key v)
        | Traffic.Get -> assert false);
        now := !now + r.Traffic.cost;
        Api.span Op.Sp_service ~req:r.Traffic.seq ~a:shard ~b:r.Traffic.cost;
        update
          (Breaker.on_success !b ~now:!now
             ~half_open_successes:p.half_open_successes)
      end;
      Api.store b_addr !b;
      if !trans > 0 then
        Api.span Op.Sp_breaker ~req:r.Traffic.seq ~a:shard ~b:!trans;
      Api.span Op.Sp_response ~req:r.Traffic.seq
        ~a:(!now - r.Traffic.arrival)
        ~b:(if timed_out then 4 else 1);
      (* commit, then account on the host — a replayed request can
         never have been counted *)
      Api.atomic_store prog_addr ((!now lsl cursor_bits) lor (i + 1));
      if timed_out then put_timed_out.(w) <- put_timed_out.(w) + 1
      else begin
        put_served.(w) <- put_served.(w) + 1;
        latencies.(w) := (!now - r.Traffic.arrival) :: !(latencies.(w))
      end
    done
  in
  let read_phase w d =
    let rec drain_own () =
      match Api.deque_pop d with
      | `Item i ->
        serve_get w gets.(i);
        drain_own ()
      | `Poisoned ->
        Api.deque_heal d;
        drain_own ()
      | `Empty -> ()
    in
    let rec drain_steal () =
      match Api.deque_steal ~own:d () with
      | `Item i ->
        serve_get w gets.(i);
        drain_steal ()
      | `Empty -> ()
    in
    drain_own ();
    drain_steal ()
  in
  let tids =
    List.init p.workers (fun w ->
        Api.spawn (fun () ->
            let d = Api.deque_create () in
            Api.store (dq_words + (8 * w)) (d :> int);
            let n = Array.length gets in
            let i = ref w in
            while !i < n do
              Api.deque_push d !i;
              i := !i + p.workers
            done;
            let work () =
              put_phase w;
              Api.lock gate_m;
              Api.store gate_done (Api.load gate_done + 1);
              if Api.load gate_done >= p.workers then Api.cond_broadcast gate_c
              else
                while Api.load gate_done < p.workers do
                  Api.cond_wait gate_c gate_m
                done;
              Api.unlock gate_m;
              read_phase w d
            in
            Api.checkpoint work;
            work ()))
  in
  let crashed =
    List.mapi (fun w tid -> (w, Api.join_check tid)) tids
    |> List.filter_map (fun (w, st) -> if st = `Crashed then Some w else None)
  in
  (* failover: apply the dead workers' uncommitted puts (write lock,
     healing on the way), then steal their leftover gets *)
  let failed_over = ref 0 in
  List.iter
    (fun w ->
      let reqs_w = puts_of.(w) in
      let cursor = Api.atomic_load (progress + (8 * w)) land cursor_mask in
      for i = cursor to Array.length reqs_w - 1 do
        let r = reqs_w.(i) in
        let shard = Kvstore.shard_of store r.Traffic.key in
        (match r.Traffic.op with
        | Traffic.Put v ->
          wr_locked rwlocks.(shard) (fun () -> Kvstore.put store r.Traffic.key v)
        | Traffic.Get -> assert false);
        incr failed_over
      done;
      let dw = Api.load (dq_words + (8 * w)) in
      if dw > 0 then Api.deque_heal (Api.Handle.deque_of_int dw))
    crashed;
  if crashed <> [] then begin
    let rec drain () =
      match Api.deque_steal () with
      | `Item i ->
        serve_get 0 gets.(i);
        incr failed_over;
        drain ()
      | `Empty -> ()
    in
    drain ()
  end;
  (* aggregate *)
  let sum a = Array.fold_left ( + ) 0 a in
  let m = Metrics.create () in
  Array.iter
    (fun l -> List.iter (Metrics.observe m "rwserve.latency") !l)
    latencies;
  let latency =
    match Metrics.histogram m "rwserve.latency" with
    | Some s -> s
    | None -> { Metrics.count = 0; sum = 0; min = 0; max = 0; buckets = [] }
  in
  let p50 = Metrics.quantile latency 0.5 in
  let p99 = Metrics.quantile latency 0.99 in
  let transitions = ref 0 in
  for s = 0 to p.shards - 1 do
    transitions :=
      !transitions + Breaker.transitions (Api.load (breakers + (8 * s)))
  done;
  let makespan = ref 0 in
  for w = 0 to p.workers - 1 do
    let clk = Api.atomic_load (progress + (8 * w)) lsr cursor_bits in
    if clk > !makespan then makespan := clk
  done;
  let r =
    {
      total = Array.length reqs;
      puts = Array.length puts;
      puts_served = sum put_served;
      puts_timed_out = sum put_timed_out;
      gets = Array.length gets;
      gets_served = sum get_served;
      gets_stale = sum get_stale;
      failed_over = !failed_over;
      breaker_transitions = !transitions;
      checksum = Kvstore.checksum store;
      read_digest = sum read_sums;
      makespan = !makespan;
      p50;
      p99;
    }
  in
  List.iter Api.output_int
    [
      r.total; r.puts_served; r.puts_timed_out; r.gets_served; r.gets_stale;
      r.failed_over; r.breaker_transitions; r.checksum; r.read_digest;
      r.makespan; r.p50; r.p99;
    ];
  Api.server_mark ~n:(r.puts_served + r.gets_served) Rfdet_sim.Op.Sv_served;
  Api.server_mark ~n:r.puts_timed_out Rfdet_sim.Op.Sv_timed_out;
  Api.server_mark ~n:r.gets_stale Rfdet_sim.Op.Sv_stale_read;
  Api.server_mark ~n:r.breaker_transitions Rfdet_sim.Op.Sv_breaker_transition;
  r

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "requests        %10d  (%d puts, %d gets)" r.total r.puts r.gets;
  line "  puts served   %10d" r.puts_served;
  line "  puts timed out%10d" r.puts_timed_out;
  line "  gets served   %10d" r.gets_served;
  line "  gets stale    %10d" r.gets_stale;
  line "  failed over   %10d" r.failed_over;
  line "breaker flips   %10d" r.breaker_transitions;
  line "put makespan    %10d cycles" r.makespan;
  line "put latency     p50 %d  p99 %d" r.p50 r.p99;
  line "signature parts: table=%08x reads=%08x" r.checksum r.read_digest;
  Buffer.contents b
