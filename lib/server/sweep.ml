module Par = Rfdet_par.Par

let default_rates = [ 400; 200; 150; 120; 100; 90; 80; 70; 60; 50 ]

let run ?(jobs = 1) ?(rates = default_rates) ~f () =
  (* each offered load is a complete independent simulation; map them
     across domains and keep the rows in rate order *)
  Par.map_ordered ~jobs (fun rate -> (rate, f ~rate)) rates

let report_fields ?rate (rep : Server.report) =
  (match rate with None -> [] | Some r -> [ ("rate", r) ])
  @ [
      ("total", rep.Server.total); ("served", rep.Server.served);
      ("stale_served", rep.Server.stale_served); ("shed", rep.Server.shed);
      ("timed_out", rep.Server.timed_out); ("failed", rep.Server.failed);
      ("failed_over", rep.Server.failed_over);
      ("retries", rep.Server.retries);
      ("breaker_transitions", rep.Server.breaker_transitions);
      ("latency_p50", rep.Server.p50); ("latency_p99", rep.Server.p99);
      ("latency_p999", rep.Server.p999); ("makespan", rep.Server.makespan);
    ]

let json_obj ~indent fields =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n%s  \"%s\": %d"
           (if i = 0 then "" else ",")
           indent k v))
    fields;
  Buffer.add_string b (Printf.sprintf "\n%s}" indent);
  Buffer.contents b

let report_json rep = json_obj ~indent:"" (report_fields rep) ^ "\n"

let to_json rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (rate, rep) ->
      Buffer.add_string b (if i = 0 then "\n  " else ",\n  ");
      Buffer.add_string b (json_obj ~indent:"  " (report_fields ~rate rep)))
    rows;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let render_header () =
  Printf.sprintf "%6s %8s %8s %8s %8s %8s %10s %10s %10s %6s" "rate" "served"
    "stale" "shed" "timeout" "failover" "p50" "p99" "p999" "flips"

let render_row ~rate (rep : Server.report) =
  Printf.sprintf "%6d %8d %8d %8d %8d %8d %10d %10d %10d %6d" rate
    rep.Server.served rep.Server.stale_served rep.Server.shed
    rep.Server.timed_out rep.Server.failed_over rep.Server.p50 rep.Server.p99
    rep.Server.p999 rep.Server.breaker_transitions
