(** The read-heavy rwlock+deque variant of the KV server.

    Per-shard reader–writer locks replace the stripe mutexes, and the
    read traffic is distributed through per-worker work-stealing deques:
    puts run first (shard->owner affinity, write locks, deadlines and
    breakers as in [Server]), a mutex+condvar gate separates the phases,
    then gets drain owner-pop / peer-steal under read locks — or through
    the lock-free stale word while a shard's breaker is open.

    Every phase-2 observable is a commutative fold over the frozen
    table, so the report is bit-identical whatever runtime, schedule or
    steal order served each get.  Crashed workers restart from the
    checkpoint past their deque setup (replaying puts from the committed
    cursor and healing poisoned locks), or are drained by the main
    thread when they die before it.

    [run] must be called from the simulated main thread. *)

type params = {
  workers : int;
  shards : int;  (** must be >= workers; shard s is owned by worker
                     [s mod workers] *)
  traffic : Traffic.params;
  deadline : int;  (** per-put budget from arrival, virtual cycles *)
  failure_threshold : int;
  cooldown : int;
  half_open_successes : int;
  stale_cost : int;
}

val default : params
(** [Server.default]'s figures, minus the retry machinery (a blocking
    write lock has no timeout to retry around). *)

type report = {
  total : int;
  puts : int;
  puts_served : int;
  puts_timed_out : int;
  gets : int;
  gets_served : int;
  gets_stale : int;  (** read through the stale word, breaker open *)
  failed_over : int;  (** drained by the main thread after a crash *)
  breaker_transitions : int;
  checksum : int;  (** table digest after all joins *)
  read_digest : int;  (** commutative digest over every get *)
  makespan : int;  (** max worker virtual clock, put phase *)
  p50 : int;  (** put latency quantiles *)
  p99 : int;
}

val run : seed:int64 -> params -> report
(** Generate traffic, apply the puts, broadcast the phase gate, steal
    the gets dry, and emit the report's key figures as observable
    outputs — so any divergence changes the run signature. *)

val render : report -> string
(** The [rfdet serve --rw] console report. *)
