module Det_rng = Rfdet_util.Det_rng

type op = Get | Put of int

type request = {
  seq : int;  (** global arrival order, 0-based *)
  arrival : int;  (** arrival time, simulated cycles from epoch *)
  key : int;
  op : op;
  cost : int;  (** service cost in simulated cycles *)
}

type params = {
  requests : int;
  keys : int;
  zipf_theta : float;
  mean_interarrival : int;
  get_per_1000 : int;
  mean_service : int;
  tail_per_1000 : int;
  tail_factor : int;
}

let default =
  {
    requests = 2_000;
    keys = 4_096;
    zipf_theta = 0.99;
    mean_interarrival = 70;
    get_per_1000 = 900;
    mean_service = 400;
    tail_per_1000 = 10;
    tail_factor = 8;
  }

(* Zipf(theta) sampler over [0, keys): precompute the CDF once and
   binary-search a uniform draw.  theta = 0 degenerates to uniform. *)
let zipf_cdf ~keys ~theta =
  let cdf = Array.make keys 0. in
  let acc = ref 0. in
  for i = 0 to keys - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** theta));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  Array.map (fun c -> c /. total) cdf

let zipf_pick cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Ranks are scattered over the key space so hot keys are not all
   clustered in the low shards.  Multiplying by an odd constant is a
   bijection of the enclosing power-of-two space; cycle-walking draws
   that land at or above [keys] keeps the rank->key map injective for
   ANY key count (a plain [mod keys] would collide distinct ranks
   whenever gcd(2654435761, keys) > 1).  For power-of-two key spaces
   this is the single multiply it always was. *)
let scatter ~keys rank =
  let bits = ref 0 in
  while 1 lsl !bits < keys do
    incr bits
  done;
  let mask = (1 lsl !bits) - 1 in
  let x = ref (rank * 2654435761 land mask) in
  while !x >= keys do
    x := !x * 2654435761 land mask
  done;
  !x

let generate ~seed p =
  let rng = Det_rng.create seed in
  let arrivals = Det_rng.split rng in
  let picks = Det_rng.split rng in
  let cdf = zipf_cdf ~keys:p.keys ~theta:p.zipf_theta in
  let clock = ref 0 in
  Array.init p.requests (fun seq ->
      let gap =
        int_of_float
          (Det_rng.exponential arrivals
             ~mean:(float_of_int p.mean_interarrival))
      in
      clock := !clock + gap;
      let rank = zipf_pick cdf (Det_rng.float picks 1.0) in
      let key = scatter ~keys:p.keys rank in
      let op =
        if Det_rng.int picks 1000 < p.get_per_1000 then Get
        else Put (Det_rng.int picks 0x3FFF_FFFF)
      in
      let base =
        1
        + int_of_float
            (Det_rng.exponential picks ~mean:(float_of_int p.mean_service))
      in
      let cost =
        if Det_rng.int picks 1000 < p.tail_per_1000 then base * p.tail_factor
        else base
      in
      { seq; arrival = !clock; key; op; cost })
