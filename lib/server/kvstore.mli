(** Sharded, lock-striped in-memory KV table in simulated memory.

    Key [k] lives in shard [k mod shards]; each shard has one stripe
    lock and one stale-cache word.  [get]/[put] are plain loads/stores —
    the caller must hold the shard's lock (or be the sole reachable
    thread, e.g. the main thread after joins).  [stale_get] is lock-free
    by design: it backs degraded reads while a shard's breaker is open. *)

type t = {
  shards : int;
  keys : int;
  locks : Rfdet_sim.Api.mutex array;
  data : int;  (** base address, [keys] words *)
  stale : int;  (** base address, [shards] words *)
}

val create : shards:int -> keys:int -> t
(** Allocates and zeroes the table; call from the main thread before
    spawning workers. *)

val shard_of : t -> int -> int

val lock : t -> int -> Rfdet_sim.Api.mutex
(** The stripe lock of a shard. *)

val get : t -> int -> int

val put : t -> int -> int -> unit
(** Stores the value and refreshes the shard's stale-cache word (both
    under the caller's lock). *)

val stale_get : t -> shard:int -> int
(** The shard's stale-cache word, without taking the lock. *)

val checksum : t -> int
(** Order-fixed digest of every data word; call after all workers have
    been joined. *)

val mix : int -> int -> int
(** The digest combiner (same as [Wl_common.mix]). *)
