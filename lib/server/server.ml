module Api = Rfdet_sim.Api
module Op = Rfdet_sim.Op
module Metrics = Rfdet_obs.Metrics
module Breaker = Resilience.Breaker
module Retry = Resilience.Retry
module Shed = Resilience.Shed

type params = {
  workers : int;
  shards : int;
  traffic : Traffic.params;
  deadline : int;
  lock_slack : int;
  max_retries : int;
  backoff_base : int;
  soft_lag : int;
  hard_lag : int;
  drop_per_1000 : int;
  failure_threshold : int;
  cooldown : int;
  half_open_successes : int;
  stale_cost : int;
  shed_cost : int;
}

let default =
  {
    workers = 4;
    shards = 16;
    traffic = Traffic.default;
    deadline = 30_000;
    lock_slack = 2_000;
    max_retries = 3;
    backoff_base = 200;
    soft_lag = 15_000;
    hard_lag = 60_000;
    drop_per_1000 = 600;
    failure_threshold = 8;
    cooldown = 20_000;
    half_open_successes = 3;
    stale_cost = 40;
    shed_cost = 4;
  }

type report = {
  total : int;
  served : int;
  stale_served : int;
  shed : int;
  timed_out : int;
  failed : int;
  failed_over : int;
  retries : int;
  breaker_transitions : int;
  checksum : int;
  digest : int;
  event_digest : int;
  makespan : int;
  latency : Metrics.hist_summary;
  p50 : int;
  p99 : int;
  p999 : int;
  events : string array;  (** per-worker logs; empty unless recorded *)
}

let mix = Kvstore.mix

(* progress word: (virtual clock lsl 21) lor cursor *)
let cursor_bits = 21

let cursor_mask = (1 lsl cursor_bits) - 1

let owner p shard = shard mod p.workers

type outcome = O_served | O_stale | O_shed | O_timed_out | O_failed

let outcome_code = function
  | O_served -> 1
  | O_stale -> 2
  | O_shed -> 3
  | O_timed_out -> 4
  | O_failed -> 5

let outcome_name = function
  | O_served -> "served"
  | O_stale -> "stale"
  | O_shed -> "shed"
  | O_timed_out -> "timed_out"
  | O_failed -> "failed"

(* Per-worker host-side accumulators.  These live OUTSIDE the worker
   closure so they survive a deterministic restart; exactly-once is
   guaranteed by buffering every observable effect of a request — the
   digest contribution and the breaker-word update — locally while the
   request executes and recording it only after the request's progress
   word has been atomically published.  An injected crash preempts an
   op entirely, so either the commit happened (the replay skips the
   request) or it did not (nothing was recorded and the journaled
   breaker pre-state is restored), and a replayed request can never
   have been recorded. *)
type acc = {
  mutable served : int;
  mutable stale : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable failed : int;
  mutable retries : int;
  mutable digest : int;
  mutable event_digest : int;
  log : Buffer.t;
}

let run ?(record_events = false) ~seed p =
  if p.workers < 1 || p.shards < p.workers then
    invalid_arg "Server.run: need workers >= 1 and shards >= workers";
  let reqs = Traffic.generate ~seed p.traffic in
  let store = Kvstore.create ~shards:p.shards ~keys:p.traffic.keys in
  let breakers = Api.malloc (8 * p.shards) in
  for s = 0 to p.shards - 1 do
    Api.store (breakers + (8 * s)) Breaker.empty
  done;
  let progress = Api.malloc (8 * p.workers) in
  for w = 0 to p.workers - 1 do
    Api.store (progress + (8 * w)) 0
  done;
  (* per-worker breaker undo journal: [pre-state; tag] where tag = i+1
     marks a journaled pre-state for request index i.  Written ahead of
     the single breaker publish, so a crash between the publish and the
     progress-word commit can be rolled back before the replay. *)
  let undo = Api.malloc (16 * p.workers) in
  for w = 0 to p.workers - 1 do
    Api.store (undo + (16 * w)) 0;
    Api.store (undo + (16 * w) + 8) 0
  done;
  (* shard -> worker affinity: all requests for a shard are handled by
     one worker, so fault-free runs are per-worker sequential programs
     and identical under every runtime and schedule.  The stripe locks
     are still taken per access: they are what makes failover safe. *)
  let work_of =
    let count = Array.make p.workers 0 in
    Array.iter
      (fun (r : Traffic.request) ->
        let w = owner p (Kvstore.shard_of store r.key) in
        count.(w) <- count.(w) + 1)
      reqs;
    let parts =
      Array.init p.workers (fun w ->
          Array.make count.(w)
            { Traffic.seq = 0; arrival = 0; key = 0; op = Get; cost = 0 })
    in
    let fill = Array.make p.workers 0 in
    Array.iter
      (fun (r : Traffic.request) ->
        let w = owner p (Kvstore.shard_of store r.key) in
        parts.(w).(fill.(w)) <- r;
        fill.(w) <- fill.(w) + 1)
      reqs;
    parts
  in
  Array.iter
    (fun part ->
      if Array.length part > cursor_mask then
        invalid_arg
          (Printf.sprintf
             "Server.run: %d requests for one worker exceeds the %d-bit \
              progress cursor (max %d); add workers or shard the traffic"
             (Array.length part) cursor_bits cursor_mask))
    work_of;
  let accs =
    Array.init p.workers (fun _ ->
        {
          served = 0;
          stale = 0;
          shed = 0;
          timed_out = 0;
          failed = 0;
          retries = 0;
          digest = 0;
          event_digest = 0;
          log = Buffer.create (if record_events then 4096 else 16);
        })
  in
  let m = Metrics.create () in
  let latencies = Array.init p.workers (fun _ -> ref []) in

  let worker_body w () =
    let a = accs.(w) in
    let reqs_w = work_of.(w) in
    let prog_addr = progress + (8 * w) in
    let undo_val_addr = undo + (16 * w) in
    let undo_tag_addr = undo + (16 * w) + 8 in
    (* resume point: everything before the cursor is committed and
       already accounted; the virtual clock continues where it was *)
    let pw = Api.atomic_load prog_addr in
    let start = pw land cursor_mask in
    (* roll back a breaker publish left by a crash that hit between the
       publish and the commit: tag = start+1 means the journaled
       pre-state belongs to the request about to be replayed *)
    if start < Array.length reqs_w && Api.load undo_tag_addr = start + 1 then begin
      let shard = Kvstore.shard_of store reqs_w.(start).Traffic.key in
      Api.store (breakers + (8 * shard)) (Api.load undo_val_addr)
    end;
    let now = ref (pw lsr cursor_bits) in
    let mirrored = ref !now in
    for i = start to Array.length reqs_w - 1 do
      let r = reqs_w.(i) in
      let shard = Kvstore.shard_of store r.Traffic.key in
      let b_addr = breakers + (8 * shard) in
      if r.Traffic.arrival > !now then now := r.Traffic.arrival;
      let lag = !now - r.Traffic.arrival in
      (* span nodes are emitted unconditionally (zero-cost engine ops);
         together they tile the request's latency exactly: every cycle
         of [response - arrival] appears in exactly one of queue,
         backoff, service, stale or shed.  A crash replays the whole
         tree; the offline collector keeps the last completed emission,
         mirroring the exactly-once commit below. *)
      Api.span Op.Sp_admit ~req:r.Traffic.seq ~a:r.Traffic.arrival ~b:lag;
      let attempts = ref 0 in
      let trans = ref 0 in
      (* breaker updates are buffered in [b] — this worker is the
         shard's only writer — and published once, just before the
         commit; [contrib] buffers the digest term the same way *)
      let b0 = Api.load b_addr in
      let b = ref b0 in
      let update (b', t) =
        if t then incr trans;
        b := b'
      in
      let contrib = ref None in
      update (Breaker.tick !b ~now:!now ~cooldown:p.cooldown);
      let serve () =
        (match r.Traffic.op with
        | Traffic.Get ->
          let v = Kvstore.get store r.Traffic.key in
          contrib := Some (mix r.Traffic.key v)
        | Traffic.Put v -> Kvstore.put store r.Traffic.key v);
        now := !now + r.Traffic.cost
      in
      let rec attempt n =
        if p.deadline - (!now - r.Traffic.arrival) <= 0 then begin
          update
            (Breaker.on_failure !b ~now:!now
               ~failure_threshold:p.failure_threshold);
          O_timed_out
        end
        else if n > p.max_retries then begin
          update
            (Breaker.on_failure !b ~now:!now
               ~failure_threshold:p.failure_threshold);
          O_failed
        end
        else begin
          let budget = p.deadline - (!now - r.Traffic.arrival) in
          let mu = Kvstore.lock store shard in
          match Api.lock_timed mu ~timeout:(budget + p.lock_slack) with
          | `Ok ->
            Api.span Op.Sp_attempt ~req:r.Traffic.seq ~a:n ~b:0;
            serve ();
            Api.span Op.Sp_service ~req:r.Traffic.seq ~a:shard
              ~b:r.Traffic.cost;
            Api.unlock mu;
            update
              (Breaker.on_success !b ~now:!now
                 ~half_open_successes:p.half_open_successes);
            O_served
          | `Poisoned ->
            (* the previous holder (this worker, pre-crash, or a
               failed-over peer) died mid-hold; single-word puts keep
               the table consistent, so heal and serve *)
            Api.span Op.Sp_attempt ~req:r.Traffic.seq ~a:n ~b:1;
            ignore (Api.mutex_heal mu);
            serve ();
            Api.span Op.Sp_service ~req:r.Traffic.seq ~a:shard
              ~b:r.Traffic.cost;
            Api.unlock mu;
            update
              (Breaker.on_success !b ~now:!now
                 ~half_open_successes:p.half_open_successes);
            O_served
          | `Timed_out ->
            Api.span Op.Sp_attempt ~req:r.Traffic.seq ~a:n ~b:2;
            update
              (Breaker.on_failure !b ~now:!now
                 ~failure_threshold:p.failure_threshold);
            incr attempts;
            let back =
              Retry.backoff ~seed ~worker:w ~seq:r.Traffic.seq ~attempt:n
                ~base:p.backoff_base
            in
            Api.span Op.Sp_backoff ~req:r.Traffic.seq ~a:n ~b:back;
            now := !now + back;
            attempt (n + 1)
        end
      in
      let outcome =
        if Breaker.state !b = Breaker.Open then begin
          match r.Traffic.op with
          | Traffic.Get ->
            (* degraded read: the shard's stale-cache word, no lock *)
            let v = Kvstore.stale_get store ~shard in
            contrib := Some (mix r.Traffic.key v);
            now := !now + p.stale_cost;
            Api.span Op.Sp_stale ~req:r.Traffic.seq ~a:shard
              ~b:p.stale_cost;
            O_stale
          | Traffic.Put _ ->
            now := !now + p.shed_cost;
            Api.span Op.Sp_shed ~req:r.Traffic.seq ~a:shard ~b:p.shed_cost;
            O_shed
        end
        else
          match
            Shed.decide ~seed ~seq:r.Traffic.seq ~lag ~soft:p.soft_lag
              ~hard:p.hard_lag ~drop_per_1000:p.drop_per_1000
          with
          | Shed.Shed ->
            now := !now + p.shed_cost;
            Api.span Op.Sp_shed ~req:r.Traffic.seq ~a:shard ~b:p.shed_cost;
            O_shed
          | Shed.Admit -> attempt 0
      in
      (* publish the breaker word once, journaling its pre-state first:
         should a crash land on any op from here to the commit, the
         restart (or the containment drain) restores the pre-state and
         the replay re-derives the update from scratch *)
      if !b <> b0 then begin
        Api.store undo_val_addr b0;
        Api.store undo_tag_addr (i + 1);
        Api.store b_addr !b
      end;
      (* mirror the virtual clock into the engine so traces, profiles
         and fault sites see the time this request consumed *)
      if !now > !mirrored then begin
        Api.tick (!now - !mirrored);
        mirrored := !now
      end;
      if !trans > 0 then
        Api.span Op.Sp_breaker ~req:r.Traffic.seq ~a:shard ~b:!trans;
      (* the response node closes the tree strictly before the commit:
         a crash between the two replays the request and re-emits a
         complete tree, so every committed request has one *)
      Api.span Op.Sp_response ~req:r.Traffic.seq
        ~a:(!now - r.Traffic.arrival)
        ~b:(outcome_code outcome);
      (* commit: publish (clock, cursor) and, through the release, the
         table/breaker writes of this request *)
      Api.atomic_store prog_addr ((!now lsl cursor_bits) lor (i + 1));
      (* host accounting, strictly after the commit *)
      (match !contrib with
      | Some c -> a.digest <- mix a.digest c
      | None -> ());
      (match outcome with
      | O_served ->
        a.served <- a.served + 1;
        latencies.(w) := (!now - r.Traffic.arrival) :: !(latencies.(w))
      | O_stale -> a.stale <- a.stale + 1
      | O_shed -> a.shed <- a.shed + 1
      | O_timed_out -> a.timed_out <- a.timed_out + 1
      | O_failed -> a.failed <- a.failed + 1);
      a.retries <- a.retries + !attempts;
      a.event_digest <-
        mix a.event_digest
          (mix r.Traffic.seq
             (mix (outcome_code outcome) ((!attempts lsl 8) lor !trans)));
      if record_events then
        Buffer.add_string a.log
          (Printf.sprintf "%d %s a=%d t=%d\n" r.Traffic.seq
             (outcome_name outcome) !attempts !trans)
    done
  in

  (* start gate, as the pool benchmarks do, with the restart point just
     past it so a recovered worker does not re-arrive *)
  let gate = if p.workers > 1 then Some (Api.barrier_create p.workers) else None
  in
  let tids =
    List.init p.workers (fun w ->
        Api.spawn (fun () ->
            (match gate with Some g -> Api.barrier_wait g | None -> ());
            let work = worker_body w in
            Api.checkpoint work;
            work ()))
  in
  let crashed =
    List.mapi (fun w tid -> (w, Api.join_check tid)) tids
    |> List.filter_map (fun (w, st) -> if st = `Crashed then Some w else None)
  in
  (* deterministic failover: the main thread drains a dead worker's
     uncommitted requests, healing any lock the crash poisoned.  Best
     effort — no deadlines or breakers — and excluded from the latency
     histogram. *)
  let failed_over = ref 0 in
  List.iter
    (fun w ->
      let a = accs.(w) in
      let reqs_w = work_of.(w) in
      let cursor = Api.atomic_load (progress + (8 * w)) land cursor_mask in
      (* the crash may have published a breaker update whose request
         never committed; restore the journaled pre-state so the final
         transition counts reflect committed requests only *)
      if cursor < Array.length reqs_w
         && Api.load (undo + (16 * w) + 8) = cursor + 1
      then begin
        let shard = Kvstore.shard_of store reqs_w.(cursor).Traffic.key in
        Api.store (breakers + (8 * shard)) (Api.load (undo + (16 * w)))
      end;
      for i = cursor to Array.length reqs_w - 1 do
        let r = reqs_w.(i) in
        let shard = Kvstore.shard_of store r.Traffic.key in
        let mu = Kvstore.lock store shard in
        (match Api.lock_check mu with
        | `Ok -> ()
        | `Poisoned -> ignore (Api.mutex_heal mu));
        (match r.Traffic.op with
        | Traffic.Get ->
          let v = Kvstore.get store r.Traffic.key in
          a.digest <- mix a.digest (mix r.Traffic.key v)
        | Traffic.Put v -> Kvstore.put store r.Traffic.key v);
        Api.unlock mu;
        incr failed_over
      done)
    crashed;
  (* aggregate *)
  let sum f = Array.fold_left (fun acc a -> acc + f a) 0 accs in
  let served = sum (fun a -> a.served) in
  let stale_served = sum (fun a -> a.stale) in
  let shed = sum (fun a -> a.shed) in
  let timed_out = sum (fun a -> a.timed_out) in
  let failed = sum (fun a -> a.failed) in
  let retries = sum (fun a -> a.retries) in
  let digest = Array.fold_left (fun acc a -> mix acc a.digest) 0 accs in
  let event_digest =
    Array.fold_left (fun acc a -> mix acc a.event_digest) 0 accs
  in
  let transitions = ref 0 in
  for s = 0 to p.shards - 1 do
    transitions :=
      !transitions + Breaker.transitions (Api.load (breakers + (8 * s)))
  done;
  let makespan = ref 0 in
  for w = 0 to p.workers - 1 do
    let clk = Api.atomic_load (progress + (8 * w)) lsr cursor_bits in
    if clk > !makespan then makespan := clk
  done;
  Array.iter
    (fun l -> List.iter (Metrics.observe m "server.latency") !l)
    latencies;
  let latency =
    match Metrics.histogram m "server.latency" with
    | Some s -> s
    | None -> { Metrics.count = 0; sum = 0; min = 0; max = 0; buckets = [] }
  in
  let p50 = Metrics.quantile latency 0.5 in
  let p99 = Metrics.quantile latency 0.99 in
  let p999 = Metrics.quantile latency 0.999 in
  let checksum = Kvstore.checksum store in
  let hist_digest =
    List.fold_left
      (fun acc (u, n) -> mix acc (mix u n))
      latency.Metrics.count latency.Metrics.buckets
  in
  (* observable outputs: any divergence in policy behavior, table
     content or the latency distribution changes the run signature *)
  List.iter Api.output_int
    [
      Array.length reqs; served; stale_served; shed; timed_out; failed;
      !failed_over; retries; !transitions; checksum; digest; event_digest;
      hist_digest; p50; p99; p999; !makespan;
    ];
  (* profile counters, count-carrying to keep the op stream small *)
  Api.server_mark ~n:served Rfdet_sim.Op.Sv_served;
  Api.server_mark ~n:shed Rfdet_sim.Op.Sv_shed;
  Api.server_mark ~n:retries Rfdet_sim.Op.Sv_retried;
  Api.server_mark ~n:timed_out Rfdet_sim.Op.Sv_timed_out;
  Api.server_mark ~n:!transitions Rfdet_sim.Op.Sv_breaker_transition;
  Api.server_mark ~n:stale_served Rfdet_sim.Op.Sv_stale_read;
  {
    total = Array.length reqs;
    served;
    stale_served;
    shed;
    timed_out;
    failed;
    failed_over = !failed_over;
    retries;
    breaker_transitions = !transitions;
    checksum;
    digest;
    event_digest;
    makespan = !makespan;
    latency;
    p50;
    p99;
    p999;
    events = Array.map (fun a -> Buffer.contents a.log) accs;
  }

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  let pct v = 100. *. float_of_int v /. float_of_int (max 1 r.total) in
  line "requests        %10d" r.total;
  line "  served        %10d  %5.1f%%" r.served (pct r.served);
  line "  stale reads   %10d  %5.1f%%" r.stale_served (pct r.stale_served);
  line "  shed          %10d  %5.1f%%" r.shed (pct r.shed);
  line "  timed out     %10d  %5.1f%%" r.timed_out (pct r.timed_out);
  line "  failed        %10d  %5.1f%%" r.failed (pct r.failed);
  line "  failed over   %10d  %5.1f%%" r.failed_over (pct r.failed_over);
  line "retry attempts  %10d" r.retries;
  line "breaker flips   %10d" r.breaker_transitions;
  line "makespan        %10d cycles" r.makespan;
  line "latency (served, simulated cycles)";
  line "  p50           %10d" r.p50;
  line "  p99           %10d" r.p99;
  line "  p999          %10d" r.p999;
  line "  max           %10d" r.latency.Metrics.max;
  line "signature parts: table=%08x digest=%08x events=%08x" r.checksum
    r.digest r.event_digest;
  Buffer.contents b
