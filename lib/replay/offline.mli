(** Offline analyses over recorded decision journals.

    The journal's header pins (workload, threads, scale, input seed) —
    everything the happens-before relation of a DLRC execution depends
    on.  Synchronization order under the arbiter is decided by
    (icount, tid) stamps, which are jitter- and schedule-independent,
    so the race set of a run is a pure function of those header fields:
    detection over the journal is {e complete} (Guo et al.'s
    record-then-detect-offline result), not a sample of one
    interleaving.  That is why [detect] needs only the header — the
    decision stream itself adds nothing to the happens-before graph —
    and why the same journal replayed from any of the 6 runtimes yields
    the identical race report. *)

val detect : Journal.header -> (Rfdet_detect.Race_detector.report, string) result
(** Re-execute the header's workload under
    [Rfdet_detect.Race_detector] and report every racy address. *)

val minimize_repro :
  Journal.header ->
  Rfdet_detect.Race_detector.report ->
  (Rfdet_check.Trace.t * int, string) result
(** Feed a detected race set through the [Rfdet_check.Shrink] ddmin
    shrinker: capture the full schedule-choice list of a detector run,
    then minimize it under the predicate "the race digest is
    preserved".  Because the digest is schedule-invariant, ddmin cuts
    the choices to (near) nothing — the honest minimal repro: the
    workload itself races, under every schedule.  Returns the
    minimized corpus trace (runtime [Explore.detector_runtime], expect
    = digest) and the number of replays spent, ready for
    [test/corpus/]. *)

val bench_probe : unit -> Rfdet_harness.Bench_core.journal_size
(** The log-minimality benchmark behind BENCH_CORE.json's [journal]
    stanza: record the kvserver end-to-end workload to a throwaway
    journal and compare its size against the full causal trace of the
    same run.  All fields are simulated/deterministic, so the committed
    numbers only change when the format or the workload does. *)
