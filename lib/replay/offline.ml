module Engine = Rfdet_sim.Engine
module Runner = Rfdet_harness.Runner
module Bench_core = Rfdet_harness.Bench_core
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Race = Rfdet_detect.Race_detector
module Trace = Rfdet_check.Trace
module Explore = Rfdet_check.Explore
module Shrink = Rfdet_check.Shrink

let detect (h : Journal.header) =
  match Registry.find h.workload with
  | exception Not_found -> Error (Printf.sprintf "unknown workload %S" h.workload)
  | wl ->
    let cfg =
      {
        Workload.threads = h.threads;
        scale = h.scale;
        input_seed = h.input_seed;
      }
    in
    Ok (Race.check ~main:(wl.Workload.main cfg))

let minimize_repro (h : Journal.header) (report : Race.report) =
  if report.Race.races = [] then
    Error "no races to minimize (the journal's run is race-free)"
  else begin
    let digest = Race.digest report in
    let base =
      Trace.make ~workload:h.workload ~threads:h.threads ~scale:h.scale
        ~input_seed:h.input_seed ~runtime:Explore.detector_runtime ~choices:[]
        ~expect:digest ()
    in
    (* capture the full default choice list of one detector run, then
       ddmin it under "the race digest is preserved" *)
    let probe = Explore.replay ~strict:false base in
    match probe.Explore.r_error with
    | Some e -> Error ("race repro does not replay: " ^ e)
    | None -> (
      let seeded = { base with Trace.choices = probe.Explore.r_choices } in
      let fails (r : Explore.replay_result) =
        r.Explore.r_signature = Some digest
      in
      match Shrink.shrink ~fails seeded with
      | None -> Error "shrinker rejected a repro that just replayed (bug)"
      | Some { Shrink.minimized; tries; _ } ->
        let note =
          Printf.sprintf
            "auto-minimized race repro: %d race(s) on %d address(es), digest \
             pinned in expect (ddmin, %d replays, %d -> %d choices)"
            (List.length report.Race.races)
            report.Race.racy_addresses tries
            (List.length probe.Explore.r_choices)
            (List.length minimized.Trace.choices)
        in
        Ok ({ minimized with Trace.note = Some note }, tries))
  end

let bench_probe () : Bench_core.journal_size =
  let workload = Registry.find "kvserver" in
  let spec =
    {
      Session.workload;
      runtime = Runner.rfdet_ci;
      threads = 4;
      scale = 1.0;
      input_seed = 42L;
      sched_seed = 1L;
      jitter = 0.;
      fault_mode = Engine.Contain;
      faults = None;
    }
  in
  let path = Filename.temp_file "rfdet-journal" ".rfdj" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let summary = Session.record ~path spec in
      let journal_bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> in_channel_length ic)
      in
      let sink = Rfdet_obs.Sink.create () in
      let traced =
        Runner.run ~threads:spec.Session.threads ~scale:spec.Session.scale
          ~input_seed:spec.Session.input_seed
          ~sched_seed:spec.Session.sched_seed ~obs:sink spec.Session.runtime
          workload
      in
      if traced.Runner.signature <> summary.Session.s_signature then
        failwith "journal bench probe: traced run diverged from recorded run";
      let trace_bytes =
        Rfdet_obs.Trace.lines_bytes (Rfdet_obs.Sink.events sink)
      in
      let requests =
        traced.Runner.profile.Rfdet_sim.Profile.requests_served
      in
      {
        Bench_core.j_workload = workload.Workload.name;
        j_runtime = Runner.cli_name spec.Session.runtime;
        j_threads = spec.Session.threads;
        j_requests = requests;
        j_decisions = summary.Session.s_decisions;
        j_journal_bytes = journal_bytes;
        j_trace_bytes = trace_bytes;
        j_bytes_per_request =
          (if requests = 0 then 0.
           else float_of_int journal_bytes /. float_of_int requests);
        j_trace_ratio =
          (if journal_bytes = 0 then 0.
           else float_of_int trace_bytes /. float_of_int journal_bytes);
        j_signature = summary.Session.s_signature;
      })
