(** Record and replay whole runs through decision journals.

    [record] executes a run with the engine's decision tap feeding a
    {!Journal.writer}; [replay] scans a journal, re-executes the run
    from the header's seeds with every prescribed decision verified
    against the scheduler's actual choice, and compares the result
    against the trailer field-by-field (signature, outputs checksum,
    ops, sim time, decision count, threads, profile FNV) — the
    byte-identity contract behind the CI replay gate.

    Two replay paths live in this repo; keep the vocabulary straight:
    - [rfdet check --replay] re-executes {e schedule traces}
      ([Rfdet_check.Trace], text) through the explorer's chooser — an
      exploration repro tool.
    - [rfdet replay] (this module) reconstructs a run from a {e binary
      decision journal} recorded by [rfdet record] — a crash-safe
      fault-tolerance primitive. *)

type spec = {
  workload : Rfdet_workloads.Workload.t;
  runtime : Rfdet_harness.Runner.runtime;
  threads : int;
  scale : float;
  input_seed : int64;
  sched_seed : int64;
  jitter : float;
  fault_mode : Rfdet_sim.Engine.failure_mode;
  faults : Rfdet_fault.Fault_plan.t option;
}

val header_of_spec : spec -> Journal.header

val spec_of_header : Journal.header -> (spec, string) result
(** Fails on unknown workload/runtime names, unparseable fault plans,
    or a bad fault-mode word. *)

type summary = {
  s_signature : string;
  s_outputs_checksum : string;
  s_ops : int;
  s_sim_time : int;
  s_decisions : int;
  s_threads : int;
  s_profile_json : string;
}

val trailer_of_summary : summary -> Journal.trailer

val record : path:string -> spec -> summary
(** Run the spec with the decision tap recording into [path].  On a
    failing run (deadlock, aborting thread failure, runaway) the
    journal is closed without a trailer — deliberately torn, hence
    recoverable — and the exception propagates. *)

type error =
  | E_corrupt of { frame : int; offset : int; reason : string }
      (** a damaged frame: never recoverable (exit 8) *)
  | E_torn of { offset : int; reason : string; decoded : int; synced : int }
      (** torn tail refused without [~recover:true] (exit 9) *)
  | E_bad_header of string
      (** the header no longer resolves (unknown workload/runtime) *)
  | E_diverged of { index : int; expected : int; got : int }
      (** replay made a different decision than the journal records *)
  | E_mismatch of string list
      (** trailer comparison failures, one line per field *)

val describe_error : error -> string

type ok = {
  r_summary : summary;
  r_header : Journal.header;
  r_recovered : bool;
      (** the journal was torn and the run was reconstructed from its
          verified prefix plus deterministic re-execution *)
  r_verified : int;  (** journal decisions verified against the replay *)
}

val replay : ?recover:bool -> path:string -> unit -> (ok, error) result
(** Scan and re-execute.  [recover] (default [false]) accepts a torn
    journal: every checksum-valid decision before the tear is verified
    as a prefix, the rest of the run re-derives from the header's
    seeds, and convergence means the prefix verified and the run
    completed.  Corrupt journals are never accepted. *)
