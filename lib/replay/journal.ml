let magic = "RFDJ"

let format_version = 1

type header = {
  format : int;
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  sched_seed : int64;
  jitter : float;
  runtime : string;
  fault_mode : string;
  fault_plan : string option;
}

type trailer = {
  signature : string;
  outputs_checksum : string;
  ops : int;
  sim_time : int;
  decisions : int;
  threads_made : int;
  profile_fnv : int64;
}

(* ---------- FNV-1a 64 ---------- *)

let fnv_prime = 0x100000001b3L

let fnv_offset = 0xcbf29ce484222325L

let fnv64_update h s lo hi =
  let h = ref h in
  for i = lo to hi - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

let fnv64 s = fnv64_update fnv_offset s 0 (String.length s)

(* ---------- varints (unsigned LEB128) ---------- *)

let add_varint b n =
  if n < 0 then invalid_arg "Journal: negative varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* ---------- recording ---------- *)

let batch_size = 4096

type writer = {
  oc : out_channel;
  scratch : Buffer.t;
  mutable seq : int;
  mutable pending : int list;  (* reversed *)
  mutable npending : int;
  mutable total : int;
  mutable dfnv : int64;  (* running FNV over all 'D' payloads *)
  mutable closed : bool;
}

let write_frame w ~tag ~payload =
  let b = w.scratch in
  Buffer.clear b;
  Buffer.add_char b tag;
  add_varint b w.seq;
  add_varint b (String.length payload);
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  output_string w.oc body;
  let cb = Bytes.create 8 in
  Bytes.set_int64_le cb 0 (fnv64 body);
  output_bytes w.oc cb;
  w.seq <- w.seq + 1

let header_payload (h : header) =
  let b = Buffer.create 256 in
  let line k v =
    Buffer.add_string b k;
    Buffer.add_char b ' ';
    Buffer.add_string b v;
    Buffer.add_char b '\n'
  in
  line "format" (string_of_int h.format);
  line "workload" h.workload;
  line "threads" (string_of_int h.threads);
  line "scale" (Printf.sprintf "%h" h.scale);
  line "input-seed" (Int64.to_string h.input_seed);
  line "sched-seed" (Int64.to_string h.sched_seed);
  line "jitter" (Printf.sprintf "%h" h.jitter);
  line "runtime" h.runtime;
  line "fault-mode" h.fault_mode;
  (match h.fault_plan with None -> () | Some p -> line "fault-plan" p);
  Buffer.contents b

let trailer_payload (t : trailer) =
  let b = Buffer.create 256 in
  let line k v =
    Buffer.add_string b k;
    Buffer.add_char b ' ';
    Buffer.add_string b v;
    Buffer.add_char b '\n'
  in
  line "signature" t.signature;
  line "outputs-checksum" t.outputs_checksum;
  line "ops" (string_of_int t.ops);
  line "sim-time" (string_of_int t.sim_time);
  line "decisions" (string_of_int t.decisions);
  line "threads" (string_of_int t.threads_made);
  line "profile-fnv" (Printf.sprintf "%Lx" t.profile_fnv);
  Buffer.contents b

let create ~path header =
  let oc = open_out_bin path in
  output_string oc magic;
  let w =
    {
      oc;
      scratch = Buffer.create 256;
      seq = 0;
      pending = [];
      npending = 0;
      total = 0;
      dfnv = fnv_offset;
      closed = false;
    }
  in
  write_frame w ~tag:'H' ~payload:(header_payload header);
  flush oc;
  w

let flush_batch w =
  if w.npending > 0 then begin
    let b = Buffer.create ((w.npending * 2) + 4) in
    add_varint b w.npending;
    List.iter (add_varint b) (List.rev w.pending);
    let payload = Buffer.contents b in
    w.total <- w.total + w.npending;
    w.pending <- [];
    w.npending <- 0;
    w.dfnv <- fnv64_update w.dfnv payload 0 (String.length payload);
    write_frame w ~tag:'D' ~payload;
    let sb = Buffer.create 12 in
    add_varint sb w.total;
    Buffer.add_int64_le sb w.dfnv;
    write_frame w ~tag:'S' ~payload:(Buffer.contents sb);
    (* one batch + its marker reach the disk together: the marker is the
       crash-consistent recovery point *)
    flush w.oc
  end

let add w tid =
  if w.closed then invalid_arg "Journal.add: writer is closed";
  w.pending <- tid :: w.pending;
  w.npending <- w.npending + 1;
  if w.npending >= batch_size then flush_batch w

let written w = w.total + w.npending

let finish w trailer =
  if w.closed then invalid_arg "Journal.finish: writer is closed";
  flush_batch w;
  write_frame w ~tag:'T' ~payload:(trailer_payload trailer);
  w.closed <- true;
  close_out w.oc

let abort w =
  if not w.closed then begin
    flush_batch w;
    w.closed <- true;
    close_out w.oc
  end

(* ---------- scanning ---------- *)

type scan =
  | Complete of { header : header; decisions : int array; trailer : trailer }
  | Torn of {
      header : header;
      decisions : int array;
      synced : int;
      offset : int;
      reason : string;
    }
  | Corrupt of { frame : int; offset : int; reason : string }

(* data ran out at this absolute offset — a candidate tear *)
exception Truncated_at of int * string

(* structural damage inside verified bytes — corruption *)
exception Bad of string

let parse_kv payload =
  String.split_on_char '\n' payload
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match String.index_opt l ' ' with
         | Some i ->
           (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
         | None -> (l, ""))

let header_of_payload payload =
  let kv = parse_kv payload in
  let get k =
    match List.assoc_opt k kv with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "header is missing %S" k))
  in
  let int k =
    match int_of_string_opt (get k) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "header %s is not an integer" k))
  in
  let i64 k =
    match Int64.of_string_opt (get k) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "header %s is not an int64" k))
  in
  let fl k =
    match float_of_string_opt (get k) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "header %s is not a float" k))
  in
  let format = int "format" in
  if format <> format_version then
    raise
      (Bad
         (Printf.sprintf "unsupported journal format %d (this build reads %d)"
            format format_version));
  {
    format;
    workload = get "workload";
    threads = int "threads";
    scale = fl "scale";
    input_seed = i64 "input-seed";
    sched_seed = i64 "sched-seed";
    jitter = fl "jitter";
    runtime = get "runtime";
    fault_mode = get "fault-mode";
    fault_plan = List.assoc_opt "fault-plan" kv;
  }

let trailer_of_payload payload =
  let kv = parse_kv payload in
  let get k =
    match List.assoc_opt k kv with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "trailer is missing %S" k))
  in
  let int k =
    match int_of_string_opt (get k) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "trailer %s is not an integer" k))
  in
  let profile_fnv =
    match Int64.of_string_opt ("0x" ^ get "profile-fnv") with
    | Some v -> v
    | None -> raise (Bad "trailer profile-fnv is not a hex int64")
  in
  {
    signature = get "signature";
    outputs_checksum = get "outputs-checksum";
    ops = int "ops";
    sim_time = int "sim-time";
    decisions = int "decisions";
    threads_made = int "threads";
    profile_fnv;
  }

(* a growing int array for the decision stream (journals can carry
   millions of decisions; lists would be wasteful) *)
type dyn = { mutable a : int array; mutable len : int }

let dyn_create () = { a = Array.make 1024 0; len = 0 }

let dyn_push d v =
  if d.len = Array.length d.a then begin
    let a' = Array.make (2 * d.len) 0 in
    Array.blit d.a 0 a' 0 d.len;
    d.a <- a'
  end;
  d.a.(d.len) <- v;
  d.len <- d.len + 1

let dyn_contents d = Array.sub d.a 0 d.len

(* carries an already-built [Corrupt] out of the scan loop *)
exception Bad_frame of scan

let scan_string s =
  let n = String.length s in
  if n < 4 || String.sub s 0 4 <> magic then
    Corrupt { frame = 0; offset = 0; reason = "bad magic (not an rfdet journal)" }
  else begin
    let pos = ref 4 in
    let frame = ref 0 in
    let header = ref None in
    let trailer = ref None in
    let decisions = dyn_create () in
    let synced = ref 0 in
    let dfnv = ref fnv_offset in
    let read_byte what =
      if !pos >= n then raise (Truncated_at (!pos, "torn mid-" ^ what));
      let c = s.[!pos] in
      incr pos;
      c
    in
    let read_varint what =
      let rec go shift acc count =
        if count > 9 then raise (Bad ("overlong varint in " ^ what));
        let c = Char.code (read_byte what) in
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then acc else go (shift + 7) acc (count + 1)
      in
      go 0 0 0
    in
    (* decode one payload-embedded varint without the truncation path:
       the payload is complete and checksummed, so running out of bytes
       here is corruption, not a tear *)
    let payload_varint ~payload p what =
      let rec go shift acc count pp =
        if count > 9 then raise (Bad ("overlong varint in " ^ what));
        if pp >= String.length payload then
          raise (Bad ("malformed " ^ what ^ " (truncated varint)"));
        let c = Char.code payload.[pp] in
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then (acc, pp + 1)
        else go (shift + 7) acc (count + 1) (pp + 1)
      in
      go 0 0 0 p
    in
    try
      while !pos < n && !trailer = None do
        let start = !pos in
        let corrupt reason = Corrupt { frame = !frame; offset = start; reason } in
        let tag = read_byte "frame tag" in
        let seq = read_varint "frame sequence" in
        let len = read_varint "frame length" in
        if len > n - !pos then
          raise (Truncated_at (start, "torn mid-frame (payload runs past EOF)"));
        let payload = String.sub s !pos len in
        pos := !pos + len;
        if n - !pos < 8 then
          raise (Truncated_at (start, "torn mid-frame (checksum missing)"));
        let stored = String.get_int64_le s !pos in
        pos := !pos + 8;
        let computed = fnv64_update fnv_offset s start (!pos - 8) in
        if stored <> computed then
          raise
            (Bad_frame
               (corrupt
                  (Printf.sprintf "checksum mismatch (stored %Lx, computed %Lx)"
                     stored computed)));
        if seq <> !frame then
          raise
            (Bad_frame
              (corrupt
                 (Printf.sprintf
                    "frame sequence %d where %d was expected (duplicated or \
                     dropped frame)"
                    seq !frame)));
        (match (tag, !header) with
        | 'H', None -> header := Some (header_of_payload payload)
        | 'H', Some _ -> raise (Bad "duplicate header frame")
        | _, None -> raise (Bad "journal does not start with a header frame")
        | 'D', Some _ ->
          let count, p = payload_varint ~payload 0 "decision batch" in
          let p = ref p in
          for _ = 1 to count do
            let tid, p' = payload_varint ~payload !p "decision batch" in
            dyn_push decisions tid;
            p := p'
          done;
          if !p <> len then raise (Bad "malformed decision batch (extra bytes)");
          dfnv := fnv64_update !dfnv payload 0 len
        | 'S', Some _ ->
          let count, p = payload_varint ~payload 0 "sync marker" in
          if len - p <> 8 then raise (Bad "malformed sync marker");
          let h = String.get_int64_le payload p in
          if count <> decisions.len || h <> !dfnv then
            raise
              (Bad
                 (Printf.sprintf
                    "sync marker mismatch (marker says %d decisions, journal \
                     carries %d)"
                    count decisions.len));
          synced := count
        | 'T', Some _ -> trailer := Some (trailer_of_payload payload)
        | tag, Some _ ->
          raise (Bad (Printf.sprintf "unknown frame tag %C" tag)));
        incr frame
      done;
      match (!trailer, !header) with
      | Some t, Some h ->
        if !pos <> n then
          Corrupt
            {
              frame = !frame;
              offset = !pos;
              reason = "trailing bytes after the trailer frame";
            }
        else Complete { header = h; decisions = dyn_contents decisions; trailer = t }
      | None, Some h ->
        Torn
          {
            header = h;
            decisions = dyn_contents decisions;
            synced = !synced;
            offset = n;
            reason = "missing trailer (recording never finished)";
          }
      | _, None ->
        Corrupt { frame = 0; offset = 4; reason = "empty journal (no header)" }
    with
    | Bad_frame c -> c
    | Bad reason -> Corrupt { frame = !frame; offset = !pos; reason }
    | Truncated_at (offset, reason) -> (
      match !header with
      | None -> Corrupt { frame = 0; offset; reason = "torn inside the header frame" }
      | Some h ->
        Torn
          {
            header = h;
            decisions = dyn_contents decisions;
            synced = !synced;
            offset;
            reason;
          })
  end

let scan_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok (scan_string s)
  | exception Sys_error e -> Error e

let frame_offsets s =
  let n = String.length s in
  if n < 4 || String.sub s 0 4 <> magic then []
  else begin
    let pos = ref 4 in
    let out = ref [] in
    (try
       while !pos < n do
         let start = !pos in
         let tag = s.[!pos] in
         incr pos;
         let varint () =
           let rec go shift acc count =
             if count > 9 || !pos >= n then raise Exit;
             let c = Char.code s.[!pos] in
             incr pos;
             let acc = acc lor ((c land 0x7f) lsl shift) in
             if c land 0x80 = 0 then acc else go (shift + 7) acc (count + 1)
           in
           go 0 0 0
         in
         let _seq = varint () in
         let len = varint () in
         if len > n - !pos || n - (!pos + len) < 8 then raise Exit;
         pos := !pos + len + 8;
         out := (start, tag, !pos - start) :: !out
       done
     with Exit -> ());
    List.rev !out
  end
