module Engine = Rfdet_sim.Engine
module Profile = Rfdet_sim.Profile
module Runner = Rfdet_harness.Runner
module Workload = Rfdet_workloads.Workload
module Registry = Rfdet_workloads.Registry
module Fault_plan = Rfdet_fault.Fault_plan

type spec = {
  workload : Workload.t;
  runtime : Runner.runtime;
  threads : int;
  scale : float;
  input_seed : int64;
  sched_seed : int64;
  jitter : float;
  fault_mode : Engine.failure_mode;
  faults : Fault_plan.t option;
}

let fault_mode_name = function
  | Engine.Abort -> "abort"
  | Engine.Contain -> "contain"
  | Engine.Recover -> "recover"

let fault_mode_of_name = function
  | "abort" -> Some Engine.Abort
  | "contain" -> Some Engine.Contain
  | "recover" -> Some Engine.Recover
  | _ -> None

let header_of_spec (spec : spec) : Journal.header =
  {
    format = Journal.format_version;
    workload = spec.workload.Workload.name;
    threads = spec.threads;
    scale = spec.scale;
    input_seed = spec.input_seed;
    sched_seed = spec.sched_seed;
    jitter = spec.jitter;
    runtime = Runner.cli_name spec.runtime;
    fault_mode = fault_mode_name spec.fault_mode;
    fault_plan = Option.map Fault_plan.to_string spec.faults;
  }

let spec_of_header (h : Journal.header) : (spec, string) result =
  let ( let* ) = Result.bind in
  let* workload =
    match Registry.find h.workload with
    | wl -> Ok wl
    | exception Not_found ->
      Error (Printf.sprintf "unknown workload %S" h.workload)
  in
  let* runtime =
    match Runner.runtime_of_name h.runtime with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "unknown runtime %S" h.runtime)
  in
  let* fault_mode =
    match fault_mode_of_name h.fault_mode with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown fault mode %S" h.fault_mode)
  in
  let* faults =
    match h.fault_plan with
    | None -> Ok None
    | Some p -> (
      match Fault_plan.parse p with
      | Ok plan -> Ok (Some plan)
      | Error e -> Error (Printf.sprintf "bad fault plan in header: %s" e))
  in
  Ok
    {
      workload;
      runtime;
      threads = h.threads;
      scale = h.scale;
      input_seed = h.input_seed;
      sched_seed = h.sched_seed;
      jitter = h.jitter;
      fault_mode;
      faults;
    }

type summary = {
  s_signature : string;
  s_outputs_checksum : string;
  s_ops : int;
  s_sim_time : int;
  s_decisions : int;
  s_threads : int;
  s_profile_json : string;
}

let trailer_of_summary (s : summary) : Journal.trailer =
  {
    signature = s.s_signature;
    outputs_checksum = s.s_outputs_checksum;
    ops = s.s_ops;
    sim_time = s.s_sim_time;
    decisions = s.s_decisions;
    threads_made = s.s_threads;
    profile_fnv = Journal.fnv64 s.s_profile_json;
  }

let run_spec ?sched_tap (spec : spec) =
  Runner.run ~threads:spec.threads ~scale:spec.scale
    ~input_seed:spec.input_seed ~sched_seed:spec.sched_seed
    ~jitter:spec.jitter ?faults:spec.faults ~failure_mode:spec.fault_mode
    ?sched_tap spec.runtime spec.workload

let summary_of (r : Runner.run_result) ~decisions =
  {
    s_signature = r.Runner.signature;
    s_outputs_checksum = r.Runner.output_checksum;
    s_ops = r.Runner.ops;
    s_sim_time = r.Runner.sim_time;
    s_decisions = decisions;
    s_threads = r.Runner.threads;
    s_profile_json = Profile.to_json r.Runner.profile;
  }

let record ~path (spec : spec) =
  let w = Journal.create ~path (header_of_spec spec) in
  let tap (d : Engine.decision) = Journal.add w d.Engine.d_chosen in
  match run_spec ~sched_tap:tap spec with
  | r ->
    let summary = summary_of r ~decisions:(Journal.written w) in
    Journal.finish w (trailer_of_summary summary);
    summary
  | exception e ->
    (* leave a deliberately torn (recoverable) journal behind: the
       decisions made before the failure are the crash evidence *)
    Journal.abort w;
    raise e

type error =
  | E_corrupt of { frame : int; offset : int; reason : string }
  | E_torn of { offset : int; reason : string; decoded : int; synced : int }
  | E_bad_header of string
  | E_diverged of { index : int; expected : int; got : int }
  | E_mismatch of string list

let describe_error = function
  | E_corrupt { frame; offset; reason } ->
    Printf.sprintf "corrupt journal: frame %d at byte offset %d: %s" frame
      offset reason
  | E_torn { offset; reason; decoded; synced } ->
    Printf.sprintf
      "torn journal: %s at byte offset %d (%d decisions decoded, %d synced); \
       rerun with --recover to reconstruct from the verified prefix"
      reason offset decoded synced
  | E_bad_header e -> "unusable journal header: " ^ e
  | E_diverged { index; expected; got } ->
    Printf.sprintf
      "replay divergence at decision %d: journal records tid %d, replay chose \
       tid %d"
      index expected got
  | E_mismatch lines ->
    "replayed run does not match the recorded trailer:\n  "
    ^ String.concat "\n  " lines

type ok = {
  r_summary : summary;
  r_header : Journal.header;
  r_recovered : bool;
  r_verified : int;
}

exception Diverged of int * int * int

let run_verified ~recovered header (decisions : int array) trailer_opt =
  match spec_of_header header with
  | Error e -> Error (E_bad_header e)
  | Ok spec -> (
    let counter = ref 0 in
    let tap (d : Engine.decision) =
      let i = !counter in
      incr counter;
      if i < Array.length decisions && decisions.(i) <> d.Engine.d_chosen then
        raise (Diverged (i, decisions.(i), d.Engine.d_chosen))
    in
    match run_spec ~sched_tap:tap spec with
    | exception Diverged (i, e, g) ->
      Error (E_diverged { index = i; expected = e; got = g })
    | exception Engine.Thread_failure (_, Diverged (i, e, g)) ->
      Error (E_diverged { index = i; expected = e; got = g })
    | r ->
      let summary = summary_of r ~decisions:!counter in
      if !counter < Array.length decisions then
        Error
          (E_mismatch
             [
               Printf.sprintf
                 "decisions: journal carries %d but the replay only made %d"
                 (Array.length decisions) !counter;
             ])
      else (
        match trailer_opt with
        | None ->
          Ok
            {
              r_summary = summary;
              r_header = header;
              r_recovered = recovered;
              r_verified = Array.length decisions;
            }
        | Some (t : Journal.trailer) ->
          let replayed = trailer_of_summary summary in
          let mism = ref [] in
          let chk name a b = if a <> b then mism := (name, a, b) :: !mism in
          chk "signature" t.signature replayed.signature;
          chk "outputs-checksum" t.outputs_checksum replayed.outputs_checksum;
          chk "ops" (string_of_int t.ops) (string_of_int replayed.ops);
          chk "sim-time" (string_of_int t.sim_time)
            (string_of_int replayed.sim_time);
          chk "decisions"
            (string_of_int t.decisions)
            (string_of_int replayed.decisions);
          chk "threads"
            (string_of_int t.threads_made)
            (string_of_int replayed.threads_made);
          chk "profile-fnv"
            (Printf.sprintf "%Lx" t.profile_fnv)
            (Printf.sprintf "%Lx" replayed.profile_fnv);
          if !mism <> [] then
            Error
              (E_mismatch
                 (List.rev_map
                    (fun (name, rec_, rep) ->
                      Printf.sprintf "%s: recorded %s, replayed %s" name rec_
                        rep)
                    !mism))
          else
            Ok
              {
                r_summary = summary;
                r_header = header;
                r_recovered = recovered;
                r_verified = Array.length decisions;
              }))

let replay ?(recover = false) ~path () =
  match Journal.scan_file path with
  | Error e -> Error (E_bad_header e)
  | Ok (Journal.Corrupt { frame; offset; reason }) ->
    Error (E_corrupt { frame; offset; reason })
  | Ok (Journal.Torn { decisions; synced; offset; reason; _ }) when not recover
    ->
    Error
      (E_torn { offset; reason; decoded = Array.length decisions; synced })
  | Ok (Journal.Torn { header; decisions; _ }) ->
    run_verified ~recovered:true header decisions None
  | Ok (Journal.Complete { header; decisions; trailer }) ->
    run_verified ~recovered:false header decisions (Some trailer)
