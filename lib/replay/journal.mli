(** Minimal binary decision journals — the wire format of `rfdet record`.

    Under DLRC the arbiter's order decisions are the sole source of
    nondeterminism, so a journal holding only the scheduler's free
    decisions (plus a seeded header) is a complete recipe for
    reconstructing the whole execution.  Everything else — memory
    contents, lock grant order, jitter, fault injections — re-derives
    from the header's seeds during replay.

    {1 Format}

    A journal is the 4-byte magic ["RFDJ"] followed by a sequence of
    frames:

    {v tag:1 | seq:varint | len:varint | payload:len | fnv64:8 v}

    [seq] is the frame index (0-based, contiguous — a duplicated or
    dropped frame breaks the sequence and is detected as corruption);
    varints are unsigned LEB128; [fnv64] is the FNV-1a 64-bit checksum
    of everything from [tag] through the end of [payload], stored
    little-endian.  Frame tags:

    - ['H'] (frame 0, exactly once): the header as [key value] text
      lines — format version, workload, threads, scale, input/sched
      seeds, jitter, runtime, fault mode, optional fault plan.  Floats
      are printed as hex floats so the round-trip is lossless.
    - ['D']: a decision batch — varint count, then count varint tids
      (the [d_chosen] of consecutive {!Rfdet_sim.Engine.decision}s).
      Ready sets are not stored: replay re-derives them and verifies
      the chosen tid, so storing them would add bytes, not safety.
    - ['S']: a sync marker, written after every ['D'] — varint total
      decisions so far plus the running FNV-1a 64 over all ['D']
      payloads so far.  The last valid marker is the crash-consistent
      recovery point of a torn journal.
    - ['T'] (last frame, exactly once): the trailer — signature,
      outputs checksum, op count, sim time, decision count, thread
      count, and the FNV-64 of the profile JSON, as [key value] lines.
      Replay compares all of them; equality is the byte-identity gate.

    {1 Failure taxonomy}

    [scan] distinguishes {e torn} journals (the write stopped mid-frame
    or before the trailer — the expected shape after a crash, and
    recoverable: every fully-checksummed decision before the tear is
    trustworthy) from {e corrupt} ones (a complete frame fails its
    checksum, frames are duplicated/dropped, or the header itself is
    unreadable — never silently recoverable).  Both are always loud;
    `rfdet replay` maps them to distinct exit codes (9 and 8). *)

val magic : string

val format_version : int

type header = {
  format : int;
  workload : string;
  threads : int;
  scale : float;
  input_seed : int64;
  sched_seed : int64;
  jitter : float;
  runtime : string;  (** a [Rfdet_harness.Runner.named_runtimes] name *)
  fault_mode : string;  (** ["abort"], ["contain"] or ["recover"] *)
  fault_plan : string option;  (** [Rfdet_fault.Fault_plan.to_string] *)
}

type trailer = {
  signature : string;
  outputs_checksum : string;
  ops : int;
  sim_time : int;
  decisions : int;
  threads_made : int;
  profile_fnv : int64;  (** FNV-64 of [Profile.to_json] *)
}

val fnv64 : string -> int64
(** FNV-1a 64-bit over a whole string (exposed for the trailer's
    profile checksum and for tests). *)

(** {1 Recording} *)

type writer

val create : path:string -> header -> writer
(** Open [path] (truncating) and write the magic and header frame.
    The header hits the disk before the workload runs: a journal torn
    at any later point still identifies its run. *)

val add : writer -> int -> unit
(** Append one decision (the chosen tid).  Decisions are batched; every
    flushed batch is followed by a sync marker. *)

val written : writer -> int
(** Decisions accepted so far (including any still-buffered batch). *)

val finish : writer -> trailer -> unit
(** Flush the final batch, write the trailer frame and close. *)

val abort : writer -> unit
(** Flush buffered decisions and close {e without} a trailer — the
    journal is left deliberately torn (recoverable), the honest shape
    for a recording cut short by a failing run. *)

(** {1 Scanning} *)

type scan =
  | Complete of { header : header; decisions : int array; trailer : trailer }
      (** every frame verified, trailer present *)
  | Torn of {
      header : header;
      decisions : int array;
          (** every checksum-verified decision before the tear *)
      synced : int;  (** decisions confirmed by the last sync marker *)
      offset : int;  (** byte offset where the journal tears *)
      reason : string;
    }
      (** the tail is missing (torn mid-frame, or no trailer): the
          verified prefix is trustworthy and replay can re-execute the
          remainder from the header's seeds ([--recover]) *)
  | Corrupt of { frame : int; offset : int; reason : string }
      (** a complete frame failed verification (checksum mismatch,
          sequence discontinuity, malformed payload, unreadable
          header): never recoverable, always fatal *)

val scan_string : string -> scan

val scan_file : string -> (scan, string) result
(** [Error] only for I/O failures (missing file, permissions). *)

val frame_offsets : string -> (int * char * int) list
(** Structural frame table [(offset, tag, total_bytes)] of a
    well-formed journal, best-effort (stops at the first undecodable
    frame) — the mutation grid for the chaos/fuzz harness. *)
