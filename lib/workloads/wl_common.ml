module Api = Rfdet_sim.Api
module Det_rng = Rfdet_util.Det_rng

let partition ~n ~workers ~k =
  let chunk = (n + workers - 1) / workers in
  let lo = min n (k * chunk) in
  let hi = min n (lo + chunk) in
  (lo, hi)

module Lock_barrier = struct
  type t = { m : Api.mutex; c : Api.cond; count : int; gen : int; parties : int }

  let create ~parties =
    let m = Api.mutex_create () in
    let c = Api.cond_create () in
    let state = Api.malloc 16 in
    Api.store state 0;
    (* count *)
    Api.store (state + 8) 0;
    (* generation *)
    { m; c; count = state; gen = state + 8; parties }

  let wait t =
    Api.lock t.m;
    let my_gen = Api.load t.gen in
    let arrived = Api.load t.count + 1 in
    if arrived = t.parties then begin
      Api.store t.count 0;
      Api.store t.gen (my_gen + 1);
      Api.cond_broadcast t.c
    end
    else begin
      Api.store t.count arrived;
      while Api.load t.gen = my_gen do
        Api.cond_wait t.c t.m
      done
    end;
    Api.unlock t.m
end

let spawn_workers ~workers body =
  List.init workers (fun k -> Api.spawn (body k))

let join_all tids = List.iter Api.join tids

(* Workers gate on a start barrier before computing, as Phoenix's thread
   pool does.  Without the gate, a global-fence runtime (DThreads) would
   serialize thread creation against the first worker's entire compute
   phase, which is not how the real benchmarks behave. *)
let fork_join ~workers body =
  if workers = 1 then join_all (spawn_workers ~workers body)
  else begin
    let gate = Lock_barrier.create ~parties:workers in
    (* The gate is one-shot: a worker restarted by deterministic
       recovery must not re-arrive into its post-broadcast state, so
       the restart point moves past it. *)
    let gated k () =
      Lock_barrier.wait gate;
      let work = body k in
      Api.checkpoint work;
      work ()
    in
    join_all (spawn_workers ~workers gated)
  end

let fill_region rng ~addr ~words ~bound =
  for i = 0 to words - 1 do
    Api.store (addr + (8 * i)) (Det_rng.int rng bound)
  done

let mix a b =
  let h = (a * 0x9E3779B1) lxor (b + 0x85EBCA77 + (a lsl 6) + (a lsr 2)) in
  h land max_int

let checksum_region ~addr ~words =
  let acc = ref 0 in
  for i = 0 to words - 1 do
    acc := mix !acc (Api.load (addr + (8 * i)))
  done;
  !acc

let output_checksum v = Api.output_int v

module Fx = struct
  let shift = 16

  let one = 1 lsl shift

  let of_int x = x lsl shift

  let mul a b = (a * b) asr shift

  let div a b = if b = 0 then 0 else (a lsl shift) / b

  (* e^x ~ 1 + x + x^2/2 + x^3/6 + x^4/24 for smallish fixed-point x *)
  let exp_approx x =
    let x2 = mul x x in
    let x3 = mul x2 x in
    let x4 = mul x3 x in
    one + x + (x2 / 2) + (x3 / 6) + (x4 / 24)

  let sqrt_approx x =
    if x <= 0 then 0
    else begin
      (* Newton on integers over the raw fixed-point value. *)
      let target = x lsl shift in
      let rec go guess iters =
        if iters = 0 || guess = 0 then guess
        else begin
          let next = (guess + (target / guess)) / 2 in
          if next = guess then guess else go next (iters - 1)
        end
      in
      go (max 1 (x / 2 + 1)) 20
    end
end
