(** Micro workloads for systematic schedule exploration.

    The explorer's cost is exponential in the number of synchronization
    operations, so these are the smallest programs that still exercise
    each synchronization construct: a lock-protected counter, a condvar
    hand-off, a barrier phase, an atomic counter, an rwlock
    write-then-read, a one-permit semaphore and a work-stealing deque
    drained by thieves.  At [threads = 2]
    and [scale = 1.0] each has few enough sync-level choice points that
    bounded DFS with sleep-set pruning enumerates every interleaving in
    well under a second ([rfdet check --exhaustive]).

    They live in suite "micro" and are deliberately excluded from the
    paper-reproduction sets ([Registry.table1], [Registry.figure8]). *)

module Api = Rfdet_sim.Api

(* Each worker takes the lock [iters] times to bump a shared counter and
   mix its tid in; races only through the mutex. *)
let lock_main (cfg : Workload.cfg) () =
  let iters = Workload.scaled cfg 2 in
  let counter = Api.malloc 8 in
  let m = Api.mutex_create () in
  let body k () =
    for i = 1 to iters do
      Api.with_lock m (fun () ->
          let v = Api.load counter in
          Api.store counter (v + (k * 10) + i))
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load counter)

(* One producer hands a value to each consumer through a mutex+condvar
   flag — the lost-wakeup-prone construct, in miniature. *)
let handoff_main (cfg : Workload.cfg) () =
  let consumers = max 1 (cfg.threads - 1) in
  let cell = Api.malloc 8 in
  let flag = Api.malloc 8 in
  let m = Api.mutex_create () in
  let c = Api.cond_create () in
  let consumer k () =
    Api.lock m;
    while Api.load flag < k + 1 do
      Api.cond_wait c m
    done;
    let v = Api.load cell in
    Api.unlock m;
    Api.output_int (v + k)
  in
  let tids = Wl_common.spawn_workers ~workers:consumers consumer in
  Api.store cell 41;
  for k = 1 to consumers do
    Api.lock m;
    Api.store flag k;
    Api.cond_broadcast c;
    Api.unlock m
  done;
  Wl_common.join_all tids

(* Write own cell, barrier, read the neighbor's cell: the propagation at
   the barrier merge is the whole point. *)
let barrier_main (cfg : Workload.cfg) () =
  let n = cfg.threads in
  let arr = Api.malloc (8 * n) in
  let b = Api.barrier_create n in
  let body k () =
    Api.store (arr + (8 * k)) ((k + 1) * 7);
    Api.barrier_wait b;
    (* restart point past the barrier: a recovered thread must not
       re-arrive at a phase its peers have already left *)
    let finish () = Api.output_int (Api.load (arr + (8 * ((k + 1) mod n)))) in
    Api.checkpoint finish;
    finish ()
  in
  (* The barrier counts [n] parties: main is one of them (k = 0). *)
  let tids = Wl_common.spawn_workers ~workers:(n - 1) (fun k -> body (k + 1)) in
  body 0 ();
  Wl_common.join_all tids

(* Atomic fetch-add hammering one word — every operation is its own
   acquire+release pair, so this maximizes choice-point density. *)
let atomic_main (cfg : Workload.cfg) () =
  let iters = Workload.scaled cfg 2 in
  let word = Api.malloc 8 in
  let body k () =
    for _ = 1 to iters do
      ignore (Api.atomic_fetch_add word (k + 1))
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load word)

(* Each worker publishes one write under the write lock, then audits the
   cell under the read lock.  Admission order is a per-runtime policy
   (kendo arbitrates by stamp, the baselines by token turn), so readers
   check an order-independent invariant — every committed value is a
   multiple of 3 — rather than outputting the order-dependent value
   itself; a read admitted mid-write would break it.  The final cell is
   a commutative sum, identical across runtimes. *)
let rwlock_main (cfg : Workload.cfg) () =
  let cell = Api.malloc 8 in
  let rw = Api.rwlock_create () in
  let body k () =
    Api.with_wrlock rw (fun () ->
        Api.store cell (Api.load cell + ((k + 1) * 3)));
    Api.with_rdlock rw (fun () ->
        if Api.load cell mod 3 <> 0 then Api.output_int (-100 - k))
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load cell)

(* One permit shared by all workers: the semaphore degenerates to a
   mutex, so every acquisition is a stamp-ordered hand-off. *)
let sem_main (cfg : Workload.cfg) () =
  let iters = Workload.scaled cfg 1 in
  let s = Api.sem_create 1 in
  let cell = Api.malloc 8 in
  let body k () =
    for i = 1 to iters do
      Api.sem_acquire s;
      Api.store cell (Api.load cell + ((k + 2) * i));
      Api.sem_post s
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load cell)

(* Main owns the only deque: it pushes a burst, pops once from its own
   end before any thief starts (LIFO, so a fixed value), then the
   workers steal the rest dry.  Which thief gets which item depends on
   the runtime's arbitration, so the observable is the conservation
   fold — every stolen value atomically added to one haul word — which
   catches a lost or double-served item whatever the assignment. *)
let steal_main (cfg : Workload.cfg) () =
  let d = Api.deque_create () in
  let haul = Api.malloc 8 in
  for i = 1 to 2 + cfg.threads do
    Api.deque_push d (10 + i)
  done;
  (match Api.deque_pop d with
  | `Item v -> Api.output_int v
  | `Empty | `Poisoned -> Api.output_int (-1));
  let thief _k () =
    let rec go acc =
      match Api.deque_steal () with
      | `Item v -> go (acc + v)
      | `Empty -> acc
    in
    ignore (Api.atomic_fetch_add haul (go 0))
  in
  let tids = Wl_common.spawn_workers ~workers:cfg.threads thief in
  Wl_common.join_all tids;
  Wl_common.output_checksum (Api.load haul)

let wl name description main =
  { Workload.name; suite = "micro"; description; main }

let lock = wl "micro-lock" "tiny lock-protected shared counter" lock_main

let handoff = wl "micro-handoff" "tiny mutex+condvar value hand-off" handoff_main

let barrier = wl "micro-barrier" "tiny barrier phase with neighbor read" barrier_main

let atomic = wl "micro-atomic" "tiny atomic fetch-add counter" atomic_main

let rwlock =
  wl "micro-rwlock" "tiny rwlock write-then-read with reader batching"
    rwlock_main

let sem = wl "micro-sem" "tiny one-permit semaphore hand-off" sem_main

let steal =
  wl "micro-steal" "tiny work-stealing deque drained by thieves" steal_main
