(** Micro workloads for systematic schedule exploration.

    The explorer's cost is exponential in the number of synchronization
    operations, so these are the smallest programs that still exercise
    each synchronization construct: a lock-protected counter, a condvar
    hand-off, a barrier phase and an atomic counter.  At [threads = 2]
    and [scale = 1.0] each has few enough sync-level choice points that
    bounded DFS with sleep-set pruning enumerates every interleaving in
    well under a second ([rfdet check --exhaustive]).

    They live in suite "micro" and are deliberately excluded from the
    paper-reproduction sets ([Registry.table1], [Registry.figure8]). *)

module Api = Rfdet_sim.Api

(* Each worker takes the lock [iters] times to bump a shared counter and
   mix its tid in; races only through the mutex. *)
let lock_main (cfg : Workload.cfg) () =
  let iters = Workload.scaled cfg 2 in
  let counter = Api.malloc 8 in
  let m = Api.mutex_create () in
  let body k () =
    for i = 1 to iters do
      Api.with_lock m (fun () ->
          let v = Api.load counter in
          Api.store counter (v + (k * 10) + i))
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load counter)

(* One producer hands a value to each consumer through a mutex+condvar
   flag — the lost-wakeup-prone construct, in miniature. *)
let handoff_main (cfg : Workload.cfg) () =
  let consumers = max 1 (cfg.threads - 1) in
  let cell = Api.malloc 8 in
  let flag = Api.malloc 8 in
  let m = Api.mutex_create () in
  let c = Api.cond_create () in
  let consumer k () =
    Api.lock m;
    while Api.load flag < k + 1 do
      Api.cond_wait c m
    done;
    let v = Api.load cell in
    Api.unlock m;
    Api.output_int (v + k)
  in
  let tids = Wl_common.spawn_workers ~workers:consumers consumer in
  Api.store cell 41;
  for k = 1 to consumers do
    Api.lock m;
    Api.store flag k;
    Api.cond_broadcast c;
    Api.unlock m
  done;
  Wl_common.join_all tids

(* Write own cell, barrier, read the neighbor's cell: the propagation at
   the barrier merge is the whole point. *)
let barrier_main (cfg : Workload.cfg) () =
  let n = cfg.threads in
  let arr = Api.malloc (8 * n) in
  let b = Api.barrier_create n in
  let body k () =
    Api.store (arr + (8 * k)) ((k + 1) * 7);
    Api.barrier_wait b;
    (* restart point past the barrier: a recovered thread must not
       re-arrive at a phase its peers have already left *)
    let finish () = Api.output_int (Api.load (arr + (8 * ((k + 1) mod n)))) in
    Api.checkpoint finish;
    finish ()
  in
  (* The barrier counts [n] parties: main is one of them (k = 0). *)
  let tids = Wl_common.spawn_workers ~workers:(n - 1) (fun k -> body (k + 1)) in
  body 0 ();
  Wl_common.join_all tids

(* Atomic fetch-add hammering one word — every operation is its own
   acquire+release pair, so this maximizes choice-point density. *)
let atomic_main (cfg : Workload.cfg) () =
  let iters = Workload.scaled cfg 2 in
  let word = Api.malloc 8 in
  let body k () =
    for _ = 1 to iters do
      ignore (Api.atomic_fetch_add word (k + 1))
    done
  in
  Wl_common.fork_join ~workers:cfg.threads body;
  Wl_common.output_checksum (Api.load word)

let wl name description main =
  { Workload.name; suite = "micro"; description; main }

let lock = wl "micro-lock" "tiny lock-protected shared counter" lock_main

let handoff = wl "micro-handoff" "tiny mutex+condvar value hand-off" handoff_main

let barrier = wl "micro-barrier" "tiny barrier phase with neighbor read" barrier_main

let atomic = wl "micro-atomic" "tiny atomic fetch-add counter" atomic_main
