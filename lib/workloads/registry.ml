let all =
  [
    Racey.workload;
    Ocean.workload;
    Water.ns;
    Water.sp;
    Fft.workload;
    Radix.workload;
    Lu.con;
    Lu.non;
    Phoenix.linear_regression;
    Phoenix.matrix_multiply;
    Phoenix.pca;
    Phoenix.wordcount;
    Phoenix.string_match;
    Parsec_financial.blackscholes;
    Parsec_financial.swaptions;
    Dedup.workload;
    Ferret.workload;
    Microbench.lock;
    Microbench.handoff;
    Microbench.barrier;
    Microbench.atomic;
    Microbench.rwlock;
    Microbench.sem;
    Microbench.steal;
    Prodcons.workload;
    Kvserver.workload;
    Kvserver_rw.workload;
  ]

let names = List.map (fun w -> w.Workload.name) all

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None ->
    raise
      (Invalid_argument
         (Printf.sprintf "unknown workload %S (expected one of: %s)" name
            (String.concat ", " names)))

let splash2 = List.filter (fun w -> w.Workload.suite = "splash2") all

let micro = List.filter (fun w -> w.Workload.suite = "micro") all

(* The paper-reproduction sets exclude the stress test, the exploration
   micros, the overload-resilience servers (experiments E12/E14) and the
   primitive-conformance pipeline (E14). *)
let paper_suites w =
  w.Workload.suite <> "micro"
  && w.Workload.suite <> "server"
  && w.Workload.suite <> "pipeline"

let table1 =
  List.filter (fun w -> w.Workload.name <> "racey" && paper_suites w) all

let figure8 =
  List.filter
    (fun w ->
      (not (List.mem w.Workload.name [ "racey"; "dedup"; "ferret"; "lu-non" ]))
      && paper_suites w)
    all
