(** All workloads, in the paper's Table 1 order (racey first). *)

val all : Workload.t list

val find : string -> Workload.t
(** Raises [Not_found] with a helpful message listing valid names. *)

val names : string list

val splash2 : Workload.t list
(** The SPLASH-2 subset used by the Figure 9 optimization study. *)

val micro : Workload.t list
(** The tiny suite-"micro" workloads built for exhaustive schedule
    exploration ([rfdet check]); excluded from the paper sets. *)

val table1 : Workload.t list
(** The 16 performance benchmarks (everything except racey and the
    exploration micros). *)

val figure8 : Workload.t list
(** The scalability subset: Table 1 minus dedup, ferret (out of memory
    at 8 threads in the paper) and lu-non (folded into lu-con). *)
