(* Bounded producer–consumer pipeline over the condvar ring buffer
   (Pipeline.t): main produces item values into the first queue, a pool
   of transform workers moves them to the second queue, and a single
   accumulator thread folds the second queue into a shared sum.

   Termination uses poison pills (value 0; real items are 1-based): main
   enqueues one pill per transform worker, each worker forwards exactly
   one pill downstream on its way out, and the accumulator exits after
   collecting one pill per worker.  The observable outputs — item count
   and the accumulated sum — are commutative folds, so they are
   independent of which worker transformed which item; what the
   conformance wall checks is that the condvar wakeup order underneath
   (min-stamp waiter first) keeps the whole schedule deterministic. *)

module Api = Rfdet_sim.Api

let poison = 0

let transform v = (v * 3) + 1

let main (cfg : Workload.cfg) () =
  let items = Workload.scaled cfg 40 in
  let stages = max 1 cfg.threads in
  let q1 = Pipeline.create ~capacity:4 in
  let q2 = Pipeline.create ~capacity:4 in
  let sum = Api.malloc 8 in
  let count = Api.malloc 8 in
  let worker _k () =
    let rec go () =
      let v = Pipeline.pop q1 in
      if v = poison then Pipeline.push q2 poison
      else begin
        Pipeline.push q2 (transform v);
        go ()
      end
    in
    go ()
  in
  let accumulator () =
    let rec go pills =
      if pills < stages then begin
        let v = Pipeline.pop q2 in
        if v = poison then go (pills + 1)
        else begin
          Api.store sum (Api.load sum + v);
          Api.store count (Api.load count + 1);
          go pills
        end
      end
    in
    go 0
  in
  let tids = Wl_common.spawn_workers ~workers:stages worker in
  let acc_tid = Api.spawn accumulator in
  for i = 1 to items do
    Pipeline.push q1 i
  done;
  for _ = 1 to stages do
    Pipeline.push q1 poison
  done;
  Wl_common.join_all (tids @ [ acc_tid ]);
  Api.output_int (Api.load count);
  Wl_common.output_checksum (Api.load sum)

let workload =
  {
    Workload.name = "prodcons";
    suite = "pipeline";
    description =
      "bounded producer-consumer pipeline: condvar ring buffers, poison-pill \
       shutdown";
    main;
  }
