(* The rwlock+deque read-heavy KV server variant (lib/server/rwserve),
   registered so run/check/clinic/trace/profile cover it alongside the
   stripe-mutex original. *)

module Rwserve = Rfdet_server.Rwserve
module Traffic = Rfdet_server.Traffic

let main cfg () =
  let workers = max 1 cfg.Workload.threads in
  let p =
    {
      Rwserve.default with
      Rwserve.workers;
      shards = 4 * workers;
      traffic =
        { Traffic.default with requests = Workload.scaled cfg 2_000 };
    }
  in
  ignore (Rwserve.run ~seed:cfg.Workload.input_seed p)

let workload =
  {
    Workload.name = "kvserver-rw";
    suite = "server";
    description =
      "read-heavy KV server variant: per-shard rwlocks, work-stealing get \
       deques, breakers and deadlines";
    main;
  }
