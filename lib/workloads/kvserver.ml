(* The overloaded KV server of lib/server, as a registered workload so
   run/check/clinic/trace/profile and the determinism harness all cover
   it.  Offered load, policy thresholds and the worker pool come from
   [Server.default]; only the request count scales. *)

module Server = Rfdet_server.Server
module Traffic = Rfdet_server.Traffic

let main cfg () =
  let workers = max 1 cfg.Workload.threads in
  let p =
    {
      Server.default with
      workers;
      shards = 4 * workers;
      traffic =
        { Traffic.default with requests = Workload.scaled cfg 2_000 };
    }
  in
  ignore (Server.run ~seed:cfg.Workload.input_seed p)

let workload =
  {
    Workload.name = "kvserver";
    suite = "server";
    description =
      "overloaded sharded KV server: deadlines, retries, breakers, \
       shedding, stale reads";
    main;
  }
