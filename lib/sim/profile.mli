(** Per-run event counters and footprint figures — the raw material for
    the paper's Table 1 and for the bench harness's sanity checks.

    The engine fills the generic operation counters; the runtime policy
    fills the monitoring/propagation counters and the footprint fields. *)

type t = {
  (* synchronization operations (Table 1, columns 2-4) *)
  mutable locks : int;
  mutable unlocks : int;
  mutable waits : int;
  mutable signals : int;  (** cond_signal + cond_broadcast *)
  mutable barriers : int;
  mutable forks : int;
  mutable joins : int;
  mutable atomics : int;  (** low-level atomic operations *)
  (* memory operations (Table 1, columns 5-8) *)
  mutable loads : int;
  mutable stores : int;
  mutable stores_with_copy : int;
      (** stores that triggered a first-touch page snapshot *)
  (* monitoring machinery *)
  mutable page_faults : int;
  mutable mprotect_calls : int;  (** pages protected, one call per page *)
  mutable snapshots : int;
  mutable slices_created : int;
  mutable slices_propagated : int;
  mutable bytes_propagated : int;
  mutable diff_bytes_scanned : int;
  mutable gc_runs : int;  (** Table 1 last column *)
  mutable gc_slices_freed : int;
  mutable kendo_waits : int;  (** sync ops that had to wait for their turn *)
  mutable barrier_stalls : int;  (** global-barrier episodes (DThreads) *)
  (* deterministic recovery (Rfdet_recover) *)
  mutable restarts : int;  (** crashed threads resurrected and replayed *)
  mutable heals : int;  (** poisoned mutexes un-poisoned *)
  mutable deadlock_victims : int;  (** threads killed to break a deadlock *)
  mutable quarantines : int;
      (** corrupted slices quarantined and re-derived at propagation *)
  mutable corruptions_detected : int;
      (** checksum mismatches caught (at propagation or the final audit) *)
  mutable backoff_cycles : int;
      (** simulated cycles charged as restart backoff latency *)
  (* request serving (lib/server, via [Op.Server_mark]) *)
  mutable requests_served : int;  (** full serves committed to the table *)
  mutable requests_shed : int;  (** dropped by admission control *)
  mutable requests_retried : int;  (** retry attempts (not requests) *)
  mutable requests_timed_out : int;  (** deadline expired before commit *)
  mutable breaker_transitions : int;
      (** circuit-breaker state changes (closed/open/half-open) *)
  mutable stale_reads : int;  (** degraded-mode reads from the stale cache *)
  (* deterministic primitives (lib/kendo/sync) *)
  mutable cond_unheard_signals : int;
      (** signals/broadcasts that found no waiter queued — the raw
          material for lost-wakeup diagnostics *)
  mutable rw_reader_batches : int;
      (** reader batches admitted to a reader-writer lock *)
  mutable rw_batch_readers : int;
      (** readers admitted in total (avg batch size =
          rw_batch_readers / rw_reader_batches) *)
  mutable steals_attempted : int;  (** deque steal operations issued *)
  mutable steals_succeeded : int;  (** steals that found a victim *)
  (* memory footprint (Table 1, columns 10-12), in bytes *)
  mutable shared_bytes : int;  (** app shared memory (globals+heap touched) *)
  mutable stack_bytes : int;
  mutable metadata_peak_bytes : int;
  mutable private_copy_bytes : int;
      (** bytes of per-thread private page copies beyond one shared image *)
  (* observability (Rfdet_obs.Sink) *)
  mutable trace_dropped : int;
      (** trace events lost to ring-buffer overflow (0 when tracing is
          off or the sink is unbounded) — nonzero means offline span and
          contention analysis is incomplete *)
}

val create : unit -> t

(** [footprint_pthreads p] / [footprint_rfdet p] — the paper's Column 10
    and Column 11 formulas, in bytes. *)
val footprint_pthreads : t -> int

val footprint_rfdet : t -> int

val sync_ops : t -> int
(** Total count of synchronization operations. *)

val mem_ops : t -> int

val fields : t -> (string * int) list
(** Every counter as (name, value), in declaration order — the single
    source for [pp], [to_json] and [fill_metrics]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump; prints every field of [fields]. *)

val to_json : t -> string
(** A flat JSON object of [fields], declaration order. *)

val fill_metrics : Rfdet_obs.Metrics.t -> t -> unit
(** Mirror every field into a [profile.*] counter of the registry. *)
