(** Deterministic discrete-event execution engine.

    The engine runs simulated threads (OCaml effect-handler fibers) on an
    idealized multicore: every thread has its own core, a simulated-cycle
    clock, and a Kendo instruction counter.  The scheduler always resumes
    the ready thread with the smallest (clock, tid), so a run is a pure
    function of the workload, the runtime policy, and the seed.

    The *runtime policy* decides the semantics of memory and
    synchronization operations — this is where RFDet, DThreads and the
    nondeterministic pthreads baseline differ.  The engine itself handles
    the policy-independent operations: [Tick], [Output], [Self], [Yield],
    [Malloc], [Free] (through the shared conflict-free allocator), fiber
    mechanics, operation counting, and jitter.

    Nondeterminism modelling: when [jitter_mean > 0], an exponentially
    distributed number of extra cycles (from the seeded generator) is
    added to the clock after every operation.  This perturbs the
    *interleaving* exactly like OS scheduling noise does, without touching
    instruction counts — so a correct DMT policy must produce identical
    output for every seed, while the pthreads policy resolves races
    differently per seed.  The determinism test suite relies on this.

    Domain safety: one engine run is single-domain — its fibers are
    effect handlers multiplexed on the calling domain, and all of its
    state (clocks, spaces, allocator, RNG) is created inside [run].
    Distinct [run] calls share nothing, so independent runs may execute
    concurrently on different host domains; that is the contract
    [Rfdet_par.Par]-based sweeps build on. *)

type t

(** What happens when a simulated thread fails (raises, or suffers an
    injected crash).

    - [Abort]: the failure unwinds the whole run as [Thread_failure]
      (the historical behavior, still the default).
    - [Contain]: only the faulting thread dies.  Its continuation is
      dropped without running cleanup handlers (a crash, not an unwind),
      the policy's [on_thread_crash] hook repairs shared runtime state,
      and the scheduler keeps running the survivors.  The crash is
      recorded in [result.crashes] and folded into the output
      signature.
    - [Recover]: containment plus recovery.  Identical to [Contain] at
      the engine level; a recovery manager ([Rfdet_recover.Recover])
      layered on the policy may then resurrect the crashed tid with
      [restart_thread], heal poisoned locks, and break deadlocks through
      the [set_on_deadlock] hook.  Crashes remain recorded, so a
      recovered run's signature still reflects its fault history;
      [outputs_checksum] ignores them for fault-free comparison. *)
type failure_mode = Abort | Contain | Recover

(** A fault-injection decision for one operation, consulted through
    [config.inject] at every operation boundary:

    - [I_none]: execute normally;
    - [I_crash]: kill the thread at this boundary (before the operation
      takes effect — nothing it did since its last release point can
      have been published);
    - [I_fail]: fail the operation.  [Malloc] returns 0 (null); every
      other operation raises [Injected_fault] at the call site inside
      the thread, which may catch it and recover;
    - [I_delay k]: add [k] simulated cycles to the thread's clock before
      the operation (models a stall; never changes instruction
      counts);
    - [I_corrupt]: flip bytes in the runtime's stored metadata (through
      the [set_on_corrupt] hook) before the operation runs; the
      operation itself succeeds.  Runtimes without verifiable metadata
      ignore it. *)
type injection = I_none | I_crash | I_fail | I_delay of int | I_corrupt

(** One scheduling decision offered to an installed [config.choose]
    chooser (the hook behind `rfdet check`'s systematic explorer).

    - [sp_ready]: tids that can run now, ascending (never empty);
    - [sp_last]: the thread the previous step ran ([-1] on the first);
    - [sp_last_ready]: whether [sp_last] is in [sp_ready] — false when it
      blocked, exited or crashed;
    - [sp_last_boundary]: whether [sp_last] stopped at a
      schedule-relevant boundary (a synchronization operation or a
      handle creation).  Between boundaries a DMT run's behavior cannot
      depend on the interleaving, so an explorer only needs to branch
      when this is true (or when [sp_last_ready] is false). *)
type sched_point = {
  sp_ready : int list;
  sp_last : int;
  sp_last_ready : bool;
  sp_last_boundary : bool;
}

(** One free scheduling decision of the default clock-ordered scheduler,
    surfaced to [config.sched_tap] — the raw material of the minimal
    record/replay journal ([Rfdet_replay]).

    A step is a {e decision point} only when the schedule genuinely
    chose: the first step of the run, a step after the previous thread
    stopped at a schedule-relevant boundary (sync op or handle
    creation), or a step after the previous thread stopped being ready
    (blocked, exited, crashed) — the same rule the systematic explorer
    branches on.  Steps that merely continue the running thread between
    boundaries, and forced moves where only one thread is ready, are
    {e not} surfaced: under DLRC their interleaving is unobservable, so
    logging them would add bytes without adding information.

    - [d_index]: 0-based decision sequence number;
    - [d_ready]: ready tids at the decision, ascending (always ≥ 2);
    - [d_chosen]: the tid the (clock, tid) order ran. *)
type decision = { d_index : int; d_ready : int list; d_chosen : int }

type config = {
  cost : Cost.t;
  seed : int64;
  jitter_mean : float;  (** mean extra cycles per op; 0 disables jitter *)
  max_ops : int;  (** abort threshold against livelocked policies *)
  trace_capacity : int;
      (** keep the last N operations as a trace (0 = off, the default);
          see [result.trace] — a debugging aid for runtime authors *)
  failure_mode : failure_mode;  (** default [Abort] *)
  inject : (tid:int -> Op.t -> injection) option;
      (** fault-injection oracle, consulted before every operation;
          [None] (the default) injects nothing.  Build one from a
          declarative plan with [Rfdet_fault.Fault_plan.injector]. *)
  choose : (sched_point -> int) option;
      (** when set, replaces clock-ordered scheduling entirely: the
          chooser is consulted at every scheduling step and must return
          a tid from [sp_ready].  Used by the systematic schedule
          explorer ([Rfdet_check.Explore]); combine with
          [jitter_mean = 0.] so the schedule is the only free variable.
          [None] (the default) keeps the deterministic (clock, tid)
          order. *)
  sched_tap : (decision -> unit) option;
      (** decision tap for the record/replay journal: called at every
          decision point of the default clock-ordered scheduler (see
          [decision]).  Purely observational — it cannot alter the
          schedule, so a tapped run is bit-identical to an untapped one.
          Mutually exclusive with [choose] ([run] raises
          [Invalid_argument] if both are set); [None] (the default)
          costs nothing. *)
  observe : (tid:int -> Op.t -> unit) option;
      (** operation tap, called for every operation as it is handled
          (before injection and policy dispatch); lets an explorer
          record per-thread footprints without a policy change. *)
  obs : Rfdet_obs.Sink.t;
      (** causal-trace sink; the engine emits thread lifecycle and
          fault-injection events, policies emit the rest through
          [obs t].  [Rfdet_obs.Sink.null] (the default) disables
          tracing; an enabled sink never perturbs the simulation
          (see [Rfdet_obs.Sink]), so signatures are unchanged. *)
}

val default_config : config

(** Raised when no thread is runnable but some are unfinished.  The
    string describes the blocked threads. *)
exception Deadlock of string

(** Raised when a run exceeds [max_ops] operations. *)
exception Runaway

(** Raised (wrapping the original) when a simulated thread raises. *)
exception Thread_failure of int * exn

(** The exception recorded for a thread killed by an [I_crash]
    injection. *)
exception Injected_crash

(** Raised at the call site of an operation failed by [I_fail]. *)
exception Injected_fault

(** A failure no containment mode may swallow: metadata failed
    verification and could not be re-derived.  Propagates through
    [Contain]/[Recover] untouched and aborts the whole run. *)
exception Fatal of exn

(** A policy's verdict on one operation. *)
type outcome =
  | Done of int  (** complete with this result; thread stays runnable *)
  | Block  (** suspend; the policy will call [wake] later *)

type policy = {
  policy_name : string;
  handle : tid:int -> Op.t -> outcome;
      (** semantics of Load/Store and all synchronization ops *)
  on_engine_op : tid:int -> Op.t -> outcome -> outcome;
      (** observes operations the engine handles itself (Tick, Output,
          Self, Yield, Malloc, Free) after their accounting; may override
          the outcome — quantum-based runtimes use this to preempt
          compute-only threads at quantum boundaries.  Usually
          [fun ~tid:_ _ o -> o]. *)
  on_thread_exit : tid:int -> unit;
      (** the thread's body returned; wake joiners, flush its last slice *)
  on_thread_crash : tid:int -> exn -> unit;
      (** the thread died under [Contain]: discard its uncommitted work,
          release its held locks as poisoned, fail its joiners.  A
          policy without a containment story uses [escalate_crash],
          which re-raises and aborts the whole run. *)
  on_step : unit -> unit;
      (** called after every handled operation and after every thread
          exit; global arbiters (Kendo turn grants, barrier releases)
          re-evaluate here *)
  on_finish : unit -> unit;
      (** all threads finished; fill the profile's footprint fields *)
}

val escalate_crash : tid:int -> exn -> unit
(** The [on_thread_crash] of policies that do not support containment:
    re-raises as [Thread_failure], aborting the run gracefully. *)

(** {1 Accessors for policies} *)

val clock : t -> int -> int

val advance : t -> int -> int -> unit
(** [advance t tid cycles] adds simulated cycles to a thread's clock. *)

val raise_clock_to : t -> int -> int -> unit
(** [raise_clock_to t tid c] sets the clock to [max clock c]. *)

val icount : t -> int -> int
(** Kendo deterministic instruction count (jitter-free). *)

val add_icount : t -> int -> int -> unit

val current_tid : t -> int
(** Thread whose operation is being handled. *)

val set_on_deadlock : t -> (unit -> bool) -> unit
(** Install the total-stall hook: called when no thread is runnable but
    some are unfinished, before [Deadlock] is raised.  Return [true] iff
    progress was made (a thread woken, killed or restarted) — scheduling
    then retries; returning [true] without making progress livelocks the
    scheduler.  The stall point is schedule-independent for a
    deterministic runtime, so victim selection here is deterministic. *)

val set_on_corrupt : t -> (tid:int -> unit) -> unit
(** Install the metadata-corruption hook backing [I_corrupt]; [tid] is
    the thread whose operation triggered the injection. *)

val set_on_checkpoint : t -> (tid:int -> (unit -> unit) -> unit) -> unit
(** Install the restart-point hook backing [Op.Checkpoint]: called with
    the performing thread and the closure it declared as its restart
    point.  Without a hook (no recovery manager) checkpoints cost one
    cycle and do nothing. *)

val register_thread : t -> body:(unit -> unit) -> start_at:int -> int
(** Create a simulated thread; it becomes runnable at clock [start_at]
    with the instruction count it is given by [seed_icount] (default 0).
    Returns the deterministic tid (creation order). *)

val seed_icount : t -> int -> int -> unit
(** [seed_icount t tid c] initializes a freshly registered thread's
    instruction counter (children inherit the parent's count). *)

val wake : t -> tid:int -> value:int -> not_before:int -> unit
(** Make a blocked thread runnable, delivering [value] as the result of
    the operation it blocked on; its clock is raised to [not_before]. *)

val is_finished : t -> int -> bool

val is_crashed : t -> int -> bool
(** True once the thread died under [Contain] or [Recover] (and has not
    been restarted). *)

val kill : t -> tid:int -> exn -> unit
(** Force-crash a thread from outside its own execution — the deadlock
    victim path.  Follows the contained-crash protocol exactly: the
    continuation is dropped without unwinding and [on_thread_crash]
    runs.  No-op on finished or already-crashed threads. *)

val restart_thread :
  t -> tid:int -> body:(unit -> unit) -> not_before:int -> keep_outputs:int -> unit
(** Resurrect a crashed tid with a fresh body (raises [Invalid_argument]
    otherwise).  The instruction counter is preserved (Kendo stamps stay
    monotone per thread); the clock is raised to [not_before] (recovery
    latency, including backoff); outputs beyond the first [keep_outputs]
    are discarded so the replayed span re-emits them. *)

val output_count : t -> int -> int
(** Number of outputs a thread has emitted so far — the restart mark for
    [restart_thread]'s [keep_outputs]. *)

val thread_count : t -> int

val peak_live_threads : t -> int
(** High-water mark of concurrently live threads — the "N" of the
    paper's footprint formulas. *)

val live_tids : t -> int list
(** Tids of unfinished threads, ascending. *)

val profile : t -> Profile.t

val cost : t -> Cost.t

val allocator : t -> Rfdet_mem.Allocator.t

val obs : t -> Rfdet_obs.Sink.t
(** The configured trace sink ([Rfdet_obs.Sink.null] when disabled). *)

val ops_executed : t -> int

(** {1 Running} *)

type trace_entry = {
  t_tid : int;
  t_op : string;  (** [Op.name] of the operation *)
  t_clock : int;  (** thread clock when the operation was issued *)
  t_icount : int;
}

type result = {
  sim_time : int;  (** max final thread clock — the run's makespan *)
  outputs : (int * int64) list;
      (** observable outputs, grouped by tid ascending, program order
          within a thread *)
  profile : Profile.t;
  threads : int;
  ops : int;
  trace : trace_entry list;
      (** the last [trace_capacity] operations, oldest first *)
  crashes : (int * string) list;
      (** threads that died under [Contain], as (tid, exception text),
          sorted by tid; empty for clean runs *)
  thread_clocks : (int * int) list;
      (** every thread's final simulated clock, by tid ascending — the
          denominator of the [Rfdet_obs.Report] time breakdown is their
          sum *)
}

val run : ?config:config -> (t -> policy) -> main:(unit -> unit) -> result
(** [run make_policy ~main] executes [main] as thread 0 under the policy
    and returns when every simulated thread has finished. *)

val output_signature : result -> string
(** Deterministic digest of [outputs] and [crashes] for equality
    comparison — crash outcomes are observable behavior. *)

val outputs_checksum : result -> string
(** Digest of [outputs] alone, ignoring crash records: a recovered run
    that replayed every lost span matches the fault-free run here. *)
