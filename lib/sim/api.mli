(** The pthreads-like programming interface for simulated threads.

    Workload code is ordinary OCaml that calls these functions; each call
    performs an effect that suspends the simulated thread and hands the
    operation to the active runtime (RFDet, DThreads, pthreads, ...).
    The same workload source therefore runs unchanged under every
    runtime — exactly as the paper runs unmodified pthreads programs
    under its three systems.

    All functions must be called from inside a simulated thread (i.e.,
    under [Engine.run]); calling them elsewhere raises
    [Effect.Unhandled]. *)

type mutex = private int

type cond = private int

type barrier = private int

type rwlock = private int

type sem = private int

type deque = private int

type tid = int

type _ Effect.t += Op : Op.t -> int Effect.t

(** [perform_op op] — escape hatch performing a raw operation. *)
val perform_op : Op.t -> int

(** {1 Memory} *)

(** [load addr] / [store addr v] — 64-bit little-endian word access to
    the simulated address space. *)
val load : int -> int

val store : int -> int -> unit

(** [load_byte] / [store_byte] — single-byte access. *)
val load_byte : int -> int

val store_byte : int -> int -> unit

(** [tick ?loads ?stores instrs] — account for [instrs] instructions of
    thread-private computation containing [loads]/[stores] unshared
    memory accesses (default 0). *)
val tick : ?loads:int -> ?stores:int -> int -> unit

(** [malloc n] allocates [n] bytes of shared heap through the runtime's
    conflict-free allocator; [free] releases it. *)
val malloc : int -> int

val free : int -> unit

(** {1 Synchronization} *)

val mutex_create : unit -> mutex

val lock : mutex -> unit

val lock_check : mutex -> [ `Ok | `Poisoned ]
(** Like [lock], but reports whether the mutex was released by a
    crashed holder (lock poisoning, under crash containment).  The
    mutex is acquired either way; a poisoned mutex stays poisoned. *)

val trylock : mutex -> [ `Ok | `Poisoned | `Busy ]
(** Non-blocking acquire: [`Busy] when another thread holds the mutex
    (nothing acquired).  Deterministic under a DMT runtime — the answer
    depends only on the arbiter state at the caller's turn. *)

val lock_timed : mutex -> timeout:int -> [ `Ok | `Poisoned | `Timed_out ]
(** Acquire with a deterministic timeout of [timeout] counted
    instructions.  The expiry point is an icount deadline, so whether
    the lock or the timeout wins is jitter-independent.  [`Timed_out]
    means nothing was acquired. *)

val mutex_heal : mutex -> unit
(** Un-poison a mutex the caller holds, declaring the protected
    invariant re-established (see [lock_check]).  No-op on a clean
    mutex. *)

val unlock : mutex -> unit

val cond_create : unit -> cond

val cond_wait : cond -> mutex -> unit

val cond_signal : cond -> unit

val cond_broadcast : cond -> unit

val barrier_create : int -> barrier

val barrier_wait : barrier -> unit

val barrier_wait_check : barrier -> [ `Ok | `Broken ]
(** Like [barrier_wait], but reports [`Broken] when a party crashed at
    the barrier (now or earlier) — the wait completes immediately
    instead of deadlocking. *)

(** {1 Reader–writer locks}

    Shared/exclusive locks with deterministic, Kendo-stamped admission:
    waiting requests are served in stamp order, waiting readers are
    admitted as one batch up to the first waiting writer, and a reader
    arriving after a writer started waiting queues behind it (stamp-
    ordered writer preference). *)

val rwlock_create : unit -> rwlock

val rdlock : rwlock -> unit

val rdlock_check : rwlock -> [ `Ok | `Poisoned ]
(** Like [rdlock], but reports whether a crashed holder poisoned the
    lock.  The lock is acquired either way. *)

val wrlock : rwlock -> unit

val wrlock_check : rwlock -> [ `Ok | `Poisoned ]

val rwunlock : rwlock -> unit
(** Release the caller's shared or exclusive hold. *)

val rwlock_heal : rwlock -> unit
(** Un-poison a reader–writer lock the caller holds (see
    [mutex_heal]). *)

(** {1 Counting semaphores} *)

val sem_create : int -> sem
(** [sem_create permits] — a counting semaphore with [permits] initial
    permits (may be 0). *)

val sem_acquire : sem -> unit
(** P: take a permit, blocking until one is available.  Waiters are
    served in Kendo-stamp order. *)

val sem_acquire_check : sem -> [ `Ok | `Poisoned ]

val sem_post : sem -> unit
(** V: release one permit; hands it directly to the lowest-stamp waiter
    when one is queued. *)

val sem_heal : sem -> unit
(** Un-poison a semaphore while holding at least one permit. *)

(** {1 Work-stealing deques}

    Per-thread deques: the owner pushes/pops at the bottom (LIFO), other
    threads steal the globally oldest item — the victim is chosen
    deterministically as the non-empty deque whose oldest item carries
    the lowest Kendo push stamp. *)

val deque_create : unit -> deque
(** The calling thread owns the new deque; only the owner may push or
    pop. *)

val deque_push : deque -> int -> unit
(** Owner pushes a non-negative value at the bottom. *)

val deque_pop : deque -> [ `Item of int | `Empty | `Poisoned ]
(** Owner pops the newest item. *)

val deque_steal : ?own:deque -> unit -> [ `Item of int | `Empty ]
(** Steal the oldest item from the lowest-stamp non-empty deque,
    excluding [own] (the thief's deque) when given.  [`Empty] when no
    victim exists. *)

val deque_heal : deque -> unit
(** Un-poison a deque after its owner crashed; queued work becomes
    stealable again. *)

(** [with_rdlock rw f] / [with_wrlock rw f] — acquire, run [f], release,
    exception-safe. *)
val with_rdlock : rwlock -> (unit -> 'a) -> 'a

val with_wrlock : rwlock -> (unit -> 'a) -> 'a

(** {1 Threads} *)

(** [spawn body] starts a simulated thread and returns its deterministic
    thread id. *)
val spawn : (unit -> unit) -> tid

val join : tid -> unit

val join_check : tid -> [ `Ok | `Crashed ]
(** Like [join], but reports [`Crashed] when the target died under
    crash containment; the joiner does not absorb the crashed thread's
    uncommitted work. *)

val self : unit -> tid

val yield : unit -> unit

val checkpoint : (unit -> unit) -> unit
(** [checkpoint body] declares [body] as the calling thread's restart
    point: under deterministic recovery ([Engine.Recover]) a later
    crash replays [body] instead of the spawn body, so one-shot
    prologue work (start gates, handshakes) is not re-executed.
    Outputs already emitted survive the restart.  A no-op under every
    other failure mode. *)

val server_mark : ?n:int -> Op.server_event -> unit
(** [server_mark ~n ev] accounts [n] (default 1) occurrences of a
    request-serving outcome to the engine profile.  Thread-private
    bookkeeping — not a synchronization point.  No-op when [n <= 0]. *)

val span : ?a:int -> ?b:int -> Op.span_phase -> req:int -> unit
(** [span phase ~req ~a ~b] records one node of request [req]'s span
    tree (see [Op.span_phase] for the payload conventions).  Charges
    zero cycles and zero instruction count and is not a synchronization
    point; its only effect is a trace emission when the run's sink is
    enabled, so callers perform spans unconditionally and tracing on/off
    cannot perturb the run. *)

(** {1 Low-level atomics}

    The lock-free synchronization interface of the paper's Sections
    4.6/6: every atomic operation is both an acquire and a release on an
    internal synchronization variable keyed by the address, so lock-free
    algorithms execute deterministically and their updates propagate like
    any other release/acquire pair. *)

(** [atomic_load addr] — acquire load of a shared word. *)
val atomic_load : int -> int

(** [atomic_store addr v] — release store. *)
val atomic_store : int -> int -> unit

(** [atomic_fetch_add addr n] — adds [n]; returns the previous value. *)
val atomic_fetch_add : int -> int -> int

(** [atomic_exchange addr v] — swaps in [v]; returns the previous value. *)
val atomic_exchange : int -> int -> int

(** [atomic_cas addr ~expect ~desired] — writes [desired] iff the word
    equals [expect]; returns the previous value (compare with [expect]
    to learn whether the swap happened). *)
val atomic_cas : int -> expect:int -> desired:int -> int

(** {1 Observable output} *)

(** [output v] appends [v] to the thread's output stream.  The
    concatenation of all streams in thread-id order is the run's
    observable result, compared by the determinism checker. *)
val output : int64 -> unit

val output_int : int -> unit

(** {1 Critical-section helper} *)

(** [with_lock m f] — [lock m; f (); unlock m], exception-safe. *)
val with_lock : mutex -> (unit -> 'a) -> 'a

(** Unsafe handle constructors for the runtime layer (not for workload
    code). *)
module Handle : sig
  val mutex_of_int : int -> mutex
  val cond_of_int : int -> cond
  val barrier_of_int : int -> barrier
  val rwlock_of_int : int -> rwlock
  val sem_of_int : int -> sem
  val deque_of_int : int -> deque
end
