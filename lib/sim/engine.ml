module Allocator = Rfdet_mem.Allocator
module Det_rng = Rfdet_util.Det_rng
module Pqueue = Rfdet_util.Pqueue

type failure_mode = Abort | Contain | Recover

type injection = I_none | I_crash | I_fail | I_delay of int | I_corrupt

type sched_point = {
  sp_ready : int list;
  sp_last : int;
  sp_last_ready : bool;
  sp_last_boundary : bool;
}

type decision = { d_index : int; d_ready : int list; d_chosen : int }

type config = {
  cost : Cost.t;
  seed : int64;
  jitter_mean : float;
  max_ops : int;
  trace_capacity : int;
  failure_mode : failure_mode;
  inject : (tid:int -> Op.t -> injection) option;
  choose : (sched_point -> int) option;
  sched_tap : (decision -> unit) option;
  observe : (tid:int -> Op.t -> unit) option;
  obs : Rfdet_obs.Sink.t;
}

let default_config =
  {
    cost = Cost.default;
    seed = 1L;
    jitter_mean = 0.;
    max_ops = 200_000_000;
    trace_capacity = 0;
    failure_mode = Abort;
    inject = None;
    choose = None;
    sched_tap = None;
    observe = None;
    obs = Rfdet_obs.Sink.null;
  }

exception Deadlock of string

exception Runaway

exception Thread_failure of int * exn

exception Injected_crash

exception Injected_fault

(* A failure no containment policy may swallow: raised when stored
   metadata fails verification and cannot be re-derived.  It crosses
   every containment catch site untouched, so a corrupted run dies
   loudly and deterministically rather than silently propagating bad
   data. *)
exception Fatal of exn

type outcome = Done of int | Block

type status = Ready | Running | Blocked | Finished | Crashed

(* What to do when the scheduler next picks this thread. *)
type pending =
  | Start of (unit -> unit)
  | Resume of (int, unit) Effect.Deep.continuation * int
  | Raise of (int, unit) Effect.Deep.continuation * exn
      (* deliver an injected failure at the operation's call site *)
  | Nothing  (** running, blocked or finished *)

type thread = {
  tid : int;
  mutable clock : int;
  mutable icount : int;
  mutable status : status;
  mutable pending : pending;
  mutable generation : int;  (* invalidates stale scheduler entries *)
  mutable outputs : int64 list;  (* reversed *)
}

type policy = {
  policy_name : string;
  handle : tid:int -> Op.t -> outcome;
  on_engine_op : tid:int -> Op.t -> outcome -> outcome;
  on_thread_exit : tid:int -> unit;
  on_thread_crash : tid:int -> exn -> unit;
  on_step : unit -> unit;
  on_finish : unit -> unit;
}

let escalate_crash ~tid e = raise (Thread_failure (tid, e))

type trace_entry = {
  t_tid : int;
  t_op : string;
  t_clock : int;
  t_icount : int;
}

type result = {
  sim_time : int;
  outputs : (int * int64) list;
  profile : Profile.t;
  threads : int;
  ops : int;
  trace : trace_entry list;
  crashes : (int * string) list;
  thread_clocks : (int * int) list;
}

type t = {
  config : config;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  queue : (int * int * int) Pqueue.t;  (* clock, tid, generation *)
  alloc : Allocator.t;
  prof : Profile.t;
  rng : Det_rng.t;
  mutable current : int;
  mutable ops : int;
  mutable unfinished : int;
  mutable peak_live : int;
  trace_ring : trace_entry option array;  (* empty when tracing is off *)
  mutable trace_next : int;
  mutable policy : policy option;
  mutable crashes : (int * string) list;  (* reversed crash order *)
  mutable decisions : int;
      (* free scheduling decisions surfaced to [config.sched_tap] so far *)
  mutable last_run : int;  (* tid of the last thread a scheduling step ran *)
  mutable last_boundary : bool;
      (* did that thread stop at a schedule-relevant boundary (sync op,
         handle creation, or exit)? *)
  mutable on_deadlock : (unit -> bool) option;
      (* consulted when no thread is runnable but some are unfinished;
         returns true iff it made progress (woke, killed or restarted a
         thread) and scheduling should retry *)
  mutable on_corrupt : (tid:int -> unit) option;
      (* applies an [I_corrupt] injection to the runtime's stored
         metadata; [None] makes corruption a no-op (runtimes without
         verifiable metadata) *)
  mutable on_checkpoint : (tid:int -> (unit -> unit) -> unit) option;
      (* records an [Op.Checkpoint] closure as the thread's restart
         point; [None] (no recovery manager) makes checkpoints no-ops *)
}

(* Operations at which the schedule choice can change observable behavior
   of a correct DMT runtime.  Synchronization ops order themselves through
   the arbiter; handle creations assign ids from a shared counter without
   taking a turn, so their interleaving is visible too. *)
let is_boundary (op : Op.t) =
  Op.is_sync op
  || match op with
     | Mutex_create | Cond_create | Barrier_create _ | Rwlock_create
     | Sem_create _ | Deque_create -> true
     | _ -> false

let cmp_entry (c1, t1, _) (c2, t2, _) =
  if c1 <> c2 then compare c1 c2 else compare t1 t2

let find t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Engine: unknown tid %d" tid)

let clock t tid = (find t tid).clock

let icount t tid = (find t tid).icount

let advance t tid cycles =
  let th = find t tid in
  th.clock <- th.clock + cycles

let raise_clock_to t tid c =
  let th = find t tid in
  if c > th.clock then th.clock <- c

let add_icount t tid n =
  let th = find t tid in
  th.icount <- th.icount + n

let current_tid t = t.current

let set_on_deadlock t f = t.on_deadlock <- Some f

let set_on_corrupt t f = t.on_corrupt <- Some f

let set_on_checkpoint t f = t.on_checkpoint <- Some f

let enqueue t th =
  th.generation <- th.generation + 1;
  Pqueue.push t.queue (th.clock, th.tid, th.generation)

let register_thread t ~body ~start_at =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let th =
    {
      tid;
      clock = start_at;
      icount = 0;
      status = Ready;
      pending = Start body;
      generation = 0;
      outputs = [];
    }
  in
  Hashtbl.replace t.threads tid th;
  t.unfinished <- t.unfinished + 1;
  if t.unfinished > t.peak_live then t.peak_live <- t.unfinished;
  enqueue t th;
  tid

let seed_icount t tid c = (find t tid).icount <- c

let wake t ~tid ~value ~not_before =
  let th = find t tid in
  match th.status with
  | Crashed ->
    (* A wake racing a contained crash (e.g. a stale grant) is dropped:
       the thread is gone and must not be rescheduled. *)
    ()
  | Ready | Running | Finished ->
    invalid_arg (Printf.sprintf "Engine.wake: tid %d is not blocked" tid)
  | Blocked ->
    (match th.pending with
    | Resume (k, _) -> th.pending <- Resume (k, value)
    | Raise _ | Start _ | Nothing ->
      invalid_arg "Engine.wake: no stored continuation");
    if not_before > th.clock then th.clock <- not_before;
    th.status <- Ready;
    enqueue t th

let is_finished t tid = (find t tid).status = Finished

let is_crashed t tid = (find t tid).status = Crashed

let thread_count t = t.next_tid

let peak_live_threads t = t.peak_live

let live_tids t =
  Hashtbl.fold
    (fun tid th acc ->
      match th.status with
      | Finished | Crashed -> acc
      | Ready | Running | Blocked -> tid :: acc)
    t.threads []
  |> List.sort compare

let profile t = t.prof

let cost t = t.config.cost

let allocator t = t.alloc

let obs t = t.config.obs

let ops_executed t = t.ops

let jitter t =
  if t.config.jitter_mean <= 0. then 0
  else
    int_of_float (Det_rng.exponential t.rng ~mean:t.config.jitter_mean)

let policy_exn t =
  match t.policy with Some p -> p | None -> assert false

(* Account the generic counters and the Kendo instruction count for an
   operation, and apply engine-level semantics where the operation is
   policy-independent.  Returns [Some outcome] when fully handled here. *)
let pre_handle t th (op : Op.t) =
  let c = t.config.cost in
  let p = t.prof in
  (* The Kendo instruction count advances in proportion to the cycles an
     operation's *application-level* work costs (runtime-internal work —
     diffing, propagation — does not count, matching the paper's
     compile-time instrTick instrumentation).  Proportionality to cycles
     keeps the logical clocks of concurrently running threads advancing
     at similar rates, as retired-instruction counts do on real
     hardware; it is exactly as deterministic, since the cost table is
     fixed and jitter is excluded. *)
  match op with
  | Tick { instrs; loads; stores } ->
    p.loads <- p.loads + loads;
    p.stores <- p.stores + stores;
    let cycles = (instrs * c.instr) + (loads * c.load) + (stores * c.store) in
    th.icount <- th.icount + cycles;
    th.clock <- th.clock + cycles;
    Some (Done 0)
  | Output v ->
    th.icount <- th.icount + c.output;
    th.clock <- th.clock + c.output;
    th.outputs <- v :: th.outputs;
    Some (Done 0)
  | Self -> Some (Done th.tid)
  | Yield ->
    th.icount <- th.icount + 1;
    th.clock <- th.clock + 1;
    Some (Done 0)
  | Checkpoint body ->
    th.icount <- th.icount + 1;
    th.clock <- th.clock + 1;
    (match t.on_checkpoint with
    | Some f -> f ~tid:th.tid body
    | None -> ());
    Some (Done 0)
  | Server_mark { ev; n } ->
    th.icount <- th.icount + 1;
    th.clock <- th.clock + 1;
    (match ev with
    | Op.Sv_served -> p.requests_served <- p.requests_served + n
    | Op.Sv_shed -> p.requests_shed <- p.requests_shed + n
    | Op.Sv_retried -> p.requests_retried <- p.requests_retried + n
    | Op.Sv_timed_out -> p.requests_timed_out <- p.requests_timed_out + n
    | Op.Sv_breaker_transition ->
      p.breaker_transitions <- p.breaker_transitions + n
    | Op.Sv_stale_read -> p.stale_reads <- p.stale_reads + n);
    Some (Done 0)
  | Span { phase; req; a; b } ->
    (* Free instrumentation: no cycle or instruction-count charge, so the
       icount stream seen by the arbiter between real operations — and
       with it every lock grant, stamp order and timeout expiry — is the
       same as if the span were not performed at all.  The only effect is
       a trace emission when the run has a live sink. *)
    if Rfdet_obs.Sink.enabled t.config.obs then
      Rfdet_obs.Sink.emit t.config.obs ~tid:th.tid ~time:th.clock
        (Rfdet_obs.Trace.Span
           { phase = Op.span_phase_name phase; req; a; b });
    Some (Done 0)
  | Malloc n ->
    th.icount <- th.icount + c.malloc;
    th.clock <- th.clock + c.malloc;
    Some (Done (Allocator.malloc t.alloc n))
  | Free addr ->
    th.icount <- th.icount + c.free;
    th.clock <- th.clock + c.free;
    Allocator.free t.alloc addr;
    Some (Done 0)
  | Load _ ->
    p.loads <- p.loads + 1;
    th.icount <- th.icount + c.load;
    None
  | Store _ ->
    p.stores <- p.stores + 1;
    th.icount <- th.icount + c.store;
    None
  | Lock _ | Trylock _ | Lock_timed _ ->
    p.locks <- p.locks + 1;
    th.icount <- th.icount + 1;
    None
  | Mutex_heal _ ->
    th.icount <- th.icount + 1;
    None
  | Unlock _ ->
    p.unlocks <- p.unlocks + 1;
    th.icount <- th.icount + 1;
    None
  | Cond_wait _ ->
    p.waits <- p.waits + 1;
    th.icount <- th.icount + 1;
    None
  | Cond_signal _ | Cond_broadcast _ ->
    p.signals <- p.signals + 1;
    th.icount <- th.icount + 1;
    None
  | Barrier_wait _ ->
    p.barriers <- p.barriers + 1;
    th.icount <- th.icount + 1;
    None
  | Spawn _ ->
    p.forks <- p.forks + 1;
    th.icount <- th.icount + 1;
    None
  | Join _ ->
    p.joins <- p.joins + 1;
    th.icount <- th.icount + 1;
    None
  | Atomic _ ->
    p.atomics <- p.atomics + 1;
    th.icount <- th.icount + 1;
    None
  | Rdlock _ | Wrlock _ ->
    p.locks <- p.locks + 1;
    th.icount <- th.icount + 1;
    None
  | Rwunlock _ ->
    p.unlocks <- p.unlocks + 1;
    th.icount <- th.icount + 1;
    None
  | Sem_acquire _ ->
    p.locks <- p.locks + 1;
    th.icount <- th.icount + 1;
    None
  | Sem_post _ ->
    p.unlocks <- p.unlocks + 1;
    th.icount <- th.icount + 1;
    None
  | Deque_push _ | Deque_pop _ | Deque_steal _ ->
    p.atomics <- p.atomics + 1;
    th.icount <- th.icount + 1;
    None
  | Mutex_create | Cond_create | Barrier_create _ | Rwlock_create
  | Sem_create _ | Deque_create ->
    th.icount <- th.icount + 1;
    None

(* Kill one simulated thread, keep the rest of the run going.  The
   thread publishes nothing it had not already published: its stored
   continuation is dropped without resuming, so no cleanup handler (e.g.
   [with_lock]'s unlock) runs — exactly a crash, not an unwind.  The
   policy's [on_thread_crash] hook then repairs shared runtime state
   (release held locks as poisoned, discard the open slice, wake
   joiners); a policy that cannot contain re-raises from the hook and
   the whole run aborts as before. *)
let crash_thread t th e =
  match th.status with
  | Finished | Crashed -> ()
  | Ready | Running | Blocked ->
    th.status <- Crashed;
    th.pending <- Nothing;
    t.unfinished <- t.unfinished - 1;
    t.crashes <- (th.tid, Printexc.to_string e) :: t.crashes;
    if Rfdet_obs.Sink.enabled t.config.obs then
      Rfdet_obs.Sink.emit t.config.obs ~tid:th.tid ~time:th.clock
        Rfdet_obs.Trace.Thread_crash;
    (policy_exn t).on_thread_crash ~tid:th.tid e;
    (policy_exn t).on_step ()

(* Force-crash a thread from outside its own execution (deadlock victim
   selection).  Same path as a contained fault: continuation dropped, no
   unwind, policy repairs shared state. *)
let kill t ~tid e = crash_thread t (find t tid) e

(* Resurrect a crashed tid with a fresh body.  The instruction counter is
   deliberately preserved — Kendo stamps must stay monotone per thread or
   the arbiter's turn order could move backwards — and outputs emitted
   after the registered restart point are truncated so the replay
   re-emits them.  [not_before] charges the recovery latency (backoff)
   in simulated cycles. *)
let restart_thread t ~tid ~body ~not_before ~keep_outputs =
  let th = find t tid in
  (match th.status with
  | Crashed -> ()
  | Ready | Running | Blocked | Finished ->
    invalid_arg (Printf.sprintf "Engine.restart_thread: tid %d not crashed" tid));
  th.status <- Ready;
  th.pending <- Start body;
  if not_before > th.clock then th.clock <- not_before;
  let n = List.length th.outputs in
  if keep_outputs < n then begin
    (* [outputs] is newest-first; drop everything past the restart mark *)
    let rec drop k l =
      if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
    in
    th.outputs <- drop (n - keep_outputs) th.outputs
  end;
  t.unfinished <- t.unfinished + 1;
  if t.unfinished > t.peak_live then t.peak_live <- t.unfinished;
  enqueue t th

let output_count t tid = List.length (find t tid).outputs

let handle_op t th op k =
  th.pending <- Resume (k, 0);
  t.ops <- t.ops + 1;
  if t.ops > t.config.max_ops then raise Runaway;
  t.last_boundary <- is_boundary op;
  (match t.config.observe with
  | None -> ()
  | Some f -> f ~tid:th.tid op);
  if Array.length t.trace_ring > 0 then begin
    t.trace_ring.(t.trace_next) <-
      Some
        {
          t_tid = th.tid;
          t_op = Op.name op;
          t_clock = th.clock;
          t_icount = th.icount;
        };
    t.trace_next <- (t.trace_next + 1) mod Array.length t.trace_ring
  end;
  let injection =
    match t.config.inject with
    | None -> I_none
    | Some f -> f ~tid:th.tid op
  in
  (if Rfdet_obs.Sink.enabled t.config.obs then
     match injection with
     | I_none -> ()
     | I_crash | I_fail | I_delay _ | I_corrupt ->
       let action =
         match injection with
         | I_crash -> "crash"
         | I_fail -> "fail"
         | I_delay _ -> "delay"
         | I_corrupt -> "corrupt"
         | I_none -> assert false
       in
       Rfdet_obs.Sink.emit t.config.obs ~tid:th.tid ~time:th.clock
         (Rfdet_obs.Trace.Fault { op = Op.name op; action }));
  match injection with
  | I_crash when t.config.failure_mode <> Abort ->
    crash_thread t th Injected_crash
  | I_crash -> raise (Thread_failure (th.tid, Injected_crash))
  | I_fail when (match op with Op.Malloc _ -> false | _ -> true) ->
    (* Operations without an in-band error code surface the fault as an
       exception at the call site; the fiber unwinds through its own
       handlers and may recover. *)
    th.pending <- Raise (k, Injected_fault);
    th.status <- Ready;
    enqueue t th
  | (I_none | I_fail | I_delay _ | I_corrupt) as injection ->
    (match injection with
    | I_delay d -> th.clock <- th.clock + max 0 d
    | I_corrupt -> (
      (* Damage the runtime's stored metadata, then let the operation
         itself run normally: the corruption is only observable when the
         damaged bytes are next consumed (propagation or the end-of-run
         audit), exactly like silent media corruption. *)
      match t.on_corrupt with
      | None -> ()
      | Some f -> f ~tid:th.tid)
    | I_none | I_fail | I_crash -> ());
    let dispatch () =
      match injection, op with
      | I_fail, Op.Malloc _ -> Done 0  (* allocation failure: null *)
      | _ -> (
        match pre_handle t th op with
        | Some o -> (policy_exn t).on_engine_op ~tid:th.tid op o
        | None -> (policy_exn t).handle ~tid:th.tid op)
    in
    (* Policy code runs on the scheduler stack, outside the fiber's
       [exnc]; attribute its failures to the faulting thread here. *)
    let verdict =
      try Ok (dispatch ()) with
      | (Runaway | Deadlock _ | Fatal _) as e -> raise e
      | Thread_failure (tid, e) ->
        if t.config.failure_mode <> Abort then Error e
        else raise (Thread_failure (tid, e))
      | e ->
        if t.config.failure_mode <> Abort then Error e
        else raise (Thread_failure (th.tid, e))
    in
    (match verdict with
    | Error e -> crash_thread t th e
    | Ok outcome ->
      th.clock <- th.clock + jitter t;
      (match outcome with
      | Done v ->
        th.pending <- Resume (k, v);
        th.status <- Ready;
        enqueue t th
      | Block -> th.status <- Blocked);
      (* on_step runs global arbiters whose grant callbacks execute policy
         code; attribute their failures to the thread being stepped *)
      (try (policy_exn t).on_step () with
      | (Runaway | Deadlock _ | Fatal _) as e -> raise e
      | Thread_failure (_, e) when t.config.failure_mode <> Abort ->
        crash_thread t th e
      | Thread_failure _ as e -> raise e
      | e ->
        if t.config.failure_mode <> Abort then crash_thread t th e
        else raise (Thread_failure (th.tid, e))))

let run_thread t th =
  t.current <- th.tid;
  t.last_run <- th.tid;
  th.status <- Running;
  let pending = th.pending in
  th.pending <- Nothing;
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc =
        (fun () ->
          th.status <- Finished;
          t.unfinished <- t.unfinished - 1;
          if Rfdet_obs.Sink.enabled t.config.obs then
            Rfdet_obs.Sink.emit t.config.obs ~tid:th.tid ~time:th.clock
              Rfdet_obs.Trace.Thread_exit;
          (policy_exn t).on_thread_exit ~tid:th.tid;
          (policy_exn t).on_step ());
      exnc =
        (fun e ->
          (* The fiber body itself raised and fully unwound. *)
          match e, t.config.failure_mode with
          | Fatal _, _ -> raise e
          | _, (Contain | Recover) -> crash_thread t th e
          | _, Abort -> raise (Thread_failure (th.tid, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Api.Op op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                handle_op t th op k)
          | _ -> None);
    }
  in
  match pending with
  | Start body -> Effect.Deep.match_with body () handler
  | Resume (k, v) -> Effect.Deep.continue k v
  | Raise (k, e) -> Effect.Deep.discontinue k e
  | Nothing -> assert false

let describe_blocked t =
  let live = live_tids t in
  let parts =
    List.map
      (fun tid ->
        let th = find t tid in
        Printf.sprintf "tid=%d status=%s clock=%d icount=%d" tid
          (match th.status with
          | Ready -> "ready"
          | Running -> "running"
          | Blocked -> "blocked"
          | Finished -> "finished"
          | Crashed -> "crashed")
          th.clock th.icount)
      live
  in
  String.concat "; " parts

(* When every thread is stuck the recovery hook gets one chance per
   stall to make progress (fire a lock timeout, kill a deadlock victim);
   it must only return true after actually waking, killing or restarting
   a thread, so each retry re-enters with a changed system state. *)
let stalled t =
  match t.on_deadlock with
  | Some f when f () -> true
  | _ ->
    raise
      (Deadlock (Printf.sprintf "no runnable thread: %s" (describe_blocked t)))

let ready_tids t =
  Hashtbl.fold
    (fun tid th acc -> if th.status = Ready then tid :: acc else acc)
    t.threads []
  |> List.sort compare

(* Surface one clock-order scheduling step to [config.sched_tap], but only
   when it is a *decision point* — the schedule could have run a different
   thread with observable consequences.  Between boundaries a continuing
   thread's interleaving is invisible to a correct DMT runtime (and
   mid-segment switches forced by jitter are reproduced by the seeded
   jitter stream, not the log), so those steps are not decisions.  The
   predicate mirrors the explorer's branch rule: first step, last thread
   stopped at a schedule-relevant boundary, or last thread no longer
   ready.  Singleton ready sets are forced moves and are skipped too —
   this is what makes the journal minimal. *)
let tap_decision t tap tid =
  if
    t.last_run < 0 || t.last_boundary || (find t t.last_run).status <> Ready
  then
    match ready_tids t with
    | [] | [ _ ] -> ()
    | ready ->
      let d = { d_index = t.decisions; d_ready = ready; d_chosen = tid } in
      t.decisions <- t.decisions + 1;
      tap d

let rec schedule t =
  match Pqueue.pop t.queue with
  | None -> if t.unfinished > 0 && stalled t then schedule t
  | Some (_, tid, generation) ->
    let th = find t tid in
    (* Skip stale entries (thread re-queued with a newer generation or no
       longer ready). *)
    if th.generation = generation && th.status = Ready then begin
      (match t.config.sched_tap with
      | None -> ()
      | Some tap -> tap_decision t tap tid);
      run_thread t th
    end;
    schedule t

(* Chooser-driven scheduling for the systematic explorer: the clock order
   is ignored entirely and the installed chooser picks which ready thread
   runs each step.  The chooser is consulted on *every* step — including
   forced ones with a single ready thread — so an explorer can account for
   moves it had no say in. *)
let rec schedule_chosen t choose =
  match ready_tids t with
  | [] -> if t.unfinished > 0 && stalled t then schedule_chosen t choose
  | ready ->
    let sp =
      {
        sp_ready = ready;
        sp_last = t.last_run;
        sp_last_ready = List.mem t.last_run ready;
        sp_last_boundary = t.last_boundary;
      }
    in
    let tid = choose sp in
    if not (List.mem tid ready) then
      invalid_arg
        (Printf.sprintf "Engine: chooser picked tid %d, not ready ([%s])" tid
           (String.concat "," (List.map string_of_int ready)));
    run_thread t (find t tid);
    schedule_chosen t choose

let collect_outputs t =
  let tids = List.init t.next_tid (fun i -> i) in
  List.concat_map
    (fun tid ->
      let th = find t tid in
      List.rev_map (fun v -> (tid, v)) th.outputs)
    tids

let run ?(config = default_config) make_policy ~main =
  (if config.choose <> None && config.sched_tap <> None then
     invalid_arg
       "Engine.run: choose and sched_tap are mutually exclusive (the tap \
        records clock-order decisions; a chooser replaces clock order)");
  let t =
    {
      config;
      threads = Hashtbl.create 16;
      next_tid = 0;
      queue = Pqueue.create ~cmp:cmp_entry;
      alloc = Allocator.create ();
      prof = Profile.create ();
      rng = Det_rng.create config.seed;
      current = 0;
      ops = 0;
      unfinished = 0;
      peak_live = 0;
      trace_ring = Array.make (max 0 config.trace_capacity) None;
      trace_next = 0;
      policy = None;
      crashes = [];
      decisions = 0;
      last_run = -1;
      last_boundary = true;
      on_deadlock = None;
      on_corrupt = None;
      on_checkpoint = None;
    }
  in
  let (_ : int) = register_thread t ~body:main ~start_at:0 in
  t.policy <- Some (make_policy t);
  (match config.choose with
  | None -> schedule t
  | Some choose -> schedule_chosen t choose);
  (policy_exn t).on_finish ();
  let sim_time =
    Hashtbl.fold (fun _ th acc -> max acc th.clock) t.threads 0
  in
  let trace =
    if Array.length t.trace_ring = 0 then []
    else begin
      let n = Array.length t.trace_ring in
      List.filter_map
        (fun i -> t.trace_ring.((t.trace_next + i) mod n))
        (List.init n (fun i -> i))
    end
  in
  let thread_clocks =
    List.init t.next_tid (fun tid -> (tid, (find t tid).clock))
  in
  (* A saturated trace ring silently truncates offline analysis — record
     how much was lost so `rfdet trace`/`rfdet spans` can warn loudly.
     Always 0 for the shared null sink and for unbounded sinks, so
     tracing on/off keeps profiles bit-identical. *)
  t.prof.trace_dropped <- Rfdet_obs.Sink.dropped t.config.obs;
  {
    sim_time;
    outputs = collect_outputs t;
    profile = t.prof;
    threads = t.next_tid;
    ops = t.ops;
    trace;
    crashes = List.sort compare t.crashes;
    thread_clocks;
  }

(* Crash outcomes are part of the observable behavior: a deterministic
   runtime under a deterministic fault plan must crash the same threads
   for the same reasons on every run. *)
let output_signature r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tid, v) -> Buffer.add_string buf (Printf.sprintf "%d:%Lx;" tid v))
    r.outputs;
  List.iter
    (fun (tid, msg) -> Buffer.add_string buf (Printf.sprintf "!%d:%s;" tid msg))
    r.crashes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Outputs alone, ignoring crash records: a recovered run whose restarts
   replayed every lost span matches the fault-free run here even though
   the signatures differ (the crash history is still observable). *)
let outputs_checksum r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tid, v) -> Buffer.add_string buf (Printf.sprintf "%d:%Lx;" tid v))
    r.outputs;
  Digest.to_hex (Digest.string (Buffer.contents buf))
