type mutex = int

type cond = int

type barrier = int

type rwlock = int

type sem = int

type deque = int

type tid = int

type _ Effect.t += Op : Op.t -> int Effect.t

let perform_op op = Effect.perform (Op op)

let load addr = perform_op (Load { addr; width = W64 })

let store addr value = ignore (perform_op (Store { addr; value; width = W64 }))

let load_byte addr = perform_op (Load { addr; width = W8 })

let store_byte addr value =
  ignore (perform_op (Store { addr; value; width = W8 }))

let tick ?(loads = 0) ?(stores = 0) instrs =
  if instrs > 0 || loads > 0 || stores > 0 then
    ignore (perform_op (Tick { instrs; loads; stores }))

let malloc n = perform_op (Malloc n)

let free addr = ignore (perform_op (Free addr))

let mutex_create () = perform_op Mutex_create

let lock m = ignore (perform_op (Lock m))

let lock_check m = if perform_op (Lock m) = 0 then `Ok else `Poisoned

let trylock m =
  match perform_op (Trylock m) with
  | 0 -> `Ok
  | 1 -> `Poisoned
  | _ -> `Busy

let lock_timed m ~timeout =
  match perform_op (Lock_timed { mutex = m; timeout }) with
  | 0 -> `Ok
  | 1 -> `Poisoned
  | _ -> `Timed_out

let mutex_heal m = ignore (perform_op (Mutex_heal m))

let unlock m = ignore (perform_op (Unlock m))

let cond_create () = perform_op Cond_create

let cond_wait c m = ignore (perform_op (Cond_wait { cond = c; mutex = m }))

let cond_signal c = ignore (perform_op (Cond_signal c))

let cond_broadcast c = ignore (perform_op (Cond_broadcast c))

let barrier_create parties = perform_op (Barrier_create parties)

let barrier_wait b = ignore (perform_op (Barrier_wait b))

let barrier_wait_check b =
  if perform_op (Barrier_wait b) = 0 then `Ok else `Broken

let rwlock_create () = perform_op Rwlock_create

let rdlock rw = ignore (perform_op (Rdlock rw))

let rdlock_check rw = if perform_op (Rdlock rw) = 0 then `Ok else `Poisoned

let wrlock rw = ignore (perform_op (Wrlock rw))

let wrlock_check rw = if perform_op (Wrlock rw) = 0 then `Ok else `Poisoned

let rwunlock rw = ignore (perform_op (Rwunlock rw))

(* Poisoned rwlocks and semaphores share the mutex heal path: handles
   are unique across object kinds, and the runtime's heal dispatches on
   the handle's kind. *)
let rwlock_heal rw = ignore (perform_op (Mutex_heal rw))

let sem_create permits = perform_op (Sem_create permits)

let sem_acquire s = ignore (perform_op (Sem_acquire s))

let sem_acquire_check s =
  if perform_op (Sem_acquire s) = 0 then `Ok else `Poisoned

let sem_post s = ignore (perform_op (Sem_post s))

let sem_heal s = ignore (perform_op (Mutex_heal s))

let deque_create () = perform_op Deque_create

let deque_push dq v =
  if v < 0 then invalid_arg "Api.deque_push: negative value";
  ignore (perform_op (Deque_push { deque = dq; value = v }))

let deque_pop dq =
  match perform_op (Deque_pop dq) with
  | -1 -> `Empty
  | -2 -> `Poisoned
  | v -> `Item v

let deque_steal ?(own = 0) () =
  match perform_op (Deque_steal own) with
  | -1 -> `Empty
  | v -> `Item v

let deque_heal dq = ignore (perform_op (Mutex_heal dq))

let with_rdlock rw f =
  rdlock rw;
  match f () with
  | v ->
    rwunlock rw;
    v
  | exception e ->
    rwunlock rw;
    raise e

let with_wrlock rw f =
  wrlock rw;
  match f () with
  | v ->
    rwunlock rw;
    v
  | exception e ->
    rwunlock rw;
    raise e

let atomic_load addr = perform_op (Atomic { addr; rmw = A_load })

let atomic_store addr v = ignore (perform_op (Atomic { addr; rmw = A_store v }))

let atomic_fetch_add addr n = perform_op (Atomic { addr; rmw = A_add n })

let atomic_exchange addr v = perform_op (Atomic { addr; rmw = A_exchange v })

let atomic_cas addr ~expect ~desired =
  perform_op (Atomic { addr; rmw = A_cas { expect; desired } })

let spawn body = perform_op (Spawn body)

let join t = ignore (perform_op (Join t))

let join_check t = if perform_op (Join t) = 0 then `Ok else `Crashed

let self () = perform_op Self

let yield () = ignore (perform_op Yield)

let checkpoint body = ignore (perform_op (Checkpoint body))

let server_mark ?(n = 1) ev =
  if n > 0 then ignore (perform_op (Server_mark { ev; n }))

let span ?(a = 0) ?(b = 0) phase ~req =
  ignore (perform_op (Span { phase; req; a; b }))

let output v = ignore (perform_op (Output v))

let output_int v = output (Int64.of_int v)

let with_lock m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e

module Handle = struct
  let mutex_of_int i = i

  let cond_of_int i = i

  let barrier_of_int i = i

  let rwlock_of_int i = i

  let sem_of_int i = i

  let deque_of_int i = i
end
