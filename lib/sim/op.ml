type t =
  | Load of { addr : int; width : width }
  | Store of { addr : int; value : int; width : width }
  | Tick of { instrs : int; loads : int; stores : int }
  | Mutex_create
  | Lock of int
  | Trylock of int
  | Lock_timed of { mutex : int; timeout : int }
  | Mutex_heal of int
  | Unlock of int
  | Cond_create
  | Cond_wait of { cond : int; mutex : int }
  | Cond_signal of int
  | Cond_broadcast of int
  | Barrier_create of int
  | Barrier_wait of int
  | Spawn of (unit -> unit)
  | Join of int
  | Malloc of int
  | Free of int
  | Output of int64
  | Self
  | Yield
  | Checkpoint of (unit -> unit)
  | Atomic of { addr : int; rmw : rmw }
  | Server_mark of { ev : server_event; n : int }
  | Span of { phase : span_phase; req : int; a : int; b : int }
  | Rwlock_create
  | Rdlock of int
  | Wrlock of int
  | Rwunlock of int
  | Sem_create of int
  | Sem_acquire of int
  | Sem_post of int
  | Deque_create
  | Deque_push of { deque : int; value : int }
  | Deque_pop of int
  | Deque_steal of int

and server_event =
  | Sv_served
  | Sv_shed
  | Sv_retried
  | Sv_timed_out
  | Sv_breaker_transition
  | Sv_stale_read

and span_phase =
  | Sp_admit
  | Sp_attempt
  | Sp_backoff
  | Sp_breaker
  | Sp_service
  | Sp_stale
  | Sp_shed
  | Sp_response

and rmw =
  | A_load
  | A_store of int
  | A_add of int
  | A_exchange of int
  | A_cas of { expect : int; desired : int }

and width = W8 | W64

let name = function
  | Load _ -> "load"
  | Store _ -> "store"
  | Tick _ -> "tick"
  | Mutex_create -> "mutex_create"
  | Lock _ -> "lock"
  | Trylock _ -> "trylock"
  | Lock_timed _ -> "lock_timed"
  | Mutex_heal _ -> "mutex_heal"
  | Unlock _ -> "unlock"
  | Cond_create -> "cond_create"
  | Cond_wait _ -> "cond_wait"
  | Cond_signal _ -> "cond_signal"
  | Cond_broadcast _ -> "cond_broadcast"
  | Barrier_create _ -> "barrier_create"
  | Barrier_wait _ -> "barrier_wait"
  | Spawn _ -> "spawn"
  | Join _ -> "join"
  | Malloc _ -> "malloc"
  | Free _ -> "free"
  | Output _ -> "output"
  | Self -> "self"
  | Yield -> "yield"
  | Checkpoint _ -> "checkpoint"
  | Atomic _ -> "atomic"
  | Server_mark _ -> "server_mark"
  | Span _ -> "span"
  | Rwlock_create -> "rwlock_create"
  | Rdlock _ -> "rdlock"
  | Wrlock _ -> "wrlock"
  | Rwunlock _ -> "rwunlock"
  | Sem_create _ -> "sem_create"
  | Sem_acquire _ -> "sem_acquire"
  | Sem_post _ -> "sem_post"
  | Deque_create -> "deque_create"
  | Deque_push _ -> "deque_push"
  | Deque_pop _ -> "deque_pop"
  | Deque_steal _ -> "deque_steal"

let span_phase_name = function
  | Sp_admit -> "admit"
  | Sp_attempt -> "attempt"
  | Sp_backoff -> "backoff"
  | Sp_breaker -> "breaker"
  | Sp_service -> "service"
  | Sp_stale -> "stale"
  | Sp_shed -> "shed"
  | Sp_response -> "response"

let server_event_name = function
  | Sv_served -> "served"
  | Sv_shed -> "shed"
  | Sv_retried -> "retried"
  | Sv_timed_out -> "timed_out"
  | Sv_breaker_transition -> "breaker_transition"
  | Sv_stale_read -> "stale_read"

let apply_rmw rmw ~current =
  match rmw with
  | A_load -> (current, current)
  | A_store v -> (current, v)
  | A_add n -> (current, current + n)
  | A_exchange v -> (current, v)
  | A_cas { expect; desired } ->
    (current, if current = expect then desired else current)

let is_sync = function
  | Lock _ | Trylock _ | Lock_timed _ | Mutex_heal _ | Unlock _
  | Cond_wait _ | Cond_signal _ | Cond_broadcast _ | Barrier_wait _
  | Spawn _ | Join _ | Atomic _ | Rdlock _ | Wrlock _ | Rwunlock _
  | Sem_acquire _ | Sem_post _ | Deque_push _ | Deque_pop _
  | Deque_steal _ ->
    true
  | Load _ | Store _ | Tick _ | Mutex_create | Cond_create
  | Barrier_create _ | Malloc _ | Free _ | Output _ | Self | Yield
  | Checkpoint _ | Server_mark _ | Span _ | Rwlock_create | Sem_create _
  | Deque_create ->
    false
