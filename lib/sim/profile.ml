type t = {
  mutable locks : int;
  mutable unlocks : int;
  mutable waits : int;
  mutable signals : int;
  mutable barriers : int;
  mutable forks : int;
  mutable joins : int;
  mutable atomics : int;
  mutable loads : int;
  mutable stores : int;
  mutable stores_with_copy : int;
  mutable page_faults : int;
  mutable mprotect_calls : int;
  mutable snapshots : int;
  mutable slices_created : int;
  mutable slices_propagated : int;
  mutable bytes_propagated : int;
  mutable diff_bytes_scanned : int;
  mutable gc_runs : int;
  mutable gc_slices_freed : int;
  mutable kendo_waits : int;
  mutable barrier_stalls : int;
  mutable restarts : int;
  mutable heals : int;
  mutable deadlock_victims : int;
  mutable quarantines : int;
  mutable corruptions_detected : int;
  mutable backoff_cycles : int;
  mutable requests_served : int;
  mutable requests_shed : int;
  mutable requests_retried : int;
  mutable requests_timed_out : int;
  mutable breaker_transitions : int;
  mutable stale_reads : int;
  mutable cond_unheard_signals : int;
  mutable rw_reader_batches : int;
  mutable rw_batch_readers : int;
  mutable steals_attempted : int;
  mutable steals_succeeded : int;
  mutable shared_bytes : int;
  mutable stack_bytes : int;
  mutable metadata_peak_bytes : int;
  mutable private_copy_bytes : int;
  mutable trace_dropped : int;
}

let create () =
  {
    locks = 0;
    unlocks = 0;
    waits = 0;
    signals = 0;
    barriers = 0;
    forks = 0;
    joins = 0;
    atomics = 0;
    loads = 0;
    stores = 0;
    stores_with_copy = 0;
    page_faults = 0;
    mprotect_calls = 0;
    snapshots = 0;
    slices_created = 0;
    slices_propagated = 0;
    bytes_propagated = 0;
    diff_bytes_scanned = 0;
    gc_runs = 0;
    gc_slices_freed = 0;
    kendo_waits = 0;
    barrier_stalls = 0;
    restarts = 0;
    heals = 0;
    deadlock_victims = 0;
    quarantines = 0;
    corruptions_detected = 0;
    backoff_cycles = 0;
    requests_served = 0;
    requests_shed = 0;
    requests_retried = 0;
    requests_timed_out = 0;
    breaker_transitions = 0;
    stale_reads = 0;
    cond_unheard_signals = 0;
    rw_reader_batches = 0;
    rw_batch_readers = 0;
    steals_attempted = 0;
    steals_succeeded = 0;
    shared_bytes = 0;
    stack_bytes = 0;
    metadata_peak_bytes = 0;
    private_copy_bytes = 0;
    trace_dropped = 0;
  }

let footprint_pthreads p = p.shared_bytes + p.stack_bytes

let footprint_rfdet p =
  p.shared_bytes + p.private_copy_bytes + p.stack_bytes
  + p.metadata_peak_bytes

let sync_ops p =
  p.locks + p.unlocks + p.waits + p.signals + p.barriers + p.forks + p.joins
  + p.atomics

let mem_ops p = p.loads + p.stores

(* Every field, in declaration order — pp, to_json and fill_metrics stay
   in sync by construction. *)
let fields p =
  [
    ("locks", p.locks);
    ("unlocks", p.unlocks);
    ("waits", p.waits);
    ("signals", p.signals);
    ("barriers", p.barriers);
    ("forks", p.forks);
    ("joins", p.joins);
    ("atomics", p.atomics);
    ("loads", p.loads);
    ("stores", p.stores);
    ("stores_with_copy", p.stores_with_copy);
    ("page_faults", p.page_faults);
    ("mprotect_calls", p.mprotect_calls);
    ("snapshots", p.snapshots);
    ("slices_created", p.slices_created);
    ("slices_propagated", p.slices_propagated);
    ("bytes_propagated", p.bytes_propagated);
    ("diff_bytes_scanned", p.diff_bytes_scanned);
    ("gc_runs", p.gc_runs);
    ("gc_slices_freed", p.gc_slices_freed);
    ("kendo_waits", p.kendo_waits);
    ("barrier_stalls", p.barrier_stalls);
    ("restarts", p.restarts);
    ("heals", p.heals);
    ("deadlock_victims", p.deadlock_victims);
    ("quarantines", p.quarantines);
    ("corruptions_detected", p.corruptions_detected);
    ("backoff_cycles", p.backoff_cycles);
    ("requests_served", p.requests_served);
    ("requests_shed", p.requests_shed);
    ("requests_retried", p.requests_retried);
    ("requests_timed_out", p.requests_timed_out);
    ("breaker_transitions", p.breaker_transitions);
    ("stale_reads", p.stale_reads);
    ("cond_unheard_signals", p.cond_unheard_signals);
    ("rw_reader_batches", p.rw_reader_batches);
    ("rw_batch_readers", p.rw_batch_readers);
    ("steals_attempted", p.steals_attempted);
    ("steals_succeeded", p.steals_succeeded);
    ("shared_bytes", p.shared_bytes);
    ("stack_bytes", p.stack_bytes);
    ("metadata_peak_bytes", p.metadata_peak_bytes);
    ("private_copy_bytes", p.private_copy_bytes);
    ("trace_dropped", p.trace_dropped);
  ]

let pp ppf p =
  Format.fprintf ppf
    "@[<v>sync: lock/unlock=%d/%d wait=%d signal=%d barrier=%d fork/join=%d/%d \
     atomics=%d@ \
     mem: loads=%d stores=%d stores_w_copy=%d@ \
     monitor: faults=%d mprotect=%d snapshots=%d slices=%d propagated=%d \
     bytes=%d diff_scanned=%d gc=%d gc_freed=%d@ \
     waits: kendo=%d barrier_stalls=%d@ \
     recovery: restarts=%d heals=%d victims=%d quarantines=%d \
     corruptions=%d backoff=%d@ \
     server: served=%d shed=%d retried=%d timed_out=%d breaker=%d stale=%d@ \
     primitives: unheard_signals=%d rw_batches=%d rw_batch_readers=%d \
     steals=%d/%d@ \
     footprint: shared=%d stacks=%d metadata=%d private=%d@ \
     obs: trace_dropped=%d@]"
    p.locks p.unlocks p.waits p.signals p.barriers p.forks p.joins p.atomics
    p.loads p.stores p.stores_with_copy p.page_faults p.mprotect_calls
    p.snapshots p.slices_created p.slices_propagated p.bytes_propagated
    p.diff_bytes_scanned p.gc_runs p.gc_slices_freed p.kendo_waits
    p.barrier_stalls p.restarts p.heals p.deadlock_victims p.quarantines
    p.corruptions_detected p.backoff_cycles p.requests_served p.requests_shed
    p.requests_retried p.requests_timed_out p.breaker_transitions
    p.stale_reads p.cond_unheard_signals p.rw_reader_batches
    p.rw_batch_readers p.steals_succeeded p.steals_attempted
    p.shared_bytes p.stack_bytes
    p.metadata_peak_bytes p.private_copy_bytes p.trace_dropped

let to_json p =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n  \"%s\": %d" (if i = 0 then "" else ",") k v))
    (fields p);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let fill_metrics m p =
  List.iter
    (fun (k, v) -> Rfdet_obs.Metrics.incr ~by:v m ("profile." ^ k))
    (fields p)
