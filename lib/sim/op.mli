(** The instruction set of a simulated thread.

    Every observable action of a workload is one of these operations,
    performed through the single [Api.Op] effect.  Each operation yields
    an [int] result (0 for operations with no meaningful result); [Api]
    wraps them in typed functions. *)

type t =
  | Load of { addr : int; width : width }
      (** read shared or stack memory; result is the value *)
  | Store of { addr : int; value : int; width : width }
  | Tick of { instrs : int; loads : int; stores : int }
      (** thread-private computation: [instrs] counted instructions of
          which [loads]/[stores] are memory accesses to provably
          unshared (stack/register) locations.  The static escape
          analysis of the paper's Section 4.2 is what justifies not
          monitoring these. *)
  | Mutex_create  (** result: mutex handle *)
  | Lock of int
  | Trylock of int
      (** non-blocking acquire; result 0 = acquired, 1 = acquired but
          poisoned, 2 = busy (not acquired) *)
  | Lock_timed of { mutex : int; timeout : int }
      (** acquire with a deterministic timeout of [timeout] counted
          instructions (an icount budget, so the expiry point is
          jitter-independent); result 0 = acquired, 1 = acquired but
          poisoned, 2 = timed out (not acquired) *)
  | Mutex_heal of int
      (** un-poison a mutex the caller holds, declaring the protected
          invariant re-established; result 0 = healed (or was clean) *)
  | Unlock of int
  | Cond_create  (** result: condvar handle *)
  | Cond_wait of { cond : int; mutex : int }
  | Cond_signal of int
  | Cond_broadcast of int
  | Barrier_create of int  (** party count; result: barrier handle *)
  | Barrier_wait of int
  | Spawn of (unit -> unit)  (** result: child tid *)
  | Join of int
  | Malloc of int  (** result: address *)
  | Free of int
  | Output of int64  (** append to the thread's observable output *)
  | Self  (** result: deterministic thread id *)
  | Yield  (** scheduling hint; no semantic effect *)
  | Checkpoint of (unit -> unit)
      (** declare the closure as this thread's restart point: under
          deterministic recovery ([Engine.Recover]), a later crash of
          the thread replays the registered closure instead of the
          spawn body, so one-shot prologue work (start gates, handshakes)
          is not re-executed.  No semantic effect under every other
          failure mode. *)
  | Atomic of { addr : int; rmw : rmw }
      (** C++-style low-level atomic read-modify-write on a shared word —
          the interface the paper's Sections 4.6/6 propose for lock-free
          and ad hoc synchronization.  An atomic is both an acquire and a
          release on an internal synchronization variable keyed by its
          address; the result is the value the location held before the
          operation. *)
  | Server_mark of { ev : server_event; n : int }
      (** account [n] occurrences of a request-serving outcome to the
          engine profile ([Profile.requests_served] and friends).  A
          thread-private bookkeeping operation — not a synchronization
          point, and handled entirely by the engine, so every runtime
          supports it for free.  Result is always 0. *)
  | Span of { phase : span_phase; req : int; a : int; b : int }
      (** one node of request [req]'s span tree.  Like [Server_mark] a
          thread-private bookkeeping operation handled entirely by the
          engine: it charges {e zero} cycles and zero instruction count,
          and its only effect is an [Rfdet_obs.Trace.Span] emission when
          the run's sink is enabled — so a workload performs spans
          unconditionally and tracing on/off cannot perturb schedules,
          signatures or profiles.  [a]/[b] are phase-specific payloads in
          virtual per-worker cycles (see [Api.span]).  Result is
          always 0. *)
  | Rwlock_create  (** result: reader-writer lock handle *)
  | Rdlock of int
      (** blocking shared acquire; readers are admitted in deterministic
          stamp-ordered batches.  Result 0 = acquired, 1 = acquired but
          poisoned. *)
  | Wrlock of int
      (** blocking exclusive acquire; result 0 = acquired, 1 = acquired
          but poisoned *)
  | Rwunlock of int
      (** release the caller's shared or exclusive hold (the runtime
          knows which); result is always 0 *)
  | Sem_create of int  (** initial permit count; result: handle *)
  | Sem_acquire of int
      (** blocking permit acquire (P); waiters are served in Kendo-stamp
          order.  Result 0 = acquired, 1 = acquired but poisoned. *)
  | Sem_post of int
      (** release one permit (V); hands it directly to the lowest-stamp
          waiter when one is queued.  Result is always 0. *)
  | Deque_create
      (** result: work-stealing deque handle, owned by the creating
          thread (only the owner may push/pop) *)
  | Deque_push of { deque : int; value : int }
      (** owner pushes [value] (>= 0) at the bottom; result 0 *)
  | Deque_pop of int
      (** owner pops the newest item (LIFO); result is the value, -1
          when empty, -2 when the deque is poisoned *)
  | Deque_steal of int
      (** steal the globally oldest item: the victim is the non-empty,
          non-poisoned deque (excluding the handle given, the thief's
          own) whose oldest item has the lowest push stamp.  Result is
          the stolen value, -1 when no victim exists. *)

and server_event =
  | Sv_served
  | Sv_shed
  | Sv_retried
  | Sv_timed_out
  | Sv_breaker_transition
  | Sv_stale_read

and span_phase =
  | Sp_admit  (** a = arrival cycle, b = queue lag at admission *)
  | Sp_attempt  (** a = attempt index, b = lock outcome (0 ok / 1 poisoned / 2 timed out) *)
  | Sp_backoff  (** a = attempt index, b = backoff cycles charged *)
  | Sp_breaker  (** a = shard, b = breaker transitions during this request *)
  | Sp_service  (** a = shard, b = service cycles charged *)
  | Sp_stale  (** a = shard, b = degraded stale-read cycles charged *)
  | Sp_shed  (** a = shard, b = shed bookkeeping cycles charged *)
  | Sp_response  (** a = measured latency, b = outcome code *)

and rmw =
  | A_load  (** acquire load *)
  | A_store of int  (** release store *)
  | A_add of int  (** fetch-and-add *)
  | A_exchange of int
  | A_cas of { expect : int; desired : int }
      (** compare-and-swap; writes [desired] iff the current value is
          [expect]; always returns the prior value *)

and width = W8 | W64

val name : t -> string
(** Short constructor name for diagnostics. *)

val server_event_name : server_event -> string

val span_phase_name : span_phase -> string
(** The phase vocabulary of [Rfdet_obs.Trace.Span] ("admit", "attempt",
    "backoff", "breaker", "service", "stale", "shed", "response"). *)

val is_sync : t -> bool
(** True for operations that are acquire and/or release points (lock,
    unlock, wait, signal, broadcast, barrier, spawn, join, atomic,
    rwlock/semaphore operations, deque push/pop/steal). *)

val apply_rmw : rmw -> current:int -> int * int
(** [apply_rmw rmw ~current] returns (previous value to report, new value
    to store) — [A_load] stores the value back unchanged. *)
